package bofl_test

// BenchmarkFLScale measures the FL serving plane at fleet scale: a
// thousand-participant in-process round through the bounded dispatch +
// streaming-fold path, an HTTP loopback federation over the negotiated binary
// codec, and the codec's wire savings against the JSON fallback (the
// `wire_x` metric is the acceptance bar: ≥ 4× on a CNN-sized vector).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"bofl/internal/core"
	"bofl/internal/fl"
	"bofl/internal/obs"
	"bofl/internal/obs/ledger"
	"bofl/internal/parallel"
)

// scaleParams builds a CNN-sized parameter vector of float32-valued weights
// (models train in single precision; the float64 slice is just the API type).
func scaleParams(n int) []float64 {
	rng := rand.New(rand.NewSource(17))
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(float32(rng.NormFloat64() * 0.05))
	}
	return out
}

// echoParticipant is a zero-training participant: it returns a deterministic
// transform of the incoming global vector, isolating the serving plane
// (dispatch, copy, fold) from model math.
type echoParticipant struct {
	id  string
	idx int
}

func (p *echoParticipant) ID() string                        { return p.id }
func (p *echoParticipant) TMinFor(jobs int) (float64, error) { return float64(jobs), nil }

func (p *echoParticipant) Round(req fl.RoundRequest) (fl.RoundResponse, error) {
	scale := 1 + float64(p.idx%13)/256
	for i := range req.Params {
		req.Params[i] *= scale
	}
	return fl.RoundResponse{
		ClientID:    p.id,
		Params:      req.Params,
		NumExamples: 1 + p.idx%29,
		Report:      core.RoundReport{Round: req.Round, DeadlineMet: true},
	}, nil
}

func newScaleServer(b *testing.B, params []float64) *fl.Server {
	b.Helper()
	srv, err := fl.NewServer(fl.ServerConfig{
		InitialParams: params,
		Jobs:          10,
		DeadlineRatio: 2,
		Seed:          1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return srv
}

func BenchmarkFLScale(b *testing.B) {
	b.Run("inproc-1k", func(b *testing.B) {
		const clients, dim = 1000, 65_536
		// Explicit bounded width: on small CI boxes GOMAXPROCS is 1 and the
		// pool would run inline, leaving the concurrent fold path unexercised.
		defer parallel.SetWorkers(parallel.SetWorkers(8))
		srv := newScaleServer(b, scaleParams(dim))
		for i := 0; i < clients; i++ {
			srv.Register(&echoParticipant{id: fmt.Sprintf("edge-%d", i), idx: i})
		}
		poolBefore := parallel.Stats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := srv.RunRound()
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Responses) != clients {
				b.Fatalf("%d responses", len(res.Responses))
			}
		}
		b.ReportMetric(float64(clients), "clients")
		reportPoolStats(b, poolBefore)
	})

	b.Run("inproc-1k-traced", func(b *testing.B) {
		// Same fleet with the full observability plane attached — live
		// telemetry sink, per-attempt spans, round ledger. Budget vs the
		// nop-sink inproc-1k run: ≈1.4% attributable CPU, ~2 allocs per
		// client per round; see DESIGN.md §10 for the full accounting
		// (wall-clock deltas also carry GC re-scan of the retained
		// journals, which scales with the ring bounds, not round rate).
		const clients, dim = 1000, 65_536
		defer parallel.SetWorkers(parallel.SetWorkers(8))
		led := ledger.New(0)
		srv, err := fl.NewServer(fl.ServerConfig{
			InitialParams: scaleParams(dim),
			Jobs:          10,
			DeadlineRatio: 2,
			Seed:          1,
			Ledger:        led,
		})
		if err != nil {
			b.Fatal(err)
		}
		srv.SetSink(obs.NewBoFL(obs.Real{}))
		for i := 0; i < clients; i++ {
			srv.Register(&echoParticipant{id: fmt.Sprintf("edge-%d", i), idx: i})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := srv.RunRound()
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Responses) != clients {
				b.Fatalf("%d responses", len(res.Responses))
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(clients), "clients")
		b.ReportMetric((float64(led.Len())+float64(led.Evicted()))/float64(b.N), "ledger_ev/round")
	})

	b.Run("http-loopback", func(b *testing.B) {
		// A few dozen daemons behind real HTTP servers, speaking the
		// negotiated binary codec end to end. The daemon side is the cheap
		// codec-only handler below, so the measurement is transport + codec,
		// not model training.
		const clients, dim = 32, 16_384
		defer parallel.SetWorkers(parallel.SetWorkers(16))
		params := scaleParams(dim)
		srv := newScaleServer(b, params)
		for i := 0; i < clients; i++ {
			ts := httptest.NewServer(codecEchoHandler(fmt.Sprintf("loop-%d", i)))
			defer ts.Close()
			p, err := fl.DialParticipant(ts.URL, 30*time.Second)
			if err != nil {
				b.Fatal(err)
			}
			if p.Codec() != fl.CodecBinary {
				b.Fatalf("negotiated %s", p.Codec())
			}
			srv.Register(p)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := srv.RunRound()
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Responses) != clients {
				b.Fatalf("%d responses", len(res.Responses))
			}
		}
		b.ReportMetric(float64(clients), "clients")
	})

	b.Run("codec-bytes", func(b *testing.B) {
		// Wire accounting on one CNN-sized request: JSON bytes vs binary
		// frame bytes. wire_x ≥ 4 is the PR's acceptance criterion.
		req := fl.RoundRequest{Round: 1, Params: scaleParams(100_000), Jobs: 10, Deadline: 60}
		var jsonBuf, binBuf bytes.Buffer
		if err := json.NewEncoder(&jsonBuf).Encode(req); err != nil {
			b.Fatal(err)
		}
		if err := fl.EncodeRoundRequest(&binBuf, req); err != nil {
			b.Fatal(err)
		}
		frame := binBuf.Bytes()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := fl.EncodeRoundRequest(&buf, req); err != nil {
				b.Fatal(err)
			}
			if _, err := fl.DecodeRoundRequest(bytes.NewReader(frame)); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(jsonBuf.Len()), "json_B")
		b.ReportMetric(float64(binBuf.Len()), "bin_B")
		b.ReportMetric(float64(jsonBuf.Len())/float64(binBuf.Len()), "wire_x")
	})
}

// codecEchoHandler is a minimal binary-capable daemon: /v1/info advertises
// the codec, /v1/round echoes the parameters back through the frame codec.
func codecEchoHandler(id string) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/info", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", fl.ContentTypeJSON)
		json.NewEncoder(w).Encode(fl.InfoResponse{
			ClientID:    id,
			Device:      "bench",
			TMinPerJob:  0.001,
			NumExamples: 64,
			Codecs:      []string{fl.CodecBinary, fl.CodecJSON},
		})
	})
	mux.HandleFunc("POST /v1/round", func(w http.ResponseWriter, r *http.Request) {
		req, err := fl.DecodeRoundRequest(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp := fl.RoundResponse{
			ClientID:    id,
			Params:      req.Params,
			NumExamples: 64,
			Report:      core.RoundReport{Round: req.Round, DeadlineMet: true},
		}
		w.Header().Set("Content-Type", fl.ContentTypeBinary)
		if err := fl.EncodeRoundResponse(w, resp); err != nil {
			return
		}
	})
	return mux
}
