package bofl_test

import (
	"fmt"

	"bofl"
)

// The BoFL controller wraps a training loop: each round it decides the DVFS
// configuration of every minibatch job and guarantees the round deadline.
func Example() {
	dev := bofl.JetsonAGX()
	ctrl, err := bofl.NewController(dev.Space(), bofl.Options{Seed: 1, Tau: 3})
	if err != nil {
		panic(err)
	}

	// The executor trains one minibatch under the requested configuration
	// and reports its measured cost; here a noise-free simulator stands in.
	exec := bofl.ExecutorFunc(func(cfg bofl.Config) (bofl.JobResult, error) {
		lat, energy, err := dev.Perf(bofl.ViT, cfg)
		if err != nil {
			return bofl.JobResult{}, err
		}
		return bofl.JobResult{Latency: lat, Energy: energy}, nil
	})

	report, err := ctrl.RunRound(200, 74.4, exec) // W=200 jobs, 2×T_min deadline
	if err != nil {
		panic(err)
	}
	fmt.Println("deadline met:", report.DeadlineMet)
	fmt.Println("phase:", report.Phase)
	// Output:
	// deadline met: true
	// phase: random-explore
}

// ParetoFront extracts the non-dominated configurations from measured
// (energy, latency) points.
func ExampleParetoFront() {
	points := []bofl.ObjectivePoint{
		{X: 5.0, Y: 0.20}, // fast but hungry
		{X: 3.5, Y: 0.30}, // slow but lean
		{X: 5.5, Y: 0.25}, // dominated by the first
		{X: 4.2, Y: 0.24}, // a useful trade-off
	}
	for _, p := range bofl.ParetoFront(points) {
		fmt.Printf("%.1f J @ %.2f s\n", p.X, p.Y)
	}
	// Output:
	// 3.5 J @ 0.30 s
	// 4.2 J @ 0.24 s
	// 5.0 J @ 0.20 s
}

// ProfileAll is the Oracle's offline step: exhaustively characterize a
// device and read off the true Pareto front.
func ExampleProfileAll() {
	dev := bofl.JetsonTX2()
	profile, err := bofl.ProfileAll(dev, bofl.LSTM)
	if err != nil {
		panic(err)
	}
	fmt.Println("configurations:", len(profile.Points))
	fmt.Println("per-minibatch T_min:", fmt.Sprintf("%.3fs", profile.MinLatency()))
	// Output:
	// configurations: 936
	// per-minibatch T_min: 0.695s
}

// SampleDeadlines reproduces the paper's deadline protocol: uniform draws
// from (just above) T_min up to ratio·T_min.
func ExampleSampleDeadlines() {
	deadlines, err := bofl.SampleDeadlines(37.2, 2.0, 3, 42)
	if err != nil {
		panic(err)
	}
	for _, d := range deadlines {
		fmt.Printf("%.1fs\n", d)
	}
	// Output:
	// 51.5s
	// 40.4s
	// 60.0s
}

// NewBandwidthEstimator converts reporting deadlines (when gradients must be
// back at the server) into training deadlines for the controller.
func ExampleNewBandwidthEstimator() {
	bw, err := bofl.NewBandwidthEstimator(625_000, 0.3, 1.0) // ≈5 Mbps LTE
	if err != nil {
		panic(err)
	}
	payload := bofl.ModelPayloadBytes(800_000) // a small model update
	training, err := bw.TrainingDeadline(60, payload)
	if err != nil {
		panic(err)
	}
	fmt.Printf("train for %.1fs, upload the rest\n", training)
	// Output:
	// train for 49.8s, upload the rest
}
