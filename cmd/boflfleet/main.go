// Command boflfleet runs virtual-time federated rounds over a generated
// heterogeneous device fleet: a discrete-event simulation (internal/fleet) of
// the hierarchical aggregation tree, where a million clients train, straggle,
// drop out and upload in simulated seconds while the process itself uses
// O(tree-depth · model) memory and finishes in wall-clock seconds.
//
// Usage:
//
//	boflfleet -clients 1000000 -dim 4096 -fanout 64 -rounds 3
//	boflfleet -clients 10000 -fanout 32 -chaos-drop 0.05 -ledger fleet.jsonl
//
// The chaos seed resolves, in order: -chaos-seed flag, BOFL_CHAOS_SEED env,
// then -seed — the same replay convention as the chaos test suite.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"strconv"
	"time"

	"bofl/internal/device"
	"bofl/internal/faultinject"
	"bofl/internal/fl"
	"bofl/internal/fleet"
	"bofl/internal/obs"
	"bofl/internal/obs/ledger"
	"bofl/internal/parallel"
)

// effectiveWorkers resolves the -workers flag the way the engine does: 0
// means the shared parallel pool width.
func effectiveWorkers(w int) int {
	if w > 0 {
		return w
	}
	return parallel.Workers()
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "boflfleet:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("boflfleet", flag.ContinueOnError)
	var (
		clients  = fs.Int("clients", 100_000, "simulated fleet size")
		dim      = fs.Int("dim", 1024, "model dimension")
		fanout   = fs.Int("fanout", 32, "aggregation-tree fanout")
		jobs     = fs.Int("jobs", 5, "local minibatches per client per round")
		rounds   = fs.Int("rounds", 3, "virtual-time rounds to simulate")
		seed     = fs.Int64("seed", 1, "population sampling / trace seed")
		workers  = fs.Int("workers", 0, "subtree shards simulated concurrently (0 = parallel pool width)")
		chaos    = fs.Int64("chaos-seed", 0, "availability & fault draw seed (0 = BOFL_CHAOS_SEED env, then -seed)")
		workload = fs.String("workload", "vit", "workload anchoring the board classes: vit, resnet50, lstm")
		aggName  = fs.String("aggregator", "fedavg", "aggregation strategy (the fleet engine's zero-alloc fold supports fedavg only)")

		tierQuorum = fs.Float64("tier-quorum", 0, "per-aggregator child quorum; a node below it drops its whole subtree")
		quorum     = fs.Float64("quorum", 0, "round-level survivor fraction required to commit")
		deadline   = fs.Float64("deadline", 0, "per-client round deadline in virtual seconds (0 = derived)")
		ratio      = fs.Float64("deadline-ratio", 0, "derived-deadline scale over the slowest client (0 = 1.25)")
		hop        = fs.Float64("tier-latency", 0.05, "virtual seconds charged per aggregation hop")

		chaosDrop     = fs.Float64("chaos-drop", 0, "per-round probability a client vanishes before training")
		chaosCrash    = fs.Float64("chaos-crash", 0, "per-round probability a client trains but dies before uploading")
		chaosStraggle = fs.Float64("chaos-straggle", 0, "per-round probability a client straggles")
		chaosStragMax = fs.Duration("chaos-straggle-max", 2*time.Minute, "maximum injected straggle (virtual)")

		ledgerPath = fs.String("ledger", "", "journal round/partial/subtree-drop events to this JSONL file (empty = off)")
		ledgerCap  = fs.Int("ledger-cap", 4096, "max journaled events per round (0 = unlimited); suppressed events are counted")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// The engine's sharded fold fixes the FedAvg layout for its zero-alloc
	// guarantees; validate through the shared registry so unknown names get
	// the same error the full server would give.
	if agg, err := fl.NewAggregator(*aggName, 0); err != nil {
		return err
	} else if agg.Name() != fl.AlgFedAvg {
		return fmt.Errorf("-aggregator %s not supported by the fleet engine (use cmd/flserver for the plugin layer)", agg.Name())
	}
	w := device.Workload(*workload)
	classes, err := device.StandardFleetClasses(w)
	if err != nil {
		return err
	}
	pop, err := device.NewPopulation(*seed, classes)
	if err != nil {
		return err
	}
	chaosSeed := *chaos
	if chaosSeed == 0 {
		if env := os.Getenv("BOFL_CHAOS_SEED"); env != "" {
			v, err := strconv.ParseInt(env, 10, 64)
			if err != nil {
				return fmt.Errorf("BOFL_CHAOS_SEED=%q: %w", env, err)
			}
			chaosSeed = v
		} else {
			chaosSeed = *seed
		}
	}
	var policy faultinject.Policy
	if *chaosDrop > 0 || *chaosCrash > 0 || *chaosStraggle > 0 {
		policy = &faultinject.Plan{
			Seed: chaosSeed,
			Default: faultinject.Profile{
				Drop: *chaosDrop, Crash: *chaosCrash,
				Straggle: *chaosStraggle, StraggleMax: *chaosStragMax,
			},
		}
	}

	var led *ledger.Ledger
	if *ledgerPath != "" {
		led = ledger.New(0)
		led.SetRoundCap(*ledgerCap)
		f, err := os.Create(*ledgerPath)
		if err != nil {
			return fmt.Errorf("ledger sink: %w", err)
		}
		defer func() {
			_ = led.Flush()
			_ = f.Close()
		}()
		led.SetSink(f)
	}

	eng, err := fleet.New(fleet.Config{
		Clients: *clients, Dim: *dim, Fanout: *fanout, Jobs: *jobs,
		Seed: *seed, ChaosSeed: chaosSeed, Workers: *workers,
		TierQuorum: *tierQuorum, Quorum: *quorum,
		DeadlineSeconds: *deadline, DeadlineRatio: *ratio,
		TierLatencySeconds: *hop,
		Population:         pop, Fault: policy,
		Sink: obs.Nop, Ledger: led,
	})
	if err != nil {
		return err
	}
	fmt.Printf("fleet: %d clients (%d classes), model dim %d, tree fanout %d depth %d, deadline %.1fs, chaos seed %d\n",
		*clients, len(classes), *dim, *fanout, eng.Depth(), eng.Deadline(), chaosSeed)
	shards, span := eng.Shards()
	fmt.Printf("parallel: %d workers over %d subtree shards of %d leaves (model, stats and ledger are identical at any -workers)\n",
		effectiveWorkers(*workers), shards, span)
	fmt.Printf("aggregator working set: %d KiB (O(depth·params), independent of fleet size)\n", eng.SpineBytes()>>10)

	var virtual, energy float64
	start := time.Now()
	for r := 0; r < *rounds; r++ {
		st, err := eng.RunRound()
		if err != nil {
			return err
		}
		virtual += st.VirtualSeconds
		energy += st.EnergyJ
		fmt.Printf("round %3d: %7d/%d survived (%d unavailable, %d crashed, %d misses, %d subtree drops), %d partials %.1f MiB, %8.1fs virtual, %10.0f J\n",
			st.Round, st.Survivors, st.Clients,
			st.Unavailable, st.Crashed, st.DeadlineMisses, st.SubtreeDrops,
			st.Partials, float64(st.WireBytes)/(1<<20), st.VirtualSeconds, st.EnergyJ)
	}
	wall := time.Since(start)
	fmt.Printf("done: %d rounds, %.0f virtual seconds (%.0fx real time), %.1f kJ fleet energy, wall %v, %d workers, %.0f clients/s\n",
		*rounds, virtual, virtual/wall.Seconds(), energy/1e3, wall.Round(time.Millisecond),
		effectiveWorkers(*workers), float64(*clients)*float64(*rounds)/wall.Seconds())
	fmt.Printf("model: root hash fnv64a:%016x over %d params (bit-identical at any -workers / GOMAXPROCS)\n",
		modelHash(eng.Global()), *dim)
	if led != nil {
		fmt.Printf("ledger: %d events journaled (%d suppressed by -ledger-cap %d) -> %s\n",
			led.Len(), led.RoundDropped(), *ledgerCap, *ledgerPath)
	}
	return nil
}

// modelHash digests the committed global model bit-exactly: FNV-64a over the
// little-endian IEEE-754 encoding of every parameter. Runs at any -workers
// setting must print the same hash for the same flags and chaos seed.
func modelHash(params []float64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, p := range params {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(p))
		h.Write(b[:])
	}
	return h.Sum64()
}
