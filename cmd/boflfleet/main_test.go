package main

import (
	"strings"
	"testing"
)

func TestRunFleetSmoke(t *testing.T) {
	err := run([]string{
		"-clients", "500", "-dim", "16", "-fanout", "8",
		"-jobs", "1", "-rounds", "2", "-tier-quorum", "0.5",
		"-chaos-drop", "0.05",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunLedgerCap(t *testing.T) {
	path := t.TempDir() + "/fleet.jsonl"
	err := run([]string{
		"-clients", "256", "-dim", "8", "-fanout", "4",
		"-jobs", "1", "-rounds", "1",
		"-ledger", path, "-ledger-cap", "10",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	for _, args := range [][]string{
		{"-workload", "nonesuch"},
		{"-clients", "0"},
		{"-fanout", "1"},
		{"-quorum", "1.5"},
	} {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		} else if !strings.Contains(err.Error(), ":") {
			t.Errorf("args %v: unhelpful error %q", args, err)
		}
	}
}
