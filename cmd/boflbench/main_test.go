package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunStaticSections(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "table1,table2,fig3,fig4,fig5"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"2100", "T_min", "Pareto", "AGX/TX2"} {
		if want == "Pareto" {
			continue // fig sections only here
		}
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, "fig9") {
		t.Error("unselected section rendered")
	}
}

func TestRunDynamicSectionQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "fig11", "-rounds", "16", "-tau", "3", "-csv-dir", filepath.Join(t.TempDir(), "csv")}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "HV coverage") {
		t.Errorf("fig11 output malformed:\n%s", out)
	}
	if !strings.Contains(out, "wrote ") {
		t.Errorf("csv export missing:\n%s", out)
	}
}

func TestRunBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-nope"}, &buf); err == nil {
		t.Error("bad flag accepted")
	}
}
