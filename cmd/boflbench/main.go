// Command boflbench regenerates the paper's tables and figures on the
// simulated testbeds and prints them as plain-text tables.
//
// Usage:
//
//	boflbench -exp all                 # everything (several minutes)
//	boflbench -exp table1,fig5        # a subset
//	boflbench -exp fig9 -rounds 40    # fewer rounds for a quick look
//	boflbench -exp fig12 -parallel 8  # fan the ratio × task grid over 8 workers
//
// Experiments: table1 table2 table3 fig2 fig3 fig4 fig5 fig9 fig10 fig11
// fig12 fig13, plus the beyond-the-paper extensions ext-variance (multi-seed
// error bars) and ext-thermal (throttling board with adaptive BoFL).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"bofl/internal/core"
	"bofl/internal/device"
	"bofl/internal/experiment"
	"bofl/internal/fl"
	"bofl/internal/obs"
	"bofl/internal/parallel"
)

// writeFile creates path (and parent dirs) and streams fn into it — used for
// both CSV exports and telemetry traces.
func writeFile(path string, fn func(io.Writer) error) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "boflbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("boflbench", flag.ContinueOnError)
	var (
		exps   = fs.String("exp", "all", "comma-separated experiment ids (or 'all')")
		rounds = fs.Int("rounds", 100, "FL rounds per task run")
		seed   = fs.Int64("seed", 1, "base random seed")
		tau    = fs.Float64("tau", 5, "reference measurement duration τ (seconds)")
		csvDir = fs.String("csv-dir", "", "also write figure scatter/series data as CSV into this directory")
		par    = fs.Int("parallel", 0, "worker pool width for the acquisition scans and the tasks × ratios × seeds experiment fan-out (0 = GOMAXPROCS, 1 = serial)")
		trace  = fs.String("telemetry", "", "write the suite's span trace as JSONL to this path")
		chrome = fs.String("telemetry-chrome", "", "write the suite's span trace as Chrome trace_event JSON to this path")
		tid    = fs.String("telemetry-trace", "", "narrow -telemetry/-telemetry-chrome output to one stitched trace ID")
		pprofA = fs.String("pprof", "", "serve net/http/pprof on this address during the run (empty = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	parallel.SetWorkers(*par)
	if *pprofA != "" {
		obs.ServePprof(*pprofA)
	}
	var tel *obs.Telemetry
	if *trace != "" || *chrome != "" {
		// One process-wide sink: every RunTask, MBO span and experiment-cell
		// event across the suite lands in the same trace buffer.
		tel = obs.NewBoFL(obs.Real{})
		experiment.SetSink(tel)
		writeJSONL, writeChrome := tel.Tracer.WriteJSONL, tel.Tracer.WriteChromeTrace
		if *tid != "" {
			writeJSONL = func(w io.Writer) error { return tel.Tracer.WriteTraceJSONL(w, *tid) }
			writeChrome = func(w io.Writer) error { return tel.Tracer.WriteTraceChrome(w, *tid) }
		}
		defer func() {
			if *trace != "" {
				if err := writeFile(*trace, writeJSONL); err != nil {
					fmt.Fprintln(os.Stderr, "boflbench: telemetry:", err)
				} else {
					fmt.Fprintf(out, "wrote %d trace events to %s\n", tel.Tracer.Len(), *trace)
				}
			}
			if *chrome != "" {
				if err := writeFile(*chrome, writeChrome); err != nil {
					fmt.Fprintln(os.Stderr, "boflbench: telemetry:", err)
				} else {
					fmt.Fprintf(out, "wrote Chrome trace to %s\n", *chrome)
				}
			}
		}()
	}
	opts := core.Options{Tau: *tau}

	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	section := func(id, title string) bool {
		if !all && !want[id] {
			return false
		}
		fmt.Fprintf(out, "\n===== %s — %s =====\n", id, title)
		return true
	}

	if section("table1", "testbed DVFS spaces") {
		if err := experiment.WriteTable1(out, experiment.Table1()); err != nil {
			return err
		}
	}
	if section("table2", "FL task specifications") {
		rows, err := experiment.Table2()
		if err != nil {
			return err
		}
		if err := experiment.WriteTable2(out, rows); err != nil {
			return err
		}
	}
	if section("fig2", "DVFS leverage across the configuration space") {
		agx, _ := device.ByName("agx")
		for _, w := range device.Workloads() {
			d, err := experiment.Figure2(agx, w)
			if err != nil {
				return err
			}
			if err := experiment.WriteFigure2(out, d); err != nil {
				return err
			}
		}
	}
	if section("fig3", "ViT vs GPU frequency at two CPU clocks") {
		d, err := experiment.Figure3()
		if err != nil {
			return err
		}
		if err := experiment.WriteFigure3(out, d); err != nil {
			return err
		}
	}
	if section("fig4", "three workloads vs CPU frequency") {
		d, err := experiment.Figure4()
		if err != nil {
			return err
		}
		if err := experiment.WriteFigure4(out, d); err != nil {
			return err
		}
	}
	if section("fig5", "AGX normalized to TX2 at x_max") {
		rows, err := experiment.Figure5()
		if err != nil {
			return err
		}
		if err := experiment.WriteFigure5(out, rows); err != nil {
			return err
		}
	}
	energyFigure := func(id string, ratio float64) error {
		cmps, err := experiment.Figure9(ratio, *rounds, *seed, opts)
		if err != nil {
			return err
		}
		for _, cmp := range cmps {
			if err := experiment.WriteEnergyComparison(out, cmp, 40); err != nil {
				return err
			}
			fmt.Fprintln(out)
			if *csvDir != "" {
				path := filepath.Join(*csvDir, fmt.Sprintf("%s_%s.csv", id, cmp.Task.Workload))
				if err := writeFile(path, func(w io.Writer) error {
					return experiment.WriteEnergyComparisonCSV(w, cmp)
				}); err != nil {
					return err
				}
				fmt.Fprintf(out, "wrote %s\n", path)
			}
		}
		return nil
	}
	if section("fig9", "per-round energy, ratio 2.0") {
		if err := energyFigure("fig9", 2.0); err != nil {
			return err
		}
	}
	if section("fig10", "per-round energy, ratio 4.0") {
		if err := energyFigure("fig10", 4.0); err != nil {
			return err
		}
	}
	if section("fig11", "BoFL vs actual Pareto fronts") {
		data, err := experiment.Figure11(2.0, *rounds, *seed, opts)
		if err != nil {
			return err
		}
		if err := experiment.WriteFigure11(out, data); err != nil {
			return err
		}
		if *csvDir != "" {
			for _, d := range data {
				path := filepath.Join(*csvDir, fmt.Sprintf("fig11_%s.csv", d.Workload))
				if err := writeFile(path, func(w io.Writer) error {
					return experiment.WriteFigure11CSV(w, d)
				}); err != nil {
					return err
				}
				fmt.Fprintf(out, "wrote %s\n", path)
			}
		}
	}
	if section("table3", "exploration walkthrough, ratio 2.0") {
		data, err := experiment.Table3(*rounds, *seed, opts)
		if err != nil {
			return err
		}
		if err := experiment.WriteTable3(out, data); err != nil {
			return err
		}
	}
	if section("fig12", "sensitivity to deadline length") {
		cells, err := experiment.Figure12(nil, *rounds, *seed, opts)
		if err != nil {
			return err
		}
		if err := experiment.WriteFigure12(out, cells); err != nil {
			return err
		}
	}
	if section("ext-variance", "extension: multi-seed mean ± std of the headline metrics") {
		agx, _ := device.ByName("agx")
		rows, err := experiment.VarianceStudy(agx, 2.0, *rounds, 5, *seed, opts)
		if err != nil {
			return err
		}
		if err := experiment.WriteVarianceStudy(out, rows, 2.0); err != nil {
			return err
		}
	}
	if section("ext-thermal", "extension: thermally throttling board") {
		agx, _ := device.ByName("agx")
		tasks, err := fl.Tasks(agx, 2.5, *rounds)
		if err != nil {
			return err
		}
		rows, err := experiment.ThermalStudy(agx, tasks[0], *rounds, *seed, opts)
		if err != nil {
			return err
		}
		if err := experiment.WriteThermalStudy(out, rows); err != nil {
			return err
		}
	}
	if section("fig13", "MBO module overhead") {
		rows, err := experiment.Figure13(2.0, *rounds, *seed, opts)
		if err != nil {
			return err
		}
		if err := experiment.WriteFigure13(out, rows); err != nil {
			return err
		}
	}
	return nil
}
