package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunBoflsimQuick(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-device", "agx", "-task", "vit", "-controller", "performant", "-rounds", "5"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"CIFAR10-ViT", "total energy", "deadline misses: 0"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunBoflsimBoflVerbose(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-task", "lstm", "-controller", "bofl", "-rounds", "6", "-tau", "3", "-v"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "phase=") {
		t.Errorf("verbose output missing per-round lines:\n%s", out)
	}
	if !strings.Contains(out, "explored") {
		t.Errorf("output missing BoFL stats:\n%s", out)
	}
}

func TestRunBoflsimSnapshotRoundTrip(t *testing.T) {
	path := t.TempDir() + "/snap.json"
	var buf bytes.Buffer
	err := run([]string{"-task", "vit", "-controller", "bofl", "-rounds", "10", "-tau", "3",
		"-save-snapshot", path}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	err = run([]string{"-task", "vit", "-controller", "bofl", "-rounds", "4", "-tau", "3",
		"-load-snapshot", path}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	// A resumed exploitation-phase controller must not re-explore.
	if !strings.Contains(buf.String(), "MBO wall time: 0s over 0 runs") {
		t.Errorf("resumed run re-ran MBO:\n%s", buf.String())
	}
	// Snapshots with a non-BoFL controller are rejected.
	if err := run([]string{"-controller", "performant", "-save-snapshot", path}, &buf); err == nil {
		t.Error("snapshot with performant controller accepted")
	}
	if err := run([]string{"-controller", "bofl", "-rounds", "2", "-load-snapshot", "/nonexistent"}, &buf); err == nil {
		t.Error("missing snapshot file accepted")
	}
}

func TestRunBoflsimErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-device", "nope"}, &buf); err == nil {
		t.Error("unknown device accepted")
	}
	if err := run([]string{"-task", "nope"}, &buf); err == nil {
		t.Error("unknown task accepted")
	}
	if err := run([]string{"-task", "vit", "-controller", "nope", "-rounds", "2"}, &buf); err == nil {
		t.Error("unknown controller accepted")
	}
	if err := run([]string{"-badflag"}, &buf); err == nil {
		t.Error("bad flag accepted")
	}
}
