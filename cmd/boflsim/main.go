// Command boflsim runs one FL task on a simulated testbed under a chosen
// pace controller and prints per-round energy and deadline statistics — the
// workhorse behind Figures 9 and 10.
//
// Usage:
//
//	boflsim -device agx -task vit -controller bofl -ratio 2.0 -rounds 100
//	boflsim -device tx2 -task lstm -controller performant
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"bofl/internal/core"
	"bofl/internal/device"
	"bofl/internal/experiment"
	"bofl/internal/fl"
	"bofl/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "boflsim:", err)
		os.Exit(1)
	}
}

// writeTrace creates path and streams the trace exporter into it.
func writeTrace(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("boflsim", flag.ContinueOnError)
	var (
		devName  = fs.String("device", "agx", "device: agx or tx2")
		taskName = fs.String("task", "vit", "task: vit, resnet50 or lstm")
		ctrl     = fs.String("controller", "bofl", "controller: bofl, performant, oracle, random, linearpace")
		ratio    = fs.Float64("ratio", 2.0, "deadline ratio T_max/T_min")
		rounds   = fs.Int("rounds", 100, "FL rounds")
		seed     = fs.Int64("seed", 1, "random seed")
		tau      = fs.Float64("tau", 5, "reference measurement duration τ (seconds)")
		verbose  = fs.Bool("v", false, "print every round")
		loadSnap = fs.String("load-snapshot", "", "resume a BoFL controller from this snapshot file")
		saveSnap = fs.String("save-snapshot", "", "write the BoFL controller's final state to this file")
		tracePth = fs.String("telemetry", "", "write the run's span trace as JSONL to this path")
		chromePt = fs.String("telemetry-chrome", "", "write the run's span trace as Chrome trace_event JSON to this path")
		traceID  = fs.String("telemetry-trace", "", "narrow -telemetry/-telemetry-chrome output to one stitched trace ID")
		pprofFlg = fs.String("pprof", "", "serve net/http/pprof on this address during the run (empty = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*loadSnap != "" || *saveSnap != "") && *ctrl != "bofl" {
		return fmt.Errorf("snapshots only apply to the bofl controller")
	}
	dev, ok := device.ByName(*devName)
	if !ok {
		return fmt.Errorf("unknown device %q", *devName)
	}
	tasks, err := fl.Tasks(dev, *ratio, *rounds)
	if err != nil {
		return err
	}
	var task fl.TaskSpec
	found := false
	for _, t := range tasks {
		if string(t.Workload) == *taskName {
			task, found = t, true
			break
		}
	}
	if !found {
		return fmt.Errorf("unknown task %q (want vit, resnet50 or lstm)", *taskName)
	}

	if *pprofFlg != "" {
		obs.ServePprof(*pprofFlg)
	}
	var tel *obs.Telemetry
	if *tracePth != "" || *chromePt != "" {
		tel = obs.NewBoFL(obs.Real{})
	}
	cfg := experiment.RunConfig{
		Device:       dev,
		Task:         task,
		Rounds:       *rounds,
		Controller:   experiment.ControllerKind(*ctrl),
		Seed:         *seed,
		CtrlOptions:  core.Options{Tau: *tau},
		LoadSnapshot: *loadSnap,
		SaveSnapshot: *saveSnap,
	}
	if tel != nil {
		cfg.Sink = tel
	}
	runRes, err := experiment.RunTask(cfg)
	if err != nil {
		return err
	}
	var writeJSONL, writeChrome func(io.Writer) error
	if tel != nil {
		writeJSONL, writeChrome = tel.Tracer.WriteJSONL, tel.Tracer.WriteChromeTrace
		if *traceID != "" {
			writeJSONL = func(w io.Writer) error { return tel.Tracer.WriteTraceJSONL(w, *traceID) }
			writeChrome = func(w io.Writer) error { return tel.Tracer.WriteTraceChrome(w, *traceID) }
		}
	}
	if *tracePth != "" {
		if err := writeTrace(*tracePth, writeJSONL); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d trace events to %s\n", tel.Tracer.Len(), *tracePth)
	}
	if *chromePt != "" {
		if err := writeTrace(*chromePt, writeChrome); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote Chrome trace to %s\n", *chromePt)
	}

	fmt.Fprintf(out, "%s on %s, controller=%s, ratio=%.1f, rounds=%d\n",
		task.Name, dev.Name(), *ctrl, *ratio, *rounds)
	energies := make([]float64, 0, len(runRes.Reports))
	for _, rep := range runRes.Reports {
		energies = append(energies, rep.Energy)
		if *verbose {
			fmt.Fprintf(out, "round %3d: ddl %6.1fs used %6.1fs energy %7.1fJ phase=%v explored=%d\n",
				rep.Round, rep.Deadline, rep.Duration, rep.Energy, rep.Phase, len(rep.Explored))
		}
	}
	fmt.Fprintf(out, "energy/round: %s\n", experiment.Sparkline(energies))
	fmt.Fprintf(out, "total energy: %.0f J over %d rounds (%.1f J/round)\n",
		runRes.TotalEnergy, len(runRes.Reports), runRes.TotalEnergy/float64(len(runRes.Reports)))
	fmt.Fprintf(out, "deadline misses: %d\n", runRes.DeadlineMisses)
	if runRes.BoFL != nil {
		p1, p2 := runRes.PhaseBoundaries()
		fmt.Fprintf(out, "phases: random-explore ≤ r%d, pareto-construct ≤ r%d, exploit after\n", p1, p2)
		fmt.Fprintf(out, "explored %d/%d configurations (%.1f%%), front size %d\n",
			runRes.BoFL.NumExplored(), dev.Space().Size(),
			100*float64(runRes.BoFL.NumExplored())/float64(dev.Space().Size()),
			len(runRes.BoFL.Front()))
		fmt.Fprintf(out, "MBO wall time: %v over %d runs\n", runRes.MBOWallTime(), len(runRes.MBO))
	}
	return nil
}
