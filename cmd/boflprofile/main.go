// Command boflprofile exhaustively profiles a simulated device's DVFS space
// for one workload — the offline step that produces the Oracle baseline — and
// emits the profile (optionally as JSON) plus its true Pareto front.
//
// It also doubles as the round-ledger post-mortem tool: point it at a JSONL
// journal written by flserver -ledger (or GET /v1/ledger) to roll attempt
// verdicts up into per-client energy/latency/wire attribution, or stitch one
// round's events into a Chrome trace.
//
// Usage:
//
//	boflprofile -device agx -workload vit
//	boflprofile -device tx2 -workload resnet50 -json profile.json
//	boflprofile -ledger run.ledger.jsonl
//	boflprofile -ledger run.ledger.jsonl -round 3 -chrome round3.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"bofl/internal/device"
	"bofl/internal/obs"
	"bofl/internal/obs/ledger"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "boflprofile:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("boflprofile", flag.ContinueOnError)
	var (
		devName  = fs.String("device", "agx", "device: agx or tx2")
		workload = fs.String("workload", "vit", "workload: vit, resnet50 or lstm")
		jsonPath = fs.String("json", "", "write the full profile as JSON to this path")
		pprofFlg = fs.String("pprof", "", "serve net/http/pprof on this address during the sweep (empty = off)")

		ledgerPath = fs.String("ledger", "", "summarize a round-ledger JSONL journal instead of profiling")
		round      = fs.Int("round", 0, "with -ledger: narrow to one round (0 = all)")
		chromePath = fs.String("chrome", "", "with -ledger: also write the selected events as a Chrome trace to this path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pprofFlg != "" {
		obs.ServePprof(*pprofFlg)
	}
	if *ledgerPath != "" {
		return summarizeLedger(*ledgerPath, *round, *chromePath, out)
	}
	dev, ok := device.ByName(*devName)
	if !ok {
		return fmt.Errorf("unknown device %q", *devName)
	}
	profile, err := device.ProfileAll(dev, device.Workload(*workload))
	if err != nil {
		return err
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(profile); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d profile points to %s\n", len(profile.Points), *jsonPath)
	}

	front := profile.ParetoFront()
	fmt.Fprintf(out, "%s / %s: %d configurations, %d on the Pareto front, T_min %.3fs per minibatch\n",
		dev.Name(), *workload, len(profile.Points), len(front), profile.MinLatency())
	fmt.Fprintln(out, "pareto front (energy-ascending):")
	fmt.Fprintln(out, "cpu(GHz)  gpu(GHz)  mem(GHz)  latency(s)  energy(J)")
	for _, i := range front {
		p := profile.Points[i]
		fmt.Fprintf(out, "%7.2f  %8.2f  %8.2f  %10.3f  %9.3f\n",
			float64(p.Config.CPU), float64(p.Config.GPU), float64(p.Config.Mem), p.Latency, p.Energy)
	}
	return nil
}

// summarizeLedger reads a round-ledger JSONL journal and prints the roll-up:
// round outcomes plus per-client attempt/verdict/energy attribution. With
// chromePath set the selected events are additionally stitched into a Chrome
// trace on deterministic virtual-time lanes (one lane per client).
func summarizeLedger(path string, round int, chromePath string, out io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	events, err := ledger.ReadJSONL(f)
	f.Close()
	if err != nil {
		return err
	}
	if round > 0 {
		kept := events[:0:0]
		for _, ev := range events {
			if ev.Round == round {
				kept = append(kept, ev)
			}
		}
		events = kept
	}
	if len(events) == 0 {
		return fmt.Errorf("no ledger events in %s (round filter %d)", path, round)
	}

	s := ledger.Summarize(events)
	fmt.Fprintf(out, "ledger %s: %d events, %d rounds (%d commits, %d aborts, %d quorum commits), %d attempts\n",
		path, len(events), s.Rounds, s.Commits, s.Aborts, s.Quorums, s.Attempts)
	fmt.Fprintf(out, "totals: %.1f J, %.1f s busy, %d wire bytes\n", s.EnergyJ, s.LatencyS, s.WireBytes)
	fmt.Fprintln(out, "client           attempts  folded  retries  drops  crashes  stragglers  corrupt  quarantines   energy(J)  latency(s)   wire(B)")
	for _, c := range s.Clients {
		fmt.Fprintf(out, "%-16s %8d  %6d  %7d  %5d  %7d  %10d  %7d  %11d  %10.1f  %10.1f  %8d\n",
			c.Client, c.Attempts, c.Folded, c.Retries, c.Drops, c.Crashes,
			c.Stragglers, c.Corrupt, c.Quarantines, c.EnergyJoules, c.LatencySecs,
			c.WireTxBytes+c.WireRxBytes)
	}

	if chromePath != "" {
		spans := stitchLedger(events)
		cf, err := os.Create(chromePath)
		if err != nil {
			return err
		}
		defer cf.Close()
		if err := obs.WriteEventsChrome(cf, spans); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d trace events to %s\n", len(spans), chromePath)
	}
	return nil
}

// stitchLedger reconstructs a viewable trace from ledger events. The ledger
// records no wall-clock times (by design — that is what makes it replayable),
// so lanes are laid out in deterministic virtual time: each client's attempts
// advance its own cursor by injected delay + backoff + reported latency, and
// round markers are instants at the round's start.
func stitchLedger(events []ledger.Event) []obs.SpanEvent {
	const ns = int64(1e9)
	cursors := map[string]int64{} // client → virtual ns consumed
	var spans []obs.SpanEvent
	var roundStart int64
	for _, ev := range events {
		var labels obs.Labels
		if ev.TraceID != "" {
			labels = append(labels, obs.L(obs.LabelTraceID, ev.TraceID))
		}
		switch ev.Kind {
		case ledger.KindRoundBegin:
			// New round: every client lane restarts at the slowest lane seen
			// so far, keeping rounds visually sequential.
			for _, c := range cursors {
				if c > roundStart {
					roundStart = c
				}
			}
			for id := range cursors {
				cursors[id] = roundStart
			}
			labels = append(labels, obs.L("selected", fmt.Sprint(ev.Selected)))
			spans = append(spans, obs.SpanEvent{
				Name: "bofl_" + obs.SpanFLRound, Start: roundStart, Instant: true, Labels: labels,
			})
		case ledger.KindAttempt:
			start := max(cursors[ev.Client], roundStart)
			dur := ev.DelayNs + ev.BackoffNs + int64(ev.LatencySeconds*float64(ns))
			labels = append(labels, obs.L("client", ev.Client), obs.L("verdict", ev.Verdict))
			if ev.SpanID != "" {
				labels = append(labels, obs.L(obs.LabelSpanID, ev.SpanID))
			}
			spans = append(spans, obs.SpanEvent{
				Name: obs.SpanFLAttempt + "/" + ev.Verdict, Start: start, Dur: dur, Labels: labels,
			})
			cursors[ev.Client] = start + dur
		default:
			at := roundStart
			for _, c := range cursors {
				if c > at {
					at = c
				}
			}
			labels = append(labels, obs.L("kind", ev.Kind))
			if ev.Client != "" {
				labels = append(labels, obs.L("client", ev.Client))
			}
			spans = append(spans, obs.SpanEvent{
				Name: "ledger_" + ev.Kind, Start: at, Instant: true, Labels: labels,
			})
		}
	}
	return spans
}
