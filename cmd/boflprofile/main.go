// Command boflprofile exhaustively profiles a simulated device's DVFS space
// for one workload — the offline step that produces the Oracle baseline — and
// emits the profile (optionally as JSON) plus its true Pareto front.
//
// Usage:
//
//	boflprofile -device agx -workload vit
//	boflprofile -device tx2 -workload resnet50 -json profile.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"bofl/internal/device"
	"bofl/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "boflprofile:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("boflprofile", flag.ContinueOnError)
	var (
		devName  = fs.String("device", "agx", "device: agx or tx2")
		workload = fs.String("workload", "vit", "workload: vit, resnet50 or lstm")
		jsonPath = fs.String("json", "", "write the full profile as JSON to this path")
		pprofFlg = fs.String("pprof", "", "serve net/http/pprof on this address during the sweep (empty = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pprofFlg != "" {
		obs.ServePprof(*pprofFlg)
	}
	dev, ok := device.ByName(*devName)
	if !ok {
		return fmt.Errorf("unknown device %q", *devName)
	}
	profile, err := device.ProfileAll(dev, device.Workload(*workload))
	if err != nil {
		return err
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(profile); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d profile points to %s\n", len(profile.Points), *jsonPath)
	}

	front := profile.ParetoFront()
	fmt.Fprintf(out, "%s / %s: %d configurations, %d on the Pareto front, T_min %.3fs per minibatch\n",
		dev.Name(), *workload, len(profile.Points), len(front), profile.MinLatency())
	fmt.Fprintln(out, "pareto front (energy-ascending):")
	fmt.Fprintln(out, "cpu(GHz)  gpu(GHz)  mem(GHz)  latency(s)  energy(J)")
	for _, i := range front {
		p := profile.Points[i]
		fmt.Fprintf(out, "%7.2f  %8.2f  %8.2f  %10.3f  %9.3f\n",
			float64(p.Config.CPU), float64(p.Config.GPU), float64(p.Config.Mem), p.Latency, p.Energy)
	}
	return nil
}
