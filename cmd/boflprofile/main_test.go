package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bofl/internal/device"
)

func TestRunProfileText(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-device", "tx2", "-workload", "lstm"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "936 configurations") {
		t.Errorf("output missing space size:\n%s", out)
	}
	if !strings.Contains(out, "pareto front") {
		t.Errorf("output missing front:\n%s", out)
	}
}

func TestRunProfileJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "profile.json")
	var buf bytes.Buffer
	if err := run([]string{"-device", "agx", "-workload", "vit", "-json", path}, &buf); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var p device.Profile
	if err := json.Unmarshal(raw, &p); err != nil {
		t.Fatal(err)
	}
	if len(p.Points) != 2100 {
		t.Errorf("profile has %d points", len(p.Points))
	}
}

func TestRunProfileErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-device", "nope"}, &buf); err == nil {
		t.Error("unknown device accepted")
	}
	if err := run([]string{"-workload", "nope"}, &buf); err == nil {
		t.Error("unknown workload accepted")
	}
}
