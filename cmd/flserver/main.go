// Command flserver orchestrates a federated learning task over HTTP client
// daemons (cmd/flclient): per round it selects participants, assigns a
// deadline, dispatches training and aggregates the updates with the
// configured strategy (-aggregator: fedavg, fedprox, fednova or scaffold).
//
// Usage:
//
//	flserver -clients http://127.0.0.1:8071,http://127.0.0.1:8072 -rounds 20
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"bofl/internal/faultinject"
	"bofl/internal/fl"
	"bofl/internal/ml"
	"bofl/internal/obs"
	"bofl/internal/obs/ledger"
	"bofl/internal/parallel"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "flserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("flserver", flag.ContinueOnError)
	var (
		clients  = fs.String("clients", "", "comma-separated client base URLs to dial directly")
		checkin  = fs.String("checkin", "", "listen address for client check-ins (Figure 1 step 1), e.g. :8070")
		minPool  = fs.Int("min-pool", 1, "with -checkin: wait until this many clients registered")
		rounds   = fs.Int("rounds", 20, "FL rounds")
		jobs     = fs.Int("jobs", 100, "jobs (minibatches) per round")
		ratio    = fs.Float64("ratio", 2.0, "deadline ratio T_max/T_min")
		perRound = fs.Int("per-round", 0, "participants per round (0 = all)")
		seed     = fs.Int64("seed", 1, "random seed")
		timeout  = fs.Duration("timeout", 5*time.Minute, "per-round HTTP timeout")
		admin    = fs.String("admin", "", "serve /metrics, /healthz, /v1/telemetry and /v1/ledger on this address (empty = off)")
		hold     = fs.Duration("hold", 0, "keep the process (and admin endpoints) alive this long after the last round")
		pprofFlg = fs.String("pprof", "", "also serve net/http/pprof on this address (empty = off)")
		fanout   = fs.Int("fanout", 0, "round dispatch width: max concurrent participant requests (0 = GOMAXPROCS)")

		aggName = fs.String("aggregator", "fedavg", "aggregation strategy: fedavg, fedprox, fednova or scaffold")
		proxMu  = fs.Float64("prox-mu", 0, "with -aggregator fedprox: proximal term coefficient μ")

		treeFanout = fs.Int("tree-fanout", 0, "hierarchical aggregation: children per tree aggregator node (0 = flat fold, ≥2 = tree)")
		tierQuorum = fs.Float64("tier-quorum", 0, "with -tree-fanout: fraction of an aggregator's children that must deliver or its whole subtree drops (0 = off)")

		quorum      = fs.Float64("quorum", 0, "fraction of selected clients whose updates must arrive for a round to commit (0 = legacy strict/tolerant semantics, >0 implies dropout tolerance)")
		retries     = fs.Int("retries", 1, "attempts per participant per round (1 = no retries)")
		retryBudget = fs.Int("retry-budget", 0, "total retries allowed across all participants per round (0 = unbounded)")
		attemptTO   = fs.Duration("attempt-timeout", 0, "per-attempt timeout before a participant is stripped as a straggler (0 = unbounded)")

		chaosSeed     = fs.Int64("chaos-seed", 0, "seed for the deterministic fault plan (0 = chaos off)")
		chaosDrop     = fs.Float64("chaos-drop", 0, "per-attempt probability a client drops before training")
		chaosCrash    = fs.Float64("chaos-crash", 0, "per-attempt probability a client trains but dies before reporting")
		chaosTimeout  = fs.Float64("chaos-timeout", 0, "per-attempt probability a client hangs past the attempt timeout")
		chaosCorrupt  = fs.Float64("chaos-corrupt", 0, "per-attempt probability a client ships a corrupt frame (quarantines it)")
		chaosStraggle = fs.Float64("chaos-straggle", 0, "per-attempt probability a client straggles")
		chaosStragMin = fs.Duration("chaos-straggle-min", 0, "minimum injected straggler delay")
		chaosStragMax = fs.Duration("chaos-straggle-max", 30*time.Second, "maximum injected straggler delay")
		chaosFlaky    = fs.Int("chaos-flaky", 0, "every client fails its first N attempts per round, then recovers")

		ledgerPath = fs.String("ledger", "", "journal every round's ledger events to this JSONL file (empty = off)")
		ledgerMax  = fs.Int("ledger-max", 0, "in-memory ledger ring size in events (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// How many clients the round can select — URL count when dialing
	// directly, the check-in floor otherwise.
	poolHint := *minPool
	if *clients != "" {
		poolHint = 0
		for _, url := range strings.Split(*clients, ",") {
			if strings.TrimSpace(url) != "" {
				poolHint++
			}
		}
	}
	requested := *fanout
	if requested <= 0 {
		requested = parallel.Workers()
	}
	dispatch, err := validateDispatch(requested, *treeFanout, *tierQuorum, poolHint, *retryBudget)
	if err != nil {
		return err
	}
	if dispatch < requested {
		fmt.Printf("dispatch width clamped %d -> %d: a depth-%d tree of fanout %d cannot fold more leaves concurrently\n",
			requested, dispatch, treeDepth(*treeFanout, poolHint), *treeFanout)
	}
	parallel.SetWorkers(dispatch)
	var policy faultinject.Policy
	if *chaosSeed != 0 {
		policy = &faultinject.Plan{
			Seed: *chaosSeed,
			Default: faultinject.Profile{
				FlakyAttempts: *chaosFlaky,
				Drop:          *chaosDrop,
				Crash:         *chaosCrash,
				Timeout:       *chaosTimeout,
				Corrupt:       *chaosCorrupt,
				Straggle:      *chaosStraggle,
				StraggleMin:   *chaosStragMin,
				StraggleMax:   *chaosStragMax,
			},
		}
		fmt.Printf("chaos plan armed (seed %d)\n", *chaosSeed)
	}

	global, err := ml.NewMLP(8, 16, 4, 42)
	if err != nil {
		return err
	}
	var selector fl.Selector = fl.AllSelector{}
	if *perRound > 0 {
		selector = fl.NewRandomSelector(*seed)
	}
	// The round ledger is always on: it is cheap (structured appends into a
	// bounded ring) and it is the artifact the post-mortem tooling
	// (boflprofile -ledger, GET /v1/ledger) reads.
	led := ledger.New(*ledgerMax)
	if *ledgerPath != "" {
		f, err := os.Create(*ledgerPath)
		if err != nil {
			return fmt.Errorf("ledger sink: %w", err)
		}
		defer func() {
			_ = led.Flush()
			_ = f.Close()
		}()
		led.SetSink(f)
		fmt.Printf("ledger journal -> %s\n", *ledgerPath)
	}
	agg, err := fl.NewAggregator(*aggName, *proxMu)
	if err != nil {
		return err
	}
	if agg.Name() != fl.AlgFedAvg {
		fmt.Printf("aggregation strategy: %s\n", agg.Name())
	}
	var tree *fl.TreeConfig
	if *treeFanout > 0 {
		tree = &fl.TreeConfig{Fanout: *treeFanout, TierQuorum: *tierQuorum}
		fmt.Printf("hierarchical aggregation: fanout %d, tier quorum %v\n", *treeFanout, *tierQuorum)
	}
	srv, err := fl.NewServer(fl.ServerConfig{
		InitialParams:        global.Params(),
		Jobs:                 *jobs,
		DeadlineRatio:        *ratio,
		Selector:             selector,
		ParticipantsPerRound: *perRound,
		Seed:                 *seed,
		Quorum:               *quorum,
		Tree:                 tree,
		Retry: fl.RetryConfig{
			MaxAttempts:    *retries,
			AttemptTimeout: *attemptTO,
			Budget:         *retryBudget,
			Seed:           *seed,
		},
		FaultPolicy: policy,
		Ledger:      led,
		Aggregator:  agg,
	})
	if err != nil {
		return err
	}
	// Server-side telemetry: the server folds client round reports into the
	// BoFL domain instruments, so one scrape of the admin endpoint shows
	// federation-wide energy, deadline misses and controller phases.
	tel := obs.NewBoFL(obs.Real{})
	srv.SetSink(tel)
	if *admin != "" {
		mux := http.NewServeMux()
		tel.Mount(mux)
		mux.Handle("GET /v1/ledger", led.Handler())
		go func() {
			if err := http.ListenAndServe(*admin, mux); err != nil {
				fmt.Fprintln(os.Stderr, "flserver: admin listener:", err)
			}
		}()
		fmt.Printf("admin endpoints on %s (/metrics /healthz /v1/telemetry /v1/ledger)\n", *admin)
	}
	if *pprofFlg != "" {
		obs.ServePprof(*pprofFlg)
		fmt.Printf("pprof on http://%s/debug/pprof/\n", *pprofFlg)
	}
	switch {
	case *checkin != "":
		// Figure 1, step 1: wait for devices to check in.
		reg := fl.NewRegistry(*timeout)
		httpSrv := &http.Server{Addr: *checkin, Handler: reg.Handler()}
		go func() {
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "flserver: check-in listener:", err)
			}
		}()
		defer httpSrv.Close()
		fmt.Printf("waiting for %d client(s) to check in on %s\n", *minPool, *checkin)
		for reg.Len() < *minPool {
			time.Sleep(200 * time.Millisecond)
		}
		for _, p := range reg.Participants() {
			if ss, ok := p.(interface{ SetSink(obs.Sink) }); ok {
				ss.SetSink(tel)
			}
			srv.Register(p)
			if cp, ok := p.(interface{ Codec() string }); ok {
				fmt.Printf("registered %s via check-in (codec %s)\n", p.ID(), cp.Codec())
			} else {
				fmt.Printf("registered %s via check-in\n", p.ID())
			}
		}
	case *clients != "":
		for _, url := range strings.Split(*clients, ",") {
			url = strings.TrimSpace(url)
			if url == "" {
				continue
			}
			p, err := fl.DialParticipant(url, *timeout)
			if err != nil {
				return err
			}
			p.SetSink(tel)
			srv.Register(p)
			fmt.Printf("registered %s at %s (codec %s)\n", p.ID(), url, p.Codec())
		}
	default:
		return fmt.Errorf("need -clients or -checkin")
	}
	if err := orchestrate(srv, *rounds, os.Stdout); err != nil {
		return err
	}
	// Make the journal durable before any hold period: a scraper (or a CI
	// smoke kill) must find every committed round on disk already.
	if err := led.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "flserver: ledger sink: %v\n", err)
	}
	if *hold > 0 {
		// Leave the admin endpoints scrapeable after the run — the CI smoke
		// test curls /metrics once the rounds are done.
		fmt.Printf("holding for %v\n", *hold)
		time.Sleep(*hold)
	}
	return nil
}

// orchestrate drives the federation for the given number of rounds, printing
// per-round summaries.
func orchestrate(srv *fl.Server, rounds int, out io.Writer) error {
	for r := 0; r < rounds; r++ {
		res, err := srv.RunRound()
		if err != nil {
			return err
		}
		var energy float64
		misses := 0
		for _, rep := range res.Reports {
			energy += rep.Energy
			if !rep.DeadlineMet {
				misses++
			}
		}
		casualties := ""
		if len(res.Dropped) > 0 {
			casualties = fmt.Sprintf(", %d dropped (%d stragglers, %d quarantined)",
				len(res.Dropped), len(res.Stragglers), len(res.Quarantined))
		}
		fmt.Fprintf(out, "round %3d: deadline %6.1fs, %d participants, %8.1f J, %d misses%s, trace %s\n",
			res.Round, res.Deadline, len(res.Responses), energy, misses, casualties, res.TraceID)
	}
	fmt.Fprintln(out, "done; global model aggregated over", rounds, "rounds")
	return nil
}

// treeDepth is the number of aggregation tiers a fanout-ary tree needs over a
// pool of the given size (1 when the whole pool fits under one node).
func treeDepth(fanout, pool int) int {
	if fanout < 2 || pool <= 0 {
		return 0
	}
	depth := 1
	for span := fanout; span < pool; span *= fanout {
		depth++
	}
	return depth
}

// validateDispatch reconciles -fanout (dispatch width), -tree-fanout
// (aggregation tree shape) and -retry-budget before any round runs, returning
// the dispatch width to install.
//
// Two rules govern the interplay:
//
//  1. The fold turnstile admits leaves in index order, so a tree of depth d
//     can have at most tree-fanout × d leaf slots making fold progress at
//     once (one open group per tier); a wider dispatch only parks goroutines
//     at the turnstile. The width is clamped to that bound — a fix, not an
//     error.
//  2. A positive -retry-budget is shared by all concurrent attempts. If the
//     dispatch width exceeds the budget, which attempts draw the last budget
//     tokens becomes a goroutine-scheduling accident: the same seed could
//     journal different "budget" verdicts on different machines, and chaos
//     replays stop being deterministic. That config is rejected.
func validateDispatch(workers, treeFanout int, tierQuorum float64, pool, retryBudget int) (int, error) {
	if treeFanout != 0 && treeFanout < 2 {
		return 0, fmt.Errorf("-tree-fanout %d must be 0 (flat) or ≥ 2", treeFanout)
	}
	if tierQuorum < 0 || tierQuorum > 1 {
		return 0, fmt.Errorf("-tier-quorum %v must be in [0, 1]", tierQuorum)
	}
	if tierQuorum > 0 && treeFanout == 0 {
		return 0, fmt.Errorf("-tier-quorum %v needs -tree-fanout", tierQuorum)
	}
	if workers < 1 {
		return 0, fmt.Errorf("dispatch width %d must be ≥ 1", workers)
	}
	if treeFanout >= 2 && pool > 0 {
		if bound := treeFanout * treeDepth(treeFanout, pool); workers > bound {
			workers = bound
		}
	}
	if retryBudget > 0 && workers > retryBudget {
		return 0, fmt.Errorf(
			"dispatch width %d exceeds -retry-budget %d: concurrent attempts would spend the shared budget in scheduling order and straggler verdicts would not replay; lower -fanout or raise -retry-budget",
			workers, retryBudget)
	}
	return workers, nil
}
