package main

import (
	"bytes"
	"strings"
	"testing"

	"bofl/internal/core"
	"bofl/internal/device"
	"bofl/internal/faultinject"
	"bofl/internal/fl"
	"bofl/internal/ml"
)

func testServer(t *testing.T, n int) *fl.Server {
	t.Helper()
	global, err := ml.NewMLP(8, 16, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := fl.NewServer(fl.ServerConfig{
		InitialParams: global.Params(),
		Jobs:          20,
		DeadlineRatio: 2,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	dev := device.JetsonAGX()
	for i := 0; i < n; i++ {
		model, err := ml.NewMLP(8, 16, 4, 42)
		if err != nil {
			t.Fatal(err)
		}
		data, err := ml.Blobs(64, 8, 4, 0.6, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		ctrl, err := core.NewPerformant(dev.Space())
		if err != nil {
			t.Fatal(err)
		}
		c, err := fl.NewClient(fl.ClientConfig{
			ID: "c" + string(rune('0'+i)), Device: dev, Workload: device.ViT,
			Model: model, Data: data, BatchSize: 8, LearnRate: 0.1,
			Controller: ctrl, Seed: int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		srv.Register(&fl.LocalParticipant{Client: c})
	}
	return srv
}

func TestOrchestratePrintsRounds(t *testing.T) {
	srv := testServer(t, 2)
	var buf bytes.Buffer
	if err := orchestrate(srv, 3, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "round ") != 3 {
		t.Errorf("expected 3 round lines:\n%s", out)
	}
	if !strings.Contains(out, "0 misses") {
		t.Errorf("expected zero misses:\n%s", out)
	}
	if !strings.Contains(out, "done;") {
		t.Errorf("missing completion line:\n%s", out)
	}
}

// TestOrchestrateReportsCasualties drives a chaos-configured federation and
// checks the per-round summary surfaces dropped participants.
func TestOrchestrateReportsCasualties(t *testing.T) {
	global, err := ml.NewMLP(8, 16, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := fl.NewServer(fl.ServerConfig{
		InitialParams: global.Params(),
		Jobs:          20,
		DeadlineRatio: 2,
		Seed:          1,
		Quorum:        0.5,
		Retry:         fl.RetryConfig{MaxAttempts: 1, Seed: 1},
		FaultPolicy: faultinject.Scripted{
			{Layer: faultinject.LayerParticipant, Client: "c1", Round: 1}: {Drop: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	dev := device.JetsonAGX()
	for i := 0; i < 3; i++ {
		model, err := ml.NewMLP(8, 16, 4, 42)
		if err != nil {
			t.Fatal(err)
		}
		data, err := ml.Blobs(64, 8, 4, 0.6, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		ctrl, err := core.NewPerformant(dev.Space())
		if err != nil {
			t.Fatal(err)
		}
		c, err := fl.NewClient(fl.ClientConfig{
			ID: "c" + string(rune('0'+i)), Device: dev, Workload: device.ViT,
			Model: model, Data: data, BatchSize: 8, LearnRate: 0.1,
			Controller: ctrl, Seed: int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		srv.Register(&fl.LocalParticipant{Client: c})
	}
	var buf bytes.Buffer
	if err := orchestrate(srv, 1, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1 dropped") {
		t.Errorf("casualty summary missing:\n%s", buf.String())
	}
}

// TestValidateDispatch pins the -fanout / -tree-fanout / -retry-budget
// interplay: tree depth bounds useful concurrency (clamped), and widths past
// a shared retry budget are rejected as non-replayable.
func TestValidateDispatch(t *testing.T) {
	cases := []struct {
		name                    string
		workers, treeFanout     int
		tierQuorum              float64
		pool, retryBudget, want int
		wantErr                 bool
	}{
		{name: "flat passthrough", workers: 16, pool: 100, want: 16},
		{name: "tree clamps width", workers: 64, treeFanout: 4, pool: 64, want: 4 * 3},
		{name: "tree under bound untouched", workers: 6, treeFanout: 4, pool: 64, want: 6},
		{name: "single-tier pool", workers: 32, treeFanout: 8, pool: 8, want: 8},
		{name: "budget rejects wide dispatch", workers: 16, pool: 100, retryBudget: 8, wantErr: true},
		{name: "budget ok after tree clamp", workers: 64, treeFanout: 4, pool: 64, retryBudget: 12, want: 12},
		{name: "budget rejects even clamped", workers: 64, treeFanout: 4, pool: 64, retryBudget: 4, wantErr: true},
		{name: "tree fanout 1 invalid", workers: 4, treeFanout: 1, pool: 10, wantErr: true},
		{name: "tier quorum needs tree", workers: 4, tierQuorum: 0.5, pool: 10, wantErr: true},
		{name: "tier quorum out of range", workers: 4, treeFanout: 2, tierQuorum: 1.5, pool: 10, wantErr: true},
		{name: "zero workers invalid", workers: 0, pool: 10, wantErr: true},
	}
	for _, c := range cases {
		got, err := validateDispatch(c.workers, c.treeFanout, c.tierQuorum, c.pool, c.retryBudget)
		if c.wantErr {
			if err == nil {
				t.Errorf("%s: accepted, got width %d", c.name, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s: width %d, want %d", c.name, got, c.want)
		}
	}
}

// TestTreeDepth pins the depth bound used for clamping.
func TestTreeDepth(t *testing.T) {
	cases := []struct{ fanout, pool, want int }{
		{2, 1, 1}, {2, 2, 1}, {2, 3, 2}, {2, 8, 3},
		{4, 64, 3}, {8, 8, 1}, {32, 10_000, 3}, {0, 10, 0},
	}
	for _, c := range cases {
		if got := treeDepth(c.fanout, c.pool); got != c.want {
			t.Errorf("treeDepth(%d, %d) = %d, want %d", c.fanout, c.pool, got, c.want)
		}
	}
}

// TestOrchestrateTreeRound drives a real tree-configured federation end to
// end through the cmd-layer orchestrator.
func TestOrchestrateTreeRound(t *testing.T) {
	global, err := ml.NewMLP(8, 16, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := fl.NewServer(fl.ServerConfig{
		InitialParams: global.Params(),
		Jobs:          20,
		DeadlineRatio: 2,
		Seed:          1,
		Tree:          &fl.TreeConfig{Fanout: 2, TierQuorum: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	dev := device.JetsonAGX()
	for i := 0; i < 5; i++ {
		model, err := ml.NewMLP(8, 16, 4, 42)
		if err != nil {
			t.Fatal(err)
		}
		data, err := ml.Blobs(64, 8, 4, 0.6, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		ctrl, err := core.NewPerformant(dev.Space())
		if err != nil {
			t.Fatal(err)
		}
		c, err := fl.NewClient(fl.ClientConfig{
			ID: "c" + string(rune('0'+i)), Device: dev, Workload: device.ViT,
			Model: model, Data: data, BatchSize: 8, LearnRate: 0.1,
			Controller: ctrl, Seed: int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		srv.Register(&fl.LocalParticipant{Client: c})
	}
	var buf bytes.Buffer
	if err := orchestrate(srv, 2, &buf); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "round ") != 2 {
		t.Errorf("expected 2 tree rounds:\n%s", buf.String())
	}
}

func TestOrchestratePropagatesErrors(t *testing.T) {
	global, err := ml.NewMLP(2, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := fl.NewServer(fl.ServerConfig{InitialParams: global.Params(), Jobs: 1, DeadlineRatio: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orchestrate(srv, 1, &buf); err == nil {
		t.Error("empty federation accepted")
	}
}
