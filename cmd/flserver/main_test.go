package main

import (
	"bytes"
	"strings"
	"testing"

	"bofl/internal/core"
	"bofl/internal/device"
	"bofl/internal/faultinject"
	"bofl/internal/fl"
	"bofl/internal/ml"
)

func testServer(t *testing.T, n int) *fl.Server {
	t.Helper()
	global, err := ml.NewMLP(8, 16, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := fl.NewServer(fl.ServerConfig{
		InitialParams: global.Params(),
		Jobs:          20,
		DeadlineRatio: 2,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	dev := device.JetsonAGX()
	for i := 0; i < n; i++ {
		model, err := ml.NewMLP(8, 16, 4, 42)
		if err != nil {
			t.Fatal(err)
		}
		data, err := ml.Blobs(64, 8, 4, 0.6, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		ctrl, err := core.NewPerformant(dev.Space())
		if err != nil {
			t.Fatal(err)
		}
		c, err := fl.NewClient(fl.ClientConfig{
			ID: "c" + string(rune('0'+i)), Device: dev, Workload: device.ViT,
			Model: model, Data: data, BatchSize: 8, LearnRate: 0.1,
			Controller: ctrl, Seed: int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		srv.Register(&fl.LocalParticipant{Client: c})
	}
	return srv
}

func TestOrchestratePrintsRounds(t *testing.T) {
	srv := testServer(t, 2)
	var buf bytes.Buffer
	if err := orchestrate(srv, 3, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "round ") != 3 {
		t.Errorf("expected 3 round lines:\n%s", out)
	}
	if !strings.Contains(out, "0 misses") {
		t.Errorf("expected zero misses:\n%s", out)
	}
	if !strings.Contains(out, "done;") {
		t.Errorf("missing completion line:\n%s", out)
	}
}

// TestOrchestrateReportsCasualties drives a chaos-configured federation and
// checks the per-round summary surfaces dropped participants.
func TestOrchestrateReportsCasualties(t *testing.T) {
	global, err := ml.NewMLP(8, 16, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := fl.NewServer(fl.ServerConfig{
		InitialParams: global.Params(),
		Jobs:          20,
		DeadlineRatio: 2,
		Seed:          1,
		Quorum:        0.5,
		Retry:         fl.RetryConfig{MaxAttempts: 1, Seed: 1},
		FaultPolicy: faultinject.Scripted{
			{Layer: faultinject.LayerParticipant, Client: "c1", Round: 1}: {Drop: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	dev := device.JetsonAGX()
	for i := 0; i < 3; i++ {
		model, err := ml.NewMLP(8, 16, 4, 42)
		if err != nil {
			t.Fatal(err)
		}
		data, err := ml.Blobs(64, 8, 4, 0.6, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		ctrl, err := core.NewPerformant(dev.Space())
		if err != nil {
			t.Fatal(err)
		}
		c, err := fl.NewClient(fl.ClientConfig{
			ID: "c" + string(rune('0'+i)), Device: dev, Workload: device.ViT,
			Model: model, Data: data, BatchSize: 8, LearnRate: 0.1,
			Controller: ctrl, Seed: int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		srv.Register(&fl.LocalParticipant{Client: c})
	}
	var buf bytes.Buffer
	if err := orchestrate(srv, 1, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1 dropped") {
		t.Errorf("casualty summary missing:\n%s", buf.String())
	}
}

func TestOrchestratePropagatesErrors(t *testing.T) {
	global, err := ml.NewMLP(2, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := fl.NewServer(fl.ServerConfig{InitialParams: global.Params(), Jobs: 1, DeadlineRatio: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orchestrate(srv, 1, &buf); err == nil {
		t.Error("empty federation accepted")
	}
}
