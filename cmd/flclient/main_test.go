package main

import (
	"flag"
	"net/http/httptest"
	"testing"
	"time"

	"bofl/internal/fl"
)

func TestParseClientFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	cfg, err := parseClientFlags(fs, []string{"-id", "edge-9", "-device", "tx2", "-controller", "performant", "-examples", "64"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.id != "edge-9" || cfg.devName != "tx2" || cfg.controller != "performant" || cfg.examples != 64 {
		t.Errorf("parsed %+v", cfg)
	}
	fs2 := flag.NewFlagSet("test", flag.ContinueOnError)
	if _, err := parseClientFlags(fs2, []string{"-badflag"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestBuildClientErrors(t *testing.T) {
	if _, err := buildClient(clientConfig{devName: "nope", controller: "bofl", examples: 16}); err == nil {
		t.Error("unknown device accepted")
	}
	if _, err := buildClient(clientConfig{id: "a", devName: "agx", controller: "nope", examples: 16}); err == nil {
		t.Error("unknown controller accepted")
	}
}

func TestDaemonEndToEnd(t *testing.T) {
	client, err := buildClient(clientConfig{id: "edge-t", devName: "agx", controller: "performant", seed: 1, examples: 64})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(fl.NewClientHandler(client))
	defer ts.Close()

	p, err := fl.DialParticipant(ts.URL, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := p.Round(fl.RoundRequest{Round: 1, Params: client.Params(), Jobs: 10, Deadline: 60})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ClientID != "edge-t" || !resp.Report.DeadlineMet {
		t.Errorf("bad response %+v", resp.Report)
	}
}
