// Command flclient runs an FL client daemon: a simulated edge device that
// trains a shared model on local synthetic data under BoFL pace control and
// serves the training endpoint over HTTP for cmd/flserver.
//
// Usage:
//
//	flclient -listen :8071 -id edge-0 -device agx -seed 1
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"bofl/internal/core"
	"bofl/internal/device"
	"bofl/internal/fl"
	"bofl/internal/ml"
	"bofl/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "flclient:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("flclient", flag.ContinueOnError)
	listen := fs.String("listen", ":8071", "HTTP listen address")
	server := fs.String("server", "", "optional flserver check-in URL, e.g. http://127.0.0.1:8070")
	advertise := fs.String("advertise", "", "base URL the server should dial back (default http://127.0.0.1<listen>)")
	checkinRetries := fs.Int("checkin-retries", 5, "check-in attempts against an unreachable server")
	checkinTimeout := fs.Duration("checkin-timeout", 10*time.Second, "per-attempt check-in deadline")
	pprofAddr := fs.String("pprof", "", "also serve net/http/pprof on this address (empty = off)")
	jsonOnly := fs.Bool("json-only", false, "disable the binary wire codec and speak JSON only (pre-codec behaviour)")
	noSpans := fs.Bool("no-span-report", false, "ignore server trace contexts and return no client span summaries in round reports")
	cfg, err := parseClientFlags(fs, args)
	if err != nil {
		return err
	}
	client, err := buildClient(cfg)
	if err != nil {
		return err
	}
	if *server != "" {
		// Figure 1, step 1: announce ourselves to the server.
		base := *advertise
		if base == "" {
			base = "http://127.0.0.1" + *listen
		}
		go func() {
			time.Sleep(300 * time.Millisecond) // let the listener come up
			// Each attempt is context-bounded, so a dead or hung server
			// can't wedge the daemon; backoff doubles between attempts.
			req := fl.CheckinRequest{ClientID: cfg.id, BaseURL: base, Device: cfg.devName}
			backoff := 500 * time.Millisecond
			for attempt := 0; ; attempt++ {
				ctx, cancel := context.WithTimeout(context.Background(), *checkinTimeout)
				err := fl.CheckInContext(ctx, *server, req, *checkinTimeout)
				cancel()
				if err == nil {
					fmt.Printf("checked in with %s as %s\n", *server, cfg.id)
					return
				}
				if attempt+1 >= *checkinRetries {
					fmt.Fprintln(os.Stderr, "flclient: check-in:", err)
					return
				}
				fmt.Fprintf(os.Stderr, "flclient: check-in attempt %d: %v (retrying in %v)\n",
					attempt+1, err, backoff)
				time.Sleep(backoff)
				backoff *= 2
			}
		}()
	}
	// Live telemetry: the daemon's mux serves /metrics, /healthz and
	// /v1/telemetry alongside the training endpoints, and the sink threads
	// down through the client into its pace controller.
	tel := obs.NewBoFL(obs.Real{})
	ml.SetSink(tel)
	handler := fl.NewClientHandler(client)
	handler.SetTelemetry(tel)
	if *jsonOnly {
		handler.SetJSONOnly(true)
	}
	if *noSpans {
		handler.SetNoSpanReport(true)
	}
	if *pprofAddr != "" {
		obs.ServePprof(*pprofAddr)
		fmt.Printf("pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}
	fmt.Printf("flclient %s (%s, %s pacing) listening on %s (introspection: /metrics /healthz /v1/telemetry)\n",
		cfg.id, cfg.devName, cfg.controller, *listen)
	return http.ListenAndServe(*listen, handler)
}

// clientConfig holds the daemon's construction parameters.
type clientConfig struct {
	id         string
	devName    string
	controller string
	seed       int64
	examples   int
}

// parseClientFlags registers the daemon's flags on fs and parses args.
func parseClientFlags(fs *flag.FlagSet, args []string) (clientConfig, error) {
	var cfg clientConfig
	fs.StringVar(&cfg.id, "id", "edge-0", "client identifier")
	fs.StringVar(&cfg.devName, "device", "agx", "device: agx or tx2")
	fs.StringVar(&cfg.controller, "controller", "bofl", "pace controller: bofl or performant")
	fs.Int64Var(&cfg.seed, "seed", 1, "random seed (also shards the synthetic data)")
	fs.IntVar(&cfg.examples, "examples", 256, "local dataset size")
	if err := fs.Parse(args); err != nil {
		return clientConfig{}, err
	}
	return cfg, nil
}

// buildClient constructs the FL client the daemon serves.
func buildClient(cfg clientConfig) (*fl.Client, error) {
	dev, ok := device.ByName(cfg.devName)
	if !ok {
		return nil, fmt.Errorf("unknown device %q", cfg.devName)
	}

	// The demo federation trains an 8-feature 4-class MLP; every client
	// must build the same architecture so parameter vectors align.
	model, err := ml.NewMLP(8, 16, 4, 42)
	if err != nil {
		return nil, err
	}
	data, err := ml.Blobs(cfg.examples, 8, 4, 0.6, cfg.seed)
	if err != nil {
		return nil, err
	}

	var pace core.PaceController
	switch cfg.controller {
	case "bofl":
		pace, err = core.New(dev.Space(), core.Options{Seed: cfg.seed, Tau: 5})
	case "performant":
		pace, err = core.NewPerformant(dev.Space())
	default:
		return nil, fmt.Errorf("unknown controller %q", cfg.controller)
	}
	if err != nil {
		return nil, err
	}

	return fl.NewClient(fl.ClientConfig{
		ID:         cfg.id,
		Device:     dev,
		Workload:   device.ViT,
		Model:      model,
		Data:       data,
		BatchSize:  32,
		LearnRate:  0.15,
		Controller: pace,
		Seed:       cfg.seed,
	})
}
