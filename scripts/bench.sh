#!/usr/bin/env bash
# Snapshot the acquisition hot-path benchmarks into BENCH_<n>.json, seeding
# the repo's perf trajectory. Each snapshot records ns/op, B/op and
# allocs/op for the hot-path benchmarks and numeric-core microbenchmarks
# (best of -count runs, to damp scheduler noise) plus the environment they
# ran in.
#
# Usage:
#   scripts/bench.sh [n]        # writes BENCH_<n>.json at the repo root
#
# n defaults to the next unused index. Compare snapshots with e.g.
#   jq -s '.[0].benchmarks, .[1].benchmarks' BENCH_0.json BENCH_1.json
set -euo pipefail

cd "$(dirname "$0")/.."

BENCHES='^(BenchmarkMBOSuggestBatch|BenchmarkMBOSuggestBatchF64|BenchmarkMBOSuggestBatchLive|BenchmarkGPFit|BenchmarkFigure9|BenchmarkFLScale|BenchmarkFleetScale|BenchmarkCholeskyBlocked|BenchmarkCholeskyScalar|BenchmarkPredictBatchFused|BenchmarkILPSolve)$'
COUNT="${BENCH_COUNT:-3}"

n="${1:-}"
if [[ -z "$n" ]]; then
  # Next index after the highest existing snapshot (gaps stay gaps).
  n=0
  for f in BENCH_*.json; do
    [[ -e "$f" ]] || continue
    i="${f#BENCH_}"
    i="${i%.json}"
    [[ "$i" =~ ^[0-9]+$ ]] && ((i >= n)) && n=$((i + 1))
  done
fi
out="BENCH_${n}.json"

export GO_VERSION="$(go env GOVERSION)"
export BENCH_GOMAXPROCS="${GOMAXPROCS:-$(getconf _NPROCESSORS_ONLN)}"

raw="$(go test -run='^$' -bench="$BENCHES" -benchmem -benchtime=1x -count="$COUNT" . 2>&1)"
echo "$raw"

echo "$raw" | awk -v out="$out" -v count="$COUNT" '
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix if present
    ns = $3
    if (!(name in best) || ns + 0 < best[name] + 0) {
      best[name] = ns
      # Keep the custom metrics (pool fan-out stats, figure metrics) that
      # rode along with the best run: fields come in <value> <unit> pairs.
      # Fields run <name> <iters> <value> <unit> [<value> <unit>]...; skip
      # the leading ns/op pair already captured in best[].
      extra[name] = ""
      for (i = 5; i + 1 <= NF; i += 2) {
        extra[name] = extra[name] sprintf(", \"%s\": %s", $(i + 1), $i)
      }
    }
    if (order[name] == "") { order[name] = ++k; names[k] = name }
  }
  /^cpu:/ { sub(/^cpu: /, ""); cpu = $0 }
  END {
    printf "{\n"
    printf "  \"schema\": \"bofl-bench-v1\",\n"
    printf "  \"go\": \"%s\",\n", ENVIRON["GO_VERSION"]
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"gomaxprocs\": %s,\n", ENVIRON["BENCH_GOMAXPROCS"]
    printf "  \"count\": %s,\n", count
    printf "  \"benchmarks\": {\n"
    for (i = 1; i <= k; i++) {
      printf "    \"%s\": {\"ns_per_op\": %s%s}%s\n", names[i], best[names[i]], extra[names[i]], (i < k ? "," : "")
    }
    printf "  }\n"
    printf "}\n"
  }
' > "$out"

echo "wrote $out"
