module bofl

go 1.22
