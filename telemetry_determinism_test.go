package bofl_test

// Telemetry must be observation-only: attaching a live sink (or none) to any
// layer must leave every numeric output bit-identical, under both serial and
// parallel execution. These tests extend the determinism suite's contract
// (see determinism_test.go) to the obs layer.

import (
	"reflect"
	"testing"

	"bofl/internal/core"
	"bofl/internal/device"
	"bofl/internal/experiment"
	"bofl/internal/fl"
	"bofl/internal/mobo"
	"bofl/internal/obs"
)

// sinkModes are the telemetry attachments compared by the suite; the first
// entry is the default no-op reference.
var sinkModes = []struct {
	name string
	make func() obs.Sink
}{
	{"nop", func() obs.Sink { return obs.Nop }},
	{"live", func() obs.Sink { return obs.NewBoFL(obs.Real{}) }},
}

func TestSuggestBatchUnperturbedByTelemetry(t *testing.T) {
	dev := device.JetsonAGX()
	space := dev.Space()
	candidates := make([][]float64, space.Size())
	for i := range candidates {
		cfg, err := space.Config(i)
		if err != nil {
			t.Fatal(err)
		}
		candidates[i], err = space.Normalize(cfg)
		if err != nil {
			t.Fatal(err)
		}
	}
	seedIdx, err := mobo.HaltonIndices(21, space.Dims())
	if err != nil {
		t.Fatal(err)
	}
	suggest := func(sink obs.Sink) []mobo.Suggestion {
		opt, err := mobo.NewOptimizer(candidates, mobo.Options{Seed: 5, Restarts: 2, Iters: 5})
		if err != nil {
			t.Fatal(err)
		}
		opt.SetSink(sink)
		for _, idx := range seedIdx {
			cfg, err := space.Config(idx)
			if err != nil {
				t.Fatal(err)
			}
			lat, energy, err := dev.Perf(device.ViT, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := opt.Observe(mobo.Observation{Index: idx, Energy: energy, Latency: lat}); err != nil {
				t.Fatal(err)
			}
		}
		sugg, err := opt.SuggestBatch(10)
		if err != nil {
			t.Fatal(err)
		}
		return sugg
	}
	// Reference: no-op sink, serial execution. Every sink × execution mode
	// must reproduce it exactly.
	var ref []mobo.Suggestion
	withExecMode(1, 1, func() { ref = suggest(obs.Nop) })
	for _, mode := range execModes {
		for _, sm := range sinkModes {
			var got []mobo.Suggestion
			withExecMode(mode.procs, mode.workers, func() { got = suggest(sm.make()) })
			if !reflect.DeepEqual(ref, got) {
				t.Errorf("SuggestBatch differs with sink=%s under %s", sm.name, mode.name)
			}
		}
	}
}

func TestRunTaskUnperturbedByTelemetry(t *testing.T) {
	const rounds = 6
	dev := device.JetsonAGX()
	tasks, err := fl.Tasks(dev, 2.0, rounds)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Tau: 3, MBORestarts: 1, MBOIters: 3}
	runWith := func(sink obs.Sink) *experiment.TaskRun {
		run, err := experiment.RunTask(experiment.RunConfig{
			Device:      dev,
			Task:        tasks[0],
			Rounds:      rounds,
			Controller:  experiment.KindBoFL,
			Seed:        1,
			CtrlOptions: opts,
			Sink:        sink,
		})
		if err != nil {
			t.Fatal(err)
		}
		return run
	}
	ref := runWith(nil) // package default: no-op
	for _, sm := range sinkModes {
		got := runWith(sm.make())
		if !reflect.DeepEqual(ref.Reports, got.Reports) {
			t.Errorf("round reports differ with sink=%s", sm.name)
		}
		if ref.TotalEnergy != got.TotalEnergy || ref.DeadlineMisses != got.DeadlineMisses {
			t.Errorf("summary differs with sink=%s: energy %v vs %v, misses %d vs %d",
				sm.name, ref.TotalEnergy, got.TotalEnergy, ref.DeadlineMisses, got.DeadlineMisses)
		}
		if !reflect.DeepEqual(ref.Deadlines, got.Deadlines) {
			t.Errorf("deadline sequence differs with sink=%s", sm.name)
		}
	}
}
