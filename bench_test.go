package bofl_test

// One benchmark per paper table and figure (DESIGN.md §3 maps ids to
// functions), plus microbenchmarks of the algorithmic kernels and ablation
// benches that report energy as a custom metric. Figure-level benches use
// reduced round counts so `go test -bench=.` completes in minutes; the full
// 100-round reproductions run via cmd/boflbench.

import (
	"math/rand"
	"testing"

	"bofl/internal/core"
	"bofl/internal/device"
	"bofl/internal/experiment"
	"bofl/internal/fl"
	"bofl/internal/gp"
	"bofl/internal/ilp"
	"bofl/internal/mobo"
	"bofl/internal/obs"
	"bofl/internal/parallel"
	"bofl/internal/pareto"
)

const benchRounds = 30

func benchOpts() core.Options {
	return core.Options{Tau: 5, MBORestarts: 2, MBOIters: 5}
}

// ---- Tables ----

func BenchmarkTable1Spaces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiment.Table1()
		if len(rows) != 2 {
			b.Fatal("bad table 1")
		}
	}
}

func BenchmarkTable2TaskSpecs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.Table2()
		if err != nil || len(rows) != 6 {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3Walkthrough(b *testing.B) {
	for i := 0; i < b.N; i++ {
		data, err := experiment.Table3(benchRounds, 1, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(data[0].TotalExp), "explored/task")
		b.ReportMetric(float64(data[0].TotalPareto), "pareto/task")
	}
}

// ---- Motivation figures ----

func BenchmarkFigure2(b *testing.B) {
	dev := device.JetsonAGX()
	for i := 0; i < b.N; i++ {
		d, err := experiment.Figure2(dev, device.ViT)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(d.SpeedLeverage, "speed-leverage")
		b.ReportMetric(d.EnergyLeverage, "energy-leverage")
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Figure3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Figure4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Figure5(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Evaluation figures ----

func benchEnergyComparison(b *testing.B, ratio float64) {
	dev := device.JetsonAGX()
	tasks, err := fl.Tasks(dev, ratio, benchRounds)
	if err != nil {
		b.Fatal(err)
	}
	poolBefore := parallel.Stats()
	for i := 0; i < b.N; i++ {
		cmp, err := experiment.EnergyComparisonFor(dev, tasks[0], benchRounds, int64(i+1), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cmp.Improvement*100, "improvement%")
		b.ReportMetric(cmp.Regret*100, "regret%")
	}
	reportPoolStats(b, poolBefore)
}

// reportPoolStats attaches the worker pool's fan-out behaviour over the
// benchmark loop as custom metrics, so bench.sh snapshots record how much of
// the run actually used helpers.
func reportPoolStats(b *testing.B, before parallel.PoolStats) {
	after := parallel.Stats()
	fanouts := after.Fanouts - before.Fanouts
	b.ReportMetric(float64(fanouts)/float64(b.N), "fanouts/op")
	if fanouts > 0 {
		b.ReportMetric(float64(after.HelperAcquires-before.HelperAcquires)/float64(fanouts), "helpers/fanout")
	}
}

func BenchmarkFigure9(b *testing.B)  { benchEnergyComparison(b, 2.0) }
func BenchmarkFigure10(b *testing.B) { benchEnergyComparison(b, 4.0) }

func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		data, err := experiment.Figure11(2.0, benchRounds, int64(i+1), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(data[0].HVCoverage*100, "hv-coverage%")
		b.ReportMetric(data[0].ExploredFrac*100, "explored%")
	}
}

func BenchmarkFigure12(b *testing.B) {
	// Two ratios keep the grid affordable; the full five-ratio sweep runs
	// in cmd/boflbench.
	for i := 0; i < b.N; i++ {
		cells, err := experiment.Figure12([]float64{2.0, 4.0}, benchRounds, int64(i+1), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cells[0].Improvement*100, "improvement@2x%")
		b.ReportMetric(cells[len(cells)-1].Improvement*100, "improvement@4x%")
	}
}

func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.Figure13(2.0, benchRounds, int64(i+1), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].OverheadFrac*100, "mbo-overhead%")
	}
}

// ---- Ablations (energy as reported metric; equal deadline sequences) ----

func benchAblation(b *testing.B, kind experiment.ControllerKind) {
	dev := device.JetsonAGX()
	tasks, err := fl.Tasks(dev, 2.5, benchRounds)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		run, err := experiment.RunTask(experiment.RunConfig{
			Device:      dev,
			Task:        tasks[0],
			Rounds:      benchRounds,
			Controller:  kind,
			Seed:        7,
			CtrlOptions: benchOpts(),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(run.TotalEnergy, "J/task")
		b.ReportMetric(float64(run.DeadlineMisses), "misses/task")
	}
}

func BenchmarkAblationBoFL(b *testing.B)       { benchAblation(b, experiment.KindBoFL) }
func BenchmarkAblationBoFLParEGO(b *testing.B) { benchAblation(b, experiment.KindBoFLParEGO) }
func BenchmarkAblationPerformant(b *testing.B) { benchAblation(b, experiment.KindPerformant) }
func BenchmarkAblationOracle(b *testing.B)     { benchAblation(b, experiment.KindOracle) }
func BenchmarkAblationRandom(b *testing.B)     { benchAblation(b, experiment.KindRandom) }
func BenchmarkAblationLinearPace(b *testing.B) { benchAblation(b, experiment.KindLinearPace) }

// benchControllerVariant runs a full BoFL task with custom options and
// reports energy, deadline misses and exploration rounds as metrics.
func benchControllerVariant(b *testing.B, ratio float64, opts core.Options) {
	dev := device.JetsonAGX()
	tasks, err := fl.Tasks(dev, ratio, benchRounds)
	if err != nil {
		b.Fatal(err)
	}
	task := tasks[0]
	tmin, err := fl.TMin(dev, task)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		opts.Seed = int64(i + 1)
		ctrl, err := core.New(dev.Space(), opts)
		if err != nil {
			b.Fatal(err)
		}
		meter := device.NewMeter(dev, device.DefaultNoise(), int64(i+1))
		exec := core.ExecutorFunc(func(c device.Config) (core.JobResult, error) {
			m, err := meter.Measure(task.Workload, c, 0.2)
			if err != nil {
				return core.JobResult{}, err
			}
			return core.JobResult{Latency: m.Latency, Energy: m.Energy}, nil
		})
		deadlines, err := fl.SampleDeadlines(tmin, task.DeadlineRatio, benchRounds, int64(i+3))
		if err != nil {
			b.Fatal(err)
		}
		var energy float64
		misses := 0
		for r := 0; r < benchRounds; r++ {
			rep, err := ctrl.RunRound(task.Jobs(), deadlines[r], exec)
			if err != nil {
				b.Fatal(err)
			}
			energy += rep.Energy
			if !rep.DeadlineMet {
				misses++
			}
			if _, err := ctrl.BetweenRounds(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(energy, "J/task")
		b.ReportMetric(float64(misses), "misses/task")
		b.ReportMetric(float64(ctrl.NumExplored()), "explored/task")
	}
}

// Guardian ablation (§4.2) at tight deadlines (ratio 1.4): the guardian's
// value is zero misses; disabling it trades deadline violations for nothing.
func BenchmarkAblationGuardianOn(b *testing.B) {
	benchControllerVariant(b, 1.4, core.Options{Tau: 5, MBORestarts: 2, MBOIters: 5})
}

func BenchmarkAblationGuardianOff(b *testing.B) {
	benchControllerVariant(b, 1.4, core.Options{Tau: 5, MBORestarts: 2, MBOIters: 5, DisableGuardian: true})
}

// Batch-size ablation (§4.3) at the paper's ratio 2.0: single-point
// suggestion vs the sequential-greedy batch of up to 10. The batch costs more
// MBO compute per round but needs far fewer rounds to finish construction.
func BenchmarkAblationBatchSize1(b *testing.B) {
	benchControllerVariant(b, 2.0, core.Options{Tau: 5, MBORestarts: 2, MBOIters: 5, MaxBatch: 1})
}

func BenchmarkAblationBatchSize10(b *testing.B) {
	benchControllerVariant(b, 2.0, core.Options{Tau: 5, MBORestarts: 2, MBOIters: 5, MaxBatch: 10})
}

// ---- Algorithmic kernels ----

func BenchmarkEHVIAnalytic(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	front := make([]pareto.Point, 20)
	for i := range front {
		front[i] = pareto.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	ref := pareto.Point{X: 1.5, Y: 1.5}
	g := mobo.Gaussian2{MuX: 0.5, SigmaX: 0.2, MuY: 0.5, SigmaY: 0.2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mobo.EHVI(g, front, ref)
	}
}

func BenchmarkEHVIQuadrature(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	front := make([]pareto.Point, 20)
	for i := range front {
		front[i] = pareto.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	ref := pareto.Point{X: 1.5, Y: 1.5}
	g := mobo.Gaussian2{MuX: 0.5, SigmaX: 0.2, MuY: 0.5, SigmaY: 0.2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mobo.EHVIQuadrature(g, front, ref)
	}
}

func BenchmarkHypervolume2D(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	pts := make([]pareto.Point, 100)
	for i := range pts {
		pts[i] = pareto.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	ref := pareto.Point{X: 1, Y: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pareto.Hypervolume(pts, ref)
	}
}

func BenchmarkGPFit(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const n = 70 // typical end-of-exploration dataset size
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		ys[i] = rng.NormFloat64()
	}
	k, err := gp.NewMatern52(1, []float64{0.3, 0.3, 0.3})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gp.Fit(k, 0.05, xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGPPredict(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	const n = 70
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		ys[i] = rng.NormFloat64()
	}
	k, err := gp.NewMatern52(1, []float64{0.3, 0.3, 0.3})
	if err != nil {
		b.Fatal(err)
	}
	r, err := gp.Fit(k, 0.05, xs, ys)
	if err != nil {
		b.Fatal(err)
	}
	x := []float64{0.5, 0.5, 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Predict(x)
	}
}

// BenchmarkCholeskyBlocked and BenchmarkCholeskyScalar attribute the
// factorization speedup layer by layer: same SPD input, blocked panel kernel
// vs the historical scalar triple loop (which the blocked path matches
// bit-for-bit; see internal/gp/linalg_test.go).
func benchCholesky(b *testing.B, factor func(*gp.Matrix) error) {
	rng := rand.New(rand.NewSource(6))
	const n = 70
	spd := benchSPD(rng, n)
	work := gp.NewMatrix(n, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work.Data, spd.Data)
		if err := factor(work); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSPD(rng *rand.Rand, n int) *gp.Matrix {
	a := gp.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	spd := gp.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += a.At(i, k) * a.At(j, k)
			}
			spd.Set(i, j, s)
		}
		spd.Set(i, i, spd.At(i, i)+float64(n))
	}
	return spd
}

func BenchmarkCholeskyBlocked(b *testing.B) {
	benchCholesky(b, gp.CholeskyInPlace)
}

func BenchmarkCholeskyScalar(b *testing.B) {
	benchCholesky(b, func(m *gp.Matrix) error {
		_, err := gp.CholeskyScalar(m)
		return err
	})
}

// BenchmarkPredictBatchFused measures the fused batch predict (kernel sweep,
// mean dot and variance solve in one pass, zero allocations in steady state)
// over a candidate-scan-sized batch.
func BenchmarkPredictBatchFused(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	const n, batch = 70, 256
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		ys[i] = rng.NormFloat64()
	}
	k, err := gp.NewMatern52(1, []float64{0.3, 0.3, 0.3})
	if err != nil {
		b.Fatal(err)
	}
	r, err := gp.Fit(k, 0.05, xs, ys)
	if err != nil {
		b.Fatal(err)
	}
	pts := make([][]float64, batch)
	for i := range pts {
		pts[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	mus := make([]float64, batch)
	sigmas := make([]float64, batch)
	scratch := make([]float64, 2*n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.PredictBatchInto(pts, mus, sigmas, scratch)
	}
}

func BenchmarkILPSolve(b *testing.B) {
	// The paper reports ≤ 20 ms per exploitation solve via Gurobi; this
	// measures the branch-and-bound at realistic scale.
	rng := rand.New(rand.NewSource(5))
	const m = 25
	opts := make([]ilp.Option, m)
	for i := range opts {
		tm := 0.18 + 0.3*float64(i)/m
		opts[i] = ilp.Option{Time: tm, Energy: 5.2 - 3.5*float64(i)/m + 0.1*rng.Float64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ilp.Solve(opts, 200, 0.28*200); err != nil {
			b.Fatal(err)
		}
	}
}

// benchMBOSuggestBatch times the acquisition hot path with the given sink.
// The default benchmark runs the no-op sink (the production default); the
// Live variant quantifies the full-telemetry cost — BENCH snapshots compare
// the two to enforce the <2% NopSink-overhead budget.
func benchMBOSuggestBatch(b *testing.B, sink obs.Sink, prescreen bool) {
	dev := device.JetsonAGX()
	space := dev.Space()
	candidates := make([][]float64, space.Size())
	for i := range candidates {
		cfg, err := space.Config(i)
		if err != nil {
			b.Fatal(err)
		}
		candidates[i], err = space.Normalize(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	seedIdx, err := mobo.HaltonIndices(21, space.Dims())
	if err != nil {
		b.Fatal(err)
	}
	poolBefore := parallel.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		opt, err := mobo.NewOptimizer(candidates, mobo.Options{Seed: int64(i), Restarts: 2, Iters: 5, Float32Prescreen: prescreen})
		if err != nil {
			b.Fatal(err)
		}
		opt.SetSink(sink)
		for _, idx := range seedIdx {
			lat, energy, err := dev.Perf(device.ViT, mustConfig(b, space, idx))
			if err != nil {
				b.Fatal(err)
			}
			if err := opt.Observe(mobo.Observation{Index: idx, Energy: energy, Latency: lat}); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if _, err := opt.SuggestBatch(10); err != nil {
			b.Fatal(err)
		}
	}
	reportPoolStats(b, poolBefore)
}

// The headline acquisition benchmark runs the production-recommended fast
// configuration (float32 pre-screen on; selections stay bit-identical to the
// float64 scan, enforced by TestFloat32PrescreenMatchesFloat64). The F64
// variant scores every candidate with exact float64 arithmetic and isolates
// the pre-screen's contribution.
func BenchmarkMBOSuggestBatch(b *testing.B) { benchMBOSuggestBatch(b, obs.Nop, true) }

func BenchmarkMBOSuggestBatchF64(b *testing.B) { benchMBOSuggestBatch(b, obs.Nop, false) }

func BenchmarkMBOSuggestBatchLive(b *testing.B) {
	benchMBOSuggestBatch(b, obs.NewBoFL(obs.Real{}), true)
}

func mustConfig(b *testing.B, s device.Space, i int) device.Config {
	b.Helper()
	cfg, err := s.Config(i)
	if err != nil {
		b.Fatal(err)
	}
	return cfg
}

func BenchmarkDevicePerf(b *testing.B) {
	dev := device.JetsonAGX()
	cfg := dev.Space().Max()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := dev.Perf(device.ViT, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMeterMeasure(b *testing.B) {
	dev := device.JetsonAGX()
	m := device.NewMeter(dev, device.DefaultNoise(), 1)
	cfg := dev.Space().Max()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Measure(device.ViT, cfg, 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProfileAll(b *testing.B) {
	dev := device.JetsonAGX()
	for i := 0; i < b.N; i++ {
		if _, err := device.ProfileAll(dev, device.ViT); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkControllerRound(b *testing.B) {
	// One full exploitation-phase round (200 jobs) including ILP planning.
	dev := device.JetsonAGX()
	ctrl, err := core.New(dev.Space(), benchOpts())
	if err != nil {
		b.Fatal(err)
	}
	meter := device.NewMeter(dev, device.DefaultNoise(), 1)
	exec := core.ExecutorFunc(func(c device.Config) (core.JobResult, error) {
		m, err := meter.Measure(device.ViT, c, 0.2)
		if err != nil {
			return core.JobResult{}, err
		}
		return core.JobResult{Latency: m.Latency, Energy: m.Energy}, nil
	})
	// Warm up through exploration so the steady state is measured.
	tmin := 37.2
	for r := 0; r < 20; r++ {
		if _, err := ctrl.RunRound(200, tmin*2, exec); err != nil {
			b.Fatal(err)
		}
		if _, err := ctrl.BetweenRounds(); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctrl.RunRound(200, tmin*2, exec); err != nil {
			b.Fatal(err)
		}
	}
}
