package bofl_test

// Determinism suite for the parallel acquisition engine: the worker pool
// must be a pure speedup. Every path that fans out — the EHVI candidate
// scan, the GP hyperparameter restarts and the experiment runner — is run
// serially (GOMAXPROCS=1, one worker) and in parallel (GOMAXPROCS=4, four
// workers) and the outputs are compared bit-for-bit. See DESIGN.md,
// "Performance architecture" for the contract these tests enforce.

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"bofl/internal/core"
	"bofl/internal/device"
	"bofl/internal/experiment"
	"bofl/internal/gp"
	"bofl/internal/mobo"
	"bofl/internal/parallel"
)

// execModes are the (GOMAXPROCS, pool width) configurations compared by the
// suite; the first entry is the serial reference.
var execModes = []struct {
	name    string
	procs   int
	workers int
}{
	{"serial", 1, 1},
	{"parallel4", 4, 4},
	{"parallel-default", 4, 0}, // width tracking GOMAXPROCS
}

// withExecMode runs fn under the given GOMAXPROCS and pool width, restoring
// both afterwards.
func withExecMode(procs, workers int, fn func()) {
	prevProcs := runtime.GOMAXPROCS(procs)
	prevWorkers := parallel.SetWorkers(workers)
	defer func() {
		runtime.GOMAXPROCS(prevProcs)
		parallel.SetWorkers(prevWorkers)
	}()
	fn()
}

func TestFitHyperDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n, d = 40, 3
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		ys[i] = rng.NormFloat64()
	}
	probes := make([][]float64, 25)
	for i := range probes {
		probes[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	// Fitted regressors are compared through their posterior at probe
	// points; bitwise equality there means the same restart won with the
	// same hyperparameters.
	type posterior struct{ Mu, Sigma float64 }
	results := make([][]posterior, len(execModes))
	for mi, mode := range execModes {
		withExecMode(mode.procs, mode.workers, func() {
			r, err := gp.FitHyper(xs, ys, gp.HyperOptions{Dim: d, Restarts: 6, Iters: 8, Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			ps := make([]posterior, len(probes))
			for i, x := range probes {
				ps[i].Mu, ps[i].Sigma = r.Predict(x)
			}
			results[mi] = ps
		})
	}
	for mi := 1; mi < len(execModes); mi++ {
		if !reflect.DeepEqual(results[0], results[mi]) {
			t.Errorf("FitHyper posterior differs between %s and %s", execModes[0].name, execModes[mi].name)
		}
	}
}

// runSuggestBatchModes replays one batch selection on the Jetson AGX space
// under every execution mode and returns the per-mode suggestion lists.
func runSuggestBatchModes(t *testing.T, prescreen bool) [][]mobo.Suggestion {
	t.Helper()
	dev := device.JetsonAGX()
	space := dev.Space()
	candidates := make([][]float64, space.Size())
	for i := range candidates {
		cfg, err := space.Config(i)
		if err != nil {
			t.Fatal(err)
		}
		candidates[i], err = space.Normalize(cfg)
		if err != nil {
			t.Fatal(err)
		}
	}
	seedIdx, err := mobo.HaltonIndices(21, space.Dims())
	if err != nil {
		t.Fatal(err)
	}
	results := make([][]mobo.Suggestion, len(execModes))
	for mi, mode := range execModes {
		withExecMode(mode.procs, mode.workers, func() {
			opt, err := mobo.NewOptimizer(candidates, mobo.Options{
				Seed: 5, Restarts: 2, Iters: 5, Float32Prescreen: prescreen,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, idx := range seedIdx {
				cfg, err := space.Config(idx)
				if err != nil {
					t.Fatal(err)
				}
				lat, energy, err := dev.Perf(device.ViT, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := opt.Observe(mobo.Observation{Index: idx, Energy: energy, Latency: lat}); err != nil {
					t.Fatal(err)
				}
			}
			sugg, err := opt.SuggestBatch(10)
			if err != nil {
				t.Fatal(err)
			}
			results[mi] = sugg
		})
	}
	return results
}

func TestSuggestBatchDeterministicAcrossWorkers(t *testing.T) {
	exact := runSuggestBatchModes(t, false)
	for mi := 1; mi < len(execModes); mi++ {
		if !reflect.DeepEqual(exact[0], exact[mi]) {
			t.Errorf("SuggestBatch differs between %s and %s:\n  %v\nvs\n  %v",
				execModes[0].name, execModes[mi].name, exact[0], exact[mi])
		}
	}

	// The float32 pre-screen must be deterministic across worker counts AND
	// bit-identical to the pure-float64 scan on the real device space.
	screened := runSuggestBatchModes(t, true)
	for mi := 1; mi < len(execModes); mi++ {
		if !reflect.DeepEqual(screened[0], screened[mi]) {
			t.Errorf("pre-screened SuggestBatch differs between %s and %s",
				execModes[0].name, execModes[mi].name)
		}
	}
	if !reflect.DeepEqual(exact[0], screened[0]) {
		t.Errorf("float32 pre-screen changed the selected batch:\n  float64: %v\n  prescreen: %v",
			exact[0], screened[0])
	}
}

func TestExperimentRunnerDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-task experiment replay in -short mode")
	}
	const rounds = 6
	opts := core.Options{Tau: 3, MBORestarts: 1, MBOIters: 3}
	type summary struct {
		Rows        []experiment.EnergyRow
		BoFL        float64
		Performant  float64
		Oracle      float64
		Improvement float64
		Regret      float64
	}
	results := make([][]summary, len(execModes))
	for mi, mode := range execModes {
		withExecMode(mode.procs, mode.workers, func() {
			cmps, err := experiment.Figure9(2.0, rounds, 1, opts)
			if err != nil {
				t.Fatal(err)
			}
			sums := make([]summary, len(cmps))
			for i, cmp := range cmps {
				sums[i] = summary{
					Rows:        cmp.Rows,
					BoFL:        cmp.BoFLTotal,
					Performant:  cmp.PerformantTotal,
					Oracle:      cmp.OracleTotal,
					Improvement: cmp.Improvement,
					Regret:      cmp.Regret,
				}
			}
			results[mi] = sums
		})
	}
	for mi := 1; mi < len(execModes); mi++ {
		if !reflect.DeepEqual(results[0], results[mi]) {
			t.Errorf("Figure9 output differs between %s and %s", execModes[0].name, execModes[mi].name)
		}
	}

	// The ratio × task grid fan-out must preserve sweep order and values.
	grids := make([][]experiment.Figure12Cell, len(execModes))
	for mi, mode := range execModes {
		withExecMode(mode.procs, mode.workers, func() {
			cells, err := experiment.Figure12([]float64{2.0, 3.0}, rounds, 1, opts)
			if err != nil {
				t.Fatal(err)
			}
			grids[mi] = cells
		})
	}
	for mi := 1; mi < len(execModes); mi++ {
		if !reflect.DeepEqual(grids[0], grids[mi]) {
			t.Errorf("Figure12 grid differs between %s and %s", execModes[0].name, execModes[mi].name)
		}
	}
}
