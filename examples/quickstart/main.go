// Quickstart: wrap a training loop with the BoFL pace controller.
//
// The example simulates 30 federated learning rounds of the CIFAR10-ViT task
// on a Jetson AGX. Each round the controller decides the DVFS configuration
// of every minibatch job; the executor reports the measured latency and
// energy. Per-round energy drops sharply once the controller finishes its
// exploration phases.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bofl"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dev := bofl.JetsonAGX()

	// The controller only needs the DVFS space; T(x) and E(x) stay black
	// boxes behind the executor.
	ctrl, err := bofl.NewController(dev.Space(), bofl.Options{Seed: 1})
	if err != nil {
		return err
	}

	// The executor runs one minibatch under the requested configuration.
	// On a real board this trains the model and reads CUDA timers and the
	// INA3221 power sensor; here the simulated meter stands in.
	meter := bofl.NewMeter(dev, bofl.DefaultNoise(), 1)
	exec := bofl.ExecutorFunc(func(cfg bofl.Config) (bofl.JobResult, error) {
		m, err := meter.Measure(bofl.ViT, cfg, 0.2)
		if err != nil {
			return bofl.JobResult{}, err
		}
		return bofl.JobResult{Latency: m.Latency, Energy: m.Energy}, nil
	})

	// The paper's CIFAR10-ViT task: W = 200 jobs per round, deadlines
	// drawn from [T_min, 2·T_min].
	tasks, err := bofl.Tasks(dev, 2.0, 30)
	if err != nil {
		return err
	}
	task := tasks[0]
	tmin, err := bofl.TaskTMin(dev, task)
	if err != nil {
		return err
	}
	deadlines, err := bofl.SampleDeadlines(tmin, task.DeadlineRatio, task.Rounds, 7)
	if err != nil {
		return err
	}

	fmt.Printf("%s on %s: %d jobs/round, T_min %.1fs\n\n", task.Name, dev.Name(), task.Jobs(), tmin)
	for round := 0; round < task.Rounds; round++ {
		report, err := ctrl.RunRound(task.Jobs(), deadlines[round], exec)
		if err != nil {
			return err
		}
		fmt.Printf("round %2d [%-16v]: deadline %5.1fs, used %5.1fs, energy %6.1f J\n",
			report.Round, report.Phase, report.Deadline, report.Duration, report.Energy)

		// Between rounds (while the device would upload gradients) the
		// controller refits its surrogates and plans the next batch of
		// explorations.
		if _, err := ctrl.BetweenRounds(); err != nil {
			return err
		}
	}

	fmt.Printf("\nexplored %d of %d configurations; final Pareto front has %d points\n",
		ctrl.NumExplored(), dev.Space().Size(), len(ctrl.Front()))
	return nil
}
