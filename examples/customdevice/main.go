// Customdevice: BoFL on hardware you define yourself. The paper argues the
// black-box approach applies "to any NN model on any hardware" — this example
// builds a phone-class board from a spec (frequency ladders, electrical
// constants, per-workload anchors) and runs the full explore/construct/
// exploit pipeline against it, comparing the result with the Performant
// baseline and the offline optimum.
//
//	go run ./examples/customdevice
package main

import (
	"fmt"
	"log"

	"bofl"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A hypothetical phone SoC: big CPU ladder, modest GPU, LPDDR5.
	spec := bofl.DeviceSpec{
		Name:        "phone-soc",
		StaticWatts: 0.9,
		CPU: bofl.UnitSpec{
			Freqs: ladder(0.3, 2.84, 18),
			VMin:  0.55, VMax: 1.05, DynCoeff: 2.2, IdleFrac: 0.22,
		},
		GPU: bofl.UnitSpec{
			Freqs: ladder(0.18, 0.95, 9),
			VMin:  0.55, VMax: 0.95, DynCoeff: 4.5, IdleFrac: 0.25,
		},
		Mem: bofl.UnitSpec{
			Freqs: ladder(0.55, 3.2, 6),
			VMin:  0.55, VMax: 0.85, DynCoeff: 1.1, IdleFrac: 0.40,
		},
		Workloads: map[bofl.Workload]bofl.WorkloadSpec{
			"mobilenet-v3": {
				CPUShare: 0.45, GPUShare: 1.0, MemShare: 0.25, SerialFrac: 0.3,
				LatencyAtMax: 0.060, EnergyAtMax: 0.55,
			},
		},
	}
	dev, err := bofl.NewCustomDevice(spec)
	if err != nil {
		return err
	}
	const workload = bofl.Workload("mobilenet-v3")
	fmt.Printf("%s: %d DVFS configurations\n", dev.Name(), dev.Space().Size())

	const (
		jobs   = 120
		rounds = 40
		ratio  = 2.5
	)
	lat, err := dev.Latency(workload, dev.Space().Max())
	if err != nil {
		return err
	}
	tmin := lat * jobs
	deadlines, err := bofl.SampleDeadlines(tmin, ratio, rounds, 17)
	if err != nil {
		return err
	}

	runOne := func(ctrl bofl.PaceController, seed int64) (float64, int, error) {
		meter := bofl.NewMeter(dev, bofl.DefaultNoise(), seed)
		exec := bofl.ExecutorFunc(func(cfg bofl.Config) (bofl.JobResult, error) {
			m, err := meter.Measure(workload, cfg, 0.1)
			if err != nil {
				return bofl.JobResult{}, err
			}
			return bofl.JobResult{Latency: m.Latency, Energy: m.Energy}, nil
		})
		total, misses := 0.0, 0
		for _, ddl := range deadlines {
			rep, err := ctrl.RunRound(jobs, ddl, exec)
			if err != nil {
				return 0, 0, err
			}
			total += rep.Energy
			if !rep.DeadlineMet {
				misses++
			}
			if _, err := ctrl.BetweenRounds(); err != nil {
				return 0, 0, err
			}
		}
		return total, misses, nil
	}

	boflCtrl, err := bofl.NewController(dev.Space(), bofl.Options{Seed: 4, Tau: 1})
	if err != nil {
		return err
	}
	perfCtrl, err := bofl.NewPerformant(dev.Space())
	if err != nil {
		return err
	}
	profile, err := bofl.ProfileAll(dev, workload)
	if err != nil {
		return err
	}
	oracleCtrl, err := bofl.NewOracle(profile, dev.Space(), 1.05)
	if err != nil {
		return err
	}

	boflE, boflM, err := runOne(boflCtrl, 31)
	if err != nil {
		return err
	}
	perfE, _, err := runOne(perfCtrl, 31)
	if err != nil {
		return err
	}
	oracleE, _, err := runOne(oracleCtrl, 31)
	if err != nil {
		return err
	}

	fmt.Printf("\n%-12s %10s %8s\n", "controller", "energy (J)", "misses")
	fmt.Printf("%-12s %10.1f %8d\n", "bofl", boflE, boflM)
	fmt.Printf("%-12s %10.1f %8s\n", "performant", perfE, "0")
	fmt.Printf("%-12s %10.1f %8s\n", "oracle", oracleE, "0")
	fmt.Printf("\nsaving vs performant: %.1f%%, regret vs oracle: %.2f%%\n",
		100*(1-boflE/perfE), 100*(boflE/oracleE-1))
	fmt.Printf("explored %d/%d configurations, front size %d\n",
		boflCtrl.NumExplored(), dev.Space().Size(), len(boflCtrl.Front()))
	return nil
}

// ladder builds an n-step frequency table from lo to hi GHz.
func ladder(lo, hi float64, n int) []bofl.Freq {
	out := make([]bofl.Freq, n)
	for i := range out {
		out[i] = bofl.Freq(lo + (hi-lo)*float64(i)/float64(n-1))
	}
	return out
}
