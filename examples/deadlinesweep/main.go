// Deadlinesweep: the Figure-12 sensitivity study through the public API —
// how BoFL's energy saving (vs the Performant baseline) and regret (vs the
// offline Oracle) change as the server grants longer deadlines.
//
//	go run ./examples/deadlinesweep
package main

import (
	"fmt"
	"log"

	"bofl"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// runController drives one pace controller through the task and returns its
// total energy.
func runController(ctrl bofl.PaceController, dev *bofl.Device, task bofl.TaskSpec, deadlines []float64, seed int64) (float64, error) {
	meter := bofl.NewMeter(dev, bofl.DefaultNoise(), seed)
	exec := bofl.ExecutorFunc(func(cfg bofl.Config) (bofl.JobResult, error) {
		m, err := meter.Measure(task.Workload, cfg, 0.2)
		if err != nil {
			return bofl.JobResult{}, err
		}
		return bofl.JobResult{Latency: m.Latency, Energy: m.Energy}, nil
	})
	total := 0.0
	for _, ddl := range deadlines {
		rep, err := ctrl.RunRound(task.Jobs(), ddl, exec)
		if err != nil {
			return 0, err
		}
		if !rep.DeadlineMet {
			return 0, fmt.Errorf("deadline %0.1fs missed (used %0.1fs)", rep.Deadline, rep.Duration)
		}
		total += rep.Energy
		if _, err := ctrl.BetweenRounds(); err != nil {
			return 0, err
		}
	}
	return total, nil
}

func run() error {
	dev := bofl.JetsonAGX()
	const rounds = 60

	// The Oracle needs the offline profile once.
	profile, err := bofl.ProfileAll(dev, bofl.ViT)
	if err != nil {
		return err
	}

	fmt.Println("CIFAR10-ViT on jetson-agx: sensitivity to deadline length")
	fmt.Println("ratio   BoFL (J)   Performant (J)   Oracle (J)   saving   regret")
	for _, ratio := range []float64{2.0, 2.5, 3.0, 3.5, 4.0} {
		tasks, err := bofl.Tasks(dev, ratio, rounds)
		if err != nil {
			return err
		}
		task := tasks[0]
		tmin, err := bofl.TaskTMin(dev, task)
		if err != nil {
			return err
		}
		deadlines, err := bofl.SampleDeadlines(tmin, ratio, rounds, 11)
		if err != nil {
			return err
		}

		boflCtrl, err := bofl.NewController(dev.Space(), bofl.Options{Seed: 5})
		if err != nil {
			return err
		}
		perfCtrl, err := bofl.NewPerformant(dev.Space())
		if err != nil {
			return err
		}
		oracleCtrl, err := bofl.NewOracle(profile, dev.Space(), 1.05)
		if err != nil {
			return err
		}

		boflE, err := runController(boflCtrl, dev, task, deadlines, 21)
		if err != nil {
			return err
		}
		perfE, err := runController(perfCtrl, dev, task, deadlines, 21)
		if err != nil {
			return err
		}
		oracleE, err := runController(oracleCtrl, dev, task, deadlines, 21)
		if err != nil {
			return err
		}
		fmt.Printf("%.1fx  %9.0f  %15.0f  %11.0f   %5.1f%%   %5.2f%%\n",
			ratio, boflE, perfE, oracleE,
			100*(1-boflE/perfE), 100*(boflE/oracleE-1))
	}
	return nil
}
