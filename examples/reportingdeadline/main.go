// Reportingdeadline: the paper's footnote-3 extension. Some FL servers only
// specify a *reporting* deadline — when the gradients must be back at the
// server — rather than a training deadline. This example wires a client-side
// bandwidth estimator between the server and the BoFL controller: each round
// it predicts the model upload time from recent transfers and hands the
// controller what is left for training.
//
//	go run ./examples/reportingdeadline
package main

import (
	"fmt"
	"log"
	"math/rand"

	"bofl"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dev := bofl.JetsonAGX()
	ctrl, err := bofl.NewController(dev.Space(), bofl.Options{Seed: 2})
	if err != nil {
		return err
	}
	meter := bofl.NewMeter(dev, bofl.DefaultNoise(), 2)
	exec := bofl.ExecutorFunc(func(cfg bofl.Config) (bofl.JobResult, error) {
		m, err := meter.Measure(bofl.ResNet50, cfg, 0.25)
		if err != nil {
			return bofl.JobResult{}, err
		}
		return bofl.JobResult{Latency: m.Latency, Energy: m.Energy}, nil
	})

	// The paper's §6.5 example link: ResNet50 over ≈5 Mbps LTE. The
	// estimator starts from that guess and refines with every observed
	// upload; 25% headroom absorbs throughput variance.
	bw, err := bofl.NewBandwidthEstimator(625_000, 0.3, 1.25)
	if err != nil {
		return err
	}
	const modelParams = 800_000 // a small ResNet-ish update
	payload := bofl.ModelPayloadBytes(modelParams)

	tasks, err := bofl.Tasks(dev, 2.0, 25)
	if err != nil {
		return err
	}
	task := tasks[1] // ImageNet-ResNet50
	tmin, err := bofl.TaskTMin(dev, task)
	if err != nil {
		return err
	}

	// The simulated LTE link: true throughput drifts around 5 Mbps.
	rng := rand.New(rand.NewSource(9))
	linkBps := 625_000.0

	fmt.Printf("%s with reporting deadlines (payload %.1f MB)\n\n", task.Name, float64(payload)/1e6)
	for round := 1; round <= task.Rounds; round++ {
		// Server grants a reporting deadline: training budget + upload
		// slack, as a real server accounting for the network would.
		reporting := tmin*(1.2+rng.Float64()) + 15

		training, err := bw.TrainingDeadline(reporting, payload)
		if err != nil {
			fmt.Printf("round %2d: skipped (%v)\n", round, err)
			continue
		}
		rep, err := ctrl.RunRound(task.Jobs(), training, exec)
		if err != nil {
			return err
		}

		// Simulate the upload over the drifting link and feed the
		// observation back into the estimator.
		linkBps *= 0.9 + 0.2*rng.Float64()
		uploadTime := float64(payload) / linkBps
		if err := bw.ObserveTransfer(payload, uploadTime); err != nil {
			return err
		}
		est, _ := bw.Estimate()

		total := rep.Duration + uploadTime
		status := "reported in time"
		if total > reporting {
			status = "LATE"
		}
		fmt.Printf("round %2d: reporting %5.1fs → training %5.1fs; trained %5.1fs + upload %4.1fs = %5.1fs (%s, link est %.2f Mbps)\n",
			round, reporting, training, rep.Duration, uploadTime, total, status, est*8/1e6)
		if _, err := ctrl.BetweenRounds(); err != nil {
			return err
		}
	}
	return nil
}
