// Heterofleet: a federated learning task over a heterogeneous fleet — two
// Jetson AGX boards and two Jetson TX2 boards — each pacing its own training
// with a private BoFL controller while a FedAvg server aggregates the model.
//
// This is the scenario the paper's introduction motivates: the server only
// assigns per-round deadlines; every device minimizes its own battery drain
// locally, whatever its hardware.
//
//	go run ./examples/heterofleet
package main

import (
	"fmt"
	"log"

	"bofl"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		features = 8
		classes  = 4
		hidden   = 16
		jobs     = 60 // minibatches per round per client
		rounds   = 20
	)

	// One shared model architecture; the server holds the global weights.
	global, err := bofl.NewMLP(features, hidden, classes, 42)
	if err != nil {
		return err
	}
	server, err := bofl.NewFLServer(bofl.FLServerConfig{
		InitialParams: global.Params(),
		Jobs:          jobs,
		DeadlineRatio: 2.5,
		Seed:          1,
	})
	if err != nil {
		return err
	}

	// Synthetic data, sharded across the fleet.
	all, err := bofl.Blobs(1200, features, classes, 0.6, 3)
	if err != nil {
		return err
	}
	test := all[:200]
	shards, err := bofl.PartitionExamples(all[200:], 4)
	if err != nil {
		return err
	}

	fleet := []struct {
		id  string
		dev *bofl.Device
	}{
		{"agx-0", bofl.JetsonAGX()},
		{"agx-1", bofl.JetsonAGX()},
		{"tx2-0", bofl.JetsonTX2()},
		{"tx2-1", bofl.JetsonTX2()},
	}
	clients := make([]*bofl.FLClient, 0, len(fleet))
	for i, node := range fleet {
		model, err := bofl.NewMLP(features, hidden, classes, 42)
		if err != nil {
			return err
		}
		ctrl, err := bofl.NewController(node.dev.Space(), bofl.Options{Seed: int64(i + 1), Tau: 3})
		if err != nil {
			return err
		}
		client, err := bofl.NewFLClient(bofl.FLClientConfig{
			ID:         node.id,
			Device:     node.dev,
			Workload:   bofl.ViT,
			Model:      model,
			Data:       shards[i],
			BatchSize:  16,
			LearnRate:  0.15,
			Controller: ctrl,
			Seed:       int64(i + 10),
		})
		if err != nil {
			return err
		}
		clients = append(clients, client)
		server.Register(&bofl.LocalParticipant{Client: client})
	}

	fmt.Printf("fleet of %d devices, %d jobs/round, %d rounds\n\n", len(fleet), jobs, rounds)
	for r := 0; r < rounds; r++ {
		res, err := server.RunRound()
		if err != nil {
			return err
		}
		var energy float64
		misses := 0
		for _, rep := range res.Reports {
			energy += rep.Energy
			if !rep.DeadlineMet {
				misses++
			}
		}
		fmt.Printf("round %2d: deadline %5.1fs, fleet energy %7.1f J, deadline misses %d\n",
			res.Round, res.Deadline, energy, misses)
	}

	// Evaluate the aggregated global model.
	eval, err := bofl.NewMLP(features, hidden, classes, 42)
	if err != nil {
		return err
	}
	copy(eval.Params(), server.GlobalParams())
	correct := 0
	for _, ex := range test {
		pred, err := eval.Predict(ex)
		if err != nil {
			return err
		}
		if pred == ex.Label {
			correct++
		}
	}
	fmt.Printf("\nglobal model accuracy: %.1f%%\n", 100*float64(correct)/float64(len(test)))
	for _, c := range clients {
		fmt.Printf("%s consumed %8.1f J total\n", c.ID(), c.TotalEnergy())
	}
	return nil
}
