// Sysfsdemo: driving the sysfs DVFS backend and the INA3221-style power
// sensor against an emulated /sys tree — the exact code path a real Jetson
// deployment uses (§5.2 of the paper), minus the board.
//
// The demo (1) builds a fake sysfs tree in a temp directory, (2) walks the
// Pareto front of the simulated AGX ViT profile, pinning each configuration's
// clocks through the kernel-file interface, (3) mirrors the simulated power
// draw into the sensor files and integrates energy per configuration.
//
//	go run ./examples/sysfsdemo
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"bofl"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	root, err := os.MkdirTemp("", "bofl-sysfs-demo-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)

	dev := bofl.JetsonAGX()

	// 1. Emulate the board's control and sensor file trees.
	paths, err := bofl.EmulateSysfsTree(filepath.Join(root, "sys"), dev.Space().Max())
	if err != nil {
		return err
	}
	backend, err := bofl.NewSysfsDVFSBackend(paths)
	if err != nil {
		return err
	}
	sensorRoot, err := bofl.EmulatePowerSensorTree(filepath.Join(root, "hwmon"))
	if err != nil {
		return err
	}
	sensor, err := bofl.NewPowerSensor(sensorRoot)
	if err != nil {
		return err
	}

	// 2. Walk the true Pareto front, actuating each configuration.
	profile, err := bofl.ProfileAll(dev, bofl.ViT)
	if err != nil {
		return err
	}
	front := profile.ParetoFront()
	fmt.Printf("pinning %d Pareto configurations through %s\n\n", len(front), paths.CPUDir)
	fmt.Println("cpu(GHz) gpu(GHz) mem(GHz)   board power   50-job energy")

	var acc bofl.EnergyAccumulator
	for _, i := range front {
		pt := profile.Points[i]
		if err := backend.Apply(pt.Config); err != nil {
			return err
		}
		applied, err := backend.Current()
		if err != nil {
			return err
		}

		// 3. Mirror the simulated draw into the sensor rails: the power
		// during a job is E/T; split it across rails as a real board's
		// INA3221 would report it.
		watts := pt.Energy / pt.Latency
		if err := bofl.WritePowerRail(sensorRoot, bofl.RailGPU, watts*0.55); err != nil {
			return err
		}
		if err := bofl.WritePowerRail(sensorRoot, bofl.RailCPU, watts*0.25); err != nil {
			return err
		}
		if err := bofl.WritePowerRail(sensorRoot, bofl.RailSOC, watts*0.20); err != nil {
			return err
		}
		total, err := sensor.ReadTotal()
		if err != nil {
			return err
		}

		// Integrate 50 jobs' energy at this configuration.
		jobEnergy := total * pt.Latency
		for j := 0; j < 50; j++ {
			if err := acc.Add(jobEnergy); err != nil {
				return err
			}
		}
		joules, _ := acc.Total()
		fmt.Printf("%7.2f %8.2f %8.2f   %8.2f W   %10.1f J cumulative\n",
			float64(applied.CPU), float64(applied.GPU), float64(applied.Mem), total, joules)
		acc.Reset()
	}
	fmt.Println("\nthe same Backend interface drives a real Jetson by pointing SysfsPaths at /sys")
	return nil
}
