package bofl_test

import (
	"testing"

	"bofl"
)

// The facade tests exercise the public API end to end the way a downstream
// user would, without touching internal packages.

func TestPublicQuickstartFlow(t *testing.T) {
	dev := bofl.JetsonAGX()
	ctrl, err := bofl.NewController(dev.Space(), bofl.Options{Seed: 1, Tau: 3})
	if err != nil {
		t.Fatal(err)
	}
	meter := bofl.NewMeter(dev, bofl.DefaultNoise(), 1)
	exec := bofl.ExecutorFunc(func(cfg bofl.Config) (bofl.JobResult, error) {
		m, err := meter.Measure(bofl.ViT, cfg, 0.2)
		if err != nil {
			return bofl.JobResult{}, err
		}
		return bofl.JobResult{Latency: m.Latency, Energy: m.Energy}, nil
	})
	tasks, err := bofl.Tasks(dev, 2.0, 10)
	if err != nil {
		t.Fatal(err)
	}
	tmin, err := bofl.TaskTMin(dev, tasks[0])
	if err != nil {
		t.Fatal(err)
	}
	deadlines, err := bofl.SampleDeadlines(tmin, 2.0, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 10; r++ {
		rep, err := ctrl.RunRound(tasks[0].Jobs(), deadlines[r], exec)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.DeadlineMet {
			t.Errorf("round %d missed deadline", rep.Round)
		}
		if _, err := ctrl.BetweenRounds(); err != nil {
			t.Fatal(err)
		}
	}
	if ctrl.NumExplored() == 0 || len(ctrl.Front()) == 0 {
		t.Error("controller made no progress")
	}
}

func TestPublicBaselinesAndProfile(t *testing.T) {
	dev := bofl.JetsonTX2()
	if _, err := bofl.NewPerformant(dev.Space()); err != nil {
		t.Fatal(err)
	}
	profile, err := bofl.ProfileAll(dev, bofl.LSTM)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := bofl.NewOracle(profile, dev.Space(), 1.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(oracle.TrueFront()) < 3 {
		t.Error("oracle front too small")
	}
	if _, err := bofl.NewRandomExplorer(dev.Space(), bofl.Options{}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := bofl.NewLinearPace(dev.Space(), 1.05); err != nil {
		t.Fatal(err)
	}
}

func TestPublicParetoHelpers(t *testing.T) {
	pts := []bofl.ObjectivePoint{{X: 1, Y: 3}, {X: 2, Y: 2}, {X: 3, Y: 3}}
	front := bofl.ParetoFront(pts)
	if len(front) != 2 {
		t.Errorf("front = %v", front)
	}
	if hv := bofl.Hypervolume(front, bofl.ObjectivePoint{X: 4, Y: 4}); hv <= 0 {
		t.Errorf("hypervolume %v", hv)
	}
}

func TestPublicHardwareFacade(t *testing.T) {
	root := t.TempDir()
	paths, err := bofl.EmulateSysfsTree(root, bofl.Config{CPU: 1.0, GPU: 0.5, Mem: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	backend, err := bofl.NewSysfsDVFSBackend(paths)
	if err != nil {
		t.Fatal(err)
	}
	if err := backend.Apply(bofl.Config{CPU: 2.0, GPU: 1.0, Mem: 2.0}); err != nil {
		t.Fatal(err)
	}
	sensorRoot, err := bofl.EmulatePowerSensorTree(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := bofl.WritePowerRail(sensorRoot, bofl.RailGPU, 10); err != nil {
		t.Fatal(err)
	}
	sensor, err := bofl.NewPowerSensor(sensorRoot)
	if err != nil {
		t.Fatal(err)
	}
	total, err := sensor.ReadTotal()
	if err != nil {
		t.Fatal(err)
	}
	if total < 9.9 || total > 10.1 {
		t.Errorf("total power %v, want ≈10", total)
	}
	var acc bofl.EnergyAccumulator
	if err := acc.Add(5); err != nil {
		t.Fatal(err)
	}
}

func TestPublicDeviceByName(t *testing.T) {
	if _, ok := bofl.DeviceByName("agx"); !ok {
		t.Error("agx not resolvable")
	}
	if _, ok := bofl.DeviceByName("unknown"); ok {
		t.Error("unknown device resolved")
	}
}
