// Package bofl is a Go implementation of BoFL (Bayesian Optimized Local
// Training Pace Control for Energy Efficient Federated Learning, Guo et al.,
// Middleware '22): a per-client controller that tunes a device's CPU, GPU and
// memory-controller clock frequencies (DVFS) online so that every federated
// learning round meets its training deadline at near-minimal energy.
//
// The controller treats per-minibatch latency T(x) and energy E(x) as black
// boxes over the discrete DVFS space, explores the space safely under a
// deadline guardian, constructs the (energy, latency) Pareto front with
// multi-objective Bayesian optimization (Gaussian-process surrogates and the
// expected-hypervolume-improvement acquisition), and then exploits the front
// by solving an exact branch-and-bound ILP each round.
//
// This root package is the public API: it re-exports the controller, the
// comparison baselines, the simulated Jetson devices, the FL substrate and
// the supporting types from the internal packages. See the examples/
// directory for runnable programs and DESIGN.md for the architecture.
//
// Quick start:
//
//	dev := bofl.JetsonAGX()
//	ctrl, err := bofl.NewController(dev.Space(), bofl.Options{Seed: 1})
//	// each FL round:
//	report, err := ctrl.RunRound(jobs, deadlineSeconds, executor)
//	// between rounds (configuration window):
//	mbo, err := ctrl.BetweenRounds()
//
// where executor runs one training minibatch under a requested DVFS
// configuration and reports its measured latency and energy.
package bofl
