package bofl_test

// BenchmarkFleetScale measures the discrete-event fleet simulator: one
// virtual-time federated round over 10k / 100k / 1M generated heterogeneous
// clients through the hierarchical aggregation tree. The custom metrics are
// the acceptance surface: clients/s of simulation throughput, virtual_s of
// simulated round time, and spine_B — the aggregator working set, which must
// stay O(depth · params) no matter how many clients fold beneath it (B/op
// from -benchmem tracks the total per-round allocation).

import (
	"testing"

	"bofl/internal/fleet"
)

func BenchmarkFleetScale(b *testing.B) {
	for _, sz := range []struct {
		label string
		n     int
	}{{"10k", 10_000}, {"100k", 100_000}, {"1M", 1_000_000}} {
		n := sz.n
		b.Run("clients_"+sz.label, func(b *testing.B) {
			eng, err := fleet.New(fleet.Config{
				Clients: n, Dim: 256, Fanout: 64, Jobs: 1, Seed: 17,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var virtual float64
			for i := 0; i < b.N; i++ {
				st, err := eng.RunRound()
				if err != nil {
					b.Fatal(err)
				}
				virtual += st.VirtualSeconds
			}
			b.StopTimer()
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "clients/s")
			b.ReportMetric(virtual/float64(b.N), "virtual_s")
			b.ReportMetric(float64(eng.SpineBytes()), "spine_B")
		})
	}
}
