package bofl_test

// BenchmarkFleetScale measures the discrete-event fleet simulator: one
// virtual-time federated round over 10k / 100k / 1M generated heterogeneous
// clients through the hierarchical aggregation tree. The custom metrics are
// the acceptance surface: clients/s of simulation throughput, allocs/client
// (the zero-alloc hot-path pin in ratio form), virtual_s of simulated round
// time, and spine_B — the aggregator working set, which must stay
// O(depth · params) no matter how many clients fold beneath it (B/op from
// -benchmem tracks the total per-round allocation). The procs1/procs4
// variants re-run the 1M round pinned to GOMAXPROCS 1 and 4: the subtree
// shards are simulated concurrently, so the clients/s spread between them is
// the parallel speedup, while the model, stats and ledger stay identical.

import (
	"runtime"
	"strconv"
	"testing"

	"bofl/internal/fleet"
)

func benchFleetRound(b *testing.B, n, procs int) {
	if procs > 0 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
	}
	eng, err := fleet.New(fleet.Config{
		Clients: n, Dim: 256, Fanout: 64, Jobs: 1, Seed: 17,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	b.ResetTimer()
	var virtual float64
	for i := 0; i < b.N; i++ {
		st, err := eng.RunRound()
		if err != nil {
			b.Fatal(err)
		}
		virtual += st.VirtualSeconds
	}
	b.StopTimer()
	runtime.ReadMemStats(&ms1)
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "clients/s")
	b.ReportMetric(float64(ms1.Mallocs-ms0.Mallocs)/(float64(n)*float64(b.N)), "allocs/client")
	b.ReportMetric(virtual/float64(b.N), "virtual_s")
	b.ReportMetric(float64(eng.SpineBytes()), "spine_B")
}

func BenchmarkFleetScale(b *testing.B) {
	for _, sz := range []struct {
		label string
		n     int
	}{{"10k", 10_000}, {"100k", 100_000}, {"1M", 1_000_000}} {
		n := sz.n
		b.Run("clients_"+sz.label, func(b *testing.B) { benchFleetRound(b, n, 0) })
	}
	for _, procs := range []int{1, 4} {
		procs := procs
		b.Run("clients_1M_procs"+strconv.Itoa(procs), func(b *testing.B) {
			benchFleetRound(b, 1_000_000, procs)
		})
	}
}
