package bofl

import (
	"bofl/internal/core"
	"bofl/internal/device"
	"bofl/internal/fl"
	"bofl/internal/ml"
	"bofl/internal/pareto"
)

// ---- Controller (the paper's contribution) ----

type (
	// Controller is the BoFL three-phase pace controller.
	Controller = core.Controller
	// Options configures a Controller; zero values select the paper's
	// defaults (τ = 5 s, 1% quasi-random start points, 3% minimum
	// exploration, 1% HVI stopping threshold, batch cap 10).
	Options = core.Options
	// PaceController is the interface shared by BoFL and the baselines.
	PaceController = core.PaceController
	// Executor runs one training minibatch under a DVFS configuration.
	Executor = core.Executor
	// ExecutorFunc adapts a function to Executor.
	ExecutorFunc = core.ExecutorFunc
	// JobResult is one job's measured latency and energy.
	JobResult = core.JobResult
	// RoundReport summarizes one executed round.
	RoundReport = core.RoundReport
	// MBOReport summarizes one between-round MBO computation.
	MBOReport = core.MBOReport
	// Phase identifies the controller's operating phase.
	Phase = core.Phase
	// Acquisition selects the multi-objective search strategy.
	Acquisition = core.Acquisition
	// ControllerSnapshot is a controller's serializable state for
	// persistence across client restarts.
	ControllerSnapshot = core.Snapshot
)

// Acquisition strategies.
const (
	AcqEHVI   = core.AcqEHVI   // the paper's expected-hypervolume-improvement search
	AcqParEGO = core.AcqParEGO // scalarization ablation
)

// The controller's phases.
const (
	PhaseRandomExplore   = core.PhaseRandomExplore
	PhaseParetoConstruct = core.PhaseParetoConstruct
	PhaseExploit         = core.PhaseExploit
)

// NewController builds a BoFL controller over a DVFS space.
func NewController(space Space, opts Options) (*Controller, error) {
	return core.New(space, opts)
}

// ---- Baselines ----

type (
	// Performant runs every job at x_max (the paper's default real-time
	// baseline).
	Performant = core.Performant
	// Oracle exploits a complete offline profile (the paper's unattainable
	// optimum).
	Oracle = core.Oracle
	// RandomExplorer is the ablation controller with random instead of
	// Bayesian exploration.
	RandomExplorer = core.RandomExplorer
	// LinearPace is a SmartPC-style 1-D linear pace controller.
	LinearPace = core.LinearPace
)

// NewPerformant builds the x_max baseline.
func NewPerformant(space Space) (*Performant, error) { return core.NewPerformant(space) }

// NewOracle builds the offline-profile oracle.
func NewOracle(profile *Profile, space Space, safety float64) (*Oracle, error) {
	return core.NewOracle(profile, space, safety)
}

// NewRandomExplorer builds the random-exploration ablation.
func NewRandomExplorer(space Space, opts Options, seed int64) (*RandomExplorer, error) {
	return core.NewRandomExplorer(space, opts, seed)
}

// NewLinearPace builds the SmartPC-style baseline.
func NewLinearPace(space Space, safety float64) (*LinearPace, error) {
	return core.NewLinearPace(space, safety)
}

// ---- Devices (simulated testbeds) ----

type (
	// Device is a simulated edge board.
	Device = device.Device
	// Space is a discrete DVFS configuration space.
	Space = device.Space
	// Config is one DVFS operating point.
	Config = device.Config
	// Freq is a clock frequency in GHz.
	Freq = device.Freq
	// Workload selects a training-cost model.
	Workload = device.Workload
	// Meter observes performance with realistic measurement noise.
	Meter = device.Meter
	// NoiseModel controls measurement error.
	NoiseModel = device.NoiseModel
	// Measurement is one noisy observation.
	Measurement = device.Measurement
	// Profile is an exhaustive offline characterization.
	Profile = device.Profile
	// ProfilePoint is one profile entry.
	ProfilePoint = device.ProfilePoint
	// DeviceSpec describes a custom board for NewCustomDevice.
	DeviceSpec = device.Spec
	// UnitSpec describes one processing unit of a custom board.
	UnitSpec = device.UnitSpec
	// WorkloadSpec describes one workload's demand on a custom board.
	WorkloadSpec = device.WorkloadSpec
)

// The evaluation workloads.
const (
	ViT      = device.ViT
	ResNet50 = device.ResNet50
	LSTM     = device.LSTM
)

// JetsonAGX builds the simulated Nvidia Jetson AGX Xavier testbed.
func JetsonAGX() *Device { return device.JetsonAGX() }

// JetsonTX2 builds the simulated Nvidia Jetson TX2 testbed.
func JetsonTX2() *Device { return device.JetsonTX2() }

// DeviceByName resolves "jetson-agx"/"agx"/"jetson-tx2"/"tx2".
func DeviceByName(name string) (*Device, bool) { return device.ByName(name) }

// NewCustomDevice builds a simulated board from a user-provided spec —
// frequency ladders, electrical constants and per-workload cost anchors.
func NewCustomDevice(spec DeviceSpec) (*Device, error) { return device.NewCustom(spec) }

// NewMeter creates a noisy performance observer for a device.
func NewMeter(dev *Device, noise NoiseModel, seed int64) *Meter {
	return device.NewMeter(dev, noise, seed)
}

// DefaultNoise is the evaluation's measurement-noise model.
func DefaultNoise() NoiseModel { return device.DefaultNoise() }

// ProfileAll exhaustively profiles a (device, workload) pair — the oracle's
// offline step.
func ProfileAll(dev *Device, w Workload) (*Profile, error) { return device.ProfileAll(dev, w) }

// ---- Federated learning substrate ----

type (
	// TaskSpec is one FL task (Table 2 of the paper).
	TaskSpec = fl.TaskSpec
	// FLClient is an FL participant with a model, local data and a pace
	// controller.
	FLClient = fl.Client
	// FLClientConfig configures an FLClient.
	FLClientConfig = fl.ClientConfig
	// FLServer orchestrates rounds and FedAvg aggregation.
	FLServer = fl.Server
	// FLServerConfig configures an FLServer.
	FLServerConfig = fl.ServerConfig
	// Participant abstracts a reachable client (local or HTTP).
	Participant = fl.Participant
	// LocalParticipant adapts an in-process FLClient.
	LocalParticipant = fl.LocalParticipant
	// RoundRequest / RoundResponse are the FL wire messages.
	RoundRequest  = fl.RoundRequest
	RoundResponse = fl.RoundResponse
	// Selector chooses a round's participants.
	Selector = fl.Selector
	// EnergyAwareSelector prefers low-energy clients (AutoFL-style).
	EnergyAwareSelector = fl.EnergyAwareSelector
	// BandwidthEstimator converts reporting deadlines into training
	// deadlines (the paper's footnote-3 extension).
	BandwidthEstimator = fl.BandwidthEstimator
)

// NewEnergyAwareSelector builds an energy-aware participant selector.
func NewEnergyAwareSelector(seed int64, exploreFrac float64) *EnergyAwareSelector {
	return fl.NewEnergyAwareSelector(seed, exploreFrac)
}

// NewBandwidthEstimator builds an uplink-throughput estimator.
func NewBandwidthEstimator(initialBytesPerSecond, alpha, headroom float64) (*BandwidthEstimator, error) {
	return fl.NewBandwidthEstimator(initialBytesPerSecond, alpha, headroom)
}

// ModelPayloadBytes estimates a parameter vector's wire size.
func ModelPayloadBytes(numParams int) int64 { return fl.ModelPayloadBytes(numParams) }

// Tasks returns the paper's three FL tasks configured for a device.
func Tasks(dev *Device, ratio float64, rounds int) ([]TaskSpec, error) {
	return fl.Tasks(dev, ratio, rounds)
}

// TaskTMin computes T_min = T(x_max)·W for a task on a device.
func TaskTMin(dev *Device, t TaskSpec) (float64, error) { return fl.TMin(dev, t) }

// SampleDeadlines draws round deadlines uniformly from [tmin, ratio·tmin].
func SampleDeadlines(tmin, ratio float64, rounds int, seed int64) ([]float64, error) {
	return fl.SampleDeadlines(tmin, ratio, rounds, seed)
}

// NewFLClient builds an FL participant.
func NewFLClient(cfg FLClientConfig) (*FLClient, error) { return fl.NewClient(cfg) }

// NewFLServer builds an FL server.
func NewFLServer(cfg FLServerConfig) (*FLServer, error) { return fl.NewServer(cfg) }

// ---- Machine-learning substrate ----

type (
	// MLModel is a trainable classifier with a flat parameter vector.
	MLModel = ml.Model
	// MLExample is one training sample.
	MLExample = ml.Example
)

// NewMLP builds a one-hidden-layer perceptron classifier.
func NewMLP(in, hidden, out int, seed int64) (MLModel, error) {
	return ml.NewMLP(in, hidden, out, seed)
}

// NewLinearModel builds a logistic-regression classifier.
func NewLinearModel(in, out int, seed int64) (MLModel, error) { return ml.NewLinear(in, out, seed) }

// NewLSTMModel builds an LSTM sequence classifier.
func NewLSTMModel(vocab, emb, hid, out int, seed int64) (MLModel, error) {
	return ml.NewLSTMClassifier(vocab, emb, hid, out, seed)
}

// NewCNNModel builds a small convolutional classifier for side×side images.
func NewCNNModel(side, filters, out int, seed int64) (MLModel, error) {
	return ml.NewCNN(side, filters, out, seed)
}

// ImagePatterns generates a synthetic image dataset of oriented-bar classes.
func ImagePatterns(n, side, classes int, noise float64, seed int64) ([]MLExample, error) {
	return ml.ImagePatterns(n, side, classes, noise, seed)
}

// Blobs generates a synthetic feature-classification dataset.
func Blobs(n, dim, classes int, spread float64, seed int64) ([]MLExample, error) {
	return ml.Blobs(n, dim, classes, spread, seed)
}

// Sentiment generates a synthetic binary sequence-classification dataset.
func Sentiment(n, vocab, seqLen int, mix float64, seed int64) ([]MLExample, error) {
	return ml.Sentiment(n, vocab, seqLen, mix, seed)
}

// PartitionExamples shards a dataset across FL clients round-robin (IID).
func PartitionExamples(examples []MLExample, parts int) ([][]MLExample, error) {
	return ml.Partition(examples, parts)
}

// PartitionNonIID shards a labelled dataset with Dirichlet(α) label skew —
// the standard emulation of heterogeneous federated client data.
func PartitionNonIID(examples []MLExample, parts, classes int, alpha float64, seed int64) ([][]MLExample, error) {
	return ml.PartitionNonIID(examples, parts, classes, alpha, seed)
}

// ---- Pareto utilities ----

type (
	// ObjectivePoint is a point in the (energy, latency) objective space.
	ObjectivePoint = pareto.Point
)

// ParetoFront extracts the non-dominated subset under minimization.
func ParetoFront(pts []ObjectivePoint) []ObjectivePoint { return pareto.Front(pts) }

// Hypervolume computes the exact 2-D hypervolume indicator.
func Hypervolume(pts []ObjectivePoint, ref ObjectivePoint) float64 {
	return pareto.Hypervolume(pts, ref)
}
