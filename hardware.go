package bofl

import (
	"bofl/internal/device"
	"bofl/internal/dvfs"
	"bofl/internal/power"
)

// ---- DVFS actuation ----

type (
	// DVFSBackend applies configurations to hardware or a simulator.
	DVFSBackend = dvfs.Backend
	// SimDVFSBackend is the in-memory backend for simulated devices.
	SimDVFSBackend = dvfs.SimBackend
	// SysfsDVFSBackend drives sysfs-style kernel frequency files.
	SysfsDVFSBackend = dvfs.SysfsBackend
	// SysfsPaths locates the kernel files controlling each unit's clock.
	SysfsPaths = dvfs.SysfsPaths
)

// NewSimDVFSBackend creates a simulated DVFS backend for a space.
func NewSimDVFSBackend(space Space) (*SimDVFSBackend, error) { return dvfs.NewSimBackend(space) }

// NewSysfsDVFSBackend opens a backend over sysfs frequency directories.
func NewSysfsDVFSBackend(paths SysfsPaths) (*SysfsDVFSBackend, error) {
	return dvfs.NewSysfsBackend(paths)
}

// EmulateSysfsTree creates a sysfs-like frequency-control tree under root —
// for demos and tests without a real board.
func EmulateSysfsTree(root string, initial Config) (SysfsPaths, error) {
	return dvfs.EmulateTree(root, initial)
}

// ---- Thermal modelling (extension) ----

type (
	// ThermalModel is a first-order RC thermal model with throttling.
	ThermalModel = device.ThermalModel
	// ThermalDevice wraps a Device with mutable thermal state.
	ThermalDevice = device.ThermalDevice
)

// DefaultThermal is a plausible passively-cooled edge-board model.
func DefaultThermal() ThermalModel { return device.DefaultThermal() }

// NewThermalDevice wraps a device with a thermal throttling model.
func NewThermalDevice(dev *Device, model ThermalModel) (*ThermalDevice, error) {
	return device.NewThermalDevice(dev, model)
}

// ---- Power sensing ----

type (
	// PowerSensor reads INA3221-style rail power from sysfs files.
	PowerSensor = power.Sensor
	// PowerRail identifies one sensor channel.
	PowerRail = power.Rail
	// EnergyAccumulator integrates job energies.
	EnergyAccumulator = power.Accumulator
)

// The INA3221 rails exposed by the Jetson boards.
const (
	RailGPU = power.RailGPU
	RailCPU = power.RailCPU
	RailSOC = power.RailSOC
)

// NewPowerSensor opens a sensor rooted at an INA3221-style directory.
func NewPowerSensor(root string) (*PowerSensor, error) { return power.NewSensor(root) }

// EmulatePowerSensorTree creates an INA3221-style file tree for demos.
func EmulatePowerSensorTree(root string) (string, error) { return power.EmulateSensorTree(root) }

// WritePowerRail updates a rail file with a power value in Watts (simulated
// board drivers use this between jobs).
func WritePowerRail(root string, r PowerRail, watts float64) error {
	return power.WriteRail(root, r, watts)
}
