package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Requests.")
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotone
	if got := c.Value(); got != 3 {
		t.Errorf("counter = %v, want 3", got)
	}
	if r.Counter("requests_total", "") != c {
		t.Error("same name+labels should return the same counter")
	}

	g := r.Gauge("temp", "", L("zone", "cpu"))
	g.Set(41)
	g.Add(1)
	if got := g.Value(); got != 42 {
		t.Errorf("gauge = %v, want 42", got)
	}

	h := r.Histogram("lat_seconds", "", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("hist count = %d, want 4", h.Count())
	}
	if h.Sum() != 55.55 {
		t.Errorf("hist sum = %v, want 55.55", h.Sum())
	}
}

func TestRegistryTypeMismatchDetaches(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	// Same name as a gauge: must not panic, must return a usable instrument,
	// and must not corrupt the counter family.
	g := r.Gauge("x_total", "")
	g.Set(7)
	if g.Value() != 7 {
		t.Error("detached gauge unusable")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "7") {
		t.Errorf("detached instrument leaked into exposition:\n%s", buf.String())
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("bofl_rounds_total", "Rounds.").Add(3)
	r.Gauge("bofl_controller_phase", "Phase.").Set(2)
	h := r.Histogram("bofl_round_energy_joules", "Energy.", []float64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)
	r.Counter("errs_total", "", L("kind", "decode"), L("endpoint", "round")).Inc()
	r.GaugeFunc("pool_util", "", func() float64 { return 0.25 })

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE bofl_rounds_total counter",
		"bofl_rounds_total 3",
		"# TYPE bofl_controller_phase gauge",
		"bofl_controller_phase 2",
		"# TYPE bofl_round_energy_joules histogram",
		`bofl_round_energy_joules_bucket{le="10"} 1`,
		`bofl_round_energy_joules_bucket{le="100"} 2`,
		`bofl_round_energy_joules_bucket{le="+Inf"} 3`,
		"bofl_round_energy_joules_sum 555",
		"bofl_round_energy_joules_count 3",
		`errs_total{endpoint="round",kind="decode"} 1`, // labels sorted by key
		"# TYPE pool_util gauge",
		"pool_util 0.25",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Deterministic output: a second scrape of identical state is byte-equal.
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("two scrapes of identical state differ")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total", "", L("p", `a"b\c`+"\n")).Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `m_total{p="a\"b\\c\n"} 1`) {
		t.Errorf("bad escaping:\n%s", buf.String())
	}
}

// TestRegistryConcurrent hammers one counter, one gauge, one histogram and the
// family-creation path from GOMAXPROCS goroutines; run under -race this is
// the registry's data-race proof, and the counter/histogram totals prove no
// increments are lost.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("c_total", "").Inc()
				r.Gauge("g", "").Set(float64(i))
				r.Histogram("h_seconds", "", nil).Observe(float64(i) * 1e-4)
				// Family churn: a per-worker label set exercises the
				// create path concurrently with the hot path.
				r.Counter("c_labeled_total", "", L("w", string(rune('a'+w%26)))).Inc()
			}
		}(w)
	}
	wg.Wait()

	want := float64(workers * perWorker)
	if got := r.Counter("c_total", "").Value(); got != want {
		t.Errorf("lost counter increments: got %v, want %v", got, want)
	}
	if got := r.Histogram("h_seconds", "", nil).Count(); got != uint64(want) {
		t.Errorf("lost histogram observations: got %v, want %v", got, want)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestTracerSpansAndExport(t *testing.T) {
	clock := NewStep(time.Unix(100, 0), 50*time.Millisecond)
	tr := NewTracer(clock)
	end := tr.Begin("bofl_gp_fit", L("objective", "energy"))
	end()
	tr.Instant("phase_transition", L("to", "exploit"))

	events := tr.Events()
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	if events[0].Name != "bofl_gp_fit" || events[0].Dur != (50*time.Millisecond).Nanoseconds() {
		t.Errorf("bad span event %+v", events[0])
	}
	if !events[1].Instant {
		t.Errorf("instant event not marked: %+v", events[1])
	}

	var jsonl bytes.Buffer
	if err := tr.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(jsonl.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("JSONL has %d lines, want 2", len(lines))
	}
	for _, line := range lines {
		var ev SpanEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("JSONL line %q: %v", line, err)
		}
	}

	// Chrome export must be valid trace_event JSON with matching events.
	var chrome bytes.Buffer
	if err := tr.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	var payload struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &payload); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(payload.TraceEvents) != 2 {
		t.Fatalf("chrome trace has %d events, want 2", len(payload.TraceEvents))
	}
	if ph := payload.TraceEvents[0]["ph"]; ph != "X" {
		t.Errorf("span event ph = %v, want X", ph)
	}
	if ph := payload.TraceEvents[1]["ph"]; ph != "i" {
		t.Errorf("instant event ph = %v, want i", ph)
	}

	// Round-trip: JSONL → Chrome conversion matches the direct export.
	var converted bytes.Buffer
	if err := ConvertJSONLToChrome(strings.NewReader(jsonl.String()), &converted); err != nil {
		t.Fatal(err)
	}
	if converted.String() != chrome.String() {
		t.Error("ConvertJSONLToChrome differs from WriteChromeTrace")
	}
}

func TestTracerBufferBound(t *testing.T) {
	tr := NewTracer(Frozen{time.Unix(0, 0)})
	tr.SetMaxEvents(3)
	for i := 0; i < 5; i++ {
		tr.Instant("e")
	}
	if tr.Len() != 3 {
		t.Errorf("buffer len %d, want 3", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Errorf("dropped %d, want 2", tr.Dropped())
	}
}

func TestTelemetrySinkRecordsMetricsAndSpans(t *testing.T) {
	clock := NewStep(time.Unix(0, 0), 100*time.Millisecond)
	tel := New(clock)
	var sink Sink = tel

	sink.Count("bofl_rounds_total", 1)
	sink.SetGauge("bofl_hypervolume", 12.5)
	sink.Observe("bofl_round_energy_joules", 42)
	sink.Span("bofl_ilp_solve")()
	sink.Event("phase_transition", L("to", "exploit"))

	if got := tel.Registry.Counter("bofl_rounds_total", "").Value(); got != 1 {
		t.Errorf("counter = %v", got)
	}
	if got := tel.Registry.Gauge("bofl_hypervolume", "").Value(); got != 12.5 {
		t.Errorf("gauge = %v", got)
	}
	h := tel.Registry.Histogram("bofl_ilp_solve_seconds", "", nil)
	if h.Count() != 1 {
		t.Error("span did not record its auto-histogram")
	}
	if h.Sum() != 0.1 {
		t.Errorf("span duration = %v, want 0.1", h.Sum())
	}
	if tel.Tracer.Len() != 2 {
		t.Errorf("tracer has %d events, want 2", tel.Tracer.Len())
	}
}

func TestNopSinkIsInert(t *testing.T) {
	var s Sink = Nop
	s.Count("x", 1)
	s.SetGauge("x", 1)
	s.Observe("x", 1)
	s.Span("x", L("a", "b"))()
	s.Event("x")
	if OrNop(nil) != Nop {
		t.Error("OrNop(nil) != Nop")
	}
	if tel := New(nil); OrNop(tel) != tel {
		t.Error("OrNop(sink) must pass through")
	}
}

func TestFrozenAndStepClocks(t *testing.T) {
	f := Frozen{time.Unix(7, 0)}
	if f.Now() != f.Now() {
		t.Error("frozen clock moved")
	}
	s := NewStep(time.Unix(0, 0), time.Second)
	a, b := s.Now(), s.Now()
	if b.Sub(a) != time.Second {
		t.Errorf("step = %v, want 1s", b.Sub(a))
	}
}

func TestNewBoFLPreRegistersCatalog(t *testing.T) {
	tel := NewBoFL(Frozen{time.Unix(0, 0)})
	var buf bytes.Buffer
	if err := tel.Registry.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// The acceptance set: every canonical series is present on a scrape
	// even before the first round runs.
	for _, name := range []string{
		MetricRounds, MetricRoundEnergy, MetricDeadlineMisses,
		MetricControllerPhase, MetricHypervolume, MetricFrontSize,
		SpanGPFit + "_seconds", SpanEHVIScan + "_seconds", SpanILPSolve + "_seconds",
		MetricPoolUtilization, MetricPoolWorkers,
		MetricILPSolves, MetricFLRounds, MetricFLHTTPErrors,
	} {
		if !strings.Contains(out, "# TYPE "+name+" ") {
			t.Errorf("catalog missing %s", name)
		}
	}
}

func TestHealthzHandler(t *testing.T) {
	tel := New(Frozen{time.Unix(0, 0)})
	rec := newRecorder()
	tel.HealthzHandler().ServeHTTP(rec, nil)
	var got healthState
	if err := json.Unmarshal(rec.body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Status != "ok" {
		t.Errorf("status = %q", got.Status)
	}
}

// recorder is a minimal ResponseWriter to avoid importing httptest here.
type recorder struct {
	body   bytes.Buffer
	header http.Header
}

func newRecorder() *recorder { return &recorder{header: http.Header{}} }

func (r *recorder) Header() http.Header         { return r.header }
func (r *recorder) Write(p []byte) (int, error) { return r.body.Write(p) }
func (r *recorder) WriteHeader(int)             {}
