package obs

import (
	"strconv"
	"strings"
	"testing"
)

func TestRegisterRuntimeGauges(t *testing.T) {
	r := NewRegistry()
	RegisterRuntime(r)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, name := range []string{
		MetricGoGoroutines, MetricGoHeapAlloc, MetricGoHeapSys,
		MetricGoGCPause, MetricGoGCCycles, MetricGoMaxProcs, MetricGoTotalAlloc,
	} {
		if !strings.Contains(out, "\n"+name+" ") && !strings.HasPrefix(out, name+" ") {
			t.Errorf("exposition missing runtime series %s", name)
		}
	}
	// The values are read live at scrape time, so a running test process must
	// report at least one goroutine and a positive scheduler width and heap.
	for _, name := range []string{MetricGoGoroutines, MetricGoMaxProcs, MetricGoHeapAlloc, MetricGoTotalAlloc} {
		v, ok := sampleValue(out, name)
		if !ok {
			t.Fatalf("no sample for %s", name)
		}
		if v <= 0 {
			t.Errorf("%s = %v, want > 0", name, v)
		}
	}
}

// sampleValue extracts the unlabeled sample for a family from exposition text.
func sampleValue(exposition, name string) (float64, bool) {
	for _, line := range strings.Split(exposition, "\n") {
		rest, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	return 0, false
}
