package ledger

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestAppendStampsMonotonicSeq(t *testing.T) {
	l := New(0) // 0 → DefaultMaxEvents
	for i := 0; i < 5; i++ {
		l.Append(Event{Kind: KindAttempt, Round: i, Client: "c0"})
	}
	evs := l.Events()
	if len(evs) != 5 {
		t.Fatalf("Len = %d, want 5", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d has Seq %d, want %d", i, ev.Seq, i+1)
		}
	}
	if l.Evicted() != 0 {
		t.Errorf("Evicted = %d, want 0", l.Evicted())
	}
}

func TestRingEvictionKeepsNewestInOrder(t *testing.T) {
	l := New(4)
	for i := 0; i < 10; i++ {
		l.Append(Event{Kind: KindAttempt, Round: i})
	}
	evs := l.Events()
	if len(evs) != 4 {
		t.Fatalf("Len = %d, want 4", len(evs))
	}
	if got := l.Evicted(); got != 6 {
		t.Errorf("Evicted = %d, want 6", got)
	}
	for i, ev := range evs {
		wantRound := 6 + i
		wantSeq := uint64(7 + i)
		if ev.Round != wantRound || ev.Seq != wantSeq {
			t.Errorf("event %d = round %d seq %d, want round %d seq %d",
				i, ev.Round, ev.Seq, wantRound, wantSeq)
		}
	}
}

func TestNilLedgerSafe(t *testing.T) {
	var l *Ledger
	l.Append(Event{Kind: KindCommit}) // must not panic
	if l.Len() != 0 || l.Evicted() != 0 || l.Events() != nil {
		t.Error("nil ledger reported state")
	}
	if err := l.Flush(); err != nil {
		t.Errorf("nil Flush: %v", err)
	}
}

func sampleEvents() []Event {
	return []Event{
		{Kind: KindRoundBegin, Round: 1, TraceID: "aaaaaaaaaaaaaaaa", SpanID: "bbbbbbbbbbbbbbbb", Deadline: 12.5, Selected: 2},
		{Kind: KindAttempt, Round: 1, Client: "cli-0", Attempt: 0, Verdict: VerdictCrash, DelayNs: 100, Detail: "injected crash"},
		{Kind: KindAttempt, Round: 1, Client: "cli-0", Attempt: 1, Verdict: VerdictOK, EnergyJoules: 42.5, LatencySeconds: 9.25, WireTxBytes: 2048, WireRxBytes: 512, BackoffNs: 1000},
		{Kind: KindAttempt, Round: 1, Client: "cli-1", Attempt: 0, Verdict: VerdictOK, EnergyJoules: 40, LatencySeconds: 8.5},
		{Kind: KindCommit, Round: 1, Survivors: 2, Selected: 2},
	}
}

func TestJSONLRoundtripAndDeterminism(t *testing.T) {
	l := New(0)
	for _, ev := range sampleEvents() {
		l.Append(ev)
	}
	var a, b bytes.Buffer
	if err := l.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two WriteJSONL calls over identical state differ")
	}
	back, err := ReadJSONL(&a)
	if err != nil {
		t.Fatal(err)
	}
	evs := l.Events()
	if len(back) != len(evs) {
		t.Fatalf("roundtrip length %d, want %d", len(back), len(evs))
	}
	for i := range back {
		if back[i] != evs[i] {
			t.Errorf("event %d mutated in roundtrip:\n got %+v\nwant %+v", i, back[i], evs[i])
		}
	}
	// Optional fields stay omitted: a commit event carries no verdict/client.
	if strings.Contains(a.String(), `"verdict":""`) {
		t.Error("empty optional fields serialized")
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{\"kind\":\"attempt\"}\nnot json\n")); err == nil {
		t.Error("ReadJSONL accepted malformed input")
	}
	evs, err := ReadJSONL(strings.NewReader(""))
	if err != nil || len(evs) != 0 {
		t.Errorf("empty input: %v, %d events", err, len(evs))
	}
}

func TestSinkStreamsEveryAppend(t *testing.T) {
	l := New(2) // ring smaller than the event count: sink must still see all
	var buf bytes.Buffer
	l.SetSink(&buf)
	for _, ev := range sampleEvents() {
		l.Append(ev)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != len(sampleEvents()) {
		t.Fatalf("sink saw %d events, want %d (ring eviction must not drop sink writes)", len(evs), len(sampleEvents()))
	}
	if l.Len() != 2 {
		t.Errorf("ring Len = %d, want 2", l.Len())
	}
}

type failWriter struct{ err error }

func (w failWriter) Write(p []byte) (int, error) { return 0, w.err }

func TestSinkErrorLatches(t *testing.T) {
	l := New(0)
	boom := errors.New("disk full")
	l.SetSink(failWriter{boom})
	for i := 0; i < 3; i++ {
		l.Append(Event{Kind: KindAttempt})
	}
	if err := l.Flush(); !errors.Is(err, boom) {
		t.Fatalf("Flush = %v, want latched %v", err, boom)
	}
	if err := l.SinkErr(); !errors.Is(err, boom) {
		t.Errorf("SinkErr = %v, want %v", err, boom)
	}
	// In-memory ring keeps working after the sink dies.
	if l.Len() != 3 {
		t.Errorf("Len = %d after sink failure, want 3", l.Len())
	}
}

func TestHandlerFilters(t *testing.T) {
	l := New(0)
	for _, ev := range sampleEvents() {
		l.Append(ev)
	}
	l.Append(Event{Kind: KindRoundBegin, Round: 2, Selected: 1})

	get := func(target string) ([]Event, string) {
		rec := httptest.NewRecorder()
		l.Handler().ServeHTTP(rec, httptest.NewRequest("GET", target, nil))
		if rec.Code != 200 {
			t.Fatalf("GET %s: status %d: %s", target, rec.Code, rec.Body.String())
		}
		evs, err := ReadJSONL(rec.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", target, err)
		}
		return evs, rec.Header().Get("Content-Type")
	}

	all, ctype := get("/v1/ledger")
	if len(all) != 6 {
		t.Errorf("unfiltered: %d events, want 6", len(all))
	}
	if !strings.Contains(ctype, "ndjson") {
		t.Errorf("Content-Type = %q, want ndjson", ctype)
	}
	round1, _ := get("/v1/ledger?round=1")
	if len(round1) != 5 {
		t.Errorf("round=1: %d events, want 5", len(round1))
	}
	attempts, _ := get("/v1/ledger?kind=attempt")
	for _, ev := range attempts {
		if ev.Kind != KindAttempt {
			t.Errorf("kind filter leaked %q", ev.Kind)
		}
	}
	if len(attempts) != 3 {
		t.Errorf("kind=attempt: %d events, want 3", len(attempts))
	}
	both, _ := get("/v1/ledger?round=2&kind=round_begin")
	if len(both) != 1 || both[0].Round != 2 {
		t.Errorf("combined filter: %+v", both)
	}

	rec := httptest.NewRecorder()
	l.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/ledger?round=notanint", nil))
	if rec.Code != 400 {
		t.Errorf("bad round filter: status %d, want 400", rec.Code)
	}
}

func TestSummarize(t *testing.T) {
	evs := []Event{
		{Kind: KindRoundBegin, Round: 1, Selected: 2},
		{Kind: KindAttempt, Round: 1, Client: "cli-1", Attempt: 0, Verdict: VerdictStraggler},
		{Kind: KindAttempt, Round: 1, Client: "cli-1", Attempt: 1, Verdict: VerdictOK, EnergyJoules: 10, LatencySeconds: 2, WireTxBytes: 100, WireRxBytes: 50},
		{Kind: KindAttempt, Round: 1, Client: "cli-0", Attempt: 0, Verdict: VerdictCrash},
		{Kind: KindAttempt, Round: 1, Client: "cli-0", Attempt: 1, Verdict: VerdictDrop},
		{Kind: KindAttempt, Round: 1, Client: "cli-0", Attempt: 2, Verdict: VerdictOK, EnergyJoules: 20, LatencySeconds: 3, WireTxBytes: 200, WireRxBytes: 60},
		{Kind: KindQuarantine, Round: 1, Client: "cli-0"},
		{Kind: KindCommit, Round: 1, Survivors: 2, Selected: 2},
	}
	sum := Summarize(evs)
	if sum.Rounds != 1 || sum.Commits != 1 || sum.Aborts != 0 {
		t.Errorf("totals: %+v", sum)
	}
	if len(sum.Clients) != 2 {
		t.Fatalf("clients: %d, want 2", len(sum.Clients))
	}
	// Sorted by client ID.
	c0, c1 := sum.Clients[0], sum.Clients[1]
	if c0.Client != "cli-0" || c1.Client != "cli-1" {
		t.Fatalf("client order: %q, %q", c0.Client, c1.Client)
	}
	if c0.Attempts != 3 || c0.Crashes != 1 || c0.Drops != 1 || c0.Folded != 1 || c0.Retries != 2 || c0.Quarantines != 1 {
		t.Errorf("cli-0 rollup: %+v", c0)
	}
	if c0.EnergyJoules != 20 || c0.LatencySecs != 3 || c0.WireTxBytes != 200 || c0.WireRxBytes != 60 {
		t.Errorf("cli-0 attribution: %+v", c0)
	}
	if c1.Attempts != 2 || c1.Stragglers != 1 || c1.Folded != 1 || c1.Retries != 1 {
		t.Errorf("cli-1 rollup: %+v", c1)
	}
	if c1.EnergyJoules != 10 {
		t.Errorf("cli-1 energy: %v", c1.EnergyJoules)
	}
}

// TestHandlerPagination checks ?offset=/?limit= paging: stable seq ordering,
// a total header for termination, and graceful edges.
func TestHandlerPagination(t *testing.T) {
	l := New(0)
	for i := 1; i <= 25; i++ {
		l.Append(Event{Kind: KindAttempt, Round: 1, Client: "c"})
	}
	get := func(target string) ([]Event, http.Header) {
		rec := httptest.NewRecorder()
		l.Handler().ServeHTTP(rec, httptest.NewRequest("GET", target, nil))
		if rec.Code != 200 {
			t.Fatalf("GET %s: status %d: %s", target, rec.Code, rec.Body.String())
		}
		evs, err := ReadJSONL(rec.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", target, err)
		}
		return evs, rec.Header()
	}
	page1, hdr := get("/v1/ledger?limit=10")
	if len(page1) != 10 || page1[0].Seq != 1 {
		t.Fatalf("page 1: %d events, first seq %d", len(page1), page1[0].Seq)
	}
	if hdr.Get("X-Bofl-Ledger-Total") != "25" {
		t.Errorf("total header %q, want 25", hdr.Get("X-Bofl-Ledger-Total"))
	}
	page2, _ := get("/v1/ledger?offset=10&limit=10")
	if len(page2) != 10 || page2[0].Seq != 11 {
		t.Fatalf("page 2: %d events, first seq %d", len(page2), page2[0].Seq)
	}
	page3, _ := get("/v1/ledger?offset=20&limit=10")
	if len(page3) != 5 || page3[0].Seq != 21 {
		t.Fatalf("page 3: %d events, first seq %d", len(page3), page3[0].Seq)
	}
	past, _ := get("/v1/ledger?offset=99")
	if len(past) != 0 {
		t.Fatalf("past-the-end offset returned %d events", len(past))
	}
	// Paging composes with filters: the total reflects the filtered count.
	_, hdr = get("/v1/ledger?kind=attempt&offset=0&limit=5")
	if hdr.Get("X-Bofl-Ledger-Total") != "25" {
		t.Errorf("filtered total %q", hdr.Get("X-Bofl-Ledger-Total"))
	}
	for _, bad := range []string{"?offset=-1", "?limit=-2", "?offset=x", "?limit=x"} {
		rec := httptest.NewRecorder()
		l.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/ledger"+bad, nil))
		if rec.Code != 400 {
			t.Errorf("GET %s: status %d, want 400", bad, rec.Code)
		}
	}
}

// TestRoundCapDropsAndCounts checks the per-round growth bound: events past
// the cap are suppressed (not ring-evicted) and counted, and the counter is
// surfaced through the HTTP handler.
func TestRoundCapDropsAndCounts(t *testing.T) {
	l := New(0)
	l.SetRoundCap(3)
	for round := 1; round <= 2; round++ {
		for i := 0; i < 5; i++ {
			l.Append(Event{Kind: KindAttempt, Round: round})
		}
	}
	if got := l.Len(); got != 6 {
		t.Fatalf("kept %d events, want 6", got)
	}
	if got := l.RoundDropped(); got != 4 {
		t.Fatalf("dropped %d events, want 4", got)
	}
	for _, ev := range l.Events() {
		if ev.Seq == 0 {
			t.Fatal("kept event missing seq")
		}
	}
	rec := httptest.NewRecorder()
	l.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/ledger", nil))
	if got := rec.Header().Get("X-Bofl-Ledger-Dropped"); got != "4" {
		t.Errorf("dropped header %q, want 4", got)
	}
	// Lifting the cap resumes journaling.
	l.SetRoundCap(0)
	l.Append(Event{Kind: KindCommit, Round: 2})
	if got := l.Len(); got != 7 {
		t.Fatalf("post-uncap kept %d, want 7", got)
	}
}
