// Package ledger is the serving plane's replayable round ledger: an
// append-only, structured event journal recording every attempt verdict the
// fault-injected call path produced (drop, crash, straggler, corrupt, retry),
// every quarantine and quorum decision, and per-client energy / latency /
// wire-byte attribution for each committed update.
//
// The ledger is the audit layer BoFL's per-round energy argument needs: a
// chaos round no longer just *happens* — it leaves a deterministic record of
// which client was dropped at which attempt and what the round paid for it.
// Determinism is structural: events are appended in participant index order
// (the server's fold turnstile already serializes that order independent of
// goroutine scheduling), every recorded quantity is derived from seeded
// virtual-time simulation or pure hash draws, and no wall-clock timestamp is
// ever recorded. Two runs of the same scenario under the same
// BOFL_CHAOS_SEED therefore serialize to byte-identical JSONL.
//
// Storage is a bounded in-memory ring (oldest events evicted first, eviction
// counted) with an optional streaming JSONL sink for durable journals.
package ledger

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
)

// Event kinds, in the order they appear within one round.
const (
	// KindRoundBegin opens a round: trace ID, selection size and deadline.
	KindRoundBegin = "round_begin"
	// KindAttempt records one participant attempt's verdict.
	KindAttempt = "attempt"
	// KindQuarantine records a client's exclusion for a corrupt frame.
	KindQuarantine = "quarantine"
	// KindQuorum records a round committing below full participation.
	KindQuorum = "quorum"
	// KindPartial records a tier aggregator forwarding its weighted partial
	// sum to its parent (hierarchical aggregation only).
	KindPartial = "partial"
	// KindSubtreeDrop records a tier aggregator discarding its whole subtree
	// for missing the per-tier quorum; the parent renormalizes over the
	// surviving siblings.
	KindSubtreeDrop = "subtree_drop"
	// KindCommit closes a successful round with survivor accounting.
	KindCommit = "commit"
	// KindAbort closes a failed round (no survivors / quorum miss /
	// validation failure).
	KindAbort = "abort"
)

// Attempt verdicts. "ok" is a folded update; everything else explains an
// attempt that produced none.
const (
	VerdictOK        = "ok"
	VerdictDrop      = "drop"
	VerdictCrash     = "crash"
	VerdictTimeout   = "timeout"
	VerdictStraggler = "straggler"
	VerdictCorrupt   = "corrupt"
	VerdictBudget    = "budget"
	VerdictError     = "error"
)

// Event is one ledger entry. Field order is the JSONL serialization order;
// numeric fields are omitted when zero so healthy rounds stay compact.
type Event struct {
	// Seq is the ledger-assigned sequence number (monotonic, starts at 1).
	Seq uint64 `json:"seq"`
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// Round is the server round the event belongs to.
	Round int `json:"round"`
	// TraceID ties the event to the round's stitched distributed trace.
	TraceID string `json:"traceId,omitempty"`
	// SpanID is the attempt span carrying this event in the trace.
	SpanID string `json:"spanId,omitempty"`
	// Client is the participant id (attempt/quarantine events).
	Client string `json:"client,omitempty"`
	// Attempt is the zero-based attempt index within the round.
	Attempt int `json:"attempt,omitempty"`
	// Verdict is one of the Verdict* constants (attempt events).
	Verdict string `json:"verdict,omitempty"`
	// Deadline is the round deadline in seconds (round_begin events).
	Deadline float64 `json:"deadlineSeconds,omitempty"`
	// Selected is the number of participants chosen this round.
	Selected int `json:"selected,omitempty"`
	// Survivors is the number of updates folded into the commit.
	Survivors int `json:"survivors,omitempty"`
	// Tier is the aggregation-tree tier of a partial/subtree_drop event
	// (leaves fold into tier 0).
	Tier int `json:"tier,omitempty"`
	// Node is the tier-local node ordinal of a partial/subtree_drop event.
	Node int `json:"node,omitempty"`
	// Weight is the integer example-count weight a partial carries upward.
	Weight int64 `json:"weight,omitempty"`
	// EnergyJoules attributes the client's reported round energy.
	EnergyJoules float64 `json:"energyJoules,omitempty"`
	// LatencySeconds attributes the client's reported round busy time.
	LatencySeconds float64 `json:"latencySeconds,omitempty"`
	// WireTxBytes / WireRxBytes attribute serialized bytes moved for the
	// attempt (zero for in-process participants).
	WireTxBytes int64 `json:"wireTxBytes,omitempty"`
	WireRxBytes int64 `json:"wireRxBytes,omitempty"`
	// DelayNs is injected straggle latency charged to the attempt.
	DelayNs int64 `json:"delayNs,omitempty"`
	// BackoffNs is the seeded backoff wait that followed a failed attempt.
	BackoffNs int64 `json:"backoffNs,omitempty"`
	// Detail carries the failure message, if any.
	Detail string `json:"detail,omitempty"`
}

// DefaultMaxEvents bounds the in-memory ring: roomy enough for thousands of
// chaos rounds while capping worst-case memory in the tens of MB.
const DefaultMaxEvents = 1 << 16

// Ledger is an append-only event journal: a bounded in-memory ring plus an
// optional streaming JSONL sink. Safe for concurrent use, though the serving
// plane appends under its fold turnstile precisely so the order is
// deterministic.
type Ledger struct {
	mu      sync.Mutex
	events  []Event // ring storage, len ≤ max
	head    int     // index of the oldest event once the ring wrapped
	full    bool
	max     int
	seq     uint64
	evicted uint64

	sink    *bufio.Writer
	sinkErr error

	// roundCap bounds events journaled per round (0 = unlimited). Million-leaf
	// tree rounds emit one partial per aggregator node; the cap keeps a single
	// round from flushing the whole ring, and every suppressed event is
	// counted instead of silently vanishing.
	roundCap     int
	capRound     int    // round the in-round counter tracks
	capCount     int    // events journaled for capRound
	roundDropped uint64 // events suppressed by the cap, total
}

// New builds a ledger holding at most max events in memory (≤ 0 selects
// DefaultMaxEvents).
func New(max int) *Ledger {
	if max <= 0 {
		max = DefaultMaxEvents
	}
	return &Ledger{events: make([]Event, 0, min(max, 1024)), max: max}
}

// SetSink streams every subsequent append to w as one JSON line — the
// durable journal. The first write error latches (SinkErr) and stops further
// sink writes; in-memory appends continue, because the ledger must never take
// a round down.
func (l *Ledger) SetSink(w io.Writer) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sink = bufio.NewWriter(w)
	l.sinkErr = nil
}

// SinkErr reports the latched sink write error, if any.
func (l *Ledger) SinkErr() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sinkErr
}

// Flush drains the buffered sink writer. Nil-safe, like Append.
func (l *Ledger) Flush() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sink == nil {
		return l.sinkErr
	}
	if err := l.sink.Flush(); err != nil && l.sinkErr == nil {
		l.sinkErr = err
	}
	return l.sinkErr
}

// SetRoundCap bounds how many events any single round may journal (0 removes
// the bound). Events beyond the cap are dropped and counted via RoundDropped.
func (l *Ledger) SetRoundCap(n int) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if n < 0 {
		n = 0
	}
	l.roundCap = n
}

// RoundDropped reports how many events the per-round cap suppressed.
func (l *Ledger) RoundDropped() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.roundDropped
}

// Append stamps the event with the next sequence number and journals it.
// Nil-safe, so call sites need no ledger-enabled branch.
func (l *Ledger) Append(ev Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	if l.roundCap > 0 {
		if ev.Round != l.capRound {
			l.capRound, l.capCount = ev.Round, 0
		}
		if l.capCount >= l.roundCap {
			l.roundDropped++
			l.mu.Unlock()
			return
		}
		l.capCount++
	}
	l.seq++
	ev.Seq = l.seq
	if len(l.events) < l.max && !l.full {
		l.events = append(l.events, ev)
		if len(l.events) == l.max {
			l.full = true
		}
	} else {
		l.full = true
		l.events[l.head] = ev
		l.head = (l.head + 1) % l.max
		l.evicted++
	}
	if l.sink != nil && l.sinkErr == nil {
		b, err := json.Marshal(ev)
		if err == nil {
			_, err = l.sink.Write(append(b, '\n'))
		}
		if err != nil {
			l.sinkErr = err
		}
	}
	l.mu.Unlock()
}

// Len returns the number of events held in memory.
func (l *Ledger) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Evicted returns how many events the ring displaced.
func (l *Ledger) Evicted() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.evicted
}

// Events returns a copy of the in-memory events, oldest first.
func (l *Ledger) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.events))
	if l.full && l.head > 0 {
		out = append(out, l.events[l.head:]...)
		out = append(out, l.events[:l.head]...)
	} else {
		out = append(out, l.events...)
	}
	return out
}

// WriteJSONL serializes the in-memory events as one JSON object per line.
// The encoding is deterministic (fixed field order, no timestamps), so two
// replays of a seeded scenario produce byte-identical output.
func (l *Ledger) WriteJSONL(w io.Writer) error {
	return WriteJSONL(w, l.Events())
}

// WriteJSONL writes events as JSONL.
func WriteJSONL(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSONL parses a JSONL journal (as written by WriteJSONL or a sink).
func ReadJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var ev Event
		if err := dec.Decode(&ev); errors.Is(err, io.EOF) {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("ledger: parse event %d: %w", len(out)+1, err)
		}
		out = append(out, ev)
	}
}

// Handler serves the ledger over HTTP as JSONL (the /v1/ledger admin
// endpoint). ?round=N narrows to one round; ?kind=attempt narrows by kind.
// ?offset=K and ?limit=M page through the (seq-ordered, so stable) filtered
// stream — a million-leaf round's journal is never served as one unbounded
// body. X-Bofl-Ledger-Total carries the filtered count so clients know when
// to stop paging; X-Bofl-Ledger-Dropped surfaces the per-round cap counter.
func (l *Ledger) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		events := l.Events()
		if q := r.URL.Query().Get("round"); q != "" {
			round, err := strconv.Atoi(q)
			if err != nil {
				http.Error(w, "bad round: "+q, http.StatusBadRequest)
				return
			}
			events = filter(events, func(ev Event) bool { return ev.Round == round })
		}
		if kind := r.URL.Query().Get("kind"); kind != "" {
			events = filter(events, func(ev Event) bool { return ev.Kind == kind })
		}
		total := len(events)
		offset, limit := 0, 0
		if q := r.URL.Query().Get("offset"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				http.Error(w, "bad offset: "+q, http.StatusBadRequest)
				return
			}
			offset = v
		}
		if q := r.URL.Query().Get("limit"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				http.Error(w, "bad limit: "+q, http.StatusBadRequest)
				return
			}
			limit = v
		}
		if offset > len(events) {
			offset = len(events)
		}
		events = events[offset:]
		if limit > 0 && limit < len(events) {
			events = events[:limit]
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("X-Bofl-Ledger-Total", strconv.Itoa(total))
		w.Header().Set("X-Bofl-Ledger-Dropped", strconv.FormatUint(l.RoundDropped(), 10))
		_ = WriteJSONL(w, events)
	})
}

func filter(events []Event, keep func(Event) bool) []Event {
	out := events[:0:0]
	for _, ev := range events {
		if keep(ev) {
			out = append(out, ev)
		}
	}
	return out
}

// ClientSummary aggregates one client's ledger history.
type ClientSummary struct {
	Client       string  `json:"client"`
	Attempts     int     `json:"attempts"`
	Folded       int     `json:"folded"`
	Drops        int     `json:"drops"`
	Crashes      int     `json:"crashes"`
	Stragglers   int     `json:"stragglers"`
	Corrupt      int     `json:"corrupt"`
	Retries      int     `json:"retries"` // attempts beyond the first, per round
	Quarantines  int     `json:"quarantines"`
	EnergyJoules float64 `json:"energyJoules"`
	LatencySecs  float64 `json:"latencySeconds"`
	WireTxBytes  int64   `json:"wireTxBytes"`
	WireRxBytes  int64   `json:"wireRxBytes"`
}

// Summary is the roll-up of one ledger: per-client attribution plus round
// counts, the output of `boflprofile -ledger`.
type Summary struct {
	Rounds   int `json:"rounds"`
	Commits  int `json:"commits"`
	Aborts   int `json:"aborts"`
	Quorums  int `json:"quorums"`
	Attempts int `json:"attempts"`
	// Partials / SubtreeDrops count hierarchical-aggregation tier events.
	Partials     int             `json:"partials,omitempty"`
	SubtreeDrops int             `json:"subtreeDrops,omitempty"`
	Clients      []ClientSummary `json:"clients"`
	EnergyJ      float64         `json:"energyJoules"`
	LatencyS     float64         `json:"latencySeconds"`
	WireBytes    int64           `json:"wireBytes"`
}

// Summarize rolls a ledger up into per-client attribution (sorted by client
// id) and whole-run totals.
func Summarize(events []Event) Summary {
	var s Summary
	byClient := map[string]*ClientSummary{}
	rounds := map[int]bool{}
	for _, ev := range events {
		if ev.Round != 0 {
			rounds[ev.Round] = true
		}
		switch ev.Kind {
		case KindCommit:
			s.Commits++
		case KindAbort:
			s.Aborts++
		case KindQuorum:
			s.Quorums++
		case KindPartial:
			s.Partials++
		case KindSubtreeDrop:
			s.SubtreeDrops++
		case KindQuarantine:
			c := clientOf(byClient, ev.Client)
			c.Quarantines++
		case KindAttempt:
			s.Attempts++
			c := clientOf(byClient, ev.Client)
			c.Attempts++
			if ev.Attempt > 0 {
				c.Retries++
			}
			switch ev.Verdict {
			case VerdictOK:
				c.Folded++
				c.EnergyJoules += ev.EnergyJoules
				c.LatencySecs += ev.LatencySeconds
				s.EnergyJ += ev.EnergyJoules
				s.LatencyS += ev.LatencySeconds
			case VerdictDrop:
				c.Drops++
			case VerdictCrash:
				c.Crashes++
			case VerdictTimeout, VerdictStraggler:
				c.Stragglers++
			case VerdictCorrupt:
				c.Corrupt++
			}
			c.WireTxBytes += ev.WireTxBytes
			c.WireRxBytes += ev.WireRxBytes
			s.WireBytes += ev.WireTxBytes + ev.WireRxBytes
		}
	}
	s.Rounds = len(rounds)
	s.Clients = make([]ClientSummary, 0, len(byClient))
	for _, c := range byClient {
		s.Clients = append(s.Clients, *c)
	}
	sort.Slice(s.Clients, func(i, j int) bool { return s.Clients[i].Client < s.Clients[j].Client })
	return s
}

func clientOf(m map[string]*ClientSummary, id string) *ClientSummary {
	c := m[id]
	if c == nil {
		c = &ClientSummary{Client: id}
		m[id] = c
	}
	return c
}
