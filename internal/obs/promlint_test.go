package obs

import (
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// This file is the exposition-format lint gate: it exercises every canonical
// BoFL instrument, scrapes the full /metrics text and validates it line by
// line against the Prometheus 0.0.4 grammar — names, label syntax, HELP/TYPE
// placement, histogram bucket monotonicity and +Inf/count agreement, and
// series uniqueness. A regression anywhere in the registry's writer (or a
// hostile label value leaking through) fails here before any scraper sees it.

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// promSample is one parsed sample line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
	line   string
}

// parseSample parses `name{k="v",...} value` (labels optional).
func parseSample(line string) (promSample, error) {
	s := promSample{labels: map[string]string{}, line: line}
	rest := line
	brace := strings.IndexByte(rest, '{')
	space := strings.IndexByte(rest, ' ')
	if space < 0 {
		return s, fmt.Errorf("no value separator")
	}
	if brace >= 0 && brace < space {
		s.name = rest[:brace]
		end := strings.Index(rest, "} ")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set")
		}
		body := rest[brace+1 : end]
		rest = rest[end+2:]
		for len(body) > 0 {
			eq := strings.Index(body, `="`)
			if eq < 0 {
				return s, fmt.Errorf("label without value in %q", body)
			}
			key := body[:eq]
			if !labelNameRe.MatchString(key) {
				return s, fmt.Errorf("bad label name %q", key)
			}
			// Scan the quoted value honoring escapes.
			i := eq + 2
			var val strings.Builder
			closed := false
			for i < len(body) {
				c := body[i]
				if c == '\\' {
					if i+1 >= len(body) {
						return s, fmt.Errorf("dangling escape")
					}
					switch body[i+1] {
					case '\\', '"', 'n':
						val.WriteByte(body[i+1])
					default:
						return s, fmt.Errorf("bad escape \\%c", body[i+1])
					}
					i += 2
					continue
				}
				if c == '"' {
					closed = true
					i++
					break
				}
				val.WriteByte(c)
				i++
			}
			if !closed {
				return s, fmt.Errorf("unterminated label value")
			}
			if _, dup := s.labels[key]; dup {
				return s, fmt.Errorf("duplicate label %q", key)
			}
			s.labels[key] = val.String()
			if i < len(body) {
				if body[i] != ',' {
					return s, fmt.Errorf("junk after label value: %q", body[i:])
				}
				i++
			}
			body = body[i:]
			i = 0
		}
	} else {
		s.name = rest[:space]
		rest = rest[space+1:]
	}
	if !metricNameRe.MatchString(s.name) {
		return s, fmt.Errorf("bad metric name %q", s.name)
	}
	v, err := parsePromValue(strings.TrimSpace(rest))
	if err != nil {
		return s, err
	}
	s.value = v
	return s, nil
}

func parsePromValue(v string) (float64, error) {
	switch v {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return 0, fmt.Errorf("NaN sample")
	}
	return strconv.ParseFloat(v, 64)
}

// sampleFamily maps a sample name back to its family (_bucket/_sum/_count
// collapse onto the histogram family when one exists).
func sampleFamily(name string, types map[string]string) (string, bool) {
	if _, ok := types[name]; ok {
		return name, true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, found := strings.CutSuffix(name, suffix)
		if found {
			if typ, ok := types[base]; ok && typ == "histogram" {
				return base, true
			}
		}
	}
	return "", false
}

func TestMetricsExpositionLint(t *testing.T) {
	tel := NewBoFL(Real{})
	// Exercise a representative slice of the catalog, including labeled
	// series, exemplar-carrying observations, spans and a hostile label
	// value that must be escaped on the way out.
	tel.Count(MetricRounds, 3)
	tel.Count(MetricPhaseEnergy, 120.5, L("phase", "exploit"))
	tel.Count(MetricPhaseEnergy, 60.25, L("phase", "explore"))
	tel.SetGauge(MetricControllerPhase, 2)
	tel.Observe(MetricRoundDuration, 1.5)
	tel.ObserveExemplar(MetricRoundEnergy, 250, MintTrace(7, 1))
	tel.Count(MetricFLWireTx, 4096, L("codec", `evil"value\with
newline`))
	tel.Span(SpanGPFit)()

	var b strings.Builder
	if err := tel.Registry.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	exposition := b.String()
	if !strings.HasSuffix(exposition, "\n") {
		t.Error("exposition does not end in a newline")
	}

	types := map[string]string{}   // family → TYPE
	helped := map[string]bool{}    // families with HELP
	seenSeries := map[string]bool{} // full series key → seen
	var samples []promSample
	currentFamily := ""

	for i, line := range strings.Split(strings.TrimSuffix(exposition, "\n"), "\n") {
		switch {
		case line == "":
			t.Errorf("line %d: blank line in exposition", i+1)
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || !metricNameRe.MatchString(parts[0]) {
				t.Errorf("line %d: malformed HELP: %q", i+1, line)
				continue
			}
			if helped[parts[0]] {
				t.Errorf("line %d: duplicate HELP for %s", i+1, parts[0])
			}
			helped[parts[0]] = true
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				t.Errorf("line %d: malformed TYPE: %q", i+1, line)
				continue
			}
			name, typ := parts[0], parts[1]
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Errorf("line %d: unknown type %q", i+1, typ)
			}
			if _, dup := types[name]; dup {
				t.Errorf("line %d: duplicate TYPE for %s", i+1, name)
			}
			types[name] = typ
			currentFamily = name
		case strings.HasPrefix(line, "#"):
			t.Errorf("line %d: unexpected comment %q", i+1, line)
		default:
			s, err := parseSample(line)
			if err != nil {
				t.Errorf("line %d: %v (%q)", i+1, err, line)
				continue
			}
			fam, ok := sampleFamily(s.name, types)
			if !ok {
				t.Errorf("line %d: sample %s has no preceding TYPE", i+1, s.name)
				continue
			}
			if fam != currentFamily {
				t.Errorf("line %d: sample %s outside its family block (%s)", i+1, s.name, currentFamily)
			}
			if seenSeries[line[:strings.LastIndexByte(line, ' ')]] {
				t.Errorf("line %d: duplicate series %q", i+1, line)
			}
			seenSeries[line[:strings.LastIndexByte(line, ' ')]] = true
			if types[fam] == "counter" && s.value < 0 {
				t.Errorf("line %d: negative counter sample %q", i+1, line)
			}
			samples = append(samples, s)
		}
	}

	// The escaped hostile label must decode back to the original value.
	foundHostile := false
	for _, s := range samples {
		if s.name == MetricFLWireTx && strings.Contains(s.labels["codec"], `evil"value`) {
			foundHostile = true
		}
	}
	if !foundHostile {
		t.Error("hostile codec label did not survive escape/parse roundtrip")
	}

	// Histogram coherence: cumulative buckets monotone, +Inf bucket == count.
	type histKey struct{ fam, labels string }
	buckets := map[histKey][]promSample{}
	counts := map[histKey]float64{}
	for _, s := range samples {
		fam, _ := sampleFamily(s.name, types)
		if types[fam] != "histogram" {
			continue
		}
		base := map[string]string{}
		for k, v := range s.labels {
			if k != "le" {
				base[k] = v
			}
		}
		key := histKey{fam, fmt.Sprint(base)}
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			if _, ok := s.labels["le"]; !ok {
				t.Errorf("bucket without le label: %q", s.line)
			}
			buckets[key] = append(buckets[key], s)
		case strings.HasSuffix(s.name, "_count"):
			counts[key] = s.value
		}
	}
	if len(buckets) == 0 {
		t.Fatal("no histogram buckets in exposition")
	}
	for key, bs := range buckets {
		prevBound := -1.0
		prevCum := -1.0
		sawInf := false
		for _, s := range bs {
			bound, err := parsePromValue(s.labels["le"])
			if err != nil {
				t.Errorf("%s: bad le %q", key.fam, s.labels["le"])
				continue
			}
			if bound <= prevBound {
				t.Errorf("%s: bucket bounds not ascending at le=%q", key.fam, s.labels["le"])
			}
			if s.value < prevCum {
				t.Errorf("%s: cumulative counts decreased at le=%q", key.fam, s.labels["le"])
			}
			prevBound, prevCum = bound, s.value
			if s.labels["le"] == "+Inf" {
				sawInf = true
				if c, ok := counts[key]; !ok || c != s.value {
					t.Errorf("%s: +Inf bucket %v != count %v", key.fam, s.value, c)
				}
			}
		}
		if !sawInf {
			t.Errorf("%s: histogram missing +Inf bucket", key.fam)
		}
	}

	// Exemplars must stay OUT of the 0.0.4 text (they live in /v1/telemetry):
	// any '#' past column 0 would be an OpenMetrics exemplar annotation.
	for _, s := range samples {
		if strings.Contains(s.line, " # ") {
			t.Errorf("exemplar annotation leaked into 0.0.4 exposition: %q", s.line)
		}
	}

	// Determinism: a second scrape of identical instrument state is
	// byte-equal. Runtime gauges (bofl_go_*) are sampled live at scrape time
	// and legitimately move between scrapes, so they are excluded.
	var b2 strings.Builder
	if err := tel.Registry.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	strip := func(exposition string) string {
		var keep []string
		for _, line := range strings.Split(exposition, "\n") {
			if strings.Contains(line, "bofl_go_") {
				continue
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}
	if got := strip(b2.String()); got != strip(exposition) {
		t.Error("two scrapes of identical registry state differ")
	}
}
