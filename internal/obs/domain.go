package obs

import (
	"bofl/internal/ilp"
	"bofl/internal/parallel"
)

// Canonical BoFL metric names. Instrumented packages refer to these
// constants so the DESIGN.md metric table, the CI grep and the exposition
// stay in lockstep. Span names are the *_seconds histograms minus the
// suffix (Telemetry.Span appends it).
const (
	// Controller (internal/core).
	MetricRounds          = "bofl_rounds_total"                // counter: executed controller rounds
	MetricRoundEnergy     = "bofl_round_energy_joules"         // histogram: per-round energy
	MetricRoundDuration   = "bofl_round_duration_seconds"      // histogram: per-round busy time (simulated seconds)
	MetricDeadlineMisses  = "bofl_deadline_miss_total"         // counter: rounds past their deadline
	MetricControllerPhase = "bofl_controller_phase"            // gauge: 1 random-explore, 2 pareto-construct, 3 exploit
	MetricFrontSize       = "bofl_pareto_front_size"           // gauge: observed Pareto-front cardinality
	MetricHypervolume     = "bofl_hypervolume"                 // gauge: dominated hypervolume vs worst-observed reference
	MetricPhaseEnergy     = "bofl_phase_energy_joules_total"   // counter{phase}: energy accumulated per controller phase
	MetricPhaseLatency    = "bofl_phase_latency_seconds_total" // counter{phase}: busy time accumulated per phase
	MetricReadapts        = "bofl_readapts_total"              // counter: drift-triggered re-explorations

	// MBO (internal/mobo). Span-backed *_seconds histograms.
	MetricMBORuns        = "bofl_mbo_runs_total"        // counter: between-round MBO computations
	MetricMBOSuggestions = "bofl_mbo_suggestions_total" // counter: candidates suggested
	MetricAcqBest        = "bofl_acq_best_ehvi"         // gauge: acquisition value of the last chosen candidate
	SpanGPFit            = "bofl_gp_fit"                // span: one surrogate hyperparameter fit
	SpanEHVIScan         = "bofl_ehvi_scan"             // span: one SuggestBatch candidate scan
	SpanILPSolve         = "bofl_ilp_solve"             // span: one exploitation plan solve
	SpanMBO              = "bofl_mbo"                   // span: one BetweenRounds computation
	SpanRound            = "bofl_round_wall"            // span: one controller round (wall time)

	// Worker pool (internal/parallel), read-on-scrape.
	MetricPoolWorkers     = "bofl_pool_workers"               // gauge: configured width
	MetricPoolBusy        = "bofl_pool_helpers_busy"          // gauge: helper tokens checked out (queue depth proxy)
	MetricPoolUtilization = "bofl_pool_utilization"           // gauge: busy fraction of the helper pool
	MetricPoolFanouts     = "bofl_pool_fanouts_total"         // counter: fan-outs that used helpers
	MetricPoolInline      = "bofl_pool_inline_total"          // counter: fan-outs that ran inline
	MetricPoolAcquires    = "bofl_pool_helper_acquires_total" // counter: helper tokens handed out

	// ILP solver (internal/ilp), read-on-scrape.
	MetricILPSolves     = "bofl_ilp_solves_total"     // counter: completed Solve calls
	MetricILPInfeasible = "bofl_ilp_infeasible_total" // counter: solves returning infeasible
	MetricILPNodes      = "bofl_ilp_nodes_total"      // counter: branch-and-bound nodes expanded

	// FL orchestration (internal/fl).
	MetricFLRounds          = "bofl_fl_rounds_total"           // counter: orchestrated FL rounds
	MetricFLDropouts        = "bofl_fl_dropouts_total"         // counter: participants dropped from aggregation
	MetricFLRoundErrors     = "bofl_fl_round_errors_total"     // counter: participant round failures seen by the server
	MetricFLRetries         = "bofl_fl_retries_total"          // counter: participant attempt retries
	MetricFLStragglerStrips = "bofl_fl_straggler_strips_total" // counter: stragglers stripped from aggregation
	MetricFLQuorumRounds    = "bofl_fl_quorum_rounds_total"    // counter: rounds finalized below full participation via quorum
	MetricFLQuarantines     = "bofl_fl_quarantines_total"      // counter: clients quarantined for corrupt frames
	MetricFLHTTPErrors      = "bofl_fl_http_errors_total"      // counter{endpoint,kind}: transport/decode/status failures
	MetricFLWireTx          = "bofl_fl_wire_tx_bytes_total"    // counter{codec}: serialized bytes sent on the FL wire
	MetricFLWireRx          = "bofl_fl_wire_rx_bytes_total"    // counter{codec}: serialized bytes received on the FL wire
	SpanFLRound             = "fl_round"                       // span: one server-orchestrated round
	SpanFLSelect            = "fl_select"                      // span: participant selection
	SpanFLConfigure         = "fl_configure"                   // span: deadline assignment + request build
	SpanFLExecute           = "fl_execute"                     // span: parallel dispatch until last report
	SpanFLReport            = "fl_report"                      // span: commit of the normalized global model
	SpanFLFold              = "fl_fold"                        // span: one streaming FedAvg fold of an arriving update
	SpanFLRetry             = "fl_retry"                       // span: one backoff wait before a retried attempt
	SpanFLAttempt           = "fl_attempt"                     // span: one fault-injected participant attempt
	MetricFLPartials        = "bofl_fl_partials_total"         // counter: tier partial aggregates forwarded upward
	MetricFLSubtreeDrops    = "bofl_fl_subtree_drops_total"    // counter: subtrees discarded for missing per-tier quorum
	SpanFLTierFold          = "fl_tier_fold"                   // span: one tier aggregator closing a group into its parent
	SpanClientRound         = "fl_client_round"                // span: one client-side training round
	SpanClientWindow        = "fl_client_config_window"        // span: client-side MBO window
	EventFLFault            = "fl_fault"                       // event: one failed attempt's verdict, trace-annotated
	EventFLQuarantine       = "fl_quarantine"                  // event: a client excluded for shipping a corrupt frame
	EventExemplar           = "exemplar"                       // event: histogram observation ↔ trace-ID jump link

	// Fleet simulator (internal/fleet), virtual-time quantities.
	MetricFleetClients  = "bofl_fleet_clients_total"         // counter: simulated clients dispatched across rounds
	MetricFleetVirtualS = "bofl_fleet_virtual_seconds_total" // counter: virtual round time accumulated by the simulator
	MetricFleetEnergy   = "bofl_fleet_energy_joules_total"   // counter: simulated fleet energy across rounds
	MetricFleetMisses   = "bofl_fleet_deadline_misses_total" // counter: simulated clients past the round deadline
	MetricFleetDropped  = "bofl_fleet_dropped_total"         // counter: simulated clients unavailable or failed
)

// NewBoFL builds a Telemetry with every canonical BoFL instrument
// pre-registered (so a scrape lists the full series catalog even before the
// first round) and the worker-pool and ILP read-on-scrape bridges installed.
func NewBoFL(clock Clock) *Telemetry {
	t := New(clock)
	t.SetBuckets(MetricRoundEnergy, EnergyBuckets)
	r := t.Registry

	r.Counter(MetricRounds, "Executed controller rounds.")
	r.Histogram(MetricRoundEnergy, "Per-round training energy in Joules.", EnergyBuckets)
	r.Histogram(MetricRoundDuration, "Per-round busy time in (simulated) seconds.", DurationBuckets)
	r.Counter(MetricDeadlineMisses, "Rounds that finished past their deadline.")
	r.Gauge(MetricControllerPhase, "Controller phase: 1 random-explore, 2 pareto-construct, 3 exploit.")
	r.Gauge(MetricFrontSize, "Observed Pareto-front size.")
	r.Gauge(MetricHypervolume, "Dominated hypervolume against the worst-observed reference point.")
	r.Counter(MetricReadapts, "Drift-triggered re-explorations.")

	r.Counter(MetricMBORuns, "Between-round MBO computations.")
	r.Counter(MetricMBOSuggestions, "Candidates suggested by the MBO.")
	r.Gauge(MetricAcqBest, "Acquisition value (EHVI) of the last chosen candidate.")
	r.Histogram(SpanGPFit+"_seconds", "GP surrogate hyperparameter fit duration.", DurationBuckets)
	r.Histogram(SpanEHVIScan+"_seconds", "EHVI candidate scan duration per SuggestBatch.", DurationBuckets)
	r.Histogram(SpanILPSolve+"_seconds", "Exploitation ILP solve duration.", DurationBuckets)
	r.Histogram(SpanMBO+"_seconds", "BetweenRounds MBO wall time.", DurationBuckets)
	r.Histogram(SpanRound+"_seconds", "Controller round wall time.", DurationBuckets)

	r.GaugeFunc(MetricPoolWorkers, "Configured worker-pool width.",
		func() float64 { return float64(parallel.Stats().Workers) })
	r.GaugeFunc(MetricPoolBusy, "Helper goroutine tokens currently checked out.",
		func() float64 { return float64(parallel.Stats().HelpersBusy) })
	r.GaugeFunc(MetricPoolUtilization, "Busy fraction of the helper pool (0-1).",
		func() float64 { return parallel.Stats().Utilization() })
	r.CounterFunc(MetricPoolFanouts, "Fan-outs that acquired at least one helper.",
		func() float64 { return float64(parallel.Stats().Fanouts) })
	r.CounterFunc(MetricPoolInline, "Fan-outs that ran inline on the caller.",
		func() float64 { return float64(parallel.Stats().InlineRuns) })
	r.CounterFunc(MetricPoolAcquires, "Helper tokens handed out across all fan-outs.",
		func() float64 { return float64(parallel.Stats().HelperAcquires) })

	r.CounterFunc(MetricILPSolves, "Completed exploitation ILP solves.",
		func() float64 { return float64(ilp.Stats().Solves) })
	r.CounterFunc(MetricILPInfeasible, "ILP solves that returned infeasible.",
		func() float64 { return float64(ilp.Stats().Infeasible) })
	r.CounterFunc(MetricILPNodes, "Branch-and-bound nodes expanded across all solves.",
		func() float64 { return float64(ilp.Stats().Nodes) })

	r.Counter(MetricFLRounds, "Orchestrated FL rounds.")
	r.Counter(MetricFLDropouts, "Participants dropped from aggregation.")
	r.Counter(MetricFLRoundErrors, "Participant round failures observed by the server.")
	r.Counter(MetricFLRetries, "Participant round attempts retried after a failure.")
	r.Counter(MetricFLStragglerStrips, "Stragglers stripped from aggregation after the attempt timeout.")
	r.Counter(MetricFLQuorumRounds, "Rounds finalized below full participation under a quorum.")
	r.Counter(MetricFLQuarantines, "Clients quarantined for shipping corrupt frames.")
	r.Counter(MetricFLHTTPErrors, "FL HTTP transport, decode and status failures.")
	r.Counter(MetricFLWireTx, "Serialized bytes sent on the FL wire, labeled by codec.")
	r.Counter(MetricFLWireRx, "Serialized bytes received on the FL wire, labeled by codec.")
	r.Counter(MetricFLPartials, "Tier partial aggregates forwarded toward the root.")
	r.Counter(MetricFLSubtreeDrops, "Subtrees discarded for missing the per-tier quorum.")
	r.Histogram(SpanFLFold+"_seconds", "Streaming FedAvg fold duration per arriving update.", DurationBuckets)
	r.Histogram(SpanFLTierFold+"_seconds", "Tier aggregator group close: serialize, ship, absorb.", DurationBuckets)
	r.Histogram(SpanFLRetry+"_seconds", "Backoff wait before a retried participant attempt.", DurationBuckets)
	r.Histogram(SpanFLAttempt+"_seconds", "One fault-injected participant attempt, retries excluded.", DurationBuckets)

	r.Counter(MetricFleetClients, "Simulated clients dispatched across fleet rounds.")
	r.Counter(MetricFleetVirtualS, "Virtual round seconds accumulated by the fleet simulator.")
	r.Counter(MetricFleetEnergy, "Simulated fleet energy in Joules.")
	r.Counter(MetricFleetMisses, "Simulated clients finishing past the round deadline.")
	r.Counter(MetricFleetDropped, "Simulated clients unavailable, crashed or dropped.")

	RegisterRuntime(r)

	return t
}
