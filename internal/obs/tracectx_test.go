package obs

import (
	"encoding/binary"
	"encoding/hex"
	"hash/fnv"
	"strings"
	"testing"
)

// refHashID is the readable hash/fnv construction the inlined hashID must
// reproduce byte-for-byte: minted IDs are wire- and ledger-visible, so the
// hot-path inlining may never change them.
func refHashID(seed int64, parts ...string) string {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(seed))
	h.Write(b[:])
	for _, p := range parts {
		h.Write([]byte{0})
		h.Write([]byte(p))
	}
	var sum [8]byte
	binary.BigEndian.PutUint64(sum[:], h.Sum64())
	return hex.EncodeToString(sum[:])
}

func TestHashIDMatchesFNVReference(t *testing.T) {
	cases := [][]string{{}, {"a"}, {"bofl-round-trace", "7"}, {"ab", "c"}, {"a", "bc"}, {"x", "", "y"}}
	for _, seed := range []int64{0, 1, -5, 20260806} {
		for _, parts := range cases {
			if got, want := hashID(seed, parts...), refHashID(seed, parts...); got != want {
				t.Fatalf("hashID(%d, %q) = %s, want %s", seed, parts, got, want)
			}
		}
	}
}

func TestMintTraceDeterministic(t *testing.T) {
	a := MintTrace(42, 7)
	b := MintTrace(42, 7)
	if a != b {
		t.Fatalf("MintTrace not deterministic: %+v vs %+v", a, b)
	}
	if !a.Valid() {
		t.Fatalf("minted context invalid: %+v", a)
	}
	if MintTrace(42, 8) == a {
		t.Error("different rounds minted identical contexts")
	}
	if MintTrace(43, 7) == a {
		t.Error("different seeds minted identical contexts")
	}
}

func TestChildDeterministicAndScoped(t *testing.T) {
	root := MintTrace(1, 1)
	c1 := root.Child("attempt", "cli-0", "0")
	c2 := root.Child("attempt", "cli-0", "0")
	if c1 != c2 {
		t.Fatal("Child not deterministic")
	}
	if c1.TraceID != root.TraceID {
		t.Errorf("child left the trace: %s vs %s", c1.TraceID, root.TraceID)
	}
	if c1.SpanID == root.SpanID {
		t.Error("child reused the parent span ID")
	}
	if root.Child("attempt", "cli-0", "1") == c1 {
		t.Error("different attempts derived identical spans")
	}
	// Separator soundness: concatenation ambiguity must not collide.
	if root.Child("ab", "c") == root.Child("a", "bc") {
		t.Error(`Child("ab","c") collided with Child("a","bc")`)
	}
	// Children of the invalid context stay invalid.
	if got := (TraceContext{}).Child("x"); got.Valid() {
		t.Errorf("invalid parent produced valid child %+v", got)
	}
}

func TestTraceContextValidation(t *testing.T) {
	valid := MintTrace(9, 3)
	cases := []struct {
		name string
		tc   TraceContext
		ok   bool
	}{
		{"minted", valid, true},
		{"zero", TraceContext{}, false},
		{"short", TraceContext{TraceID: "abc", SpanID: valid.SpanID}, false},
		{"uppercase", TraceContext{TraceID: strings.ToUpper(valid.TraceID), SpanID: valid.SpanID}, false},
		{"nonhex", TraceContext{TraceID: "zzzzzzzzzzzzzzzz", SpanID: valid.SpanID}, false},
		{"oversized", TraceContext{TraceID: strings.Repeat("a", 1<<16), SpanID: valid.SpanID}, false},
		{"injection", TraceContext{TraceID: `a"}\n# HELP evil`, SpanID: valid.SpanID}, false},
	}
	for _, c := range cases {
		if got := c.tc.Valid(); got != c.ok {
			t.Errorf("%s: Valid() = %v, want %v", c.name, got, c.ok)
		}
		s := c.tc.Sanitized()
		if c.ok && s != c.tc {
			t.Errorf("%s: Sanitized mangled a valid context", c.name)
		}
		if !c.ok && s != (TraceContext{}) {
			t.Errorf("%s: Sanitized let a hostile context through: %+v", c.name, s)
		}
	}
}

func TestTraceContextHeaderRoundtrip(t *testing.T) {
	tc := MintTrace(123, 45)
	s := tc.String()
	if len(s) != 2*idHexLen+1 {
		t.Fatalf("header form %q has length %d", s, len(s))
	}
	back, ok := ParseTraceContext(s)
	if !ok || back != tc {
		t.Fatalf("roundtrip %q -> %+v ok=%v, want %+v", s, back, ok, tc)
	}
	for _, bad := range []string{
		"", "-", "notahexstringatall-notahexstringatal",
		tc.TraceID, tc.TraceID + ":" + tc.SpanID,
		tc.TraceID + "-" + tc.SpanID + "-extra",
		strings.Repeat("a", 4096),
	} {
		if _, ok := ParseTraceContext(bad); ok {
			t.Errorf("ParseTraceContext accepted %q", bad)
		}
	}
	if (TraceContext{TraceID: "x", SpanID: "y"}).String() != "" {
		t.Error("invalid context rendered a header")
	}
}

func TestSpanAndChildLabels(t *testing.T) {
	tc := MintTrace(5, 2)
	sl := tc.SpanLabels(L("client", "c0"))
	if len(sl) != 3 || sl[0].Key != LabelTraceID || sl[1].Key != LabelSpanID || sl[2].Key != "client" {
		t.Errorf("SpanLabels = %+v", sl)
	}
	cl := tc.ChildLabels()
	if len(cl) != 2 || cl[0].Key != LabelTraceID || cl[1].Key != LabelParentID {
		t.Errorf("ChildLabels = %+v", cl)
	}
	if cl[1].Value != tc.SpanID {
		t.Error("ChildLabels parent is not this span")
	}
	// Invalid context contributes no trace labels, only the extras.
	if got := (TraceContext{}).SpanLabels(L("k", "v")); len(got) != 1 {
		t.Errorf("invalid SpanLabels = %+v", got)
	}
}

func TestItoa(t *testing.T) {
	for _, v := range []int{0, 1, 9, 10, 123456789, -1, -987} {
		want := map[int]string{0: "0", 1: "1", 9: "9", 10: "10", 123456789: "123456789", -1: "-1", -987: "-987"}[v]
		if got := itoa(v); got != want {
			t.Errorf("itoa(%d) = %q, want %q", v, got, want)
		}
	}
}
