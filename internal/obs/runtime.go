package obs

import "runtime"

// Go runtime health metrics, computed at scrape time so /metrics covers
// process health (scheduler pressure, heap, GC) alongside the domain catalog.
// Names follow the bofl_go_* prefix to keep them distinct from the runtime/
// metrics the standard Prometheus Go collector would export.
const (
	MetricGoGoroutines = "bofl_go_goroutines"             // gauge: live goroutines
	MetricGoHeapAlloc  = "bofl_go_heap_alloc_bytes"       // gauge: live heap bytes
	MetricGoHeapSys    = "bofl_go_heap_sys_bytes"         // gauge: heap bytes obtained from the OS
	MetricGoGCPause    = "bofl_go_gc_last_pause_seconds"  // gauge: most recent stop-the-world pause
	MetricGoGCCycles   = "bofl_go_gc_cycles_total"        // counter: completed GC cycles
	MetricGoMaxProcs   = "bofl_go_gomaxprocs"             // gauge: scheduler width
	MetricGoTotalAlloc = "bofl_go_heap_alloc_bytes_total" // counter: cumulative heap allocations
)

// memStats snapshots runtime.MemStats once per scrape-time read. ReadMemStats
// briefly stops the world, so the gauges below share one snapshot helper
// instead of each paying it.
func memStats() runtime.MemStats {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m
}

// lastGCPauseSeconds extracts the most recent pause from the 256-entry ring.
func lastGCPauseSeconds(m *runtime.MemStats) float64 {
	if m.NumGC == 0 {
		return 0
	}
	return float64(m.PauseNs[(m.NumGC+255)%256]) / 1e9
}

// RegisterRuntime installs the Go runtime gauges on r as read-on-scrape
// series — nothing is sampled between scrapes, so an idle process pays
// nothing. Called by NewBoFL; exported for registries assembled by hand.
func RegisterRuntime(r *Registry) {
	r.GaugeFunc(MetricGoGoroutines, "Live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc(MetricGoMaxProcs, "GOMAXPROCS scheduler width.",
		func() float64 { return float64(runtime.GOMAXPROCS(0)) })
	r.GaugeFunc(MetricGoHeapAlloc, "Live heap bytes (runtime.MemStats.HeapAlloc).",
		func() float64 { m := memStats(); return float64(m.HeapAlloc) })
	r.GaugeFunc(MetricGoHeapSys, "Heap bytes obtained from the OS (runtime.MemStats.HeapSys).",
		func() float64 { m := memStats(); return float64(m.HeapSys) })
	r.GaugeFunc(MetricGoGCPause, "Most recent GC stop-the-world pause in seconds.",
		func() float64 { m := memStats(); return lastGCPauseSeconds(&m) })
	r.CounterFunc(MetricGoGCCycles, "Completed GC cycles.",
		func() float64 { m := memStats(); return float64(m.NumGC) })
	r.CounterFunc(MetricGoTotalAlloc, "Cumulative bytes allocated on the heap.",
		func() float64 { m := memStats(); return float64(m.TotalAlloc) })
}
