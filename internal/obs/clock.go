package obs

import "time"

// Clock supplies the instants behind span timing. It is a strict subset of
// simclock.Clock, so a *simclock.Sim can be plugged straight in: daemons use
// Real, experiment harnesses a virtual clock, and tests Frozen or Step so
// traces are byte-deterministic.
type Clock interface {
	Now() time.Time
}

// Real is the wall clock. time.Now carries a monotonic reading, so span
// durations are immune to wall-clock steps.
type Real struct{}

var _ Clock = Real{}

// Now returns time.Now().
func (Real) Now() time.Time { return time.Now() }

// Frozen is a clock stuck at one instant: every span it times has zero
// duration. Tests use it to make recorded traces independent of scheduling.
type Frozen struct{ T time.Time }

var _ Clock = Frozen{}

// Now returns the frozen instant.
func (f Frozen) Now() time.Time { return f.T }

// Step is a deterministic ticking clock: each Now call advances by a fixed
// step. Tests that need non-zero, reproducible span durations use it.
// Safe for concurrent use is NOT guaranteed; it is a test helper.
type Step struct {
	T    time.Time
	Size time.Duration
}

var _ Clock = (*Step)(nil)

// NewStep returns a Step clock starting at start, advancing by size per call.
func NewStep(start time.Time, size time.Duration) *Step {
	return &Step{T: start, Size: size}
}

// Now returns the current instant and advances the clock by one step.
func (s *Step) Now() time.Time {
	t := s.T
	s.T = s.T.Add(s.Size)
	return t
}
