package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Labels is a span's attribute set, stored as the flat label slice the
// instrumented call site built rather than a map: the tracer retains every
// event until export, and at fleet scale a map per buffered event is exactly
// the pointer-dense heap the garbage collector ends up re-scanning on the
// serving hot path. On the wire it marshals as the same JSON object a
// map[string]string produced (keys sorted, duplicate keys last-wins), so the
// trace schema is unchanged.
type Labels []Label

// Get returns the value of key, last occurrence winning (map semantics), or
// "" when absent. Nil-safe.
func (ls Labels) Get(key string) string {
	for i := len(ls) - 1; i >= 0; i-- {
		if ls[i].Key == key {
			return ls[i].Value
		}
	}
	return ""
}

// MarshalJSON renders the labels as a JSON object with sorted keys —
// byte-identical to the map[string]string encoding this type replaced.
func (ls Labels) MarshalJSON() ([]byte, error) {
	m := make(map[string]string, len(ls))
	for _, l := range ls {
		m[l.Key] = l.Value
	}
	return json.Marshal(m)
}

// UnmarshalJSON parses the JSON-object form back into a key-sorted slice.
func (ls *Labels) UnmarshalJSON(data []byte) error {
	var m map[string]string
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	if len(m) == 0 {
		*ls = nil
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make(Labels, 0, len(keys))
	for _, k := range keys {
		out = append(out, Label{Key: k, Value: m[k]})
	}
	*ls = out
	return nil
}

// SpanEvent is one recorded trace event: a completed span (Dur > 0 or a
// timed region that happened to be instantaneous) or an instant event
// (Instant true).
type SpanEvent struct {
	// Name is the span or event name (also the metric family prefix for
	// auto-recorded duration histograms).
	Name string `json:"name"`
	// Start is nanoseconds since the tracer's epoch.
	Start int64 `json:"startNs"`
	// Dur is the span duration in nanoseconds (0 for instants).
	Dur int64 `json:"durNs"`
	// Instant marks zero-duration point events.
	Instant bool `json:"instant,omitempty"`
	// Labels carries the span's attributes. The tracer stores the slice it is
	// handed without copying; callers must not mutate it afterwards.
	Labels Labels `json:"labels,omitempty"`
}

// Tracer records span events into a bounded in-memory buffer. It is safe for
// concurrent use. When the buffer fills, further events are dropped and
// counted, never blocking the instrumented path.
type Tracer struct {
	clock Clock
	epoch time.Time

	mu      sync.Mutex
	events  []SpanEvent
	max     int
	dropped uint64
}

// DefaultMaxEvents bounds a tracer's buffer: enough for thousand-round
// experiment traces while keeping worst-case memory in the tens of MB.
const DefaultMaxEvents = 1 << 17

// NewTracer returns a tracer stamping events with clock (nil = Real). The
// tracer's epoch is the clock's instant at construction; event timestamps
// are offsets from it.
func NewTracer(clock Clock) *Tracer {
	if clock == nil {
		clock = Real{}
	}
	return &Tracer{clock: clock, epoch: clock.Now(), max: DefaultMaxEvents}
}

// SetMaxEvents adjusts the buffer bound (testing and long-haul daemons).
func (t *Tracer) SetMaxEvents(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n > 0 {
		t.max = n
	}
}

func (t *Tracer) add(ev SpanEvent) {
	t.mu.Lock()
	if len(t.events) >= t.max {
		t.dropped++
		t.mu.Unlock()
		return
	}
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Begin opens a span; the returned func closes and records it.
func (t *Tracer) Begin(name string, labels ...Label) func() {
	start := t.clock.Now()
	return func() {
		end := t.clock.Now()
		t.add(SpanEvent{
			Name:   name,
			Start:  start.Sub(t.epoch).Nanoseconds(),
			Dur:    end.Sub(start).Nanoseconds(),
			Labels: labels,
		})
	}
}

// Instant records a zero-duration point event.
func (t *Tracer) Instant(name string, labels ...Label) {
	t.add(SpanEvent{
		Name:    name,
		Start:   t.clock.Now().Sub(t.epoch).Nanoseconds(),
		Instant: true,
		Labels:  labels,
	})
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns how many events were discarded after the buffer filled.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns a copy of the buffered events in record order.
func (t *Tracer) Events() []SpanEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanEvent(nil), t.events...)
}

// Graft appends a pre-timed span event recorded elsewhere — the hook the FL
// server uses to stitch client-returned span summaries into its own round
// trace. The event is buffered verbatim (same bound and drop accounting as
// locally recorded spans).
func (t *Tracer) Graft(ev SpanEvent) { t.add(ev) }

// EventsFor returns the buffered events carrying the given trace_id label, in
// record order — one stitched distributed trace.
func (t *Tracer) EventsFor(traceID string) []SpanEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []SpanEvent
	for _, ev := range t.events {
		if ev.Labels.Get(LabelTraceID) == traceID {
			out = append(out, ev)
		}
	}
	return out
}

// WriteJSONL streams the buffer as one JSON object per line — the repo's
// portable trace format; convert with WriteChromeTrace (or the boflsim
// -telemetry-chrome flag) for about:tracing.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	return WriteEventsJSONL(w, t.Events())
}

// WriteTraceJSONL streams only the events of one stitched trace as JSONL.
func (t *Tracer) WriteTraceJSONL(w io.Writer, traceID string) error {
	return WriteEventsJSONL(w, t.EventsFor(traceID))
}

// WriteEventsJSONL writes events as one JSON object per line.
func WriteEventsJSONL(w io.Writer, events []SpanEvent) error {
	enc := json.NewEncoder(w)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is the Chrome trace_event wire form ("X" complete events and
// "i" instants, timestamps in microseconds).
type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur,omitempty"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	S    string  `json:"s,omitempty"`
	Args Labels  `json:"args,omitempty"`
}

func toChrome(events []SpanEvent) []chromeEvent {
	out := make([]chromeEvent, len(events))
	for i, ev := range events {
		ce := chromeEvent{
			Name: ev.Name,
			Ts:   float64(ev.Start) / 1e3,
			Pid:  1,
			Tid:  1,
			Args: ev.Labels,
		}
		if ev.Instant {
			ce.Ph, ce.S = "i", "t"
		} else {
			ce.Ph, ce.Dur = "X", float64(ev.Dur)/1e3
		}
		out[i] = ce
	}
	return out
}

// WriteChromeTrace writes the buffer as Chrome trace_event JSON, loadable in
// about:tracing / Perfetto.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return WriteEventsChrome(w, t.Events())
}

// WriteTraceChrome writes one stitched trace as Chrome trace_event JSON.
func (t *Tracer) WriteTraceChrome(w io.Writer, traceID string) error {
	return WriteEventsChrome(w, t.EventsFor(traceID))
}

// WriteEventsChrome writes events as Chrome trace_event JSON.
func WriteEventsChrome(w io.Writer, events []SpanEvent) error {
	payload := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
		Unit        string        `json:"displayTimeUnit"`
	}{toChrome(events), "ms"}
	return json.NewEncoder(w).Encode(payload)
}

// ConvertJSONLToChrome reads a JSONL trace (as written by WriteJSONL) and
// writes the Chrome trace_event equivalent.
func ConvertJSONLToChrome(r io.Reader, w io.Writer) error {
	dec := json.NewDecoder(r)
	var events []SpanEvent
	for {
		var ev SpanEvent
		if err := dec.Decode(&ev); err == io.EOF {
			break
		} else if err != nil {
			return err
		}
		events = append(events, ev)
	}
	return WriteEventsChrome(w, events)
}
