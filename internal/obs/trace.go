package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// SpanEvent is one recorded trace event: a completed span (Dur > 0 or a
// timed region that happened to be instantaneous) or an instant event
// (Instant true).
type SpanEvent struct {
	// Name is the span or event name (also the metric family prefix for
	// auto-recorded duration histograms).
	Name string `json:"name"`
	// Start is nanoseconds since the tracer's epoch.
	Start int64 `json:"startNs"`
	// Dur is the span duration in nanoseconds (0 for instants).
	Dur int64 `json:"durNs"`
	// Instant marks zero-duration point events.
	Instant bool `json:"instant,omitempty"`
	// Labels carries the span's attributes.
	Labels map[string]string `json:"labels,omitempty"`
}

// Tracer records span events into a bounded in-memory buffer. It is safe for
// concurrent use. When the buffer fills, further events are dropped and
// counted, never blocking the instrumented path.
type Tracer struct {
	clock Clock
	epoch time.Time

	mu      sync.Mutex
	events  []SpanEvent
	max     int
	dropped uint64
}

// DefaultMaxEvents bounds a tracer's buffer: enough for thousand-round
// experiment traces while keeping worst-case memory in the tens of MB.
const DefaultMaxEvents = 1 << 17

// NewTracer returns a tracer stamping events with clock (nil = Real). The
// tracer's epoch is the clock's instant at construction; event timestamps
// are offsets from it.
func NewTracer(clock Clock) *Tracer {
	if clock == nil {
		clock = Real{}
	}
	return &Tracer{clock: clock, epoch: clock.Now(), max: DefaultMaxEvents}
}

// SetMaxEvents adjusts the buffer bound (testing and long-haul daemons).
func (t *Tracer) SetMaxEvents(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n > 0 {
		t.max = n
	}
}

func labelMap(labels []Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Key] = l.Value
	}
	return m
}

func (t *Tracer) add(ev SpanEvent) {
	t.mu.Lock()
	if len(t.events) >= t.max {
		t.dropped++
		t.mu.Unlock()
		return
	}
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Begin opens a span; the returned func closes and records it.
func (t *Tracer) Begin(name string, labels ...Label) func() {
	start := t.clock.Now()
	return func() {
		end := t.clock.Now()
		t.add(SpanEvent{
			Name:   name,
			Start:  start.Sub(t.epoch).Nanoseconds(),
			Dur:    end.Sub(start).Nanoseconds(),
			Labels: labelMap(labels),
		})
	}
}

// Instant records a zero-duration point event.
func (t *Tracer) Instant(name string, labels ...Label) {
	t.add(SpanEvent{
		Name:    name,
		Start:   t.clock.Now().Sub(t.epoch).Nanoseconds(),
		Instant: true,
		Labels:  labelMap(labels),
	})
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns how many events were discarded after the buffer filled.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns a copy of the buffered events in record order.
func (t *Tracer) Events() []SpanEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanEvent(nil), t.events...)
}

// WriteJSONL streams the buffer as one JSON object per line — the repo's
// portable trace format; convert with WriteChromeTrace (or the boflsim
// -telemetry-chrome flag) for about:tracing.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range t.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is the Chrome trace_event wire form ("X" complete events and
// "i" instants, timestamps in microseconds).
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

func toChrome(events []SpanEvent) []chromeEvent {
	out := make([]chromeEvent, len(events))
	for i, ev := range events {
		ce := chromeEvent{
			Name: ev.Name,
			Ts:   float64(ev.Start) / 1e3,
			Pid:  1,
			Tid:  1,
			Args: ev.Labels,
		}
		if ev.Instant {
			ce.Ph, ce.S = "i", "t"
		} else {
			ce.Ph, ce.Dur = "X", float64(ev.Dur)/1e3
		}
		out[i] = ce
	}
	return out
}

// WriteChromeTrace writes the buffer as Chrome trace_event JSON, loadable in
// about:tracing / Perfetto.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	payload := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
		Unit        string        `json:"displayTimeUnit"`
	}{toChrome(t.Events()), "ms"}
	return json.NewEncoder(w).Encode(payload)
}

// ConvertJSONLToChrome reads a JSONL trace (as written by WriteJSONL) and
// writes the Chrome trace_event equivalent.
func ConvertJSONLToChrome(r io.Reader, w io.Writer) error {
	dec := json.NewDecoder(r)
	var events []SpanEvent
	for {
		var ev SpanEvent
		if err := dec.Decode(&ev); err == io.EOF {
			break
		} else if err != nil {
			return err
		}
		events = append(events, ev)
	}
	payload := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
		Unit        string        `json:"displayTimeUnit"`
	}{toChrome(events), "ms"}
	return json.NewEncoder(w).Encode(payload)
}
