package obs

import "testing"

// The instrumented packages call the sink unconditionally, so the default
// no-op sink must cost next to nothing and the live sink must stay cheap
// enough for per-round and per-solve call sites.

func BenchmarkNopSink(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Nop.Count(MetricRounds, 1)
		Nop.SetGauge(MetricHypervolume, 1.5)
		Nop.Span(SpanRound)()
	}
}

func BenchmarkTelemetrySink(b *testing.B) {
	tel := NewBoFL(Real{})
	tel.Tracer.SetMaxEvents(1 << 10) // steady-state: buffer full, events counted as dropped
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tel.Count(MetricRounds, 1)
		tel.SetGauge(MetricHypervolume, 1.5)
		tel.Span(SpanRound)()
	}
}

func BenchmarkRegistryLabeledCounter(b *testing.B) {
	tel := New(Real{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tel.Count(MetricPhaseEnergy, 1, L("phase", "exploit"))
	}
}
