package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Telemetry is the live Sink: metrics land in Registry, spans and events in
// Tracer, both timed by one Clock. The zero value is not usable; construct
// with New.
type Telemetry struct {
	Registry *Registry
	Tracer   *Tracer
	clock    Clock
	started  time.Time

	// histBuckets maps metric family → bucket bounds used on first
	// registration; families not listed use DurationBuckets.
	histBuckets map[string][]float64

	// spanHists caches span name → its "_seconds" histogram so the
	// per-attempt dispatch path skips the name concatenation and registry
	// lookup on every span close.
	spanHists sync.Map
}

var _ Sink = (*Telemetry)(nil)

// New builds a Telemetry around a fresh registry and tracer. clock nil means
// the wall clock.
func New(clock Clock) *Telemetry {
	if clock == nil {
		clock = Real{}
	}
	return &Telemetry{
		Registry:    NewRegistry(),
		Tracer:      NewTracer(clock),
		clock:       clock,
		started:     clock.Now(),
		histBuckets: make(map[string][]float64),
	}
}

// Clock returns the telemetry's time source.
func (t *Telemetry) Clock() Clock { return t.clock }

// SetBuckets pins the bucket bounds used when the named histogram family is
// first observed. Must be called before the first Observe of that family.
func (t *Telemetry) SetBuckets(name string, buckets []float64) {
	t.histBuckets[name] = buckets
}

func (t *Telemetry) buckets(name string) []float64 {
	if b, ok := t.histBuckets[name]; ok {
		return b
	}
	return DurationBuckets
}

// Count adds delta to the named counter.
func (t *Telemetry) Count(name string, delta float64, labels ...Label) {
	t.Registry.Counter(name, "", labels...).Add(delta)
}

// SetGauge sets the named gauge.
func (t *Telemetry) SetGauge(name string, v float64, labels ...Label) {
	t.Registry.Gauge(name, "", labels...).Set(v)
}

// Observe records v into the named histogram.
func (t *Telemetry) Observe(name string, v float64, labels ...Label) {
	t.Registry.Histogram(name, "", t.buckets(name), labels...).Observe(v)
}

// Span opens a timed span. Closing it records a trace event plus an
// observation in the label-free histogram name+"_seconds", so every span
// taxonomy entry doubles as a Prometheus duration series.
func (t *Telemetry) Span(name string, labels ...Label) func() {
	start := t.clock.Now()
	return func() {
		end := t.clock.Now()
		d := end.Sub(start)
		t.Tracer.add(SpanEvent{
			Name:   name,
			Start:  start.Sub(t.Tracer.epoch).Nanoseconds(),
			Dur:    d.Nanoseconds(),
			Labels: labels,
		})
		t.spanHist(name).Observe(d.Seconds())
	}
}

// spanHist resolves (and caches) the duration histogram backing a span name.
func (t *Telemetry) spanHist(name string) *Histogram {
	if h, ok := t.spanHists.Load(name); ok {
		return h.(*Histogram)
	}
	hn := name + "_seconds"
	h := t.Registry.Histogram(hn, "", t.buckets(hn))
	t.spanHists.Store(name, h)
	return h
}

// Event records an instant trace event.
func (t *Telemetry) Event(name string, labels ...Label) {
	t.Tracer.Instant(name, labels...)
}

// Graft appends a pre-timed span event (a client-side span summary) to the
// tracer, implementing SpanGrafter.
func (t *Telemetry) Graft(ev SpanEvent) { t.Tracer.Graft(ev) }

var _ SpanGrafter = (*Telemetry)(nil)

// ObserveExemplar records v into the named histogram and, when tc is valid,
// pins it as the family's exemplar plus an instant "exemplar" event in the
// trace buffer — the jump link from a histogram outlier to its stitched round
// trace in /v1/telemetry.
func (t *Telemetry) ObserveExemplar(name string, v float64, tc TraceContext, labels ...Label) {
	h := t.Registry.Histogram(name, "", t.buckets(name), labels...)
	h.Observe(v)
	if !tc.Valid() {
		return
	}
	// One exemplar pin and one instant event per (family, trace), not per
	// observation: a round's reports all share one trace, so the family keeps
	// the trace's first sample and a per-report update would only churn
	// allocations (and the trace buffer) at fleet scale.
	if prev, had := h.Exemplar(); had && prev.TraceID == tc.TraceID {
		return
	}
	h.SetExemplar(v, tc.TraceID)
	t.Tracer.Instant(EventExemplar,
		L("metric", name), L("value", formatValue(v)), L(LabelTraceID, tc.TraceID))
}

var _ ExemplarObserver = (*Telemetry)(nil)

// healthState is the /healthz payload.
type healthState struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
	TraceEvents   int     `json:"traceEvents"`
	TraceDropped  uint64  `json:"traceDropped"`
}

// HealthzHandler reports liveness plus basic telemetry self-state.
func (t *Telemetry) HealthzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(healthState{
			Status:        "ok",
			UptimeSeconds: t.clock.Now().Sub(t.started).Seconds(),
			TraceEvents:   t.Tracer.Len(),
			TraceDropped:  t.Tracer.Dropped(),
		})
	})
}

// TraceHandler serves the trace buffer: JSONL by default (one SpanEvent per
// line), or Chrome trace_event JSON with ?format=chrome for direct loading in
// about:tracing / Perfetto. ?trace_id=<id> narrows the export to one stitched
// distributed trace (e.g. a single FL round across server and clients).
func (t *Telemetry) TraceHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var events []SpanEvent
		if id := r.URL.Query().Get(LabelTraceID); id != "" {
			events = t.Tracer.EventsFor(id)
		} else {
			events = t.Tracer.Events()
		}
		if r.URL.Query().Get("format") == "chrome" {
			w.Header().Set("Content-Type", "application/json")
			_ = WriteEventsChrome(w, events)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = WriteEventsJSONL(w, events)
	})
}

// Mount registers the standard introspection endpoints on mux: GET /metrics
// (Prometheus text), GET /healthz, and GET /v1/telemetry (trace export).
func (t *Telemetry) Mount(mux *http.ServeMux) {
	mux.Handle("GET /metrics", t.Registry.Handler())
	mux.Handle("GET /healthz", t.HealthzHandler())
	mux.Handle("GET /v1/telemetry", t.TraceHandler())
}

// RegisterPprof wires net/http/pprof onto mux under /debug/pprof/ without
// touching http.DefaultServeMux.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// ServePprof starts a background HTTP server exposing only pprof on addr —
// the batch binaries' -pprof flag. Errors after startup are dropped: profiling
// must never take a run down.
func ServePprof(addr string) {
	mux := http.NewServeMux()
	RegisterPprof(mux)
	go func() { _ = http.ListenAndServe(addr, mux) }()
}
