package obs

import (
	"encoding/binary"
	"encoding/hex"
)

// Cross-process trace propagation. The FL server mints one TraceContext per
// round and carries it to every client — in an HTTP header and in the wire
// frame's meta section — so client-side spans stitch under the server's round
// trace even though the two processes share no tracer.
//
// IDs are minted deterministically from (seed, round) with the same
// order-independent FNV construction the fault plane uses: a seeded chaos run
// replays with identical trace IDs, so the round ledger (which records them)
// stays byte-identical across replays.

// Canonical label keys for trace-context span attribution.
const (
	// LabelTraceID tags every span/event of one distributed round trace.
	LabelTraceID = "trace_id"
	// LabelSpanID is the span's own identifier within its trace.
	LabelSpanID = "span_id"
	// LabelParentID is the identifier of the span this one nests under.
	LabelParentID = "parent_id"
)

// TraceHeader is the HTTP header carrying a TraceContext between FL
// processes, formatted by TraceContext.String.
const TraceHeader = "X-Bofl-Trace"

// idHexLen is the length of one ID: 64 bits as lowercase hex.
const idHexLen = 16

// TraceContext names a position in a distributed trace: the trace an event
// belongs to and the span new children nest under. The zero value means "no
// tracing" and is what every consumer must treat a malformed context as.
type TraceContext struct {
	TraceID string `json:"traceId,omitempty"`
	SpanID  string `json:"spanId,omitempty"`
}

// hashID folds parts into one 16-hex-char identifier. FNV-64a is inlined
// (identical stream to hash/fnv over the same bytes) so the per-attempt
// Child derivations on the dispatch hot path cost one allocation — the
// returned string — instead of a hasher plus a []byte copy per part.
func hashID(seed int64, parts ...string) string {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037) // FNV-64a offset basis
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(seed))
	for _, c := range b {
		h = (h ^ uint64(c)) * prime64
	}
	for _, p := range parts {
		h *= prime64 // separator byte 0: ("ab","c") ≠ ("a","bc")
		for i := 0; i < len(p); i++ {
			h = (h ^ uint64(p[i])) * prime64
		}
	}
	var sum [8]byte
	binary.BigEndian.PutUint64(sum[:], h)
	var dst [2 * 8]byte
	hex.Encode(dst[:], sum[:])
	return string(dst[:])
}

// MintTrace derives the root trace context for one FL round. Pure in
// (seed, round), so replays of a seeded run mint identical IDs.
func MintTrace(seed int64, round int) TraceContext {
	tid := hashID(seed, "bofl-round-trace", itoa(round))
	return TraceContext{TraceID: tid, SpanID: hashID(seed, tid, "root")}
}

// Child derives a deterministic child context: same trace, a span ID hashed
// from this span's ID and the given parts (e.g. "attempt", client, "2").
func (c TraceContext) Child(parts ...string) TraceContext {
	if !c.Valid() {
		return TraceContext{}
	}
	return TraceContext{TraceID: c.TraceID, SpanID: hashID(0, append([]string{c.SpanID}, parts...)...)}
}

// Valid reports whether both IDs are well-formed (exactly 16 lowercase hex
// characters). Anything else — including hostile oversized strings arriving
// off the wire — is invalid and must be treated as "no trace".
func (c TraceContext) Valid() bool {
	return validID(c.TraceID) && validID(c.SpanID)
}

func validID(s string) bool {
	if len(s) != idHexLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		ch := s[i]
		if (ch < '0' || ch > '9') && (ch < 'a' || ch > 'f') {
			return false
		}
	}
	return true
}

// Sanitized returns the context unchanged when valid and the zero context
// otherwise — the one call every wire ingress must make before trusting a
// peer-supplied trace field.
func (c TraceContext) Sanitized() TraceContext {
	if c.Valid() {
		return c
	}
	return TraceContext{}
}

// String renders the context for the wire header: "traceID-spanID", or ""
// for an invalid context.
func (c TraceContext) String() string {
	if !c.Valid() {
		return ""
	}
	return c.TraceID + "-" + c.SpanID
}

// ParseTraceContext parses the header form. Malformed input yields the zero
// context and false.
func ParseTraceContext(s string) (TraceContext, bool) {
	if len(s) != 2*idHexLen+1 || s[idHexLen] != '-' {
		return TraceContext{}, false
	}
	c := TraceContext{TraceID: s[:idHexLen], SpanID: s[idHexLen+1:]}
	if !c.Valid() {
		return TraceContext{}, false
	}
	return c, true
}

// SpanLabels returns the labels stamping a span recorded *at* this context
// (trace_id + span_id), or nil when tracing is off.
func (c TraceContext) SpanLabels(extra ...Label) []Label {
	if !c.Valid() {
		return extra
	}
	return append([]Label{L(LabelTraceID, c.TraceID), L(LabelSpanID, c.SpanID)}, extra...)
}

// ChildLabels returns the labels stamping a span recorded *under* this
// context (trace_id + parent_id), or nil when tracing is off.
func (c TraceContext) ChildLabels(extra ...Label) []Label {
	if !c.Valid() {
		return extra
	}
	return append([]Label{L(LabelTraceID, c.TraceID), L(LabelParentID, c.SpanID)}, extra...)
}

// itoa is a tiny strconv.Itoa clone kept local so the hot MintTrace path
// avoids pulling strconv into the obs dependency surface for one call.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// SpanSummary is the compact, wire-portable record of one completed
// client-side span: what a client returns in its round report so the server
// can graft remote spans into the stitched round trace. StartNs is the offset
// from the client's round-handling start (client-local time — FL clients run
// on virtual clocks, so cross-process timestamp alignment is explicitly not
// attempted; stitching is by trace ID).
type SpanSummary struct {
	Name    string `json:"name"`
	StartNs int64  `json:"startNs"`
	DurNs   int64  `json:"durNs"`
}
