package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a race-safe metrics registry: counters, gauges and fixed-bucket
// histograms, plus read-on-scrape callback series for external atomics (the
// worker pool, the ILP solver). Instruments are identified by family name and
// a canonicalized label set; exposition is Prometheus text format with
// deterministic ordering, so two scrapes of identical state are byte-equal.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	names    []string // registration order snapshot, sorted at exposition
}

type metricType int

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
	typeCounterFunc
	typeGaugeFunc
)

func (t metricType) String() string {
	switch t {
	case typeCounter, typeCounterFunc:
		return "counter"
	case typeGauge, typeGaugeFunc:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one metric name with all of its labeled series.
type family struct {
	name    string
	help    string
	typ     metricType
	buckets []float64 // histogram families only
	fn      func() float64

	mu     sync.Mutex
	series map[string]any // canonical label string → *Counter/*Gauge/*Histogram
	labels map[string][]Label
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// floatAtom is a float64 updated with CAS on its bit pattern.
type floatAtom struct{ bits atomic.Uint64 }

func (f *floatAtom) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *floatAtom) set(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *floatAtom) load() float64 { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing value.
type Counter struct{ v floatAtom }

// Add increments the counter. Negative deltas are ignored to preserve
// monotonicity.
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	c.v.add(v)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v floatAtom }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v.set(v)
}

// Add adjusts the gauge by v (may be negative).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	g.v.add(v)
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.load() }

// Histogram counts observations into fixed cumulative buckets.
type Histogram struct {
	bounds []float64 // ascending upper bounds, +Inf implicit
	counts []atomic.Uint64
	sum    floatAtom
	count  atomic.Uint64

	// exemplar is the most recent trace-linked observation (may be nil).
	exemplar atomic.Pointer[Exemplar]
}

// Exemplar links one histogram observation to the distributed trace it was
// recorded under, so an outlier bucket can be jumped to its stitched trace.
type Exemplar struct {
	Value   float64
	TraceID string
}

// SetExemplar records v as the histogram's latest trace-linked observation.
func (h *Histogram) SetExemplar(v float64, traceID string) {
	if h == nil || traceID == "" {
		return
	}
	h.exemplar.Store(&Exemplar{Value: v, TraceID: traceID})
}

// Exemplar returns the latest trace-linked observation, or false when none
// was ever recorded.
func (h *Histogram) Exemplar() (Exemplar, bool) {
	if h == nil {
		return Exemplar{}, false
	}
	if e := h.exemplar.Load(); e != nil {
		return *e, true
	}
	return Exemplar{}, false
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.counts[i].Add(1)
	h.sum.add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// DurationBuckets are the default bounds (seconds) for span and latency
// histograms: sub-millisecond solver calls up to multi-minute rounds.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300,
}

// EnergyBuckets are the default bounds (Joules) for per-round energy: one
// minibatch on an efficient config (~10 J) up to thousand-job rounds.
var EnergyBuckets = []float64{
	1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000,
}

// family looks up or creates the named family. A name reused with a different
// type or bucket layout yields a detached instrument (valid but never
// exported) — telemetry must not panic or error at a hook site.
func (r *Registry) family(name, help string, typ metricType, buckets []float64) *family {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		f = r.families[name]
		if f == nil {
			f = &family{
				name: name, help: help, typ: typ, buckets: buckets,
				series: make(map[string]any), labels: make(map[string][]Label),
			}
			r.families[name] = f
			r.names = append(r.names, name)
		}
		r.mu.Unlock()
	}
	if f.typ != typ {
		return nil
	}
	return f
}

// Counter returns the counter for name and labels, registering it on first
// use. help is only applied at family creation.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.family(name, help, typeCounter, nil)
	if f == nil {
		return &Counter{}
	}
	return f.instrument(labels, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge for name and labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.family(name, help, typeGauge, nil)
	if f == nil {
		return &Gauge{}
	}
	return f.instrument(labels, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram returns the histogram for name and labels. buckets are the
// ascending upper bounds used when the family is first created; nil selects
// DurationBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if buckets == nil {
		buckets = DurationBuckets
	}
	f := r.family(name, help, typeHistogram, buckets)
	if f == nil {
		return newHistogram(buckets)
	}
	return f.instrument(labels, func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// CounterFunc registers a counter whose value is read from fn at scrape time.
// Used to expose external atomics (e.g. the worker pool's fan-out counters).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	if f := r.family(name, help, typeCounterFunc, nil); f != nil {
		f.fn = fn
	}
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if f := r.family(name, help, typeGaugeFunc, nil); f != nil {
		f.fn = fn
	}
}

// instrument returns the series for the canonicalized labels, creating it
// with mk on first use.
func (f *family) instrument(labels []Label, mk func() any) any {
	key := canonical(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	inst := f.series[key]
	if inst == nil {
		inst = mk()
		f.series[key] = inst
		f.labels[key] = append([]Label(nil), labels...)
	}
	return inst
}

// canonical renders labels sorted by key into the exposition form
// `{k="v",...}` (empty string for no labels).
func canonical(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// mergeLabels renders a label set extended with one extra pair (for
// histogram `le` buckets).
func mergeLabels(base string, extra Label) string {
	pair := extra.Key + `="` + escapeLabel(extra.Value) + `"`
	if base == "" {
		return "{" + pair + "}"
	}
	return base[:len(base)-1] + "," + pair + "}"
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return fmt.Sprintf("%g", v)
	}
}

// WritePrometheus writes every registered family in Prometheus text format
// (version 0.0.4), families and series sorted for deterministic output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := append([]string(nil), r.names...)
	r.mu.RUnlock()
	sort.Strings(names)

	for _, name := range names {
		r.mu.RLock()
		f := r.families[name]
		r.mu.RUnlock()
		if f == nil {
			continue
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		if err := f.writeSeries(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) writeSeries(w io.Writer) error {
	if f.typ == typeCounterFunc || f.typ == typeGaugeFunc {
		v := 0.0
		if f.fn != nil {
			v = f.fn()
		}
		_, err := fmt.Fprintf(w, "%s %s\n", f.name, formatValue(v))
		return err
	}

	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	insts := make([]any, len(keys))
	for i, k := range keys {
		insts[i] = f.series[k]
	}
	f.mu.Unlock()

	for i, key := range keys {
		switch inst := insts[i].(type) {
		case *Counter:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, key, formatValue(inst.Value())); err != nil {
				return err
			}
		case *Gauge:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, key, formatValue(inst.Value())); err != nil {
				return err
			}
		case *Histogram:
			cum := uint64(0)
			for bi, bound := range inst.bounds {
				cum += inst.counts[bi].Load()
				lk := mergeLabels(key, L("le", formatValue(bound)))
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, lk, cum); err != nil {
					return err
				}
			}
			cum += inst.counts[len(inst.bounds)].Load()
			lk := mergeLabels(key, L("le", "+Inf"))
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, lk, cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, key, formatValue(inst.Sum())); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, key, inst.Count()); err != nil {
				return err
			}
		}
	}
	return nil
}

// Handler serves the registry in Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
