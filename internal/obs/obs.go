// Package obs is BoFL's observability layer: a race-safe metrics registry
// with Prometheus text-format exposition, a lightweight span tracer with a
// pluggable monotonic clock, and the Sink interface that instrumented code
// talks to.
//
// Instrumentation hooks are threaded through the controller (internal/core),
// the MBO engine (internal/mobo), the FL server/client stack (internal/fl)
// and the experiment harness (internal/experiment). Every hook goes through
// a Sink; the default is NopSink, which compiles to a dynamic call that does
// nothing, so an un-instrumented run pays near-zero overhead (see
// BenchmarkNopSink and BENCH_2.json). A live Telemetry records metrics into
// a Registry and spans into a Tracer.
//
// The clock behind span timing is abstract: daemons use Real (wall clock),
// experiment harnesses may plug a simclock.Sim, and tests use Frozen or Step
// so recorded traces are byte-deterministic.
package obs

// Label is one key/value pair attached to a metric sample or span.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label at a call site.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Sink receives telemetry signals from instrumented code. Implementations
// must be safe for concurrent use. All methods are fire-and-forget: a sink
// never returns an error and must never panic, because hooks sit on paths
// whose correctness cannot depend on telemetry.
type Sink interface {
	// Count adds delta to the counter named name.
	Count(name string, delta float64, labels ...Label)
	// SetGauge sets the gauge named name.
	SetGauge(name string, v float64, labels ...Label)
	// Observe records v into the histogram named name.
	Observe(name string, v float64, labels ...Label)
	// Span opens a timed span; calling the returned function closes it,
	// recording a trace event and an auto-histogram named name+"_seconds".
	Span(name string, labels ...Label) func()
	// Event records an instant (zero-duration) trace event.
	Event(name string, labels ...Label)
}

// SpanGrafter is the optional Sink extension for pre-timed span events
// recorded in another process: the FL server type-asserts its sink against it
// to stitch client-returned span summaries into the round trace. NopSink does
// not implement it, so the nop path pays one failed assertion per round.
type SpanGrafter interface {
	Graft(ev SpanEvent)
}

// ExemplarObserver is the optional Sink extension pairing a histogram
// observation with the trace it came from, so a bad round spotted in
// bofl_round_energy_joules can be jumped to its stitched trace via the
// exemplar events in /v1/telemetry.
type ExemplarObserver interface {
	ObserveExemplar(name string, v float64, tc TraceContext, labels ...Label)
}

// NopSink discards everything. It is the default sink everywhere a Sink is
// optional, so telemetry-off call sites cost one interface dispatch.
type NopSink struct{}

var _ Sink = NopSink{}

// nopEnd is shared by every NopSink span so closing a disabled span
// allocates nothing.
var nopEnd = func() {}

// Count discards the sample.
func (NopSink) Count(string, float64, ...Label) {}

// SetGauge discards the sample.
func (NopSink) SetGauge(string, float64, ...Label) {}

// Observe discards the sample.
func (NopSink) Observe(string, float64, ...Label) {}

// Span returns a shared no-op closer.
func (NopSink) Span(string, ...Label) func() { return nopEnd }

// Event discards the event.
func (NopSink) Event(string, ...Label) {}

// Nop is the canonical no-op sink.
var Nop Sink = NopSink{}

// OrNop returns s, or Nop when s is nil, so optional-config plumbing can
// normalize once instead of nil-checking every hook.
func OrNop(s Sink) Sink {
	if s == nil {
		return Nop
	}
	return s
}
