package power

import (
	"math"
	"os"
	"sync"
	"testing"
)

func TestSensorRoundTrip(t *testing.T) {
	root, err := EmulateSensorTree(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSensor(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteRail(root, RailGPU, 11.5); err != nil {
		t.Fatal(err)
	}
	if err := WriteRail(root, RailCPU, 4.25); err != nil {
		t.Fatal(err)
	}
	if err := WriteRail(root, RailSOC, 2.0); err != nil {
		t.Fatal(err)
	}
	gpu, err := s.ReadRail(RailGPU)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gpu-11.5) > 1e-3 {
		t.Errorf("gpu rail = %v, want 11.5", gpu)
	}
	total, err := s.ReadTotal()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-17.75) > 1e-2 {
		t.Errorf("total = %v, want 17.75", total)
	}
}

func TestSensorErrors(t *testing.T) {
	if _, err := NewSensor("/nonexistent-power-root"); err == nil {
		t.Error("missing root accepted")
	}
	root, err := EmulateSensorTree(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSensor(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(railFile(root, RailCPU), []byte("not-a-number"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadRail(RailCPU); err == nil {
		t.Error("corrupt rail file accepted")
	}
	if _, err := s.ReadTotal(); err == nil {
		t.Error("ReadTotal should propagate rail errors")
	}
	if err := os.WriteFile(railFile(root, RailCPU), []byte("-5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadRail(RailCPU); err == nil {
		t.Error("negative rail power accepted")
	}
}

func TestWriteRailRejectsNegative(t *testing.T) {
	root, err := EmulateSensorTree(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteRail(root, RailGPU, -1); err == nil {
		t.Error("negative watts accepted")
	}
}

func TestRailString(t *testing.T) {
	if RailGPU.String() != "GPU" || RailCPU.String() != "CPU" || RailSOC.String() != "SOC" {
		t.Error("rail labels wrong")
	}
	if Rail(42).String() != "Rail(42)" {
		t.Errorf("unknown rail label = %q", Rail(42).String())
	}
}

func TestAccumulator(t *testing.T) {
	var a Accumulator
	if err := a.Add(1.5); err != nil {
		t.Fatal(err)
	}
	if err := a.Add(2.5); err != nil {
		t.Fatal(err)
	}
	j, n := a.Total()
	if j != 4 || n != 2 {
		t.Errorf("Total = (%v, %d), want (4, 2)", j, n)
	}
	if err := a.Add(-1); err == nil {
		t.Error("negative energy accepted")
	}
	a.Reset()
	if j, n := a.Total(); j != 0 || n != 0 {
		t.Errorf("after Reset: (%v, %d)", j, n)
	}
}

func TestAccumulatorConcurrent(t *testing.T) {
	var a Accumulator
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if err := a.Add(0.001); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	j, n := a.Total()
	if n != 8000 {
		t.Errorf("jobs = %d, want 8000", n)
	}
	if math.Abs(j-8) > 1e-9 {
		t.Errorf("joules = %v, want 8", j)
	}
}
