// Package power reads board power, emulating the INA3221 three-channel power
// monitor the paper uses on the Jetson testbeds (§5.2). On a real board the
// sensor exposes per-rail voltage/current readings through sysfs hwmon files;
// here a Sensor reads the same file layout from any root directory, and a
// SimRail can be pointed at the device simulator to keep the files in sync
// with the simulated workload.
//
// The package also provides Accumulator, the energy bookkeeping BoFL's
// performance observer uses to integrate power over job executions.
package power

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

// Rail identifies one INA3221 input channel.
type Rail int

// The three rails the Jetson boards expose.
const (
	RailGPU Rail = iota + 1
	RailCPU
	RailSOC
)

// String returns the rail's hwmon label.
func (r Rail) String() string {
	switch r {
	case RailGPU:
		return "GPU"
	case RailCPU:
		return "CPU"
	case RailSOC:
		return "SOC"
	default:
		return fmt.Sprintf("Rail(%d)", int(r))
	}
}

var rails = []Rail{RailGPU, RailCPU, RailSOC}

// Sensor reads instantaneous rail power from an INA3221-style sysfs tree:
// <root>/in_power<channel>_input files holding milliwatts, matching the
// kernel's ina3221 hwmon driver layout.
type Sensor struct {
	root string
}

// NewSensor opens a sensor rooted at the given directory.
func NewSensor(root string) (*Sensor, error) {
	info, err := os.Stat(root)
	if err != nil {
		return nil, fmt.Errorf("power: sensor root: %w", err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("power: sensor root %q is not a directory", root)
	}
	return &Sensor{root: root}, nil
}

func railFile(root string, r Rail) string {
	return filepath.Join(root, fmt.Sprintf("in_power%d_input", int(r)))
}

// ReadRail returns one rail's instantaneous power in Watts.
func (s *Sensor) ReadRail(r Rail) (float64, error) {
	raw, err := os.ReadFile(railFile(s.root, r))
	if err != nil {
		return 0, fmt.Errorf("power: %w", err)
	}
	mw, err := strconv.ParseFloat(strings.TrimSpace(string(raw)), 64)
	if err != nil {
		return 0, fmt.Errorf("power: parse rail %s: %w", r, err)
	}
	if mw < 0 {
		return 0, fmt.Errorf("power: rail %s reports negative power %v mW", r, mw)
	}
	return mw / 1000, nil
}

// ReadTotal returns the summed power of all three rails in Watts.
func (s *Sensor) ReadTotal() (float64, error) {
	total := 0.0
	for _, r := range rails {
		w, err := s.ReadRail(r)
		if err != nil {
			return 0, err
		}
		total += w
	}
	return total, nil
}

// EmulateSensorTree creates an INA3221-style file tree under root with all
// rails at 0 W and returns the root (convenience for tests and demos).
func EmulateSensorTree(root string) (string, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return "", fmt.Errorf("power: emulate tree: %w", err)
	}
	for _, r := range rails {
		if err := os.WriteFile(railFile(root, r), []byte("0\n"), 0o644); err != nil {
			return "", fmt.Errorf("power: emulate tree: %w", err)
		}
	}
	return root, nil
}

// WriteRail updates one rail's file with a power value in Watts (what a
// simulated board driver does between jobs).
func WriteRail(root string, r Rail, watts float64) error {
	if watts < 0 {
		return fmt.Errorf("power: negative rail power %v", watts)
	}
	val := strconv.FormatInt(int64(watts*1000+0.5), 10)
	if err := os.WriteFile(railFile(root, r), []byte(val+"\n"), 0o644); err != nil {
		return fmt.Errorf("power: write rail %s: %w", r, err)
	}
	return nil
}

// Accumulator integrates energy over a sequence of job executions. It is safe
// for concurrent use.
type Accumulator struct {
	mu     sync.Mutex
	joules float64
	jobs   int
}

// Add records one job's energy in Joules.
func (a *Accumulator) Add(joules float64) error {
	if joules < 0 {
		return fmt.Errorf("power: negative job energy %v", joules)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.joules += joules
	a.jobs++
	return nil
}

// Total returns the integrated energy in Joules and the number of jobs.
func (a *Accumulator) Total() (joules float64, jobs int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.joules, a.jobs
}

// Reset zeroes the accumulator.
func (a *Accumulator) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.joules, a.jobs = 0, 0
}
