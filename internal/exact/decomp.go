package exact

// Precomputed decompositions. A Vec add spends most of its time turning
// float64 values into limb deltas (exponent extraction, significand split);
// when the same weighted vector is folded into many accumulators — the fleet
// simulator's synthetic workload cycles through a small set of affine updates
// of one shared model — that work can be done once and replayed as pure
// integer adds. Replaying a Decomp is bit-identical to the AddScaledAffine
// call it memoizes: exact addition has no rounding, so *how* a contribution
// was decomposed can never show in the result. Pinned by
// TestAddDecompMatchesAddScaledAffine.
//
// Replay is memory-bound (each call streams the whole decomposition), so the
// storage is packed to 12 bytes per scalar: the two 32-bit delta magnitudes
// share a word, and the base limb, sign and the ≤21-bit top delta share
// another. Scalar index is implied by position — zeros and slow-path shapes
// hold a zeroed slot so the layout stays dense.

import (
	"math"
	"math/bits"
)

// meta word layout: bits 0-6 base limb, bit 7 sign, bits 8-28 top delta.
const (
	decompLimbBits = 7
	decompLimbMask = 1<<decompLimbBits - 1
	decompSignBit  = 1 << decompLimbBits
	decompTopShift = decompLimbBits + 1
)

// Decomp is the precomputed exact decomposition of w·(a·x + c) for one
// (w, a, c, x): per-scalar limb deltas ready to replay into any same-dim Vec.
type Decomp struct {
	dim    int
	lo, hi int      // limb window the deltas touch
	lohi   []uint64 // low 32 bits: plane-0 delta magnitude; high: plane-1
	meta   []uint32 // packed limb/sign/plane-2 delta
	// slow carries the rare shapes (specials, subnormals) replayed through
	// the Vec slow path, keyed by scalar index.
	slow  []int32
	slowB []uint64
}

// Dim returns the decomposition's vector width.
func (d *Decomp) Dim() int { return d.dim }

// From fills d with the decomposition of w·(a·x[i] + c), reusing d's storage.
// The inner affine map and the weighting round exactly like AddScaledAffine's
// (and therefore like the two-instruction float64 reference).
func (d *Decomp) From(w, a, c float64, x []float64) {
	dim := len(x)
	d.dim = dim
	if cap(d.lohi) < dim {
		d.lohi = make([]uint64, dim)
		d.meta = make([]uint32, dim)
	}
	d.lohi = d.lohi[:dim]
	d.meta = d.meta[:dim]
	d.slow = d.slow[:0]
	d.slowB = d.slowB[:0]
	lo, hi := limbsPerAcc, 0
	for i, xi := range x {
		t := a*xi + c
		b := math.Float64bits(w * t)
		exp := int(b>>52) & 0x7FF
		if uint(exp-1) >= 0x7FE {
			d.lohi[i] = 0
			d.meta[i] = 0
			if b<<1 != 0 {
				d.slow = append(d.slow, int32(i))
				d.slowB = append(d.slowB, b)
			}
			continue
		}
		frac := b&(1<<52-1) | 1<<52
		pos := exp - 1
		limb := pos >> 5
		high, low := bits.Mul64(frac, pow2[pos&31])
		m := uint32(limb) | uint32(high)<<decompTopShift
		if int64(b) < 0 {
			m |= decompSignBit
		}
		d.lohi[i] = low
		d.meta[i] = m
		if limb < lo {
			lo = limb
		}
		if limb+3 > hi {
			hi = limb + 3
		}
	}
	d.lo, d.hi = lo, hi
}

// AddDecomp replays a precomputed decomposition into v — bit-identical to
// the AddScaledAffine call d was built from, at a fraction of the cost: the
// hot loop is three integer read-modify-writes per scalar, fed from 12 bytes
// of packed deltas.
func (v *Vec) AddDecomp(d *Decomp) {
	v.checkDim(d.dim)
	v.bumpAdds(1)
	dim := v.dim
	limbs := v.limbs
	lohi := d.lohi
	for i, m := range d.meta {
		lh := lohi[i]
		base := int(m&decompLimbMask)*dim + i
		d0 := int64(lh & limbMask)
		d1 := int64(lh >> limbBits)
		d2 := int64(m >> decompTopShift)
		if m&decompSignBit != 0 {
			d0, d1, d2 = -d0, -d1, -d2
		}
		// Loads before stores — see AddScaled for the 4K-aliasing rationale.
		s0 := limbs[base] + d0
		s1 := limbs[base+dim] + d1
		s2 := limbs[base+2*dim] + d2
		limbs[base] = s0
		limbs[base+dim] = s1
		limbs[base+2*dim] = s2
	}
	if d.lo < d.hi {
		v.growWindow(d.lo, d.hi)
	}
	for k, i := range d.slow {
		v.addSlow(int(i), d.slowB[k])
	}
}
