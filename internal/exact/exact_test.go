package exact

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// oracleSum computes the correctly rounded sum of xs with math/big at a
// precision wide enough to be exact for any test input (big.Float addition at
// 2200 bits covers the whole double range plus carries).
func oracleSum(xs []float64) float64 {
	acc := new(big.Float).SetPrec(2200)
	for _, x := range xs {
		acc.Add(acc, new(big.Float).SetPrec(2200).SetFloat64(x))
	}
	out, _ := acc.Float64()
	return out
}

func addAll(t *testing.T, xs []float64) float64 {
	t.Helper()
	v := NewVec(1)
	for _, x := range xs {
		v.Add([]float64{x})
	}
	var dst [1]float64
	v.RoundTo(dst[:])
	return dst[0]
}

func bitsEq(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

// TestRoundMatchesOracle drives random sums — mixed magnitudes, signs,
// subnormals, exact cancellations — against the big.Float oracle.
func TestRoundMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	draw := func() float64 {
		switch rng.Intn(6) {
		case 0:
			return rng.NormFloat64()
		case 1:
			return rng.NormFloat64() * math.Ldexp(1, rng.Intn(600)-300)
		case 2:
			return math.Ldexp(float64(1+rng.Intn(1<<20)), -1074+rng.Intn(60)) // deep subnormal
		case 3:
			return -math.Ldexp(float64(1+rng.Intn(1<<20)), 1000-rng.Intn(60)) // huge
		case 4:
			return 0
		default:
			return float64(rng.Intn(2001) - 1000)
		}
	}
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = draw()
		}
		if trial%3 == 0 {
			// Force near-total cancellation: append the negations shuffled.
			for _, x := range xs[:n/2] {
				xs = append(xs, -x)
			}
			rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
		}
		got := addAll(t, xs)
		want := oracleSum(xs)
		if !bitsEq(got, want) {
			t.Fatalf("trial %d: sum(%v) = %x, oracle %x", trial, xs,
				math.Float64bits(got), math.Float64bits(want))
		}
	}
}

// TestRoundEdgeCases pins hand-picked rounding traps: ties to even, carry
// into a new binade, subnormal boundary, overflow to Inf.
func TestRoundEdgeCases(t *testing.T) {
	ulp := math.Nextafter(1, 2) - 1 // 2^-52
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"zeros", []float64{0, 0, -0.0}, 0},
		{"one", []float64{1}, 1},
		{"neg", []float64{-3.5}, -3.5},
		{"cancel", []float64{1e300, -1e300}, 0},
		{"tie-even-down", []float64{1, ulp / 2}, 1},
		{"tie-even-up", []float64{1 + ulp, ulp / 2}, 1 + 2*ulp},
		{"above-tie", []float64{1, ulp/2 + ulp/1024}, 1 + ulp},
		{"carry-binade", []float64{1, 1 - ulp/4}, 2},
		{"min-subnormal", []float64{math.SmallestNonzeroFloat64}, math.SmallestNonzeroFloat64},
		{"subnormal-sum", []float64{math.SmallestNonzeroFloat64, math.SmallestNonzeroFloat64}, 2 * math.SmallestNonzeroFloat64},
		{"subnormal-cancel", []float64{1.5, math.SmallestNonzeroFloat64, -1.5}, math.SmallestNonzeroFloat64},
		{"overflow", []float64{math.MaxFloat64, math.MaxFloat64}, math.Inf(1)},
		{"neg-overflow", []float64{-math.MaxFloat64, -math.MaxFloat64, 1e300}, math.Inf(-1)},
		{"max-exact", []float64{math.MaxFloat64, -1, 1}, math.MaxFloat64},
		{"inf", []float64{1, math.Inf(1)}, math.Inf(1)},
		{"neg-inf", []float64{math.Inf(-1), 5}, math.Inf(-1)},
		{"inf-conflict", []float64{math.Inf(1), math.Inf(-1)}, math.NaN()},
		{"nan", []float64{1, math.NaN(), 2}, math.NaN()},
	}
	for _, tc := range cases {
		got := addAll(t, tc.xs)
		if !bitsEq(got, tc.want) {
			t.Errorf("%s: got %v (%x), want %v", tc.name, got, math.Float64bits(got), tc.want)
		}
	}
}

// TestAssociativity is the tree-aggregation keystone: summing in any
// grouping — flat, random binary splits, random permutations merged via
// AddVec — yields bit-identical rounded results.
func TestAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(200)
		dim := 1 + rng.Intn(8)
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = make([]float64, dim)
			for j := range rows[i] {
				rows[i][j] = rng.NormFloat64() * math.Ldexp(1, rng.Intn(120)-60)
			}
		}
		// Flat reference, in index order.
		flat := NewVec(dim)
		for _, r := range rows {
			flat.Add(r)
		}
		want := make([]float64, dim)
		flat.RoundTo(want)

		// Random tree: shuffle rows, split into random segments, sum each
		// into its own Vec, merge the Vecs in random order.
		order := rng.Perm(n)
		var parts []*Vec
		for i := 0; i < n; {
			seg := 1 + rng.Intn(n-i)
			p := NewVec(dim)
			for _, k := range order[i : i+seg] {
				p.Add(rows[k])
			}
			parts = append(parts, p)
			i += seg
		}
		root := NewVec(dim)
		for _, idx := range rng.Perm(len(parts)) {
			if err := root.AddVec(parts[idx]); err != nil {
				t.Fatal(err)
			}
		}
		got := make([]float64, dim)
		root.RoundTo(got)
		for j := range want {
			if !bitsEq(got[j], want[j]) {
				t.Fatalf("trial %d dim %d: tree %x != flat %x", trial, j,
					math.Float64bits(got[j]), math.Float64bits(want[j]))
			}
		}
	}
}

// TestSerializeRoundTrip checks that shipping a partial through its portable
// form and absorbing it elsewhere is exact, including specials.
func TestSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const dim = 5
	a := NewVec(dim)
	for i := 0; i < 500; i++ {
		row := make([]float64, dim)
		for j := range row {
			row[j] = rng.NormFloat64() * math.Ldexp(1, rng.Intn(200)-100)
		}
		a.AddScaled(float64(1+rng.Intn(50)), row)
	}
	a.Add([]float64{0, math.Inf(1), 0, 0, math.NaN()})

	s := a.Serialize()
	b := NewVec(dim)
	if err := b.Absorb(s); err != nil {
		t.Fatal(err)
	}
	got, want := make([]float64, dim), make([]float64, dim)
	a.RoundTo(want)
	b.RoundTo(got)
	for j := range want {
		if !bitsEq(got[j], want[j]) {
			t.Fatalf("dim %d: absorbed %x != original %x", j,
				math.Float64bits(got[j]), math.Float64bits(want[j]))
		}
	}
}

// TestAbsorbRejectsCorrupt covers the defensive paths a hostile partial frame
// can hit.
func TestAbsorbRejectsCorrupt(t *testing.T) {
	v := NewVec(2)
	if err := v.Absorb(Serialized{Dim: 3}); err == nil {
		t.Error("dim mismatch accepted")
	}
	if err := v.Absorb(Serialized{Dim: 2, Lo: 5, Hi: 3}); err == nil {
		t.Error("inverted window accepted")
	}
	if err := v.Absorb(Serialized{Dim: 2, Lo: 0, Hi: limbsPerAcc + 1}); err == nil {
		t.Error("oversized window accepted")
	}
	if err := v.Absorb(Serialized{Dim: 2, Lo: 0, Hi: 2, Limbs: make([]uint64, 3)}); err == nil {
		t.Error("short limb payload accepted")
	}
	huge := make([]uint64, 4)
	huge[0] = 1 << 63
	if err := v.Absorb(Serialized{Dim: 2, Lo: 0, Hi: 2, Limbs: huge}); err == nil {
		t.Error("overflow-magnitude limb accepted")
	}
	if err := v.Absorb(Serialized{Dim: 2, Lo: 0, Hi: 2, Limbs: make([]uint64, 4), Specials: make([]uint8, 1)}); err == nil {
		t.Error("short specials accepted")
	}
}

// TestResetReuse checks a reset accumulator behaves like a fresh one.
func TestResetReuse(t *testing.T) {
	v := NewVec(3)
	v.AddScaled(3, []float64{1, -2, math.NaN()})
	v.Reset()
	v.Add([]float64{0.5, 0.25, -0.125})
	got := make([]float64, 3)
	v.RoundTo(got)
	want := []float64{0.5, 0.25, -0.125}
	for j := range want {
		if !bitsEq(got[j], want[j]) {
			t.Fatalf("after reset: got %v want %v", got, want)
		}
	}
}

// TestRenormalization forces the carry-slack path and checks exactness across
// it (a value-preserving operation by construction, verified against the
// oracle).
func TestRenormalization(t *testing.T) {
	v := NewVec(1)
	// Artificially shrink the slack budget by calling normalize mid-stream.
	xs := []float64{1e-300, 1e300, -1e300, 3.5, -1e-300}
	for i, x := range xs {
		v.Add([]float64{x})
		if i%2 == 0 {
			v.normalize()
		}
	}
	var got [1]float64
	v.RoundTo(got[:])
	if want := oracleSum(xs); !bitsEq(got[0], want) {
		t.Fatalf("got %v want %v", got[0], want)
	}
}

// TestWeightedFoldMatchesFloatSemantics pins that AddScaled rounds the
// product exactly once (the float64 multiply), like every fold path.
func TestWeightedFoldMatchesFloatSemantics(t *testing.T) {
	v := NewVec(1)
	w, x := 3.1, 0.7
	v.AddScaled(w, []float64{x})
	var got [1]float64
	v.RoundTo(got[:])
	if !bitsEq(got[0], w*x) {
		t.Fatalf("got %x want %x", math.Float64bits(got[0]), math.Float64bits(w*x))
	}
}

func BenchmarkAddScaled(b *testing.B) {
	const dim = 4096
	rng := rand.New(rand.NewSource(1))
	row := make([]float64, dim)
	for i := range row {
		row[i] = rng.NormFloat64() * 0.05
	}
	v := NewVec(dim)
	b.SetBytes(dim * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.AddScaled(float64(1+i%17), row)
	}
}

func BenchmarkRoundTo(b *testing.B) {
	const dim = 4096
	rng := rand.New(rand.NewSource(1))
	row := make([]float64, dim)
	for i := range row {
		row[i] = rng.NormFloat64()
	}
	v := NewVec(dim)
	for i := 0; i < 100; i++ {
		v.AddScaled(float64(1+i%17), row)
	}
	dst := make([]float64, dim)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.RoundTo(dst)
	}
}

// TestAddScaledAffineMatchesUnfused pins the fused affine fold to the
// two-step reference (materialize t = a·x+c, then AddScaled): identical
// accumulator windows and bit-identical rounded results, across magnitudes,
// signs, zeros and specials.
func TestAddScaledAffineMatchesUnfused(t *testing.T) {
	const dim = 64
	rng := rand.New(rand.NewSource(11))
	cases := []struct{ w, a, c float64 }{
		{1, 1, 0},
		{29, 1.875, 0.25},
		{3, -0.5, 1e-3},
		{7, 1e200, -1e180},
		{2, 1e-300, 0}, // drives subnormal products through the slow path
		{5, math.Inf(1), 1},
		{4, 1, math.NaN()},
	}
	for ci, tc := range cases {
		x := make([]float64, dim)
		for i := range x {
			switch i % 8 {
			case 6:
				x[i] = 0
			case 7:
				x[i] = -x[(i+1)%dim]
			default:
				x[i] = (rng.Float64()*2 - 1) * math.Pow(2, float64(rng.Intn(80)-40))
			}
		}
		fused := NewVec(dim)
		ref := NewVec(dim)
		scratch := make([]float64, dim)
		for rep := 0; rep < 3; rep++ {
			fused.AddScaledAffine(tc.w, tc.a, tc.c, x)
			for i, xi := range x {
				scratch[i] = tc.a*xi + tc.c
			}
			ref.AddScaled(tc.w, scratch)
		}
		gl, gh := fused.Window()
		wl, wh := ref.Window()
		if gl != wl || gh != wh {
			t.Fatalf("case %d: window [%d,%d), reference [%d,%d)", ci, gl, gh, wl, wh)
		}
		got := make([]float64, dim)
		want := make([]float64, dim)
		fused.RoundTo(got)
		ref.RoundTo(want)
		for i := range got {
			if !bitsEq(got[i], want[i]) {
				t.Fatalf("case %d scalar %d: fused %x, reference %x", ci, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
			}
		}
	}
}

// TestAddDecompMatchesAddScaledAffine pins that replaying a precomputed
// decomposition is bit-identical to the direct fused call it memoizes —
// including specials, subnormals, and exact zeros.
func TestAddDecompMatchesAddScaledAffine(t *testing.T) {
	const dim = 96
	x := make([]float64, dim)
	rng := uint64(0x5eed_dec0)
	next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
	for i := range x {
		x[i] = (float64(next()%2000) - 1000) * math.Pow(2, float64(int(next()%600))-300)
	}
	x[3] = 0
	x[7] = math.Inf(1)
	x[11] = math.NaN()
	x[13] = 5e-324 // subnormal
	x[17] = -math.MaxFloat64

	cases := []struct{ w, a, c float64 }{
		{1, 1, 0},
		{13, 1.25, 0.1875},
		{29, 1 + 6.0/8, 4.0 / 16},
		{1e300, 2, 1e-300},
		{3, 0, 0.5},
	}
	for _, tc := range cases {
		direct := NewVec(dim)
		replay := NewVec(dim)
		var d Decomp
		for rep := 0; rep < 3; rep++ {
			direct.AddScaledAffine(tc.w, tc.a, tc.c, x)
			d.From(tc.w, tc.a, tc.c, x)
			replay.AddDecomp(&d)
		}
		got := make([]float64, dim)
		want := make([]float64, dim)
		replay.RoundTo(got)
		direct.RoundTo(want)
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("w=%v a=%v c=%v elem %d: replay %x != direct %x",
					tc.w, tc.a, tc.c, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
			}
		}
	}
}

func BenchmarkAddScaledAffine(b *testing.B) {
	const dim = 256
	x := make([]float64, dim)
	for i := range x {
		x[i] = float64(i%17)/16 + 0.5
	}
	v := NewVec(dim)
	b.SetBytes(dim * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.AddScaledAffine(float64(1+i%29), 1+float64(i%7)/8, float64(i%5)/16, x)
	}
}

func BenchmarkAddDecomp(b *testing.B) {
	const dim = 256
	x := make([]float64, dim)
	for i := range x {
		x[i] = float64(i%17)/16 + 0.5
	}
	var d Decomp
	d.From(13, 1.25, 0.1875, x)
	v := NewVec(dim)
	b.SetBytes(dim * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.AddDecomp(&d)
	}
}
