// Package exact provides an error-free weighted-sum accumulator for float64
// vectors — the numeric foundation of hierarchical FedAvg aggregation.
//
// Floating-point addition is not associative, so a tree of partial sums is in
// general *not* bit-identical to a flat left-to-right fold: the two paths
// round at different points. BoFL's aggregation tree needs the opposite
// guarantee — the root commit must be byte-identical to the flat streaming
// fold for any tree shape — so the fold is built on a fixed-point
// superaccumulator instead: every product w·v (rounded once, by the ordinary
// float64 multiply, identically on every path) is added *exactly* into a
// 2112-bit two's-complement accumulator. Exact addition is associative and
// commutative, so any grouping of the leaves — flat, binary tree, fanout-64
// tree with ragged tails, arrival-order folds inside a discrete-event
// simulator, concurrent subtree folds merged in completion order — produces
// the same accumulator state bit for bit. Rounding back to float64 happens
// exactly once, at the root commit.
//
// Representation: per accumulated scalar, 66 little-endian limbs of radix
// 2^32 held in int64 words, so each limb keeps 31 bits of carry slack. Limb k
// carries bit positions [32k, 32k+32) of the fixed-point value, with bit 0
// pinned at 2^-1074 (the smallest subnormal): the full double range
// [2^-1074, 2^1024) spans bits 0..2097, and the top limb's slack absorbs
// sums beyond the float range (they round to ±Inf). A float64 contributes its
// 53-bit significand across at most three adjacent limbs, so an Add is a
// handful of shifts and three integer adds — no branches on data magnitude.
// The slack supports ≥ 2^29 additions between carry normalizations; the
// accumulator renormalizes itself (an exact, value-preserving operation)
// long before that bound.
//
// Storage is plane-major: limb plane k of every scalar is contiguous
// (limbs[k·dim+i] holds scalar i's limb k). Well-scaled workloads touch a
// narrow limb window, so the planes an Add writes, a Reset clears, and a
// Serialize/Absorb/AddVec walks are a handful of contiguous runs — the
// layout that lets the fleet simulator's fold hot path stream instead of
// striding 528 bytes between scalars.
//
// Specials (±Inf, NaN) cannot live in fixed point; they are tracked as
// per-scalar sticky flags with IEEE-like semantics: NaN poisons, +Inf and
// -Inf together make NaN, a lone infinity wins over any finite sum.
package exact

import (
	"fmt"
	"math"
	"math/bits"
)

// limbBits is the radix width; limbsPerAcc covers bit positions 0..2111 with
// bit 0 = 2^-1074, enough for any sum of finite float64 products plus carry
// headroom above 2^1023.
const (
	limbBits    = 32
	limbMask    = (1 << limbBits) - 1
	limbsPerAcc = 66

	// bias maps a float64's bit position onto the accumulator: a value's
	// least significant bit sits at accumulator bit (unbiasedExp + 1074).
	bias = 1074

	// renormAfter bounds unnormalized additions: each Add changes a limb by
	// < 2^33, so 2^29 adds stay well inside the int64 range (2^62).
	renormAfter = 1 << 29
)

// pow2[s] = 2^s for s in [0, 32): the multiplier table that turns AddScaled's
// variable significand shift into one widening multiply.
var pow2 = func() (t [32]uint64) {
	for s := range t {
		t[s] = 1 << s
	}
	return
}()

// special flags, per scalar.
const (
	flagNaN = 1 << iota
	flagPosInf
	flagNegInf
)

// Vec is a vector of exact accumulators, one per scalar of a parameter
// vector. The zero Vec is not usable; construct with NewVec.
type Vec struct {
	dim   int
	limbs []int64 // limbsPerAcc × dim, plane-major: limbs[k·dim+i]
	// loLimb/hiLimb bound the limb window any scalar has touched: [lo, hi).
	// Serialization, merging and rounding only walk the window, so a
	// well-scaled workload pays for the limbs it uses, not the full range.
	loLimb, hiLimb int
	// adds counts magnitude-bearing additions since the last carry
	// normalization (AddVec transfers the counter of the absorbed side).
	adds int64
	// specials holds per-scalar sticky flags; nil until a special arrives.
	specials []uint8
	// carry is normalize's per-scalar carry scratch, allocated on first use.
	carry []int64
}

// NewVec builds an exact accumulator for dim-scalar vectors.
func NewVec(dim int) *Vec {
	if dim < 0 {
		dim = 0
	}
	return &Vec{
		dim:    dim,
		limbs:  make([]int64, dim*limbsPerAcc),
		loLimb: limbsPerAcc,
		hiLimb: 0,
	}
}

// Dim returns the vector width.
func (v *Vec) Dim() int { return v.dim }

// Reset zeroes the accumulator for reuse. Only the touched window is cleared
// — one contiguous run in the plane-major layout — so resetting a fresh or
// well-scaled accumulator is cheap.
func (v *Vec) Reset() {
	if v.loLimb < v.hiLimb {
		clear(v.limbs[v.loLimb*v.dim : v.hiLimb*v.dim])
	}
	v.loLimb, v.hiLimb = limbsPerAcc, 0
	v.adds = 0
	v.specials = nil
}

// Window returns the touched limb window [lo, hi); lo ≥ hi means untouched.
func (v *Vec) Window() (lo, hi int) { return v.loLimb, v.hiLimb }

// special returns the flag byte for scalar i.
func (v *Vec) special(i int) uint8 {
	if v.specials == nil {
		return 0
	}
	return v.specials[i]
}

// orSpecial merges flags into scalar i's sticky byte.
func (v *Vec) orSpecial(i int, f uint8) {
	if f == 0 {
		return
	}
	if v.specials == nil {
		v.specials = make([]uint8, v.dim)
	}
	v.specials[i] |= f
}

// growWindow widens the touched window to include limbs [lo, hi).
func (v *Vec) growWindow(lo, hi int) {
	if lo < v.loLimb {
		v.loLimb = lo
	}
	if hi > v.hiLimb {
		v.hiLimb = hi
	}
}

// addSlow handles the shapes the inlined Add/AddScaled fast path punts on:
// specials and subnormals. b is the raw float64 bit pattern, known nonzero.
func (v *Vec) addSlow(i int, b uint64) {
	exp := int(b>>52) & 0x7FF
	frac := b & (1<<52 - 1)
	if exp == 0x7FF {
		switch {
		case frac != 0:
			v.orSpecial(i, flagNaN)
		case b>>63 != 0:
			v.orSpecial(i, flagNegInf)
		default:
			v.orSpecial(i, flagPosInf)
		}
		return
	}
	// Subnormal: same scale as exponent 1, no implicit bit — the significand
	// lands at bit 0, spanning limb planes 0 and 1.
	dim := v.dim
	if b>>63 != 0 {
		v.limbs[i] -= int64(frac & limbMask)
		v.limbs[dim+i] -= int64(frac >> limbBits)
	} else {
		v.limbs[i] += int64(frac & limbMask)
		v.limbs[dim+i] += int64(frac >> limbBits)
	}
	v.growWindow(0, 3)
}

// bumpAdds charges n additions against the carry slack, renormalizing first
// when the budget would run out. Renormalization is exact, so *when* it runs
// never affects the rounded result.
func (v *Vec) bumpAdds(n int64) {
	if v.adds+n >= renormAfter {
		v.normalize()
	}
	v.adds += n
}

// Add adds x[i] exactly into scalar i for every i. len(x) must equal Dim.
func (v *Vec) Add(x []float64) {
	// 1·x is exact for every float64 (including ±0, subnormals and specials),
	// so Add shares AddScaled's inlined hot loop.
	v.AddScaled(1, x)
}

// AddScaled adds w·x[i] into scalar i for every i. The product is rounded
// once by the ordinary float64 multiply — the same rounding every aggregation
// path performs — and then accumulated exactly.
//
// This is the fold hot path: the normal-value decomposition is inlined, the
// three limb writes of scalar i land dim words apart (adjacent planes), and
// the window bound is tracked in locals flushed once per call.
func (v *Vec) AddScaled(w float64, x []float64) {
	v.checkDim(len(x))
	v.bumpAdds(1)
	dim := v.dim
	limbs := v.limbs
	lo, hi := v.loLimb, v.hiLimb
	for i, xi := range x {
		b := math.Float64bits(w * xi)
		exp := int(b>>52) & 0x7FF
		if uint(exp-1) >= 0x7FE { // subnormal, zero or special
			if b<<1 == 0 {
				continue // ±0 contributes nothing
			}
			// Flush the window locals so the slow path composes, then
			// reload — it may have widened the window.
			v.growWindow(lo, hi)
			v.addSlow(i, b)
			lo, hi = v.loLimb, v.hiLimb
			continue
		}
		frac := b&(1<<52-1) | 1<<52
		// Value = frac · 2^(exp-1075); its least significant bit sits at
		// accumulator bit pos = (exp-1075) + bias = exp - 1. The widening
		// multiply by 2^(pos mod 32) is the 85-bit shift-and-split in one
		// µop — no variable shifts, no shift-amount branches.
		pos := exp - 1
		limb := pos >> 5
		high, low := bits.Mul64(frac, pow2[pos&31])
		base := limb*dim + i
		// All three loads issue before any store: with power-of-two dims the
		// first store and the plane+2 load sit exactly 2·8·dim bytes apart,
		// and store-before-load ordering would trip 4K-aliasing false
		// dependences that serialize the loop.
		d0, d1, d2 := limbs[base], limbs[base+dim], limbs[base+2*dim]
		if int64(b) < 0 {
			d0 -= int64(low & limbMask)
			d1 -= int64(low >> limbBits)
			d2 -= int64(high)
		} else {
			d0 += int64(low & limbMask)
			d1 += int64(low >> limbBits)
			d2 += int64(high)
		}
		limbs[base] = d0
		limbs[base+dim] = d1
		limbs[base+2*dim] = d2
		if limb < lo {
			lo = limb
		}
		if limb+3 > hi {
			hi = limb + 3
		}
	}
	v.growWindow(lo, hi)
}

func (v *Vec) checkDim(n int) {
	if n != v.dim {
		panic(fmt.Sprintf("exact: vector length %d, accumulator dim %d", n, v.dim))
	}
}

// AddScaledAffine adds w·(a·x[i] + c) into scalar i for every i, with the
// inner affine map rounded exactly as the equivalent two-instruction float64
// sequence (`t := a*x[i] + c; acc.AddScaled(w, t)`), then accumulated
// exactly. It exists for fold pipelines whose per-client update is an affine
// transform of a shared vector — fusing the transform into the decomposition
// loop removes a full store-and-reload pass over a scratch vector, which is
// worth ~15% of a simulated million-client round. Bit-identity with the
// unfused path is pinned by TestAddScaledAffineMatchesUnfused.
func (v *Vec) AddScaledAffine(w, a, c float64, x []float64) {
	v.checkDim(len(x))
	v.bumpAdds(1)
	dim := v.dim
	limbs := v.limbs
	lo, hi := v.loLimb, v.hiLimb
	for i, xi := range x {
		t := a*xi + c
		b := math.Float64bits(w * t)
		exp := int(b>>52) & 0x7FF
		if uint(exp-1) >= 0x7FE {
			if b<<1 == 0 {
				continue
			}
			v.growWindow(lo, hi)
			v.addSlow(i, b)
			lo, hi = v.loLimb, v.hiLimb
			continue
		}
		frac := b&(1<<52-1) | 1<<52
		pos := exp - 1
		limb := pos >> 5
		high, low := bits.Mul64(frac, pow2[pos&31])
		base := limb*dim + i
		// Loads before stores — see AddScaled for the 4K-aliasing rationale.
		d0, d1, d2 := limbs[base], limbs[base+dim], limbs[base+2*dim]
		if int64(b) < 0 {
			d0 -= int64(low & limbMask)
			d1 -= int64(low >> limbBits)
			d2 -= int64(high)
		} else {
			d0 += int64(low & limbMask)
			d1 += int64(low >> limbBits)
			d2 += int64(high)
		}
		limbs[base] = d0
		limbs[base+dim] = d1
		limbs[base+2*dim] = d2
		if limb < lo {
			lo = limb
		}
		if limb+3 > hi {
			hi = limb + 3
		}
	}
	v.growWindow(lo, hi)
}

// AddVec merges o into v exactly: afterwards v holds the sum of everything
// either accumulator had absorbed. This is the tree-aggregation merge; it is
// associative by construction. o is left unchanged.
func (v *Vec) AddVec(o *Vec) error {
	if o.dim != v.dim {
		return fmt.Errorf("exact: merge dim %d into dim %d", o.dim, v.dim)
	}
	if o.loLimb < o.hiLimb {
		// Each merged limb may carry up to o.adds' worth of magnitude.
		charge := o.adds
		if charge < 1 {
			charge = 1
		}
		v.bumpAdds(charge)
		src := o.limbs[o.loLimb*o.dim : o.hiLimb*o.dim]
		dst := v.limbs[o.loLimb*v.dim : o.hiLimb*v.dim]
		for j, d := range src {
			dst[j] += d
		}
		v.growWindow(o.loLimb, o.hiLimb)
	}
	if o.specials != nil {
		for i, f := range o.specials {
			v.orSpecial(i, f)
		}
	}
	return nil
}

// normalize propagates carries to canonical two's-complement form: every
// limb below the top of the window is in [0, 2^32); the top limb keeps the
// sign. Exact: the represented value is unchanged. Called only at rounding
// time and for carry-slack relief, never on the serialization path, so
// partial frames keep their compact windows.
//
// The plane-major layout turns the per-scalar carry chains into a batched
// sweep: one pass per limb plane with a dim-wide carry row, so the whole
// vector normalizes in contiguous memory instead of dim separate strided
// chains. A residual carry out of the top processed plane is parked in the
// next plane up, which becomes the new signed top limb — for a negative sum
// this replaces the old sign-extension walk to the array top, and the window
// grows by at most one plane.
func (v *Vec) normalize() {
	if v.loLimb >= v.hiLimb {
		v.adds = 0
		return
	}
	dim := v.dim
	if cap(v.carry) < dim {
		v.carry = make([]int64, dim)
	}
	carry := v.carry[:dim]
	clear(carry)
	top := v.hiLimb
	if top == limbsPerAcc {
		top = limbsPerAcc - 1 // the last plane stays signed; never canonicalized
	}
	for k := v.loLimb; k < top; k++ {
		plane := v.limbs[k*dim : (k+1)*dim]
		for i, d := range plane {
			t := d + carry[i]
			carry[i] = t >> limbBits // arithmetic shift: floor division
			plane[i] = t & limbMask
		}
	}
	plane := v.limbs[top*dim : (top+1)*dim]
	grew := false
	for i, c := range carry {
		if c != 0 {
			plane[i] += c
			grew = true
		}
	}
	if grew && top >= v.hiLimb {
		v.hiLimb = top + 1
	}
	v.adds = 1
	// The bottom of the window cannot move down, and zero limbs at the
	// bottom are harmless; leave loLimb as-is.
}

// RoundTo writes the correctly rounded (nearest-even) float64 value of every
// scalar into dst, which must have length Dim. The accumulator is left
// normalized but intact — rounding is read-only with respect to the sum.
func (v *Vec) RoundTo(dst []float64) {
	v.checkDim(len(dst))
	v.normalize()
	var mag [limbsPerAcc]uint64
	for i := range dst {
		dst[i] = v.roundScalar(i, &mag)
	}
}

// roundScalar rounds scalar i. mag is caller scratch for the magnitude limbs.
func (v *Vec) roundScalar(i int, mag *[limbsPerAcc]uint64) float64 {
	if f := v.special(i); f != 0 {
		switch {
		case f&flagNaN != 0, f&(flagPosInf|flagNegInf) == flagPosInf|flagNegInf:
			return math.NaN()
		case f&flagPosInf != 0:
			return math.Inf(1)
		default:
			return math.Inf(-1)
		}
	}
	dim := v.dim
	lo, hi := v.loLimb, v.hiLimb
	if lo >= hi {
		return 0
	}
	// After normalize, limbs below hi-1 are in [0, 2^32); the top limb is
	// signed and dominates the sign.
	neg := v.limbs[(hi-1)*dim+i] < 0
	if !neg {
		for k := lo; k < hi; k++ {
			mag[k] = uint64(v.limbs[k*dim+i])
		}
	} else {
		// Negate the two's-complement digit string to get the magnitude:
		// m_k = (2^32 - d_k - borrow) mod 2^32, with the signed top limb
		// absorbing the final borrow.
		var borrow uint64
		for k := lo; k < hi-1; k++ {
			d := uint64(v.limbs[k*dim+i]) // in [0, 2^32) after normalize
			mag[k] = (0 - d - borrow) & limbMask
			if d != 0 || borrow != 0 {
				borrow = 1
			}
		}
		mag[hi-1] = uint64(-(v.limbs[(hi-1)*dim+i] + int64(borrow)))
	}
	// Locate the most significant set bit.
	msLimb := -1
	for k := hi - 1; k >= lo; k-- {
		if mag[k] != 0 {
			msLimb = k
			break
		}
	}
	if msLimb < 0 {
		return 0 // exact zero keeps the +0 sign, like a float64 sum reset to 0
	}
	msBit := msLimb*limbBits + 63 - bits.LeadingZeros64(mag[msLimb])
	// Unbiased exponent of the leading bit.
	e := msBit - bias
	if e > 1023 {
		if neg {
			return math.Inf(-1)
		}
		return math.Inf(1)
	}
	if e < -1022 {
		// Entirely within subnormal range: every bit position ≥ 0 is
		// representable, so the value is exact. msBit ≤ 51 here.
		frac := v.gatherBits(mag, lo, 0, msBit)
		b := frac
		if neg {
			b |= 1 << 63
		}
		return math.Float64frombits(b)
	}
	// Normal: significand bits msBit..msBit-52, guard at msBit-53, sticky
	// below.
	sig := v.gatherBits(mag, lo, msBit-52, msBit)
	guard := uint64(0)
	if g := msBit - 53; g >= 0 {
		guard = v.gatherBits(mag, lo, g, g)
	}
	sticky := false
	if s := msBit - 54; s >= 0 {
		sticky = v.anyBitsBelow(mag, lo, s)
	}
	if guard == 1 && (sticky || sig&1 == 1) {
		sig++
		if sig == 1<<53 {
			sig >>= 1
			e++
			if e > 1023 {
				if neg {
					return math.Inf(-1)
				}
				return math.Inf(1)
			}
		}
	}
	b := uint64(e+1023)<<52 | (sig &^ (1 << 52))
	if neg {
		b |= 1 << 63
	}
	return math.Float64frombits(b)
}

// gatherBits extracts bit positions [from, to] (inclusive, to ≥ from) of the
// magnitude digit string as a uint64; positions below limb lo (or 0) read 0.
func (v *Vec) gatherBits(mag *[limbsPerAcc]uint64, loLimb, from, to int) uint64 {
	if from < 0 {
		from = 0
	}
	var out uint64
	for k := from >> 5; k <= to>>5 && k < limbsPerAcc; k++ {
		if k < loLimb {
			continue
		}
		d := mag[k]
		limbBase := k * limbBits
		shift := from - limbBase
		if shift > 0 {
			d >>= uint(shift)
			limbBase = from
		}
		out |= d << uint(limbBase-from)
	}
	width := uint(to - from + 1)
	if width < 64 {
		out &= 1<<width - 1
	}
	return out
}

// anyBitsBelow reports whether any bit at position ≤ to is set.
func (v *Vec) anyBitsBelow(mag *[limbsPerAcc]uint64, loLimb, to int) bool {
	if to < 0 {
		return false
	}
	full := to >> 5
	for k := loLimb; k < full && k < limbsPerAcc; k++ {
		if mag[k] != 0 {
			return true
		}
	}
	if full >= limbsPerAcc || full < loLimb {
		return false
	}
	rem := uint(to - full*limbBits + 1)
	return mag[full]&(1<<rem-1) != 0
}

// --- serialization ------------------------------------------------------

// Serialized is the portable form of a Vec: the touched limb window of every
// scalar plus the sticky special flags — what a tier aggregator ships to its
// parent inside a BFL1 partial-aggregate frame. Limbs are plane-major,
// matching Vec storage: limb plane k ∈ [Lo, Hi) occupies
// Limbs[(k-Lo)·Dim : (k-Lo+1)·Dim], scalar i at offset i.
type Serialized struct {
	Dim      int
	Lo, Hi   int      // limb window [Lo, Hi)
	Adds     int64    // carry-slack charge carried by the window
	Limbs    []uint64 // int64 limbs bit-cast; len = Dim·(Hi-Lo)
	Specials []uint8  // nil when no scalar holds a special
}

// SerializeInto snapshots the accumulator into s, reusing s.Limbs when it has
// capacity — the zero-allocation path for per-node partial frames. The
// snapshot shares no storage with v.
func (v *Vec) SerializeInto(s *Serialized) {
	s.Dim = v.dim
	s.Adds = v.adds
	s.Specials = nil
	if v.loLimb >= v.hiLimb {
		s.Lo, s.Hi = 0, 0
		s.Limbs = s.Limbs[:0]
	} else {
		s.Lo, s.Hi = v.loLimb, v.hiLimb
		n := v.dim * (s.Hi - s.Lo)
		if cap(s.Limbs) < n {
			s.Limbs = make([]uint64, n)
		}
		s.Limbs = s.Limbs[:n]
		src := v.limbs[s.Lo*v.dim : s.Hi*v.dim]
		for j, d := range src {
			s.Limbs[j] = uint64(d)
		}
	}
	if v.specials != nil {
		s.Specials = append([]uint8(nil), v.specials...)
	}
}

// Serialize snapshots the accumulator. The snapshot shares no storage with v.
func (v *Vec) Serialize() Serialized {
	var s Serialized
	v.SerializeInto(&s)
	if len(s.Limbs) == 0 {
		s.Limbs = nil
	}
	return s
}

// Absorb merges a serialized accumulator into v exactly — the deserializing
// half of a tier merge. It validates the window and length so a corrupt
// partial frame cannot write out of bounds.
func (v *Vec) Absorb(s Serialized) error {
	if s.Dim != v.dim {
		return fmt.Errorf("exact: absorb dim %d into dim %d", s.Dim, v.dim)
	}
	if s.Lo > s.Hi || s.Lo < 0 || s.Hi > limbsPerAcc {
		return fmt.Errorf("exact: absorb window [%d, %d)", s.Lo, s.Hi)
	}
	w := s.Hi - s.Lo
	if len(s.Limbs) != s.Dim*w {
		return fmt.Errorf("exact: absorb %d limbs, want %d", len(s.Limbs), s.Dim*w)
	}
	if s.Specials != nil && len(s.Specials) != s.Dim {
		return fmt.Errorf("exact: absorb %d special flags, want %d", len(s.Specials), s.Dim)
	}
	if w > 0 {
		// An honest encoder's limbs are bounded by its carry-slack charge; a
		// frame claiming more is corrupt and must not be able to overflow the
		// int64 limbs on merge.
		const maxLimbMag = int64(1) << 62
		for _, l := range s.Limbs {
			if sl := int64(l); sl > maxLimbMag || sl < -maxLimbMag {
				return fmt.Errorf("exact: absorb limb magnitude %d exceeds bound", sl)
			}
		}
		charge := s.Adds
		if charge < 1 {
			charge = 1
		}
		if charge > renormAfter {
			// A hostile Adds cannot force overflow: renormalize now and
			// treat the incoming window as fully charged.
			v.normalize()
			charge = renormAfter - 1
		}
		v.bumpAdds(charge)
		dst := v.limbs[s.Lo*v.dim : s.Hi*v.dim]
		for j, l := range s.Limbs {
			dst[j] += int64(l)
		}
		v.growWindow(s.Lo, s.Hi)
	}
	for i, f := range s.Specials {
		v.orSpecial(i, f)
	}
	return nil
}

// MemoryBytes reports the accumulator's limb storage footprint — the quantity
// the fleet simulator's per-node memory accounting sums.
func (v *Vec) MemoryBytes() int64 { return int64(len(v.limbs)) * 8 }

// VecBytes is NewVec(dim).MemoryBytes() as a formula — the per-accumulator
// footprint, for memory accounting that must not allocate an accumulator to
// measure one.
func VecBytes(dim int) int64 {
	if dim < 0 {
		dim = 0
	}
	return int64(dim) * limbsPerAcc * 8
}
