// Package pareto implements dominance relations, Pareto-set extraction and
// exact two-dimensional hypervolume computations for minimization problems.
//
// BoFL's performance space is two-objective — per-minibatch energy E(x) and
// per-minibatch latency T(x) — and both objectives are minimized. Throughout
// this package a Point is an objective vector (not a decision vector) and
// "better" always means component-wise smaller.
package pareto

import (
	"errors"
	"math"
	"sort"
)

// Point is a point in the 2-D objective space. By BoFL convention X is the
// first objective (energy per minibatch, Joule) and Y the second (latency per
// minibatch, seconds), but nothing in this package depends on the units.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Dominates reports whether p Pareto-dominates q under minimization: p is no
// worse than q in both objectives and strictly better in at least one.
func (p Point) Dominates(q Point) bool {
	if p.X > q.X || p.Y > q.Y {
		return false
	}
	return p.X < q.X || p.Y < q.Y
}

// WeaklyDominates reports whether p is no worse than q in both objectives.
func (p Point) WeaklyDominates(q Point) bool {
	return p.X <= q.X && p.Y <= q.Y
}

// Front computes the Pareto-optimal subset of pts under minimization. The
// result is sorted by ascending X (and, among equal X, ascending Y). Weakly
// dominated duplicates are removed: for each distinct objective vector at
// most one representative survives.
func Front(pts []Point) []Point {
	if len(pts) == 0 {
		return nil
	}
	sorted := make([]Point, len(pts))
	copy(sorted, pts)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].X != sorted[j].X {
			return sorted[i].X < sorted[j].X
		}
		return sorted[i].Y < sorted[j].Y
	})
	front := make([]Point, 0, len(sorted))
	bestY := math.Inf(1)
	for _, p := range sorted {
		// After sorting, p can only be dominated by an earlier point,
		// and an earlier point dominates p iff its Y ≤ p.Y (its X is
		// ≤ p.X by construction). Equal points are dropped too.
		if p.Y < bestY {
			front = append(front, p)
			bestY = p.Y
		}
	}
	return front
}

// FrontIndices returns the indices (into pts) of a maximal set of mutually
// non-dominated points, preferring earlier indices among duplicates. The
// returned indices are in ascending order of pts[i].X.
func FrontIndices(pts []Point) []int {
	if len(pts) == 0 {
		return nil
	}
	order := make([]int, len(pts))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		pi, pj := pts[order[a]], pts[order[b]]
		if pi.X != pj.X {
			return pi.X < pj.X
		}
		if pi.Y != pj.Y {
			return pi.Y < pj.Y
		}
		return order[a] < order[b]
	})
	idx := make([]int, 0, len(order))
	bestY := math.Inf(1)
	for _, i := range order {
		if pts[i].Y < bestY {
			idx = append(idx, i)
			bestY = pts[i].Y
		}
	}
	return idx
}

// IsDominated reports whether p is dominated by any point in set.
func IsDominated(p Point, set []Point) bool {
	for _, q := range set {
		if q.Dominates(p) {
			return true
		}
	}
	return false
}

// ErrBadReference indicates a hypervolume reference point that does not
// (weakly) dominate-from-above every front point, i.e. some point lies
// outside the box bounded by the reference.
var ErrBadReference = errors.New("pareto: reference point does not bound the front")

// Hypervolume computes the exact 2-D hypervolume indicator of pts with
// respect to reference point ref under minimization: the Lebesgue measure of
// the region dominated by pts and bounded from above by ref. Points that do
// not improve on ref in both coordinates contribute nothing. An empty input
// yields 0.
func Hypervolume(pts []Point, ref Point) float64 {
	front := Front(pts)
	// front is sorted by ascending X with strictly descending Y. Keep only
	// points strictly inside the reference box, then sweep left to right:
	// each point contributes a rectangle from its X to the next in-box
	// point's X (or ref.X for the last one), with height ref.Y - p.Y.
	inBox := front[:0:0]
	for _, p := range front {
		if p.X < ref.X && p.Y < ref.Y {
			inBox = append(inBox, p)
		}
	}
	hv := 0.0
	for i, p := range inBox {
		nextX := ref.X
		if i+1 < len(inBox) {
			nextX = inBox[i+1].X
		}
		hv += (nextX - p.X) * (ref.Y - p.Y)
	}
	return hv
}

// Improvement computes the hypervolume improvement HVI(q; front, ref): the
// increase in hypervolume obtained by adding the candidate points qs to the
// existing set pts (Eqn. 5 of the paper).
func Improvement(qs []Point, pts []Point, ref Point) float64 {
	base := Hypervolume(pts, ref)
	union := make([]Point, 0, len(pts)+len(qs))
	union = append(union, pts...)
	union = append(union, qs...)
	return Hypervolume(union, ref) - base
}

// ReferenceFrom returns the component-wise worst (maximum) point of pts,
// which the paper uses as the hypervolume reference: the combination of the
// worst observed performances in phase 1. It returns an error on empty input.
func ReferenceFrom(pts []Point) (Point, error) {
	if len(pts) == 0 {
		return Point{}, errors.New("pareto: no points to derive a reference from")
	}
	ref := pts[0]
	for _, p := range pts[1:] {
		ref.X = math.Max(ref.X, p.X)
		ref.Y = math.Max(ref.Y, p.Y)
	}
	return ref, nil
}
