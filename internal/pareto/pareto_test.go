package pareto

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDominates(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want bool
	}{
		{"strictly better both", Point{1, 1}, Point{2, 2}, true},
		{"better in x equal y", Point{1, 2}, Point{2, 2}, true},
		{"better in y equal x", Point{2, 1}, Point{2, 2}, true},
		{"equal", Point{2, 2}, Point{2, 2}, false},
		{"worse in x", Point{3, 1}, Point{2, 2}, false},
		{"worse in y", Point{1, 3}, Point{2, 2}, false},
		{"worse both", Point{3, 3}, Point{2, 2}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Dominates(tt.q); got != tt.want {
				t.Errorf("Dominates(%v, %v) = %v, want %v", tt.p, tt.q, got, tt.want)
			}
		})
	}
}

func TestDominanceIsStrictPartialOrder(t *testing.T) {
	// Irreflexivity and asymmetry checked by exhaustive random pairs.
	f := func(ax, ay, bx, by float64) bool {
		p := Point{ax, ay}
		q := Point{bx, by}
		if p.Dominates(p) {
			return false
		}
		if p.Dominates(q) && q.Dominates(p) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFrontSimple(t *testing.T) {
	pts := []Point{{3, 1}, {1, 3}, {2, 2}, {3, 3}, {2.5, 2.5}}
	front := Front(pts)
	want := []Point{{1, 3}, {2, 2}, {3, 1}}
	if len(front) != len(want) {
		t.Fatalf("Front = %v, want %v", front, want)
	}
	for i := range want {
		if front[i] != want[i] {
			t.Errorf("front[%d] = %v, want %v", i, front[i], want[i])
		}
	}
}

func TestFrontDropsDuplicates(t *testing.T) {
	pts := []Point{{1, 1}, {1, 1}, {2, 0.5}, {2, 0.5}}
	front := Front(pts)
	if len(front) != 2 {
		t.Fatalf("Front kept duplicates: %v", front)
	}
}

func TestFrontEmpty(t *testing.T) {
	if got := Front(nil); got != nil {
		t.Errorf("Front(nil) = %v, want nil", got)
	}
}

// bruteForceFront is an O(n²) reference implementation.
func bruteForceFront(pts []Point) map[Point]bool {
	out := make(map[Point]bool)
	for _, p := range pts {
		dominated := false
		for _, q := range pts {
			if q.Dominates(p) {
				dominated = true
				break
			}
		}
		if !dominated {
			out[p] = true
		}
	}
	return out
}

func TestFrontMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		pts := make([]Point, n)
		for i := range pts {
			// Small discrete grid to provoke ties and duplicates.
			pts[i] = Point{float64(rng.Intn(6)), float64(rng.Intn(6))}
		}
		got := Front(pts)
		want := bruteForceFront(pts)
		for _, p := range got {
			if !want[p] {
				t.Fatalf("trial %d: Front returned dominated point %v (pts=%v)", trial, p, pts)
			}
		}
		// Every non-dominated objective vector must appear exactly once.
		seen := make(map[Point]int)
		for _, p := range got {
			seen[p]++
		}
		for p := range want {
			if seen[p] != 1 {
				t.Fatalf("trial %d: point %v appears %d times in front (pts=%v)", trial, p, seen[p], pts)
			}
		}
	}
}

func TestFrontIndices(t *testing.T) {
	pts := []Point{{3, 3}, {1, 2}, {2, 1}, {1, 2}}
	idx := FrontIndices(pts)
	if len(idx) != 2 {
		t.Fatalf("FrontIndices = %v, want 2 entries", idx)
	}
	if idx[0] != 1 || idx[1] != 2 {
		t.Errorf("FrontIndices = %v, want [1 2]", idx)
	}
}

func TestFrontIndicesPointsAreNonDominated(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(30)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{rng.Float64(), rng.Float64()}
		}
		idx := FrontIndices(pts)
		for _, i := range idx {
			if IsDominated(pts[i], pts) {
				t.Fatalf("index %d points to dominated point %v", i, pts[i])
			}
		}
	}
}

func TestHypervolumeKnown(t *testing.T) {
	tests := []struct {
		name string
		pts  []Point
		ref  Point
		want float64
	}{
		{"single point", []Point{{1, 1}}, Point{3, 3}, 4},
		{"two staircase points", []Point{{1, 2}, {2, 1}}, Point{3, 3}, 3},
		{"dominated point ignored", []Point{{1, 1}, {2, 2}}, Point{3, 3}, 4},
		{"point outside ref", []Point{{4, 4}}, Point{3, 3}, 0},
		{"point on ref boundary", []Point{{3, 1}}, Point{3, 3}, 0},
		{"empty", nil, Point{3, 3}, 0},
		{"three points", []Point{{0, 2}, {1, 1}, {2, 0}}, Point{3, 3}, 6},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Hypervolume(tt.pts, tt.ref)
			if math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Hypervolume = %v, want %v", got, tt.want)
			}
		})
	}
}

// monteCarloHV estimates the hypervolume by sampling the reference box
// [0, ref.X] × [0, ref.Y] uniformly (points are assumed non-negative).
func monteCarloHV(pts []Point, ref Point, n int, rng *rand.Rand) float64 {
	hits := 0
	for i := 0; i < n; i++ {
		z := Point{rng.Float64() * ref.X, rng.Float64() * ref.Y}
		for _, p := range pts {
			if p.WeaklyDominates(z) {
				hits++
				break
			}
		}
	}
	return float64(hits) / float64(n) * ref.X * ref.Y
}

func TestHypervolumeMatchesMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ref := Point{1, 1}
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(15)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{rng.Float64(), rng.Float64()}
		}
		exact := Hypervolume(pts, ref)
		approx := monteCarloHV(pts, ref, 200000, rng)
		if math.Abs(exact-approx) > 0.01 {
			t.Errorf("trial %d: exact %v vs monte carlo %v", trial, exact, approx)
		}
	}
}

func TestHypervolumeMonotoneInPoints(t *testing.T) {
	// Adding a point never decreases the hypervolume.
	rng := rand.New(rand.NewSource(3))
	ref := Point{10, 10}
	pts := []Point{}
	prev := 0.0
	for i := 0; i < 100; i++ {
		pts = append(pts, Point{rng.Float64() * 12, rng.Float64() * 12})
		hv := Hypervolume(pts, ref)
		if hv < prev-1e-12 {
			t.Fatalf("hypervolume decreased from %v to %v after adding %v", prev, hv, pts[len(pts)-1])
		}
		prev = hv
	}
}

func TestImprovement(t *testing.T) {
	front := []Point{{1, 2}, {2, 1}}
	ref := Point{3, 3}
	// A dominated candidate adds nothing.
	if got := Improvement([]Point{{2.5, 2.5}}, front, ref); got != 0 {
		t.Errorf("Improvement of dominated point = %v, want 0", got)
	}
	// The ideal corner captures the whole remaining volume: total box is
	// 9, current HV is 3, so improvement is 6.
	if got := Improvement([]Point{{0, 0}}, front, ref); math.Abs(got-6) > 1e-12 {
		t.Errorf("Improvement of ideal point = %v, want 6", got)
	}
}

func TestImprovementNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		front := make([]Point, 1+rng.Intn(8))
		for i := range front {
			front[i] = Point{rng.Float64(), rng.Float64()}
		}
		q := Point{rng.Float64(), rng.Float64()}
		return Improvement([]Point{q}, front, Point{1, 1}) >= -1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestReferenceFrom(t *testing.T) {
	ref, err := ReferenceFrom([]Point{{1, 5}, {4, 2}, {3, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if ref != (Point{4, 5}) {
		t.Errorf("ReferenceFrom = %v, want {4 5}", ref)
	}
	if _, err := ReferenceFrom(nil); err == nil {
		t.Error("ReferenceFrom(nil) should error")
	}
}

func TestIsDominated(t *testing.T) {
	set := []Point{{1, 1}}
	if !IsDominated(Point{2, 2}, set) {
		t.Error("expected {2,2} dominated by {1,1}")
	}
	if IsDominated(Point{0.5, 2}, set) {
		t.Error("{0.5,2} should not be dominated by {1,1}")
	}
	if IsDominated(Point{1, 1}, set) {
		t.Error("a point does not dominate itself")
	}
}
