package dvfs

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"bofl/internal/device"
)

// SysfsPaths locates the kernel files that control each unit's clock. On a
// Jetson board these are, e.g.,
//
//	CPU: /sys/devices/system/cpu/cpu0/cpufreq/scaling_{min,max}_freq  (kHz)
//	GPU: /sys/devices/gpu.0/devfreq/17000000.gv11b/{min,max}_freq     (Hz)
//	Mem: /sys/kernel/debug/bpmp/debug/clk/emc/rate                    (Hz)
//
// Each entry names a directory that contains min_freq and max_freq files; the
// controller pins the clock by writing the same value to both, which is the
// technique the paper uses (§5.2, footnote 6).
type SysfsPaths struct {
	CPUDir string
	GPUDir string
	MemDir string
	// Unit is the scale of the values in the files relative to Hz
	// (cpufreq uses kHz ⇒ 1e3; devfreq uses Hz ⇒ 1).
	CPUUnit, GPUUnit, MemUnit float64
}

// SysfsBackend drives real (or emulated) sysfs frequency files.
type SysfsBackend struct {
	paths SysfsPaths
}

var _ Backend = (*SysfsBackend)(nil)

// NewSysfsBackend validates that all control directories exist and returns a
// backend over them. Point the paths at a temp-dir tree to emulate a board.
func NewSysfsBackend(paths SysfsPaths) (*SysfsBackend, error) {
	for _, dir := range []string{paths.CPUDir, paths.GPUDir, paths.MemDir} {
		info, err := os.Stat(dir)
		if err != nil {
			return nil, fmt.Errorf("dvfs: sysfs dir: %w", err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("dvfs: sysfs path %q is not a directory", dir)
		}
	}
	if paths.CPUUnit <= 0 || paths.GPUUnit <= 0 || paths.MemUnit <= 0 {
		return nil, fmt.Errorf("dvfs: sysfs units must be positive")
	}
	return &SysfsBackend{paths: paths}, nil
}

// Apply pins each unit's clock by writing the frequency into both min_freq
// and max_freq.
func (b *SysfsBackend) Apply(cfg device.Config) error {
	writes := []struct {
		dir  string
		freq device.Freq
		unit float64
	}{
		{b.paths.CPUDir, cfg.CPU, b.paths.CPUUnit},
		{b.paths.GPUDir, cfg.GPU, b.paths.GPUUnit},
		{b.paths.MemDir, cfg.Mem, b.paths.MemUnit},
	}
	for _, w := range writes {
		hz := int64(float64(w.freq)*1e9/w.unit + 0.5)
		val := strconv.FormatInt(hz, 10)
		// Write min_freq before max_freq when lowering and the reverse
		// when raising would matter on real kernels; pinning both to
		// the same value makes the order irrelevant except that
		// max ≥ min must hold transiently, so write max first.
		for _, name := range []string{"max_freq", "min_freq"} {
			path := filepath.Join(w.dir, name)
			if err := os.WriteFile(path, []byte(val+"\n"), 0o644); err != nil {
				return fmt.Errorf("dvfs: write %s: %w", path, err)
			}
		}
	}
	return nil
}

// Current reads back the pinned frequencies from the min_freq files.
func (b *SysfsBackend) Current() (device.Config, error) {
	read := func(dir string, unit float64) (device.Freq, error) {
		path := filepath.Join(dir, "min_freq")
		raw, err := os.ReadFile(path)
		if err != nil {
			return 0, fmt.Errorf("dvfs: read %s: %w", path, err)
		}
		v, err := strconv.ParseInt(strings.TrimSpace(string(raw)), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("dvfs: parse %s: %w", path, err)
		}
		return device.Freq(float64(v) * unit / 1e9), nil
	}
	var cfg device.Config
	var err error
	if cfg.CPU, err = read(b.paths.CPUDir, b.paths.CPUUnit); err != nil {
		return device.Config{}, err
	}
	if cfg.GPU, err = read(b.paths.GPUDir, b.paths.GPUUnit); err != nil {
		return device.Config{}, err
	}
	if cfg.Mem, err = read(b.paths.MemDir, b.paths.MemUnit); err != nil {
		return device.Config{}, err
	}
	return cfg, nil
}

// EmulateTree creates a sysfs-like directory tree under root with min/max
// frequency files for all three units, initialized to the given
// configuration, and returns ready-to-use paths. Used by tests, examples and
// demos that have no real board.
func EmulateTree(root string, initial device.Config) (SysfsPaths, error) {
	paths := SysfsPaths{
		CPUDir:  filepath.Join(root, "devices", "system", "cpu", "cpu0", "cpufreq"),
		GPUDir:  filepath.Join(root, "devices", "gpu.0", "devfreq", "17000000.gv11b"),
		MemDir:  filepath.Join(root, "kernel", "emc"),
		CPUUnit: 1e3, // kHz, as cpufreq uses
		GPUUnit: 1,   // Hz
		MemUnit: 1,   // Hz
	}
	for _, dir := range []string{paths.CPUDir, paths.GPUDir, paths.MemDir} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return SysfsPaths{}, fmt.Errorf("dvfs: emulate tree: %w", err)
		}
	}
	b := &SysfsBackend{paths: paths}
	if err := b.Apply(initial); err != nil {
		return SysfsPaths{}, err
	}
	return paths, nil
}
