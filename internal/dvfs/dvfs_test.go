package dvfs

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bofl/internal/device"
)

func TestSimBackendApplyAndCurrent(t *testing.T) {
	dev := device.JetsonAGX()
	b, err := NewSimBackend(dev.Space())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Current(); !errors.Is(err, ErrNotApplied) {
		t.Errorf("Current before Apply: %v, want ErrNotApplied", err)
	}
	cfg := dev.Space().Max()
	if err := b.Apply(cfg); err != nil {
		t.Fatal(err)
	}
	got, err := b.Current()
	if err != nil {
		t.Fatal(err)
	}
	if got != cfg {
		t.Errorf("Current = %+v, want %+v", got, cfg)
	}
}

func TestSimBackendRejectsForeignConfig(t *testing.T) {
	dev := device.JetsonAGX()
	b, err := NewSimBackend(dev.Space())
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Apply(device.Config{CPU: 9, GPU: 9, Mem: 9}); err == nil {
		t.Error("foreign config accepted")
	}
}

func TestSimBackendCountsDistinctSwitches(t *testing.T) {
	dev := device.JetsonAGX()
	b, err := NewSimBackend(dev.Space())
	if err != nil {
		t.Fatal(err)
	}
	s := dev.Space()
	a, bb := s.Max(), s.Min()
	for _, cfg := range []device.Config{a, a, bb, bb, a} {
		if err := b.Apply(cfg); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.ApplyCount(); got != 3 {
		t.Errorf("ApplyCount = %d, want 3 (re-applying the same config is free)", got)
	}
}

func TestNewSimBackendValidatesSpace(t *testing.T) {
	if _, err := NewSimBackend(device.Space{}); err == nil {
		t.Error("empty space accepted")
	}
}

func TestSysfsBackendRoundTrip(t *testing.T) {
	root := t.TempDir()
	initial := device.Config{CPU: 2.26, GPU: 1.38, Mem: 2.13}
	paths, err := EmulateTree(root, initial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSysfsBackend(paths)
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.Current()
	if err != nil {
		t.Fatal(err)
	}
	near := func(a, b device.Freq) bool { return math.Abs(float64(a-b)) < 1e-6 }
	if !near(got.CPU, initial.CPU) || !near(got.GPU, initial.GPU) || !near(got.Mem, initial.Mem) {
		t.Errorf("Current = %+v, want %+v", got, initial)
	}

	next := device.Config{CPU: 0.42, GPU: 0.11, Mem: 0.20}
	if err := b.Apply(next); err != nil {
		t.Fatal(err)
	}
	got, err = b.Current()
	if err != nil {
		t.Fatal(err)
	}
	if !near(got.CPU, next.CPU) || !near(got.GPU, next.GPU) || !near(got.Mem, next.Mem) {
		t.Errorf("after Apply: %+v, want %+v", got, next)
	}
}

func TestSysfsBackendWritesBothMinAndMax(t *testing.T) {
	root := t.TempDir()
	paths, err := EmulateTree(root, device.Config{CPU: 1.0, GPU: 0.5, Mem: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range []string{paths.CPUDir, paths.GPUDir, paths.MemDir} {
		minRaw, err := os.ReadFile(filepath.Join(dir, "min_freq"))
		if err != nil {
			t.Fatal(err)
		}
		maxRaw, err := os.ReadFile(filepath.Join(dir, "max_freq"))
		if err != nil {
			t.Fatal(err)
		}
		if string(minRaw) != string(maxRaw) {
			t.Errorf("%s: min %q != max %q — clock not pinned", dir, minRaw, maxRaw)
		}
	}
}

func TestSysfsBackendUnitConversion(t *testing.T) {
	// cpufreq files hold kHz: 1.5 GHz = 1_500_000 kHz.
	root := t.TempDir()
	paths, err := EmulateTree(root, device.Config{CPU: 1.5, GPU: 1.0, Mem: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(paths.CPUDir, "min_freq"))
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(raw)); got != "1500000" {
		t.Errorf("cpu min_freq = %q, want 1500000 (kHz)", got)
	}
	// devfreq files hold Hz.
	raw, err = os.ReadFile(filepath.Join(paths.GPUDir, "min_freq"))
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(raw)); got != "1000000000" {
		t.Errorf("gpu min_freq = %q, want 1000000000 (Hz)", got)
	}
}

func TestNewSysfsBackendValidation(t *testing.T) {
	if _, err := NewSysfsBackend(SysfsPaths{CPUDir: "/nonexistent", GPUDir: "/nonexistent", MemDir: "/nonexistent", CPUUnit: 1, GPUUnit: 1, MemUnit: 1}); err == nil {
		t.Error("missing dirs accepted")
	}
	root := t.TempDir()
	paths, err := EmulateTree(root, device.Config{CPU: 1, GPU: 1, Mem: 1})
	if err != nil {
		t.Fatal(err)
	}
	paths.CPUUnit = 0
	if _, err := NewSysfsBackend(paths); err == nil {
		t.Error("zero unit accepted")
	}
}

func TestSysfsBackendCorruptFile(t *testing.T) {
	root := t.TempDir()
	paths, err := EmulateTree(root, device.Config{CPU: 1, GPU: 1, Mem: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSysfsBackend(paths)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(paths.CPUDir, "min_freq"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Current(); err == nil {
		t.Error("corrupt sysfs value accepted")
	}
}
