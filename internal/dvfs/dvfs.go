// Package dvfs actuates hardware clock frequencies. It is the simulated
// counterpart of the paper's DVFS controller (module 3 in Figure 8), which on
// a real Jetson board writes frequencies into sysfs kernel files such as
// /sys/devices/*/devfreq/*/min_freq and max_freq.
//
// Two backends are provided behind one interface: SimBackend applies
// configurations to the in-process device simulator, and SysfsBackend
// reads/writes real sysfs-style files — usable against an actual board or an
// emulated tree rooted in any directory (which is how its tests run).
package dvfs

import (
	"errors"
	"fmt"
	"sync"

	"bofl/internal/device"
)

// Backend applies DVFS configurations to hardware (or a simulator) and
// reports the currently applied configuration.
type Backend interface {
	// Apply sets the CPU, GPU and memory-controller clocks.
	Apply(cfg device.Config) error
	// Current returns the configuration most recently applied.
	Current() (device.Config, error)
}

// ErrNotApplied indicates Current was called before any Apply.
var ErrNotApplied = errors.New("dvfs: no configuration applied yet")

// SimBackend is an in-memory backend bound to a simulated device's space. It
// validates that configurations are legal operating points for the device.
type SimBackend struct {
	space device.Space

	mu      sync.Mutex
	current device.Config
	applied bool
	// applyCount counts Apply calls; the controller uses few switches per
	// round, and tests assert on this to catch actuation churn.
	applyCount int
}

var _ Backend = (*SimBackend)(nil)

// NewSimBackend creates a backend for the given DVFS space.
func NewSimBackend(space device.Space) (*SimBackend, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	return &SimBackend{space: space}, nil
}

// Apply validates cfg against the space and records it.
func (b *SimBackend) Apply(cfg device.Config) error {
	if _, err := b.space.Index(cfg); err != nil {
		return fmt.Errorf("dvfs: %w", err)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.applied || b.current != cfg {
		b.applyCount++
	}
	b.current = cfg
	b.applied = true
	return nil
}

// Current returns the last applied configuration.
func (b *SimBackend) Current() (device.Config, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.applied {
		return device.Config{}, ErrNotApplied
	}
	return b.current, nil
}

// ApplyCount reports how many distinct configuration switches have occurred.
func (b *SimBackend) ApplyCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.applyCount
}
