package core

import "bofl/internal/obs"

// Telemetry is attached to a controller after construction (SetSink) rather
// than through Options: Options is part of the public API surface and its
// snapshot/JSON round-trip, while a sink is process-local wiring.

// sinkSettable is implemented by MBO strategies that accept a telemetry sink.
type sinkSettable interface{ SetSink(obs.Sink) }

// SetSink installs a telemetry sink on the controller and its optimizer.
// Passing nil restores the no-op sink. Safe to call at any time between
// rounds; not synchronized against a concurrently running round.
func (c *Controller) SetSink(s obs.Sink) {
	c.sink = obs.OrNop(s)
	c.pushSink()
	c.sink.SetGauge(obs.MetricControllerPhase, float64(c.phase))
}

// pushSink re-propagates the sink to the optimizer; called after every site
// that rebuilds the suggester (construction, drift re-adaptation, restore).
func (c *Controller) pushSink() {
	if ss, ok := c.optimizer.(sinkSettable); ok {
		ss.SetSink(c.sink)
	}
}

// setPhase transitions the controller phase, emitting a trace instant and
// refreshing the phase gauge.
func (c *Controller) setPhase(p Phase) {
	if p == c.phase {
		return
	}
	from := c.phase
	c.phase = p
	c.sink.Event("bofl_phase_transition", obs.L("from", from.String()), obs.L("to", p.String()))
	c.sink.SetGauge(obs.MetricControllerPhase, float64(p))
}

// recordRound folds one completed round into the domain instruments.
func (c *Controller) recordRound(r RoundReport) {
	c.sink.Count(obs.MetricRounds, 1)
	c.sink.Observe(obs.MetricRoundEnergy, r.Energy)
	c.sink.Observe(obs.MetricRoundDuration, r.Duration)
	if !r.DeadlineMet {
		c.sink.Count(obs.MetricDeadlineMisses, 1)
	}
	c.sink.SetGauge(obs.MetricControllerPhase, float64(c.phase))
	c.sink.SetGauge(obs.MetricFrontSize, float64(r.FrontSize))
	phase := obs.L("phase", r.Phase.String())
	c.sink.Count(obs.MetricPhaseEnergy, r.Energy, phase)
	c.sink.Count(obs.MetricPhaseLatency, r.Duration, phase)
}
