package core

import (
	"testing"

	"bofl/internal/device"
)

// guardianStats drives one controller through tight-deadline rounds and
// counts deadline misses.
func guardianStats(t *testing.T, disable bool, seed int64) (misses, rounds int) {
	t.Helper()
	dev := device.JetsonAGX()
	space := smallSpace()
	c, err := New(space, Options{
		Seed:            seed,
		Tau:             2,
		DisableGuardian: disable,
		MBORestarts:     1,
		MBOIters:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	xmaxLat, err := dev.Latency(device.ViT, space.Max())
	if err != nil {
		t.Fatal(err)
	}
	exec := newSimExec(t, dev, device.ViT, seed+500)
	const nRounds = 12
	// Tight deadlines (1.1–1.5 × T_min) are exactly the regime where a
	// guardian-less explorer gets caught mid-exploration.
	deadlines := mkDeadlines(xmaxLat*60*1.1, 1.36, nRounds, seed+9)
	for r := 0; r < nRounds; r++ {
		rep, err := c.RunRound(60, deadlines[r], exec)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.DeadlineMet {
			misses++
		}
		if _, err := c.BetweenRounds(); err != nil {
			t.Fatal(err)
		}
	}
	return misses, nRounds
}

func TestGuardianAblationPreventsMisses(t *testing.T) {
	// The §4.2 design claim quantified: with the guardian the controller
	// never misses, without it the same tight deadlines produce misses.
	var withMisses, withoutMisses int
	for seed := int64(0); seed < 4; seed++ {
		m, _ := guardianStats(t, false, seed)
		withMisses += m
		m, _ = guardianStats(t, true, seed)
		withoutMisses += m
	}
	if withMisses != 0 {
		t.Errorf("guardian enabled: %d misses, want 0", withMisses)
	}
	if withoutMisses == 0 {
		t.Error("guardian disabled: zero misses — the ablation regime is not tight enough to be informative")
	}
}
