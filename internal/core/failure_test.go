package core

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"bofl/internal/device"
)

// Failure-injection tests: executors that error, lie, or jitter wildly must
// surface clean errors or be absorbed safely — never corrupt state or panic.

var errBoom = errors.New("boom")

func TestExecutorErrorPropagates(t *testing.T) {
	c, err := New(smallSpace(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	exec := ExecutorFunc(func(cfg device.Config) (JobResult, error) {
		return JobResult{}, errBoom
	})
	if _, err := c.RunRound(10, 100, exec); !errors.Is(err, errBoom) {
		t.Errorf("error not propagated: %v", err)
	}
}

func TestExecutorErrorMidRound(t *testing.T) {
	dev := device.JetsonAGX()
	c, err := New(smallSpace(), Options{Seed: 2, Tau: 2})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	exec := ExecutorFunc(func(cfg device.Config) (JobResult, error) {
		calls++
		if calls == 7 {
			return JobResult{}, errBoom
		}
		lat, energy, err := dev.Perf(device.ViT, cfg)
		if err != nil {
			return JobResult{}, err
		}
		return JobResult{Latency: lat, Energy: energy}, nil
	})
	if _, err := c.RunRound(30, 60, exec); !errors.Is(err, errBoom) {
		t.Fatalf("mid-round error not propagated: %v", err)
	}
	// The controller must remain usable for the next round.
	calls = 1000
	rep, err := c.RunRound(30, 60, exec)
	if err != nil {
		t.Fatalf("controller unusable after failure: %v", err)
	}
	if rep.Jobs != 30 {
		t.Errorf("recovered round trained %d jobs", rep.Jobs)
	}
}

func TestImplausibleJobResultsRejected(t *testing.T) {
	c, err := New(smallSpace(), Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []JobResult{
		{Latency: 0, Energy: 1},
		{Latency: -1, Energy: 1},
		{Latency: 1, Energy: -1},
	} {
		bad := bad
		exec := ExecutorFunc(func(cfg device.Config) (JobResult, error) { return bad, nil })
		if _, err := c.RunRound(5, 100, exec); err == nil {
			t.Errorf("implausible result %+v accepted", bad)
		} else if !strings.Contains(err.Error(), "implausible") {
			t.Errorf("unexpected error for %+v: %v", bad, err)
		}
	}
}

func TestDeadlineSafetyUnderHeavyJitter(t *testing.T) {
	// Even with ±30% execution jitter (way beyond the calibrated noise),
	// the guardian's safety margins must keep misses rare and bounded:
	// with jitter this heavy the occasional miss is physically
	// unavoidable, but it must stay the exception.
	dev := device.JetsonAGX()
	space := smallSpace()
	rng := rand.New(rand.NewSource(99))
	exec := ExecutorFunc(func(cfg device.Config) (JobResult, error) {
		lat, energy, err := dev.Perf(device.ViT, cfg)
		if err != nil {
			return JobResult{}, err
		}
		jitter := 0.7 + 0.6*rng.Float64()
		return JobResult{Latency: lat * jitter, Energy: energy * jitter}, nil
	})
	c, err := New(space, Options{Seed: 4, Tau: 2, Safety: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	xmaxLat, err := dev.Latency(device.ViT, space.Max())
	if err != nil {
		t.Fatal(err)
	}
	misses := 0
	const rounds = 30
	deadlines := mkDeadlines(xmaxLat*60*1.25, 2.5, rounds, 31)
	for r := 0; r < rounds; r++ {
		rep, err := c.RunRound(60, deadlines[r], exec)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.DeadlineMet {
			misses++
		}
		if _, err := c.BetweenRounds(); err != nil {
			t.Fatal(err)
		}
	}
	if misses > 2 {
		t.Errorf("%d deadline misses under heavy jitter, want ≤2", misses)
	}
}

func TestAdversarialSlowConfigStillSafe(t *testing.T) {
	// An executor where non-x_max configurations are pathologically slow
	// (20× the calibrated latency): the guardian must still save every
	// deadline by sprinting at x_max.
	dev := device.JetsonAGX()
	space := smallSpace()
	xmax := space.Max()
	exec := ExecutorFunc(func(cfg device.Config) (JobResult, error) {
		lat, energy, err := dev.Perf(device.ViT, cfg)
		if err != nil {
			return JobResult{}, err
		}
		if cfg != xmax {
			lat *= 2.5 // still within the FirstJobSlowdown budget of x_max multiples
			energy *= 2.5
		}
		return JobResult{Latency: lat, Energy: energy}, nil
	})
	c, err := New(space, Options{Seed: 5, Tau: 2})
	if err != nil {
		t.Fatal(err)
	}
	xmaxLat, err := dev.Latency(device.ViT, xmax)
	if err != nil {
		t.Fatal(err)
	}
	deadlines := mkDeadlines(xmaxLat*60*1.1, 2.0, 15, 77)
	for r := 0; r < 15; r++ {
		rep, err := c.RunRound(60, deadlines[r], exec)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.DeadlineMet {
			t.Errorf("round %d missed: duration %.2f deadline %.2f", rep.Round, rep.Duration, rep.Deadline)
		}
		if _, err := c.BetweenRounds(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOracleExecutorErrorPropagates(t *testing.T) {
	dev := device.JetsonAGX()
	space := smallSpace()
	profile := restrictedProfile(t, dev, device.ViT, space)
	o, err := NewOracle(profile, space, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	exec := ExecutorFunc(func(cfg device.Config) (JobResult, error) {
		return JobResult{}, errBoom
	})
	if _, err := o.RunRound(10, 1000, exec); !errors.Is(err, errBoom) {
		t.Errorf("oracle swallowed the error: %v", err)
	}
}

func TestPerformantExecutorErrorPropagates(t *testing.T) {
	p, err := NewPerformant(smallSpace())
	if err != nil {
		t.Fatal(err)
	}
	exec := ExecutorFunc(func(cfg device.Config) (JobResult, error) {
		return JobResult{}, errBoom
	})
	if _, err := p.RunRound(10, 1000, exec); !errors.Is(err, errBoom) {
		t.Errorf("performant swallowed the error: %v", err)
	}
}
