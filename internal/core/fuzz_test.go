package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bofl/internal/device"
)

// Property fuzz: for arbitrary (seeded) executor behaviours within physical
// bounds — random latency landscapes, random noise, random deadline ratios —
// the controller must always complete every job with consistent accounting
// and never panic. Deadline safety is asserted only when the landscape is
// noise-free (with unbounded noise a miss can be genuinely unavoidable).

// randomLandscape builds a consistent synthetic landscape: each flat index
// maps to a fixed latency/energy drawn once, with latency bounded within
// [lat(xmax), slowBound·lat(xmax)].
type randomLandscape struct {
	lat, energy []float64
	space       device.Space
	noise       float64
	rng         *rand.Rand
}

func newRandomLandscape(space device.Space, seed int64, slowBound, noise float64) *randomLandscape {
	rng := rand.New(rand.NewSource(seed))
	n := space.Size()
	l := &randomLandscape{
		lat:    make([]float64, n),
		energy: make([]float64, n),
		space:  space,
		noise:  noise,
		rng:    rng,
	}
	base := 0.2
	xmaxIdx := n - 1 // CPU-major layout puts x_max at the last flat index
	for i := 0; i < n; i++ {
		l.lat[i] = base * (1 + rng.Float64()*(slowBound-1))
		l.energy[i] = 1 + rng.Float64()*6
	}
	l.lat[xmaxIdx] = base // x_max is the fastest point, as on real hardware
	return l
}

func (l *randomLandscape) exec() Executor {
	return ExecutorFunc(func(cfg device.Config) (JobResult, error) {
		idx, err := l.space.Index(cfg)
		if err != nil {
			return JobResult{}, err
		}
		jitter := 1.0
		if l.noise > 0 {
			jitter = math.Exp(l.noise * l.rng.NormFloat64())
		}
		return JobResult{Latency: l.lat[idx] * jitter, Energy: l.energy[idx] * jitter}, nil
	})
}

func TestControllerFuzzRandomLandscapes(t *testing.T) {
	space := smallSpace()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		slowBound := 1.5 + rng.Float64()*6 // up to 7.5× slower than x_max
		noise := rng.Float64() * 0.04
		land := newRandomLandscape(space, seed, slowBound, noise)
		opts := Options{
			Seed:             seed,
			Tau:              1 + rng.Float64()*3,
			Safety:           1.03 + rng.Float64()*0.1,
			FirstJobSlowdown: slowBound * 1.3,
			MBORestarts:      1,
			MBOIters:         2,
		}
		c, err := New(space, opts)
		if err != nil {
			return false
		}
		jobs := 20 + rng.Intn(60)
		tminTrue := 0.2 * float64(jobs)
		exec := land.exec()
		for r := 0; r < 12; r++ {
			deadline := tminTrue * (1.15 + rng.Float64()*2)
			rep, err := c.RunRound(jobs, deadline, exec)
			if err != nil {
				t.Logf("seed %d round %d: %v", seed, r, err)
				return false
			}
			if rep.Jobs != jobs {
				t.Logf("seed %d: %d jobs reported", seed, rep.Jobs)
				return false
			}
			if rep.Energy <= 0 || rep.Duration <= 0 {
				t.Logf("seed %d: degenerate accounting %+v", seed, rep)
				return false
			}
			if noise == 0 && !rep.DeadlineMet {
				t.Logf("seed %d round %d: noise-free miss (used %.2f, ddl %.2f, phase %v)",
					seed, r, rep.Duration, rep.Deadline, rep.Phase)
				return false
			}
			if _, err := c.BetweenRounds(); err != nil {
				t.Logf("seed %d: between rounds: %v", seed, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestControllerNoiseFreeDeadlineInvariant(t *testing.T) {
	// Dedicated sweep of the strongest safety claim: with noise-free
	// execution, no deadline is ever missed across many landscapes.
	space := smallSpace()
	for seed := int64(100); seed < 130; seed++ {
		land := newRandomLandscape(space, seed, 6, 0)
		c, err := New(space, Options{Seed: seed, Tau: 2, FirstJobSlowdown: 8, MBORestarts: 1, MBOIters: 2})
		if err != nil {
			t.Fatal(err)
		}
		exec := land.exec()
		jobs := 50
		tmin := 0.2 * float64(jobs)
		for r := 0; r < 10; r++ {
			deadline := tmin * (1.1 + float64(r%5)*0.4)
			rep, err := c.RunRound(jobs, deadline, exec)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.DeadlineMet {
				t.Fatalf("seed %d round %d: noise-free deadline miss (used %.2f of %.2f, phase %v)",
					seed, r, rep.Duration, rep.Deadline, rep.Phase)
			}
			if _, err := c.BetweenRounds(); err != nil {
				t.Fatal(err)
			}
		}
	}
}
