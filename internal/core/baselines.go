package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"bofl/internal/device"
	"bofl/internal/ilp"
	"bofl/internal/pareto"
)

// Performant is the paper's default real-time baseline: every job runs at
// x_max, guaranteeing deadlines at maximal energy cost (§6.1).
type Performant struct {
	xmax device.Config
}

var _ PaceController = (*Performant)(nil)

// NewPerformant builds the baseline for a DVFS space.
func NewPerformant(space device.Space) (*Performant, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	return &Performant{xmax: space.Max()}, nil
}

// RunRound executes every job at x_max.
func (p *Performant) RunRound(jobs int, deadline float64, exec Executor) (RoundReport, error) {
	if jobs <= 0 {
		return RoundReport{}, ErrNoJobs
	}
	var duration, energy float64
	for j := 0; j < jobs; j++ {
		res, err := exec.RunJob(p.xmax)
		if err != nil {
			return RoundReport{}, err
		}
		duration += res.Latency
		energy += res.Energy
	}
	return RoundReport{
		Jobs:        jobs,
		Deadline:    deadline,
		Duration:    duration,
		Energy:      energy,
		DeadlineMet: duration <= deadline,
	}, nil
}

// BetweenRounds is a no-op.
func (p *Performant) BetweenRounds() (MBOReport, error) { return MBOReport{}, nil }

// Oracle exploits a complete offline profile of the true (noise-free)
// objective functions: it solves the exploitation ILP over the true Pareto
// set every round and never explores. It is unattainable in practice (§6.1)
// and serves as the lower bound for BoFL's regret.
type Oracle struct {
	space   device.Space
	front   []int // flat indices of the true Pareto set
	latency map[int]float64
	energy  map[int]float64
	xmaxIdx int
	safety  float64
}

var _ PaceController = (*Oracle)(nil)

// NewOracle builds an oracle from an offline profile. safety inflates
// predicted times in the ILP to absorb measurement noise during execution
// (use 1.0 for a noise-free executor).
func NewOracle(profile *device.Profile, space device.Space, safety float64) (*Oracle, error) {
	if profile == nil || len(profile.Points) == 0 {
		return nil, errors.New("core: empty oracle profile")
	}
	if safety < 1 {
		return nil, fmt.Errorf("core: oracle safety %v must be ≥ 1", safety)
	}
	xmaxIdx, err := space.Index(space.Max())
	if err != nil {
		return nil, err
	}
	o := &Oracle{
		space:   space,
		front:   profile.ParetoFront(),
		latency: make(map[int]float64, len(profile.Points)),
		energy:  make(map[int]float64, len(profile.Points)),
		xmaxIdx: xmaxIdx,
		safety:  safety,
	}
	frontIdx := make([]int, len(o.front))
	for k, j := range o.front {
		frontIdx[k] = profile.Points[j].Index
	}
	o.front = frontIdx
	for _, pt := range profile.Points {
		o.latency[pt.Index] = pt.Latency
		o.energy[pt.Index] = pt.Energy
	}
	return o, nil
}

// RunRound solves and executes the optimal blend for the round.
func (o *Oracle) RunRound(jobs int, deadline float64, exec Executor) (RoundReport, error) {
	if jobs <= 0 {
		return RoundReport{}, ErrNoJobs
	}
	rs := &roundState{remaining: jobs, timeLeft: deadline, exec: exec}
	for rs.remaining > 0 {
		opts := make([]ilp.Option, len(o.front))
		for k, idx := range o.front {
			opts[k] = ilp.Option{Time: o.latency[idx] * o.safety, Energy: o.energy[idx]}
		}
		plan, err := ilp.Solve(opts, rs.remaining, rs.timeLeft)
		if errors.Is(err, ilp.ErrInfeasible) {
			// Degenerate deadline: sprint at x_max.
			for rs.remaining > 0 {
				res, err := exec.RunJob(o.space.Max())
				if err != nil {
					return RoundReport{}, err
				}
				rs.remaining--
				rs.timeLeft -= res.Latency
				rs.duration += res.Latency
				rs.energy += res.Energy
			}
			break
		}
		if err != nil {
			return RoundReport{}, err
		}
		if err := o.execute(rs, plan, exec); err != nil {
			return RoundReport{}, err
		}
	}
	return RoundReport{
		Phase:       PhaseExploit,
		Jobs:        jobs,
		Deadline:    deadline,
		Duration:    rs.duration,
		Energy:      rs.energy,
		DeadlineMet: rs.duration <= deadline,
	}, nil
}

func (o *Oracle) execute(rs *roundState, plan ilp.Assignment, exec Executor) error {
	type slot struct {
		idx   int
		count int
		pred  float64
	}
	slots := make([]slot, 0, len(o.front))
	for k, idx := range o.front {
		if plan.Counts[k] > 0 {
			slots = append(slots, slot{idx: idx, count: plan.Counts[k], pred: o.latency[idx] * o.safety})
		}
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i].pred > slots[j].pred })
	plannedRemaining := 0.0
	for _, s := range slots {
		plannedRemaining += float64(s.count) * s.pred
	}
	for _, s := range slots {
		cfg, err := o.space.Config(s.idx)
		if err != nil {
			return err
		}
		for j := 0; j < s.count && rs.remaining > 0; j++ {
			res, err := exec.RunJob(cfg)
			if err != nil {
				return err
			}
			rs.remaining--
			rs.timeLeft -= res.Latency
			rs.duration += res.Latency
			rs.energy += res.Energy
			plannedRemaining -= s.pred
			if plannedRemaining > rs.timeLeft {
				return nil // drift: caller re-solves
			}
		}
	}
	return nil
}

// BetweenRounds is a no-op: the oracle's profiling happened offline.
func (o *Oracle) BetweenRounds() (MBOReport, error) { return MBOReport{}, nil }

// TrueFront exposes the oracle's Pareto front as (energy, latency) points —
// the red stars of Figure 11.
func (o *Oracle) TrueFront() []pareto.Point {
	out := make([]pareto.Point, len(o.front))
	for k, idx := range o.front {
		out[k] = pareto.Point{X: o.energy[idx], Y: o.latency[idx]}
	}
	return out
}

// RandomExplorer is an ablation controller: it explores uniformly random
// configurations (with the same deadline guardian machinery as BoFL) and
// never switches to model-guided search. Comparing it against BoFL isolates
// the value of the Bayesian suggestions.
type RandomExplorer struct {
	inner *Controller
	rng   *rand.Rand
}

var _ PaceController = (*RandomExplorer)(nil)

// NewRandomExplorer builds the ablation controller.
func NewRandomExplorer(space device.Space, opts Options, seed int64) (*RandomExplorer, error) {
	inner, err := New(space, opts)
	if err != nil {
		return nil, err
	}
	return &RandomExplorer{inner: inner, rng: rand.New(rand.NewSource(seed))}, nil
}

// RunRound delegates to the BoFL round machinery.
func (r *RandomExplorer) RunRound(jobs int, deadline float64, exec Executor) (RoundReport, error) {
	return r.inner.RunRound(jobs, deadline, exec)
}

// BetweenRounds replaces MBO suggestions with uniform random unexplored
// candidates of the same batch size, and applies the same stopping rule on
// explored volume (but cannot use hypervolume gain, having no model).
func (r *RandomExplorer) BetweenRounds() (MBOReport, error) {
	c := r.inner
	if c.phase != PhaseParetoConstruct {
		return MBOReport{}, nil
	}
	exploredFrac := float64(len(c.observed)) / float64(len(c.candidates))
	if exploredFrac >= 2*c.opts.MinExploredFrac {
		c.phase = PhaseExploit
		return MBOReport{Ran: true, StoppedConstruction: true}, nil
	}
	k := c.batchSize()
	c.queue = c.queue[:0]
	for len(c.queue) < k {
		idx := r.rng.Intn(len(c.candidates))
		if _, seen := c.observed[idx]; !seen {
			c.queue = append(c.queue, idx)
		}
	}
	return MBOReport{Ran: true, SuggestionCount: len(c.queue)}, nil
}

// Explored reports distinct configurations observed.
func (r *RandomExplorer) Explored() int { return r.inner.NumExplored() }

// Front exposes the observed Pareto front.
func (r *RandomExplorer) Front() []pareto.Point { return r.inner.Front() }

// LinearPace is a SmartPC-style baseline (§2.1): it models latency as a
// linear function of a single axis (the GPU clock, with CPU and memory pinned
// at maximum), measures the two extremes once, and then picks the slowest
// single configuration its linear model predicts will meet each deadline.
// Its failure mode is exactly the paper's critique: the true response is
// neither linear nor one-dimensional.
type LinearPace struct {
	space    device.Space
	safety   float64
	measured bool
	tFast    float64 // measured latency at max GPU clock
	tSlow    float64 // measured latency at min GPU clock
}

var _ PaceController = (*LinearPace)(nil)

// NewLinearPace builds the baseline.
func NewLinearPace(space device.Space, safety float64) (*LinearPace, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if safety < 1 {
		return nil, fmt.Errorf("core: linear-pace safety %v must be ≥ 1", safety)
	}
	return &LinearPace{space: space, safety: safety}, nil
}

// RunRound calibrates on first use, then runs all jobs at the predicted
// slowest feasible GPU step (re-checking against the measured pace and
// sprinting to x_max if the linear model proves optimistic).
func (l *LinearPace) RunRound(jobs int, deadline float64, exec Executor) (RoundReport, error) {
	if jobs <= 0 {
		return RoundReport{}, ErrNoJobs
	}
	var duration, energy float64
	remaining := jobs
	timeLeft := deadline
	run := func(cfg device.Config) error {
		res, err := exec.RunJob(cfg)
		if err != nil {
			return err
		}
		remaining--
		timeLeft -= res.Latency
		duration += res.Latency
		energy += res.Energy
		return nil
	}
	xmax := l.space.Max()
	slowest := device.Config{CPU: xmax.CPU, GPU: l.space.GPU[0], Mem: xmax.Mem}

	if !l.measured {
		// One calibration job at each extreme.
		before := duration
		if err := run(xmax); err != nil {
			return RoundReport{}, err
		}
		l.tFast = duration - before
		before = duration
		if err := run(slowest); err != nil {
			return RoundReport{}, err
		}
		l.tSlow = duration - before
		l.measured = true
	}

	// Linear model: t(f) = tFast + (tSlow − tFast)·(fMax − f)/(fMax − fMin).
	// Choose the smallest f whose predicted time fits the budget.
	cfg := xmax
	for i := 0; i < len(l.space.GPU) && len(l.space.GPU) > 1; i++ {
		f := l.space.GPU[i]
		frac := float64(xmax.GPU-f) / float64(xmax.GPU-l.space.GPU[0])
		pred := l.tFast + (l.tSlow-l.tFast)*frac
		if pred*l.safety*float64(remaining) <= timeLeft {
			cfg = device.Config{CPU: xmax.CPU, GPU: f, Mem: xmax.Mem}
			break
		}
	}
	for remaining > 0 {
		if err := run(cfg); err != nil {
			return RoundReport{}, err
		}
		// The linear prediction is unreliable; guard with the measured
		// fast pace.
		if cfg != xmax && timeLeft < float64(remaining)*l.tFast*l.safety*1.2 {
			cfg = xmax
		}
	}
	return RoundReport{
		Jobs:        jobs,
		Deadline:    deadline,
		Duration:    duration,
		Energy:      energy,
		DeadlineMet: duration <= deadline,
	}, nil
}

// BetweenRounds is a no-op.
func (l *LinearPace) BetweenRounds() (MBOReport, error) { return MBOReport{}, nil }
