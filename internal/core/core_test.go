package core

import (
	"errors"
	"math"
	"testing"

	"bofl/internal/device"
	"bofl/internal/pareto"
)

// simExec is an Executor backed by the device simulator with measurement
// noise, mirroring what the FL layer wires up.
type simExec struct {
	t     *testing.T
	meter *device.Meter
	w     device.Workload
	// jobsRun and energy are accumulated for assertions.
	jobsRun int
	energy  float64
}

func newSimExec(t *testing.T, dev *device.Device, w device.Workload, seed int64) *simExec {
	t.Helper()
	return &simExec{t: t, meter: device.NewMeter(dev, device.DefaultNoise(), seed), w: w}
}

func (e *simExec) RunJob(cfg device.Config) (JobResult, error) {
	m, err := e.meter.Measure(e.w, cfg, 0.25) // single-job observation
	if err != nil {
		return JobResult{}, err
	}
	e.jobsRun++
	e.energy += m.Energy
	return JobResult{Latency: m.Latency, Energy: m.Energy}, nil
}

// smallSpace is a reduced DVFS space that keeps controller tests fast while
// preserving the 3-D structure.
func smallSpace() device.Space {
	full := device.JetsonAGX().Space()
	return device.Space{
		CPU: []device.Freq{full.CPU[0], full.CPU[8], full.CPU[16], full.CPU[24]},
		GPU: []device.Freq{full.GPU[0], full.GPU[4], full.GPU[9], full.GPU[13]},
		Mem: []device.Freq{full.Mem[0], full.Mem[3], full.Mem[5]},
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(device.Space{}, Options{}); err == nil {
		t.Error("empty space accepted")
	}
	if _, err := New(smallSpace(), Options{Tau: -1}); err == nil {
		t.Error("negative tau accepted")
	}
	if _, err := New(smallSpace(), Options{Safety: 0.5}); err == nil {
		t.Error("safety < 1 accepted")
	}
	if _, err := New(smallSpace(), Options{StartFrac: 2}); err == nil {
		t.Error("start fraction > 1 accepted")
	}
	if _, err := New(smallSpace(), Options{FirstJobSlowdown: 0.5}); err == nil {
		t.Error("slowdown bound < 1 accepted")
	}
}

func TestRunRoundValidation(t *testing.T) {
	c, err := New(smallSpace(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	exec := newSimExec(t, device.JetsonAGX(), device.ViT, 1)
	if _, err := c.RunRound(0, 10, exec); !errors.Is(err, ErrNoJobs) {
		t.Errorf("zero jobs: %v", err)
	}
	if _, err := c.RunRound(10, -1, exec); err == nil {
		t.Error("negative deadline accepted")
	}
}

func TestControllerStartsWithXmax(t *testing.T) {
	dev := device.JetsonAGX()
	space := smallSpace()
	c, err := New(space, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var first device.Config
	got := false
	exec := ExecutorFunc(func(cfg device.Config) (JobResult, error) {
		if !got {
			first, got = cfg, true
		}
		lat, energy, err := dev.Perf(device.ViT, cfg)
		if err != nil {
			return JobResult{}, err
		}
		return JobResult{Latency: lat, Energy: energy}, nil
	})
	if _, err := c.RunRound(40, 60, exec); err != nil {
		t.Fatal(err)
	}
	if first != space.Max() {
		t.Errorf("first configuration %+v, want x_max %+v", first, space.Max())
	}
}

// runTask drives a controller through a full FL task and returns reports.
func runTask(t *testing.T, ctrl PaceController, dev *device.Device, w device.Workload, jobs, rounds int, deadlines []float64, seed int64) []RoundReport {
	t.Helper()
	exec := newSimExec(t, dev, w, seed)
	out := make([]RoundReport, 0, rounds)
	for r := 0; r < rounds; r++ {
		rep, err := ctrl.RunRound(jobs, deadlines[r], exec)
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		out = append(out, rep)
		if _, err := ctrl.BetweenRounds(); err != nil {
			t.Fatalf("between rounds %d: %v", r, err)
		}
	}
	return out
}

func mkDeadlines(tmin, ratio float64, rounds int, seed int64) []float64 {
	// Simple LCG to avoid importing math/rand here.
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	out := make([]float64, rounds)
	for i := range out {
		state = state*6364136223846793005 + 1442695040888963407
		u := float64(state>>11) / float64(1<<53)
		out[i] = tmin * (1 + u*(ratio-1))
	}
	return out
}

func TestDeadlinesNeverViolated(t *testing.T) {
	// The paper's central safety claim (C3): every training deadline is
	// met, across random seeds, tasks and deadline tightness.
	dev := device.JetsonAGX()
	space := smallSpace()
	xmaxLat, err := dev.Latency(device.ViT, space.Max())
	if err != nil {
		t.Fatal(err)
	}
	const jobs = 60
	tmin := xmaxLat * jobs
	for _, ratio := range []float64{1.6, 2.0, 3.0} {
		for seed := int64(0); seed < 3; seed++ {
			// Cheap MBO settings: the property under test is deadline
			// safety, which must hold regardless of surrogate quality.
			c, err := New(space, Options{Seed: seed, Tau: 2, MBORestarts: 1, MBOIters: 2})
			if err != nil {
				t.Fatal(err)
			}
			deadlines := mkDeadlines(tmin*1.08, ratio, 20, seed+7)
			reports := runTask(t, c, dev, device.ViT, jobs, 20, deadlines, seed+100)
			for _, rep := range reports {
				if !rep.DeadlineMet {
					t.Errorf("ratio %v seed %d round %d: deadline %.2f exceeded (duration %.2f, phase %v)",
						ratio, seed, rep.Round, rep.Deadline, rep.Duration, rep.Phase)
				}
				if rep.Jobs != jobs {
					t.Errorf("round %d trained %d jobs, want %d", rep.Round, rep.Jobs, jobs)
				}
			}
		}
	}
}

func TestPhaseProgression(t *testing.T) {
	dev := device.JetsonAGX()
	space := smallSpace()
	c, err := New(space, Options{Seed: 5, Tau: 2})
	if err != nil {
		t.Fatal(err)
	}
	if c.Phase() != PhaseRandomExplore {
		t.Fatalf("initial phase %v", c.Phase())
	}
	xmaxLat, err := dev.Latency(device.ViT, space.Max())
	if err != nil {
		t.Fatal(err)
	}
	const jobs = 60
	deadlines := mkDeadlines(xmaxLat*jobs*1.1, 2.5, 30, 11)
	exec := newSimExec(t, dev, device.ViT, 50)
	var sawConstruct, sawExploit bool
	for r := 0; r < 30; r++ {
		if _, err := c.RunRound(jobs, deadlines[r], exec); err != nil {
			t.Fatal(err)
		}
		if _, err := c.BetweenRounds(); err != nil {
			t.Fatal(err)
		}
		switch c.Phase() {
		case PhaseParetoConstruct:
			sawConstruct = true
			if sawExploit {
				t.Fatal("phase went backwards from exploit")
			}
		case PhaseExploit:
			sawExploit = true
		}
	}
	if !sawConstruct {
		t.Error("never entered Pareto construction")
	}
	if !sawExploit {
		t.Error("never entered exploitation")
	}
	// Stopping condition honoured: at least 3% of the space explored.
	if frac := float64(c.NumExplored()) / float64(space.Size()); frac < 0.03 {
		t.Errorf("stopped after exploring only %.1f%% of the space", frac*100)
	}
}

func TestExploitationSavesEnergyVsPerformant(t *testing.T) {
	dev := device.JetsonAGX()
	space := smallSpace()
	xmaxLat, err := dev.Latency(device.ViT, space.Max())
	if err != nil {
		t.Fatal(err)
	}
	const jobs, rounds = 60, 30
	tmin := xmaxLat * jobs
	deadlines := mkDeadlines(tmin*1.1, 2.5, rounds, 13)

	bofl, err := New(space, Options{Seed: 2, Tau: 2})
	if err != nil {
		t.Fatal(err)
	}
	boflReports := runTask(t, bofl, dev, device.ViT, jobs, rounds, deadlines, 500)

	perf, err := NewPerformant(space)
	if err != nil {
		t.Fatal(err)
	}
	perfReports := runTask(t, perf, dev, device.ViT, jobs, rounds, deadlines, 500)

	// Compare the exploitation tail (skip the exploration prefix).
	var boflE, perfE float64
	for r := rounds / 2; r < rounds; r++ {
		boflE += boflReports[r].Energy
		perfE += perfReports[r].Energy
	}
	saving := 1 - boflE/perfE
	if saving < 0.10 {
		t.Errorf("BoFL exploitation saves only %.1f%% vs Performant, want >10%%", saving*100)
	}
}

func TestBoflRegretVsOracleIsSmall(t *testing.T) {
	dev := device.JetsonAGX()
	space := smallSpace()
	// Build the oracle profile restricted to the small space.
	profile := restrictedProfile(t, dev, device.ViT, space)
	oracle, err := NewOracle(profile, space, 1.05)
	if err != nil {
		t.Fatal(err)
	}
	xmaxLat, err := dev.Latency(device.ViT, space.Max())
	if err != nil {
		t.Fatal(err)
	}
	const jobs, rounds = 60, 40
	tmin := xmaxLat * jobs
	deadlines := mkDeadlines(tmin*1.1, 2.5, rounds, 17)

	bofl, err := New(space, Options{Seed: 4, Tau: 2})
	if err != nil {
		t.Fatal(err)
	}
	boflReports := runTask(t, bofl, dev, device.ViT, jobs, rounds, deadlines, 900)
	oracleReports := runTask(t, oracle, dev, device.ViT, jobs, rounds, deadlines, 900)

	var boflE, oracleE float64
	for r := rounds / 2; r < rounds; r++ { // steady state only
		boflE += boflReports[r].Energy
		oracleE += oracleReports[r].Energy
	}
	regret := boflE/oracleE - 1
	if regret > 0.10 {
		t.Errorf("steady-state regret vs oracle %.1f%%, want <10%%", regret*100)
	}
	for _, rep := range oracleReports {
		if !rep.DeadlineMet {
			t.Errorf("oracle missed deadline in round %d", rep.Round)
		}
	}
}

// restrictedProfile profiles only the configurations of a reduced space.
func restrictedProfile(t *testing.T, dev *device.Device, w device.Workload, space device.Space) *device.Profile {
	t.Helper()
	pts := make([]device.ProfilePoint, 0, space.Size())
	for i := 0; i < space.Size(); i++ {
		cfg, err := space.Config(i)
		if err != nil {
			t.Fatal(err)
		}
		lat, energy, err := dev.Perf(w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, device.ProfilePoint{Index: i, Config: cfg, Latency: lat, Energy: energy})
	}
	return &device.Profile{Device: dev.Name(), Workload: w, Points: pts}
}

func TestBoflFrontApproachesTrueFront(t *testing.T) {
	dev := device.JetsonAGX()
	space := smallSpace()
	profile := restrictedProfile(t, dev, device.ViT, space)
	trueFront := profile.FrontPoints()
	ref, err := pareto.ReferenceFrom(func() []pareto.Point {
		out := make([]pareto.Point, len(profile.Points))
		for i, p := range profile.Points {
			out[i] = pareto.Point{X: p.Energy, Y: p.Latency}
		}
		return out
	}())
	if err != nil {
		t.Fatal(err)
	}

	c, err := New(space, Options{Seed: 6, Tau: 2})
	if err != nil {
		t.Fatal(err)
	}
	xmaxLat, err := dev.Latency(device.ViT, space.Max())
	if err != nil {
		t.Fatal(err)
	}
	deadlines := mkDeadlines(xmaxLat*60*1.1, 3, 25, 23)
	runTask(t, c, dev, device.ViT, 60, 25, deadlines, 77)

	trueHV := pareto.Hypervolume(trueFront, ref)
	gotHV := pareto.Hypervolume(c.Front(), ref)
	if frac := gotHV / trueHV; frac < 0.85 {
		t.Errorf("BoFL front covers %.1f%% of true hypervolume, want ≥85%%", frac*100)
	}
}

func TestPerformant(t *testing.T) {
	dev := device.JetsonAGX()
	space := smallSpace()
	p, err := NewPerformant(space)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPerformant(device.Space{}); err == nil {
		t.Error("invalid space accepted")
	}
	exec := newSimExec(t, dev, device.ViT, 9)
	rep, err := p.RunRound(20, 100, exec)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.DeadlineMet || rep.Energy <= 0 {
		t.Errorf("bad report %+v", rep)
	}
	if _, err := p.RunRound(0, 100, exec); !errors.Is(err, ErrNoJobs) {
		t.Errorf("zero jobs: %v", err)
	}
	if mr, err := p.BetweenRounds(); err != nil || mr.Ran {
		t.Errorf("BetweenRounds = %+v, %v", mr, err)
	}
}

func TestOracleValidation(t *testing.T) {
	space := smallSpace()
	if _, err := NewOracle(nil, space, 1.0); err == nil {
		t.Error("nil profile accepted")
	}
	dev := device.JetsonAGX()
	profile := restrictedProfile(t, dev, device.ViT, space)
	if _, err := NewOracle(profile, space, 0.9); err == nil {
		t.Error("safety < 1 accepted")
	}
	o, err := NewOracle(profile, space, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(o.TrueFront()) < 3 {
		t.Errorf("oracle front too small: %d", len(o.TrueFront()))
	}
}

func TestOracleBeatsPerformant(t *testing.T) {
	dev := device.JetsonAGX()
	space := smallSpace()
	profile := restrictedProfile(t, dev, device.ViT, space)
	oracle, err := NewOracle(profile, space, 1.05)
	if err != nil {
		t.Fatal(err)
	}
	perf, err := NewPerformant(space)
	if err != nil {
		t.Fatal(err)
	}
	xmaxLat, _ := dev.Latency(device.ViT, space.Max())
	deadline := xmaxLat * 60 * 2.0

	oexec := newSimExec(t, dev, device.ViT, 31)
	orep, err := oracle.RunRound(60, deadline, oexec)
	if err != nil {
		t.Fatal(err)
	}
	pexec := newSimExec(t, dev, device.ViT, 31)
	prep, err := perf.RunRound(60, deadline, pexec)
	if err != nil {
		t.Fatal(err)
	}
	if orep.Energy >= prep.Energy {
		t.Errorf("oracle energy %v should beat performant %v", orep.Energy, prep.Energy)
	}
	if !orep.DeadlineMet {
		t.Error("oracle missed deadline")
	}
}

func TestRandomExplorerAblation(t *testing.T) {
	dev := device.JetsonAGX()
	space := smallSpace()
	r, err := NewRandomExplorer(space, Options{Seed: 8, Tau: 2}, 8)
	if err != nil {
		t.Fatal(err)
	}
	xmaxLat, _ := dev.Latency(device.ViT, space.Max())
	deadlines := mkDeadlines(xmaxLat*60*1.1, 2.5, 20, 29)
	reports := runTask(t, r, dev, device.ViT, 60, 20, deadlines, 600)
	for _, rep := range reports {
		if !rep.DeadlineMet {
			t.Errorf("random explorer missed deadline in round %d", rep.Round)
		}
	}
	if r.Explored() < 9 {
		t.Errorf("random explorer explored only %d configs", r.Explored())
	}
	if len(r.Front()) == 0 {
		t.Error("random explorer has empty front")
	}
}

func TestLinearPaceRunsAndIsWorseThanOracle(t *testing.T) {
	dev := device.JetsonAGX()
	space := smallSpace()
	lp, err := NewLinearPace(space, 1.05)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewLinearPace(space, 0.5); err == nil {
		t.Error("safety < 1 accepted")
	}
	profile := restrictedProfile(t, dev, device.ViT, space)
	oracle, err := NewOracle(profile, space, 1.05)
	if err != nil {
		t.Fatal(err)
	}
	xmaxLat, _ := dev.Latency(device.ViT, space.Max())
	deadlines := mkDeadlines(xmaxLat*60*1.15, 2.5, 15, 37)
	lpReports := runTask(t, lp, dev, device.ViT, 60, 15, deadlines, 800)
	oReports := runTask(t, oracle, dev, device.ViT, 60, 15, deadlines, 800)
	var lpE, oE float64
	for i := range lpReports {
		lpE += lpReports[i].Energy
		oE += oReports[i].Energy
	}
	if lpE <= oE {
		t.Errorf("1-D linear pace control (%v J) should not beat the oracle (%v J)", lpE, oE)
	}
}

func TestBatchSizeRule(t *testing.T) {
	c, err := New(smallSpace(), Options{Seed: 1, Tau: 5, MaxBatch: 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.batchSize(); got != 1 {
		t.Errorf("batch size before any round = %d, want 1", got)
	}
	c.deadlineSum, c.deadlineCount = 55*4, 4 // T_avg = 55s, τ = 5 → K = 10 (capped)
	if got := c.batchSize(); got != 10 {
		t.Errorf("batch size = %d, want 10", got)
	}
	c.deadlineSum, c.deadlineCount = 12*2, 2 // T_avg = 12 → K = 2
	if got := c.batchSize(); got != 2 {
		t.Errorf("batch size = %d, want 2", got)
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseRandomExplore.String() != "random-explore" ||
		PhaseParetoConstruct.String() != "pareto-construct" ||
		PhaseExploit.String() != "exploit" {
		t.Error("phase names wrong")
	}
	if Phase(9).String() != "Phase(9)" {
		t.Error("unknown phase name wrong")
	}
}

func TestGuardianTriggersOnTightDeadline(t *testing.T) {
	// With a deadline barely above T_min, the guardian must force most
	// jobs to x_max and still meet the deadline.
	dev := device.JetsonAGX()
	space := smallSpace()
	c, err := New(space, Options{Seed: 10, Tau: 2})
	if err != nil {
		t.Fatal(err)
	}
	xmaxLat, _ := dev.Latency(device.ViT, space.Max())
	exec := newSimExec(t, dev, device.ViT, 55)
	rep, err := c.RunRound(60, xmaxLat*60*1.12, exec)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.DeadlineMet {
		t.Errorf("tight round missed: duration %v deadline %v", rep.Duration, rep.Deadline)
	}
	if len(rep.Explored) > 3 {
		t.Errorf("guardian should limit exploration under a tight deadline, explored %d", len(rep.Explored))
	}
}

func TestReportsAccounting(t *testing.T) {
	dev := device.JetsonAGX()
	space := smallSpace()
	c, err := New(space, Options{Seed: 12, Tau: 2})
	if err != nil {
		t.Fatal(err)
	}
	exec := newSimExec(t, dev, device.ViT, 66)
	xmaxLat, _ := dev.Latency(device.ViT, space.Max())
	rep, err := c.RunRound(50, xmaxLat*50*2, exec)
	if err != nil {
		t.Fatal(err)
	}
	if exec.jobsRun != 50 {
		t.Errorf("executor ran %d jobs, report says %d", exec.jobsRun, rep.Jobs)
	}
	if math.Abs(exec.energy-rep.Energy) > 1e-9 {
		t.Errorf("energy accounting mismatch: %v vs %v", exec.energy, rep.Energy)
	}
	if rep.Round != 1 || rep.FrontSize == 0 {
		t.Errorf("bad report: %+v", rep)
	}
}
