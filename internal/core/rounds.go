package core

import (
	"fmt"
	"time"

	"bofl/internal/obs"
)

// roundState tracks the budget of one in-flight round.
type roundState struct {
	remaining int     // jobs left
	timeLeft  float64 // seconds until the deadline
	energy    float64
	duration  float64
	explored  []int
	exec      Executor
}

// runJob executes one job under the configuration at flat index idx and
// charges the round's budgets.
func (c *Controller) runJob(rs *roundState, idx int) (JobResult, error) {
	cfg, err := c.space.Config(idx)
	if err != nil {
		return JobResult{}, err
	}
	res, err := rs.exec.RunJob(cfg)
	if err != nil {
		return JobResult{}, fmt.Errorf("core: job under %+v: %w", cfg, err)
	}
	if res.Latency <= 0 || res.Energy < 0 {
		return JobResult{}, fmt.Errorf("core: implausible job result %+v", res)
	}
	rs.remaining--
	rs.timeLeft -= res.Latency
	rs.duration += res.Latency
	rs.energy += res.Energy
	return res, nil
}

// guardianOK implements the deadline guardian check before exploring an
// unknown configuration (Eqn. 2, hardened): even if the exploration runs for
// τ seconds plus one worst-case job at the unknown configuration, the
// remaining jobs must still fit under x_max with the safety margin applied.
func (c *Controller) guardianOK(rs *roundState) bool {
	if c.opts.DisableGuardian {
		return true
	}
	tx := c.txmax()
	if tx <= 0 {
		// x_max itself has not been measured; only x_max exploration
		// is allowed (handled by the caller).
		return false
	}
	worstFirstJob := c.opts.FirstJobSlowdown * tx
	budget := rs.timeLeft - c.opts.Tau - worstFirstJob
	// At least one job completes during the exploration window, so only
	// remaining−1 jobs are left for the fallback sprint.
	need := float64(rs.remaining-1) * tx * c.opts.Safety
	return budget >= need
}

// drainAtXmax runs every remaining job at the guardian configuration.
func (c *Controller) drainAtXmax(rs *roundState) error {
	for rs.remaining > 0 {
		res, err := c.runJob(rs, c.xmaxIdx)
		if err != nil {
			return err
		}
		if err := c.observe(c.xmaxIdx, 1, res.Latency, res.Energy); err != nil {
			return err
		}
	}
	return nil
}

// explore runs jobs under candidate idx until it has been observed for at
// least τ seconds (at least one job), stopping early if jobs run out or the
// per-job guardian would be violated by another slow job.
func (c *Controller) explore(rs *roundState, idx int) error {
	jobs := 0
	var sumLat, sumE float64
	for rs.remaining > 0 {
		res, err := c.runJob(rs, idx)
		if err != nil {
			return err
		}
		jobs++
		sumLat += res.Latency
		sumE += res.Energy
		if sumLat >= c.opts.Tau {
			break
		}
		// Inner guardian: another job at this configuration must leave
		// the fallback sprint feasible.
		perJob := sumLat / float64(jobs)
		tx := c.txmax()
		if tx > 0 && idx != c.xmaxIdx && !c.opts.DisableGuardian {
			future := rs.timeLeft - perJob*c.opts.Safety
			need := float64(rs.remaining-1) * tx * c.opts.Safety
			if future < need {
				break
			}
		}
	}
	if jobs == 0 {
		return nil
	}
	rs.explored = append(rs.explored, idx)
	return c.observe(idx, jobs, sumLat, sumE)
}

// RunRound executes one FL round: `jobs` minibatches before `deadline`
// seconds elapse. It implements the safe exploration algorithm of Figure 7 in
// phases 1–2 and pure exploitation in phase 3.
func (c *Controller) RunRound(jobs int, deadline float64, exec Executor) (RoundReport, error) {
	if jobs <= 0 {
		return RoundReport{}, ErrNoJobs
	}
	if deadline <= 0 {
		return RoundReport{}, fmt.Errorf("core: non-positive deadline %v", deadline)
	}
	c.round++
	rs := &roundState{remaining: jobs, timeLeft: deadline, exec: exec}
	endRound := c.sink.Span(obs.SpanRound, obs.L("phase", c.phase.String()))
	defer endRound()

	switch c.phase {
	case PhaseExploit:
		if err := c.exploitRemaining(rs); err != nil {
			return RoundReport{}, err
		}
	default:
		if err := c.runExplorationRound(rs); err != nil {
			return RoundReport{}, err
		}
		c.deadlineSum += deadline
		c.deadlineCount++
		if c.phase == PhaseRandomExplore && len(c.queue) == 0 {
			c.setPhase(PhaseParetoConstruct)
		}
	}

	report := RoundReport{
		Round:       c.round,
		Phase:       c.phase,
		Jobs:        jobs,
		Deadline:    deadline,
		Duration:    rs.duration,
		Energy:      rs.energy,
		DeadlineMet: rs.duration <= deadline,
		Explored:    rs.explored,
		FrontSize:   len(c.Front()),
	}
	c.recordRound(report)
	return report, nil
}

// runExplorationRound implements Figure 7 for phases 1 and 2.
func (c *Controller) runExplorationRound(rs *roundState) error {
	// The guardian configuration must be measured before anything else —
	// both on the very first round and after a drift re-adaptation
	// invalidated the old measurement.
	if c.txmax() <= 0 || c.remeasureXmax {
		c.remeasureXmax = false
		if len(c.queue) > 0 && c.queue[0] == c.xmaxIdx {
			c.queue = c.queue[1:]
		}
		if err := c.explore(rs, c.xmaxIdx); err != nil {
			return err
		}
	}
	for rs.remaining > 0 {
		if len(c.queue) == 0 {
			// Candidates exhausted: last-round exploitation (§4.2).
			return c.exploitRemaining(rs)
		}
		if !c.guardianOK(rs) {
			// Too risky to keep exploring: sprint to the deadline.
			return c.drainAtXmax(rs)
		}
		idx := c.queue[0]
		c.queue = c.queue[1:]
		if _, seen := c.observed[idx]; seen && idx != c.xmaxIdx {
			continue // duplicate suggestion
		}
		if err := c.explore(rs, idx); err != nil {
			return err
		}
	}
	if c.phase == PhaseParetoConstruct {
		// Unexplored suggestions are stale after the round (§4.3,
		// training round execution details).
		c.queue = nil
	}
	return nil
}

// BetweenRounds runs the controller's off-critical-path work: in the Pareto
// construction phase it refits the surrogates, evaluates the stopping
// condition and produces the next round's suggestion batch. In other phases
// it is a no-op. This is where the MBO overhead of Figure 13 accrues.
func (c *Controller) BetweenRounds() (MBOReport, error) {
	if c.phase != PhaseParetoConstruct {
		return MBOReport{}, nil
	}
	start := time.Now()
	endMBO := c.sink.Span(obs.SpanMBO)
	defer endMBO()
	c.sink.Count(obs.MetricMBORuns, 1)

	hv, err := c.hypervolume()
	if err != nil {
		return MBOReport{}, err
	}
	gain := 1.0
	if c.haveHV && c.lastHV > 0 {
		gain = (hv - c.lastHV) / c.lastHV
	}
	c.lastHV, c.haveHV = hv, true
	c.sink.SetGauge(obs.MetricHypervolume, hv)

	exploredFrac := float64(len(c.observed)) / float64(len(c.candidates))
	if exploredFrac >= c.opts.MinExploredFrac && gain < c.opts.HVGainThreshold {
		c.setPhase(PhaseExploit)
		return MBOReport{
			Ran:                 true,
			WallTime:            time.Since(start),
			Hypervolume:         hv,
			HVGain:              gain,
			StoppedConstruction: true,
		}, nil
	}

	k := c.batchSize()
	sugg, err := c.optimizer.SuggestBatch(k)
	if err != nil {
		return MBOReport{}, err
	}
	c.sink.Count(obs.MetricMBOSuggestions, float64(len(sugg)))
	c.queue = c.queue[:0]
	for _, s := range sugg {
		c.queue = append(c.queue, s.Index)
	}
	return MBOReport{
		Ran:             true,
		WallTime:        time.Since(start),
		SuggestionCount: len(sugg),
		Hypervolume:     hv,
		HVGain:          gain,
	}, nil
}

// batchSize computes K = T_avg/τ clamped to [1, MaxBatch] (§4.3).
func (c *Controller) batchSize() int {
	if c.deadlineCount == 0 {
		return 1
	}
	tavg := c.deadlineSum / float64(c.deadlineCount)
	k := int(tavg / c.opts.Tau)
	if k < 1 {
		k = 1
	}
	if k > c.opts.MaxBatch {
		k = c.opts.MaxBatch
	}
	return k
}
