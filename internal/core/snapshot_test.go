package core

import (
	"bytes"
	"testing"

	"bofl/internal/device"
	"bofl/internal/obs"
)

func trainedController(t *testing.T, rounds int) (*Controller, *device.Device) {
	t.Helper()
	dev := device.JetsonAGX()
	space := smallSpace()
	c, err := New(space, Options{Seed: 9, Tau: 2})
	if err != nil {
		t.Fatal(err)
	}
	exec := newSimExec(t, dev, device.ViT, 12)
	xmaxLat, err := dev.Latency(device.ViT, space.Max())
	if err != nil {
		t.Fatal(err)
	}
	deadlines := mkDeadlines(xmaxLat*60*1.1, 2.5, rounds, 41)
	for r := 0; r < rounds; r++ {
		if _, err := c.RunRound(60, deadlines[r], exec); err != nil {
			t.Fatal(err)
		}
		if _, err := c.BetweenRounds(); err != nil {
			t.Fatal(err)
		}
	}
	return c, dev
}

func TestSnapshotRoundTrip(t *testing.T) {
	orig, dev := trainedController(t, 15)
	var buf bytes.Buffer
	if err := orig.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	restored, err := New(smallSpace(), Options{Seed: 9, Tau: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.ReadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Phase() != orig.Phase() {
		t.Errorf("phase %v, want %v", restored.Phase(), orig.Phase())
	}
	if restored.NumExplored() != orig.NumExplored() {
		t.Errorf("explored %d, want %d", restored.NumExplored(), orig.NumExplored())
	}
	of, rf := orig.Front(), restored.Front()
	if len(of) != len(rf) {
		t.Fatalf("front sizes %d vs %d", len(rf), len(of))
	}
	for i := range of {
		if of[i] != rf[i] {
			t.Errorf("front[%d] = %v, want %v", i, rf[i], of[i])
		}
	}

	// The restored controller must keep operating safely — and because it
	// restored into the exploitation phase, it must not re-explore.
	exec := newSimExec(t, dev, device.ViT, 90)
	xmaxLat, err := dev.Latency(device.ViT, smallSpace().Max())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := restored.RunRound(60, xmaxLat*60*1.8, exec)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.DeadlineMet {
		t.Error("restored controller missed a deadline")
	}
	if restored.Phase() == PhaseExploit && len(rep.Explored) > 0 {
		t.Errorf("restored exploit-phase controller explored %d configs", len(rep.Explored))
	}
}

func TestSnapshotPreservesRoundCounter(t *testing.T) {
	orig, dev := trainedController(t, 5)
	snap := orig.Snapshot()
	restored, err := New(smallSpace(), Options{Seed: 9, Tau: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	exec := newSimExec(t, dev, device.ViT, 91)
	xmaxLat, err := dev.Latency(device.ViT, smallSpace().Max())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := restored.RunRound(60, xmaxLat*60*2, exec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Round != 6 {
		t.Errorf("round counter %d, want 6", rep.Round)
	}
}

func TestRestoreValidation(t *testing.T) {
	c, err := New(smallSpace(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	good := Snapshot{Version: snapshotVersion, Phase: PhaseRandomExplore, SpaceSize: smallSpace().Size()}
	if err := c.Restore(good); err != nil {
		t.Fatalf("minimal snapshot rejected: %v", err)
	}
	bad := []Snapshot{
		{Version: 99, Phase: PhaseRandomExplore, SpaceSize: smallSpace().Size()},
		{Version: snapshotVersion, Phase: 0, SpaceSize: smallSpace().Size()},
		{Version: snapshotVersion, Phase: PhaseExploit, SpaceSize: 5},
		{Version: snapshotVersion, Phase: PhaseExploit, SpaceSize: smallSpace().Size(), Queue: []int{-1}},
		{Version: snapshotVersion, Phase: PhaseExploit, SpaceSize: smallSpace().Size(),
			Observations: []obsSnapshot{{Index: 99999, Jobs: 1, SumLat: 1, SumE: 1}}},
		{Version: snapshotVersion, Phase: PhaseExploit, SpaceSize: smallSpace().Size(),
			Observations: []obsSnapshot{{Index: 0, Jobs: 0, SumLat: 1, SumE: 1}}},
	}
	for i, s := range bad {
		if err := c.Restore(s); err == nil {
			t.Errorf("bad snapshot %d accepted", i)
		}
	}
}

// TestRestoreReplaysPhaseTransitions is the server-restart-mid-round
// property: two controllers restored from the same snapshot and driven by
// identical (same-seed) executors must walk through identical phase
// transitions, observed via the controller phase gauge. This is what makes a
// crash/restore during an FL run invisible to the pace-control trajectory.
func TestRestoreReplaysPhaseTransitions(t *testing.T) {
	orig, dev := trainedController(t, 10) // mid-run: before exploitation settles
	snap := orig.Snapshot()

	xmaxLat, err := dev.Latency(device.ViT, smallSpace().Max())
	if err != nil {
		t.Fatal(err)
	}
	const contRounds = 8
	deadlines := mkDeadlines(xmaxLat*60*1.1, 2.5, contRounds, 77)

	// continuation restores the snapshot into a fresh controller and runs it
	// forward, returning the phase-gauge value after every round.
	continuation := func(execSeed int64) []float64 {
		t.Helper()
		tel := obs.NewBoFL(obs.Real{})
		c, err := New(smallSpace(), Options{Seed: 9, Tau: 2})
		if err != nil {
			t.Fatal(err)
		}
		c.SetSink(tel)
		if err := c.Restore(snap); err != nil {
			t.Fatal(err)
		}
		gauge := tel.Registry.Gauge(obs.MetricControllerPhase, "")
		if got := gauge.Value(); got != float64(snap.Phase) {
			t.Fatalf("phase gauge %v right after restore, want %v", got, float64(snap.Phase))
		}
		exec := newSimExec(t, dev, device.ViT, execSeed)
		phases := make([]float64, 0, contRounds)
		for r := 0; r < contRounds; r++ {
			if _, err := c.RunRound(60, deadlines[r], exec); err != nil {
				t.Fatal(err)
			}
			if _, err := c.BetweenRounds(); err != nil {
				t.Fatal(err)
			}
			phases = append(phases, gauge.Value())
		}
		return phases
	}

	a, b := continuation(55), continuation(55)
	transitions := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("round %d after restore: phase gauge %v vs %v — restore is not replayable", i+1, a[i], b[i])
		}
		if i > 0 && a[i] != a[i-1] {
			transitions++
		}
	}
	if a[0] != float64(snap.Phase) && transitions == 0 {
		t.Logf("note: no phase transition inside the continuation window (phases %v)", a)
	}
}

func TestReadSnapshotRejectsGarbage(t *testing.T) {
	c, err := New(smallSpace(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ReadSnapshot(bytes.NewReader([]byte("not json"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestRestoreFailureLeavesControllerUsable(t *testing.T) {
	c, dev := trainedController(t, 8)
	before := c.NumExplored()
	// A failing restore must not corrupt the live state.
	if err := c.Restore(Snapshot{Version: 99}); err == nil {
		t.Fatal("bad snapshot accepted")
	}
	if c.NumExplored() != before {
		t.Error("failed restore mutated observations")
	}
	exec := newSimExec(t, dev, device.ViT, 92)
	if _, err := c.RunRound(60, 100, exec); err != nil {
		t.Errorf("controller unusable after failed restore: %v", err)
	}
}
