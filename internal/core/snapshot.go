package core

import (
	"encoding/json"
	"fmt"
	"io"

	"bofl/internal/mobo"
	"bofl/internal/obs"
)

// FL tasks run for hundreds to thousands of rounds (§6.2), far longer than an
// edge device stays up. Snapshot/Restore persist the controller's learned
// state — observations, phase, queue, hypervolume trace — so a restarted
// client resumes exploitation instead of re-paying the exploration phases.

// snapshotVersion guards the wire format.
const snapshotVersion = 1

// obsSnapshot is one configuration's aggregate observation.
type obsSnapshot struct {
	Index    int     `json:"index"`
	Jobs     int     `json:"jobs"`
	SumLat   float64 `json:"sumLatency"`
	SumE     float64 `json:"sumEnergy"`
	Duration float64 `json:"duration"`
}

// Snapshot is the controller's serializable state.
type Snapshot struct {
	Version       int           `json:"version"`
	Phase         Phase         `json:"phase"`
	Round         int           `json:"round"`
	Queue         []int         `json:"queue"`
	Observations  []obsSnapshot `json:"observations"`
	DeadlineSum   float64       `json:"deadlineSum"`
	DeadlineCount int           `json:"deadlineCount"`
	LastHV        float64       `json:"lastHV"`
	HaveHV        bool          `json:"haveHV"`
	SpaceSize     int           `json:"spaceSize"`
}

// Snapshot captures the controller's current state.
func (c *Controller) Snapshot() Snapshot {
	s := Snapshot{
		Version:       snapshotVersion,
		Phase:         c.phase,
		Round:         c.round,
		Queue:         append([]int(nil), c.queue...),
		DeadlineSum:   c.deadlineSum,
		DeadlineCount: c.deadlineCount,
		LastHV:        c.lastHV,
		HaveHV:        c.haveHV,
		SpaceSize:     len(c.candidates),
	}
	for idx, a := range c.observed {
		s.Observations = append(s.Observations, obsSnapshot{
			Index:    idx,
			Jobs:     a.jobs,
			SumLat:   a.sumLat,
			SumE:     a.sumE,
			Duration: a.duration,
		})
	}
	return s
}

// WriteSnapshot serializes the state as JSON.
func (c *Controller) WriteSnapshot(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(c.Snapshot()); err != nil {
		return fmt.Errorf("core: write snapshot: %w", err)
	}
	return nil
}

// Restore installs a snapshot into a freshly constructed controller (same
// space and options as the original). The exploration queue, phase and all
// observations are reinstated; the GP surrogates are rebuilt lazily on the
// next MBO run.
func (c *Controller) Restore(s Snapshot) error {
	if s.Version != snapshotVersion {
		return fmt.Errorf("core: snapshot version %d, want %d", s.Version, snapshotVersion)
	}
	if s.SpaceSize != len(c.candidates) {
		return fmt.Errorf("core: snapshot for a %d-point space, controller has %d", s.SpaceSize, len(c.candidates))
	}
	switch s.Phase {
	case PhaseRandomExplore, PhaseParetoConstruct, PhaseExploit:
	default:
		return fmt.Errorf("core: snapshot has invalid phase %d", s.Phase)
	}
	for _, q := range s.Queue {
		if q < 0 || q >= len(c.candidates) {
			return fmt.Errorf("core: snapshot queue index %d out of range", q)
		}
	}
	observed := make(map[int]*aggObs, len(s.Observations))
	var xmaxObs *aggObs
	dataset := make([]mobo.Observation, 0, len(s.Observations))
	for _, o := range s.Observations {
		if o.Index < 0 || o.Index >= len(c.candidates) {
			return fmt.Errorf("core: snapshot observation index %d out of range", o.Index)
		}
		if o.Jobs <= 0 || o.SumLat <= 0 || o.SumE < 0 {
			return fmt.Errorf("core: snapshot observation %d malformed", o.Index)
		}
		a := &aggObs{jobs: o.Jobs, sumLat: o.SumLat, sumE: o.SumE, duration: o.Duration}
		observed[o.Index] = a
		if o.Index == c.xmaxIdx {
			xmaxObs = a
		}
		dataset = append(dataset, mobo.Observation{
			Index:   o.Index,
			Energy:  a.meanEnergy(),
			Latency: a.meanLatency(),
		})
	}

	// Rebuild the MBO dataset from scratch on a fresh optimizer so a
	// partially-mutated controller is never left behind on error.
	optimizer, err := newSuggester(c.candidates, c.opts)
	if err != nil {
		return err
	}
	if len(dataset) > 0 {
		if err := optimizer.Observe(dataset...); err != nil {
			return err
		}
	}

	c.optimizer = optimizer
	c.pushSink()
	c.observed = observed
	c.xmaxObs = xmaxObs
	c.phase = s.Phase
	c.round = s.Round
	c.queue = append([]int(nil), s.Queue...)
	c.deadlineSum = s.DeadlineSum
	c.deadlineCount = s.DeadlineCount
	c.lastHV = s.LastHV
	c.haveHV = s.HaveHV
	c.sink.SetGauge(obs.MetricControllerPhase, float64(c.phase))
	return nil
}

// ReadSnapshot deserializes a snapshot and installs it.
func (c *Controller) ReadSnapshot(r io.Reader) error {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return fmt.Errorf("core: read snapshot: %w", err)
	}
	return c.Restore(s)
}
