package core

import (
	"testing"

	"bofl/internal/device"
	"bofl/internal/pareto"
)

// hvCoverage returns the fraction of the true front's hypervolume dominated
// by the controller's observed front under the given reference.
func hvCoverage(c *Controller, trueFront []pareto.Point, ref pareto.Point) float64 {
	trueHV := pareto.Hypervolume(trueFront, ref)
	if trueHV <= 0 {
		return 0
	}
	return pareto.Hypervolume(c.Front(), ref) / trueHV
}

func TestParEGOAcquisitionEndToEnd(t *testing.T) {
	dev := device.JetsonAGX()
	space := smallSpace()
	c, err := New(space, Options{Seed: 3, Tau: 2, Acquisition: AcqParEGO, MBORestarts: 1, MBOIters: 3})
	if err != nil {
		t.Fatal(err)
	}
	xmaxLat, err := dev.Latency(device.ViT, space.Max())
	if err != nil {
		t.Fatal(err)
	}
	deadlines := mkDeadlines(xmaxLat*60*1.1, 2.5, 20, 3)
	reports := runTask(t, c, dev, device.ViT, 60, 20, deadlines, 44)
	for _, rep := range reports {
		if !rep.DeadlineMet {
			t.Errorf("ParEGO round %d missed deadline", rep.Round)
		}
	}
	if c.Phase() != PhaseExploit {
		t.Errorf("ParEGO controller stuck in phase %v", c.Phase())
	}
	if len(c.Front()) == 0 {
		t.Error("empty front")
	}
}

func TestUnknownAcquisitionRejected(t *testing.T) {
	if _, err := New(smallSpace(), Options{Acquisition: "random-forest"}); err == nil {
		t.Error("unknown acquisition accepted")
	}
}

func TestEHVIBeatsOrMatchesParEGOFrontQuality(t *testing.T) {
	// Not a strict superiority claim — both must reach a decent front;
	// EHVI must not be more than a few points behind ParEGO.
	dev := device.JetsonAGX()
	space := smallSpace()
	profile := restrictedProfile(t, dev, device.ViT, space)
	trueFront := profile.FrontPoints()
	coverage := func(acq Acquisition) float64 {
		c, err := New(space, Options{Seed: 6, Tau: 2, Acquisition: acq, MBORestarts: 1, MBOIters: 3})
		if err != nil {
			t.Fatal(err)
		}
		xmaxLat, err := dev.Latency(device.ViT, space.Max())
		if err != nil {
			t.Fatal(err)
		}
		deadlines := mkDeadlines(xmaxLat*60*1.1, 3, 20, 6)
		runTask(t, c, dev, device.ViT, 60, 20, deadlines, 55)
		ref := trueFront[len(trueFront)-1]
		for _, p := range trueFront {
			if p.X > ref.X {
				ref.X = p.X
			}
			if p.Y > ref.Y {
				ref.Y = p.Y
			}
		}
		// Use a common generous reference derived from the true front.
		ref.X *= 1.5
		ref.Y *= 1.5
		return hvCoverage(c, trueFront, ref)
	}
	ehvi := coverage(AcqEHVI)
	parego := coverage(AcqParEGO)
	if ehvi < 0.85 {
		t.Errorf("EHVI coverage %.2f too low", ehvi)
	}
	if parego < 0.70 {
		t.Errorf("ParEGO coverage %.2f too low", parego)
	}
	if ehvi < parego-0.10 {
		t.Errorf("EHVI coverage %.2f clearly behind ParEGO %.2f", ehvi, parego)
	}
}
