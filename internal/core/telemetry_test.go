package core

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"bofl/internal/device"
	"bofl/internal/obs"
)

// TestControllerTelemetry drives a controller through enough rounds to cross
// all three phases with a live Telemetry attached and checks that the domain
// instruments fill in: round counter, energy histogram, phase gauge,
// hypervolume, MBO spans and phase-transition trace events.
func TestControllerTelemetry(t *testing.T) {
	tel := obs.NewBoFL(obs.Real{})
	c, err := New(smallSpace(), Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	c.SetSink(tel)

	exec := newSimExec(t, device.JetsonAGX(), device.ViT, 7)
	rounds := 0
	for i := 0; i < 40; i++ {
		if _, err := c.RunRound(30, 45, exec); err != nil {
			t.Fatal(err)
		}
		rounds++
		if _, err := c.BetweenRounds(); err != nil {
			t.Fatal(err)
		}
		if c.Phase() == PhaseExploit {
			break
		}
	}
	if c.Phase() != PhaseExploit {
		t.Fatalf("controller never reached exploitation (phase %v after %d rounds)", c.Phase(), rounds)
	}

	r := tel.Registry
	if got := r.Counter(obs.MetricRounds, "").Value(); got != float64(rounds) {
		t.Errorf("%s = %v, want %d", obs.MetricRounds, got, rounds)
	}
	if got := r.Histogram(obs.MetricRoundEnergy, "", nil).Count(); got != uint64(rounds) {
		t.Errorf("%s count = %d, want %d", obs.MetricRoundEnergy, got, rounds)
	}
	if got := r.Gauge(obs.MetricControllerPhase, "").Value(); got != float64(PhaseExploit) {
		t.Errorf("%s = %v, want %v", obs.MetricControllerPhase, got, float64(PhaseExploit))
	}
	if got := r.Gauge(obs.MetricHypervolume, "").Value(); got <= 0 {
		t.Errorf("%s = %v, want > 0", obs.MetricHypervolume, got)
	}
	if got := r.Gauge(obs.MetricFrontSize, "").Value(); got <= 0 {
		t.Errorf("%s = %v, want > 0", obs.MetricFrontSize, got)
	}
	if got := r.Counter(obs.MetricMBORuns, "").Value(); got == 0 {
		t.Errorf("%s never incremented", obs.MetricMBORuns)
	}
	if got := r.Histogram(obs.SpanGPFit+"_seconds", "", nil).Count(); got == 0 {
		t.Errorf("no %s spans recorded", obs.SpanGPFit)
	}
	if got := r.Histogram(obs.SpanEHVIScan+"_seconds", "", nil).Count(); got == 0 {
		t.Errorf("no %s spans recorded", obs.SpanEHVIScan)
	}
	if got := r.Histogram(obs.SpanILPSolve+"_seconds", "", nil).Count(); got == 0 {
		t.Errorf("no %s spans recorded", obs.SpanILPSolve)
	}

	// Phase transitions must appear in the trace: explore→construct and
	// construct→exploit.
	var sawConstruct, sawExploit bool
	for _, ev := range tel.Tracer.Events() {
		if ev.Name != "bofl_phase_transition" {
			continue
		}
		switch ev.Labels.Get("to") {
		case PhaseParetoConstruct.String():
			sawConstruct = true
		case PhaseExploit.String():
			sawExploit = true
		}
	}
	if !sawConstruct || !sawExploit {
		t.Errorf("missing phase-transition events (construct=%v exploit=%v)", sawConstruct, sawExploit)
	}

	// The exposition must carry the acceptance-criteria series.
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		obs.MetricRounds, obs.MetricRoundEnergy + "_bucket", obs.MetricDeadlineMisses,
		obs.MetricControllerPhase, obs.MetricHypervolume,
		obs.SpanGPFit + "_seconds_bucket", obs.SpanEHVIScan + "_seconds_bucket",
		obs.MetricPoolUtilization,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}

// TestSetSinkSurvivesReadaptAndRestore checks that the sink propagates to a
// rebuilt optimizer after snapshot restore (the same path readapt uses).
func TestSetSinkSurvivesReadaptAndRestore(t *testing.T) {
	tel := obs.New(obs.Frozen{T: time.Unix(0, 0)})
	c, err := New(smallSpace(), Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	c.SetSink(tel)
	exec := newSimExec(t, device.JetsonAGX(), device.ViT, 5)
	if _, err := c.RunRound(30, 45, exec); err != nil {
		t.Fatal(err)
	}

	snap := c.Snapshot()
	c2, err := New(smallSpace(), Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	c2.SetSink(tel)
	if err := c2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	ss, ok := c2.optimizer.(sinkSettable)
	if !ok {
		t.Fatal("optimizer does not accept a sink")
	}
	_ = ss
	// The restored optimizer must carry the live sink: a fit shows up in
	// the span histogram.
	before := tel.Registry.Histogram(obs.SpanGPFit+"_seconds", "", nil).Count()
	if _, err := c2.optimizer.SuggestBatch(1); err != nil {
		t.Fatal(err)
	}
	after := tel.Registry.Histogram(obs.SpanGPFit+"_seconds", "", nil).Count()
	if after <= before {
		t.Error("restored optimizer lost the telemetry sink")
	}
}
