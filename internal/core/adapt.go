package core

import (
	"math"

	"bofl/internal/mobo"
	"bofl/internal/obs"
)

// Adaptive re-exploration (extension): the paper assumes T(x) and E(x) are
// stationary, which holds on bench-mounted boards over short tasks, but
// thermal throttling, background load or battery management shift the
// landscape over long FL deployments. With Options.DriftThreshold set, the
// controller tracks a recent-window estimate of each configuration's latency
// next to its lifetime mean; when the two diverge persistently during
// exploitation, the stale statistics are recalibrated by the observed drift
// ratio and the controller drops back into Pareto construction so the MBO can
// re-map the changed landscape.

// driftEWMAAlpha weights the recent-window latency estimate.
const driftEWMAAlpha = 0.3

// minJobsForDrift is how many jobs a configuration needs before its drift
// estimate is trusted.
const minJobsForDrift = 8

// updateDrift refreshes the config's recent-latency window and reports
// whether it has diverged from the lifetime mean beyond the threshold.
func (c *Controller) updateDrift(a *aggObs, perJobLat float64) bool {
	if !a.ewmaInit {
		a.ewmaLat = perJobLat
		a.ewmaInit = true
		return false
	}
	a.ewmaLat = driftEWMAAlpha*perJobLat + (1-driftEWMAAlpha)*a.ewmaLat
	if c.opts.DriftThreshold <= 0 || c.phase != PhaseExploit || a.jobs < minJobsForDrift {
		return false
	}
	ratio := a.ewmaLat / a.meanLatency()
	return ratio > 1+c.opts.DriftThreshold || ratio < 1/(1+c.opts.DriftThreshold)
}

// readapt recalibrates every stored observation by the drift ratio observed
// on the triggering configuration and re-enters the Pareto construction
// phase. The MBO dataset is rebuilt from the recalibrated means.
func (c *Controller) readapt(trigger *aggObs) error {
	ratio := trigger.ewmaLat / trigger.meanLatency()

	dataset := make([]mobo.Observation, 0, len(c.observed))
	for idx, a := range c.observed {
		// Configurations with a *recent* window of their own use it;
		// the rest — including ones whose window is a relic of the
		// previous regime — are scaled by the global drift estimate.
		newLat := a.meanLatency() * ratio
		if a.ewmaInit && a.jobs >= minJobsForDrift && a.lastRound >= c.round-1 {
			newLat = a.ewmaLat
		}
		scale := newLat / a.meanLatency()
		a.sumLat = newLat * float64(a.jobs)
		// Energy scales with the square root of a thermal slowdown
		// (static power burns for the extra time while dynamic power
		// falls); lacking a fresh energy window, apply that model.
		a.sumE *= sqrtScale(scale)
		a.ewmaLat = newLat
		dataset = append(dataset, mobo.Observation{
			Index:   idx,
			Energy:  a.meanEnergy(),
			Latency: a.meanLatency(),
		})
	}

	optimizer, err := newSuggester(c.candidates, c.opts)
	if err != nil {
		return err
	}
	if err := optimizer.Observe(dataset...); err != nil {
		return err
	}
	c.optimizer = optimizer
	c.pushSink()
	c.setPhase(PhaseParetoConstruct)
	c.haveHV = false
	c.lastHV = 0
	c.queue = nil
	c.readapts++
	c.sink.Count(obs.MetricReadapts, 1)
	// The guardian's budget math is only as good as T(x_max); re-measure
	// it first thing next round.
	c.remeasureXmax = true
	return nil
}

func sqrtScale(s float64) float64 {
	if s <= 0 {
		return 1
	}
	return math.Sqrt(s)
}

// Readapts reports how many drift-triggered re-explorations have occurred.
func (c *Controller) Readapts() int { return c.readapts }
