// Package core implements the BoFL training-pace controller — the paper's
// primary contribution (§4). The controller runs on an FL client and decides,
// job by job, which DVFS configuration to train the next minibatch under, so
// that every round's deadline is met while total energy is minimized.
//
// It operates in three phases across the FL task's rounds:
//
//  1. Safe random exploration (§4.2): quasi-random starting points are tried
//     under a deadline-guardian policy that can always fall back to x_max.
//  2. Pareto-front construction (§4.3): a multi-objective Bayesian optimizer
//     proposes batches of configurations between rounds; suggestions are
//     explored with the same safe-exploration algorithm.
//  3. Exploitation (§4.4): the remaining rounds run blends of Pareto-optimal
//     configurations computed by an exact branch-and-bound ILP.
package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"bofl/internal/device"
	"bofl/internal/mobo"
	"bofl/internal/obs"
	"bofl/internal/pareto"
)

// JobResult is the measured cost of training one minibatch.
type JobResult struct {
	Latency float64 // seconds
	Energy  float64 // Joules
}

// Executor runs one training job (one minibatch of SGD) under a DVFS
// configuration and reports its measured cost. Implementations actuate the
// DVFS backend, train, and read the power sensor.
type Executor interface {
	RunJob(cfg device.Config) (JobResult, error)
}

// ExecutorFunc adapts a function to the Executor interface.
type ExecutorFunc func(cfg device.Config) (JobResult, error)

// RunJob calls f.
func (f ExecutorFunc) RunJob(cfg device.Config) (JobResult, error) { return f(cfg) }

// Phase identifies the controller's operating phase.
type Phase int

// The three phases of Figure 6.
const (
	PhaseRandomExplore Phase = iota + 1
	PhaseParetoConstruct
	PhaseExploit
)

// String returns the phase name.
func (p Phase) String() string {
	switch p {
	case PhaseRandomExplore:
		return "random-explore"
	case PhaseParetoConstruct:
		return "pareto-construct"
	case PhaseExploit:
		return "exploit"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// PaceController is the interface shared by BoFL and the comparison
// controllers (Performant, Oracle, …). RunRound executes one FL round's jobs;
// BetweenRounds runs in the configuration/reporting window between rounds
// (where BoFL schedules its MBO computation to keep it off the critical path,
// §4.3).
type PaceController interface {
	RunRound(jobs int, deadline float64, exec Executor) (RoundReport, error)
	BetweenRounds() (MBOReport, error)
}

// RoundReport summarizes one executed round.
type RoundReport struct {
	Round       int     `json:"round"`
	Phase       Phase   `json:"phase"`
	Jobs        int     `json:"jobs"`
	Deadline    float64 `json:"deadlineSeconds"`
	Duration    float64 `json:"durationSeconds"`
	Energy      float64 `json:"energyJoules"`
	DeadlineMet bool    `json:"deadlineMet"`
	// Explored lists the candidate indices newly observed this round.
	Explored []int `json:"explored"`
	// FrontSize is the observed Pareto-front size after the round.
	FrontSize int `json:"frontSize"`
}

// MBOReport summarizes one between-round MBO computation.
type MBOReport struct {
	Ran             bool          `json:"ran"`
	WallTime        time.Duration `json:"wallTime"`
	SuggestionCount int           `json:"suggestionCount"`
	Hypervolume     float64       `json:"hypervolume"`
	HVGain          float64       `json:"hvGain"`
	// StoppedConstruction is true when this call decided the Pareto
	// construction phase is over.
	StoppedConstruction bool `json:"stoppedConstruction"`
}

// Options configures the BoFL controller. The zero value of each field
// selects the paper's default.
type Options struct {
	// Tau is the reference measurement duration τ in seconds (default 5):
	// a configuration keeps receiving jobs until it has run this long.
	Tau float64
	// StartFrac is the fraction of the space sampled as quasi-random
	// starting points in phase 1 (default 0.01).
	StartFrac float64
	// MinStartPoints floors the number of starting points (default 8).
	MinStartPoints int
	// MinExploredFrac is the fraction of the space that must be explored
	// before Pareto construction may stop (default 0.03).
	MinExploredFrac float64
	// HVGainThreshold stops construction once the relative hypervolume
	// gain of an MBO round drops below it (default 0.01).
	HVGainThreshold float64
	// MaxBatch caps the MBO suggestion batch size (default 10).
	MaxBatch int
	// Safety inflates predicted job times in feasibility checks to absorb
	// measurement noise (default 1.05).
	Safety float64
	// FirstJobSlowdown bounds how much slower than x_max a single job at a
	// never-observed configuration can be; the deadline guardian budgets
	// this for the first job of each exploration (default 12).
	FirstJobSlowdown float64
	// Seed drives the quasi-random design and the MBO's restarts.
	Seed int64
	// MBORestarts / MBOIters bound the GP hyperparameter search per MBO
	// run (defaults 3 / 8 — the MBO must fit in the reporting window).
	MBORestarts int
	MBOIters    int
	// Acquisition selects the multi-objective strategy: AcqEHVI (the
	// paper's choice, default) or AcqParEGO (scalarization ablation).
	Acquisition Acquisition
	// DriftThreshold enables adaptive re-exploration (extension): when an
	// exploited configuration's recent latency diverges from its learned
	// mean by more than this relative amount (e.g. 0.2 for 20%), all
	// statistics are recalibrated and Pareto construction restarts. Zero
	// disables drift detection (the paper's stationary setting).
	DriftThreshold float64
	// DisableGuardian turns off the deadline-guardian checks during
	// exploration. ABLATION ONLY: it exists to quantify how many deadline
	// misses the guardian prevents (§4.2); never set it in production.
	DisableGuardian bool
}

// Acquisition names a multi-objective suggestion strategy.
type Acquisition string

// Supported acquisition strategies.
const (
	AcqEHVI   Acquisition = "ehvi"
	AcqParEGO Acquisition = "parego"
)

// suggester is the slice of the MBO machinery the controller depends on.
type suggester interface {
	Observe(obs ...mobo.Observation) error
	SuggestBatch(k int) ([]mobo.Suggestion, error)
}

func (o Options) withDefaults() Options {
	if o.Tau == 0 {
		o.Tau = 5
	}
	if o.StartFrac == 0 {
		o.StartFrac = 0.01
	}
	if o.MinStartPoints == 0 {
		o.MinStartPoints = 8
	}
	if o.MinExploredFrac == 0 {
		o.MinExploredFrac = 0.03
	}
	if o.HVGainThreshold == 0 {
		o.HVGainThreshold = 0.01
	}
	if o.MaxBatch == 0 {
		o.MaxBatch = 10
	}
	if o.Safety == 0 {
		o.Safety = 1.05
	}
	if o.FirstJobSlowdown == 0 {
		o.FirstJobSlowdown = 12
	}
	if o.MBORestarts == 0 {
		o.MBORestarts = 3
	}
	if o.MBOIters == 0 {
		o.MBOIters = 8
	}
	if o.Acquisition == "" {
		o.Acquisition = AcqEHVI
	}
	return o
}

func (o Options) validate() error {
	if o.Tau <= 0 {
		return fmt.Errorf("core: tau %v must be positive", o.Tau)
	}
	if o.StartFrac <= 0 || o.StartFrac > 1 {
		return fmt.Errorf("core: start fraction %v out of (0,1]", o.StartFrac)
	}
	if o.Safety < 1 {
		return fmt.Errorf("core: safety factor %v must be ≥ 1", o.Safety)
	}
	if o.FirstJobSlowdown < 1 {
		return fmt.Errorf("core: first-job slowdown bound %v must be ≥ 1", o.FirstJobSlowdown)
	}
	switch o.Acquisition {
	case AcqEHVI, AcqParEGO:
	default:
		return fmt.Errorf("core: unknown acquisition %q", o.Acquisition)
	}
	return nil
}

// aggObs accumulates repeated measurements of one configuration.
type aggObs struct {
	jobs     int
	sumLat   float64
	sumE     float64
	duration float64
	// ewmaLat is the recent-window latency estimate for drift detection;
	// lastRound records when it was last refreshed so stale windows are
	// never mistaken for fresh ones.
	ewmaLat   float64
	ewmaInit  bool
	lastRound int
}

// predLatency is the latency estimate used for planning: the lifetime mean,
// bumped up by the recent window when that window is higher. Under upward
// drift (throttling) this makes plans pessimistic, which converts drift into
// early fallbacks instead of deadline misses.
func (a *aggObs) predLatency() float64 {
	m := a.meanLatency()
	if a.ewmaInit && a.ewmaLat > m {
		return a.ewmaLat
	}
	return m
}

func (a *aggObs) meanLatency() float64 { return a.sumLat / float64(a.jobs) }
func (a *aggObs) meanEnergy() float64  { return a.sumE / float64(a.jobs) }

// Controller is the BoFL pace controller for one device and one FL task.
type Controller struct {
	opts  Options
	space device.Space

	candidates [][]float64 // normalized coordinates per flat index
	optimizer  suggester

	phase    Phase
	round    int
	queue    []int // candidate indices awaiting exploration
	xmaxIdx  int
	xmaxObs  *aggObs
	observed map[int]*aggObs

	deadlineSum   float64 // for T_avg over phase-1 rounds
	deadlineCount int
	lastHV        float64
	haveHV        bool
	readapts      int
	// remeasureXmax forces a fresh guardian measurement at the start of
	// the next round after a drift re-adaptation.
	remeasureXmax bool

	// sink receives domain metrics and spans; obs.Nop unless SetSink
	// installed a live telemetry backend.
	sink obs.Sink
}

var _ PaceController = (*Controller)(nil)

// New constructs a BoFL controller over the given DVFS space.
func New(space device.Space, opts Options) (*Controller, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}

	n := space.Size()
	candidates := make([][]float64, n)
	for i := 0; i < n; i++ {
		cfg, err := space.Config(i)
		if err != nil {
			return nil, err
		}
		norm, err := space.Normalize(cfg)
		if err != nil {
			return nil, err
		}
		candidates[i] = norm
	}
	optimizer, err := newSuggester(candidates, opts)
	if err != nil {
		return nil, err
	}

	// Quasi-random starting design (§4.2), with x_max forced to the front
	// so T(x_max) is known before any risky exploration.
	count := int(math.Ceil(opts.StartFrac * float64(n)))
	if count < opts.MinStartPoints {
		count = opts.MinStartPoints
	}
	starts, err := mobo.HaltonIndices(count, space.Dims())
	if err != nil {
		return nil, err
	}
	xmaxIdx, err := space.Index(space.Max())
	if err != nil {
		return nil, err
	}
	queue := make([]int, 0, len(starts)+1)
	queue = append(queue, xmaxIdx)
	for _, s := range starts {
		if s != xmaxIdx {
			queue = append(queue, s)
		}
	}

	return &Controller{
		opts:       opts,
		space:      space,
		candidates: candidates,
		optimizer:  optimizer,
		phase:      PhaseRandomExplore,
		queue:      queue,
		xmaxIdx:    xmaxIdx,
		observed:   make(map[int]*aggObs),
		sink:       obs.Nop,
	}, nil
}

// Phase returns the controller's current phase.
func (c *Controller) Phase() Phase { return c.phase }

// NumExplored returns the number of distinct configurations observed so far.
func (c *Controller) NumExplored() int { return len(c.observed) }

// Front returns the Pareto front of mean observations as (energy, latency)
// points.
func (c *Controller) Front() []pareto.Point {
	pts := make([]pareto.Point, 0, len(c.observed))
	for _, a := range c.observed {
		pts = append(pts, pareto.Point{X: a.meanEnergy(), Y: a.meanLatency()})
	}
	return pareto.Front(pts)
}

// ObservedPoints returns every explored configuration's mean observation as
// an (energy, latency) point — the exploration cloud of Figure 11.
func (c *Controller) ObservedPoints() []pareto.Point {
	pts := make([]pareto.Point, 0, len(c.observed))
	for _, a := range c.observed {
		pts = append(pts, pareto.Point{X: a.meanEnergy(), Y: a.meanLatency()})
	}
	return pts
}

// FrontIndices returns the candidate indices whose mean observations form the
// current Pareto front.
func (c *Controller) FrontIndices() []int {
	idxs := make([]int, 0, len(c.observed))
	pts := make([]pareto.Point, 0, len(c.observed))
	for i, a := range c.observed {
		idxs = append(idxs, i)
		pts = append(pts, pareto.Point{X: a.meanEnergy(), Y: a.meanLatency()})
	}
	sel := pareto.FrontIndices(pts)
	out := make([]int, len(sel))
	for k, s := range sel {
		out[k] = idxs[s]
	}
	return out
}

// ErrNoJobs is returned when RunRound is called with a non-positive job
// count.
var ErrNoJobs = errors.New("core: round has no jobs")

// observe folds a batch of job measurements on one configuration into the
// controller's state and the MBO dataset.
func (c *Controller) observe(index int, jobs int, sumLat, sumE float64) error {
	a, ok := c.observed[index]
	isNew := !ok
	if isNew {
		a = &aggObs{}
		c.observed[index] = a
	}
	a.jobs += jobs
	a.sumLat += sumLat
	a.sumE += sumE
	a.duration += sumLat
	a.lastRound = c.round
	if index == c.xmaxIdx {
		c.xmaxObs = a
	}
	if c.updateDrift(a, sumLat/float64(jobs)) {
		return c.readapt(a)
	}
	if !isNew {
		// Repeat executions (guardian drains, exploitation jobs) refine
		// the running means used by the ILP, but are not appended to
		// the GP dataset: the surrogate conditions on one aggregate
		// measurement per configuration, keeping the O(n³) fits sized
		// to the number of explored configurations.
		return nil
	}
	return c.optimizer.Observe(mobo.Observation{
		Index:   index,
		Energy:  sumE / float64(jobs),
		Latency: sumLat / float64(jobs),
	})
}

// newSuggester builds the configured MBO strategy.
func newSuggester(candidates [][]float64, opts Options) (suggester, error) {
	moboOpts := mobo.Options{
		Seed:     opts.Seed,
		Restarts: opts.MBORestarts,
		Iters:    opts.MBOIters,
	}
	switch opts.Acquisition {
	case AcqParEGO:
		return mobo.NewParEGO(candidates, moboOpts)
	default:
		return mobo.NewOptimizer(candidates, moboOpts)
	}
}

// hypervolume computes the hypervolume of the observed front against the
// worst-observed reference point (the paper's reference choice, §4.3).
func (c *Controller) hypervolume() (float64, error) {
	pts := c.ObservedPoints()
	ref, err := pareto.ReferenceFrom(pts)
	if err != nil {
		return 0, err
	}
	return pareto.Hypervolume(pts, ref), nil
}

// txmax returns the guardian configuration's planning latency (lifetime mean,
// bumped by the recent window under upward drift).
func (c *Controller) txmax() float64 {
	if c.xmaxObs == nil || c.xmaxObs.jobs == 0 {
		return 0
	}
	return c.xmaxObs.predLatency()
}
