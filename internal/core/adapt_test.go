package core

import (
	"testing"

	"bofl/internal/device"
)

// thermalExec simulates a board that heats up: after warmupJobs jobs, every
// configuration becomes `slowdown`× slower and √slowdown× hungrier.
type thermalExec struct {
	dev        *device.Device
	w          device.Workload
	jobs       int
	warmupJobs int
	slowdown   float64
}

func (e *thermalExec) RunJob(cfg device.Config) (JobResult, error) {
	lat, energy, err := e.dev.Perf(e.w, cfg)
	if err != nil {
		return JobResult{}, err
	}
	e.jobs++
	if e.jobs > e.warmupJobs {
		lat *= e.slowdown
		energy *= 1.25
	}
	return JobResult{Latency: lat, Energy: energy}, nil
}

func TestDriftDetectionTriggersReadapt(t *testing.T) {
	dev := device.JetsonAGX()
	space := smallSpace()
	c, err := New(space, Options{Seed: 3, Tau: 2, DriftThreshold: 0.2, MBORestarts: 1, MBOIters: 3})
	if err != nil {
		t.Fatal(err)
	}
	xmaxLat, err := dev.Latency(device.ViT, space.Max())
	if err != nil {
		t.Fatal(err)
	}
	// Throttle after ~8 rounds of 60 jobs; deadlines generous enough that
	// the 1.4× slowdown stays feasible.
	exec := &thermalExec{dev: dev, w: device.ViT, warmupJobs: 8 * 60, slowdown: 1.4}
	deadlines := mkDeadlines(xmaxLat*60*1.7, 2.2, 30, 5)
	sawExploitBefore := false
	misses := 0
	for r := 0; r < 30; r++ {
		rep, err := c.RunRound(60, deadlines[r], exec)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.DeadlineMet {
			misses++
			// A miss is only excusable in the transition window
			// (rounds 9–10): a tight deadline issued while the
			// landscape shifts under the controller can be
			// physically unsalvageable — by the time drift is
			// observable, even an x_max sprint no longer fits.
			if r < 8 || r > 10 {
				t.Errorf("round %d missed deadline outside the throttle transition (phase %v)", rep.Round, rep.Phase)
			}
		}
		if c.Phase() == PhaseExploit && c.Readapts() == 0 {
			sawExploitBefore = true
		}
		if _, err := c.BetweenRounds(); err != nil {
			t.Fatal(err)
		}
	}
	if !sawExploitBefore {
		t.Error("controller never reached exploitation before the throttle hit")
	}
	if misses > 1 {
		t.Errorf("%d deadline misses under throttling, want ≤1 (transition only)", misses)
	}
	if c.Readapts() == 0 {
		t.Error("drift never triggered a re-adaptation")
	}
	if c.Phase() != PhaseExploit {
		t.Errorf("controller should settle back into exploitation, stuck in %v", c.Phase())
	}
	// The recalibrated means must reflect the hot landscape: x_max's
	// stored mean should be ≈ slowdown × the cold latency.
	hot := c.txmax()
	if hot < xmaxLat*1.2 {
		t.Errorf("x_max mean %.4f not recalibrated (cold %.4f)", hot, xmaxLat)
	}
}

func TestDriftDisabledByDefault(t *testing.T) {
	dev := device.JetsonAGX()
	space := smallSpace()
	c, err := New(space, Options{Seed: 4, Tau: 2, MBORestarts: 1, MBOIters: 3})
	if err != nil {
		t.Fatal(err)
	}
	xmaxLat, err := dev.Latency(device.ViT, space.Max())
	if err != nil {
		t.Fatal(err)
	}
	exec := &thermalExec{dev: dev, w: device.ViT, warmupJobs: 8 * 60, slowdown: 1.3}
	deadlines := mkDeadlines(xmaxLat*60*1.8, 2.2, 25, 6)
	for r := 0; r < 25; r++ {
		if _, err := c.RunRound(60, deadlines[r], exec); err != nil {
			t.Fatal(err)
		}
		if _, err := c.BetweenRounds(); err != nil {
			t.Fatal(err)
		}
	}
	if c.Readapts() != 0 {
		t.Errorf("drift detection ran with threshold 0: %d readapts", c.Readapts())
	}
}

func TestAdaptiveBeatsStaticUnderThrottling(t *testing.T) {
	// Energy comparison on the same throttling trace: the adaptive
	// controller re-maps the hot landscape and should not lose to the
	// static one (whose exploitation plans are built on stale cold
	// statistics) by more than noise; typically it wins.
	dev := device.JetsonAGX()
	space := smallSpace()
	xmaxLat, err := dev.Latency(device.ViT, space.Max())
	if err != nil {
		t.Fatal(err)
	}
	deadlines := mkDeadlines(xmaxLat*60*1.8, 2.4, 40, 7)
	runWith := func(threshold float64) (energy float64, misses int) {
		c, err := New(space, Options{Seed: 5, Tau: 2, DriftThreshold: threshold, MBORestarts: 1, MBOIters: 3})
		if err != nil {
			t.Fatal(err)
		}
		exec := &thermalExec{dev: dev, w: device.ViT, warmupJobs: 8 * 60, slowdown: 1.45}
		for r := 0; r < 40; r++ {
			rep, err := c.RunRound(60, deadlines[r], exec)
			if err != nil {
				t.Fatal(err)
			}
			energy += rep.Energy
			if !rep.DeadlineMet {
				misses++
			}
			if _, err := c.BetweenRounds(); err != nil {
				t.Fatal(err)
			}
		}
		return energy, misses
	}
	adaptiveE, adaptiveMiss := runWith(0.2)
	staticE, _ := runWith(0)
	if adaptiveMiss > 0 {
		t.Errorf("adaptive controller missed %d deadlines", adaptiveMiss)
	}
	if adaptiveE > staticE*1.05 {
		t.Errorf("adaptive (%.0f J) clearly worse than static (%.0f J) under throttling", adaptiveE, staticE)
	}
}

func TestThermalDeviceModel(t *testing.T) {
	dev := device.JetsonAGX()
	td, err := device.NewThermalDevice(dev, device.DefaultThermal())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := device.NewThermalDevice(nil, device.DefaultThermal()); err == nil {
		t.Error("nil device accepted")
	}
	bad := device.DefaultThermal()
	bad.CriticalC = bad.ThrottleC
	if _, err := device.NewThermalDevice(dev, bad); err == nil {
		t.Error("invalid thermal model accepted")
	}

	cfg := dev.Space().Max()
	coldLat, _, err := td.Perf(device.ViT, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Sustained max-clock load must heat the board into throttling.
	for i := 0; i < 4000; i++ {
		if _, _, err := td.RunJob(device.ViT, cfg); err != nil {
			t.Fatal(err)
		}
	}
	if td.Temperature() <= 60 {
		t.Errorf("temperature %.1f°C after sustained load, want > throttle point", td.Temperature())
	}
	hotLat, _, err := td.Perf(device.ViT, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hotLat <= coldLat*1.05 {
		t.Errorf("no throttling: cold %.4f vs hot %.4f", coldLat, hotLat)
	}
	// Cooling brings it back.
	td.Cool(3600)
	if td.Temperature() > 26 {
		t.Errorf("board did not cool: %.1f°C", td.Temperature())
	}
	td.Reset()
	if td.Temperature() != device.DefaultThermal().AmbientC {
		t.Error("reset did not restore ambient")
	}
	if td.Device() != dev {
		t.Error("Device() accessor broken")
	}
}
