// Package ilp solves BoFL's exploitation problem (Eqn. 1 of the paper): given
// a set of candidate DVFS configurations with known per-job latency and
// energy, assign one configuration to each of W remaining jobs so that total
// energy is minimized and total latency stays within the round's deadline
// budget. Because job order does not matter, the decision variables are the
// integer counts n_k of jobs run under configuration k:
//
//	min  Σ n_k·E_k   s.t.  Σ n_k = W,  Σ n_k·T_k ≤ B,  n_k ∈ ℤ≥0
//
// The primary solver is branch-and-bound (the algorithm the paper uses via
// Gurobi) with a closed-form LP-relaxation bound derived from the lower
// convex hull of the (T, E) points. An independent exact dynamic-programming
// solver is provided for cross-checking in tests.
package ilp

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
)

// Option is one candidate configuration's per-job cost.
type Option struct {
	Time   float64 // seconds per job under this configuration
	Energy float64 // Joules per job under this configuration
}

// Assignment is a solution: Counts[k] jobs run under options[k].
type Assignment struct {
	Counts      []int
	TotalTime   float64
	TotalEnergy float64
}

// ErrInfeasible indicates that even the fastest configuration cannot finish
// the remaining jobs within the budget.
var ErrInfeasible = errors.New("ilp: no assignment meets the time budget")

func validate(opts []Option, jobs int, budget float64) error {
	if len(opts) == 0 {
		return errors.New("ilp: no configuration options")
	}
	if jobs < 0 {
		return fmt.Errorf("ilp: negative job count %d", jobs)
	}
	for i, o := range opts {
		if o.Time <= 0 || o.Energy <= 0 || math.IsNaN(o.Time) || math.IsNaN(o.Energy) {
			return fmt.Errorf("ilp: option %d has non-positive cost (%v, %v)", i, o.Time, o.Energy)
		}
	}
	if math.IsNaN(budget) {
		return errors.New("ilp: NaN budget")
	}
	return nil
}

// hull is the non-increasing lower convex envelope of (Time, Energy) points:
// hull[i] are vertices with strictly increasing Time and strictly decreasing
// Energy. Evaluating the envelope at an average per-job time τ gives the LP
// relaxation's optimal per-job energy.
type hull struct {
	pts []Option // envelope vertices, ascending Time
}

func buildHull(opts []Option) hull {
	sorted := make([]Option, len(opts))
	copy(sorted, opts)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Time != sorted[j].Time {
			return sorted[i].Time < sorted[j].Time
		}
		return sorted[i].Energy < sorted[j].Energy
	})
	// Keep only points below the running minimum energy: anything with
	// higher energy and higher time is dominated and can never appear on
	// the non-increasing envelope.
	staircase := sorted[:0:0]
	bestE := math.Inf(1)
	for _, p := range sorted {
		if p.Energy < bestE {
			staircase = append(staircase, p)
			bestE = p.Energy
		}
	}
	// Andrew monotone-chain lower hull over the staircase.
	var h []Option
	for _, p := range staircase {
		for len(h) >= 2 {
			a, b := h[len(h)-2], h[len(h)-1]
			// Drop b if it lies on or above segment a→p (cross ≤ 0
			// means the turn a→b→p is not convex from below).
			cross := (b.Time-a.Time)*(p.Energy-a.Energy) - (b.Energy-a.Energy)*(p.Time-a.Time)
			if cross <= 0 {
				h = h[:len(h)-1]
			} else {
				break
			}
		}
		h = append(h, p)
	}
	return hull{pts: h}
}

// minTime returns the smallest per-job time on the envelope.
func (h hull) minTime() float64 { return h.pts[0].Time }

// value evaluates the envelope at average per-job time tau: the minimum
// achievable per-job energy for a fractional mix with mean time ≤ tau.
// Returns +Inf when tau is below the fastest option's time (infeasible).
func (h hull) value(tau float64) float64 {
	if tau < h.pts[0].Time {
		return math.Inf(1)
	}
	last := h.pts[len(h.pts)-1]
	if tau >= last.Time {
		return last.Energy
	}
	// Binary search for the segment containing tau.
	lo, hi := 0, len(h.pts)-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if h.pts[mid].Time <= tau {
			lo = mid
		} else {
			hi = mid
		}
	}
	a, b := h.pts[lo], h.pts[hi]
	frac := (tau - a.Time) / (b.Time - a.Time)
	return a.Energy + frac*(b.Energy-a.Energy)
}

// LPLowerBound returns the LP-relaxation optimum of the assignment problem:
// jobs × envelope(budget/jobs). Returns ErrInfeasible when no fractional mix
// fits the budget, and 0 for zero jobs.
func LPLowerBound(opts []Option, jobs int, budget float64) (float64, error) {
	if err := validate(opts, jobs, budget); err != nil {
		return 0, err
	}
	if jobs == 0 {
		return 0, nil
	}
	h := buildHull(opts)
	v := h.value(budget / float64(jobs))
	if math.IsInf(v, 1) {
		return 0, ErrInfeasible
	}
	return v * float64(jobs), nil
}

// bbWS is a branch-and-bound solver workspace. Search nodes live on the
// goroutine stack (the tree is explored depth-first), so the node state that
// needs heap storage — the dominance-filtered option list, the per-depth
// suffix hulls (all vertices packed in one slab), the hull-build staircase
// scratch, and the current/incumbent count vectors — is gathered here and
// recycled through a free list (bbPool). In steady state Solve's only
// allocation is the returned Assignment.
type bbWS struct {
	work       []indexedOption
	hullAt     []hull
	hullSlab   []Option // backing storage for every suffix hull's vertices
	stair      []Option
	counts     []int
	bestCounts []int

	n          int // len(work) after dominance filtering
	bestEnergy float64
	nodes      uint64
}

var bbPool sync.Pool

// getBB returns a workspace sized for up to n options with counts zeroed and
// per-solve state reset.
func getBB(n int) *bbWS {
	s, _ := bbPool.Get().(*bbWS)
	if s == nil {
		s = &bbWS{}
	}
	if cap(s.work) < n {
		s.work = make([]indexedOption, 0, n)
		s.hullAt = make([]hull, n)
		s.hullSlab = make([]Option, 0, n*(n+1)/2)
		s.stair = make([]Option, 0, n)
		s.counts = make([]int, n)
		s.bestCounts = make([]int, n)
	}
	s.work = s.work[:0]
	s.hullSlab = s.hullSlab[:0]
	for i := range s.counts[:n] {
		s.counts[i] = 0
	}
	s.bestEnergy = math.Inf(1)
	s.nodes = 0
	return s
}

func putBB(s *bbWS) { bbPool.Put(s) }

// suffixHull builds the lower envelope of work[i:] into the shared vertex
// slab. work is sorted by strictly increasing Time (dominance filtering
// removes ties), so the suffix is already in buildHull's scan order and the
// resulting vertices are identical to buildHull(work[i:]) — without the sort
// or the per-suffix copies.
func (s *bbWS) suffixHull(i int) hull {
	stair := s.stair[:0]
	bestE := math.Inf(1)
	for _, w := range s.work[i:] {
		if w.Energy < bestE {
			stair = append(stair, w.Option)
			bestE = w.Energy
		}
	}
	base := len(s.hullSlab)
	h := s.hullSlab[base:base]
	for _, p := range stair {
		for len(h) >= 2 {
			a, b := h[len(h)-2], h[len(h)-1]
			cross := (b.Time-a.Time)*(p.Energy-a.Energy) - (b.Energy-a.Energy)*(p.Time-a.Time)
			if cross <= 0 {
				h = h[:len(h)-1]
			} else {
				break
			}
		}
		h = append(h, p)
	}
	s.hullSlab = s.hullSlab[:base+len(h)]
	return hull{pts: h}
}

// childBound is the LP relaxation of the subtree where counts for configs
// < i are fixed (accEnergy), counts[i] = c, and configs > i fill the
// remainder fractionally. Returns +Inf when infeasible.
func (s *bbWS) childBound(i, c, remJobs int, remBudget, accEnergy float64) float64 {
	e := accEnergy + float64(c)*s.work[i].Energy
	left := remJobs - c
	if left == 0 {
		return e
	}
	b := remBudget - float64(c)*s.work[i].Time
	if i+1 >= s.n {
		return math.Inf(1)
	}
	h := s.hullAt[i+1]
	if float64(left)*h.minTime() > b+1e-9 {
		return math.Inf(1)
	}
	return e + h.value(b/float64(left))*float64(left)
}

const bbEps = 1e-9

func (s *bbWS) dfs(i, remJobs int, remBudget, accEnergy float64) {
	s.nodes++
	if remJobs == 0 {
		if accEnergy < s.bestEnergy {
			s.bestEnergy = accEnergy
			copy(s.bestCounts[:s.n], s.counts[:s.n])
		}
		return
	}
	if i == s.n {
		return
	}
	if i == s.n-1 {
		// Last configuration must absorb all remaining jobs.
		if float64(remJobs)*s.work[i].Time <= remBudget+1e-9 {
			s.counts[i] = remJobs
			total := accEnergy + float64(remJobs)*s.work[i].Energy
			if total < s.bestEnergy {
				s.bestEnergy = total
				copy(s.bestCounts[:s.n], s.counts[:s.n])
			}
			s.counts[i] = 0
		}
		return
	}

	maxByBudget := remJobs
	if byBudget := int(math.Floor((remBudget + 1e-9) / s.work[i].Time)); byBudget < maxByBudget {
		maxByBudget = byBudget
	}
	if maxByBudget < 0 {
		return
	}
	// The LP value with counts[i] pinned to c is convex in c
	// (parametric-LP convexity). Locate the integer minimizer by ternary
	// search, then expand outward: once a direction's bound crosses the
	// incumbent, everything further out is at least as bad and the whole
	// direction is pruned.
	lo, hi := 0, maxByBudget
	for hi-lo > 2 {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		b1 := s.childBound(i, m1, remJobs, remBudget, accEnergy)
		// Infeasibility (+Inf) occupies a lower interval of c — work[i]
		// is the fastest remaining option, so more jobs on it never hurt
		// feasibility. An infeasible left probe therefore always moves
		// the bracket up.
		if math.IsInf(b1, 1) {
			lo = m1
		} else if b1 <= s.childBound(i, m2, remJobs, remBudget, accEnergy) {
			hi = m2
		} else {
			lo = m1
		}
	}
	cMin := lo
	bMin := s.childBound(i, cMin, remJobs, remBudget, accEnergy)
	for c := lo + 1; c <= hi; c++ {
		if bc := s.childBound(i, c, remJobs, remBudget, accEnergy); bc < bMin {
			cMin, bMin = c, bc
		}
	}
	for c := cMin; c <= maxByBudget; c++ {
		if s.childBound(i, c, remJobs, remBudget, accEnergy) >= s.bestEnergy-bbEps {
			break
		}
		s.counts[i] = c
		s.dfs(i+1, remJobs-c, remBudget-float64(c)*s.work[i].Time, accEnergy+float64(c)*s.work[i].Energy)
		s.counts[i] = 0
	}
	for c := cMin - 1; c >= 0; c-- {
		if s.childBound(i, c, remJobs, remBudget, accEnergy) >= s.bestEnergy-bbEps {
			break
		}
		s.counts[i] = c
		s.dfs(i+1, remJobs-c, remBudget-float64(c)*s.work[i].Time, accEnergy+float64(c)*s.work[i].Energy)
		s.counts[i] = 0
	}
}

// Solve finds an exact integer-optimal assignment by branch-and-bound. Each
// node fixes the count of one configuration; the LP envelope over the
// remaining configurations provides the lower bound. Values are explored
// around the LP-suggested count first, so the incumbent converges quickly
// and pruning is effective; typical BoFL instances (≤ 30 Pareto options,
// ≤ 400 jobs) solve in well under a millisecond, and the workspace free
// list keeps the steady-state allocation to the returned Assignment alone.
func Solve(opts []Option, jobs int, budget float64) (Assignment, error) {
	if err := validate(opts, jobs, budget); err != nil {
		return Assignment{}, err
	}
	if jobs == 0 {
		recordSolve(0, false)
		return Assignment{Counts: make([]int, len(opts))}, nil
	}

	s := getBB(len(opts))
	defer putBB(s)

	// Integer optima may use off-hull points, so we cannot restrict to
	// envelope vertices — but dominated options (some other option no
	// slower and no hungrier) can always be replaced, so drop those.
	work := s.work
	for i, o := range opts {
		dominated := false
		for j, p := range opts {
			if j == i {
				continue
			}
			if p.Time <= o.Time && p.Energy <= o.Energy && (p.Time < o.Time || p.Energy < o.Energy || j < i) {
				dominated = true
				break
			}
		}
		if !dominated {
			work = append(work, indexedOption{Option: o, orig: i})
		}
	}
	// Insertion sort by time: the option count is small (≤ a few dozen
	// Pareto points) and this avoids sort.Slice's closure allocations.
	// Times are pairwise distinct after dominance filtering, so the order
	// is the same one sort.Slice produced.
	for i := 1; i < len(work); i++ {
		w := work[i]
		j := i - 1
		for j >= 0 && work[j].Time > w.Time {
			work[j+1] = work[j]
			j--
		}
		work[j+1] = w
	}
	s.work = work
	s.n = len(work)

	if float64(jobs)*work[0].Time > budget+1e-9 {
		recordSolve(0, true)
		return Assignment{}, ErrInfeasible
	}

	n := s.n
	// Suffix hulls: hullAt[i] covers work[i:], all sharing one vertex slab.
	hullAt := s.hullAt[:n]
	for i := 0; i < n; i++ {
		hullAt[i] = s.suffixHull(i)
	}

	// Seed the incumbent with the best two-configuration blend. The LP
	// optimum mixes at most two options, so this is near-optimal and makes
	// the branch-and-bound pruning effective from the first node.
	bestCounts := s.bestCounts[:n]
	for a := 0; a < n; a++ {
		for b := a; b < n; b++ {
			// jobs = ca + cb, time = ca·Ta + cb·Tb ≤ budget. With
			// Ta ≤ Tb (work sorted by time), feasibility needs as
			// many fast jobs as the budget shortfall demands.
			ca := 0
			if work[b].Time > work[a].Time {
				need := (float64(jobs)*work[b].Time - budget) / (work[b].Time - work[a].Time)
				ca = int(math.Ceil(need - 1e-9))
			} else if float64(jobs)*work[b].Time > budget+1e-9 {
				continue
			}
			if ca < 0 {
				ca = 0
			}
			if ca > jobs {
				continue
			}
			cb := jobs - ca
			tt := float64(ca)*work[a].Time + float64(cb)*work[b].Time
			if tt > budget+1e-9 {
				continue
			}
			te := float64(ca)*work[a].Energy + float64(cb)*work[b].Energy
			if te < s.bestEnergy {
				s.bestEnergy = te
				for k := range bestCounts {
					bestCounts[k] = 0
				}
				bestCounts[a] += ca
				bestCounts[b] += cb
			}
		}
	}

	s.dfs(0, jobs, budget, 0)

	if math.IsInf(s.bestEnergy, 1) {
		recordSolve(s.nodes, true)
		return Assignment{}, ErrInfeasible
	}
	recordSolve(s.nodes, false)
	out := Assignment{Counts: make([]int, len(opts))}
	for k, w := range work {
		out.Counts[w.orig] += bestCounts[k]
	}
	for k, c := range out.Counts {
		out.TotalTime += float64(c) * opts[k].Time
		out.TotalEnergy += float64(c) * opts[k].Energy
	}
	return out, nil
}

// indexedOption pairs an Option with its position in the caller's slice.
type indexedOption struct {
	Option
	orig int
}
