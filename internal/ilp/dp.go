package ilp

import (
	"math"
	"sort"
)

// SolveDPValue computes the exact optimal energy by label-setting dynamic
// programming: state w holds the Pareto front of achievable (total time,
// total energy) pairs after assigning w jobs. Labels exceeding the budget are
// discarded. This is an independent algorithm used to cross-check the
// branch-and-bound solver; it only returns the optimal value, not the
// assignment.
func SolveDPValue(opts []Option, jobs int, budget float64) (float64, error) {
	if err := validate(opts, jobs, budget); err != nil {
		return 0, err
	}
	if jobs == 0 {
		return 0, nil
	}

	type label struct{ time, energy float64 }
	frontier := []label{{0, 0}}
	for w := 0; w < jobs; w++ {
		next := make([]label, 0, len(frontier)*len(opts))
		for _, l := range frontier {
			for _, o := range opts {
				t := l.time + o.Time
				if t > budget+1e-9 {
					continue
				}
				next = append(next, label{t, l.energy + o.Energy})
			}
		}
		if len(next) == 0 {
			return 0, ErrInfeasible
		}
		// Prune to the Pareto front over (time, energy).
		sort.Slice(next, func(i, j int) bool {
			if next[i].time != next[j].time {
				return next[i].time < next[j].time
			}
			return next[i].energy < next[j].energy
		})
		pruned := next[:0]
		bestE := math.Inf(1)
		for _, l := range next {
			if l.energy < bestE-1e-12 {
				pruned = append(pruned, l)
				bestE = l.energy
			}
		}
		frontier = pruned
	}
	best := math.Inf(1)
	for _, l := range frontier {
		if l.energy < best {
			best = l.energy
		}
	}
	if math.IsInf(best, 1) {
		return 0, ErrInfeasible
	}
	return best, nil
}
