package ilp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestValidate(t *testing.T) {
	if _, err := Solve(nil, 1, 1); err == nil {
		t.Error("empty options accepted")
	}
	if _, err := Solve([]Option{{1, 1}}, -1, 1); err == nil {
		t.Error("negative jobs accepted")
	}
	if _, err := Solve([]Option{{0, 1}}, 1, 1); err == nil {
		t.Error("zero time accepted")
	}
	if _, err := Solve([]Option{{1, -1}}, 1, 1); err == nil {
		t.Error("negative energy accepted")
	}
	if _, err := Solve([]Option{{1, 1}}, 1, math.NaN()); err == nil {
		t.Error("NaN budget accepted")
	}
}

func TestSolveZeroJobs(t *testing.T) {
	a, err := Solve([]Option{{1, 1}, {2, 0.5}}, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalEnergy != 0 || a.TotalTime != 0 {
		t.Errorf("zero jobs: got %+v", a)
	}
	if len(a.Counts) != 2 || a.Counts[0] != 0 || a.Counts[1] != 0 {
		t.Errorf("zero jobs counts = %v", a.Counts)
	}
}

func TestSolveInfeasible(t *testing.T) {
	_, err := Solve([]Option{{2, 1}}, 5, 9) // needs 10s
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestSolveSingleOption(t *testing.T) {
	a, err := Solve([]Option{{2, 3}}, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Counts[0] != 4 || a.TotalEnergy != 12 || a.TotalTime != 8 {
		t.Errorf("got %+v", a)
	}
}

func TestSolvePrefersEfficientWhenSlackAllows(t *testing.T) {
	// Fast-but-hungry vs slow-but-efficient: with a generous budget all
	// jobs should use the efficient config.
	opts := []Option{{Time: 1, Energy: 5}, {Time: 2, Energy: 1}}
	a, err := Solve(opts, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	if a.Counts[1] != 10 {
		t.Errorf("want all jobs on efficient config, got %v", a.Counts)
	}
}

func TestSolveMixesUnderTightBudget(t *testing.T) {
	// Budget forces a blend: 10 jobs, budget 15 → n_fast + 2·n_slow ≤ 15,
	// n_fast + n_slow = 10 → n_slow ≤ 5. Optimal: 5 fast + 5 slow.
	opts := []Option{{Time: 1, Energy: 5}, {Time: 2, Energy: 1}}
	a, err := Solve(opts, 10, 15)
	if err != nil {
		t.Fatal(err)
	}
	if a.Counts[0] != 5 || a.Counts[1] != 5 {
		t.Errorf("counts = %v, want [5 5]", a.Counts)
	}
	if a.TotalTime > 15 {
		t.Errorf("budget violated: %v", a.TotalTime)
	}
	if math.Abs(a.TotalEnergy-30) > 1e-9 {
		t.Errorf("energy = %v, want 30", a.TotalEnergy)
	}
}

func TestSolveIgnoresDominatedOptions(t *testing.T) {
	opts := []Option{
		{Time: 1, Energy: 5},
		{Time: 1.5, Energy: 6}, // dominated by option 0
		{Time: 2, Energy: 1},
	}
	a, err := Solve(opts, 10, 15)
	if err != nil {
		t.Fatal(err)
	}
	if a.Counts[1] != 0 {
		t.Errorf("dominated option used: %v", a.Counts)
	}
}

func bruteForce(opts []Option, jobs int, budget float64) float64 {
	best := math.Inf(1)
	counts := make([]int, len(opts))
	var rec func(i, rem int)
	rec = func(i, rem int) {
		if i == len(opts)-1 {
			counts[i] = rem
			var tt, te float64
			for k, c := range counts {
				tt += float64(c) * opts[k].Time
				te += float64(c) * opts[k].Energy
			}
			if tt <= budget+1e-9 && te < best {
				best = te
			}
			return
		}
		for c := 0; c <= rem; c++ {
			counts[i] = c
			rec(i+1, rem-c)
		}
	}
	rec(0, jobs)
	return best
}

func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 300; trial++ {
		m := 1 + rng.Intn(4)
		opts := make([]Option, m)
		for i := range opts {
			opts[i] = Option{
				Time:   0.2 + rng.Float64()*2,
				Energy: 0.2 + rng.Float64()*2,
			}
		}
		jobs := 1 + rng.Intn(12)
		budget := float64(jobs) * (0.2 + rng.Float64()*2.2)
		want := bruteForce(opts, jobs, budget)

		got, err := Solve(opts, jobs, budget)
		if math.IsInf(want, 1) {
			if !errors.Is(err, ErrInfeasible) {
				t.Fatalf("trial %d: brute force infeasible, Solve returned %+v, %v", trial, got, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v (opts=%v jobs=%d budget=%v)", trial, err, opts, jobs, budget)
		}
		if math.Abs(got.TotalEnergy-want) > 1e-6 {
			t.Fatalf("trial %d: Solve=%v brute=%v (opts=%v jobs=%d budget=%v)",
				trial, got.TotalEnergy, want, opts, jobs, budget)
		}
		// Assignment internal consistency.
		sum := 0
		var tt, te float64
		for k, c := range got.Counts {
			if c < 0 {
				t.Fatalf("negative count %v", got.Counts)
			}
			sum += c
			tt += float64(c) * opts[k].Time
			te += float64(c) * opts[k].Energy
		}
		if sum != jobs {
			t.Fatalf("counts sum %d != jobs %d", sum, jobs)
		}
		if math.Abs(tt-got.TotalTime) > 1e-9 || math.Abs(te-got.TotalEnergy) > 1e-9 {
			t.Fatalf("totals inconsistent: %+v", got)
		}
		if tt > budget+1e-9 {
			t.Fatalf("budget violated: %v > %v", tt, budget)
		}
	}
}

func TestSolveMatchesDPProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(8)
		opts := make([]Option, m)
		for i := range opts {
			opts[i] = Option{
				Time:   0.1 + rng.Float64()*3,
				Energy: 0.1 + rng.Float64()*3,
			}
		}
		jobs := 1 + rng.Intn(40)
		budget := float64(jobs) * (0.1 + rng.Float64()*3.2)

		bb, errBB := Solve(opts, jobs, budget)
		dp, errDP := SolveDPValue(opts, jobs, budget)
		if errBB != nil || errDP != nil {
			return errors.Is(errBB, ErrInfeasible) == errors.Is(errDP, ErrInfeasible)
		}
		return math.Abs(bb.TotalEnergy-dp) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSolveRealisticScaleIsFast(t *testing.T) {
	// BoFL-scale instance: ~25 Pareto options, 200 jobs.
	rng := rand.New(rand.NewSource(77))
	const m = 25
	opts := make([]Option, m)
	for i := range opts {
		// Pareto-shaped: increasing time, decreasing energy with noise.
		tm := 0.18 + 0.3*float64(i)/m
		opts[i] = Option{Time: tm, Energy: 5.2 - 3.5*float64(i)/m + 0.1*rng.Float64()}
	}
	start := time.Now()
	a, err := Solve(opts, 200, 0.28*200)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("Solve took %v, want well under a second", elapsed)
	}
	if a.TotalTime > 0.28*200+1e-9 {
		t.Errorf("budget violated: %v", a.TotalTime)
	}
	// Cross-check against the exact DP at a smaller job count — the DP's
	// label frontier grows too large at 200 jobs to keep this test quick.
	small, err := Solve(opts, 60, 0.28*60)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := SolveDPValue(opts, 60, 0.28*60)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(small.TotalEnergy-dp) > 1e-6 {
		t.Errorf("B&B %v != DP %v", small.TotalEnergy, dp)
	}
}

func TestLPLowerBound(t *testing.T) {
	opts := []Option{{Time: 1, Energy: 5}, {Time: 2, Energy: 1}}
	// τ = 1.5 → halfway along the hull segment: energy 3 per job.
	lb, err := LPLowerBound(opts, 10, 15)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lb-30) > 1e-9 {
		t.Errorf("LP bound = %v, want 30", lb)
	}
	// Generous budget → all jobs at min energy.
	lb, err = LPLowerBound(opts, 10, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lb-10) > 1e-9 {
		t.Errorf("LP bound = %v, want 10", lb)
	}
	if _, err := LPLowerBound(opts, 10, 5); !errors.Is(err, ErrInfeasible) {
		t.Errorf("want ErrInfeasible, got %v", err)
	}
	lb, err = LPLowerBound(opts, 0, 5)
	if err != nil || lb != 0 {
		t.Errorf("zero jobs: %v, %v", lb, err)
	}
}

func TestLPBoundNeverExceedsIntegerOptimum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(5)
		opts := make([]Option, m)
		for i := range opts {
			opts[i] = Option{Time: 0.1 + rng.Float64(), Energy: 0.1 + rng.Float64()}
		}
		jobs := 1 + rng.Intn(20)
		budget := float64(jobs) * (0.1 + rng.Float64()*1.2)
		lb, errLB := LPLowerBound(opts, jobs, budget)
		sol, errS := Solve(opts, jobs, budget)
		if errLB != nil || errS != nil {
			// LP infeasible implies ILP infeasible.
			if errors.Is(errLB, ErrInfeasible) && !errors.Is(errS, ErrInfeasible) {
				return false
			}
			return true
		}
		return lb <= sol.TotalEnergy+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBuildHullStaircase(t *testing.T) {
	h := buildHull([]Option{
		{Time: 1, Energy: 10},
		{Time: 2, Energy: 4},
		{Time: 3, Energy: 3.5}, // above segment (2,4)-(4,1): hull drops it
		{Time: 4, Energy: 1},
		{Time: 5, Energy: 2}, // slower and hungrier than (4,1): dropped
	})
	if len(h.pts) != 3 {
		t.Fatalf("hull = %+v, want 3 vertices", h.pts)
	}
	if h.pts[0] != (Option{1, 10}) || h.pts[1] != (Option{2, 4}) || h.pts[2] != (Option{4, 1}) {
		t.Errorf("hull = %+v", h.pts)
	}
	if h.value(0.5) != math.Inf(1) {
		t.Error("value below min time should be +Inf")
	}
	if got := h.value(3); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("value(3) = %v, want 2.5", got)
	}
	if got := h.value(100); got != 1 {
		t.Errorf("value(100) = %v, want 1", got)
	}
}
