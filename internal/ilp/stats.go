package ilp

import "sync/atomic"

// Solver instrumentation: process-wide atomics snapshotted by Stats for the
// obs layer. One atomic add per Solve call, so the hot exploitation path
// never touches shared cache lines per node.
var (
	statSolves     atomic.Uint64
	statInfeasible atomic.Uint64
	statNodes      atomic.Uint64
)

// SolverStats is a snapshot of the branch-and-bound solver's lifetime work.
type SolverStats struct {
	// Solves counts completed Solve calls (including infeasible ones).
	Solves uint64
	// Infeasible counts Solve calls that returned ErrInfeasible.
	Infeasible uint64
	// Nodes counts branch-and-bound tree nodes expanded across all solves;
	// Nodes/Solves is the mean search effort per exploitation re-plan.
	Nodes uint64
}

// Stats snapshots the solver counters.
func Stats() SolverStats {
	return SolverStats{
		Solves:     statSolves.Load(),
		Infeasible: statInfeasible.Load(),
		Nodes:      statNodes.Load(),
	}
}

// recordSolve folds one completed Solve into the counters.
func recordSolve(nodes uint64, infeasible bool) {
	statSolves.Add(1)
	statNodes.Add(nodes)
	if infeasible {
		statInfeasible.Add(1)
	}
}
