package faultinject

import (
	"encoding/binary"
	"errors"
	"hash/fnv"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNopPolicyInjectsNothing(t *testing.T) {
	var p Policy = NopPolicy{}
	for round := 0; round < 50; round++ {
		d := p.Decide(Point{Client: "c0", Round: round})
		if d.Faulty() {
			t.Fatalf("NopPolicy injected %+v", d)
		}
	}
	if OrNop(nil).Decide(Point{}) != (Decision{}) {
		t.Error("OrNop(nil) not a nop")
	}
}

func TestPlanDeterministicPerSeed(t *testing.T) {
	mk := func(seed int64) *Plan {
		return &Plan{
			Seed: seed,
			Default: Profile{
				Drop: 0.2, Crash: 0.1, Timeout: 0.1, Corrupt: 0.05,
				Straggle: 0.3, StraggleMin: 10 * time.Millisecond, StraggleMax: time.Second,
			},
		}
	}
	a, b := mk(7), mk(7)
	other := mk(8)
	differs := false
	for round := 1; round <= 200; round++ {
		pt := Point{Layer: LayerParticipant, Client: "edge-3", Round: round}
		da, db := a.Decide(pt), b.Decide(pt)
		if da != db {
			t.Fatalf("round %d: same seed diverged: %+v vs %+v", round, da, db)
		}
		if da != other.Decide(pt) {
			differs = true
		}
	}
	if !differs {
		t.Error("seeds 7 and 8 produced identical decision streams")
	}
}

// TestPlanOrderIndependence is the property that makes chaos replayable under
// concurrent dispatch: decisions are pure functions of the point, so querying
// them in any order — or from many goroutines — yields the same stream.
func TestPlanOrderIndependence(t *testing.T) {
	plan := &Plan{Seed: 42, Default: Profile{Drop: 0.3, Straggle: 0.4, StraggleMax: time.Second}}
	points := make([]Point, 0, 300)
	for r := 1; r <= 30; r++ {
		for c := 0; c < 10; c++ {
			points = append(points, Point{Client: string(rune('a' + c)), Round: r})
		}
	}
	forward := make([]Decision, len(points))
	for i, pt := range points {
		forward[i] = plan.Decide(pt)
	}
	// Reverse order.
	for i := len(points) - 1; i >= 0; i-- {
		if got := plan.Decide(points[i]); got != forward[i] {
			t.Fatalf("point %+v: reverse-order decision %+v != %+v", points[i], got, forward[i])
		}
	}
	// Concurrent queries (run under -race in CI).
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, pt := range points {
				if got := plan.Decide(pt); got != forward[i] {
					t.Errorf("point %+v: concurrent decision %+v != %+v", pt, got, forward[i])
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestPlanRatesApproximatelyHonored(t *testing.T) {
	plan := &Plan{Seed: 3, Default: Profile{Drop: 0.3}}
	drops := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if plan.Decide(Point{Client: "c", Round: i}).Drop {
			drops++
		}
	}
	rate := float64(drops) / n
	if math.Abs(rate-0.3) > 0.03 {
		t.Errorf("drop rate %.3f, want ~0.30", rate)
	}
}

func TestPlanPerClientProfiles(t *testing.T) {
	plan := &Plan{
		Seed:    1,
		Default: Profile{},
		Client:  map[string]Profile{"bad": {Drop: 1}},
	}
	for r := 1; r <= 20; r++ {
		if d := plan.Decide(Point{Client: "good", Round: r}); d.Faulty() {
			t.Fatalf("default-profile client faulted: %+v", d)
		}
		if d := plan.Decide(Point{Client: "bad", Round: r}); !d.Drop {
			t.Fatalf("drop-rate-1 client survived round %d", r)
		}
	}
}

func TestFlakyThenRecover(t *testing.T) {
	plan := &Plan{Seed: 5, Default: Profile{FlakyAttempts: 2}}
	for round := 1; round <= 10; round++ {
		for attempt := 0; attempt < 5; attempt++ {
			d := plan.Decide(Point{Client: "f", Round: round, Attempt: attempt})
			if attempt < 2 && !d.Drop {
				t.Fatalf("round %d attempt %d: flaky client did not fail", round, attempt)
			}
			if attempt >= 2 && d.Faulty() {
				t.Fatalf("round %d attempt %d: recovered client faulted: %+v", round, attempt, d)
			}
		}
	}
}

func TestStraggleDelayWithinBounds(t *testing.T) {
	lo, hi := 50*time.Millisecond, 400*time.Millisecond
	plan := &Plan{Seed: 9, Default: Profile{Straggle: 1, StraggleMin: lo, StraggleMax: hi}}
	seen := false
	for r := 1; r <= 100; r++ {
		d := plan.Decide(Point{Client: "s", Round: r})
		if d.Delay == 0 {
			t.Fatalf("round %d: straggle-rate-1 client did not straggle", r)
		}
		if d.Delay < lo || d.Delay >= hi {
			t.Fatalf("round %d: delay %v outside [%v, %v)", r, d.Delay, lo, hi)
		}
		if d.Delay != plan.Decide(Point{Client: "s", Round: r}).Delay {
			t.Fatal("delay draw not deterministic")
		}
		seen = true
	}
	if !seen {
		t.Fatal("no draws")
	}
}

func TestScriptedPolicy(t *testing.T) {
	s := Scripted{
		{Client: "a", Round: 2}:             {Drop: true},
		{Client: "b", Round: 2, Attempt: 1}: {Corrupt: true},
	}
	if !s.Decide(Point{Client: "a", Round: 2}).Drop {
		t.Error("scripted drop missing")
	}
	if s.Decide(Point{Client: "a", Round: 3}).Faulty() {
		t.Error("unscripted point faulted")
	}
	if !s.Decide(Point{Client: "b", Round: 2, Attempt: 1}).Corrupt {
		t.Error("scripted corrupt missing")
	}
}

func TestFaultErrorWrapsSentinel(t *testing.T) {
	d := Decision{Timeout: true}
	err := d.Errorf(Point{Layer: LayerTransport, Client: "x", Round: 3, Attempt: 1})
	if !errors.Is(err, ErrInjected) {
		t.Fatal("FaultError does not wrap ErrInjected")
	}
	var fe *FaultError
	if !errors.As(err, &fe) || fe.Point.Client != "x" || !fe.Decision.Timeout {
		t.Fatalf("FaultError lost its point/decision: %v", err)
	}
	for _, want := range []string{"timeout", "transport", "x"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err.Error(), want)
		}
	}
}

func TestUnitDeterministicAndUniformish(t *testing.T) {
	sum := 0.0
	const n = 2000
	for i := 0; i < n; i++ {
		pt := Point{Client: "j", Round: i}
		u := Unit(11, pt)
		if u < 0 || u >= 1 {
			t.Fatalf("Unit out of range: %v", u)
		}
		if u != Unit(11, pt) {
			t.Fatal("Unit not deterministic")
		}
		sum += u
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.03 {
		t.Errorf("Unit mean %.3f, want ~0.5", mean)
	}
	if UnitDuration(1, Point{Client: "k"}, 0) != 0 {
		t.Error("UnitDuration(0) != 0")
	}
	if d := UnitDuration(1, Point{Client: "k"}, time.Second); d < 0 || d >= time.Second {
		t.Errorf("UnitDuration %v outside [0, 1s)", d)
	}
}

// TestPointHashMatchesFNVReference pins the inlined PointHash digest to the
// stdlib hash/fnv construction it replaced: FNV-64a over seed (8 LE bytes),
// layer byte, client id bytes, round and attempt (8 LE bytes each). Any drift
// here would silently reshuffle every seeded chaos scenario.
func TestPointHashMatchesFNVReference(t *testing.T) {
	ref := func(seed int64, pt Point) uint64 {
		h := fnv.New64a()
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(seed))
		h.Write(b[:])
		h.Write([]byte{byte(pt.Layer)})
		h.Write([]byte(pt.Client))
		binary.LittleEndian.PutUint64(b[:], uint64(pt.Round))
		h.Write(b[:])
		binary.LittleEndian.PutUint64(b[:], uint64(pt.Attempt))
		h.Write(b[:])
		return h.Sum64()
	}
	pts := []Point{
		{},
		{Layer: LayerTransport, Client: "edge-0", Round: 7, Attempt: 2},
		{Layer: LayerFleet, Client: "f123456", Round: -1, Attempt: 1 << 40},
		{Layer: LayerCodec, Client: strings.Repeat("x", 300), Round: 1},
	}
	for _, seed := range []int64{0, 1, -17, 20260807} {
		for _, pt := range pts {
			if got, want := PointHash(seed, pt), ref(seed, pt); got != want {
				t.Fatalf("PointHash(%d, %+v) = %#x, reference %#x", seed, pt, got, want)
			}
		}
	}
	if n := testing.AllocsPerRun(100, func() {
		PointHash(42, pts[1])
	}); n != 0 {
		t.Errorf("PointHash allocates %v per call, want 0", n)
	}
}

// TestFleetPointHashMatchesUnit pins the string-free fleet draw path to the
// canonical Point form the simulator used before: same hash, same unit draw,
// zero allocations.
func TestFleetPointHashMatchesUnit(t *testing.T) {
	for _, seed := range []int64{0, 17, 20260807} {
		for _, idx := range []int{0, 1, 9, 10, 99, 12345, 999999, 1 << 30, -3} {
			for _, round := range []int{0, 1, 77} {
				for _, attempt := range []int{0, 1, 2} {
					pt := Point{
						Layer:   LayerFleet,
						Client:  "f" + strconv.Itoa(idx),
						Round:   round,
						Attempt: attempt,
					}
					if got, want := FleetPointHash(seed, idx, round, attempt), PointHash(seed, pt); got != want {
						t.Fatalf("FleetPointHash(%d, %d, %d, %d) = %#x, string path %#x",
							seed, idx, round, attempt, got, want)
					}
					if got, want := FleetUnit(seed, idx, round, attempt), Unit(seed, pt); got != want {
						t.Fatalf("FleetUnit(%d, %d, %d, %d) = %v, Unit %v",
							seed, idx, round, attempt, got, want)
					}
				}
			}
		}
	}
	if n := testing.AllocsPerRun(100, func() {
		FleetUnit(17, 123456, 9, 1)
	}); n != 0 {
		t.Errorf("FleetUnit allocates %v per call, want 0", n)
	}
}
