// Package faultinject is the serving plane's deterministic fault plane: a
// seeded source of injected failures (dropouts, stragglers, timeouts, corrupt
// frames, crashes) that the FL call path consults at well-defined points.
//
// Real fleets straggle, drop out and return garbage — BouquetFL emulates
// exactly this hardware diversity, and Falafels shows dropout/straggler
// behaviour dominates FL energy estimates. Reproducing those behaviours in
// tests requires faults that are *deterministic*: every Decision is a pure
// function of (seed, Point), independent of goroutine scheduling or call
// order, so a chaos scenario replays bit-for-bit from its logged seed.
//
// The zero-cost default is NopPolicy: call sites that are handed no policy
// inject nothing and add no behaviour.
package faultinject

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Layer identifies where in the stack a fault is injected. It participates in
// the per-point hash, so the same client/round/attempt draws independently at
// each layer.
type Layer uint8

const (
	// LayerParticipant faults wrap a Participant.Round call (the server's
	// dispatch path).
	LayerParticipant Layer = iota
	// LayerTransport faults wrap one HTTP round trip.
	LayerTransport
	// LayerCodec faults corrupt encoded wire frames.
	LayerCodec
	// LayerFleet faults gate a simulated fleet client's participation in a
	// virtual-time round (internal/fleet availability, crash and straggle
	// draws) — same hash stream, same replayability.
	LayerFleet
)

// String names the layer for error messages.
func (l Layer) String() string {
	switch l {
	case LayerParticipant:
		return "participant"
	case LayerTransport:
		return "transport"
	case LayerCodec:
		return "codec"
	case LayerFleet:
		return "fleet"
	}
	return fmt.Sprintf("layer(%d)", uint8(l))
}

// Point identifies one injection decision: which client, which round, which
// attempt, at which layer. Round and Attempt are zero when unknown (e.g. a
// transport wrapper that cannot see round numbers).
type Point struct {
	Layer   Layer
	Client  string
	Round   int
	Attempt int
}

// Decision is the injected behaviour at one Point. The zero value injects
// nothing. At most one failure field is set by the built-in policies; Delay
// composes with success (a straggler that eventually answers).
type Decision struct {
	// Drop fails the attempt immediately — the device vanished before doing
	// any work.
	Drop bool
	// Crash fails the attempt after the work ran — the device trained but
	// died before reporting (its update is lost, its energy is spent).
	Crash bool
	// Timeout hangs the attempt past any per-attempt deadline: the caller
	// charges its full attempt timeout and strips the attempt as a straggler.
	Timeout bool
	// Corrupt flips bits in the attempt's encoded frame, which the codec
	// must reject as a corrupt frame.
	Corrupt bool
	// Delay adds straggle latency before the attempt proceeds.
	Delay time.Duration
}

// Faulty reports whether the decision injects anything at all.
func (d Decision) Faulty() bool {
	return d.Drop || d.Crash || d.Timeout || d.Corrupt || d.Delay > 0
}

// Kind names the dominant injected behaviour ("drop", "crash", "timeout",
// "corrupt", "delay" or "none") — the verdict vocabulary the round ledger
// records for injected failures.
func (d Decision) Kind() string { return d.kind() }

// kind names the dominant injected behaviour for error messages.
func (d Decision) kind() string {
	switch {
	case d.Drop:
		return "drop"
	case d.Crash:
		return "crash"
	case d.Timeout:
		return "timeout"
	case d.Corrupt:
		return "corrupt"
	case d.Delay > 0:
		return "delay"
	}
	return "none"
}

// ErrInjected is the sentinel every injected failure wraps; errors.Is against
// it distinguishes chaos from organic failures.
var ErrInjected = errors.New("faultinject: injected fault")

// FaultError carries the point and decision of one injected failure.
type FaultError struct {
	Point    Point
	Decision Decision
}

// Error describes the injected fault.
func (e *FaultError) Error() string {
	return fmt.Sprintf("faultinject: injected %s at %s client=%s round=%d attempt=%d",
		e.Decision.kind(), e.Point.Layer, e.Point.Client, e.Point.Round, e.Point.Attempt)
}

// Unwrap ties the error to ErrInjected.
func (e *FaultError) Unwrap() error { return ErrInjected }

// Errorf builds the canonical error for a faulty decision.
func (d Decision) Errorf(pt Point) error { return &FaultError{Point: pt, Decision: d} }

// Policy decides the fault behaviour at a point. Implementations MUST be
// deterministic: the same Point always yields the same Decision, regardless
// of call order or concurrency, or chaos runs stop being replayable.
type Policy interface {
	Decide(Point) Decision
}

// NopPolicy injects nothing — the default wherever a policy is optional.
type NopPolicy struct{}

var _ Policy = NopPolicy{}

// Decide returns the zero Decision.
func (NopPolicy) Decide(Point) Decision { return Decision{} }

// OrNop returns p, or NopPolicy when p is nil, so call sites never
// nil-check.
func OrNop(p Policy) Policy {
	if p == nil {
		return NopPolicy{}
	}
	return p
}

// Scripted is an exact-match policy for table-driven tests: every Point not
// present in the map is healthy. Read-only after construction, so safe for
// concurrent use.
type Scripted map[Point]Decision

var _ Policy = Scripted{}

// Decide looks the point up verbatim.
func (s Scripted) Decide(pt Point) Decision { return s[pt] }

// Profile is one client's fault distribution: independent per-attempt
// probabilities for each fault kind, drawn in a fixed order (flaky, drop,
// crash, timeout, corrupt, straggle) from the point's hash stream. The zero
// Profile is healthy.
type Profile struct {
	// FlakyAttempts fails the first n attempts of every round with a drop,
	// then answers — the flaky-then-recover device that retries must absorb.
	FlakyAttempts int
	// Drop is the probability the device vanishes before doing work.
	Drop float64
	// Crash is the probability the device dies after the work ran.
	Crash float64
	// Timeout is the probability the device hangs past the attempt deadline.
	Timeout float64
	// Corrupt is the probability the device's frame arrives bit-flipped.
	Corrupt float64
	// Straggle is the probability of added latency, drawn uniformly from
	// [StraggleMin, StraggleMax].
	Straggle                 float64
	StraggleMin, StraggleMax time.Duration
}

// healthy reports whether the profile never injects.
func (p Profile) healthy() bool {
	return p.FlakyAttempts == 0 && p.Drop == 0 && p.Crash == 0 &&
		p.Timeout == 0 && p.Corrupt == 0 && p.Straggle == 0
}

// Plan is a seeded, per-client fault policy: each client id maps to a
// Profile (falling back to Default), and every Decision derives from a hash
// of (Seed, Point) — deterministic and order-independent, so concurrent
// dispatch over any pool width replays identically. Read-only after
// construction, so safe for concurrent use.
type Plan struct {
	// Seed drives every draw; two Plans with equal seeds and profiles are
	// behaviourally identical.
	Seed int64
	// Default applies to clients without an entry in Client.
	Default Profile
	// Client overrides the default per client id.
	Client map[string]Profile
}

var _ Policy = (*Plan)(nil)

// Decide draws the point's decision from its hash stream.
func (p *Plan) Decide(pt Point) Decision {
	prof, ok := p.Client[pt.Client]
	if !ok {
		prof = p.Default
	}
	if prof.healthy() {
		return Decision{}
	}
	if pt.Attempt < prof.FlakyAttempts {
		return Decision{Drop: true}
	}
	s := stream{state: PointHash(p.Seed, pt)}
	if s.unit() < prof.Drop {
		return Decision{Drop: true}
	}
	if s.unit() < prof.Crash {
		return Decision{Crash: true}
	}
	if s.unit() < prof.Timeout {
		return Decision{Timeout: true}
	}
	if s.unit() < prof.Corrupt {
		return Decision{Corrupt: true}
	}
	if s.unit() < prof.Straggle {
		span := prof.StraggleMax - prof.StraggleMin
		if span < 0 {
			span = 0
		}
		return Decision{Delay: prof.StraggleMin + time.Duration(s.unit()*float64(span))}
	}
	return Decision{}
}

// FNV-64a constants; the hash is inlined so a Decision draw never heap-
// allocates a hash.Hash64, and pinned byte-identical to hash/fnv by
// TestPointHashMatchesFNVReference.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// fnvUint64 folds v into h as 8 little-endian bytes.
func fnvUint64(h, v uint64) uint64 {
	for b := 0; b < 8; b++ {
		h = (h ^ (v & 0xFF)) * fnvPrime64
		v >>= 8
	}
	return h
}

// PointHash folds a seed and a point into a 64-bit state, the root of that
// point's private draw stream. Exported so the fl retry path can derive its
// backoff jitter from the same order-independent construction. The digest is
// FNV-64a over seed (8 LE bytes), layer (1 byte), the client id bytes, round
// and attempt (8 LE bytes each) — allocation-free.
func PointHash(seed int64, pt Point) uint64 {
	h := fnvUint64(fnvOffset64, uint64(seed))
	h = (h ^ uint64(pt.Layer)) * fnvPrime64
	for i := 0; i < len(pt.Client); i++ {
		h = (h ^ uint64(pt.Client[i])) * fnvPrime64
	}
	h = fnvUint64(h, uint64(pt.Round))
	return fnvUint64(h, uint64(pt.Attempt))
}

// FleetSeedMid is the FNV-64a midstate after absorbing (seed, LayerFleet,
// 'f') — everything a canonical fleet client id's hash shares across clients.
// FNV is strictly sequential, so the midstate is a pure function of the seed;
// callers that draw for many clients cache one per seed and skip re-hashing
// the ten prefix bytes on every draw.
type FleetSeedMid uint64

// NewFleetSeedMid precomputes the per-seed hash prefix.
func NewFleetSeedMid(seed int64) FleetSeedMid {
	h := fnvUint64(fnvOffset64, uint64(seed))
	h = (h ^ uint64(LayerFleet)) * fnvPrime64
	h = (h ^ uint64('f')) * fnvPrime64
	return FleetSeedMid(h)
}

// FleetClientMid is the midstate extended with one client's decimal index
// digits — shared by every (round, attempt) draw for that client.
type FleetClientMid uint64

// Client absorbs index's decimal digits (strconv.Itoa byte order).
func (m FleetSeedMid) Client(index int) FleetClientMid {
	h := uint64(m)
	u := uint64(index)
	if index < 0 { // never drawn by the fleet engine, but match strconv.Itoa
		h = (h ^ uint64('-')) * fnvPrime64
		u = uint64(-index)
	}
	var digits [20]byte
	p := len(digits)
	for {
		p--
		digits[p] = byte('0' + u%10)
		u /= 10
		if u == 0 {
			break
		}
	}
	for ; p < len(digits); p++ {
		h = (h ^ uint64(digits[p])) * fnvPrime64
	}
	return FleetClientMid(h)
}

// Hash finalizes the point hash for one (round, attempt) draw.
func (m FleetClientMid) Hash(round, attempt int) uint64 {
	return fnvUint64(fnvUint64(uint64(m), uint64(round)), uint64(attempt))
}

// Unit is one uniform [0,1) draw from the client's stream.
func (m FleetClientMid) Unit(round, attempt int) float64 {
	s := stream{state: m.Hash(round, attempt)}
	return s.unit()
}

// FleetPointHash is PointHash for the canonical fleet client id — LayerFleet
// with Client "f" + decimal index (device.ClientID) — computed without
// materializing the id string. The fleet simulator makes several of these
// draws per client per round; this path keeps them off the heap entirely.
// Bit-equality with the string path is pinned by TestFleetPointHashMatchesUnit.
func FleetPointHash(seed int64, index, round, attempt int) uint64 {
	return NewFleetSeedMid(seed).Client(index).Hash(round, attempt)
}

// FleetUnit is Unit over FleetPointHash: one uniform [0,1) draw for a fleet
// client index without building its id string.
func FleetUnit(seed int64, index, round, attempt int) float64 {
	s := stream{state: FleetPointHash(seed, index, round, attempt)}
	return s.unit()
}

// stream is a tiny splitmix64 generator over a point hash: enough quality for
// fault draws, zero allocation, and — unlike a shared *rand.Rand — free of
// cross-goroutine state.
type stream struct{ state uint64 }

// next advances the splitmix64 state.
func (s *stream) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unit returns a uniform draw in [0, 1).
func (s *stream) unit() float64 {
	return float64(s.next()>>11) / float64(1<<53)
}

// Unit exposes one uniform [0,1) draw for a (seed, point) pair — the
// building block for deterministic full-jitter backoff.
func Unit(seed int64, pt Point) float64 {
	s := stream{state: PointHash(seed, pt)}
	return s.unit()
}

// UnitDuration scales d by Unit: a deterministic uniform draw in [0, d).
func UnitDuration(seed int64, pt Point, d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return time.Duration(math.Floor(Unit(seed, pt) * float64(d)))
}
