package faultinject

import (
	"bytes"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"bofl/internal/simclock"
)

// Transport injects faults at the HTTP layer: it wraps an http.RoundTripper
// and applies the policy's LayerTransport decision to every round trip.
// Drops and crashes become transport errors, timeouts become errors after
// sleeping the configured hang, delays straggle the response, and corruption
// flips a bit in the response body — which a binary-frame decoder must then
// reject as a corrupt frame.
//
// The transport cannot see FL round numbers, so Points carry a per-transport
// monotone attempt counter instead: deterministic as long as the requests
// through one Transport are issued sequentially (true for one participant's
// round/retry sequence).
type Transport struct {
	// Base performs the real round trips; http.DefaultTransport when nil.
	Base http.RoundTripper
	// Policy decides the faults; NopPolicy when nil.
	Policy Policy
	// Client is the participant identity used in Points.
	Client string
	// Clock drives injected delays and hangs; the real clock when nil.
	Clock simclock.Clock
	// Hang is how long an injected Timeout blocks before erroring (standing
	// in for a peer that answers only after the caller gave up).
	Hang time.Duration

	attempts atomic.Int64
}

var _ http.RoundTripper = (*Transport)(nil)

// RoundTrip applies the policy's decision around one real round trip.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	pt := Point{
		Layer:   LayerTransport,
		Client:  t.Client,
		Attempt: int(t.attempts.Add(1) - 1),
	}
	d := OrNop(t.Policy).Decide(pt)
	clock := t.Clock
	if clock == nil {
		clock = simclock.Real{}
	}
	switch {
	case d.Drop, d.Crash:
		return nil, d.Errorf(pt)
	case d.Timeout:
		clock.Sleep(t.Hang)
		return nil, d.Errorf(pt)
	}
	if d.Delay > 0 {
		clock.Sleep(d.Delay)
	}
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	resp, err := base.RoundTrip(req)
	if err != nil || !d.Corrupt {
		return resp, err
	}

	// Corrupt the response in flight: flip one bit in the first body byte.
	// For a binary frame that breaks the magic; for JSON it breaks the
	// opening brace — either way the decoder must reject, never misread.
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil {
		return nil, rerr
	}
	if len(body) > 0 {
		body[0] ^= 0x01
	}
	resp.Body = io.NopCloser(bytes.NewReader(body))
	resp.ContentLength = int64(len(body))
	return resp, nil
}
