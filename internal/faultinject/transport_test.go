package faultinject

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"bofl/internal/simclock"
)

func TestTransportPassThroughWhenHealthy(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "hello")
	}))
	defer ts.Close()

	hc := &http.Client{Transport: &Transport{Client: "c0"}}
	resp, err := hc.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "hello" {
		t.Errorf("body %q", body)
	}
}

func TestTransportDropAndTimeout(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()

	clock := simclock.NewSim(time.Unix(0, 0))
	// Attempt 0 drops, attempt 1 times out, attempt 2 is healthy.
	tr := &Transport{
		Policy: Scripted{
			{Layer: LayerTransport, Client: "c1", Attempt: 0}: {Drop: true},
			{Layer: LayerTransport, Client: "c1", Attempt: 1}: {Timeout: true},
		},
		Client: "c1",
		Clock:  clock,
		Hang:   3 * time.Second,
	}
	hc := &http.Client{Transport: tr}

	if _, err := hc.Get(ts.URL); err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("dropped attempt returned %v, want injected error", err)
	}
	before := clock.Now()
	if _, err := hc.Get(ts.URL); err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("timed-out attempt returned %v, want injected error", err)
	}
	if got := clock.Now().Sub(before); got != 3*time.Second {
		t.Errorf("timeout hung %v of virtual time, want 3s", got)
	}
	if _, err := hc.Get(ts.URL); err != nil {
		t.Fatalf("healthy attempt failed: %v", err)
	}
}

func TestTransportDelayStragglesVirtually(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()

	clock := simclock.NewSim(time.Unix(0, 0))
	tr := &Transport{
		Policy: Scripted{{Layer: LayerTransport, Client: "c2", Attempt: 0}: {Delay: 700 * time.Millisecond}},
		Client: "c2",
		Clock:  clock,
	}
	hc := &http.Client{Transport: tr}
	if _, err := hc.Get(ts.URL); err != nil {
		t.Fatal(err)
	}
	if got := clock.Now().Sub(time.Unix(0, 0)); got != 700*time.Millisecond {
		t.Errorf("delay advanced %v, want 700ms", got)
	}
}

func TestTransportCorruptFlipsFirstBodyBit(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "BFL1rest-of-frame")
	}))
	defer ts.Close()

	tr := &Transport{
		Policy: Scripted{{Layer: LayerTransport, Client: "c3", Attempt: 0}: {Corrupt: true}},
		Client: "c3",
	}
	hc := &http.Client{Transport: tr}
	resp, err := hc.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if body[0] == 'B' {
		t.Error("first byte survived corruption")
	}
	if body[0] != 'B'^0x01 || string(body[1:]) != "FL1rest-of-frame" {
		t.Errorf("corruption is not a single bit flip: %q", body)
	}
}
