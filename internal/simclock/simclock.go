// Package simclock provides a virtual clock so that multi-hour federated
// learning experiments run deterministically in milliseconds of real time.
//
// The BoFL controller only ever reasons about durations and deadlines, so all
// time-dependent code in this repository is written against the Clock
// interface. Production deployments use Real; experiments and tests use Sim.
package simclock

import (
	"sync"
	"time"
)

// Clock abstracts the passage of time.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// Sleep blocks (really or virtually) for d.
	Sleep(d time.Duration)
}

// Real is a Clock backed by the wall clock.
type Real struct{}

var _ Clock = Real{}

// Now returns time.Now().
func (Real) Now() time.Time { return time.Now() }

// Sleep calls time.Sleep.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// Sim is a virtual clock. Sleep advances the clock instantly; Advance can be
// used by harnesses that account time out-of-band (e.g. a device simulator
// reporting a job duration). Sim is safe for concurrent use.
type Sim struct {
	mu  sync.Mutex
	now time.Time
}

var _ Clock = (*Sim)(nil)

// NewSim returns a virtual clock starting at the given instant.
func NewSim(start time.Time) *Sim {
	return &Sim{now: start}
}

// Now returns the current virtual instant.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Sleep advances the virtual clock by d without blocking.
func (s *Sim) Sleep(d time.Duration) { s.Advance(d) }

// Advance moves the virtual clock forward by d. Negative durations are
// ignored so that the clock is monotone.
func (s *Sim) Advance(d time.Duration) {
	if d < 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = s.now.Add(d)
}
