package simclock

import (
	"sync"
	"testing"
	"time"
)

func TestSimAdvanceAndSleep(t *testing.T) {
	start := time.Unix(1000, 0)
	c := NewSim(start)
	if !c.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", c.Now(), start)
	}
	c.Advance(3 * time.Second)
	if got := c.Now().Sub(start); got != 3*time.Second {
		t.Errorf("after Advance: %v", got)
	}
	c.Sleep(2 * time.Second)
	if got := c.Now().Sub(start); got != 5*time.Second {
		t.Errorf("after Sleep: %v", got)
	}
}

func TestSimIgnoresNegativeAdvance(t *testing.T) {
	c := NewSim(time.Unix(0, 0))
	c.Advance(time.Second)
	c.Advance(-time.Hour)
	if got := c.Now().Sub(time.Unix(0, 0)); got != time.Second {
		t.Errorf("negative advance moved the clock: %v", got)
	}
}

func TestSimConcurrentAdvance(t *testing.T) {
	c := NewSim(time.Unix(0, 0))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Advance(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := c.Now().Sub(time.Unix(0, 0)); got != 8*time.Second {
		t.Errorf("concurrent advances lost time: %v", got)
	}
}

func TestRealClock(t *testing.T) {
	var c Clock = Real{}
	before := time.Now()
	now := c.Now()
	if now.Before(before.Add(-time.Second)) {
		t.Error("Real.Now is in the past")
	}
	start := time.Now()
	c.Sleep(5 * time.Millisecond)
	if time.Since(start) < 4*time.Millisecond {
		t.Error("Real.Sleep returned too early")
	}
}
