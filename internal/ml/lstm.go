package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// LSTMClassifier is a single-layer LSTM sequence classifier with a learned
// token embedding and a linear head over the final hidden state. It stands in
// for the paper's IMDB-LSTM workload. Gradients are computed by full
// backpropagation through time and verified against finite differences in
// tests.
type LSTMClassifier struct {
	vocab, emb, hid, out int
	params               []float64
}

var _ Model = (*LSTMClassifier)(nil)

// NewLSTMClassifier builds an LSTM classifier with small random weights.
func NewLSTMClassifier(vocab, emb, hid, out int, seed int64) (*LSTMClassifier, error) {
	if vocab <= 0 || emb <= 0 || hid <= 0 || out <= 1 {
		return nil, fmt.Errorf("ml: lstm dims (%d, %d, %d, %d) invalid", vocab, emb, hid, out)
	}
	n := vocab*emb + 4*(hid*emb+hid*hid+hid) + out*hid + out
	m := &LSTMClassifier{vocab: vocab, emb: emb, hid: hid, out: out, params: make([]float64, n)}
	rng := rand.New(rand.NewSource(seed))
	initUniform(m.params, 0.15, rng)
	// Forget-gate bias starts positive, the standard trick for gradient
	// flow early in training.
	_, gates, _, _ := m.slices(m.params)
	fb := gates[1].b
	for i := range fb {
		fb[i] = 1
	}
	return m, nil
}

type gateViews struct{ w, u, b []float64 }

// slices carves the flat vector into embedding, the four gates (i, f, o, g),
// head weight and head bias.
func (m *LSTMClassifier) slices(v []float64) (embT []float64, gates [4]gateViews, wh, bh []float64) {
	off := 0
	take := func(n int) []float64 {
		s := v[off : off+n]
		off += n
		return s
	}
	embT = take(m.vocab * m.emb)
	for g := 0; g < 4; g++ {
		gates[g] = gateViews{
			w: take(m.hid * m.emb),
			u: take(m.hid * m.hid),
			b: take(m.hid),
		}
	}
	wh = take(m.out * m.hid)
	bh = take(m.out)
	return embT, gates, wh, bh
}

// NumParams returns the parameter count.
func (m *LSTMClassifier) NumParams() int { return len(m.params) }

// Params returns the flat parameter vector (aliased).
func (m *LSTMClassifier) Params() []float64 { return m.params }

func (m *LSTMClassifier) check(batch []Example) error {
	if len(batch) == 0 {
		return ErrEmptyBatch
	}
	for i, ex := range batch {
		if len(ex.Seq) == 0 {
			return fmt.Errorf("ml: example %d has empty sequence", i)
		}
		for _, tok := range ex.Seq {
			if tok < 0 || tok >= m.vocab {
				return fmt.Errorf("ml: example %d token %d out of vocab %d", i, tok, m.vocab)
			}
		}
		if ex.Label < 0 || ex.Label >= m.out {
			return fmt.Errorf("ml: example %d label %d out of range", i, ex.Label)
		}
	}
	return nil
}

// trace stores the forward activations needed for BPTT.
type lstmTrace struct {
	xs             [][]float64    // embedded inputs per step
	gates          [4][][]float64 // i, f, o, g activations per step
	cs, hs, tanhCs [][]float64
}

func (m *LSTMClassifier) forward(seq []int) (*lstmTrace, []float64) {
	embT, gates, wh, bh := m.slices(m.params)
	T := len(seq)
	tr := &lstmTrace{
		xs:     make([][]float64, T),
		cs:     make([][]float64, T),
		hs:     make([][]float64, T),
		tanhCs: make([][]float64, T),
	}
	for g := 0; g < 4; g++ {
		tr.gates[g] = make([][]float64, T)
	}
	hPrev := make([]float64, m.hid)
	cPrev := make([]float64, m.hid)
	for t, tok := range seq {
		x := embT[tok*m.emb : (tok+1)*m.emb]
		tr.xs[t] = x
		var acts [4][]float64
		for g := 0; g < 4; g++ {
			acts[g] = make([]float64, m.hid)
			gv := gates[g]
			for h := 0; h < m.hid; h++ {
				s := gv.b[h]
				wr := gv.w[h*m.emb : (h+1)*m.emb]
				for i, xi := range x {
					s += wr[i] * xi
				}
				ur := gv.u[h*m.hid : (h+1)*m.hid]
				for i, hp := range hPrev {
					s += ur[i] * hp
				}
				if g == 3 { // candidate gate uses tanh
					acts[g][h] = math.Tanh(s)
				} else {
					acts[g][h] = sigmoid(s)
				}
			}
			tr.gates[g][t] = acts[g]
		}
		c := make([]float64, m.hid)
		tc := make([]float64, m.hid)
		hNew := make([]float64, m.hid)
		for h := 0; h < m.hid; h++ {
			c[h] = acts[1][h]*cPrev[h] + acts[0][h]*acts[3][h]
			tc[h] = math.Tanh(c[h])
			hNew[h] = acts[2][h] * tc[h]
		}
		tr.cs[t], tr.tanhCs[t], tr.hs[t] = c, tc, hNew
		hPrev, cPrev = hNew, c
	}
	logits := make([]float64, m.out)
	for o := 0; o < m.out; o++ {
		s := bh[o]
		row := wh[o*m.hid : (o+1)*m.hid]
		for h, hv := range hPrev {
			s += row[h] * hv
		}
		logits[o] = s
	}
	return tr, logits
}

// Loss returns the batch's mean cross-entropy.
func (m *LSTMClassifier) Loss(batch []Example) (float64, error) {
	if err := m.check(batch); err != nil {
		return 0, err
	}
	dl := make([]float64, m.out)
	total := 0.0
	for _, ex := range batch {
		_, logits := m.forward(ex.Seq)
		total += softmaxCrossEntropy(logits, ex.Label, dl)
	}
	return total / float64(len(batch)), nil
}

// Gradients returns the mean gradient over the batch via BPTT.
func (m *LSTMClassifier) Gradients(batch []Example) ([]float64, float64, error) {
	if err := m.check(batch); err != nil {
		return nil, 0, err
	}
	grads := make([]float64, len(m.params))
	gEmb, gGates, gWh, gBh := m.slices(grads)
	_, gates, wh, _ := m.slices(m.params)

	dl := make([]float64, m.out)
	total := 0.0
	for _, ex := range batch {
		tr, logits := m.forward(ex.Seq)
		total += softmaxCrossEntropy(logits, ex.Label, dl)
		T := len(ex.Seq)
		hLast := tr.hs[T-1]

		dh := make([]float64, m.hid)
		dc := make([]float64, m.hid)
		for o := 0; o < m.out; o++ {
			row := wh[o*m.hid : (o+1)*m.hid]
			grow := gWh[o*m.hid : (o+1)*m.hid]
			for h := 0; h < m.hid; h++ {
				grow[h] += dl[o] * hLast[h]
				dh[h] += dl[o] * row[h]
			}
			gBh[o] += dl[o]
		}

		dpre := [4][]float64{}
		for g := range dpre {
			dpre[g] = make([]float64, m.hid)
		}
		for t := T - 1; t >= 0; t-- {
			i, f, o, g := tr.gates[0][t], tr.gates[1][t], tr.gates[2][t], tr.gates[3][t]
			tc := tr.tanhCs[t]
			var cPrev []float64
			if t > 0 {
				cPrev = tr.cs[t-1]
			}
			for h := 0; h < m.hid; h++ {
				dch := dc[h] + dh[h]*o[h]*(1-tc[h]*tc[h])
				dpre[2][h] = dh[h] * tc[h] * o[h] * (1 - o[h]) // output gate
				dpre[0][h] = dch * g[h] * i[h] * (1 - i[h])    // input gate
				dpre[3][h] = dch * i[h] * (1 - g[h]*g[h])      // candidate
				cp := 0.0
				if cPrev != nil {
					cp = cPrev[h]
				}
				dpre[1][h] = dch * cp * f[h] * (1 - f[h]) // forget gate
				dc[h] = dch * f[h]                        // flows to t−1
			}
			var hPrev []float64
			if t > 0 {
				hPrev = tr.hs[t-1]
			}
			x := tr.xs[t]
			tok := ex.Seq[t]
			dx := gEmb[tok*m.emb : (tok+1)*m.emb]
			for h := range dh {
				dh[h] = 0
			}
			for gi := 0; gi < 4; gi++ {
				gv := gates[gi]
				gg := gGates[gi]
				for h := 0; h < m.hid; h++ {
					d := dpre[gi][h]
					if d == 0 {
						continue
					}
					wr := gv.w[h*m.emb : (h+1)*m.emb]
					gwr := gg.w[h*m.emb : (h+1)*m.emb]
					for k, xk := range x {
						gwr[k] += d * xk
						_ = wr
					}
					// Embedding gradient via Wᵀ·dpre.
					for k := range dx {
						dx[k] += d * wr[k]
					}
					gur := gg.u[h*m.hid : (h+1)*m.hid]
					ur := gv.u[h*m.hid : (h+1)*m.hid]
					if hPrev != nil {
						for k, hp := range hPrev {
							gur[k] += d * hp
						}
					}
					for k := range dh {
						dh[k] += d * ur[k]
					}
					gg.b[h] += d
				}
			}
			if t == 0 {
				// dh now holds the gradient w.r.t. h_{-1} ≡ 0: discard.
				for h := range dh {
					dh[h] = 0
				}
			}
		}
	}
	inv := 1 / float64(len(batch))
	for i := range grads {
		grads[i] *= inv
	}
	return grads, total * inv, nil
}

// Predict returns the argmax class for one sequence.
func (m *LSTMClassifier) Predict(ex Example) (int, error) {
	if err := m.check([]Example{ex}); err != nil {
		return 0, err
	}
	_, logits := m.forward(ex.Seq)
	best := 0
	for o, v := range logits {
		if v > logits[best] {
			best = o
		}
	}
	return best, nil
}
