package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// Blobs generates a synthetic classification dataset of n examples: `classes`
// Gaussian clusters in `dim` dimensions with the given intra-cluster spread.
// It stands in for CIFAR10 / cropped-ImageNet image features — the point is
// to give FedAvg a real learnable signal, not to model pixels.
func Blobs(n, dim, classes int, spread float64, seed int64) ([]Example, error) {
	if n <= 0 || dim <= 0 || classes <= 1 {
		return nil, fmt.Errorf("ml: blobs(n=%d, dim=%d, classes=%d) invalid", n, dim, classes)
	}
	if spread <= 0 {
		return nil, fmt.Errorf("ml: non-positive spread %v", spread)
	}
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, classes)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for d := range centers[c] {
			centers[c][d] = rng.NormFloat64() * 2
		}
	}
	out := make([]Example, n)
	for i := range out {
		c := rng.Intn(classes)
		x := make([]float64, dim)
		for d := range x {
			x[d] = centers[c][d] + rng.NormFloat64()*spread
		}
		out[i] = Example{Features: x, Label: c}
	}
	return out, nil
}

// Sentiment generates a synthetic binary text-classification dataset shaped
// like IMDB reviews: sequences of token ids where class 0 draws preferentially
// from the lower half of the vocabulary and class 1 from the upper half, with
// `mix` controlling how noisy the signal is (0 = fully separable).
func Sentiment(n, vocab, seqLen int, mix float64, seed int64) ([]Example, error) {
	if n <= 0 || vocab < 4 || seqLen <= 0 {
		return nil, fmt.Errorf("ml: sentiment(n=%d, vocab=%d, seqLen=%d) invalid", n, vocab, seqLen)
	}
	if mix < 0 || mix >= 1 {
		return nil, fmt.Errorf("ml: mix %v must be in [0,1)", mix)
	}
	rng := rand.New(rand.NewSource(seed))
	half := vocab / 2
	out := make([]Example, n)
	for i := range out {
		label := rng.Intn(2)
		seq := make([]int, seqLen)
		for t := range seq {
			fromOwn := rng.Float64() >= mix
			side := label
			if !fromOwn {
				side = 1 - label
			}
			if side == 0 {
				seq[t] = rng.Intn(half)
			} else {
				seq[t] = half + rng.Intn(vocab-half)
			}
		}
		out[i] = Example{Seq: seq, Label: label}
	}
	return out, nil
}

// Partition splits examples into `parts` disjoint shards, round-robin, for
// distributing data across FL clients. Shard p receives examples p, p+parts,
// p+2·parts, …
func Partition(examples []Example, parts int) ([][]Example, error) {
	if parts <= 0 {
		return nil, fmt.Errorf("ml: partition into %d parts", parts)
	}
	out := make([][]Example, parts)
	for i, ex := range examples {
		p := i % parts
		out[p] = append(out[p], ex)
	}
	return out, nil
}

// PartitionNonIID splits a labelled dataset into `parts` shards with
// Dirichlet(α) label skew — the standard way to emulate the heterogeneous
// client data federated learning must cope with (the paper's server forms
// different groups per round precisely because client data is non-IID).
// Small α (e.g. 0.1) gives near-single-label clients; large α approaches IID.
// Every shard is guaranteed at least one example.
func PartitionNonIID(examples []Example, parts, classes int, alpha float64, seed int64) ([][]Example, error) {
	if parts <= 0 {
		return nil, fmt.Errorf("ml: partition into %d parts", parts)
	}
	if classes <= 0 {
		return nil, fmt.Errorf("ml: %d classes", classes)
	}
	if alpha <= 0 {
		return nil, fmt.Errorf("ml: dirichlet alpha %v must be positive", alpha)
	}
	if len(examples) < parts {
		return nil, fmt.Errorf("ml: %d examples cannot fill %d shards", len(examples), parts)
	}
	rng := rand.New(rand.NewSource(seed))

	// Per-class Dirichlet weights over shards.
	byClass := make([][]int, classes)
	for i, ex := range examples {
		if ex.Label < 0 || ex.Label >= classes {
			return nil, fmt.Errorf("ml: example %d label %d out of range", i, ex.Label)
		}
		byClass[ex.Label] = append(byClass[ex.Label], i)
	}
	out := make([][]Example, parts)
	for _, idxs := range byClass {
		if len(idxs) == 0 {
			continue
		}
		weights := dirichlet(rng, parts, alpha)
		rng.Shuffle(len(idxs), func(a, b int) { idxs[a], idxs[b] = idxs[b], idxs[a] })
		// Convert weights into cumulative cut points over this class.
		start := 0
		acc := 0.0
		for p := 0; p < parts; p++ {
			acc += weights[p]
			end := int(acc*float64(len(idxs)) + 0.5)
			if p == parts-1 {
				end = len(idxs)
			}
			for _, i := range idxs[start:min(end, len(idxs))] {
				out[p] = append(out[p], examples[i])
			}
			start = min(end, len(idxs))
		}
	}
	// Backfill empty shards from the largest one so every client trains.
	for p := range out {
		if len(out[p]) > 0 {
			continue
		}
		largest := 0
		for q := range out {
			if len(out[q]) > len(out[largest]) {
				largest = q
			}
		}
		if len(out[largest]) < 2 {
			return nil, fmt.Errorf("ml: cannot backfill shard %d", p)
		}
		n := len(out[largest])
		out[p] = append(out[p], out[largest][n-1])
		out[largest] = out[largest][:n-1]
	}
	return out, nil
}

// LabelDistribution returns each shard's empirical label distribution: one
// row per shard, normalized to sum to 1 over `classes` columns. The scenario
// harness uses it to check a Dirichlet partition's skew against its target α.
func LabelDistribution(shards [][]Example, classes int) ([][]float64, error) {
	if classes <= 0 {
		return nil, fmt.Errorf("ml: %d classes", classes)
	}
	out := make([][]float64, len(shards))
	for s, shard := range shards {
		row := make([]float64, classes)
		if len(shard) == 0 {
			return nil, fmt.Errorf("ml: shard %d is empty", s)
		}
		for i, ex := range shard {
			if ex.Label < 0 || ex.Label >= classes {
				return nil, fmt.Errorf("ml: shard %d example %d label %d out of range", s, i, ex.Label)
			}
			row[ex.Label]++
		}
		for c := range row {
			row[c] /= float64(len(shard))
		}
		out[s] = row
	}
	return out, nil
}

// dirichlet draws a Dirichlet(α,…,α) sample via normalized Gamma variates
// (Marsaglia–Tsang for α < 1 via boosting).
func dirichlet(rng *rand.Rand, n int, alpha float64) []float64 {
	out := make([]float64, n)
	sum := 0.0
	for i := range out {
		out[i] = gammaSample(rng, alpha)
		sum += out[i]
	}
	if sum == 0 {
		for i := range out {
			out[i] = 1 / float64(n)
		}
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// gammaSample draws Gamma(shape, 1) via Marsaglia–Tsang.
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) · U^(1/a).
		return gammaSample(rng, shape+1) * math.Pow(rng.Float64(), 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Batches groups examples into minibatches of the given size; the final batch
// may be smaller.
func Batches(examples []Example, size int) ([][]Example, error) {
	if size <= 0 {
		return nil, fmt.Errorf("ml: batch size %d", size)
	}
	var out [][]Example
	for start := 0; start < len(examples); start += size {
		end := start + size
		if end > len(examples) {
			end = len(examples)
		}
		out = append(out, examples[start:end])
	}
	return out, nil
}
