package ml

import (
	"math"
	"testing"
)

// gradCheck compares analytic gradients against central finite differences.
func gradCheck(t *testing.T, m Model, batch []Example, tol float64) {
	t.Helper()
	grads, _, err := m.Gradients(batch)
	if err != nil {
		t.Fatal(err)
	}
	params := m.Params()
	const eps = 1e-5
	checked := 0
	for i := 0; i < len(params); i += 1 + len(params)/160 { // sample ~160 params
		orig := params[i]
		params[i] = orig + eps
		lp, err := m.Loss(batch)
		if err != nil {
			t.Fatal(err)
		}
		params[i] = orig - eps
		lm, err := m.Loss(batch)
		if err != nil {
			t.Fatal(err)
		}
		params[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if diff := math.Abs(numeric - grads[i]); diff > tol*(1+math.Abs(numeric)) {
			t.Errorf("param %d: analytic %v vs numeric %v", i, grads[i], numeric)
		}
		checked++
	}
	want := len(params)
	if want > 15 {
		want = 15
	}
	if checked < want {
		t.Fatalf("only %d of %d params checked", checked, len(params))
	}
}

func TestLinearGradients(t *testing.T) {
	m, err := NewLinear(5, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := Blobs(8, 5, 3, 0.8, 2)
	if err != nil {
		t.Fatal(err)
	}
	gradCheck(t, m, batch, 1e-4)
}

func TestMLPGradients(t *testing.T) {
	m, err := NewMLP(6, 7, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := Blobs(6, 6, 4, 0.8, 4)
	if err != nil {
		t.Fatal(err)
	}
	gradCheck(t, m, batch, 1e-4)
}

func TestLSTMGradients(t *testing.T) {
	m, err := NewLSTMClassifier(12, 4, 5, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := Sentiment(4, 12, 6, 0.2, 6)
	if err != nil {
		t.Fatal(err)
	}
	gradCheck(t, m, batch, 1e-3)
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewLinear(0, 3, 1); err == nil {
		t.Error("linear in=0 accepted")
	}
	if _, err := NewLinear(3, 1, 1); err == nil {
		t.Error("linear out=1 accepted")
	}
	if _, err := NewMLP(3, 0, 2, 1); err == nil {
		t.Error("mlp hidden=0 accepted")
	}
	if _, err := NewLSTMClassifier(0, 2, 2, 2, 1); err == nil {
		t.Error("lstm vocab=0 accepted")
	}
}

func TestBatchValidation(t *testing.T) {
	lin, err := NewLinear(3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lin.Loss(nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := lin.Loss([]Example{{Features: []float64{1}, Label: 0}}); err == nil {
		t.Error("short features accepted")
	}
	if _, err := lin.Loss([]Example{{Features: []float64{1, 2, 3}, Label: 5}}); err == nil {
		t.Error("label out of range accepted")
	}
	lstm, err := NewLSTMClassifier(4, 2, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lstm.Loss([]Example{{Seq: nil, Label: 0}}); err == nil {
		t.Error("empty sequence accepted")
	}
	if _, err := lstm.Loss([]Example{{Seq: []int{99}, Label: 0}}); err == nil {
		t.Error("token out of vocab accepted")
	}
}

func TestSGDValidation(t *testing.T) {
	m, err := NewLinear(2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := SGD(m, make([]float64, 3), 0.1); err == nil {
		t.Error("mismatched gradient length accepted")
	}
	if err := SGD(m, make([]float64, m.NumParams()), 0); err == nil {
		t.Error("zero learning rate accepted")
	}
}

func trainToAccuracy(t *testing.T, m Model, train, test []Example, lr float64, epochs, batchSize int) float64 {
	t.Helper()
	batches, err := Batches(train, batchSize)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < epochs; e++ {
		for _, b := range batches {
			if _, err := TrainStep(m, b, lr); err != nil {
				t.Fatal(err)
			}
		}
	}
	acc, err := Accuracy(m, test)
	if err != nil {
		t.Fatal(err)
	}
	return acc
}

func TestLinearLearnsBlobs(t *testing.T) {
	data, err := Blobs(600, 8, 4, 0.6, 11)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewLinear(8, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	acc := trainToAccuracy(t, m, data[:500], data[500:], 0.3, 10, 16)
	if acc < 0.9 {
		t.Errorf("linear accuracy %v, want ≥0.9", acc)
	}
}

func TestMLPLearnsBlobs(t *testing.T) {
	data, err := Blobs(600, 8, 4, 0.6, 12)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMLP(8, 16, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	acc := trainToAccuracy(t, m, data[:500], data[500:], 0.2, 15, 16)
	if acc < 0.9 {
		t.Errorf("mlp accuracy %v, want ≥0.9", acc)
	}
}

func TestLSTMLearnsSentiment(t *testing.T) {
	data, err := Sentiment(400, 20, 8, 0.2, 13)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewLSTMClassifier(20, 6, 8, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	acc := trainToAccuracy(t, m, data[:320], data[320:], 0.5, 25, 8)
	if acc < 0.9 {
		t.Errorf("lstm accuracy %v, want ≥0.9", acc)
	}
}

func TestTrainStepReducesLoss(t *testing.T) {
	data, err := Blobs(64, 5, 3, 0.5, 21)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMLP(5, 8, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	before, err := m.Loss(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := TrainStep(m, data, 0.2); err != nil {
			t.Fatal(err)
		}
	}
	after, err := m.Loss(data)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Errorf("loss did not decrease: %v → %v", before, after)
	}
}

func TestBlobsValidation(t *testing.T) {
	if _, err := Blobs(0, 3, 2, 0.5, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Blobs(10, 3, 1, 0.5, 1); err == nil {
		t.Error("classes=1 accepted")
	}
	if _, err := Blobs(10, 3, 2, 0, 1); err == nil {
		t.Error("spread=0 accepted")
	}
}

func TestSentimentValidation(t *testing.T) {
	if _, err := Sentiment(0, 10, 5, 0.1, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Sentiment(10, 2, 5, 0.1, 1); err == nil {
		t.Error("tiny vocab accepted")
	}
	if _, err := Sentiment(10, 10, 5, 1.0, 1); err == nil {
		t.Error("mix=1 accepted")
	}
}

func TestPartition(t *testing.T) {
	data, err := Blobs(10, 2, 2, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := Partition(data, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 {
		t.Fatalf("got %d parts", len(parts))
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total != 10 {
		t.Errorf("partition lost examples: %d", total)
	}
	if _, err := Partition(data, 0); err == nil {
		t.Error("0 parts accepted")
	}
}

func TestBatches(t *testing.T) {
	data, err := Blobs(10, 2, 2, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := Batches(data, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 3 || len(bs[0]) != 4 || len(bs[2]) != 2 {
		t.Errorf("batch shapes wrong: %d batches", len(bs))
	}
	if _, err := Batches(data, 0); err == nil {
		t.Error("size 0 accepted")
	}
}

func TestAccuracyEmptyInput(t *testing.T) {
	m, err := NewLinear(2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Accuracy(m, nil); err == nil {
		t.Error("empty eval set accepted")
	}
}

func TestDataDeterministicBySeed(t *testing.T) {
	a, err := Blobs(20, 4, 3, 0.5, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Blobs(20, 4, 3, 0.5, 99)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Label != b[i].Label || a[i].Features[0] != b[i].Features[0] {
			t.Fatal("Blobs not deterministic by seed")
		}
	}
}
