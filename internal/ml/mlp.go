package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// MLP is a one-hidden-layer perceptron with tanh activation:
//
//	h = tanh(W1·x + b1), logits = W2·h + b2
//
// It stands in for the paper's vision models (ViT / ResNet50) in the FL
// substrate — the convergence dynamics of FedAvg are exercised for real while
// the hardware cost of a minibatch comes from the device simulator.
type MLP struct {
	in, hidden, out int
	params          []float64 // W1 (h×in) | b1 (h) | W2 (out×h) | b2 (out)
}

var _ Model = (*MLP)(nil)

// NewMLP builds an MLP with Xavier-ish random weights.
func NewMLP(in, hidden, out int, seed int64) (*MLP, error) {
	if in <= 0 || hidden <= 0 || out <= 1 {
		return nil, fmt.Errorf("ml: mlp dims (%d, %d, %d) invalid", in, hidden, out)
	}
	n := hidden*in + hidden + out*hidden + out
	m := &MLP{in: in, hidden: hidden, out: out, params: make([]float64, n)}
	rng := rand.New(rand.NewSource(seed))
	initUniform(m.params[:hidden*in], math.Sqrt(2.0/float64(in+hidden)), rng)
	start := hidden*in + hidden
	initUniform(m.params[start:start+out*hidden], math.Sqrt(2.0/float64(hidden+out)), rng)
	return m, nil
}

// NumParams returns the parameter count.
func (m *MLP) NumParams() int { return len(m.params) }

// Params returns the flat parameter vector (aliased).
func (m *MLP) Params() []float64 { return m.params }

func (m *MLP) slices(v []float64) (w1, b1, w2, b2 []float64) {
	h, in, out := m.hidden, m.in, m.out
	w1 = v[:h*in]
	b1 = v[h*in : h*in+h]
	w2 = v[h*in+h : h*in+h+out*h]
	b2 = v[h*in+h+out*h:]
	return w1, b1, w2, b2
}

func (m *MLP) check(batch []Example) error {
	if len(batch) == 0 {
		return ErrEmptyBatch
	}
	for i, ex := range batch {
		if len(ex.Features) != m.in {
			return fmt.Errorf("ml: example %d has %d features, want %d", i, len(ex.Features), m.in)
		}
		if ex.Label < 0 || ex.Label >= m.out {
			return fmt.Errorf("ml: example %d label %d out of range", i, ex.Label)
		}
	}
	return nil
}

// forward computes hidden activations and logits for one example.
func (m *MLP) forward(x []float64, hidden, logits []float64) {
	w1, b1, w2, b2 := m.slices(m.params)
	for h := 0; h < m.hidden; h++ {
		s := b1[h]
		row := w1[h*m.in : (h+1)*m.in]
		for i, xi := range x {
			s += row[i] * xi
		}
		hidden[h] = math.Tanh(s)
	}
	for o := 0; o < m.out; o++ {
		s := b2[o]
		row := w2[o*m.hidden : (o+1)*m.hidden]
		for h, hv := range hidden {
			s += row[h] * hv
		}
		logits[o] = s
	}
}

// Loss returns the batch's mean cross-entropy.
func (m *MLP) Loss(batch []Example) (float64, error) {
	if err := m.check(batch); err != nil {
		return 0, err
	}
	hidden := make([]float64, m.hidden)
	logits := make([]float64, m.out)
	dl := make([]float64, m.out)
	total := 0.0
	for _, ex := range batch {
		m.forward(ex.Features, hidden, logits)
		total += softmaxCrossEntropy(logits, ex.Label, dl)
	}
	return total / float64(len(batch)), nil
}

// Gradients returns the mean gradient over the batch via backpropagation.
func (m *MLP) Gradients(batch []Example) ([]float64, float64, error) {
	if err := m.check(batch); err != nil {
		return nil, 0, err
	}
	grads := make([]float64, len(m.params))
	gw1, gb1, gw2, gb2 := m.slices(grads)
	_, _, w2, _ := m.slices(m.params)

	hidden := make([]float64, m.hidden)
	logits := make([]float64, m.out)
	dl := make([]float64, m.out)
	dh := make([]float64, m.hidden)
	total := 0.0
	for _, ex := range batch {
		m.forward(ex.Features, hidden, logits)
		total += softmaxCrossEntropy(logits, ex.Label, dl)

		for h := range dh {
			dh[h] = 0
		}
		for o := 0; o < m.out; o++ {
			row := w2[o*m.hidden : (o+1)*m.hidden]
			grow := gw2[o*m.hidden : (o+1)*m.hidden]
			for h, hv := range hidden {
				grow[h] += dl[o] * hv
				dh[h] += dl[o] * row[h]
			}
			gb2[o] += dl[o]
		}
		for h := 0; h < m.hidden; h++ {
			// d tanh = 1 − tanh².
			dpre := dh[h] * (1 - hidden[h]*hidden[h])
			grow := gw1[h*m.in : (h+1)*m.in]
			for i, xi := range ex.Features {
				grow[i] += dpre * xi
			}
			gb1[h] += dpre
		}
	}
	inv := 1 / float64(len(batch))
	for i := range grads {
		grads[i] *= inv
	}
	return grads, total * inv, nil
}

// Predict returns the argmax class.
func (m *MLP) Predict(ex Example) (int, error) {
	if err := m.check([]Example{ex}); err != nil {
		return 0, err
	}
	hidden := make([]float64, m.hidden)
	logits := make([]float64, m.out)
	m.forward(ex.Features, hidden, logits)
	best := 0
	for o, v := range logits {
		if v > logits[best] {
			best = o
		}
	}
	return best, nil
}
