package ml

import (
	"fmt"
	"math/rand"
)

// Linear is a multinomial logistic-regression classifier: logits = W·x + b.
// It stands in for small convolutional baselines in quick experiments.
type Linear struct {
	in, out int
	params  []float64 // layout: W (out×in) then b (out)
}

var _ Model = (*Linear)(nil)

// NewLinear builds a logistic-regression model with small random weights.
func NewLinear(in, out int, seed int64) (*Linear, error) {
	if in <= 0 || out <= 1 {
		return nil, fmt.Errorf("ml: linear dims (%d in, %d out) invalid", in, out)
	}
	m := &Linear{in: in, out: out, params: make([]float64, out*in+out)}
	initUniform(m.params[:out*in], 0.1, rand.New(rand.NewSource(seed)))
	return m, nil
}

// NumParams returns the parameter count.
func (m *Linear) NumParams() int { return len(m.params) }

// Params returns the flat parameter vector (aliased).
func (m *Linear) Params() []float64 { return m.params }

func (m *Linear) logits(x []float64, out []float64) {
	w := m.params[:m.out*m.in]
	b := m.params[m.out*m.in:]
	for o := 0; o < m.out; o++ {
		s := b[o]
		row := w[o*m.in : (o+1)*m.in]
		for i, xi := range x {
			s += row[i] * xi
		}
		out[o] = s
	}
}

func (m *Linear) check(batch []Example) error {
	if len(batch) == 0 {
		return ErrEmptyBatch
	}
	for i, ex := range batch {
		if len(ex.Features) != m.in {
			return fmt.Errorf("ml: example %d has %d features, want %d", i, len(ex.Features), m.in)
		}
		if ex.Label < 0 || ex.Label >= m.out {
			return fmt.Errorf("ml: example %d label %d out of range", i, ex.Label)
		}
	}
	return nil
}

// Loss returns the batch's mean cross-entropy.
func (m *Linear) Loss(batch []Example) (float64, error) {
	if err := m.check(batch); err != nil {
		return 0, err
	}
	logits := make([]float64, m.out)
	dl := make([]float64, m.out)
	total := 0.0
	for _, ex := range batch {
		m.logits(ex.Features, logits)
		total += softmaxCrossEntropy(logits, ex.Label, dl)
	}
	return total / float64(len(batch)), nil
}

// Gradients returns the mean gradient over the batch.
func (m *Linear) Gradients(batch []Example) ([]float64, float64, error) {
	if err := m.check(batch); err != nil {
		return nil, 0, err
	}
	grads := make([]float64, len(m.params))
	gw := grads[:m.out*m.in]
	gb := grads[m.out*m.in:]
	logits := make([]float64, m.out)
	dl := make([]float64, m.out)
	total := 0.0
	for _, ex := range batch {
		m.logits(ex.Features, logits)
		total += softmaxCrossEntropy(logits, ex.Label, dl)
		for o := 0; o < m.out; o++ {
			row := gw[o*m.in : (o+1)*m.in]
			for i, xi := range ex.Features {
				row[i] += dl[o] * xi
			}
			gb[o] += dl[o]
		}
	}
	inv := 1 / float64(len(batch))
	for i := range grads {
		grads[i] *= inv
	}
	return grads, total * inv, nil
}

// Predict returns the class with the largest logit.
func (m *Linear) Predict(ex Example) (int, error) {
	if err := m.check([]Example{ex}); err != nil {
		return 0, err
	}
	logits := make([]float64, m.out)
	m.logits(ex.Features, logits)
	best := 0
	for o, v := range logits {
		if v > logits[best] {
			best = o
		}
	}
	return best, nil
}
