package ml

import (
	"math"
	"testing"
)

func TestPartitionNonIIDValidation(t *testing.T) {
	data, err := Blobs(40, 4, 4, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PartitionNonIID(data, 0, 4, 0.5, 1); err == nil {
		t.Error("0 parts accepted")
	}
	if _, err := PartitionNonIID(data, 4, 0, 0.5, 1); err == nil {
		t.Error("0 classes accepted")
	}
	if _, err := PartitionNonIID(data, 4, 4, 0, 1); err == nil {
		t.Error("alpha 0 accepted")
	}
	if _, err := PartitionNonIID(data[:2], 4, 4, 0.5, 1); err == nil {
		t.Error("fewer examples than shards accepted")
	}
	if _, err := PartitionNonIID(data, 4, 2, 0.5, 1); err == nil {
		t.Error("labels out of class range accepted")
	}
}

func TestPartitionNonIIDPreservesExamples(t *testing.T) {
	data, err := Blobs(400, 4, 4, 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	shards, err := PartitionNonIID(data, 8, 4, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 8 {
		t.Fatalf("got %d shards", len(shards))
	}
	total := 0
	for p, s := range shards {
		if len(s) == 0 {
			t.Errorf("shard %d empty", p)
		}
		total += len(s)
	}
	if total != 400 {
		t.Errorf("partition lost examples: %d of 400", total)
	}
}

// labelEntropy computes the mean per-shard label entropy (nats).
func labelEntropy(shards [][]Example, classes int) float64 {
	var sum float64
	for _, s := range shards {
		counts := make([]int, classes)
		for _, ex := range s {
			counts[ex.Label]++
		}
		h := 0.0
		for _, c := range counts {
			if c == 0 {
				continue
			}
			p := float64(c) / float64(len(s))
			h -= p * math.Log(p)
		}
		sum += h
	}
	return sum / float64(len(shards))
}

func TestPartitionNonIIDSkewScalesWithAlpha(t *testing.T) {
	data, err := Blobs(2000, 4, 4, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	skewed, err := PartitionNonIID(data, 10, 4, 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	mild, err := PartitionNonIID(data, 10, 4, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	hSkewed := labelEntropy(skewed, 4)
	hMild := labelEntropy(mild, 4)
	if hSkewed >= hMild {
		t.Errorf("α=0.1 entropy %.3f should be below α=100 entropy %.3f", hSkewed, hMild)
	}
	// α → ∞ approaches uniform: entropy near ln(4).
	if hMild < math.Log(4)*0.9 {
		t.Errorf("α=100 entropy %.3f should approach ln4=%.3f", hMild, math.Log(4))
	}
	// α = 0.1 should produce clearly concentrated shards.
	if hSkewed > math.Log(4)*0.75 {
		t.Errorf("α=0.1 entropy %.3f not skewed enough", hSkewed)
	}
}

func TestFedAvgStyleTrainingOnNonIIDShards(t *testing.T) {
	// Sanity: models trained per-shard and averaged still beat chance on
	// held-out IID data — the substrate supports non-IID experiments.
	data, err := Blobs(900, 6, 3, 0.6, 6)
	if err != nil {
		t.Fatal(err)
	}
	test := data[:150]
	shards, err := PartitionNonIID(data[150:], 5, 3, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	global, err := NewMLP(6, 10, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 12; round++ {
		avg := make([]float64, global.NumParams())
		totalW := 0.0
		for _, shard := range shards {
			local, err := NewMLP(6, 10, 3, 8)
			if err != nil {
				t.Fatal(err)
			}
			copy(local.Params(), global.Params())
			batches, err := Batches(shard, 16)
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range batches {
				if _, err := TrainStep(local, b, 0.1); err != nil {
					t.Fatal(err)
				}
			}
			w := float64(len(shard))
			for i, v := range local.Params() {
				avg[i] += w * v
			}
			totalW += w
		}
		g := global.Params()
		for i := range g {
			g[i] = avg[i] / totalW
		}
	}
	acc, err := Accuracy(global, test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.8 {
		t.Errorf("non-IID FedAvg accuracy %.3f, want ≥0.8", acc)
	}
}

func TestGammaSamplePositive(t *testing.T) {
	data, err := Blobs(100, 2, 2, 0.5, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Extreme alphas must not hang or produce invalid shards.
	for _, alpha := range []float64{0.01, 1, 50} {
		shards, err := PartitionNonIID(data, 4, 2, alpha, 10)
		if err != nil {
			t.Fatalf("alpha %v: %v", alpha, err)
		}
		total := 0
		for _, s := range shards {
			total += len(s)
		}
		if total != 100 {
			t.Fatalf("alpha %v lost examples: %d", alpha, total)
		}
	}
}

// meanSimpson computes the mean per-shard Simpson concentration index
// Σ_c p_c² from the shards' label distributions.
func meanSimpson(t *testing.T, shards [][]Example, classes int) float64 {
	t.Helper()
	rows, err := LabelDistribution(shards, classes)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, row := range rows {
		s := 0.0
		for _, p := range row {
			s += p * p
		}
		sum += s
	}
	return sum / float64(len(rows))
}

// TestPartitionNonIIDMatchesTargetAlpha is the statistical acceptance test
// for the Dirichlet partitioner: a Dirichlet(α,…,α) distribution over K
// classes has E[Σ p_c²] = (α+1)/(Kα+1), so the mean per-shard Simpson index
// must track that target across three α regimes — near-single-label (0.1),
// moderate (1) and near-IID (10) — within a seeded tolerance.
func TestPartitionNonIIDMatchesTargetAlpha(t *testing.T) {
	const classes, parts = 4, 40
	data, err := Blobs(4000, 4, classes, 0.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, alpha := range []float64{0.1, 1, 10} {
		shards, err := PartitionNonIID(data, parts, classes, alpha, 12)
		if err != nil {
			t.Fatalf("alpha %v: %v", alpha, err)
		}
		got := meanSimpson(t, shards, classes)
		want := (alpha + 1) / (float64(classes)*alpha + 1)
		if math.Abs(got-want) > 0.08 {
			t.Errorf("alpha %v: mean Simpson index %.4f, want %.4f ± 0.08", alpha, got, want)
		}
	}
}

// TestLabelDistributionValidation pins the helper's contract: rows sum to 1,
// and empty shards or out-of-range labels are rejected.
func TestLabelDistributionValidation(t *testing.T) {
	data, err := Blobs(100, 4, 4, 0.5, 13)
	if err != nil {
		t.Fatal(err)
	}
	shards, err := PartitionNonIID(data, 5, 4, 0.5, 14)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := LabelDistribution(shards, 4)
	if err != nil {
		t.Fatal(err)
	}
	for s, row := range rows {
		sum := 0.0
		for _, p := range row {
			sum += p
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("shard %d distribution sums to %v", s, sum)
		}
	}
	if _, err := LabelDistribution(shards, 0); err == nil {
		t.Error("0 classes accepted")
	}
	if _, err := LabelDistribution([][]Example{{}}, 4); err == nil {
		t.Error("empty shard accepted")
	}
	if _, err := LabelDistribution(shards, 2); err == nil {
		t.Error("labels out of class range accepted")
	}
}

// shardsBitIdentical compares two partitions example by example, feature by
// feature, on the raw float bits.
func shardsBitIdentical(a, b [][]Example) bool {
	if len(a) != len(b) {
		return false
	}
	for s := range a {
		if len(a[s]) != len(b[s]) {
			return false
		}
		for i := range a[s] {
			x, y := a[s][i], b[s][i]
			if x.Label != y.Label || len(x.Features) != len(y.Features) || len(x.Seq) != len(y.Seq) {
				return false
			}
			for j := range x.Features {
				if math.Float64bits(x.Features[j]) != math.Float64bits(y.Features[j]) {
					return false
				}
			}
			for j := range x.Seq {
				if x.Seq[j] != y.Seq[j] {
					return false
				}
			}
		}
	}
	return true
}

// TestPartitionNonIIDReproducibleFromSeed: same seed → byte-identical
// partition (shard order, example order, feature bits); different seed →
// a different partition.
func TestPartitionNonIIDReproducibleFromSeed(t *testing.T) {
	data, err := Blobs(600, 4, 4, 0.5, 15)
	if err != nil {
		t.Fatal(err)
	}
	a, err := PartitionNonIID(data, 8, 4, 0.3, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PartitionNonIID(data, 8, 4, 0.3, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !shardsBitIdentical(a, b) {
		t.Fatal("same-seed partitions differ")
	}
	c, err := PartitionNonIID(data, 8, 4, 0.3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if shardsBitIdentical(a, c) {
		t.Fatal("seeds 99 and 100 produced identical partitions")
	}
}
