package ml

import (
	"math"
	"testing"
)

func TestPartitionNonIIDValidation(t *testing.T) {
	data, err := Blobs(40, 4, 4, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PartitionNonIID(data, 0, 4, 0.5, 1); err == nil {
		t.Error("0 parts accepted")
	}
	if _, err := PartitionNonIID(data, 4, 0, 0.5, 1); err == nil {
		t.Error("0 classes accepted")
	}
	if _, err := PartitionNonIID(data, 4, 4, 0, 1); err == nil {
		t.Error("alpha 0 accepted")
	}
	if _, err := PartitionNonIID(data[:2], 4, 4, 0.5, 1); err == nil {
		t.Error("fewer examples than shards accepted")
	}
	if _, err := PartitionNonIID(data, 4, 2, 0.5, 1); err == nil {
		t.Error("labels out of class range accepted")
	}
}

func TestPartitionNonIIDPreservesExamples(t *testing.T) {
	data, err := Blobs(400, 4, 4, 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	shards, err := PartitionNonIID(data, 8, 4, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 8 {
		t.Fatalf("got %d shards", len(shards))
	}
	total := 0
	for p, s := range shards {
		if len(s) == 0 {
			t.Errorf("shard %d empty", p)
		}
		total += len(s)
	}
	if total != 400 {
		t.Errorf("partition lost examples: %d of 400", total)
	}
}

// labelEntropy computes the mean per-shard label entropy (nats).
func labelEntropy(shards [][]Example, classes int) float64 {
	var sum float64
	for _, s := range shards {
		counts := make([]int, classes)
		for _, ex := range s {
			counts[ex.Label]++
		}
		h := 0.0
		for _, c := range counts {
			if c == 0 {
				continue
			}
			p := float64(c) / float64(len(s))
			h -= p * math.Log(p)
		}
		sum += h
	}
	return sum / float64(len(shards))
}

func TestPartitionNonIIDSkewScalesWithAlpha(t *testing.T) {
	data, err := Blobs(2000, 4, 4, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	skewed, err := PartitionNonIID(data, 10, 4, 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	mild, err := PartitionNonIID(data, 10, 4, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	hSkewed := labelEntropy(skewed, 4)
	hMild := labelEntropy(mild, 4)
	if hSkewed >= hMild {
		t.Errorf("α=0.1 entropy %.3f should be below α=100 entropy %.3f", hSkewed, hMild)
	}
	// α → ∞ approaches uniform: entropy near ln(4).
	if hMild < math.Log(4)*0.9 {
		t.Errorf("α=100 entropy %.3f should approach ln4=%.3f", hMild, math.Log(4))
	}
	// α = 0.1 should produce clearly concentrated shards.
	if hSkewed > math.Log(4)*0.75 {
		t.Errorf("α=0.1 entropy %.3f not skewed enough", hSkewed)
	}
}

func TestFedAvgStyleTrainingOnNonIIDShards(t *testing.T) {
	// Sanity: models trained per-shard and averaged still beat chance on
	// held-out IID data — the substrate supports non-IID experiments.
	data, err := Blobs(900, 6, 3, 0.6, 6)
	if err != nil {
		t.Fatal(err)
	}
	test := data[:150]
	shards, err := PartitionNonIID(data[150:], 5, 3, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	global, err := NewMLP(6, 10, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 12; round++ {
		avg := make([]float64, global.NumParams())
		totalW := 0.0
		for _, shard := range shards {
			local, err := NewMLP(6, 10, 3, 8)
			if err != nil {
				t.Fatal(err)
			}
			copy(local.Params(), global.Params())
			batches, err := Batches(shard, 16)
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range batches {
				if _, err := TrainStep(local, b, 0.1); err != nil {
					t.Fatal(err)
				}
			}
			w := float64(len(shard))
			for i, v := range local.Params() {
				avg[i] += w * v
			}
			totalW += w
		}
		g := global.Params()
		for i := range g {
			g[i] = avg[i] / totalW
		}
	}
	acc, err := Accuracy(global, test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.8 {
		t.Errorf("non-IID FedAvg accuracy %.3f, want ≥0.8", acc)
	}
}

func TestGammaSamplePositive(t *testing.T) {
	data, err := Blobs(100, 2, 2, 0.5, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Extreme alphas must not hang or produce invalid shards.
	for _, alpha := range []float64{0.01, 1, 50} {
		shards, err := PartitionNonIID(data, 4, 2, alpha, 10)
		if err != nil {
			t.Fatalf("alpha %v: %v", alpha, err)
		}
		total := 0
		for _, s := range shards {
			total += len(s)
		}
		if total != 100 {
			t.Fatalf("alpha %v lost examples: %d", alpha, total)
		}
	}
}
