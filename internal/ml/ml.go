// Package ml is a small from-scratch machine-learning substrate: models with
// hand-coded analytic gradients (logistic regression, a one-hidden-layer MLP
// and an LSTM sequence classifier), minibatch SGD and synthetic datasets
// shaped like the paper's three workloads.
//
// The FL layer trains these models for real — gradients are exact (verified
// against finite differences in tests) and FedAvg genuinely converges. What
// is simulated is only the hardware cost of executing a minibatch, which
// package device provides. This mirrors the role PyTorch plays in the
// paper's implementation (module 1 in Figure 8).
package ml

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"bofl/internal/obs"
)

// Training telemetry: one counter bump and one gauge store per minibatch,
// routed through a process-wide sink so FL clients and experiment harnesses
// share the same registry. Defaults to the no-op sink. The interface is boxed
// in a struct because atomic.Value demands one consistent concrete type.
type sinkBox struct{ s obs.Sink }

var pkgSink atomic.Value // holds sinkBox

func init() { pkgSink.Store(sinkBox{obs.Nop}) }

// SetSink routes training-progress telemetry through s. Nil restores the
// no-op sink.
func SetSink(s obs.Sink) { pkgSink.Store(sinkBox{obs.OrNop(s)}) }

// Training instrument names.
const (
	MetricTrainSteps = "bofl_ml_train_steps_total" // counter: completed minibatch SGD steps
	MetricTrainLoss  = "bofl_ml_train_loss"        // gauge: last minibatch loss
)

// Example is one training sample. Feature models read Features; sequence
// models read Seq (token ids). Label is the class index.
type Example struct {
	Features []float64
	Seq      []int
	Label    int
}

// Model is a trainable classifier with a flat parameter vector.
type Model interface {
	// NumParams returns the length of the parameter vector.
	NumParams() int
	// Params returns the model's parameters as a mutable flat slice
	// (aliasing internal state — callers own synchronization).
	Params() []float64
	// Loss returns the mean cross-entropy of the batch.
	Loss(batch []Example) (float64, error)
	// Gradients returns the mean gradient of the loss over the batch,
	// flattened to align with Params, plus the batch loss.
	Gradients(batch []Example) ([]float64, float64, error)
	// Predict returns the most likely class of one example.
	Predict(ex Example) (int, error)
}

// ErrEmptyBatch is returned when Loss or Gradients receives no examples.
var ErrEmptyBatch = errors.New("ml: empty batch")

// SGD applies one vanilla stochastic-gradient step: p ← p − lr·g.
func SGD(m Model, grads []float64, lr float64) error {
	p := m.Params()
	if len(grads) != len(p) {
		return fmt.Errorf("ml: gradient length %d != param length %d", len(grads), len(p))
	}
	if lr <= 0 {
		return fmt.Errorf("ml: non-positive learning rate %v", lr)
	}
	for i := range p {
		p[i] -= lr * grads[i]
	}
	return nil
}

// TrainStep runs one minibatch SGD step and returns the batch loss.
func TrainStep(m Model, batch []Example, lr float64) (float64, error) {
	grads, loss, err := m.Gradients(batch)
	if err != nil {
		return 0, err
	}
	if err := SGD(m, grads, lr); err != nil {
		return 0, err
	}
	s := pkgSink.Load().(sinkBox).s
	s.Count(MetricTrainSteps, 1)
	s.SetGauge(MetricTrainLoss, loss)
	return loss, nil
}

// Accuracy evaluates m on the examples.
func Accuracy(m Model, examples []Example) (float64, error) {
	if len(examples) == 0 {
		return 0, ErrEmptyBatch
	}
	correct := 0
	for _, ex := range examples {
		pred, err := m.Predict(ex)
		if err != nil {
			return 0, err
		}
		if pred == ex.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(examples)), nil
}

// softmaxCrossEntropy computes softmax probabilities of logits and the
// cross-entropy against label; dlogits receives ∂loss/∂logits.
func softmaxCrossEntropy(logits []float64, label int, dlogits []float64) float64 {
	maxv := logits[0]
	for _, v := range logits[1:] {
		if v > maxv {
			maxv = v
		}
	}
	sum := 0.0
	for i, v := range logits {
		e := math.Exp(v - maxv)
		dlogits[i] = e
		sum += e
	}
	for i := range dlogits {
		dlogits[i] /= sum
	}
	loss := -math.Log(math.Max(dlogits[label], 1e-15))
	dlogits[label] -= 1
	return loss
}

// initUniform fills w with small uniform values in [−s, s].
func initUniform(w []float64, s float64, rng *rand.Rand) {
	for i := range w {
		w[i] = (2*rng.Float64() - 1) * s
	}
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
