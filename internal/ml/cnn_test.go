package ml

import (
	"testing"
)

func TestCNNGradients(t *testing.T) {
	m, err := NewCNN(6, 3, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := ImagePatterns(5, 6, 3, 0.2, 2)
	if err != nil {
		t.Fatal(err)
	}
	gradCheck(t, m, batch, 1e-3)
}

func TestCNNValidation(t *testing.T) {
	if _, err := NewCNN(2, 3, 3, 1); err == nil {
		t.Error("tiny side accepted")
	}
	if _, err := NewCNN(6, 0, 3, 1); err == nil {
		t.Error("zero filters accepted")
	}
	if _, err := NewCNN(6, 3, 1, 1); err == nil {
		t.Error("single class accepted")
	}
	m, err := NewCNN(6, 3, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Loss(nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := m.Loss([]Example{{Features: make([]float64, 5), Label: 0}}); err == nil {
		t.Error("wrong image size accepted")
	}
	if _, err := m.Loss([]Example{{Features: make([]float64, 36), Label: 9}}); err == nil {
		t.Error("label out of range accepted")
	}
}

func TestCNNLearnsPatterns(t *testing.T) {
	data, err := ImagePatterns(600, 8, 4, 0.25, 3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewCNN(8, 8, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	acc := trainToAccuracy(t, m, data[:500], data[500:], 0.3, 20, 16)
	if acc < 0.9 {
		t.Errorf("cnn accuracy %v, want ≥0.9", acc)
	}
}

func TestCNNBeatsLinearOnPatterns(t *testing.T) {
	// The oriented-bar patterns appear at random offsets, so translation
	// matters: the convolution should clearly outperform a linear model
	// trained identically.
	data, err := ImagePatterns(600, 8, 2, 0.45, 5)
	if err != nil {
		t.Fatal(err)
	}
	cnn, err := NewCNN(8, 8, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := NewLinear(64, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	cnnAcc := trainToAccuracy(t, cnn, data[:500], data[500:], 0.3, 20, 16)
	linAcc := trainToAccuracy(t, lin, data[:500], data[500:], 0.3, 20, 16)
	if cnnAcc < linAcc {
		t.Errorf("cnn %.3f should beat linear %.3f on translated patterns", cnnAcc, linAcc)
	}
	if cnnAcc < 0.85 {
		t.Errorf("cnn accuracy %.3f too low", cnnAcc)
	}
}

func TestImagePatternsValidation(t *testing.T) {
	if _, err := ImagePatterns(0, 8, 2, 0.1, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := ImagePatterns(10, 3, 2, 0.1, 1); err == nil {
		t.Error("tiny side accepted")
	}
	if _, err := ImagePatterns(10, 8, 9, 0.1, 1); err == nil {
		t.Error("too many classes accepted")
	}
	if _, err := ImagePatterns(10, 8, 2, -1, 1); err == nil {
		t.Error("negative noise accepted")
	}
}
