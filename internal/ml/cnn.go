package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// CNN is a small convolutional classifier for square single-channel images:
//
//	conv 3×3 (filters, stride 1, valid padding) → ReLU →
//	global average pool per filter → logits = W·pool + b
//
// It is the convolutional stand-in for the paper's vision workloads
// (ResNet50-class models); gradients are hand-derived and verified against
// finite differences in tests. Examples carry the image row-major in
// Features (length side×side).
type CNN struct {
	side, filters, out int
	params             []float64 // K (filters×3×3) | bK (filters) | W (out×filters) | b (out)
}

var _ Model = (*CNN)(nil)

// NewCNN builds a CNN for side×side inputs.
func NewCNN(side, filters, out int, seed int64) (*CNN, error) {
	if side < 3 {
		return nil, fmt.Errorf("ml: cnn side %d must be ≥ 3", side)
	}
	if filters <= 0 || out <= 1 {
		return nil, fmt.Errorf("ml: cnn dims (filters=%d, out=%d) invalid", filters, out)
	}
	n := filters*9 + filters + out*filters + out
	m := &CNN{side: side, filters: filters, out: out, params: make([]float64, n)}
	rng := rand.New(rand.NewSource(seed))
	initUniform(m.params[:filters*9], math.Sqrt(2.0/9), rng)
	start := filters*9 + filters
	initUniform(m.params[start:start+out*filters], math.Sqrt(2.0/float64(filters+out)), rng)
	return m, nil
}

// NumParams returns the parameter count.
func (m *CNN) NumParams() int { return len(m.params) }

// Params returns the flat parameter vector (aliased).
func (m *CNN) Params() []float64 { return m.params }

func (m *CNN) slices(v []float64) (kernels, kb, w, b []float64) {
	f := m.filters
	kernels = v[:f*9]
	kb = v[f*9 : f*9+f]
	w = v[f*9+f : f*9+f+m.out*f]
	b = v[f*9+f+m.out*f:]
	return kernels, kb, w, b
}

func (m *CNN) check(batch []Example) error {
	if len(batch) == 0 {
		return ErrEmptyBatch
	}
	want := m.side * m.side
	for i, ex := range batch {
		if len(ex.Features) != want {
			return fmt.Errorf("ml: example %d has %d features, want %d (%d×%d image)", i, len(ex.Features), want, m.side, m.side)
		}
		if ex.Label < 0 || ex.Label >= m.out {
			return fmt.Errorf("ml: example %d label %d out of range", i, ex.Label)
		}
	}
	return nil
}

// convTrace keeps forward activations for backprop.
type convTrace struct {
	pre  []float64 // pre-activation feature maps, filters×oh×ow
	pool []float64 // per-filter pooled activations
}

func (m *CNN) forward(x []float64, tr *convTrace, logits []float64) {
	kernels, kb, w, b := m.slices(m.params)
	oh := m.side - 2
	n := oh * oh
	if tr.pre == nil {
		tr.pre = make([]float64, m.filters*n)
		tr.pool = make([]float64, m.filters)
	}
	for f := 0; f < m.filters; f++ {
		k := kernels[f*9 : (f+1)*9]
		sum := 0.0
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < oh; ox++ {
				s := kb[f]
				for ky := 0; ky < 3; ky++ {
					row := (oy+ky)*m.side + ox
					s += k[ky*3]*x[row] + k[ky*3+1]*x[row+1] + k[ky*3+2]*x[row+2]
				}
				tr.pre[f*n+oy*oh+ox] = s
				if s > 0 { // ReLU before pooling
					sum += s
				}
			}
		}
		tr.pool[f] = sum / float64(n)
	}
	for o := 0; o < m.out; o++ {
		s := b[o]
		row := w[o*m.filters : (o+1)*m.filters]
		for f, p := range tr.pool {
			s += row[f] * p
		}
		logits[o] = s
	}
}

// Loss returns the batch's mean cross-entropy.
func (m *CNN) Loss(batch []Example) (float64, error) {
	if err := m.check(batch); err != nil {
		return 0, err
	}
	var tr convTrace
	logits := make([]float64, m.out)
	dl := make([]float64, m.out)
	total := 0.0
	for _, ex := range batch {
		m.forward(ex.Features, &tr, logits)
		total += softmaxCrossEntropy(logits, ex.Label, dl)
	}
	return total / float64(len(batch)), nil
}

// Gradients returns the mean gradient over the batch.
func (m *CNN) Gradients(batch []Example) ([]float64, float64, error) {
	if err := m.check(batch); err != nil {
		return nil, 0, err
	}
	grads := make([]float64, len(m.params))
	gK, gKb, gW, gB := m.slices(grads)
	_, _, w, _ := m.slices(m.params)

	var tr convTrace
	logits := make([]float64, m.out)
	dl := make([]float64, m.out)
	dpool := make([]float64, m.filters)
	oh := m.side - 2
	n := oh * oh
	total := 0.0
	for _, ex := range batch {
		m.forward(ex.Features, &tr, logits)
		total += softmaxCrossEntropy(logits, ex.Label, dl)

		for f := range dpool {
			dpool[f] = 0
		}
		for o := 0; o < m.out; o++ {
			row := w[o*m.filters : (o+1)*m.filters]
			grow := gW[o*m.filters : (o+1)*m.filters]
			for f, p := range tr.pool {
				grow[f] += dl[o] * p
				dpool[f] += dl[o] * row[f]
			}
			gB[o] += dl[o]
		}
		inv := 1 / float64(n)
		x := ex.Features
		for f := 0; f < m.filters; f++ {
			gk := gK[f*9 : (f+1)*9]
			d := dpool[f] * inv
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < oh; ox++ {
					if tr.pre[f*n+oy*oh+ox] <= 0 {
						continue // ReLU gate
					}
					for ky := 0; ky < 3; ky++ {
						row := (oy+ky)*m.side + ox
						gk[ky*3] += d * x[row]
						gk[ky*3+1] += d * x[row+1]
						gk[ky*3+2] += d * x[row+2]
					}
					gKb[f] += d
				}
			}
		}
	}
	inv := 1 / float64(len(batch))
	for i := range grads {
		grads[i] *= inv
	}
	return grads, total * inv, nil
}

// Predict returns the argmax class.
func (m *CNN) Predict(ex Example) (int, error) {
	if err := m.check([]Example{ex}); err != nil {
		return 0, err
	}
	var tr convTrace
	logits := make([]float64, m.out)
	m.forward(ex.Features, &tr, logits)
	best := 0
	for o, v := range logits {
		if v > logits[best] {
			best = o
		}
	}
	return best, nil
}

// ImagePatterns generates a synthetic image-classification dataset: each
// class is a distinct spatial pattern (oriented bar) plus pixel noise on a
// side×side canvas — enough structure that a convolution genuinely helps over
// a linear model.
func ImagePatterns(n, side, classes int, noise float64, seed int64) ([]Example, error) {
	if n <= 0 || side < 5 || classes <= 1 || classes > 4 {
		return nil, fmt.Errorf("ml: ImagePatterns(n=%d, side=%d, classes=%d) invalid (classes ≤ 4)", n, side, classes)
	}
	if noise < 0 {
		return nil, fmt.Errorf("ml: negative noise %v", noise)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Example, n)
	for i := range out {
		label := rng.Intn(classes)
		img := make([]float64, side*side)
		for p := range img {
			img[p] = rng.NormFloat64() * noise
		}
		// Draw the class pattern at a random offset.
		off := rng.Intn(side - 4)
		switch label {
		case 0: // horizontal bar
			for x := 0; x < side; x++ {
				img[(off+2)*side+x] += 1
			}
		case 1: // vertical bar
			for y := 0; y < side; y++ {
				img[y*side+off+2] += 1
			}
		case 2: // diagonal
			for d := 0; d < side; d++ {
				img[d*side+d] += 1
			}
		case 3: // anti-diagonal
			for d := 0; d < side; d++ {
				img[d*side+(side-1-d)] += 1
			}
		}
		out[i] = Example{Features: img, Label: label}
	}
	return out, nil
}
