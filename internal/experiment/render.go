package experiment

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"
)

// Rendering helpers: each experiment gets a WriteX function that prints the
// same rows/series the paper's table or figure reports, in plain text.

func newTab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// WriteTable1 prints the testbed DVFS spaces.
func WriteTable1(w io.Writer, rows []Table1Row) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "device\tcpu steps\tcpu range (GHz)\tgpu steps\tgpu range (GHz)\tmem steps\tmem range (GHz)\tconfigs")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.2f–%.2f\t%d\t%.2f–%.2f\t%d\t%.2f–%.2f\t%d\n",
			r.Device, r.CPUSteps, r.CPUMin, r.CPUMax, r.GPUSteps, r.GPUMin, r.GPUMax,
			r.MemSteps, r.MemMin, r.MemMax, r.Configs)
	}
	return tw.Flush()
}

// WriteTable2 prints the FL task specifications.
func WriteTable2(w io.Writer, rows []Table2Row) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "task\tdevice\tB\tE\tN\tW=E·N\tT_min (s)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%.1f\n",
			r.Task, r.Device, r.BatchSize, r.Epochs, r.Minibatches, r.Jobs, r.TMin)
	}
	return tw.Flush()
}

// WriteTable3 prints the exploration walkthrough.
func WriteTable3(w io.Writer, data []*Table3Data) error {
	tw := newTab(w)
	for _, d := range data {
		fmt.Fprintf(tw, "%s\n", d.Task)
		fmt.Fprintln(tw, "round\tphase\t# exp\t# pareto")
		for _, r := range d.Rows {
			phase := "2 (MBO)"
			if r.Phase1 {
				phase = "1 (random)"
			}
			fmt.Fprintf(tw, "%d\t%s\t%d\t%d\n", r.Round, phase, r.Explored, r.ParetoCount)
		}
		fmt.Fprintf(tw, "total\t\t%d\t%d\n\n", d.TotalExp, d.TotalPareto)
	}
	return tw.Flush()
}

// WriteFigure3 prints the two latency/energy sweeps.
func WriteFigure3(w io.Writer, d *Figure3Data) error {
	tw := newTab(w)
	fmt.Fprintf(tw, "ViT on %s vs GPU frequency (memory at max)\n", d.Device)
	fmt.Fprintf(tw, "gpu (GHz)\tlatency@cpu=%.2f (s)\tenergy@cpu=%.2f (J)\tlatency@cpu=%.2f (s)\tenergy@cpu=%.2f (J)\n",
		d.CPULow, d.CPULow, d.CPUHigh, d.CPUHigh)
	for i := range d.AtLow {
		fmt.Fprintf(tw, "%.2f\t%.3f\t%.2f\t%.3f\t%.2f\n",
			d.AtLow[i].Freq, d.AtLow[i].Latency, d.AtLow[i].Energy,
			d.AtHigh[i].Latency, d.AtHigh[i].Energy)
	}
	return tw.Flush()
}

// WriteFigure2 prints the DVFS-leverage summary and the front size.
func WriteFigure2(w io.Writer, d *Figure2Data) error {
	tw := newTab(w)
	fmt.Fprintf(tw, "%s / %s: %d configurations, %d on the Pareto front\n",
		d.Device, d.Workload, len(d.Points), len(d.Front))
	fmt.Fprintf(tw, "speed leverage (slowest/fastest): %.1fx\n", d.SpeedLeverage)
	fmt.Fprintf(tw, "energy leverage (hungriest/leanest): %.1fx\n", d.EnergyLeverage)
	return tw.Flush()
}

// WriteFigure4 prints the per-workload CPU sweeps.
func WriteFigure4(w io.Writer, d *Figure4Data) error {
	tw := newTab(w)
	fmt.Fprintf(tw, "three workloads on %s vs CPU frequency (GPU/mem at max)\n", d.Device)
	header := "cpu (GHz)"
	for _, wl := range d.Order {
		header += fmt.Sprintf("\t%s lat (s)\t%s J", wl, wl)
	}
	fmt.Fprintln(tw, header)
	n := len(d.Series[d.Order[0]])
	for i := 0; i < n; i++ {
		line := fmt.Sprintf("%.2f", d.Series[d.Order[0]][i].Freq)
		for _, wl := range d.Order {
			p := d.Series[wl][i]
			line += fmt.Sprintf("\t%.3f\t%.2f", p.Latency, p.Energy)
		}
		fmt.Fprintln(tw, line)
	}
	return tw.Flush()
}

// WriteFigure5 prints the normalized cross-device comparison.
func WriteFigure5(w io.Writer, rows []Figure5Row) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "workload\tAGX/TX2 latency\tAGX/TX2 energy")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\n", r.Workload, r.LatencyRatio, r.EnergyRatio)
	}
	return tw.Flush()
}

// WriteEnergyComparison prints the first `limit` rounds of a Figure 9/10
// panel (0 = all).
func WriteEnergyComparison(w io.Writer, cmp *EnergyComparison, limit int) error {
	tw := newTab(w)
	fmt.Fprintf(tw, "%s on %s, T_max/T_min = %s (phase1 ≤ r%d, phase2 ≤ r%d)\n",
		cmp.Task.Name, cmp.Device, ratioLabel(cmp.Ratio), cmp.EndPhase1, cmp.EndPhase2)
	fmt.Fprintln(tw, "round\tDDL (s)\tBoFL (J)\tPerformant (J)\tOracle (J)\tphase")
	for i, r := range cmp.Rows {
		if limit > 0 && i >= limit {
			break
		}
		fmt.Fprintf(tw, "%d\t%.1f\t%.1f\t%.1f\t%.1f\t%v\n",
			r.Round, r.Deadline, r.BoFL, r.Performant, r.Oracle, r.Phase)
	}
	fmt.Fprintf(tw, "total\t\t%.0f\t%.0f\t%.0f\timprovement %.1f%%, regret %.2f%%\n",
		cmp.BoFLTotal, cmp.PerformantTotal, cmp.OracleTotal,
		cmp.Improvement*100, cmp.Regret*100)
	return tw.Flush()
}

// WriteEnergyComparisonCSV emits the per-round series for external plotting.
func WriteEnergyComparisonCSV(w io.Writer, cmp *EnergyComparison) error {
	if _, err := fmt.Fprintln(w, "round,deadline_s,bofl_j,performant_j,oracle_j,phase"); err != nil {
		return err
	}
	for _, r := range cmp.Rows {
		if _, err := fmt.Fprintf(w, "%d,%.3f,%.3f,%.3f,%.3f,%s\n",
			r.Round, r.Deadline, r.BoFL, r.Performant, r.Oracle, r.Phase); err != nil {
			return err
		}
	}
	return nil
}

// WriteFigure11 prints the front-comparison summary (the full point clouds go
// to CSV via WriteFigure11CSV).
func WriteFigure11(w io.Writer, data []*Figure11Data) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "task\texplored\tspace\texplored %\tBoFL front\ttrue front\tHV coverage")
	for _, d := range data {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.1f%%\t%d pts\t%d pts\t%.1f%%\n",
			d.Task, d.ExploredCount, d.SpaceSize, d.ExploredFrac*100,
			len(d.BoFLFront), len(d.TrueFront), d.HVCoverage*100)
	}
	return tw.Flush()
}

// WriteFigure11CSV emits the scatter data for external plotting.
func WriteFigure11CSV(w io.Writer, d *Figure11Data) error {
	if _, err := fmt.Fprintln(w, "series,energy_j,latency_s"); err != nil {
		return err
	}
	for _, p := range d.Explored {
		if _, err := fmt.Fprintf(w, "explored,%.6f,%.6f\n", p.X, p.Y); err != nil {
			return err
		}
	}
	for _, p := range d.BoFLFront {
		if _, err := fmt.Fprintf(w, "bofl_front,%.6f,%.6f\n", p.X, p.Y); err != nil {
			return err
		}
	}
	for _, p := range d.TrueFront {
		if _, err := fmt.Fprintf(w, "true_front,%.6f,%.6f\n", p.X, p.Y); err != nil {
			return err
		}
	}
	return nil
}

// WriteFigure12 prints the sensitivity grid.
func WriteFigure12(w io.Writer, cells []Figure12Cell) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "task\tT_max/T_min\timprovement vs Performant\tregret vs Oracle")
	for _, c := range cells {
		fmt.Fprintf(tw, "%s\t%s\t%.1f%%\t%.2f%%\n", c.Task, c.RatioLabel, c.Improvement*100, c.Regret*100)
	}
	return tw.Flush()
}

// WriteFigure13 prints the MBO overhead analysis.
func WriteFigure13(w io.Writer, rows []Figure13Row) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "device\ttask\tMBO rounds\tmean latency\tmax latency\tmean energy (J)\ttotal MBO (J)\ttraining (J)\toverhead")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%s\t%s\t%.1f\t%.1f\t%.0f\t%.2f%%\n",
			r.Device, r.Task, r.MBORounds,
			r.MeanMBOLatency.Round(time.Millisecond), r.MaxMBOLatency.Round(time.Millisecond),
			r.MeanMBOEnergy, r.TotalMBOEnergy, r.TotalTrainingEnergy, r.OverheadFrac*100)
	}
	return tw.Flush()
}

// WriteThermalStudy prints the throttling-board extension study.
func WriteThermalStudy(w io.Writer, rows []ThermalRow) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "controller\ttotal energy (J)\tdeadline misses\treadapts\tfinal temp (°C)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.0f\t%d\t%d\t%.1f\n",
			r.Controller, r.TotalEnergy, r.DeadlineMisses, r.Readapts, r.FinalTempC)
	}
	return tw.Flush()
}

// Sparkline renders a crude one-line chart of a series, for terminal output.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := values[0], values[0]
	for _, v := range values[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(blocks)-1))
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}
