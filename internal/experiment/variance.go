package experiment

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"bofl/internal/core"
	"bofl/internal/device"
	"bofl/internal/fl"
	"bofl/internal/obs"
	"bofl/internal/parallel"
)

// Multi-seed variance study: the paper reports single runs; this harness
// repeats the headline comparison across independent seeds and reports
// mean ± sample standard deviation, so the improvement/regret bands in
// EXPERIMENTS.md can be read with error bars.

// VarianceRow aggregates one task's metrics over several seeds.
type VarianceRow struct {
	Task            string  `json:"task"`
	Seeds           int     `json:"seeds"`
	ImprovementMean float64 `json:"improvementMean"`
	ImprovementStd  float64 `json:"improvementStd"`
	RegretMean      float64 `json:"regretMean"`
	RegretStd       float64 `json:"regretStd"`
	TotalMisses     int     `json:"totalMisses"`
}

// VarianceStudy runs the BoFL/Performant/Oracle comparison `seeds` times per
// task at the given ratio and aggregates the metrics.
func VarianceStudy(dev *device.Device, ratio float64, rounds, seeds int, base int64, opts core.Options) ([]VarianceRow, error) {
	if seeds <= 1 {
		return nil, fmt.Errorf("experiment: variance study needs ≥ 2 seeds, got %d", seeds)
	}
	tasks, err := fl.Tasks(dev, ratio, rounds)
	if err != nil {
		return nil, err
	}
	// Fan the full task × seed grid across the worker pool: every repeat
	// is an independent run, and results land in per-(task, seed) slots so
	// the aggregation below is deterministic.
	cmps := make([]*EnergyComparison, len(tasks)*seeds)
	err = parallel.ForErr(len(cmps), func(i int) error {
		ti, s := i/seeds, i%seeds
		cmp, err := EnergyComparisonFor(dev, tasks[ti], rounds, base+int64(ti*1000+s*17), opts)
		if err != nil {
			return fmt.Errorf("experiment: %s seed %d: %w", tasks[ti].Name, s, err)
		}
		cmps[i] = cmp
		cellDone("variance", obs.L("task", tasks[ti].Name), obs.L("seed", fmt.Sprint(s)))
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]VarianceRow, 0, len(tasks))
	for ti, task := range tasks {
		imps := make([]float64, 0, seeds)
		regs := make([]float64, 0, seeds)
		misses := 0
		for s := 0; s < seeds; s++ {
			cmp := cmps[ti*seeds+s]
			imps = append(imps, cmp.Improvement)
			regs = append(regs, cmp.Regret)
			misses += cmp.BoFLRun.DeadlineMisses
		}
		im, is := meanStd(imps)
		rm, rs := meanStd(regs)
		rows = append(rows, VarianceRow{
			Task:            task.Name,
			Seeds:           seeds,
			ImprovementMean: im,
			ImprovementStd:  is,
			RegretMean:      rm,
			RegretStd:       rs,
			TotalMisses:     misses,
		})
	}
	return rows, nil
}

func meanStd(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(xs)-1))
	return mean, std
}

// WriteVarianceStudy prints the aggregated rows.
func WriteVarianceStudy(w io.Writer, rows []VarianceRow, ratio float64) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "ratio %s, %d seeds per task\n", ratioLabel(ratio), rows[0].Seeds)
	fmt.Fprintln(tw, "task\timprovement vs Performant\tregret vs Oracle\tBoFL deadline misses")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.1f%% ± %.1f\t%.2f%% ± %.2f\t%d\n",
			r.Task, r.ImprovementMean*100, r.ImprovementStd*100,
			r.RegretMean*100, r.RegretStd*100, r.TotalMisses)
	}
	return tw.Flush()
}
