package experiment

import (
	"fmt"

	"bofl/internal/core"
	"bofl/internal/device"
	"bofl/internal/fl"
	"bofl/internal/obs"
	"bofl/internal/parallel"
)

// EnergyRow is one round of the per-round energy comparison (Figures 9–10).
type EnergyRow struct {
	Round      int        `json:"round"`
	Deadline   float64    `json:"deadlineSeconds"`
	BoFL       float64    `json:"boflJoules"`
	Performant float64    `json:"performantJoules"`
	Oracle     float64    `json:"oracleJoules"`
	Phase      core.Phase `json:"boflPhase"`
}

// EnergyComparison is the full Figure 9/10 dataset for one task.
type EnergyComparison struct {
	Device    string      `json:"device"`
	Task      fl.TaskSpec `json:"task"`
	Ratio     float64     `json:"ratio"`
	Rows      []EnergyRow `json:"rows"`
	EndPhase1 int         `json:"endPhase1"`
	EndPhase2 int         `json:"endPhase2"`

	// Totals over all rounds.
	BoFLTotal       float64 `json:"boflTotalJoules"`
	PerformantTotal float64 `json:"performantTotalJoules"`
	OracleTotal     float64 `json:"oracleTotalJoules"`
	// Improvement vs Performant (1 − BoFL/Performant) and regret vs Oracle
	// (BoFL/Oracle − 1) — the Figure 12 metrics.
	Improvement float64 `json:"improvement"`
	Regret      float64 `json:"regret"`

	BoFLRun *TaskRun `json:"-"`
}

// EnergyComparisonFor runs one task under BoFL, Performant and Oracle with a
// shared deadline sequence and pairs the per-round energies (Figures 9–10
// plot the first 40 rounds of exactly this data).
func EnergyComparisonFor(dev *device.Device, task fl.TaskSpec, rounds int, seed int64, opts core.Options) (*EnergyComparison, error) {
	// The three controllers share the seed (hence the deadline sequence)
	// but are otherwise independent runs; execute them side by side.
	kinds := []ControllerKind{KindBoFL, KindPerformant, KindOracle}
	runs := make([]*TaskRun, len(kinds))
	err := parallel.ForErr(len(kinds), func(i int) error {
		run, err := RunTask(RunConfig{
			Device:      dev,
			Task:        task,
			Rounds:      rounds,
			Controller:  kinds[i],
			Seed:        seed,
			CtrlOptions: opts,
		})
		if err != nil {
			return err
		}
		runs[i] = run
		return nil
	})
	if err != nil {
		return nil, err
	}
	bofl, perf, oracle := runs[0], runs[1], runs[2]
	if bofl.DeadlineMisses > 0 || oracle.DeadlineMisses > 0 {
		return nil, fmt.Errorf("experiment: deadline misses (bofl %d, oracle %d)", bofl.DeadlineMisses, oracle.DeadlineMisses)
	}

	out := &EnergyComparison{
		Device:          dev.Name(),
		Task:            task,
		Ratio:           task.DeadlineRatio,
		BoFLTotal:       bofl.TotalEnergy,
		PerformantTotal: perf.TotalEnergy,
		OracleTotal:     oracle.TotalEnergy,
		Improvement:     1 - bofl.TotalEnergy/perf.TotalEnergy,
		Regret:          bofl.TotalEnergy/oracle.TotalEnergy - 1,
		BoFLRun:         bofl,
	}
	out.EndPhase1, out.EndPhase2 = bofl.PhaseBoundaries()
	cellDone("energy-comparison",
		obs.L("task", task.Name),
		obs.L("improvement", fmtF(out.Improvement)),
		obs.L("regret", fmtF(out.Regret)))
	for r := range bofl.Reports {
		out.Rows = append(out.Rows, EnergyRow{
			Round:      r + 1,
			Deadline:   bofl.Deadlines[r],
			BoFL:       bofl.Reports[r].Energy,
			Performant: perf.Reports[r].Energy,
			Oracle:     oracle.Reports[r].Energy,
			Phase:      bofl.Reports[r].Phase,
		})
	}
	return out, nil
}

// Figure9 reproduces Figure 9 (ratio 2.0) or Figure 10 (ratio 4.0) on the
// AGX testbed: one EnergyComparison per task.
func Figure9(ratio float64, rounds int, seed int64, opts core.Options) ([]*EnergyComparison, error) {
	dev := device.JetsonAGX()
	tasks, err := fl.Tasks(dev, ratio, rounds)
	if err != nil {
		return nil, err
	}
	// Per-task runs are independent (each gets its own seed-derived
	// deadline and noise streams); fan them across the worker pool and
	// keep the output in task order.
	out := make([]*EnergyComparison, len(tasks))
	err = parallel.ForErr(len(tasks), func(i int) error {
		cmp, err := EnergyComparisonFor(dev, tasks[i], rounds, seed+int64(i)*101, opts)
		if err != nil {
			return fmt.Errorf("experiment: %s: %w", tasks[i].Name, err)
		}
		out[i] = cmp
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Figure12Cell is one (task, ratio) point of the sensitivity study.
type Figure12Cell struct {
	Task        string  `json:"task"`
	Ratio       float64 `json:"ratio"`
	RatioLabel  string  `json:"ratioLabel"`
	Improvement float64 `json:"improvement"` // vs Performant
	Regret      float64 `json:"regret"`      // vs Oracle
}

// Figure12 sweeps the deadline ratio over the paper's grid
// {2.0, 2.5, 3.0, 3.5, 4.0} for all three AGX tasks.
func Figure12(ratios []float64, rounds int, seed int64, opts core.Options) ([]Figure12Cell, error) {
	if len(ratios) == 0 {
		ratios = []float64{2.0, 2.5, 3.0, 3.5, 4.0}
	}
	dev := device.JetsonAGX()
	// Flatten the ratio × task grid into one independent job per cell, then
	// fan the whole grid across the worker pool; the flat index keeps the
	// output in sweep order.
	type gridJob struct {
		ri, ti int
		ratio  float64
		task   fl.TaskSpec
	}
	var jobs []gridJob
	for ri, ratio := range ratios {
		tasks, err := fl.Tasks(dev, ratio, rounds)
		if err != nil {
			return nil, err
		}
		for ti, task := range tasks {
			jobs = append(jobs, gridJob{ri: ri, ti: ti, ratio: ratio, task: task})
		}
	}
	cells := make([]Figure12Cell, len(jobs))
	err := parallel.ForErr(len(jobs), func(i int) error {
		j := jobs[i]
		cmp, err := EnergyComparisonFor(dev, j.task, rounds, seed+int64(j.ri*31+j.ti*7), opts)
		if err != nil {
			return fmt.Errorf("experiment: %s @%.1fx: %w", j.task.Name, j.ratio, err)
		}
		cells[i] = Figure12Cell{
			Task:        j.task.Name,
			Ratio:       j.ratio,
			RatioLabel:  ratioLabel(j.ratio),
			Improvement: cmp.Improvement,
			Regret:      cmp.Regret,
		}
		cellDone("figure12", obs.L("task", j.task.Name), obs.L("ratio", fmtF(j.ratio)))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cells, nil
}
