package experiment

import (
	"fmt"

	"bofl/internal/core"
	"bofl/internal/device"
	"bofl/internal/fl"
)

// EnergyRow is one round of the per-round energy comparison (Figures 9–10).
type EnergyRow struct {
	Round      int        `json:"round"`
	Deadline   float64    `json:"deadlineSeconds"`
	BoFL       float64    `json:"boflJoules"`
	Performant float64    `json:"performantJoules"`
	Oracle     float64    `json:"oracleJoules"`
	Phase      core.Phase `json:"boflPhase"`
}

// EnergyComparison is the full Figure 9/10 dataset for one task.
type EnergyComparison struct {
	Device    string      `json:"device"`
	Task      fl.TaskSpec `json:"task"`
	Ratio     float64     `json:"ratio"`
	Rows      []EnergyRow `json:"rows"`
	EndPhase1 int         `json:"endPhase1"`
	EndPhase2 int         `json:"endPhase2"`

	// Totals over all rounds.
	BoFLTotal       float64 `json:"boflTotalJoules"`
	PerformantTotal float64 `json:"performantTotalJoules"`
	OracleTotal     float64 `json:"oracleTotalJoules"`
	// Improvement vs Performant (1 − BoFL/Performant) and regret vs Oracle
	// (BoFL/Oracle − 1) — the Figure 12 metrics.
	Improvement float64 `json:"improvement"`
	Regret      float64 `json:"regret"`

	BoFLRun *TaskRun `json:"-"`
}

// EnergyComparisonFor runs one task under BoFL, Performant and Oracle with a
// shared deadline sequence and pairs the per-round energies (Figures 9–10
// plot the first 40 rounds of exactly this data).
func EnergyComparisonFor(dev *device.Device, task fl.TaskSpec, rounds int, seed int64, opts core.Options) (*EnergyComparison, error) {
	runs := make(map[ControllerKind]*TaskRun, 3)
	for _, kind := range []ControllerKind{KindBoFL, KindPerformant, KindOracle} {
		run, err := RunTask(RunConfig{
			Device:      dev,
			Task:        task,
			Rounds:      rounds,
			Controller:  kind,
			Seed:        seed,
			CtrlOptions: opts,
		})
		if err != nil {
			return nil, err
		}
		runs[kind] = run
	}
	bofl, perf, oracle := runs[KindBoFL], runs[KindPerformant], runs[KindOracle]
	if bofl.DeadlineMisses > 0 || oracle.DeadlineMisses > 0 {
		return nil, fmt.Errorf("experiment: deadline misses (bofl %d, oracle %d)", bofl.DeadlineMisses, oracle.DeadlineMisses)
	}

	out := &EnergyComparison{
		Device:          dev.Name(),
		Task:            task,
		Ratio:           task.DeadlineRatio,
		BoFLTotal:       bofl.TotalEnergy,
		PerformantTotal: perf.TotalEnergy,
		OracleTotal:     oracle.TotalEnergy,
		Improvement:     1 - bofl.TotalEnergy/perf.TotalEnergy,
		Regret:          bofl.TotalEnergy/oracle.TotalEnergy - 1,
		BoFLRun:         bofl,
	}
	out.EndPhase1, out.EndPhase2 = bofl.PhaseBoundaries()
	for r := range bofl.Reports {
		out.Rows = append(out.Rows, EnergyRow{
			Round:      r + 1,
			Deadline:   bofl.Deadlines[r],
			BoFL:       bofl.Reports[r].Energy,
			Performant: perf.Reports[r].Energy,
			Oracle:     oracle.Reports[r].Energy,
			Phase:      bofl.Reports[r].Phase,
		})
	}
	return out, nil
}

// Figure9 reproduces Figure 9 (ratio 2.0) or Figure 10 (ratio 4.0) on the
// AGX testbed: one EnergyComparison per task.
func Figure9(ratio float64, rounds int, seed int64, opts core.Options) ([]*EnergyComparison, error) {
	dev := device.JetsonAGX()
	tasks, err := fl.Tasks(dev, ratio, rounds)
	if err != nil {
		return nil, err
	}
	out := make([]*EnergyComparison, 0, len(tasks))
	for i, task := range tasks {
		cmp, err := EnergyComparisonFor(dev, task, rounds, seed+int64(i)*101, opts)
		if err != nil {
			return nil, fmt.Errorf("experiment: %s: %w", task.Name, err)
		}
		out = append(out, cmp)
	}
	return out, nil
}

// Figure12Cell is one (task, ratio) point of the sensitivity study.
type Figure12Cell struct {
	Task        string  `json:"task"`
	Ratio       float64 `json:"ratio"`
	RatioLabel  string  `json:"ratioLabel"`
	Improvement float64 `json:"improvement"` // vs Performant
	Regret      float64 `json:"regret"`      // vs Oracle
}

// Figure12 sweeps the deadline ratio over the paper's grid
// {2.0, 2.5, 3.0, 3.5, 4.0} for all three AGX tasks.
func Figure12(ratios []float64, rounds int, seed int64, opts core.Options) ([]Figure12Cell, error) {
	if len(ratios) == 0 {
		ratios = []float64{2.0, 2.5, 3.0, 3.5, 4.0}
	}
	dev := device.JetsonAGX()
	var cells []Figure12Cell
	for ri, ratio := range ratios {
		tasks, err := fl.Tasks(dev, ratio, rounds)
		if err != nil {
			return nil, err
		}
		for ti, task := range tasks {
			cmp, err := EnergyComparisonFor(dev, task, rounds, seed+int64(ri*31+ti*7), opts)
			if err != nil {
				return nil, fmt.Errorf("experiment: %s @%.1fx: %w", task.Name, ratio, err)
			}
			cells = append(cells, Figure12Cell{
				Task:        task.Name,
				Ratio:       ratio,
				RatioLabel:  ratioLabel(ratio),
				Improvement: cmp.Improvement,
				Regret:      cmp.Regret,
			})
		}
	}
	return cells, nil
}
