package experiment

import (
	"fmt"
	"sync/atomic"

	"bofl/internal/obs"
)

// The experiment harness reports sweep progress through a process-wide event
// sink instead of ad-hoc writes: long grid sweeps (variance, Figure 12,
// thermal) emit one structured event per completed cell, so a -telemetry
// trace shows where a multi-minute run spends its time without the harness
// printing to stderr.

// sinkBox wraps the interface because atomic.Value demands one consistent
// concrete type across stores.
type sinkBox struct{ s obs.Sink }

var pkgSink atomic.Value // holds sinkBox

func init() { pkgSink.Store(sinkBox{obs.Nop}) }

// SetSink routes experiment progress events and run spans through s for the
// whole process. Nil restores the no-op sink.
func SetSink(s obs.Sink) { pkgSink.Store(sinkBox{obs.OrNop(s)}) }

// sink returns the current process-wide experiment sink.
func sink() obs.Sink { return pkgSink.Load().(sinkBox).s }

// Experiment-layer instrument names.
const (
	MetricRuns    = "bofl_experiment_runs_total" // counter{controller}: completed task runs
	SpanRun       = "bofl_experiment_run"        // span: one RunTask execution
	EventCellDone = "experiment_cell_done"       // instant: one sweep cell finished
)

// cellDone emits a sweep-progress event. Calls stay at cell granularity —
// label formatting is wasted work under the default Nop sink.
func cellDone(kind string, labels ...obs.Label) {
	sink().Event(EventCellDone, append([]obs.Label{obs.L("kind", kind)}, labels...)...)
}

func fmtF(v float64) string { return fmt.Sprintf("%.4g", v) }
