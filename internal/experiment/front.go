package experiment

import (
	"fmt"

	"bofl/internal/core"
	"bofl/internal/device"
	"bofl/internal/fl"
	"bofl/internal/pareto"
)

// Figure11Data compares a BoFL-constructed Pareto front against the true
// front from offline profiling for one task.
type Figure11Data struct {
	Device   string          `json:"device"`
	Task     string          `json:"task"`
	Workload device.Workload `json:"workload"`

	// Explored are the mean observations of every configuration BoFL
	// tried (the blue circles of Figure 11).
	Explored []pareto.Point `json:"explored"`
	// BoFLFront is the front BoFL constructed (blue squares).
	BoFLFront []pareto.Point `json:"boflFront"`
	// TrueFront is the offline-profiled optimum (red stars).
	TrueFront []pareto.Point `json:"trueFront"`

	ExploredCount int     `json:"exploredCount"`
	SpaceSize     int     `json:"spaceSize"`
	ExploredFrac  float64 `json:"exploredFrac"`
	// HVCoverage is the fraction of the true front's hypervolume that the
	// BoFL front dominates (1.0 = perfect reconstruction).
	HVCoverage float64 `json:"hvCoverage"`
}

// Figure11For builds the comparison for one task from a completed BoFL run.
func Figure11For(dev *device.Device, task fl.TaskSpec, run *TaskRun) (*Figure11Data, error) {
	if run == nil || run.BoFL == nil {
		return nil, fmt.Errorf("experiment: figure 11 needs a BoFL run")
	}
	profile, err := device.ProfileAll(dev, task.Workload)
	if err != nil {
		return nil, err
	}
	trueFront := profile.FrontPoints()

	ctrl := run.BoFL
	explored := ctrl.ObservedPoints()

	all := make([]pareto.Point, 0, len(profile.Points))
	for _, p := range profile.Points {
		all = append(all, pareto.Point{X: p.Energy, Y: p.Latency})
	}
	ref, err := pareto.ReferenceFrom(all)
	if err != nil {
		return nil, err
	}
	trueHV := pareto.Hypervolume(trueFront, ref)
	boflFront := ctrl.Front()
	coverage := 0.0
	if trueHV > 0 {
		coverage = pareto.Hypervolume(boflFront, ref) / trueHV
	}
	return &Figure11Data{
		Device:        dev.Name(),
		Task:          task.Name,
		Workload:      task.Workload,
		Explored:      explored,
		BoFLFront:     boflFront,
		TrueFront:     trueFront,
		ExploredCount: ctrl.NumExplored(),
		SpaceSize:     dev.Space().Size(),
		ExploredFrac:  float64(ctrl.NumExplored()) / float64(dev.Space().Size()),
		HVCoverage:    coverage,
	}, nil
}

// Figure11 runs BoFL on all three AGX tasks and compares fronts.
func Figure11(ratio float64, rounds int, seed int64, opts core.Options) ([]*Figure11Data, error) {
	dev := device.JetsonAGX()
	tasks, err := fl.Tasks(dev, ratio, rounds)
	if err != nil {
		return nil, err
	}
	out := make([]*Figure11Data, 0, len(tasks))
	for i, task := range tasks {
		run, err := RunTask(RunConfig{
			Device:      dev,
			Task:        task,
			Rounds:      rounds,
			Controller:  KindBoFL,
			Seed:        seed + int64(i)*101,
			CtrlOptions: opts,
		})
		if err != nil {
			return nil, err
		}
		data, err := Figure11For(dev, task, run)
		if err != nil {
			return nil, err
		}
		out = append(out, data)
	}
	return out, nil
}

// Table3Row is one exploration round of the Table 3 walkthrough.
type Table3Row struct {
	Round       int  `json:"round"`
	Phase1      bool `json:"phase1"` // red numbers in the paper's table
	Explored    int  `json:"explored"`
	ParetoCount int  `json:"paretoCount"` // explored configs on the final front
}

// Table3Data is the full walkthrough for one task.
type Table3Data struct {
	Task        string      `json:"task"`
	Rows        []Table3Row `json:"rows"`
	TotalExp    int         `json:"totalExplored"`
	TotalPareto int         `json:"totalPareto"`
}

// Table3For derives the walkthrough from a completed BoFL run: per round, how
// many configurations were explored and how many of them belong to the
// ultimate Pareto front.
func Table3For(run *TaskRun) (*Table3Data, error) {
	if run == nil || run.BoFL == nil {
		return nil, fmt.Errorf("experiment: table 3 needs a BoFL run")
	}
	finalFront := make(map[int]bool)
	for _, idx := range run.BoFL.FrontIndices() {
		finalFront[idx] = true
	}
	out := &Table3Data{Task: run.Task.Name}
	for _, rep := range run.Reports {
		if len(rep.Explored) == 0 && rep.Phase == core.PhaseExploit {
			break // exploration is over
		}
		row := Table3Row{
			Round:    rep.Round,
			Phase1:   rep.Phase == core.PhaseRandomExplore,
			Explored: len(rep.Explored),
		}
		for _, idx := range rep.Explored {
			if finalFront[idx] {
				row.ParetoCount++
			}
		}
		out.Rows = append(out.Rows, row)
		out.TotalExp += row.Explored
		out.TotalPareto += row.ParetoCount
	}
	return out, nil
}

// Table3 runs BoFL on the three AGX tasks at ratio 2.0 and derives the
// walkthrough table.
func Table3(rounds int, seed int64, opts core.Options) ([]*Table3Data, error) {
	dev := device.JetsonAGX()
	tasks, err := fl.Tasks(dev, 2.0, rounds)
	if err != nil {
		return nil, err
	}
	out := make([]*Table3Data, 0, len(tasks))
	for i, task := range tasks {
		run, err := RunTask(RunConfig{
			Device:      dev,
			Task:        task,
			Rounds:      rounds,
			Controller:  KindBoFL,
			Seed:        seed + int64(i)*101,
			CtrlOptions: opts,
		})
		if err != nil {
			return nil, err
		}
		data, err := Table3For(run)
		if err != nil {
			return nil, err
		}
		out = append(out, data)
	}
	return out, nil
}
