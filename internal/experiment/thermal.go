package experiment

import (
	"fmt"

	"bofl/internal/core"
	"bofl/internal/device"
	"bofl/internal/fl"
	"bofl/internal/obs"
)

// Extension experiment (beyond the paper): BoFL on a thermally throttling
// board. The paper's testbeds are stationary; a passively-cooled deployment
// heats into throttling mid-task, shifting T(x) and E(x) under the
// controller. This experiment compares the paper's static BoFL against the
// adaptive variant (core.Options.DriftThreshold) and the Performant baseline
// on the same throttling trace.

// ThermalRow is one controller's outcome on the throttling board.
type ThermalRow struct {
	Controller     string  `json:"controller"`
	TotalEnergy    float64 `json:"totalEnergyJoules"`
	DeadlineMisses int     `json:"deadlineMisses"`
	Readapts       int     `json:"readapts"`
	FinalTempC     float64 `json:"finalTempC"`
}

// ThermalStudy runs the comparison: static BoFL, adaptive BoFL and
// Performant, all against identical deadline sequences on fresh thermal
// boards.
func ThermalStudy(dev *device.Device, task fl.TaskSpec, rounds int, seed int64, opts core.Options) ([]ThermalRow, error) {
	tmin, err := fl.TMin(dev, task)
	if err != nil {
		return nil, err
	}
	// A harsher enclosure than device.DefaultThermal: sealed, passively
	// cooled, so even BoFL's efficient ≈10 W draw settles deep in the
	// throttle band. (With the default model only the Performant baseline
	// throttles — BoFL's pacing keeps the board cool, a finding the study
	// reports via the FinalTempC column.)
	thermal := device.ThermalModel{
		AmbientC:        25,
		ThrottleC:       45,
		CriticalC:       70,
		ResistanceCPerW: 4.5,
		TimeConstantS:   150,
		MaxSlowdown:     1.5,
	}
	// Throttled rounds run up to MaxSlowdown× longer; keep the deadline
	// floor above the hot T_min so the study isolates energy behaviour
	// rather than unavoidable transition misses.
	loRatio := thermal.MaxSlowdown * 1.1
	hiRatio := task.DeadlineRatio
	if hiRatio < loRatio+0.5 {
		hiRatio = loRatio + 0.5
	}
	deadlines, err := fl.SampleDeadlines(tmin*loRatio, hiRatio/loRatio, rounds, seed)
	if err != nil {
		return nil, err
	}

	type contestant struct {
		name  string
		build func() (core.PaceController, *core.Controller, error)
	}
	contestants := []contestant{
		{"bofl-static", func() (core.PaceController, *core.Controller, error) {
			o := opts
			o.Seed = seed
			c, err := core.New(dev.Space(), o)
			return c, c, err
		}},
		{"bofl-adaptive", func() (core.PaceController, *core.Controller, error) {
			o := opts
			o.Seed = seed
			o.DriftThreshold = 0.15
			c, err := core.New(dev.Space(), o)
			return c, c, err
		}},
		{"performant", func() (core.PaceController, *core.Controller, error) {
			c, err := core.NewPerformant(dev.Space())
			return c, nil, err
		}},
	}

	rows := make([]ThermalRow, 0, len(contestants))
	for _, ct := range contestants {
		ctrl, boflCtrl, err := ct.build()
		if err != nil {
			return nil, err
		}
		if boflCtrl != nil {
			boflCtrl.SetSink(sink())
		}
		board, err := device.NewThermalDevice(dev, thermal)
		if err != nil {
			return nil, err
		}
		exec := core.ExecutorFunc(func(c device.Config) (core.JobResult, error) {
			lat, energy, err := board.RunJob(task.Workload, c)
			if err != nil {
				return core.JobResult{}, err
			}
			return core.JobResult{Latency: lat, Energy: energy}, nil
		})
		row := ThermalRow{Controller: ct.name}
		for r := 0; r < rounds; r++ {
			rep, err := ctrl.RunRound(task.Jobs(), deadlines[r], exec)
			if err != nil {
				return nil, fmt.Errorf("experiment: thermal %s round %d: %w", ct.name, r+1, err)
			}
			row.TotalEnergy += rep.Energy
			if !rep.DeadlineMet {
				row.DeadlineMisses++
			}
			if _, err := ctrl.BetweenRounds(); err != nil {
				return nil, err
			}
			// The board only idles for the short upload/configuration
			// window between rounds — in a busy deployment it is
			// selected back-to-back, which is what pushes a passively
			// cooled enclosure into throttling.
			board.Cool(8)
		}
		if boflCtrl != nil {
			row.Readapts = boflCtrl.Readapts()
		}
		row.FinalTempC = board.Temperature()
		cellDone("thermal",
			obs.L("controller", ct.name),
			obs.L("readapts", fmt.Sprint(row.Readapts)),
			obs.L("finalTempC", fmtF(row.FinalTempC)))
		rows = append(rows, row)
	}
	return rows, nil
}
