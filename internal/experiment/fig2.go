package experiment

import (
	"math"

	"bofl/internal/device"
	"bofl/internal/pareto"
)

// Figure2Data summarizes the paper's motivating scatter (Figure 2): the cloud
// of all DVFS configurations in the (training speed, energy efficiency)
// plane, its Pareto front, and the headline leverage factors — "a proper
// DVFS configuration may lead to 8× faster training speed and 4× less energy
// consumption".
type Figure2Data struct {
	Device   string          `json:"device"`
	Workload device.Workload `json:"workload"`

	// Points is the full configuration cloud as (energy, latency) pairs.
	Points []pareto.Point `json:"points"`
	// Front is the cloud's Pareto front.
	Front []pareto.Point `json:"front"`

	// SpeedLeverage is max latency / min latency across the space (the
	// paper's "8× faster").
	SpeedLeverage float64 `json:"speedLeverage"`
	// EnergyLeverage is max energy / min energy across the space (the
	// paper's "4× less energy").
	EnergyLeverage float64 `json:"energyLeverage"`
}

// Figure2 profiles the (device, workload) pair and derives the scatter.
func Figure2(dev *device.Device, w device.Workload) (*Figure2Data, error) {
	profile, err := device.ProfileAll(dev, w)
	if err != nil {
		return nil, err
	}
	out := &Figure2Data{
		Device:   dev.Name(),
		Workload: w,
		Points:   make([]pareto.Point, 0, len(profile.Points)),
	}
	minLat, maxLat := math.Inf(1), 0.0
	minE, maxE := math.Inf(1), 0.0
	for _, p := range profile.Points {
		out.Points = append(out.Points, pareto.Point{X: p.Energy, Y: p.Latency})
		minLat = math.Min(minLat, p.Latency)
		maxLat = math.Max(maxLat, p.Latency)
		minE = math.Min(minE, p.Energy)
		maxE = math.Max(maxE, p.Energy)
	}
	out.Front = pareto.Front(out.Points)
	out.SpeedLeverage = maxLat / minLat
	out.EnergyLeverage = maxE / minE
	return out, nil
}
