// Package experiment regenerates every table and figure of the paper's
// evaluation (§6) on the simulated testbeds: the motivation sweeps of §2.2
// (Figures 3–5), the energy comparisons of Figures 9–10, the Pareto fronts of
// Figure 11, the walkthrough of Table 3, the deadline-sensitivity study of
// Figure 12 and the MBO-overhead analysis of Figure 13, plus Tables 1–2.
//
// Each experiment has one entry point returning plain data structs; cmd/
// binaries and bench_test.go render them. DESIGN.md §3 maps experiment ids to
// these functions.
package experiment

import (
	"fmt"
	"os"
	"time"

	"bofl/internal/core"
	"bofl/internal/device"
	"bofl/internal/fl"
	"bofl/internal/obs"
)

// ControllerKind names a pace-control policy under test.
type ControllerKind string

// The policies compared in the evaluation.
const (
	KindBoFL       ControllerKind = "bofl"
	KindPerformant ControllerKind = "performant"
	KindOracle     ControllerKind = "oracle"
	KindRandom     ControllerKind = "random"      // ablation: random instead of Bayesian exploration
	KindLinearPace ControllerKind = "linearpace"  // ablation: SmartPC-style 1-D linear model
	KindBoFLParEGO ControllerKind = "bofl-parego" // ablation: scalarization instead of EHVI
)

// RunConfig describes one task execution.
type RunConfig struct {
	Device     *device.Device
	Task       fl.TaskSpec
	Rounds     int
	Controller ControllerKind
	// Seed drives deadline sampling, measurement noise and the
	// controller's randomness. Runs with equal seeds see identical
	// deadline sequences, enabling paired comparisons.
	Seed int64
	// CtrlOptions tunes the BoFL controller (BoFL and Random kinds).
	CtrlOptions core.Options
	// Noise overrides the measurement-noise model (zero value = default).
	Noise device.NoiseModel
	// LoadSnapshot / SaveSnapshot persist the BoFL controller's state
	// across runs (KindBoFL / KindBoFLParEGO only).
	LoadSnapshot string
	SaveSnapshot string
	// Sink receives this run's telemetry (controller metrics, spans). Nil
	// falls back to the package-wide sink installed with SetSink.
	Sink obs.Sink
}

// TaskRun is the result of executing one task under one controller.
type TaskRun struct {
	Device     string
	Task       fl.TaskSpec
	Controller ControllerKind
	Deadlines  []float64
	Reports    []core.RoundReport
	MBO        []core.MBOReport

	TotalEnergy    float64
	DeadlineMisses int

	// BoFL is non-nil for KindBoFL runs and exposes the controller for
	// front / exploration introspection (Figure 11, Table 3).
	BoFL *core.Controller
}

// buildController constructs the policy under test.
func buildController(cfg RunConfig) (core.PaceController, *core.Controller, error) {
	space := cfg.Device.Space()
	switch cfg.Controller {
	case KindBoFL:
		opts := cfg.CtrlOptions
		opts.Seed = cfg.Seed
		c, err := core.New(space, opts)
		return c, c, err
	case KindBoFLParEGO:
		opts := cfg.CtrlOptions
		opts.Seed = cfg.Seed
		opts.Acquisition = core.AcqParEGO
		c, err := core.New(space, opts)
		return c, c, err
	case KindPerformant:
		c, err := core.NewPerformant(space)
		return c, nil, err
	case KindOracle:
		profile, err := device.ProfileAll(cfg.Device, cfg.Task.Workload)
		if err != nil {
			return nil, nil, err
		}
		c, err := core.NewOracle(profile, space, 1.05)
		return c, nil, err
	case KindRandom:
		opts := cfg.CtrlOptions
		opts.Seed = cfg.Seed
		c, err := core.NewRandomExplorer(space, opts, cfg.Seed)
		return c, nil, err
	case KindLinearPace:
		c, err := core.NewLinearPace(space, 1.05)
		return c, nil, err
	default:
		return nil, nil, fmt.Errorf("experiment: unknown controller %q", cfg.Controller)
	}
}

// meterExecutor adapts a device meter to core.Executor (measurement-only:
// the figures measure hardware cost, not model convergence).
func meterExecutor(meter *device.Meter, w device.Workload, dev *device.Device) core.Executor {
	return core.ExecutorFunc(func(c device.Config) (core.JobResult, error) {
		trueLat, err := dev.Latency(w, c)
		if err != nil {
			return core.JobResult{}, err
		}
		m, err := meter.Measure(w, c, trueLat)
		if err != nil {
			return core.JobResult{}, err
		}
		return core.JobResult{Latency: m.Latency, Energy: m.Energy}, nil
	})
}

// RunTask executes one task end to end and collects per-round reports.
func RunTask(cfg RunConfig) (*TaskRun, error) {
	if cfg.Device == nil {
		return nil, fmt.Errorf("experiment: nil device")
	}
	if err := cfg.Task.Validate(); err != nil {
		return nil, err
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = cfg.Task.Rounds
	}
	tmin, err := fl.TMin(cfg.Device, cfg.Task)
	if err != nil {
		return nil, err
	}
	deadlines, err := fl.SampleDeadlines(tmin, cfg.Task.DeadlineRatio, cfg.Rounds, cfg.Seed)
	if err != nil {
		return nil, err
	}
	ctrl, boflCtrl, err := buildController(cfg)
	if err != nil {
		return nil, err
	}
	snk := cfg.Sink
	if snk == nil {
		snk = sink()
	}
	if boflCtrl != nil {
		boflCtrl.SetSink(snk)
	}
	defer snk.Span(SpanRun, obs.L("controller", string(cfg.Controller)), obs.L("task", cfg.Task.Name))()
	if cfg.LoadSnapshot != "" {
		if boflCtrl == nil {
			return nil, fmt.Errorf("experiment: snapshots need a BoFL controller, got %s", cfg.Controller)
		}
		f, err := os.Open(cfg.LoadSnapshot)
		if err != nil {
			return nil, fmt.Errorf("experiment: %w", err)
		}
		err = boflCtrl.ReadSnapshot(f)
		f.Close()
		if err != nil {
			return nil, err
		}
	}
	noise := cfg.Noise
	if noise == (device.NoiseModel{}) {
		noise = device.DefaultNoise()
	}
	meter := device.NewMeter(cfg.Device, noise, cfg.Seed+1)
	exec := meterExecutor(meter, cfg.Task.Workload, cfg.Device)

	run := &TaskRun{
		Device:     cfg.Device.Name(),
		Task:       cfg.Task,
		Controller: cfg.Controller,
		Deadlines:  deadlines,
		BoFL:       boflCtrl,
	}
	jobs := cfg.Task.Jobs()
	for r := 0; r < cfg.Rounds; r++ {
		rep, err := ctrl.RunRound(jobs, deadlines[r], exec)
		if err != nil {
			return nil, fmt.Errorf("experiment: %s round %d: %w", cfg.Controller, r+1, err)
		}
		run.Reports = append(run.Reports, rep)
		run.TotalEnergy += rep.Energy
		if !rep.DeadlineMet {
			run.DeadlineMisses++
		}
		mbo, err := ctrl.BetweenRounds()
		if err != nil {
			return nil, fmt.Errorf("experiment: %s between rounds %d: %w", cfg.Controller, r+1, err)
		}
		if mbo.Ran {
			run.MBO = append(run.MBO, mbo)
		}
	}
	if cfg.SaveSnapshot != "" {
		if boflCtrl == nil {
			return nil, fmt.Errorf("experiment: snapshots need a BoFL controller, got %s", cfg.Controller)
		}
		f, err := os.Create(cfg.SaveSnapshot)
		if err != nil {
			return nil, fmt.Errorf("experiment: %w", err)
		}
		err = boflCtrl.WriteSnapshot(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, err
		}
	}
	snk.Count(MetricRuns, 1, obs.L("controller", string(cfg.Controller)))
	return run, nil
}

// PhaseBoundaries returns the 1-based last round of phase 1 and phase 2 (0 if
// the phase never appears).
func (r *TaskRun) PhaseBoundaries() (endPhase1, endPhase2 int) {
	for _, rep := range r.Reports {
		switch rep.Phase {
		case core.PhaseRandomExplore:
			endPhase1 = rep.Round
		case core.PhaseParetoConstruct:
			endPhase2 = rep.Round
		}
	}
	if endPhase2 < endPhase1 {
		endPhase2 = endPhase1
	}
	return endPhase1, endPhase2
}

// MBOWallTime sums the between-round MBO computation time.
func (r *TaskRun) MBOWallTime() time.Duration {
	var total time.Duration
	for _, m := range r.MBO {
		total += m.WallTime
	}
	return total
}
