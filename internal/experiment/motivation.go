package experiment

import (
	"fmt"

	"bofl/internal/device"
	"bofl/internal/fl"
)

// The §2.2 motivation sweeps (Figures 3–5): they characterize the simulated
// devices the same way the paper characterizes the physical boards.

// SweepPoint is one (frequency → performance) sample.
type SweepPoint struct {
	Freq    device.Freq `json:"freqGHz"`
	Latency float64     `json:"latencySeconds"`
	Energy  float64     `json:"energyJoules"`
}

// Figure3Data is ViT's performance vs GPU frequency at two CPU clocks
// (Figure 3: non-linearity and the energy crossover).
type Figure3Data struct {
	Device  string       `json:"device"`
	CPULow  device.Freq  `json:"cpuLowGHz"`
	CPUHigh device.Freq  `json:"cpuHighGHz"`
	AtLow   []SweepPoint `json:"atLowCPU"`
	AtHigh  []SweepPoint `json:"atHighCPU"`
}

// Figure3 sweeps the AGX GPU clock for the ViT workload at the lowest and
// highest CPU clocks, with the memory controller pinned at maximum.
func Figure3() (*Figure3Data, error) {
	dev := device.JetsonAGX()
	s := dev.Space()
	out := &Figure3Data{
		Device:  dev.Name(),
		CPULow:  s.CPU[0],
		CPUHigh: s.CPU[len(s.CPU)-1],
	}
	memMax := s.Mem[len(s.Mem)-1]
	for _, gpu := range s.GPU {
		for _, pair := range []struct {
			cpu device.Freq
			dst *[]SweepPoint
		}{{out.CPULow, &out.AtLow}, {out.CPUHigh, &out.AtHigh}} {
			cfg := device.Config{CPU: pair.cpu, GPU: gpu, Mem: memMax}
			lat, energy, err := dev.Perf(device.ViT, cfg)
			if err != nil {
				return nil, err
			}
			*pair.dst = append(*pair.dst, SweepPoint{Freq: gpu, Latency: lat, Energy: energy})
		}
	}
	return out, nil
}

// Figure4Data is each workload's performance vs CPU frequency (Figure 4:
// NN-model dependence).
type Figure4Data struct {
	Device string                           `json:"device"`
	Series map[device.Workload][]SweepPoint `json:"series"`
	Order  []device.Workload                `json:"order"`
}

// Figure4 sweeps the AGX CPU clock for all three workloads with GPU and
// memory at maximum.
func Figure4() (*Figure4Data, error) {
	dev := device.JetsonAGX()
	s := dev.Space()
	out := &Figure4Data{
		Device: dev.Name(),
		Series: make(map[device.Workload][]SweepPoint, 3),
		Order:  device.Workloads(),
	}
	gpuMax, memMax := s.GPU[len(s.GPU)-1], s.Mem[len(s.Mem)-1]
	for _, w := range out.Order {
		for _, cpu := range s.CPU {
			cfg := device.Config{CPU: cpu, GPU: gpuMax, Mem: memMax}
			lat, energy, err := dev.Perf(w, cfg)
			if err != nil {
				return nil, err
			}
			out.Series[w] = append(out.Series[w], SweepPoint{Freq: cpu, Latency: lat, Energy: energy})
		}
	}
	return out, nil
}

// Figure5Row is one workload's AGX performance normalized to TX2 at x_max
// (Figure 5: hardware dependence).
type Figure5Row struct {
	Workload     device.Workload `json:"workload"`
	LatencyRatio float64         `json:"latencyRatio"` // AGX / TX2
	EnergyRatio  float64         `json:"energyRatio"`  // AGX / TX2
}

// Figure5 compares both devices at maximum operational frequencies.
func Figure5() ([]Figure5Row, error) {
	agx, tx2 := device.JetsonAGX(), device.JetsonTX2()
	rows := make([]Figure5Row, 0, 3)
	for _, w := range device.Workloads() {
		la, ea, err := agx.Perf(w, agx.Space().Max())
		if err != nil {
			return nil, err
		}
		lt, et, err := tx2.Perf(w, tx2.Space().Max())
		if err != nil {
			return nil, err
		}
		rows = append(rows, Figure5Row{
			Workload:     w,
			LatencyRatio: la / lt,
			EnergyRatio:  ea / et,
		})
	}
	return rows, nil
}

// Table1Row describes one device's DVFS space (Table 1).
type Table1Row struct {
	Device   string  `json:"device"`
	CPUSteps int     `json:"cpuSteps"`
	CPUMin   float64 `json:"cpuMinGHz"`
	CPUMax   float64 `json:"cpuMaxGHz"`
	GPUSteps int     `json:"gpuSteps"`
	GPUMin   float64 `json:"gpuMinGHz"`
	GPUMax   float64 `json:"gpuMaxGHz"`
	MemSteps int     `json:"memSteps"`
	MemMin   float64 `json:"memMinGHz"`
	MemMax   float64 `json:"memMaxGHz"`
	Configs  int     `json:"configs"`
}

// Table1 reports both testbeds' DVFS spaces.
func Table1() []Table1Row {
	rows := make([]Table1Row, 0, 2)
	for _, dev := range []*device.Device{device.JetsonAGX(), device.JetsonTX2()} {
		s := dev.Space()
		rows = append(rows, Table1Row{
			Device:   dev.Name(),
			CPUSteps: len(s.CPU), CPUMin: float64(s.CPU[0]), CPUMax: float64(s.CPU[len(s.CPU)-1]),
			GPUSteps: len(s.GPU), GPUMin: float64(s.GPU[0]), GPUMax: float64(s.GPU[len(s.GPU)-1]),
			MemSteps: len(s.Mem), MemMin: float64(s.Mem[0]), MemMax: float64(s.Mem[len(s.Mem)-1]),
			Configs: s.Size(),
		})
	}
	return rows
}

// Table2Row describes one FL task's specification on one device (Table 2).
type Table2Row struct {
	Task        string  `json:"task"`
	Device      string  `json:"device"`
	BatchSize   int     `json:"batchSize"`
	Epochs      int     `json:"epochs"`
	Minibatches int     `json:"minibatches"`
	Jobs        int     `json:"jobs"`
	TMin        float64 `json:"tminSeconds"`
}

// Table2 reports the task specifications and measured T_min on both devices.
func Table2() ([]Table2Row, error) {
	var rows []Table2Row
	for _, dev := range []*device.Device{device.JetsonAGX(), device.JetsonTX2()} {
		tasks, err := fl.Tasks(dev, 2.0, 100)
		if err != nil {
			return nil, err
		}
		for _, t := range tasks {
			tmin, err := fl.TMin(dev, t)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Table2Row{
				Task:        t.Name,
				Device:      dev.Name(),
				BatchSize:   t.BatchSize,
				Epochs:      t.Epochs,
				Minibatches: t.Minibatches,
				Jobs:        t.Jobs(),
				TMin:        tmin,
			})
		}
	}
	return rows, nil
}

func ratioLabel(r float64) string { return fmt.Sprintf("%.1fx", r) }
