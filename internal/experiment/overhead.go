package experiment

import (
	"fmt"
	"time"

	"bofl/internal/core"
	"bofl/internal/device"
	"bofl/internal/fl"
)

// MBO power draw while computing suggestions, per device. The MBO runs on the
// board's CPU between rounds; the paper measures ≈50–70 J over 6–9 s, i.e.
// ≈7–8 W on AGX and slightly less on TX2. We charge the observed wall time of
// our Go MBO computation at these rates.
var mboPowerWatts = map[string]float64{
	"jetson-agx": 7.5,
	"jetson-tx2": 6.5,
}

// Figure13Row is one (device, task) cell of the MBO-overhead analysis.
type Figure13Row struct {
	Device string `json:"device"`
	Task   string `json:"task"`

	// Per-MBO-round cost (Figure 13a).
	MBORounds      int           `json:"mboRounds"`
	MeanMBOLatency time.Duration `json:"meanMboLatency"`
	MaxMBOLatency  time.Duration `json:"maxMboLatency"`
	MeanMBOEnergy  float64       `json:"meanMboEnergyJoules"`

	// Whole-task overhead (Figure 13b).
	TotalMBOEnergy      float64 `json:"totalMboEnergyJoules"`
	TotalTrainingEnergy float64 `json:"totalTrainingEnergyJoules"`
	OverheadFrac        float64 `json:"overheadFrac"`
}

// Figure13 measures the MBO module's latency and energy overhead on both
// devices across the three tasks. MBO energy is wall time × the device's MBO
// power draw; training energy is the task's total measured energy.
func Figure13(ratio float64, rounds int, seed int64, opts core.Options) ([]Figure13Row, error) {
	var out []Figure13Row
	for _, dev := range []*device.Device{device.JetsonAGX(), device.JetsonTX2()} {
		power, ok := mboPowerWatts[dev.Name()]
		if !ok {
			return nil, fmt.Errorf("experiment: no MBO power model for %s", dev.Name())
		}
		tasks, err := fl.Tasks(dev, ratio, rounds)
		if err != nil {
			return nil, err
		}
		for i, task := range tasks {
			run, err := RunTask(RunConfig{
				Device:      dev,
				Task:        task,
				Rounds:      rounds,
				Controller:  KindBoFL,
				Seed:        seed + int64(i)*101,
				CtrlOptions: opts,
			})
			if err != nil {
				return nil, err
			}
			row := Figure13Row{
				Device:              dev.Name(),
				Task:                task.Name,
				MBORounds:           len(run.MBO),
				TotalTrainingEnergy: run.TotalEnergy,
			}
			var total time.Duration
			for _, m := range run.MBO {
				total += m.WallTime
				if m.WallTime > row.MaxMBOLatency {
					row.MaxMBOLatency = m.WallTime
				}
			}
			if len(run.MBO) > 0 {
				row.MeanMBOLatency = total / time.Duration(len(run.MBO))
			}
			row.TotalMBOEnergy = total.Seconds() * power
			if len(run.MBO) > 0 {
				row.MeanMBOEnergy = row.TotalMBOEnergy / float64(len(run.MBO))
			}
			if run.TotalEnergy > 0 {
				row.OverheadFrac = row.TotalMBOEnergy / run.TotalEnergy
			}
			out = append(out, row)
		}
	}
	return out, nil
}
