package experiment

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"bofl/internal/core"
	"bofl/internal/device"
	"bofl/internal/fl"
)

// fastOpts keeps controller tests quick: short τ and a cheap MBO budget.
func fastOpts() core.Options {
	return core.Options{Tau: 3, MBORestarts: 1, MBOIters: 3}
}

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1()
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Configs != 2100 || rows[1].Configs != 936 {
		t.Errorf("config counts = %d, %d; want 2100, 936", rows[0].Configs, rows[1].Configs)
	}
	var buf bytes.Buffer
	if err := WriteTable1(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2100") {
		t.Error("render missing config count")
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	// Spot-check the AGX T_min anchors.
	want := map[string]float64{"CIFAR10-ViT": 37.2, "ImageNet-ResNet50": 46.9, "IMDB-LSTM": 46.1}
	for _, r := range rows[:3] {
		if math.Abs(r.TMin-want[r.Task]) > 0.05 {
			t.Errorf("%s T_min = %v, want %v", r.Task, r.TMin, want[r.Task])
		}
	}
	var buf bytes.Buffer
	if err := WriteTable2(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

func TestFigure2Leverage(t *testing.T) {
	d, err := Figure2(device.JetsonAGX(), device.ViT)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Points) != 2100 {
		t.Fatalf("cloud has %d points", len(d.Points))
	}
	if len(d.Front) < 10 {
		t.Errorf("front has only %d points", len(d.Front))
	}
	// The paper's headline: ≈8× speed and ≈4× energy leverage.
	if d.SpeedLeverage < 4 || d.SpeedLeverage > 30 {
		t.Errorf("speed leverage %v implausible", d.SpeedLeverage)
	}
	if d.EnergyLeverage < 2 || d.EnergyLeverage > 15 {
		t.Errorf("energy leverage %v implausible", d.EnergyLeverage)
	}
	var buf bytes.Buffer
	if err := WriteFigure2(&buf, d); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "leverage") {
		t.Error("render missing leverage lines")
	}
}

func TestFigure3ShowsCrossover(t *testing.T) {
	d, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.AtLow) != 14 || len(d.AtHigh) != 14 {
		t.Fatalf("sweep lengths %d/%d, want 14", len(d.AtLow), len(d.AtHigh))
	}
	// Diminishing returns with a slow CPU: the last GPU step should gain
	// far less at CPU-low than at CPU-high.
	gainLow := d.AtLow[6].Latency / d.AtLow[13].Latency
	gainHigh := d.AtHigh[6].Latency / d.AtHigh[13].Latency
	if gainHigh <= gainLow {
		t.Errorf("GPU speedup at high CPU (%.2f) should exceed low CPU (%.2f)", gainHigh, gainLow)
	}
	// Energy crossover: at a mid-low GPU clock the slow CPU is more
	// efficient; at the max clock it is not meaningfully better.
	if d.AtLow[6].Energy >= d.AtHigh[6].Energy {
		t.Error("no energy advantage for slow CPU at low GPU clock")
	}
	if d.AtLow[13].Energy < d.AtHigh[13].Energy*0.9 {
		t.Error("slow CPU should not save much energy at max GPU clock")
	}
	var buf bytes.Buffer
	if err := WriteFigure3(&buf, d); err != nil {
		t.Fatal(err)
	}
}

func TestFigure4ModelDependence(t *testing.T) {
	d, err := Figure4()
	if err != nil {
		t.Fatal(err)
	}
	lstm := d.Series[device.LSTM]
	vit := d.Series[device.ViT]
	resnet := d.Series[device.ResNet50]
	// LSTM speeds up steeply with CPU clock; ViT/ResNet50 barely.
	if r := lstm[2].Latency / lstm[len(lstm)-3].Latency; r < 1.6 {
		t.Errorf("LSTM CPU sensitivity %v too low", r)
	}
	if r := vit[2].Latency / vit[len(vit)-3].Latency; r > 1.5 {
		t.Errorf("ViT CPU sensitivity %v too high", r)
	}
	// ResNet50 energy rises with CPU clock; LSTM energy falls.
	if resnet[len(resnet)-1].Energy <= resnet[0].Energy {
		t.Error("ResNet50 energy should rise with CPU clock")
	}
	if lstm[len(lstm)-1].Energy >= lstm[0].Energy {
		t.Error("LSTM energy should fall with CPU clock")
	}
	var buf bytes.Buffer
	if err := WriteFigure4(&buf, d); err != nil {
		t.Fatal(err)
	}
}

func TestFigure5HardwareDependence(t *testing.T) {
	rows, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.LatencyRatio >= 1 || r.EnergyRatio >= 1 {
			t.Errorf("%s: AGX should beat TX2: %+v", r.Workload, r)
		}
	}
	// Non-uniform improvement: ResNet50 gains most in latency (Table 2
	// derived; see EXPERIMENTS.md for the paper's internal inconsistency
	// on LSTM).
	if !(rows[1].LatencyRatio < rows[0].LatencyRatio) {
		t.Errorf("ResNet50 ratio %v should beat ViT %v", rows[1].LatencyRatio, rows[0].LatencyRatio)
	}
	var buf bytes.Buffer
	if err := WriteFigure5(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

func TestRunTaskValidation(t *testing.T) {
	if _, err := RunTask(RunConfig{}); err == nil {
		t.Error("nil device accepted")
	}
	dev := device.JetsonAGX()
	tasks, err := fl.Tasks(dev, 2.0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunTask(RunConfig{Device: dev, Task: tasks[0], Rounds: 5, Controller: "nope"}); err == nil {
		t.Error("unknown controller accepted")
	}
}

// shortTask shrinks a task so full pipelines run quickly in tests.
func shortTask(t *testing.T, ratio float64) (dev *device.Device, task fl.TaskSpec) {
	t.Helper()
	dev = device.JetsonAGX()
	tasks, err := fl.Tasks(dev, ratio, 24)
	if err != nil {
		t.Fatal(err)
	}
	task = tasks[0]
	task.Minibatches = 20 // W = 100 instead of 200
	return dev, task
}

func TestEnergyComparisonPipeline(t *testing.T) {
	dev, task := shortTask(t, 2.5)
	cmp, err := EnergyComparisonFor(dev, task, 24, 3, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Rows) != 24 {
		t.Fatalf("got %d rows", len(cmp.Rows))
	}
	if cmp.Improvement <= 0 {
		t.Errorf("improvement %.3f should be positive", cmp.Improvement)
	}
	if cmp.Regret < 0 || cmp.Regret > 0.35 {
		t.Errorf("regret %.3f implausible", cmp.Regret)
	}
	if cmp.EndPhase1 == 0 || cmp.EndPhase2 < cmp.EndPhase1 {
		t.Errorf("phase boundaries %d/%d", cmp.EndPhase1, cmp.EndPhase2)
	}
	// In the exploitation tail BoFL must track the oracle closely.
	var tailB, tailO float64
	for _, r := range cmp.Rows[cmp.EndPhase2:] {
		tailB += r.BoFL
		tailO += r.Oracle
	}
	if tailO > 0 && tailB/tailO > 1.12 {
		t.Errorf("steady-state BoFL/Oracle = %.3f", tailB/tailO)
	}
	var buf bytes.Buffer
	if err := WriteEnergyComparison(&buf, cmp, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "improvement") {
		t.Error("render missing summary")
	}
}

func TestFigure11AndTable3Pipeline(t *testing.T) {
	dev, task := shortTask(t, 2.0)
	run, err := RunTask(RunConfig{
		Device:      dev,
		Task:        task,
		Rounds:      24,
		Controller:  KindBoFL,
		Seed:        5,
		CtrlOptions: fastOpts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	f11, err := Figure11For(dev, task, run)
	if err != nil {
		t.Fatal(err)
	}
	if f11.HVCoverage < 0.85 {
		t.Errorf("HV coverage %.2f, want ≥0.85", f11.HVCoverage)
	}
	if f11.ExploredFrac > 0.15 {
		t.Errorf("explored %.1f%% of the space — too much", f11.ExploredFrac*100)
	}
	if len(f11.BoFLFront) < 3 || len(f11.TrueFront) < 3 {
		t.Errorf("fronts too small: %d vs %d", len(f11.BoFLFront), len(f11.TrueFront))
	}

	t3, err := Table3For(run)
	if err != nil {
		t.Fatal(err)
	}
	if t3.TotalExp != f11.ExploredCount {
		t.Errorf("table 3 total %d != explored %d", t3.TotalExp, f11.ExploredCount)
	}
	if t3.TotalPareto == 0 {
		t.Error("no Pareto points found during exploration")
	}
	var phase1 bool
	for _, r := range t3.Rows {
		if r.Phase1 {
			phase1 = true
		}
		if r.ParetoCount > r.Explored {
			t.Errorf("round %d: pareto %d > explored %d", r.Round, r.ParetoCount, r.Explored)
		}
	}
	if !phase1 {
		t.Error("no phase-1 rows")
	}

	var buf bytes.Buffer
	if err := WriteFigure11(&buf, []*Figure11Data{f11}); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteFigure11CSV(&buf, f11); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "series,energy_j,latency_s") {
		t.Error("CSV header missing")
	}
	buf.Reset()
	if err := WriteTable3(&buf, []*Table3Data{t3}); err != nil {
		t.Fatal(err)
	}
}

func TestFigure12Pipeline(t *testing.T) {
	// Single reduced task, two ratios — the full grid runs in boflbench.
	dev, task := shortTask(t, 2.0)
	_ = dev
	cells := make([]Figure12Cell, 0, 2)
	for _, ratio := range []float64{2.0, 4.0} {
		tk := task
		tk.DeadlineRatio = ratio
		cmp, err := EnergyComparisonFor(device.JetsonAGX(), tk, 20, 9, fastOpts())
		if err != nil {
			t.Fatal(err)
		}
		cells = append(cells, Figure12Cell{
			Task: tk.Name, Ratio: ratio, RatioLabel: ratioLabel(ratio),
			Improvement: cmp.Improvement, Regret: cmp.Regret,
		})
	}
	// Longer deadlines must improve savings vs Performant.
	if cells[1].Improvement <= cells[0].Improvement {
		t.Errorf("improvement should grow with deadline: %.3f → %.3f",
			cells[0].Improvement, cells[1].Improvement)
	}
	var buf bytes.Buffer
	if err := WriteFigure12(&buf, cells); err != nil {
		t.Fatal(err)
	}
}

func TestFigure13Pipeline(t *testing.T) {
	rows, err := Figure13(2.0, 16, 2, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6 (2 devices × 3 tasks)", len(rows))
	}
	for _, r := range rows {
		if r.MBORounds == 0 {
			t.Errorf("%s/%s: no MBO rounds recorded", r.Device, r.Task)
		}
		if r.OverheadFrac < 0 || r.OverheadFrac > 0.05 {
			t.Errorf("%s/%s: MBO overhead %.2f%% implausible", r.Device, r.Task, r.OverheadFrac*100)
		}
		if r.TotalTrainingEnergy <= 0 {
			t.Errorf("%s/%s: no training energy", r.Device, r.Task)
		}
	}
	var buf bytes.Buffer
	if err := WriteFigure13(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Error("empty input should render empty")
	}
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Errorf("sparkline length %d", len([]rune(s)))
	}
	if Sparkline([]float64{5, 5, 5}) == "" {
		t.Error("constant series should render")
	}
}

func TestVarianceStudyPipeline(t *testing.T) {
	dev, task := shortTask(t, 2.5)
	_ = task
	rows, err := VarianceStudy(dev, 2.5, 16, 2, 3, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Seeds != 2 {
			t.Errorf("%s: %d seeds", r.Task, r.Seeds)
		}
		if r.ImprovementMean <= 0 {
			t.Errorf("%s: improvement %v", r.Task, r.ImprovementMean)
		}
		if r.ImprovementStd < 0 || r.RegretStd < 0 {
			t.Errorf("%s: negative std", r.Task)
		}
		if r.TotalMisses != 0 {
			t.Errorf("%s: %d misses", r.Task, r.TotalMisses)
		}
	}
	if _, err := VarianceStudy(dev, 2.5, 4, 1, 3, fastOpts()); err == nil {
		t.Error("single-seed study accepted")
	}
	var buf bytes.Buffer
	if err := WriteVarianceStudy(&buf, rows, 2.5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "±") {
		t.Error("render missing error bars")
	}
}

func TestThermalStudyPipeline(t *testing.T) {
	dev, task := shortTask(t, 2.5)
	rows, err := ThermalStudy(dev, task, 30, 4, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]ThermalRow{}
	for _, r := range rows {
		byName[r.Controller] = r
		if r.TotalEnergy <= 0 {
			t.Errorf("%s: no energy", r.Controller)
		}
	}
	perf := byName["performant"]
	static := byName["bofl-static"]
	adaptive := byName["bofl-adaptive"]
	if perf.DeadlineMisses > 0 {
		t.Errorf("performant missed %d deadlines", perf.DeadlineMisses)
	}
	// The harsh enclosure must actually throttle the max-power baseline.
	if perf.FinalTempC < 46 {
		t.Errorf("performant final temp %.1f°C — enclosure not harsh enough", perf.FinalTempC)
	}
	// Both BoFL variants must beat Performant on energy; the adaptive one
	// must not miss more deadlines than the static one.
	if static.TotalEnergy >= perf.TotalEnergy || adaptive.TotalEnergy >= perf.TotalEnergy {
		t.Errorf("BoFL should save energy even while throttling: static %.0f adaptive %.0f perf %.0f",
			static.TotalEnergy, adaptive.TotalEnergy, perf.TotalEnergy)
	}
	if adaptive.DeadlineMisses > static.DeadlineMisses {
		t.Errorf("adaptation increased misses: %d vs %d", adaptive.DeadlineMisses, static.DeadlineMisses)
	}
	var buf bytes.Buffer
	if err := WriteThermalStudy(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "readapts") {
		t.Error("render missing readapts column")
	}
}

func TestRunTaskDeterministicBySeed(t *testing.T) {
	dev, task := shortTask(t, 2.0)
	a, err := RunTask(RunConfig{Device: dev, Task: task, Rounds: 8, Controller: KindBoFL, Seed: 11, CtrlOptions: fastOpts()})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTask(RunConfig{Device: dev, Task: task, Rounds: 8, Controller: KindBoFL, Seed: 11, CtrlOptions: fastOpts()})
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalEnergy != b.TotalEnergy {
		t.Errorf("same seed, different energies: %v vs %v", a.TotalEnergy, b.TotalEnergy)
	}
}

func TestAblationControllersRun(t *testing.T) {
	dev, task := shortTask(t, 2.5)
	for _, kind := range []ControllerKind{KindRandom, KindLinearPace} {
		run, err := RunTask(RunConfig{
			Device:      dev,
			Task:        task,
			Rounds:      12,
			Controller:  kind,
			Seed:        7,
			CtrlOptions: fastOpts(),
		})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if run.TotalEnergy <= 0 {
			t.Errorf("%s: no energy", kind)
		}
	}
}
