package fleet

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"bofl/internal/device"
	"bofl/internal/exact"
	"bofl/internal/faultinject"
	"bofl/internal/obs/ledger"
	"bofl/internal/simclock"
)

// chaosSeed resolves the suite's chaos seed, honoring the repo-wide
// BOFL_CHAOS_SEED replay convention (see internal/fl/chaos_test.go).
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	seed := int64(20260807)
	if env := os.Getenv("BOFL_CHAOS_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("BOFL_CHAOS_SEED=%q: %v", env, err)
		}
		seed = v
	}
	t.Logf("chaos seed %d (replay with BOFL_CHAOS_SEED=%d)", seed, seed)
	return seed
}

// bitsEqual compares float64 slices bit-for-bit.
func bitsEqual(t *testing.T, got, want []float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", label, len(got), len(want))
	}
	for j := range got {
		if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
			t.Fatalf("%s: [%d] %x (%v) != %x (%v)", label, j,
				math.Float64bits(got[j]), got[j], math.Float64bits(want[j]), want[j])
		}
	}
}

// uniformPopulation is a single always-available jitter-free class, so the
// only losses are the ones a test scripts.
func uniformPopulation(t *testing.T, seed int64) *device.Population {
	t.Helper()
	pop, err := device.NewPopulation(seed, []device.FleetClass{{
		Name: "uniform", SecPerJob: 0.1,
		PowerBusyW: 2, PowerIdleW: 0.2,
		UplinkBps: 1e6, DownlinkBps: 4e6,
		Availability: 1, Share: 1,
	}})
	if err != nil {
		t.Fatalf("uniform population: %v", err)
	}
	return pop
}

// TestTreeMatchesFlatRound: the committed tree aggregate is bit-identical to
// the flat in-order exact fold over the same survivors, across fanouts and
// fleet sizes, with organic availability dropout in play.
func TestTreeMatchesFlatRound(t *testing.T) {
	for _, n := range []int{1, 7, 64, 1000, 5000} {
		for _, fanout := range []int{2, 8, 64} {
			e, err := New(Config{
				Clients: n, Dim: 32, Fanout: fanout, Jobs: 2, Seed: 42,
			})
			if err != nil {
				t.Fatalf("n=%d fanout=%d: %v", n, fanout, err)
			}
			flat, flatW, err := e.FlatRound()
			if err != nil {
				t.Fatalf("n=%d fanout=%d flat: %v", n, fanout, err)
			}
			stats, err := e.RunRound()
			if err != nil {
				t.Fatalf("n=%d fanout=%d round: %v", n, fanout, err)
			}
			bitsEqual(t, e.Global(), flat, "tree vs flat")
			if stats.TotalWeight != flatW {
				t.Fatalf("n=%d fanout=%d: weight %d vs flat %d", n, fanout, stats.TotalWeight, flatW)
			}
			if stats.Survivors+stats.Dropped != n {
				t.Fatalf("n=%d: survivors %d + dropped %d != clients", n, stats.Survivors, stats.Dropped)
			}
		}
	}
}

// TestMillionClientRound is the scale acceptance check: one virtual-time
// round over 1M simulated clients completes, the committed root is
// bit-identical to the flat fold, and the accumulator working set is the
// O(depth·params) spine — not O(clients) — of memory.
func TestMillionClientRound(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-client round skipped in -short")
	}
	const n, dim, fanout = 1_000_000, 8, 64
	e, err := New(Config{Clients: n, Dim: dim, Fanout: fanout, Jobs: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if e.Depth() != 3 { // 64^4 ≥ 1M > 64^3
		t.Fatalf("depth = %d, want 3", e.Depth())
	}
	perVec := exact.NewVec(dim).MemoryBytes()
	wantSpine := int64(e.Depth()+2) * perVec // tiers 0..depth plus the root
	if e.SpineBytes() != wantSpine {
		t.Fatalf("spine = %d bytes, want %d (depth %d)", e.SpineBytes(), wantSpine, e.Depth())
	}
	// The whole accumulator working set must be a few hundred KB, regardless
	// of the million clients below it.
	if e.SpineBytes() > 1<<20 {
		t.Fatalf("spine %d bytes is not bounded", e.SpineBytes())
	}

	flat, flatW, err := e.FlatRound()
	if err != nil {
		t.Fatal(err)
	}
	stats, err := e.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, e.Global(), flat, "1M tree vs flat")
	if stats.TotalWeight != flatW {
		t.Fatalf("weight %d vs flat %d", stats.TotalWeight, flatW)
	}
	if stats.Survivors == 0 || stats.Survivors > n {
		t.Fatalf("implausible survivors %d", stats.Survivors)
	}
	if stats.Partials < n/fanout {
		t.Fatalf("only %d partials for %d tier-0 groups", stats.Partials, n/fanout)
	}
	if stats.VirtualSeconds <= 0 || stats.EnergyJ <= 0 {
		t.Fatalf("degenerate round: virtual %vs energy %vJ", stats.VirtualSeconds, stats.EnergyJ)
	}
	t.Logf("1M round: survivors=%d partials=%d wire=%dMiB virtual=%.0fs energy=%.0fkJ spine=%dKiB",
		stats.Survivors, stats.Partials, stats.WireBytes>>20,
		stats.VirtualSeconds, stats.EnergyJ/1e3, stats.SpineBytes>>10)
}

// TestScriptedSubtreeDropRenormalizes: killing 2 of 4 children of one tier-0
// node under TierQuorum 0.75 discards the whole subtree — including its
// healthy leaves — and the commit is bit-identical to the batch exact fold
// over the surviving 60 clients. Replaying the identical config reproduces
// the identical bytes.
func TestScriptedSubtreeDropRenormalizes(t *testing.T) {
	const n, dim, fanout = 64, 16, 4
	script := faultinject.Scripted{}
	for _, leaf := range []int{16, 17} { // node 4 spans [16,19]: 2/4 < 0.75
		script[faultinject.Point{
			Layer: faultinject.LayerFleet, Client: device.ClientID(leaf),
			Round: 1, Attempt: drawChaos,
		}] = faultinject.Decision{Drop: true}
	}
	cs := chaosSeed(t)
	mk := func() *Engine {
		lg := ledger.New(0)
		e, err := New(Config{
			Clients: n, Dim: dim, Fanout: fanout, Jobs: 1,
			Seed: 11, ChaosSeed: cs, TierQuorum: 0.75,
			Population: uniformPopulation(t, 11),
			Fault:      script, Ledger: lg,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}

	e := mk()
	init := e.Global()
	stats, err := e.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if stats.SubtreeDrops != 1 || stats.SubtreeDropLeaves != 2 {
		t.Fatalf("subtree drops = %d (healthy leaves lost %d), want 1 (2)", stats.SubtreeDrops, stats.SubtreeDropLeaves)
	}
	if stats.Survivors != n-4 || stats.Dropped != 4 {
		t.Fatalf("survivors %d dropped %d, want 60/4", stats.Survivors, stats.Dropped)
	}

	// Batch reference over the survivors: everyone outside the dropped span.
	acc := exact.NewVec(dim)
	out := make([]float64, dim)
	var w int64
	for i := 0; i < n; i++ {
		if i >= 16 && i <= 19 {
			continue
		}
		ww := DefaultUpdate(i, init, out)
		acc.AddScaled(float64(ww), out)
		w += int64(ww)
	}
	want := make([]float64, dim)
	acc.RoundTo(want)
	for j := range want {
		want[j] /= float64(w)
	}
	bitsEqual(t, e.Global(), want, "subtree drop vs batch over survivors")
	if stats.TotalWeight != w {
		t.Fatalf("weight %d, want %d", stats.TotalWeight, w)
	}

	// The ledger names the dropped node.
	var drops, partials int
	for _, ev := range e.cfg.Ledger.Events() {
		switch ev.Kind {
		case ledger.KindSubtreeDrop:
			drops++
			if ev.Tier != 0 || ev.Node != 4 || ev.Survivors != 2 || ev.Selected != 4 {
				t.Fatalf("subtree_drop event = %+v", ev)
			}
		case ledger.KindPartial:
			partials++
			if ev.Weight <= 0 || ev.WireTxBytes <= 0 {
				t.Fatalf("partial event missing accounting: %+v", ev)
			}
		}
	}
	if drops != 1 || partials != stats.Partials {
		t.Fatalf("ledger: %d drops, %d partials (stats %d)", drops, partials, stats.Partials)
	}

	// Same config, same seeds → identical bytes and identical stats.
	e2 := mk()
	stats2, err := e2.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, e2.Global(), e.Global(), "replay")
	if stats2 != stats {
		t.Fatalf("replay stats diverge:\n%+v\n%+v", stats2, stats)
	}
}

// TestChaosSeedReplayAndDivergence: a probabilistic fault plan replays
// identically under the same chaos seed and diverges under a different one.
func TestChaosSeedReplayAndDivergence(t *testing.T) {
	plan := &faultinject.Plan{
		Seed:    4242,
		Default: faultinject.Profile{Drop: 0.05, Crash: 0.05, Straggle: 0.2, StraggleMin: time.Second, StraggleMax: 5 * time.Second},
	}
	run := func(chaos int64) ([]float64, []RoundStats) {
		e, err := New(Config{
			Clients: 500, Dim: 8, Fanout: 8, Jobs: 2,
			Seed: 5, ChaosSeed: chaos, Fault: plan,
		})
		if err != nil {
			t.Fatal(err)
		}
		var all []RoundStats
		for r := 0; r < 3; r++ {
			st, err := e.RunRound()
			if err != nil {
				t.Fatalf("chaos=%d round %d: %v", chaos, r, err)
			}
			all = append(all, st)
		}
		return e.Global(), all
	}
	cs := chaosSeed(t)
	gA, sA := run(cs)
	gB, sB := run(cs)
	bitsEqual(t, gA, gB, "same chaos seed")
	for r := range sA {
		if sA[r] != sB[r] {
			t.Fatalf("round %d stats diverge under same seed:\n%+v\n%+v", r, sA[r], sB[r])
		}
	}
	gC, _ := run(cs + 7919)
	same := true
	for j := range gA {
		if math.Float64bits(gA[j]) != math.Float64bits(gC[j]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different chaos seeds produced identical models")
	}
}

// TestVirtualTime: the round advances the virtual clock by exactly its
// simulated duration, and per-tier hop latency is charged per level.
func TestVirtualTime(t *testing.T) {
	clock := simclock.NewSim(time.Unix(0, 0).UTC())
	e, err := New(Config{
		Clients: 100, Dim: 4, Fanout: 10, Jobs: 3,
		Seed: 3, Population: uniformPopulation(t, 3),
		TierLatencySeconds: 0.5, Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := clock.Now()
	stats, err := e.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if got := clock.Now().Sub(start); got != time.Duration(stats.VirtualSeconds*float64(time.Second)) {
		t.Fatalf("clock advanced %v, stats say %vs", got, stats.VirtualSeconds)
	}
	// uniform class: compute = 3·0.1s, downlink (160B/4MBps) + uplink
	// (160B/1MBps) are sub-millisecond; two tiers + root commit hop charge
	// 3×0.5s. Duration must sit just above 1.8s.
	if stats.VirtualSeconds < 1.8 || stats.VirtualSeconds > 1.9 {
		t.Fatalf("virtual duration %vs outside expected envelope", stats.VirtualSeconds)
	}
	if stats.DeadlineSeconds != e.Deadline() {
		t.Fatalf("deadline mismatch: %v vs %v", stats.DeadlineSeconds, e.Deadline())
	}
}

// TestQuorumAbort: a round whose survivors fall below the round-level quorum
// aborts without touching the model.
func TestQuorumAbort(t *testing.T) {
	script := faultinject.Scripted{}
	for i := 0; i < 10; i++ {
		script[faultinject.Point{
			Layer: faultinject.LayerFleet, Client: device.ClientID(i),
			Round: 1, Attempt: drawChaos,
		}] = faultinject.Decision{Drop: true}
	}
	e, err := New(Config{
		Clients: 16, Dim: 4, Fanout: 4, Jobs: 1,
		Seed: 8, Population: uniformPopulation(t, 8),
		Fault: script, Quorum: 0.75,
	})
	if err != nil {
		t.Fatal(err)
	}
	before := e.Global()
	if _, err := e.RunRound(); err == nil {
		t.Fatal("expected quorum abort")
	}
	bitsEqual(t, e.Global(), before, "model after abort")
}

// TestConfigValidation rejects malformed configs.
func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Clients: 0, Dim: 4, Fanout: 2, Jobs: 1},
		{Clients: 10, Dim: 0, Fanout: 2, Jobs: 1},
		{Clients: 10, Dim: 4, Fanout: 1, Jobs: 1},
		{Clients: 10, Dim: 4, Fanout: 2, Jobs: 0},
		{Clients: 10, Dim: 4, Fanout: 2, Jobs: 1, TierQuorum: 1.5},
		{Clients: 10, Dim: 4, Fanout: 2, Jobs: 1, Quorum: -0.1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
}

// TestPopulationDeterminism: client specs are pure functions of (seed, idx)
// and the class mix covers every archetype at modest fleet sizes.
func TestPopulationDeterminism(t *testing.T) {
	classes, err := device.StandardFleetClasses(device.ViT)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := device.NewPopulation(77, classes)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := device.NewPopulation(77, classes)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for i := 0; i < 5000; i++ {
		a, b := p1.Client(i), p2.Client(i)
		if a.Class.Name != b.Class.Name || a.SecPerJob != b.SecPerJob ||
			a.PowerBusyW != b.PowerBusyW || a.Availability != b.Availability {
			t.Fatalf("client %d diverges across identical populations", i)
		}
		if a.SecPerJob <= 0 || a.SecPerJob > p1.SlowestSecPerJob() {
			t.Fatalf("client %d SecPerJob %v outside (0, %v]", i, a.SecPerJob, p1.SlowestSecPerJob())
		}
		seen[a.Class.Name]++
	}
	for _, c := range classes {
		if seen[c.Name] == 0 {
			t.Fatalf("class %s never sampled in 5000 clients (mix %v)", c.Name, seen)
		}
	}
}

// TestSpanPow checks the saturating power helper the tree layout hangs on.
func TestSpanPow(t *testing.T) {
	cases := []struct{ fanout, exp, n, want int }{
		{2, 0, 100, 1}, {2, 3, 100, 8}, {2, 10, 100, 100},
		{64, 2, 1_000_000, 4096}, {64, 4, 1_000_000, 1_000_000},
		{3, 40, 1 << 30, 1 << 30}, // would overflow without saturation
	}
	for _, c := range cases {
		if got := spanPow(c.fanout, c.exp, c.n); got != c.want {
			t.Fatalf("spanPow(%d,%d,%d) = %d, want %d", c.fanout, c.exp, c.n, got, c.want)
		}
	}
}

// TestFusedDefaultUpdateMatchesGeneric: leaving Config.Update nil selects the
// fused fold (AddScaledAffine, plus the decomp cache at scale); setting it to
// DefaultUpdate explicitly forces the generic scratch-vector path. Committed
// model bits and stats must be identical — the fusion and the memoization are
// pure implementation. Covers both the small (plain fused) and the
// decomp-cached (Clients ≥ decompMinClients) regimes.
func TestFusedDefaultUpdateMatchesGeneric(t *testing.T) {
	for _, n := range []int{300, decompMinClients + 123} {
		mk := func(u UpdateFn) *Engine {
			e, err := New(Config{
				Clients: n, Dim: 24, Fanout: 8, Jobs: 1, Seed: 21, Update: u,
			})
			if err != nil {
				t.Fatal(err)
			}
			return e
		}
		fused := mk(nil)
		generic := mk(DefaultUpdate)
		if fused.fused == false {
			t.Fatal("nil Update did not select the fused path")
		}
		if generic.fused {
			t.Fatal("explicit DefaultUpdate unexpectedly fused")
		}
		if wantCache := n >= decompMinClients; (fused.decomps != nil) != wantCache {
			t.Fatalf("n=%d: decomp cache active=%v, want %v", n, fused.decomps != nil, wantCache)
		}
		for r := 0; r < 3; r++ {
			sf, err := fused.RunRound()
			if err != nil {
				t.Fatalf("n=%d round %d fused: %v", n, r, err)
			}
			sg, err := generic.RunRound()
			if err != nil {
				t.Fatalf("n=%d round %d generic: %v", n, r, err)
			}
			bitsEqual(t, fused.Global(), generic.Global(), "fused vs generic model")
			if sf != sg {
				t.Fatalf("n=%d round %d stats diverge:\n%+v\n%+v", n, r, sf, sg)
			}
		}
	}
}

// TestShardPermutationDeterminism is the scheduling-independence property
// test: shards may complete in ANY order on ANY number of workers, and the
// committed model bits, the round stats and the ledger JSONL bytes must all
// be identical to the serial natural-order walk. Completion order is forced
// via seeded permutations injected through the shardRunner seam, executed on
// genuinely concurrent workers (meaningful under -race).
func TestShardPermutationDeterminism(t *testing.T) {
	const n, dim, fanout, rounds = 20_000, 16, 8, 2
	plan := &faultinject.Plan{
		Seed:    99,
		Default: faultinject.Profile{Drop: 0.04, Crash: 0.03},
	}
	cs := chaosSeed(t)

	run := func(workers int, permSeed int64) (model []float64, stats []RoundStats, jsonl []byte) {
		lg := ledger.New(0)
		e, err := New(Config{
			Clients: n, Dim: dim, Fanout: fanout, Jobs: 1,
			Seed: 13, ChaosSeed: cs, Fault: plan,
			TierQuorum: 0.5, Workers: workers, Ledger: lg,
		})
		if err != nil {
			t.Fatal(err)
		}
		if permSeed != 0 {
			rng := rand.New(rand.NewSource(permSeed))
			e.shardRunner = func(ns int, runShard func(s int)) {
				order := rng.Perm(ns)
				feed := make(chan int)
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for s := range feed {
							runShard(s)
						}
					}()
				}
				for _, s := range order {
					feed <- s
				}
				close(feed)
				wg.Wait()
			}
		}
		for r := 0; r < rounds; r++ {
			st, err := e.RunRound()
			if err != nil {
				t.Fatalf("workers=%d perm=%d round %d: %v", workers, permSeed, r, err)
			}
			stats = append(stats, st)
		}
		var buf bytes.Buffer
		if err := lg.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return e.Global(), stats, buf.Bytes()
	}

	wantModel, wantStats, wantJSONL := run(1, 0) // serial natural order
	if sc, _ := func() (int, int) {
		e, _ := New(Config{Clients: n, Dim: dim, Fanout: fanout, Jobs: 1, Seed: 13})
		return e.Shards()
	}(); sc < 2 {
		t.Fatalf("layout degenerate: %d shards", sc)
	}
	for _, workers := range []int{1, 2, 4} {
		for _, permSeed := range []int64{1, 20260807, 424242} {
			model, stats, jsonl := run(workers, permSeed)
			label := fmt.Sprintf("workers=%d perm=%d", workers, permSeed)
			bitsEqual(t, model, wantModel, label+" model")
			for r := range stats {
				if stats[r] != wantStats[r] {
					t.Fatalf("%s round %d stats diverge:\n%+v\n%+v", label, r, stats[r], wantStats[r])
				}
			}
			if !bytes.Equal(jsonl, wantJSONL) {
				t.Fatalf("%s: ledger JSONL diverges from serial walk (%d vs %d bytes)",
					label, len(jsonl), len(wantJSONL))
			}
		}
	}
}

// TestRoundAllocsPerClient pins the zero-alloc leaf path: a steady-state
// 10k-client round (pools warm, decomp cache off at this size's Dim — the
// cache itself is round-constant) must average far under one allocation per
// client. The budget leaves headroom for pool churn under GC pressure while
// still catching any per-client or per-partial allocation regression.
func TestRoundAllocsPerClient(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector's sync.Pool drops Puts; alloc counts are meaningless")
	}
	const n = 10_000
	e, err := New(Config{Clients: n, Dim: 32, Fanout: 8, Jobs: 1, Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ { // warm pools and the decomp cache
		if _, err := e.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(5, func() {
		if _, err := e.RunRound(); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("steady-state: %.0f allocs/round (%.5f per client)", avg, avg/n)
	if avg > 0.02*n {
		t.Fatalf("round allocates %.0f times (%.4f per client), budget %.0f",
			avg, avg/n, 0.02*n)
	}
}
