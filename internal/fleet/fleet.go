// Package fleet is a discrete-event simulator for million-client federated
// rounds. It drives a generated heterogeneous device population
// (device.Population) through the hierarchical aggregation tree in *virtual*
// time (simclock.Sim): every client's round — downlink, local training,
// uplink — is priced from its sampled fleet profile, partial sums climb the
// tree as BFL1 partial-aggregate frames, and the round's wall time is the
// slowest surviving path to the root, not the machine the simulator runs on.
//
// Memory is the point. The simulator walks the tree depth-first, so at any
// moment exactly one aggregator per tier is open: O(depth · params)
// accumulator state plus one scratch update vector, regardless of fleet size.
// No slice anywhere is proportional to the number of clients — a client's
// spec, availability and update are all recomputed on demand as pure
// functions of (seed, index, round), the same order-independent hash
// construction the chaos plane uses (Falafels-style discrete events over a
// BouquetFL-style heterogeneous population).
//
// Because the fold arithmetic is exact (internal/exact), arrival order is
// immaterial: folding children in index order as the DFS visits them is
// bit-identical to folding them in completion-time order, and the committed
// root model is bit-identical to a flat fold over the same survivors — the
// property FlatRound exposes and the tests enforce.
package fleet

import (
	"bytes"
	"fmt"
	"math"
	"time"

	"bofl/internal/device"
	"bofl/internal/exact"
	"bofl/internal/faultinject"
	"bofl/internal/fl"
	"bofl/internal/obs"
	"bofl/internal/obs/ledger"
	"bofl/internal/simclock"
)

// Per-round draw attempts in the LayerFleet hash stream. Population sampling
// uses round 0; the engine draws at rounds ≥ 1, so the streams never collide.
const (
	drawChaos = iota // scripted/policy fault decision
	drawAvailability
)

// wireOverheadBytes approximates per-transfer framing cost (headers, meta)
// added to the 8·dim model payload when pricing link time.
const wireOverheadBytes = 128

// UpdateFn computes client i's local update from the global model into out
// (len(out) == len(global)) and returns its integer example count (≥ 1).
// It MUST be a pure function of (i, global) — the simulator recomputes it at
// will and replays depend on it.
type UpdateFn func(i int, global, out []float64) int

// DefaultUpdate is a deterministic synthetic workload: an affine map whose
// scale and shift vary per client, matching the in-process scale harness.
func DefaultUpdate(i int, global, out []float64) int {
	scale := 1 + float64(i%7)/8
	shift := float64(i%5) / 16
	for j, v := range global {
		out[j] = v*scale + shift
	}
	return 1 + i%29
}

// Config shapes one simulated fleet.
type Config struct {
	// Clients is the fleet size; every round selects the whole fleet.
	Clients int
	// Dim is the model dimension.
	Dim int
	// Fanout is the aggregation-tree fanout (≥ 2).
	Fanout int
	// Jobs is the local minibatch count per client per round.
	Jobs int
	// Seed fixes population sampling and trace minting.
	Seed int64
	// ChaosSeed fixes availability and fault draws; replays with the same
	// value are byte-identical. Defaults to Seed when zero.
	ChaosSeed int64
	// TierQuorum is the per-aggregator child quorum (see fl.TreeConfig).
	TierQuorum float64
	// Quorum is the round-level survivor fraction required to commit.
	Quorum float64
	// DeadlineSeconds fixes the per-round client deadline. Zero derives it:
	// DeadlineRatio × Jobs × the population's slowest per-job latency.
	DeadlineSeconds float64
	// DeadlineRatio scales the derived deadline (default 1.25).
	DeadlineRatio float64
	// TierLatencySeconds charges a fixed aggregation hop cost per tier when
	// pricing the round's virtual duration (default 0).
	TierLatencySeconds float64
	// Population supplies per-client device specs; nil builds the standard
	// heterogeneous mix (device.StandardFleetClasses, ViT anchors) on Seed.
	Population *device.Population
	// Fault injects scripted or probabilistic chaos at LayerFleet points
	// (nil injects nothing).
	Fault faultinject.Policy
	// Clock is the virtual clock to advance per round (nil creates one at
	// the zero epoch).
	Clock *simclock.Sim
	// Ledger, when set, journals round/partial/subtree-drop/commit events.
	Sink   obs.Sink
	Ledger *ledger.Ledger
	// Update is the local training function (nil selects DefaultUpdate).
	Update UpdateFn
}

func (c *Config) normalize() error {
	switch {
	case c.Clients < 1:
		return fmt.Errorf("fleet: Clients %d must be ≥ 1", c.Clients)
	case c.Dim < 1:
		return fmt.Errorf("fleet: Dim %d must be ≥ 1", c.Dim)
	case c.Fanout < 2:
		return fmt.Errorf("fleet: Fanout %d must be ≥ 2", c.Fanout)
	case c.Jobs < 1:
		return fmt.Errorf("fleet: Jobs %d must be ≥ 1", c.Jobs)
	case c.TierQuorum < 0 || c.TierQuorum > 1:
		return fmt.Errorf("fleet: TierQuorum %v must be in [0, 1]", c.TierQuorum)
	case c.Quorum < 0 || c.Quorum > 1:
		return fmt.Errorf("fleet: Quorum %v must be in [0, 1]", c.Quorum)
	case c.DeadlineSeconds < 0 || c.DeadlineRatio < 0 || c.TierLatencySeconds < 0:
		return fmt.Errorf("fleet: negative deadline/tier latency")
	}
	if c.ChaosSeed == 0 {
		c.ChaosSeed = c.Seed
	}
	if c.DeadlineRatio == 0 {
		c.DeadlineRatio = 1.25
	}
	if c.Population == nil {
		classes, err := device.StandardFleetClasses(device.ViT)
		if err != nil {
			return err
		}
		c.Population, err = device.NewPopulation(c.Seed, classes)
		if err != nil {
			return err
		}
	}
	if c.Clock == nil {
		c.Clock = simclock.NewSim(time.Unix(0, 0).UTC())
	}
	c.Sink = obs.OrNop(c.Sink)
	c.Fault = faultinject.OrNop(c.Fault)
	if c.Update == nil {
		c.Update = DefaultUpdate
	}
	return nil
}

// RoundStats summarizes one simulated round.
type RoundStats struct {
	Round   int
	Clients int
	// Survivors is the number of leaf updates in the committed aggregate;
	// Dropped is everything else (unavailable + faults + misses + leaves
	// lost to subtree drops).
	Survivors int
	Dropped   int
	// Loss taxonomy. SubtreeDropLeaves counts healthy leaves discarded
	// because their aggregator missed its tier quorum.
	Unavailable       int
	Crashed           int
	DeadlineMisses    int
	SubtreeDrops      int
	SubtreeDropLeaves int
	// Tree traffic: partial frames shipped tier-to-tier and their bytes.
	Partials  int
	WireBytes int64
	// TotalWeight is the committed integer example weight.
	TotalWeight int64
	// EnergyJ is the fleet's summed round energy (training + radio).
	EnergyJ float64
	// VirtualSeconds is the round's simulated duration (slowest surviving
	// path to the root); DeadlineSeconds is the per-client deadline used.
	VirtualSeconds  float64
	DeadlineSeconds float64
	// SpineBytes is the engine's accumulator working set — O(depth·params),
	// independent of Clients.
	SpineBytes int64
}

// Engine simulates rounds over one fleet. Not safe for concurrent use.
type Engine struct {
	cfg      Config
	depth    int // root aggregator tier; spine holds tiers 0..depth
	deadline float64

	global  []float64
	scratch []float64
	sum     []float64
	spine   []*exact.Vec
	rootVec *exact.Vec
	buf     bytes.Buffer

	round int
	tc    obs.TraceContext
	stats RoundStats
	err   error
}

// New validates the config and builds an engine with a deterministic initial
// model.
func New(cfg Config) (*Engine, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	depth := 0
	for spanPow(cfg.Fanout, depth+1, cfg.Clients) < cfg.Clients {
		depth++
	}
	e := &Engine{
		cfg:     cfg,
		depth:   depth,
		global:  make([]float64, cfg.Dim),
		scratch: make([]float64, cfg.Dim),
		sum:     make([]float64, cfg.Dim),
		spine:   make([]*exact.Vec, depth+1),
		rootVec: exact.NewVec(cfg.Dim),
	}
	for t := range e.spine {
		e.spine[t] = exact.NewVec(cfg.Dim)
	}
	for j := range e.global {
		e.global[j] = float64(j%17)/16 + 0.5
	}
	e.deadline = cfg.DeadlineSeconds
	if e.deadline == 0 {
		e.deadline = cfg.DeadlineRatio * float64(cfg.Jobs) * cfg.Population.SlowestSecPerJob()
	}
	return e, nil
}

// Depth returns the root aggregator tier (leaves fold into tier 0).
func (e *Engine) Depth() int { return e.depth }

// Deadline returns the per-client round deadline in seconds.
func (e *Engine) Deadline() float64 { return e.deadline }

// Global returns a copy of the current global model.
func (e *Engine) Global() []float64 { return append([]float64(nil), e.global...) }

// SetGlobal replaces the global model (length must equal Dim).
func (e *Engine) SetGlobal(g []float64) error {
	if len(g) != e.cfg.Dim {
		return fmt.Errorf("fleet: model length %d, want %d", len(g), e.cfg.Dim)
	}
	copy(e.global, g)
	return nil
}

// SpineBytes reports the accumulator working set: the per-tier spine plus the
// root — the quantity that must stay O(depth · params).
func (e *Engine) SpineBytes() int64 {
	total := e.rootVec.MemoryBytes()
	for _, v := range e.spine {
		total += v.MemoryBytes()
	}
	return total
}

// spanPow returns min(fanout^exp, n) without overflow.
func spanPow(fanout, exp, n int) int {
	s := 1
	for k := 0; k < exp; k++ {
		if s > n/fanout {
			return n
		}
		s *= fanout
	}
	if s > n {
		return n
	}
	return s
}

// leafResult is one simulated client's round outcome.
type leafResult struct {
	ok         bool
	completeAt float64 // seconds after round start the update arrives
}

// simulateLeaf prices client i's round: availability and chaos draws, then
// downlink + Jobs·SecPerJob + uplink against the deadline. Energy is charged
// for every phase the device actually ran, even when the update is lost.
func (e *Engine) simulateLeaf(i int) leafResult {
	spec := e.cfg.Population.Client(i)
	pt := faultinject.Point{
		Layer: faultinject.LayerFleet, Client: device.ClientID(i),
		Round: e.round, Attempt: drawChaos,
	}
	dec := e.cfg.Fault.Decide(pt)
	if dec.Drop {
		e.stats.Unavailable++
		return leafResult{}
	}
	pt.Attempt = drawAvailability
	if faultinject.Unit(e.cfg.ChaosSeed, pt) >= spec.Availability {
		e.stats.Unavailable++
		return leafResult{}
	}

	frame := float64(8*e.cfg.Dim + wireOverheadBytes)
	down := frame / spec.DownlinkBps
	compute := float64(e.cfg.Jobs)*spec.SecPerJob + dec.Delay.Seconds()
	up := frame / spec.UplinkBps

	if dec.Crash {
		// Trained, died before reporting: compute energy spent, no uplink.
		e.stats.Crashed++
		e.stats.EnergyJ += compute*spec.PowerBusyW + down*spec.PowerIdleW
		return leafResult{}
	}
	total := down + compute + up
	e.stats.EnergyJ += compute*spec.PowerBusyW + (down+up)*spec.PowerIdleW
	if dec.Timeout || total > e.deadline {
		e.stats.DeadlineMisses++
		return leafResult{}
	}
	return leafResult{ok: true, completeAt: total}
}

// nodeResult is one aggregator subtree's outcome.
type nodeResult struct {
	ok         bool
	sum        exact.Serialized
	weight     int64
	survivors  int
	completeAt float64
}

// simulateNode runs the tier-t aggregator covering leaves [lo, hi) and every
// subtree below it, depth-first. The tier's spine accumulator is reused by
// every node of the tier in turn — the DFS guarantees at most one is open.
func (e *Engine) simulateNode(t, lo, hi int) nodeResult {
	vec := e.spine[t]
	vec.Reset()
	var weight int64
	arrived, attempted, survivors := 0, 0, 0
	latest := 0.0
	childSpan := spanPow(e.cfg.Fanout, t, e.cfg.Clients)
	for clo := lo; clo < hi; clo += childSpan {
		attempted++
		if t == 0 {
			lr := e.simulateLeaf(clo)
			if !lr.ok {
				continue
			}
			w := int64(e.cfg.Update(clo, e.global, e.scratch))
			if w < 1 {
				e.fail(fmt.Errorf("fleet: client %d returned weight %d < 1", clo, w))
				continue
			}
			vec.AddScaled(float64(w), e.scratch)
			weight += w
			arrived++
			survivors++
			if lr.completeAt > latest {
				latest = lr.completeAt
			}
			continue
		}
		chi := clo + childSpan
		if chi > hi {
			chi = hi
		}
		res := e.simulateNode(t-1, clo, chi)
		if res.completeAt > latest {
			latest = res.completeAt
		}
		if !res.ok {
			continue
		}
		if err := vec.Absorb(res.sum); err != nil {
			e.fail(fmt.Errorf("fleet: tier %d absorb: %w", t, err))
			continue
		}
		weight += res.weight
		arrived++
		survivors += res.survivors
	}

	node := lo / spanPow(e.cfg.Fanout, t+1, e.cfg.Clients)
	required := 0
	if e.cfg.TierQuorum > 0 {
		required = int(math.Ceil(e.cfg.TierQuorum * float64(attempted)))
	}
	if arrived == 0 || arrived < required {
		if required > 0 && arrived < required {
			e.stats.SubtreeDrops++
			e.stats.SubtreeDropLeaves += survivors
			e.ledgerAppend(ledger.Event{
				Kind: ledger.KindSubtreeDrop, Round: e.round, TraceID: e.tc.TraceID,
				Tier: t, Node: node, Survivors: arrived, Selected: attempted,
				Detail: fmt.Sprintf("quorum %d/%d", arrived, required),
			})
		}
		return nodeResult{completeAt: latest}
	}

	// Ship the partial through the real wire path: the bytes a distributed
	// tier deployment would move are the bytes we account.
	pa := fl.PartialAggregate{
		Round: e.round, Tier: t, Node: node,
		LeafLo: lo, LeafHi: hi - 1,
		Survivors: survivors, Weight: weight,
		Sum: vec.Serialize(), Trace: e.tc,
	}
	e.buf.Reset()
	if err := fl.EncodePartialAggregate(&e.buf, pa); err != nil {
		e.fail(fmt.Errorf("fleet: tier %d node %d encode: %w", t, node, err))
		return nodeResult{completeAt: latest}
	}
	wire := int64(e.buf.Len())
	dec, err := fl.DecodePartialAggregate(&e.buf)
	if err != nil {
		e.fail(fmt.Errorf("fleet: tier %d node %d decode: %w", t, node, err))
		return nodeResult{completeAt: latest}
	}
	e.stats.Partials++
	e.stats.WireBytes += wire
	e.ledgerAppend(ledger.Event{
		Kind: ledger.KindPartial, Round: e.round, TraceID: e.tc.TraceID,
		Tier: t, Node: node, Survivors: arrived, Selected: attempted,
		Weight: weight, WireTxBytes: wire,
	})
	return nodeResult{
		ok: true, sum: dec.Sum, weight: dec.Weight, survivors: survivors,
		completeAt: latest + e.cfg.TierLatencySeconds,
	}
}

func (e *Engine) fail(err error) {
	if e.err == nil {
		e.err = err
	}
}

func (e *Engine) ledgerAppend(ev ledger.Event) {
	if e.cfg.Ledger != nil {
		e.cfg.Ledger.Append(ev)
	}
}

// RunRound simulates one virtual-time round over the whole fleet, commits the
// new global model, and advances the virtual clock by the round's duration.
func (e *Engine) RunRound() (RoundStats, error) {
	e.round++
	e.err = nil
	n := e.cfg.Clients
	e.tc = obs.MintTrace(e.cfg.Seed, e.round)
	e.stats = RoundStats{
		Round: e.round, Clients: n,
		DeadlineSeconds: e.deadline, SpineBytes: e.SpineBytes(),
	}
	e.ledgerAppend(ledger.Event{
		Kind: ledger.KindRoundBegin, Round: e.round, TraceID: e.tc.TraceID,
		Selected: n, Deadline: e.deadline,
	})

	root := e.simulateNode(e.depth, 0, n)
	if e.err != nil {
		e.abort(e.err.Error())
		return e.stats, e.err
	}
	required := int(math.Ceil(e.cfg.Quorum * float64(n)))
	switch {
	case !root.ok || root.weight == 0:
		err := fmt.Errorf("fleet: round %d: no surviving aggregate", e.round)
		e.abort(err.Error())
		return e.stats, err
	case root.survivors < required:
		err := fmt.Errorf("fleet: round %d: %d survivors below quorum %d", e.round, root.survivors, required)
		e.abort(err.Error())
		return e.stats, err
	}

	e.rootVec.Reset()
	if err := e.rootVec.Absorb(root.sum); err != nil {
		e.abort(err.Error())
		return e.stats, fmt.Errorf("fleet: round %d: root absorb: %w", e.round, err)
	}
	e.rootVec.RoundTo(e.sum)
	tw := float64(root.weight)
	for j := range e.global {
		e.global[j] = e.sum[j] / tw
	}

	e.stats.Survivors = root.survivors
	e.stats.Dropped = n - root.survivors
	e.stats.TotalWeight = root.weight
	e.stats.VirtualSeconds = root.completeAt + e.cfg.TierLatencySeconds
	e.cfg.Clock.Advance(time.Duration(e.stats.VirtualSeconds * float64(time.Second)))

	e.cfg.Sink.Count(obs.MetricFleetClients, float64(n))
	e.cfg.Sink.Count(obs.MetricFleetVirtualS, e.stats.VirtualSeconds)
	e.cfg.Sink.Count(obs.MetricFleetEnergy, e.stats.EnergyJ)
	e.cfg.Sink.Count(obs.MetricFleetMisses, float64(e.stats.DeadlineMisses))
	e.cfg.Sink.Count(obs.MetricFleetDropped, float64(e.stats.Dropped))
	e.ledgerAppend(ledger.Event{
		Kind: ledger.KindCommit, Round: e.round, TraceID: e.tc.TraceID,
		Selected: n, Survivors: root.survivors, Weight: root.weight,
		LatencySeconds: e.stats.VirtualSeconds, EnergyJoules: e.stats.EnergyJ,
	})
	return e.stats, nil
}

func (e *Engine) abort(detail string) {
	e.ledgerAppend(ledger.Event{
		Kind: ledger.KindAbort, Round: e.round, TraceID: e.tc.TraceID,
		Detail: detail,
	})
}

// FlatRound is the reference oracle: it simulates the *next* round's leaves
// with draws identical to what RunRound will use, folds every survivor into a
// single flat exact accumulator in index order — no tree, no partial frames —
// and returns the model that fold would commit plus its total weight. It does
// not mutate engine state. With TierQuorum 0 (no subtree drops) the
// subsequently committed RunRound model must be bit-identical.
func (e *Engine) FlatRound() ([]float64, int64, error) {
	savedStats, savedRound, savedErr := e.stats, e.round, e.err
	defer func() { e.stats, e.round, e.err = savedStats, savedRound, savedErr }()
	e.round++
	e.stats = RoundStats{}
	e.err = nil

	acc := exact.NewVec(e.cfg.Dim)
	var weight int64
	for i := 0; i < e.cfg.Clients; i++ {
		lr := e.simulateLeaf(i)
		if !lr.ok {
			continue
		}
		w := int64(e.cfg.Update(i, e.global, e.scratch))
		if w < 1 {
			return nil, 0, fmt.Errorf("fleet: client %d returned weight %d < 1", i, w)
		}
		acc.AddScaled(float64(w), e.scratch)
		weight += w
	}
	if weight == 0 {
		return nil, 0, fmt.Errorf("fleet: flat round %d: no survivors", e.round)
	}
	out := make([]float64, e.cfg.Dim)
	acc.RoundTo(out)
	tw := float64(weight)
	for j := range out {
		out[j] /= tw
	}
	return out, weight, nil
}
