// Package fleet is a discrete-event simulator for million-client federated
// rounds. It drives a generated heterogeneous device population
// (device.Population) through the hierarchical aggregation tree in *virtual*
// time (simclock.Sim): every client's round — downlink, local training,
// uplink — is priced from its sampled fleet profile, partial sums climb the
// tree as BFL1 partial-aggregate frames, and the round's wall time is the
// slowest surviving path to the root, not the machine the simulator runs on.
//
// Memory is the point. The simulator walks the tree depth-first, so at any
// moment exactly one aggregator per tier is open per worker: O(depth·params)
// accumulator state plus one scratch update vector, regardless of fleet size.
// No slice anywhere is proportional to the number of clients — a client's
// spec, availability and update are all recomputed on demand as pure
// functions of (seed, index, round), the same order-independent hash
// construction the chaos plane uses (Falafels-style discrete events over a
// BouquetFL-style heterogeneous population).
//
// Speed is the other point. A round is sharded at a fixed tier of the tree
// into independent subtrees, simulated concurrently on the internal/parallel
// pool: each worker owns a pooled spine slice, scratch arena and partial-frame
// buffers, so the leaf fold path allocates nothing per client. The shard
// layout is a pure function of (Clients, Fanout) — never of the worker count —
// and every per-shard draw is a pure function of (seed, index, round), so the
// committed model, the stats and the ledger are byte-identical at any
// GOMAXPROCS or -workers setting. Shard results merge through a single-
// threaded sequencer that replays buffered per-shard ledger events in DFS
// order, which keeps the journal byte-identical to the serial walk too.
//
// Because the fold arithmetic is exact (internal/exact), arrival order is
// immaterial: folding children in index order as the DFS visits them is
// bit-identical to folding them in completion-time order, and the committed
// root model is bit-identical to a flat fold over the same survivors — the
// property FlatRound exposes and the tests enforce.
package fleet

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"time"

	"bofl/internal/device"
	"bofl/internal/exact"
	"bofl/internal/faultinject"
	"bofl/internal/fl"
	"bofl/internal/obs"
	"bofl/internal/obs/ledger"
	"bofl/internal/parallel"
	"bofl/internal/simclock"
)

// Per-round draw attempts in the LayerFleet hash stream. Population sampling
// uses round 0; the engine draws at rounds ≥ 1, so the streams never collide.
const (
	drawChaos = iota // scripted/policy fault decision
	drawAvailability
)

// wireOverheadBytes approximates per-transfer framing cost (headers, meta)
// added to the 8·dim model payload when pricing link time.
const wireOverheadBytes = 128

// minShards is the smallest subtree count worth sharding at: the engine picks
// the highest tier whose node count reaches it, so shards stay coarse enough
// to amortize dispatch but numerous enough to load-balance any plausible
// worker count. Layout depends only on (Clients, Fanout).
const minShards = 32

// updatePeriod is DefaultUpdate's combo period: scale cycles mod 7, shift
// mod 5, weight mod 29 (pairwise coprime), so clients i and i+1015 run the
// identical update. The fused engine exploits this by precomputing each
// combo's exact limb decomposition once per round (exact.Decomp) and
// replaying pure integer deltas per client — bit-identical by exactness.
const updatePeriod = 7 * 5 * 29

// Decomp-cache gates: only worth the memory (updatePeriod · dim · 12 B) when
// each combo is replayed at least a few times and the cache stays modest.
const (
	decompMinClients = 4 * updatePeriod
	decompMaxBytes   = 64 << 20
)

// UpdateFn computes client i's local update from the global model into out
// (len(out) == len(global)) and returns its integer example count (≥ 1).
// It MUST be a pure function of (i, global) — the simulator recomputes it at
// will and replays depend on it. It may be called concurrently from several
// workers (with distinct out buffers).
type UpdateFn func(i int, global, out []float64) int

// DefaultUpdate is a deterministic synthetic workload: an affine map whose
// scale and shift vary per client, matching the in-process scale harness.
func DefaultUpdate(i int, global, out []float64) int {
	scale, shift, weight := defaultUpdateParams(i)
	for j, v := range global {
		out[j] = v*scale + shift
	}
	return int(weight)
}

// defaultUpdateParams returns the affine coefficients and weight DefaultUpdate
// uses for client i. The engine's fused fold path (exact.AddScaledAffine,
// taken when Config.Update is left nil) reads the same coefficients, so the
// two paths stay in lockstep; TestFusedDefaultUpdateMatchesGeneric pins the
// bit-identity.
func defaultUpdateParams(i int) (scale, shift float64, weight int64) {
	return 1 + float64(i%7)/8, float64(i%5) / 16, int64(1 + i%29)
}

// Config shapes one simulated fleet.
type Config struct {
	// Clients is the fleet size; every round selects the whole fleet.
	Clients int
	// Dim is the model dimension.
	Dim int
	// Fanout is the aggregation-tree fanout (≥ 2).
	Fanout int
	// Jobs is the local minibatch count per client per round.
	Jobs int
	// Seed fixes population sampling and trace minting.
	Seed int64
	// ChaosSeed fixes availability and fault draws; replays with the same
	// value are byte-identical. Defaults to Seed when zero.
	ChaosSeed int64
	// Workers caps how many subtree shards simulate concurrently; 0 uses the
	// parallel pool width (GOMAXPROCS unless overridden). The committed
	// model, stats and ledger are byte-identical at every setting — Workers
	// only changes scheduling, never the shard layout.
	Workers int
	// TierQuorum is the per-aggregator child quorum (see fl.TreeConfig).
	TierQuorum float64
	// Quorum is the round-level survivor fraction required to commit.
	Quorum float64
	// DeadlineSeconds fixes the per-round client deadline. Zero derives it:
	// DeadlineRatio × Jobs × the population's slowest per-job latency.
	DeadlineSeconds float64
	// DeadlineRatio scales the derived deadline (default 1.25).
	DeadlineRatio float64
	// TierLatencySeconds charges a fixed aggregation hop cost per tier when
	// pricing the round's virtual duration (default 0).
	TierLatencySeconds float64
	// Population supplies per-client device specs; nil builds the standard
	// heterogeneous mix (device.StandardFleetClasses, ViT anchors) on Seed.
	Population *device.Population
	// Fault injects scripted or probabilistic chaos at LayerFleet points
	// (nil injects nothing).
	Fault faultinject.Policy
	// Clock is the virtual clock to advance per round (nil creates one at
	// the zero epoch).
	Clock *simclock.Sim
	// Ledger, when set, journals round/partial/subtree-drop/commit events.
	Sink   obs.Sink
	Ledger *ledger.Ledger
	// Update is the local training function (nil selects DefaultUpdate).
	Update UpdateFn
}

func (c *Config) normalize() error {
	switch {
	case c.Clients < 1:
		return fmt.Errorf("fleet: Clients %d must be ≥ 1", c.Clients)
	case c.Dim < 1:
		return fmt.Errorf("fleet: Dim %d must be ≥ 1", c.Dim)
	case c.Fanout < 2:
		return fmt.Errorf("fleet: Fanout %d must be ≥ 2", c.Fanout)
	case c.Jobs < 1:
		return fmt.Errorf("fleet: Jobs %d must be ≥ 1", c.Jobs)
	case c.Workers < 0:
		return fmt.Errorf("fleet: Workers %d must be ≥ 0", c.Workers)
	case c.TierQuorum < 0 || c.TierQuorum > 1:
		return fmt.Errorf("fleet: TierQuorum %v must be in [0, 1]", c.TierQuorum)
	case c.Quorum < 0 || c.Quorum > 1:
		return fmt.Errorf("fleet: Quorum %v must be in [0, 1]", c.Quorum)
	case c.DeadlineSeconds < 0 || c.DeadlineRatio < 0 || c.TierLatencySeconds < 0:
		return fmt.Errorf("fleet: negative deadline/tier latency")
	}
	if c.ChaosSeed == 0 {
		c.ChaosSeed = c.Seed
	}
	if c.DeadlineRatio == 0 {
		c.DeadlineRatio = 1.25
	}
	if c.Population == nil {
		classes, err := device.StandardFleetClasses(device.ViT)
		if err != nil {
			return err
		}
		c.Population, err = device.NewPopulation(c.Seed, classes)
		if err != nil {
			return err
		}
	}
	if c.Clock == nil {
		c.Clock = simclock.NewSim(time.Unix(0, 0).UTC())
	}
	c.Sink = obs.OrNop(c.Sink)
	c.Fault = faultinject.OrNop(c.Fault)
	if c.Update == nil {
		c.Update = DefaultUpdate
	}
	return nil
}

// RoundStats summarizes one simulated round.
type RoundStats struct {
	Round   int
	Clients int
	// Survivors is the number of leaf updates in the committed aggregate;
	// Dropped is everything else (unavailable + faults + misses + leaves
	// lost to subtree drops).
	Survivors int
	Dropped   int
	// Loss taxonomy. SubtreeDropLeaves counts healthy leaves discarded
	// because their aggregator missed its tier quorum.
	Unavailable       int
	Crashed           int
	DeadlineMisses    int
	SubtreeDrops      int
	SubtreeDropLeaves int
	// Tree traffic: partial frames shipped tier-to-tier and their bytes.
	Partials  int
	WireBytes int64
	// TotalWeight is the committed integer example weight.
	TotalWeight int64
	// EnergyJ is the fleet's summed round energy (training + radio), summed
	// per shard and merged in shard order — workers-independent.
	EnergyJ float64
	// VirtualSeconds is the round's simulated duration (slowest surviving
	// path to the root); DeadlineSeconds is the per-client deadline used.
	VirtualSeconds  float64
	DeadlineSeconds float64
	// SpineBytes is one full spine's accumulator working set (worker tiers +
	// merge tiers + root) — O(depth·params), independent of Clients. Each
	// concurrent worker holds its own copy of the tiers-below-the-shard
	// slice, so total memory scales with min(Workers, shards), never fleet
	// size.
	SpineBytes int64
}

// accumulate folds o's additive counters into s — the shard-merge reduction,
// applied in shard index order so float sums stay workers-independent.
func (s *RoundStats) accumulate(o *RoundStats) {
	s.Unavailable += o.Unavailable
	s.Crashed += o.Crashed
	s.DeadlineMisses += o.DeadlineMisses
	s.SubtreeDrops += o.SubtreeDrops
	s.SubtreeDropLeaves += o.SubtreeDropLeaves
	s.Partials += o.Partials
	s.WireBytes += o.WireBytes
	s.EnergyJ += o.EnergyJ
}

// Engine simulates rounds over one fleet. Not safe for concurrent use (one
// RunRound at a time; the engine parallelizes internally).
type Engine struct {
	cfg      Config
	depth    int // root aggregator tier; spine holds tiers 0..depth
	deadline float64
	hasFault bool // false when cfg.Fault is the NopPolicy: skip Decide entirely
	// fused marks the default synthetic workload: the leaf fold runs the
	// affine update inside the exact decomposition loop (AddScaledAffine)
	// instead of materializing a scratch vector per client.
	fused bool
	// decomps, when non-nil, is the fused path's per-round decomposition
	// cache: entry k memoizes combo k's exact limb deltas against the current
	// global model (refreshed at the top of RunRound, then read-only across
	// workers). FlatRound deliberately ignores it, so the oracle exercises an
	// independent fold path.
	decomps []exact.Decomp
	// chaosMid caches the availability draws' hash prefix for ChaosSeed.
	chaosMid faultinject.FleetSeedMid

	global []float64
	sum    []float64

	rootVec *exact.Vec

	// Shard layout — a pure function of (Clients, Fanout). Tier shardTier
	// subtrees (shardSpan leaves each) are the unit of parallel work.
	shardTier int
	shardSpan int
	numShards int
	shardOuts []shardOut

	// mergeCtx walks tiers shardTier+1..depth single-threaded, fetching
	// shard results in index order; worker contexts (pooled in ctxFree) walk
	// tiers 0..shardTier inside one shard.
	mergeCtx *simCtx
	ctxMu    sync.Mutex
	ctxFree  []*simCtx

	// shardRunner overrides shard dispatch; tests inject seeded permutations
	// of shard completion order here. nil dispatches on the parallel pool.
	shardRunner func(n int, run func(s int))

	round int
	tc    obs.TraceContext
	stats RoundStats
	err   error
}

// New validates the config and builds an engine with a deterministic initial
// model.
func New(cfg Config) (*Engine, error) {
	fused := cfg.Update == nil
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	depth := 0
	for spanPow(cfg.Fanout, depth+1, cfg.Clients) < cfg.Clients {
		depth++
	}
	e := &Engine{
		cfg:     cfg,
		depth:   depth,
		global:  make([]float64, cfg.Dim),
		sum:     make([]float64, cfg.Dim),
		rootVec: exact.NewVec(cfg.Dim),
	}
	_, nop := cfg.Fault.(faultinject.NopPolicy)
	e.hasFault = !nop
	e.fused = fused
	if fused && cfg.Clients >= decompMinClients &&
		updatePeriod*cfg.Dim*12 <= decompMaxBytes {
		e.decomps = make([]exact.Decomp, updatePeriod)
	}
	e.chaosMid = faultinject.NewFleetSeedMid(cfg.ChaosSeed)
	for j := range e.global {
		e.global[j] = float64(j%17)/16 + 0.5
	}
	e.deadline = cfg.DeadlineSeconds
	if e.deadline == 0 {
		e.deadline = cfg.DeadlineRatio * float64(cfg.Jobs) * cfg.Population.SlowestSecPerJob()
	}

	// Shard at the highest tier with at least minShards subtrees, falling
	// back to tier 0 (≥ 2 nodes whenever depth ≥ 1). Workers never enter
	// this choice: the same fleet always shards the same way.
	e.shardTier = 0
	if depth > 0 {
		for t := depth - 1; t > 0; t-- {
			span := spanPow(cfg.Fanout, t+1, cfg.Clients)
			if (cfg.Clients+span-1)/span >= minShards {
				e.shardTier = t
				break
			}
		}
	}
	e.shardSpan = spanPow(cfg.Fanout, e.shardTier+1, cfg.Clients)
	e.numShards = (cfg.Clients + e.shardSpan - 1) / e.shardSpan
	e.shardOuts = make([]shardOut, e.numShards)

	e.mergeCtx = &simCtx{
		e: e, floor: e.shardTier, fetch: e.fetchShard,
		direct: true, stats: &e.stats,
		spine: make([]*exact.Vec, depth+1),
	}
	for t := e.shardTier + 1; t <= depth; t++ {
		e.mergeCtx.spine[t] = exact.NewVec(cfg.Dim)
	}
	return e, nil
}

// Depth returns the root aggregator tier (leaves fold into tier 0).
func (e *Engine) Depth() int { return e.depth }

// Deadline returns the per-client round deadline in seconds.
func (e *Engine) Deadline() float64 { return e.deadline }

// Shards returns the parallel shard layout: how many tier-shardTier subtrees
// a round fans out, and how many leaves each covers.
func (e *Engine) Shards() (count, span int) { return e.numShards, e.shardSpan }

// Global returns a copy of the current global model.
func (e *Engine) Global() []float64 { return append([]float64(nil), e.global...) }

// SetGlobal replaces the global model (length must equal Dim).
func (e *Engine) SetGlobal(g []float64) error {
	if len(g) != e.cfg.Dim {
		return fmt.Errorf("fleet: model length %d, want %d", len(g), e.cfg.Dim)
	}
	copy(e.global, g)
	return nil
}

// SpineBytes reports one full spine's accumulator working set: the worker
// tiers 0..shardTier, the merge tiers shardTier+1..depth and the root — the
// quantity that must stay O(depth · params). See RoundStats.SpineBytes for
// how per-worker copies scale.
func (e *Engine) SpineBytes() int64 {
	return exact.VecBytes(e.cfg.Dim) * int64(e.depth+2)
}

// spanPow returns min(fanout^exp, n) without overflow.
func spanPow(fanout, exp, n int) int {
	s := 1
	for k := 0; k < exp; k++ {
		if s > n/fanout {
			return n
		}
		s *= fanout
	}
	if s > n {
		return n
	}
	return s
}

// leafResult is one simulated client's round outcome.
type leafResult struct {
	ok         bool
	completeAt float64 // seconds after round start the update arrives
}

// nodeResult is one aggregator subtree's outcome.
type nodeResult struct {
	ok         bool
	sum        exact.Serialized
	weight     int64
	survivors  int
	completeAt float64
}

// shardOut is one shard's slot in the indexed result array: its subtree
// result (sum deep-copied out of the worker context), its stats partial and
// its buffered ledger events. Slots are reused across rounds, so steady-state
// shard dispatch allocates nothing.
type shardOut struct {
	res    nodeResult
	sum    exact.Serialized
	stats  RoundStats
	events []ledger.Event
	err    error
}

// simCtx is one simulation walker: a spine slice, a scratch update arena and
// pooled partial-frame codec state. Worker contexts (floor -1 … fetch nil)
// run a whole shard subtree; the engine's single merge context intercepts
// tier `floor` node visits and fetches the corresponding shard slot instead,
// appending ledger events directly (`direct`) since it runs single-threaded
// in DFS order.
type simCtx struct {
	e       *Engine
	spine   []*exact.Vec // indexed by tier; merge ctx leaves ≤ floor nil
	scratch []float64
	buf     bytes.Buffer
	ser     exact.Serialized
	dec     fl.PartialAggregate

	floor  int
	fetch  func(lo int) nodeResult
	direct bool

	stats  *RoundStats
	events []ledger.Event
	err    error
}

// newWorkerCtx builds a context able to simulate one shard (tiers
// 0..shardTier plus leaves).
func (e *Engine) newWorkerCtx() *simCtx {
	c := &simCtx{
		e:       e,
		spine:   make([]*exact.Vec, e.shardTier+1),
		scratch: make([]float64, e.cfg.Dim),
		floor:   -1,
	}
	for t := range c.spine {
		c.spine[t] = exact.NewVec(e.cfg.Dim)
	}
	return c
}

func (e *Engine) getCtx() *simCtx {
	e.ctxMu.Lock()
	if k := len(e.ctxFree); k > 0 {
		c := e.ctxFree[k-1]
		e.ctxFree = e.ctxFree[:k-1]
		e.ctxMu.Unlock()
		return c
	}
	e.ctxMu.Unlock()
	return e.newWorkerCtx()
}

func (e *Engine) putCtx(c *simCtx) {
	e.ctxMu.Lock()
	e.ctxFree = append(e.ctxFree, c)
	e.ctxMu.Unlock()
}

func (c *simCtx) fail(err error) {
	if c.direct {
		c.e.fail(err)
	} else if c.err == nil {
		c.err = err
	}
}

// ledgerAppend journals ev: directly for the merge context (it already runs
// in canonical DFS order), buffered for worker contexts — the merge phase
// replays shard buffers in shard index order, so the journal is byte-
// identical to the serial walk at any worker count.
func (c *simCtx) ledgerAppend(ev ledger.Event) {
	if c.e.cfg.Ledger == nil {
		return
	}
	if c.direct {
		c.e.cfg.Ledger.Append(ev)
	} else {
		c.events = append(c.events, ev)
	}
}

// simulateLeaf prices client i's round: availability and chaos draws, then
// downlink + Jobs·SecPerJob + uplink against the deadline. Energy is charged
// for every phase the device actually ran, even when the update is lost.
// Every draw is a pure function of (seed, i, round) — scheduling-independent.
func (c *simCtx) simulateLeaf(i int) leafResult {
	e := c.e
	spec := e.cfg.Population.Client(i)
	var dec faultinject.Decision
	if e.hasFault {
		dec = e.cfg.Fault.Decide(faultinject.Point{
			Layer: faultinject.LayerFleet, Client: device.ClientID(i),
			Round: e.round, Attempt: drawChaos,
		})
	}
	if dec.Drop {
		c.stats.Unavailable++
		return leafResult{}
	}
	if e.chaosMid.Client(i).Unit(e.round, drawAvailability) >= spec.Availability {
		c.stats.Unavailable++
		return leafResult{}
	}

	frame := float64(8*e.cfg.Dim + wireOverheadBytes)
	down := frame / spec.DownlinkBps
	compute := float64(e.cfg.Jobs)*spec.SecPerJob + dec.Delay.Seconds()
	up := frame / spec.UplinkBps

	if dec.Crash {
		// Trained, died before reporting: compute energy spent, no uplink.
		c.stats.Crashed++
		c.stats.EnergyJ += compute*spec.PowerBusyW + down*spec.PowerIdleW
		return leafResult{}
	}
	total := down + compute + up
	c.stats.EnergyJ += compute*spec.PowerBusyW + (down+up)*spec.PowerIdleW
	if dec.Timeout || total > e.deadline {
		c.stats.DeadlineMisses++
		return leafResult{}
	}
	return leafResult{ok: true, completeAt: total}
}

// simulateNode runs the tier-t aggregator covering leaves [lo, hi) and every
// subtree below it, depth-first. The tier's spine accumulator is reused by
// every node of the tier in turn — the DFS guarantees at most one is open per
// context. On the merge context, visits at the shard tier resolve to the
// precomputed shard slots instead of recursing.
func (c *simCtx) simulateNode(t, lo, hi int) nodeResult {
	if t == c.floor && c.fetch != nil {
		return c.fetch(lo)
	}
	e := c.e
	vec := c.spine[t]
	vec.Reset()
	var weight int64
	arrived, attempted, survivors := 0, 0, 0
	latest := 0.0
	childSpan := spanPow(e.cfg.Fanout, t, e.cfg.Clients)
	for clo := lo; clo < hi; clo += childSpan {
		attempted++
		if t == 0 {
			lr := c.simulateLeaf(clo)
			if !lr.ok {
				continue
			}
			var w int64
			if e.fused {
				scale, shift, fw := defaultUpdateParams(clo)
				if e.decomps != nil {
					vec.AddDecomp(&e.decomps[clo%updatePeriod])
				} else {
					vec.AddScaledAffine(float64(fw), scale, shift, e.global)
				}
				w = fw
			} else {
				w = int64(e.cfg.Update(clo, e.global, c.scratch))
				if w < 1 {
					c.fail(fmt.Errorf("fleet: client %d returned weight %d < 1", clo, w))
					continue
				}
				vec.AddScaled(float64(w), c.scratch)
			}
			weight += w
			arrived++
			survivors++
			if lr.completeAt > latest {
				latest = lr.completeAt
			}
			continue
		}
		chi := clo + childSpan
		if chi > hi {
			chi = hi
		}
		res := c.simulateNode(t-1, clo, chi)
		if res.completeAt > latest {
			latest = res.completeAt
		}
		if !res.ok {
			continue
		}
		if err := vec.Absorb(res.sum); err != nil {
			c.fail(fmt.Errorf("fleet: tier %d absorb: %w", t, err))
			continue
		}
		weight += res.weight
		arrived++
		survivors += res.survivors
	}

	node := lo / spanPow(e.cfg.Fanout, t+1, e.cfg.Clients)
	required := 0
	if e.cfg.TierQuorum > 0 {
		required = int(math.Ceil(e.cfg.TierQuorum * float64(attempted)))
	}
	if arrived == 0 || arrived < required {
		if required > 0 && arrived < required {
			c.stats.SubtreeDrops++
			c.stats.SubtreeDropLeaves += survivors
			c.ledgerAppend(ledger.Event{
				Kind: ledger.KindSubtreeDrop, Round: e.round, TraceID: e.tc.TraceID,
				Tier: t, Node: node, Survivors: arrived, Selected: attempted,
				Detail: fmt.Sprintf("quorum %d/%d", arrived, required),
			})
		}
		return nodeResult{completeAt: latest}
	}

	// Ship the partial through the real wire path: the bytes a distributed
	// tier deployment would move are the bytes we account. Serialize target,
	// frame buffer and decode target are all pooled on the context, so a
	// node close allocates nothing in steady state. The decoded sum aliases
	// c.dec and is consumed (absorbed or copied) before the next close.
	vec.SerializeInto(&c.ser)
	pa := fl.PartialAggregate{
		Round: e.round, Tier: t, Node: node,
		LeafLo: lo, LeafHi: hi - 1,
		Survivors: survivors, Weight: weight,
		Sum: c.ser, Trace: e.tc,
	}
	c.buf.Reset()
	if err := fl.EncodePartialAggregate(&c.buf, pa); err != nil {
		c.fail(fmt.Errorf("fleet: tier %d node %d encode: %w", t, node, err))
		return nodeResult{completeAt: latest}
	}
	wire := int64(c.buf.Len())
	if err := fl.DecodePartialAggregateInto(&c.buf, &c.dec); err != nil {
		c.fail(fmt.Errorf("fleet: tier %d node %d decode: %w", t, node, err))
		return nodeResult{completeAt: latest}
	}
	c.stats.Partials++
	c.stats.WireBytes += wire
	c.ledgerAppend(ledger.Event{
		Kind: ledger.KindPartial, Round: e.round, TraceID: e.tc.TraceID,
		Tier: t, Node: node, Survivors: arrived, Selected: attempted,
		Weight: weight, WireTxBytes: wire,
	})
	return nodeResult{
		ok: true, sum: c.dec.Sum, weight: c.dec.Weight, survivors: survivors,
		completeAt: latest + e.cfg.TierLatencySeconds,
	}
}

func (e *Engine) fail(err error) {
	if e.err == nil {
		e.err = err
	}
}

func (e *Engine) ledgerAppend(ev ledger.Event) {
	if e.cfg.Ledger != nil {
		e.cfg.Ledger.Append(ev)
	}
}

// runShards simulates every shard subtree, filling e.shardOuts. Execution
// order is arbitrary (pool scheduling, or a test-injected permutation); the
// indexed slots make the merge phase deterministic regardless.
func (e *Engine) runShards() {
	n := e.cfg.Clients
	run := func(s int) {
		ctx := e.getCtx()
		out := &e.shardOuts[s]
		out.stats = RoundStats{}
		ctx.stats = &out.stats
		ctx.events = out.events[:0]
		ctx.err = nil
		lo := s * e.shardSpan
		hi := lo + e.shardSpan
		if hi > n {
			hi = n
		}
		res := ctx.simulateNode(e.shardTier, lo, hi)
		if res.ok {
			// res.sum aliases ctx.dec; copy it into the shard's own slot so
			// the context can move on to another shard.
			copySerializedInto(&out.sum, res.sum)
			res.sum = out.sum
		} else {
			res.sum = exact.Serialized{}
		}
		out.res = res
		out.events = ctx.events
		out.err = ctx.err
		ctx.stats, ctx.events, ctx.err = nil, nil, nil
		e.putCtx(ctx)
	}
	if e.shardRunner != nil {
		e.shardRunner(e.numShards, run)
		return
	}
	parallel.ForChunkMax(e.numShards, e.cfg.Workers, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			run(s)
		}
	})
}

// fetchShard is the merge context's shard-tier resolver: it folds shard
// lo/shardSpan's stats into the round stats, replays its buffered ledger
// events (the deterministic sequencer — merge order is DFS order, whatever
// order the shards completed in), surfaces its first error and returns its
// subtree result.
func (e *Engine) fetchShard(lo int) nodeResult {
	out := &e.shardOuts[lo/e.shardSpan]
	if out.err != nil {
		e.fail(out.err)
	}
	e.stats.accumulate(&out.stats)
	if e.cfg.Ledger != nil {
		for _, ev := range out.events {
			e.cfg.Ledger.Append(ev)
		}
	}
	return out.res
}

// copySerializedInto deep-copies src into dst, reusing dst.Limbs capacity.
func copySerializedInto(dst *exact.Serialized, src exact.Serialized) {
	limbs := dst.Limbs[:0]
	if cap(limbs) < len(src.Limbs) {
		limbs = make([]uint64, 0, len(src.Limbs))
	}
	*dst = src
	dst.Limbs = append(limbs, src.Limbs...)
	if src.Specials != nil {
		dst.Specials = append([]uint8(nil), src.Specials...)
	}
}

// RunRound simulates one virtual-time round over the whole fleet, commits the
// new global model, and advances the virtual clock by the round's duration.
// Shards run concurrently on the parallel pool (bounded by Config.Workers);
// everything committed — model bits, stats, ledger bytes — is identical at
// any width.
func (e *Engine) RunRound() (RoundStats, error) {
	e.round++
	e.err = nil
	n := e.cfg.Clients
	e.tc = obs.MintTrace(e.cfg.Seed, e.round)
	e.stats = RoundStats{
		Round: e.round, Clients: n,
		DeadlineSeconds: e.deadline, SpineBytes: e.SpineBytes(),
	}
	e.ledgerAppend(ledger.Event{
		Kind: ledger.KindRoundBegin, Round: e.round, TraceID: e.tc.TraceID,
		Selected: n, Deadline: e.deadline,
	})

	if e.decomps != nil {
		// Refresh the combo cache against this round's model before the
		// workers start: single-threaded here, read-only during the fan-out.
		for k := range e.decomps {
			scale, shift, w := defaultUpdateParams(k)
			e.decomps[k].From(float64(w), scale, shift, e.global)
		}
	}
	e.runShards()
	root := e.mergeCtx.simulateNode(e.depth, 0, n)
	if e.err != nil {
		e.abort(e.err.Error())
		return e.stats, e.err
	}
	required := int(math.Ceil(e.cfg.Quorum * float64(n)))
	switch {
	case !root.ok || root.weight == 0:
		err := fmt.Errorf("fleet: round %d: no surviving aggregate", e.round)
		e.abort(err.Error())
		return e.stats, err
	case root.survivors < required:
		err := fmt.Errorf("fleet: round %d: %d survivors below quorum %d", e.round, root.survivors, required)
		e.abort(err.Error())
		return e.stats, err
	}

	e.rootVec.Reset()
	if err := e.rootVec.Absorb(root.sum); err != nil {
		e.abort(err.Error())
		return e.stats, fmt.Errorf("fleet: round %d: root absorb: %w", e.round, err)
	}
	e.rootVec.RoundTo(e.sum)
	tw := float64(root.weight)
	for j := range e.global {
		e.global[j] = e.sum[j] / tw
	}

	e.stats.Survivors = root.survivors
	e.stats.Dropped = n - root.survivors
	e.stats.TotalWeight = root.weight
	e.stats.VirtualSeconds = root.completeAt + e.cfg.TierLatencySeconds
	e.cfg.Clock.Advance(time.Duration(e.stats.VirtualSeconds * float64(time.Second)))

	e.cfg.Sink.Count(obs.MetricFleetClients, float64(n))
	e.cfg.Sink.Count(obs.MetricFleetVirtualS, e.stats.VirtualSeconds)
	e.cfg.Sink.Count(obs.MetricFleetEnergy, e.stats.EnergyJ)
	e.cfg.Sink.Count(obs.MetricFleetMisses, float64(e.stats.DeadlineMisses))
	e.cfg.Sink.Count(obs.MetricFleetDropped, float64(e.stats.Dropped))
	e.ledgerAppend(ledger.Event{
		Kind: ledger.KindCommit, Round: e.round, TraceID: e.tc.TraceID,
		Selected: n, Survivors: root.survivors, Weight: root.weight,
		LatencySeconds: e.stats.VirtualSeconds, EnergyJoules: e.stats.EnergyJ,
	})
	return e.stats, nil
}

func (e *Engine) abort(detail string) {
	e.ledgerAppend(ledger.Event{
		Kind: ledger.KindAbort, Round: e.round, TraceID: e.tc.TraceID,
		Detail: detail,
	})
}

// FlatRound is the reference oracle: it simulates the *next* round's leaves
// with draws identical to what RunRound will use, folds every survivor into a
// single flat exact accumulator in index order — no tree, no partial frames,
// no shards — and returns the model that fold would commit plus its total
// weight. It does not mutate engine state. With TierQuorum 0 (no subtree
// drops) the subsequently committed RunRound model must be bit-identical.
func (e *Engine) FlatRound() ([]float64, int64, error) {
	savedStats, savedRound, savedErr := e.stats, e.round, e.err
	defer func() { e.stats, e.round, e.err = savedStats, savedRound, savedErr }()
	e.round++
	e.stats = RoundStats{}
	e.err = nil
	ctx := &simCtx{
		e: e, scratch: make([]float64, e.cfg.Dim),
		floor: -1, stats: &e.stats,
	}

	acc := exact.NewVec(e.cfg.Dim)
	var weight int64
	for i := 0; i < e.cfg.Clients; i++ {
		lr := ctx.simulateLeaf(i)
		if !lr.ok {
			continue
		}
		var w int64
		if e.fused {
			scale, shift, fw := defaultUpdateParams(i)
			acc.AddScaledAffine(float64(fw), scale, shift, e.global)
			w = fw
		} else {
			w = int64(e.cfg.Update(i, e.global, ctx.scratch))
			if w < 1 {
				return nil, 0, fmt.Errorf("fleet: client %d returned weight %d < 1", i, w)
			}
			acc.AddScaled(float64(w), ctx.scratch)
		}
		weight += w
	}
	if weight == 0 {
		return nil, 0, fmt.Errorf("fleet: flat round %d: no survivors", e.round)
	}
	out := make([]float64, e.cfg.Dim)
	acc.RoundTo(out)
	tw := float64(weight)
	for j := range out {
		out[j] /= tw
	}
	return out, weight, nil
}
