package device

import (
	"fmt"
	"math"
	"math/rand"
)

// Measurement is one noisy observation of a configuration's per-minibatch
// performance, as a real performance observer (CUDA event timers + INA3221
// power rails) would report it.
type Measurement struct {
	Config  Config
	Latency float64 // seconds per minibatch
	Energy  float64 // Joules per minibatch
}

// NoiseModel controls measurement error. Errors are multiplicative lognormal
// and shrink with the square root of the observation duration — short
// transient measurements are unreliable because the board's voltage rails
// have not settled, which is exactly why the paper keeps each exploration
// running for at least τ seconds (§4.2, workload assignment).
type NoiseModel struct {
	// LatencySigma and EnergySigma are the relative standard deviations at
	// the reference duration.
	LatencySigma float64
	EnergySigma  float64
	// RefDuration is the observation length at which the base sigmas
	// apply (the paper's τ, default 5 s).
	RefDuration float64
	// MaxInflation caps the error growth for very short observations.
	MaxInflation float64
}

// DefaultNoise is the noise model used throughout the evaluation.
func DefaultNoise() NoiseModel {
	return NoiseModel{
		LatencySigma: 0.015,
		EnergySigma:  0.030,
		RefDuration:  5.0,
		MaxInflation: 5.0,
	}
}

// inflation returns the sigma multiplier for an observation of the given
// duration.
func (n NoiseModel) inflation(duration float64) float64 {
	if duration <= 0 {
		return n.MaxInflation
	}
	f := math.Sqrt(n.RefDuration / duration)
	if f < 1 {
		f = 1
	}
	if f > n.MaxInflation {
		f = n.MaxInflation
	}
	return f
}

// Meter observes a device's performance with realistic measurement noise.
// It is the simulated counterpart of the paper's performance observer
// (module 2 in Figure 8).
type Meter struct {
	dev   *Device
	noise NoiseModel
	rng   *rand.Rand
}

// NewMeter creates a meter over dev with the given noise model, seeded
// deterministically.
func NewMeter(dev *Device, noise NoiseModel, seed int64) *Meter {
	return &Meter{dev: dev, noise: noise, rng: rand.New(rand.NewSource(seed))}
}

// Measure reports the observed per-minibatch latency and energy of running
// workload w under configuration c for roughly `duration` seconds. Longer
// observations yield lower-variance estimates.
func (m *Meter) Measure(w Workload, c Config, duration float64) (Measurement, error) {
	lat, energy, err := m.dev.Perf(w, c)
	if err != nil {
		return Measurement{}, err
	}
	inf := m.noise.inflation(duration)
	lat *= math.Exp(m.noise.LatencySigma * inf * m.rng.NormFloat64())
	energy *= math.Exp(m.noise.EnergySigma * inf * m.rng.NormFloat64())
	return Measurement{Config: c, Latency: lat, Energy: energy}, nil
}

// Validate checks the noise model's parameters.
func (n NoiseModel) Validate() error {
	if n.LatencySigma < 0 || n.EnergySigma < 0 {
		return fmt.Errorf("device: negative noise sigma (%v, %v)", n.LatencySigma, n.EnergySigma)
	}
	if n.RefDuration <= 0 {
		return fmt.Errorf("device: non-positive reference duration %v", n.RefDuration)
	}
	if n.MaxInflation < 1 {
		return fmt.Errorf("device: max inflation %v must be ≥ 1", n.MaxInflation)
	}
	return nil
}
