package device

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSpaceSizesMatchTable1(t *testing.T) {
	if got := JetsonAGX().Space().Size(); got != 2100 {
		t.Errorf("AGX space size = %d, want 2100", got)
	}
	if got := JetsonTX2().Space().Size(); got != 936 {
		t.Errorf("TX2 space size = %d, want 936", got)
	}
}

func TestSpaceEndpointsMatchTable1(t *testing.T) {
	agx := JetsonAGX().Space()
	checks := []struct {
		name   string
		table  []Freq
		lo, hi Freq
		steps  int
	}{
		{"agx cpu", agx.CPU, 0.42, 2.26, 25},
		{"agx gpu", agx.GPU, 0.11, 1.38, 14},
		{"agx mem", agx.Mem, 0.20, 2.13, 6},
	}
	tx2 := JetsonTX2().Space()
	checks = append(checks,
		struct {
			name   string
			table  []Freq
			lo, hi Freq
			steps  int
		}{"tx2 cpu", tx2.CPU, 0.34, 2.03, 12},
		struct {
			name   string
			table  []Freq
			lo, hi Freq
			steps  int
		}{"tx2 gpu", tx2.GPU, 0.11, 1.30, 13},
		struct {
			name   string
			table  []Freq
			lo, hi Freq
			steps  int
		}{"tx2 mem", tx2.Mem, 0.41, 1.87, 6},
	)
	for _, c := range checks {
		if len(c.table) != c.steps {
			t.Errorf("%s: %d steps, want %d", c.name, len(c.table), c.steps)
		}
		if c.table[0] != c.lo || c.table[len(c.table)-1] != c.hi {
			t.Errorf("%s: range [%v, %v], want [%v, %v]", c.name, c.table[0], c.table[len(c.table)-1], c.lo, c.hi)
		}
	}
}

func TestSpaceRoundTrip(t *testing.T) {
	s := JetsonAGX().Space()
	for i := 0; i < s.Size(); i++ {
		cfg, err := s.Config(i)
		if err != nil {
			t.Fatal(err)
		}
		back, err := s.Index(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if back != i {
			t.Fatalf("round trip %d → %+v → %d", i, cfg, back)
		}
	}
	if _, err := s.Config(-1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := s.Config(s.Size()); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := s.Index(Config{CPU: 9, GPU: 9, Mem: 9}); err == nil {
		t.Error("foreign config accepted")
	}
}

func TestSpaceNormalize(t *testing.T) {
	s := JetsonAGX().Space()
	nmin, err := s.Normalize(s.Min())
	if err != nil {
		t.Fatal(err)
	}
	nmax, err := s.Normalize(s.Max())
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 3; d++ {
		if nmin[d] != 0 {
			t.Errorf("Normalize(min)[%d] = %v, want 0", d, nmin[d])
		}
		if nmax[d] != 1 {
			t.Errorf("Normalize(max)[%d] = %v, want 1", d, nmax[d])
		}
	}
}

func TestSpaceValidate(t *testing.T) {
	if err := JetsonAGX().Space().Validate(); err != nil {
		t.Errorf("AGX space invalid: %v", err)
	}
	bad := Space{CPU: []Freq{1, 1}, GPU: []Freq{1}, Mem: []Freq{1}}
	if err := bad.Validate(); err == nil {
		t.Error("non-ascending table accepted")
	}
	if err := (Space{}).Validate(); err == nil {
		t.Error("empty space accepted")
	}
}

func TestCalibrationMatchesTable2Tmin(t *testing.T) {
	// T_min = T(x_max) · W must reproduce Table 2 per device and task.
	tests := []struct {
		dev  *Device
		w    Workload
		jobs int
		tmin float64
	}{
		{JetsonAGX(), ViT, 200, 37.2},
		{JetsonAGX(), ResNet50, 180, 46.9},
		{JetsonAGX(), LSTM, 160, 46.1},
		{JetsonTX2(), ViT, 75, 36.0},
		{JetsonTX2(), ResNet50, 60, 49.2},
		{JetsonTX2(), LSTM, 80, 55.6},
	}
	for _, tt := range tests {
		lat, err := tt.dev.Latency(tt.w, tt.dev.Space().Max())
		if err != nil {
			t.Fatal(err)
		}
		got := lat * float64(tt.jobs)
		if math.Abs(got-tt.tmin)/tt.tmin > 1e-9 {
			t.Errorf("%s/%s: T_min = %v, want %v", tt.dev.Name(), tt.w, got, tt.tmin)
		}
	}
}

func TestLatencyMonotoneInEachAxis(t *testing.T) {
	// Raising any single clock never slows the job down.
	for _, dev := range []*Device{JetsonAGX(), JetsonTX2()} {
		s := dev.Space()
		for _, w := range Workloads() {
			for _, base := range []Config{s.Min(), s.Max(), {CPU: s.CPU[len(s.CPU)/2], GPU: s.GPU[len(s.GPU)/2], Mem: s.Mem[len(s.Mem)/2]}} {
				prev := math.Inf(1)
				for _, f := range s.CPU {
					c := base
					c.CPU = f
					lat, err := dev.Latency(w, c)
					if err != nil {
						t.Fatal(err)
					}
					if lat > prev+1e-12 {
						t.Fatalf("%s/%s: latency rose with CPU clock at %+v", dev.Name(), w, c)
					}
					prev = lat
				}
				prev = math.Inf(1)
				for _, f := range s.GPU {
					c := base
					c.GPU = f
					lat, err := dev.Latency(w, c)
					if err != nil {
						t.Fatal(err)
					}
					if lat > prev+1e-12 {
						t.Fatalf("%s/%s: latency rose with GPU clock at %+v", dev.Name(), w, c)
					}
					prev = lat
				}
			}
		}
	}
}

func TestPerfPositiveEverywhere(t *testing.T) {
	dev := JetsonAGX()
	s := dev.Space()
	for _, w := range Workloads() {
		for i := 0; i < s.Size(); i += 7 {
			cfg, err := s.Config(i)
			if err != nil {
				t.Fatal(err)
			}
			lat, energy, err := dev.Perf(w, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if lat <= 0 || energy <= 0 || math.IsNaN(lat) || math.IsNaN(energy) {
				t.Fatalf("%s at %+v: lat=%v energy=%v", w, cfg, lat, energy)
			}
		}
	}
}

func TestUnknownWorkloadRejected(t *testing.T) {
	dev := JetsonAGX()
	if _, err := dev.Latency("bert", dev.Space().Max()); err == nil {
		t.Error("unknown workload accepted by Latency")
	}
	if _, err := dev.Energy("bert", dev.Space().Max()); err == nil {
		t.Error("unknown workload accepted by Energy")
	}
	if _, _, err := dev.Perf("bert", dev.Space().Max()); err == nil {
		t.Error("unknown workload accepted by Perf")
	}
}

// Section 2.2 complexity (1): non-linearity. The paper's Figure 3 behaviour:
// with a slow CPU, ViT stops benefiting from faster GPU clocks, and at low
// GPU frequency a slow CPU is more energy-efficient than a fast one while at
// high GPU frequency it is not.
func TestViTBottleneckShift(t *testing.T) {
	dev := JetsonAGX()
	s := dev.Space()
	cfg := func(cpu, gpu Freq) Config { return Config{CPU: cpu, GPU: gpu, Mem: s.Mem[len(s.Mem)-1]} }
	slowCPU, fastCPU := s.CPU[0], s.CPU[len(s.CPU)-1]

	// Speedup from a faster GPU must be much larger when the CPU is fast.
	gpuLo, gpuHi := s.GPU[7], s.GPU[len(s.GPU)-1]
	latFast1, _ := dev.Latency(ViT, cfg(fastCPU, gpuLo))
	latFast2, _ := dev.Latency(ViT, cfg(fastCPU, gpuHi))
	latSlow1, _ := dev.Latency(ViT, cfg(slowCPU, gpuLo))
	latSlow2, _ := dev.Latency(ViT, cfg(slowCPU, gpuHi))
	gainFast := latFast1 / latFast2
	gainSlow := latSlow1 / latSlow2
	if gainFast <= gainSlow {
		t.Errorf("GPU speedup with fast CPU (%.3f) should exceed slow CPU (%.3f): CPU must bottleneck", gainFast, gainSlow)
	}

	// Energy crossover (Figure 3b): at low GPU clock, the slow CPU is more
	// efficient; at the highest GPU clock it is not (and costs ≈2× time).
	const lowGPU = 6
	eSlowLo, _ := dev.Energy(ViT, cfg(slowCPU, s.GPU[lowGPU]))
	eFastLo, _ := dev.Energy(ViT, cfg(fastCPU, s.GPU[lowGPU]))
	if eSlowLo >= eFastLo {
		t.Errorf("at GPU %.2f GHz slow CPU energy %v should beat fast CPU %v", s.GPU[lowGPU], eSlowLo, eFastLo)
	}
	eSlowHi, _ := dev.Energy(ViT, cfg(slowCPU, gpuHi))
	eFastHi, _ := dev.Energy(ViT, cfg(fastCPU, gpuHi))
	if eSlowHi < eFastHi*0.9 {
		t.Errorf("at max GPU clock a slow CPU should save little energy: slow %v vs fast %v", eSlowHi, eFastHi)
	}
	if latSlow2 < latFast2*1.4 {
		t.Errorf("at max GPU clock the slow CPU should cost ≈½ the speed: %v vs %v", latSlow2, latFast2)
	}
}

// Section 2.2 complexity (2): NN-model dependence. Figure 4 behaviour: LSTM's
// latency falls steeply with CPU clock while ViT/ResNet50 stay nearly flat;
// ResNet50's energy rises with CPU clock while LSTM's falls.
func TestModelDependence(t *testing.T) {
	dev := JetsonAGX()
	s := dev.Space()
	mid := Config{GPU: s.GPU[len(s.GPU)-1], Mem: s.Mem[len(s.Mem)-1]}
	lowCPU, highCPU := s.CPU[2], s.CPU[len(s.CPU)-4]

	ratio := func(w Workload) float64 {
		a := mid
		a.CPU = lowCPU
		b := mid
		b.CPU = highCPU
		la, _ := dev.Latency(w, a)
		lb, _ := dev.Latency(w, b)
		return la / lb
	}
	if r := ratio(LSTM); r < 1.6 {
		t.Errorf("LSTM latency should roughly halve with fast CPU, ratio %v", r)
	}
	if r := ratio(ViT); r > 1.5 {
		t.Errorf("ViT latency should be nearly flat vs CPU clock, ratio %v", r)
	}
	if r := ratio(ResNet50); r > 1.4 {
		t.Errorf("ResNet50 latency should be nearly flat vs CPU clock, ratio %v", r)
	}

	energyAt := func(w Workload, cpu Freq) float64 {
		c := mid
		c.CPU = cpu
		e, _ := dev.Energy(w, c)
		return e
	}
	if energyAt(ResNet50, highCPU) <= energyAt(ResNet50, lowCPU) {
		t.Error("ResNet50 energy should increase with CPU clock")
	}
	if energyAt(LSTM, highCPU) >= energyAt(LSTM, lowCPU) {
		t.Error("LSTM energy should decrease with CPU clock")
	}
}

// Section 2.2 complexity (3): hardware dependence. AGX at x_max must beat TX2
// at x_max on every workload, by workload-dependent factors.
func TestHardwareDependence(t *testing.T) {
	agx, tx2 := JetsonAGX(), JetsonTX2()
	for _, w := range Workloads() {
		la, ea, err := agx.Perf(w, agx.Space().Max())
		if err != nil {
			t.Fatal(err)
		}
		lt, et, err := tx2.Perf(w, tx2.Space().Max())
		if err != nil {
			t.Fatal(err)
		}
		if la >= lt {
			t.Errorf("%s: AGX latency %v should beat TX2 %v", w, la, lt)
		}
		if ea >= et {
			t.Errorf("%s: AGX energy %v should beat TX2 %v", w, ea, et)
		}
	}
	// The improvement is not uniform across models (ResNet50 gains most in
	// latency per Figure 5).
	rel := func(w Workload) float64 {
		la, _ := agx.Latency(w, agx.Space().Max())
		lt, _ := tx2.Latency(w, tx2.Space().Max())
		return la / lt
	}
	if !(rel(ResNet50) < rel(ViT)) {
		t.Errorf("ResNet50 latency ratio %v should beat ViT's %v", rel(ResNet50), rel(ViT))
	}
}

func TestDVFSLeverageMatchesPaperHeadline(t *testing.T) {
	// §1: a proper configuration choice yields ≈8× faster training and ≈4×
	// better energy efficiency across the space. Check the spread between
	// the best and worst configurations is of that order.
	dev := JetsonAGX()
	p, err := ProfileAll(dev, ViT)
	if err != nil {
		t.Fatal(err)
	}
	minLat, maxLat := math.Inf(1), 0.0
	minE, maxE := math.Inf(1), 0.0
	for _, pt := range p.Points {
		minLat = math.Min(minLat, pt.Latency)
		maxLat = math.Max(maxLat, pt.Latency)
		minE = math.Min(minE, pt.Energy)
		maxE = math.Max(maxE, pt.Energy)
	}
	if spread := maxLat / minLat; spread < 3 || spread > 40 {
		t.Errorf("latency spread %v not in plausible DVFS range", spread)
	}
	if spread := maxE / minE; spread < 2 || spread > 20 {
		t.Errorf("energy spread %v not in plausible DVFS range", spread)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"jetson-agx", "agx", "jetson-tx2", "tx2"} {
		if _, ok := ByName(name); !ok {
			t.Errorf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("pixel"); ok {
		t.Error("unknown device accepted")
	}
}

func TestMeterDeterministicBySeed(t *testing.T) {
	dev := JetsonAGX()
	cfg := dev.Space().Max()
	a := NewMeter(dev, DefaultNoise(), 42)
	b := NewMeter(dev, DefaultNoise(), 42)
	ma, err := a.Measure(ViT, cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := b.Measure(ViT, cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ma != mb {
		t.Errorf("same seed differs: %+v vs %+v", ma, mb)
	}
}

func TestMeterNoiseShrinksWithDuration(t *testing.T) {
	dev := JetsonAGX()
	cfg := dev.Space().Max()
	trueLat, err := dev.Latency(ViT, cfg)
	if err != nil {
		t.Fatal(err)
	}
	spread := func(duration float64) float64 {
		m := NewMeter(dev, DefaultNoise(), 7)
		var sum float64
		const n = 2000
		for i := 0; i < n; i++ {
			obs, err := m.Measure(ViT, cfg, duration)
			if err != nil {
				t.Fatal(err)
			}
			d := math.Log(obs.Latency / trueLat)
			sum += d * d
		}
		return math.Sqrt(sum / n)
	}
	long, short := spread(5.0), spread(0.2)
	if short < 2*long {
		t.Errorf("short-observation noise (%v) should be much larger than long (%v)", short, long)
	}
}

func TestMeterRejectsUnknownWorkload(t *testing.T) {
	dev := JetsonAGX()
	m := NewMeter(dev, DefaultNoise(), 1)
	if _, err := m.Measure("bert", dev.Space().Max(), 5); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestNoiseModelValidate(t *testing.T) {
	if err := DefaultNoise().Validate(); err != nil {
		t.Errorf("default noise invalid: %v", err)
	}
	bad := []NoiseModel{
		{LatencySigma: -1, EnergySigma: 0, RefDuration: 5, MaxInflation: 1},
		{LatencySigma: 0, EnergySigma: 0, RefDuration: 0, MaxInflation: 1},
		{LatencySigma: 0, EnergySigma: 0, RefDuration: 5, MaxInflation: 0.5},
	}
	for i, n := range bad {
		if err := n.Validate(); err == nil {
			t.Errorf("bad noise model %d accepted", i)
		}
	}
}

func TestProfileFrontProperties(t *testing.T) {
	dev := JetsonAGX()
	for _, w := range Workloads() {
		p, err := ProfileAll(dev, w)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Points) != 2100 {
			t.Fatalf("profile has %d points", len(p.Points))
		}
		front := p.ParetoFront()
		if len(front) < 3 {
			t.Errorf("%s: front has only %d points — model too simple", w, len(front))
		}
		// Front points must be mutually non-dominated and x_max must
		// achieve the minimum latency.
		if got := p.MinLatency(); got <= 0 {
			t.Errorf("min latency %v", got)
		}
		xmaxLat, err := dev.Latency(w, dev.Space().Max())
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(xmaxLat-p.MinLatency()) > 1e-9 {
			t.Errorf("%s: x_max latency %v should be the global minimum %v", w, xmaxLat, p.MinLatency())
		}
	}
}

func TestEnergyScaleInvariantToWorkRescale(t *testing.T) {
	// Property: doubling the compute demand doubles both latency and
	// energy at any configuration (degree-1 homogeneity, the basis of the
	// calibration routine).
	f := func(ci, gi, mi uint8) bool {
		dev := JetsonAGX()
		s := dev.Space()
		cfg := Config{
			CPU: s.CPU[int(ci)%len(s.CPU)],
			GPU: s.GPU[int(gi)%len(s.GPU)],
			Mem: s.Mem[int(mi)%len(s.Mem)],
		}
		wp := dev.workloads[ViT]
		lat1 := dev.latency(wp, cfg)
		e1 := dev.energy(wp, cfg)
		wp.cpuWork *= 2
		wp.gpuWork *= 2
		wp.memWork *= 2
		lat2 := dev.latency(wp, cfg)
		e2 := dev.energy(wp, cfg)
		return math.Abs(lat2-2*lat1) < 1e-9 && math.Abs(e2-2*e1) < 1e-9*math.Max(1, e1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
