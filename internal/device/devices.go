package device

// Frequency tables from Table 1 of the paper. The boards expose discrete
// ladders; the exact intermediate steps are not published, so we interpolate
// linearly between the published endpoints with the published step counts,
// which preserves the space sizes (AGX 25×14×6 = 2100, TX2 12×13×6 = 936).

// JetsonAGX builds the simulated Nvidia Jetson AGX Xavier testbed with
// calibrated models for all three workloads.
//
// Calibration anchors (per minibatch at x_max):
//   - latency: T_min/W from Table 2 (e.g. ViT: 37.2 s / 200 jobs = 0.186 s)
//   - energy: Performant per-round energy from Figures 9–10 divided by W
//     (e.g. ViT: ≈900 J / 200 jobs = 4.5 J), consistent with the Figure 11
//     per-minibatch energy axes.
func JetsonAGX() *Device {
	d := &Device{
		name: "jetson-agx",
		space: Space{
			CPU: freqSteps(0.42, 2.26, 25),
			GPU: freqSteps(0.11, 1.38, 14),
			Mem: freqSteps(0.20, 2.13, 6),
		},
		units: [3]unitParams{
			{fMin: 0.42, fMax: 2.26, vMin: 0.62, vMax: 1.10, dynCoeff: 3.0, idleFrac: 0.30}, // 8-core Carmel CPU
			{fMin: 0.11, fMax: 1.38, vMin: 0.60, vMax: 1.00, dynCoeff: 8.0, idleFrac: 0.30}, // 512-core Volta GPU
			{fMin: 0.20, fMax: 2.13, vMin: 0.60, vMax: 0.90, dynCoeff: 2.0, idleFrac: 0.45}, // LPDDR4x controller
		},
		staticW: 2.0,
	}
	// Relative busy-time mixes at x_max, chosen to reproduce §2.2: ViT and
	// ResNet50 are GPU-bound (flat latency vs CPU clock, Figure 4a) while
	// LSTM is CPU-bound (latency halves as the CPU speeds up). ResNet50
	// adds heavy memory traffic. ViT's 0.28 CPU share puts the CPU↔GPU
	// bottleneck crossover near 1.0 GHz GPU when the CPU runs at its
	// lowest clock (Figure 3a). Absolute scales are set by calibrate.
	d.workloads = map[Workload]workParams{
		ViT:      d.mixToWork(0.28, 1.00, 0.10, 0.20),
		ResNet50: d.mixToWork(0.15, 1.00, 0.35, 0.20),
		LSTM:     d.mixToWork(1.00, 0.40, 0.15, 0.30),
	}
	// Table 2: W = E·N jobs per round; T_min = T(x_max)·W.
	d.calibrate(ViT, 37.2/200, 4.50)      // B=32 E=5 N=40
	d.calibrate(ResNet50, 46.9/180, 6.40) // B=8  E=2 N=90
	d.calibrate(LSTM, 46.1/160, 6.20)     // B=8  E=4 N=40
	return d
}

// JetsonTX2 builds the simulated Nvidia Jetson TX2 testbed.
//
// Energy anchors derive from Figure 5b (AGX energy normalized to TX2: ViT
// 0.85, ResNet50 0.70, LSTM 0.80); latency anchors from Table 2's TX2 T_min
// row. Note the paper's Figure 5a latency ratios are mutually inconsistent
// with Table 2 for LSTM (see EXPERIMENTS.md); we calibrate to Table 2, which
// is the quantity the control loop actually consumes.
func JetsonTX2() *Device {
	d := &Device{
		name: "jetson-tx2",
		space: Space{
			CPU: freqSteps(0.34, 2.03, 12),
			GPU: freqSteps(0.11, 1.30, 13),
			Mem: freqSteps(0.41, 1.87, 6),
		},
		units: [3]unitParams{
			{fMin: 0.34, fMax: 2.03, vMin: 0.64, vMax: 1.14, dynCoeff: 2.4, idleFrac: 0.32}, // Denver2 + A57 CPU
			{fMin: 0.11, fMax: 1.30, vMin: 0.62, vMax: 1.05, dynCoeff: 6.0, idleFrac: 0.32}, // 256-core Pascal GPU
			{fMin: 0.41, fMax: 1.87, vMin: 0.60, vMax: 0.95, dynCoeff: 1.6, idleFrac: 0.48}, // LPDDR4 controller
		},
		staticW: 1.6,
	}
	d.workloads = map[Workload]workParams{
		ViT:      d.mixToWork(0.32, 1.00, 0.12, 0.22),
		ResNet50: d.mixToWork(0.18, 1.00, 0.40, 0.22),
		LSTM:     d.mixToWork(1.00, 0.45, 0.18, 0.32),
	}
	d.calibrate(ViT, 36.0/75, 4.50/0.85)      // B=32 E=5 N=15
	d.calibrate(ResNet50, 49.2/60, 6.40/0.70) // B=8  E=2 N=30
	d.calibrate(LSTM, 55.6/80, 6.20/0.80)     // B=8  E=4 N=20
	return d
}

// ByName returns the simulated device with the given name ("jetson-agx" or
// "jetson-tx2").
func ByName(name string) (*Device, bool) {
	switch name {
	case "jetson-agx", "agx":
		return JetsonAGX(), true
	case "jetson-tx2", "tx2":
		return JetsonTX2(), true
	default:
		return nil, false
	}
}
