package device

import (
	"fmt"
	"math"
)

// Real Jetson boards throttle under sustained load: silicon temperature rises
// with dissipated power and the firmware caps clocks near the limit, so the
// latency/energy landscape BoFL learned while cold drifts as the board heats
// up. The paper's evaluation avoids this regime (bench-mounted boards, short
// rounds); this file models it as an extension so the adaptive controller
// (core.Options.DriftThreshold) can be exercised.

// ThermalModel is a first-order RC thermal model with linear throttling.
type ThermalModel struct {
	// AmbientC is the idle temperature in °C.
	AmbientC float64
	// ThrottleC is where throttling begins; CriticalC where it saturates.
	ThrottleC, CriticalC float64
	// ResistanceCPerW converts steady-state power draw into a temperature
	// rise: T_ss = Ambient + R·P.
	ResistanceCPerW float64
	// TimeConstantS is the RC time constant in seconds.
	TimeConstantS float64
	// MaxSlowdown is the latency multiplier at full throttle.
	MaxSlowdown float64
}

// DefaultThermal is a plausible passively-cooled edge-board model: a
// sustained ≈15 W draw settles around 25+15·3 = 70 °C, well into throttling.
func DefaultThermal() ThermalModel {
	return ThermalModel{
		AmbientC:        25,
		ThrottleC:       60,
		CriticalC:       85,
		ResistanceCPerW: 3.0,
		TimeConstantS:   120,
		MaxSlowdown:     1.6,
	}
}

// Validate checks the model's parameters.
func (m ThermalModel) Validate() error {
	if m.ThrottleC <= m.AmbientC {
		return fmt.Errorf("device: throttle temp %v must exceed ambient %v", m.ThrottleC, m.AmbientC)
	}
	if m.CriticalC <= m.ThrottleC {
		return fmt.Errorf("device: critical temp %v must exceed throttle %v", m.CriticalC, m.ThrottleC)
	}
	if m.ResistanceCPerW <= 0 || m.TimeConstantS <= 0 {
		return fmt.Errorf("device: thermal resistance/time constant must be positive")
	}
	if m.MaxSlowdown < 1 {
		return fmt.Errorf("device: max slowdown %v must be ≥ 1", m.MaxSlowdown)
	}
	return nil
}

// ThermalDevice wraps a Device with mutable thermal state. It is not safe for
// concurrent use (one board, one training loop).
type ThermalDevice struct {
	dev   *Device
	model ThermalModel
	tempC float64
}

// NewThermalDevice wraps dev with the thermal model, starting at ambient.
func NewThermalDevice(dev *Device, model ThermalModel) (*ThermalDevice, error) {
	if dev == nil {
		return nil, fmt.Errorf("device: nil device")
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	return &ThermalDevice{dev: dev, model: model, tempC: model.AmbientC}, nil
}

// Device returns the wrapped (cold) device.
func (t *ThermalDevice) Device() *Device { return t.dev }

// Temperature returns the current silicon temperature in °C.
func (t *ThermalDevice) Temperature() float64 { return t.tempC }

// Reset cools the board back to ambient.
func (t *ThermalDevice) Reset() { t.tempC = t.model.AmbientC }

// slowdown returns the current latency multiplier.
func (t *ThermalDevice) slowdown() float64 {
	frac := (t.tempC - t.model.ThrottleC) / (t.model.CriticalC - t.model.ThrottleC)
	frac = math.Max(0, math.Min(1, frac))
	return 1 + frac*(t.model.MaxSlowdown-1)
}

// Perf returns the latency and energy of one minibatch at the *current*
// temperature. Throttled jobs take longer; their energy grows with the square
// root of the slowdown (lower clocks draw less power, but the static floor
// keeps burning for the extra time).
func (t *ThermalDevice) Perf(w Workload, c Config) (latency, energy float64, err error) {
	lat, e, err := t.dev.Perf(w, c)
	if err != nil {
		return 0, 0, err
	}
	s := t.slowdown()
	return lat * s, e * math.Sqrt(s), nil
}

// RunJob executes one minibatch at the current temperature, then integrates
// the thermal state forward by the job's duration. Returns the (true,
// noise-free) latency and energy of the job.
func (t *ThermalDevice) RunJob(w Workload, c Config) (latency, energy float64, err error) {
	lat, e, err := t.Perf(w, c)
	if err != nil {
		return 0, 0, err
	}
	power := e / lat
	t.Advance(power, lat)
	return lat, e, nil
}

// Advance integrates the first-order thermal model: the board spends
// `duration` seconds dissipating `powerWatts`.
func (t *ThermalDevice) Advance(powerWatts, duration float64) {
	if duration <= 0 {
		return
	}
	tss := t.model.AmbientC + t.model.ResistanceCPerW*math.Max(powerWatts, 0)
	decay := 1 - math.Exp(-duration/t.model.TimeConstantS)
	t.tempC += (tss - t.tempC) * decay
}

// Cool lets the board idle for `duration` seconds (between rounds).
func (t *ThermalDevice) Cool(duration float64) {
	t.Advance(0, duration)
}
