package device

import (
	"bofl/internal/pareto"
)

// ProfilePoint is one entry of an exhaustive offline profile.
type ProfilePoint struct {
	Index   int     `json:"index"`
	Config  Config  `json:"config"`
	Latency float64 `json:"latencySeconds"`
	Energy  float64 `json:"energyJoules"`
}

// Profile is a complete noise-free characterization of a (device, workload)
// pair over the whole DVFS space — the paper's Oracle, obtainable only by
// long-lasting offline profiling.
type Profile struct {
	Device   string         `json:"device"`
	Workload Workload       `json:"workload"`
	Points   []ProfilePoint `json:"points"`
}

// ProfileAll evaluates the true latency and energy of every configuration in
// the device's space for workload w.
func ProfileAll(d *Device, w Workload) (*Profile, error) {
	space := d.Space()
	n := space.Size()
	pts := make([]ProfilePoint, 0, n)
	for i := 0; i < n; i++ {
		cfg, err := space.Config(i)
		if err != nil {
			return nil, err
		}
		lat, energy, err := d.Perf(w, cfg)
		if err != nil {
			return nil, err
		}
		pts = append(pts, ProfilePoint{Index: i, Config: cfg, Latency: lat, Energy: energy})
	}
	return &Profile{Device: d.Name(), Workload: w, Points: pts}, nil
}

// ParetoFront returns the indices (into Points) of the profile's true Pareto
// front over (energy, latency), ascending in energy.
func (p *Profile) ParetoFront() []int {
	objs := make([]pareto.Point, len(p.Points))
	for i, pt := range p.Points {
		objs[i] = pareto.Point{X: pt.Energy, Y: pt.Latency}
	}
	return pareto.FrontIndices(objs)
}

// FrontPoints returns the objective-space Pareto front of the profile.
func (p *Profile) FrontPoints() []pareto.Point {
	idx := p.ParetoFront()
	out := make([]pareto.Point, len(idx))
	for i, j := range idx {
		out[i] = pareto.Point{X: p.Points[j].Energy, Y: p.Points[j].Latency}
	}
	return out
}

// MinLatency returns the profile's smallest per-minibatch latency (achieved
// at or near x_max).
func (p *Profile) MinLatency() float64 {
	best := p.Points[0].Latency
	for _, pt := range p.Points[1:] {
		if pt.Latency < best {
			best = pt.Latency
		}
	}
	return best
}
