package device

import (
	"fmt"
	"math"
)

// The paper argues its approach "can be generally applied to any NN model on
// any hardware" (§2.2). This file provides the builder for that claim: users
// describe a board's frequency ladders, electrical constants and per-workload
// anchors, and get a Device usable everywhere the built-in testbeds are.

// UnitSpec describes one processing unit (CPU, GPU or memory controller).
type UnitSpec struct {
	// Freqs is the unit's discrete clock ladder in GHz, strictly ascending.
	Freqs []Freq
	// VMin / VMax is the operating-voltage range across the ladder.
	VMin, VMax float64
	// DynCoeff is the dynamic power coefficient: P = DynCoeff·f·V(f)².
	DynCoeff float64
	// IdleFrac is the fraction of active power drawn while clock-gated.
	IdleFrac float64
}

func (u UnitSpec) validate(name string) error {
	if len(u.Freqs) == 0 {
		return fmt.Errorf("device: %s has no frequency ladder", name)
	}
	prev := Freq(0)
	for i, f := range u.Freqs {
		if f <= prev {
			return fmt.Errorf("device: %s ladder not strictly ascending at step %d", name, i)
		}
		prev = f
	}
	if u.VMin <= 0 || u.VMax < u.VMin {
		return fmt.Errorf("device: %s voltage range [%v, %v] invalid", name, u.VMin, u.VMax)
	}
	if u.DynCoeff <= 0 {
		return fmt.Errorf("device: %s dynamic coefficient %v must be positive", name, u.DynCoeff)
	}
	if u.IdleFrac < 0 || u.IdleFrac > 1 {
		return fmt.Errorf("device: %s idle fraction %v out of [0,1]", name, u.IdleFrac)
	}
	return nil
}

// WorkloadSpec describes one training workload's demand on the board.
type WorkloadSpec struct {
	// CPUShare, GPUShare and MemShare are the relative busy times of the
	// units at x_max; at least one must be positive (the largest defines
	// the bottleneck at full clocks).
	CPUShare, GPUShare, MemShare float64
	// SerialFrac is the non-overlappable fraction of the units' work.
	SerialFrac float64
	// LatencyAtMax / EnergyAtMax anchor the model: the measured (or
	// estimated) per-minibatch cost at maximum clocks.
	LatencyAtMax, EnergyAtMax float64
}

func (w WorkloadSpec) validate(name Workload) error {
	if w.CPUShare < 0 || w.GPUShare < 0 || w.MemShare < 0 {
		return fmt.Errorf("device: workload %q has negative shares", name)
	}
	if w.CPUShare == 0 && w.GPUShare == 0 && w.MemShare == 0 {
		return fmt.Errorf("device: workload %q has no work at all", name)
	}
	if w.SerialFrac < 0 || w.SerialFrac > 1 {
		return fmt.Errorf("device: workload %q serial fraction %v out of [0,1]", name, w.SerialFrac)
	}
	if w.LatencyAtMax <= 0 || w.EnergyAtMax <= 0 {
		return fmt.Errorf("device: workload %q needs positive latency/energy anchors", name)
	}
	return nil
}

// Spec is a complete custom-device description.
type Spec struct {
	Name          string
	StaticWatts   float64
	CPU, GPU, Mem UnitSpec
	Workloads     map[Workload]WorkloadSpec
}

// NewCustom builds a Device from a spec. The per-workload latency and energy
// anchors are matched exactly at x_max (the same calibration the built-in
// testbeds use).
func NewCustom(spec Spec) (*Device, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("device: custom device needs a name")
	}
	if spec.StaticWatts < 0 || math.IsNaN(spec.StaticWatts) {
		return nil, fmt.Errorf("device: static power %v invalid", spec.StaticWatts)
	}
	if err := spec.CPU.validate("cpu"); err != nil {
		return nil, err
	}
	if err := spec.GPU.validate("gpu"); err != nil {
		return nil, err
	}
	if err := spec.Mem.validate("mem"); err != nil {
		return nil, err
	}
	if len(spec.Workloads) == 0 {
		return nil, fmt.Errorf("device: custom device needs at least one workload")
	}

	toUnit := func(u UnitSpec) unitParams {
		return unitParams{
			fMin:     u.Freqs[0],
			fMax:     u.Freqs[len(u.Freqs)-1],
			vMin:     u.VMin,
			vMax:     u.VMax,
			dynCoeff: u.DynCoeff,
			idleFrac: u.IdleFrac,
		}
	}
	d := &Device{
		name: spec.Name,
		space: Space{
			CPU: append([]Freq(nil), spec.CPU.Freqs...),
			GPU: append([]Freq(nil), spec.GPU.Freqs...),
			Mem: append([]Freq(nil), spec.Mem.Freqs...),
		},
		units:     [3]unitParams{toUnit(spec.CPU), toUnit(spec.GPU), toUnit(spec.Mem)},
		staticW:   spec.StaticWatts,
		workloads: make(map[Workload]workParams, len(spec.Workloads)),
	}
	if err := d.space.Validate(); err != nil {
		return nil, err
	}
	for name, w := range spec.Workloads {
		if err := w.validate(name); err != nil {
			return nil, err
		}
		d.workloads[name] = d.mixToWork(w.CPUShare, w.GPUShare, w.MemShare, w.SerialFrac)
		d.calibrate(name, w.LatencyAtMax, w.EnergyAtMax)
	}
	return d, nil
}
