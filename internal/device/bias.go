package device

import (
	"fmt"
	"math"
)

// ParticipationWeight scores how over-represented a device is in round
// selection under availability- and power-biased participation: the weight is
// availability · busyPowerW^(−bias). bias = 0 reproduces pure
// availability-proportional sampling; positive bias skews selection toward
// low-power devices (an energy-aware server policy), negative bias toward
// high-power ones (the plugged-in, well-provisioned devices real fleets
// over-sample). Feed the result to a weighted selector — it is a relative
// weight, not a probability.
func ParticipationWeight(availability, busyPowerW, bias float64) (float64, error) {
	if availability <= 0 || availability > 1 || math.IsNaN(availability) {
		return 0, fmt.Errorf("device: availability %v must be in (0, 1]", availability)
	}
	if busyPowerW <= 0 || math.IsInf(busyPowerW, 0) || math.IsNaN(busyPowerW) {
		return 0, fmt.Errorf("device: busy power %vW must be positive and finite", busyPowerW)
	}
	if math.IsInf(bias, 0) || math.IsNaN(bias) {
		return 0, fmt.Errorf("device: bias %v must be finite", bias)
	}
	return availability * math.Pow(busyPowerW, -bias), nil
}

// ParticipationWeightFor is ParticipationWeight over a fleet class.
func ParticipationWeightFor(c FleetClass, bias float64) (float64, error) {
	w, err := ParticipationWeight(c.Availability, c.PowerBusyW, bias)
	if err != nil {
		return 0, fmt.Errorf("device: fleet class %s: %w", c.Name, err)
	}
	return w, nil
}
