// Package device simulates the paper's hardware testbeds: Nvidia Jetson AGX
// and Jetson TX2 boards running neural-network training minibatches under
// multi-axis DVFS control.
//
// The real boards are unavailable in this environment, so the package
// substitutes a calibrated analytical model (see DESIGN.md §1):
//
//   - Latency per minibatch is a bottleneck/overlap combination of CPU, GPU
//     and memory-controller work components, each inversely proportional to
//     its unit's clock frequency.
//   - Power is a static floor plus per-unit dynamic power C·f·V(f)² weighted
//     by the unit's duty cycle, with a partial idle draw for gated units.
//   - Measurements carry multiplicative noise that shrinks with observation
//     duration, reproducing the paper's rationale for the τ reference
//     measurement window (§4.2).
//
// Everything BoFL observes — the non-linearity, the NN-model dependence and
// the hardware dependence of §2.2 — emerges from this model, while the
// controller continues to treat T(x) and E(x) as black boxes.
package device

import (
	"fmt"
)

// Freq is a clock frequency in GHz.
type Freq float64

// Config is one DVFS operating point: the clock frequencies of the CPU, GPU
// and memory controller.
type Config struct {
	CPU Freq `json:"cpuGHz"`
	GPU Freq `json:"gpuGHz"`
	Mem Freq `json:"memGHz"`
}

// Space is a device's discrete DVFS configuration space: the cross product of
// the per-unit frequency tables (ascending).
type Space struct {
	CPU []Freq
	GPU []Freq
	Mem []Freq
}

// Size returns the number of distinct configurations in the space.
func (s Space) Size() int { return len(s.CPU) * len(s.GPU) * len(s.Mem) }

// Dims returns the per-axis table lengths in CPU, GPU, Mem order; this is the
// grid layout expected by mobo.HaltonIndices.
func (s Space) Dims() []int { return []int{len(s.CPU), len(s.GPU), len(s.Mem)} }

// Config returns the configuration at flat index i (CPU-major ordering,
// matching Dims).
func (s Space) Config(i int) (Config, error) {
	if i < 0 || i >= s.Size() {
		return Config{}, fmt.Errorf("device: flat index %d out of range [0,%d)", i, s.Size())
	}
	nm, ng := len(s.Mem), len(s.GPU)
	return Config{
		CPU: s.CPU[i/(ng*nm)],
		GPU: s.GPU[(i/nm)%ng],
		Mem: s.Mem[i%nm],
	}, nil
}

// Index returns the flat index of c, which must be composed of exact table
// entries.
func (s Space) Index(c Config) (int, error) {
	ci, gi, mi := -1, -1, -1
	for i, f := range s.CPU {
		if f == c.CPU {
			ci = i
			break
		}
	}
	for i, f := range s.GPU {
		if f == c.GPU {
			gi = i
			break
		}
	}
	for i, f := range s.Mem {
		if f == c.Mem {
			mi = i
			break
		}
	}
	if ci < 0 || gi < 0 || mi < 0 {
		return 0, fmt.Errorf("device: config %+v not in space", c)
	}
	return (ci*len(s.GPU)+gi)*len(s.Mem) + mi, nil
}

// Normalize maps c to [0,1]³ by per-axis table position — the coordinate
// system the GP surrogates operate in.
func (s Space) Normalize(c Config) ([]float64, error) {
	i, err := s.Index(c)
	if err != nil {
		return nil, err
	}
	nm, ng := len(s.Mem), len(s.GPU)
	ci, gi, mi := i/(ng*nm), (i/nm)%ng, i%nm
	norm := func(idx, n int) float64 {
		if n <= 1 {
			return 0
		}
		return float64(idx) / float64(n-1)
	}
	return []float64{norm(ci, len(s.CPU)), norm(gi, len(s.GPU)), norm(mi, len(s.Mem))}, nil
}

// Max returns x_max: the configuration with every unit at its highest clock —
// the paper's guardian configuration and the Performant baseline.
func (s Space) Max() Config {
	return Config{
		CPU: s.CPU[len(s.CPU)-1],
		GPU: s.GPU[len(s.GPU)-1],
		Mem: s.Mem[len(s.Mem)-1],
	}
}

// Min returns the configuration with every unit at its lowest clock.
func (s Space) Min() Config {
	return Config{CPU: s.CPU[0], GPU: s.GPU[0], Mem: s.Mem[0]}
}

// Validate checks that every axis is non-empty, positive and ascending.
func (s Space) Validate() error {
	axes := []struct {
		name string
		f    []Freq
	}{{"cpu", s.CPU}, {"gpu", s.GPU}, {"mem", s.Mem}}
	for _, ax := range axes {
		if len(ax.f) == 0 {
			return fmt.Errorf("device: empty %s frequency table", ax.name)
		}
		prev := Freq(0)
		for i, f := range ax.f {
			if f <= prev {
				return fmt.Errorf("device: %s table not strictly ascending at index %d (%v after %v)", ax.name, i, f, prev)
			}
			prev = f
		}
	}
	return nil
}

// freqSteps builds an n-step geometric-ish frequency ladder from lo to hi
// (inclusive), rounded to 3 decimals, strictly ascending.
func freqSteps(lo, hi Freq, n int) []Freq {
	out := make([]Freq, n)
	for i := 0; i < n; i++ {
		frac := float64(i) / float64(n-1)
		v := float64(lo) + (float64(hi)-float64(lo))*frac
		out[i] = Freq(float64(int(v*1000+0.5)) / 1000)
	}
	return out
}
