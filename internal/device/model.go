package device

import (
	"fmt"
	"math"
)

// Workload identifies one of the paper's three FL training workloads.
type Workload string

// The three evaluation workloads from §6.1.
const (
	ViT      Workload = "vit"      // CIFAR10-ViT (Vision Transformer)
	ResNet50 Workload = "resnet50" // ImageNet-ResNet50
	LSTM     Workload = "lstm"     // IMDB-LSTM
)

// Workloads lists all supported workloads in the paper's presentation order.
func Workloads() []Workload { return []Workload{ViT, ResNet50, LSTM} }

// unitParams describes one processing unit's electrical behaviour.
type unitParams struct {
	fMin, fMax Freq    // frequency range (for the voltage curve)
	vMin, vMax float64 // operating-voltage range across the frequency range
	dynCoeff   float64 // dynamic power coefficient: P = dynCoeff·f·V(f)²
	idleFrac   float64 // fraction of active power drawn while clock-gated
}

// voltage interpolates the unit's V/f curve.
func (u unitParams) voltage(f Freq) float64 {
	if u.fMax == u.fMin {
		return u.vMax
	}
	frac := (float64(f) - float64(u.fMin)) / (float64(u.fMax) - float64(u.fMin))
	frac = math.Max(0, math.Min(1, frac))
	return u.vMin + (u.vMax-u.vMin)*frac
}

// activePower is the unit's full-duty dynamic power at frequency f.
func (u unitParams) activePower(f Freq) float64 {
	v := u.voltage(f)
	return u.dynCoeff * float64(f) * v * v
}

// workParams describes one workload's per-minibatch computational demand on a
// particular device.
type workParams struct {
	// cpuWork, gpuWork, memWork are seconds of work at 1 GHz on the
	// respective unit (i.e. giga-cycles / giga-transfers per minibatch).
	cpuWork, gpuWork, memWork float64
	// serialFrac is the fraction of the three units' work that cannot be
	// overlapped; the rest proceeds concurrently, bounded by the slowest
	// unit (the bottleneck).
	serialFrac float64
	// powerScale calibrates the total board power for this workload
	// (instruction-mix effects).
	powerScale float64
}

// Device is a simulated edge board: a DVFS space plus the calibrated
// performance model for each workload.
type Device struct {
	name      string
	space     Space
	units     [3]unitParams // CPU, GPU, Mem
	staticW   float64       // board static power, Watts
	workloads map[Workload]workParams
}

// Name returns the device's human-readable name.
func (d *Device) Name() string { return d.name }

// Space returns the device's DVFS configuration space.
func (d *Device) Space() Space { return d.space }

// times returns the per-unit busy times for one minibatch of w under c.
func (d *Device) times(w workParams, c Config) (tc, tg, tm float64) {
	return w.cpuWork / float64(c.CPU), w.gpuWork / float64(c.GPU), w.memWork / float64(c.Mem)
}

// Latency returns the true (noise-free) execution latency of one minibatch of
// the workload under DVFS configuration c, in seconds.
func (d *Device) Latency(w Workload, c Config) (float64, error) {
	wp, ok := d.workloads[w]
	if !ok {
		return 0, fmt.Errorf("device: %s has no calibration for workload %q", d.name, w)
	}
	return d.latency(wp, c), nil
}

func (d *Device) latency(wp workParams, c Config) float64 {
	tc, tg, tm := d.times(wp, c)
	bottleneck := math.Max(tc, math.Max(tg, tm))
	return wp.serialFrac*(tc+tg+tm) + (1-wp.serialFrac)*bottleneck
}

// Energy returns the true (noise-free) energy consumed by one minibatch of
// the workload under c, in Joules.
func (d *Device) Energy(w Workload, c Config) (float64, error) {
	wp, ok := d.workloads[w]
	if !ok {
		return 0, fmt.Errorf("device: %s has no calibration for workload %q", d.name, w)
	}
	return d.energy(wp, c), nil
}

func (d *Device) energy(wp workParams, c Config) float64 {
	t := d.latency(wp, c)
	tc, tg, tm := d.times(wp, c)
	utils := [3]float64{tc / t, tg / t, tm / t}
	freqs := [3]Freq{c.CPU, c.GPU, c.Mem}
	power := d.staticW
	for i, u := range d.units {
		util := math.Min(utils[i], 1)
		active := u.activePower(freqs[i])
		power += util*active + (1-util)*u.idleFrac*active
	}
	return power * t * wp.powerScale
}

// Perf returns both objectives at once.
func (d *Device) Perf(w Workload, c Config) (latency, energy float64, err error) {
	wp, ok := d.workloads[w]
	if !ok {
		return 0, 0, fmt.Errorf("device: %s has no calibration for workload %q", d.name, w)
	}
	return d.latency(wp, c), d.energy(wp, c), nil
}

// mixToWork converts a relative busy-time mix at x_max (tc : tg : tm) into
// absolute work amounts (seconds of work at 1 GHz): a unit with a faster
// maximum clock needs proportionally more raw work to occupy the same share
// of the minibatch.
func (d *Device) mixToWork(tcMix, tgMix, tmMix, serialFrac float64) workParams {
	xmax := d.space.Max()
	return workParams{
		cpuWork:    tcMix * float64(xmax.CPU),
		gpuWork:    tgMix * float64(xmax.GPU),
		memWork:    tmMix * float64(xmax.Mem),
		serialFrac: serialFrac,
		powerScale: 1,
	}
}

// calibrate rescales the workload's compute demand so the minibatch latency
// at x_max equals latencyTarget, and its power scale so the minibatch energy
// at x_max equals energyTarget. Both T and E are degree-1 homogeneous in the
// work vector, which makes this exact.
func (d *Device) calibrate(w Workload, latencyTarget, energyTarget float64) {
	wp := d.workloads[w]
	xmax := d.space.Max()
	wp.powerScale = 1
	scale := latencyTarget / d.latency(wp, xmax)
	wp.cpuWork *= scale
	wp.gpuWork *= scale
	wp.memWork *= scale
	wp.powerScale = energyTarget / d.energy(wp, xmax)
	d.workloads[w] = wp
}
