package device

import (
	"math"
	"testing"
)

func phoneSpec() Spec {
	return Spec{
		Name:        "pixel-sim",
		StaticWatts: 0.8,
		CPU:         UnitSpec{Freqs: freqSteps(0.3, 2.8, 16), VMin: 0.55, VMax: 1.05, DynCoeff: 2.0, IdleFrac: 0.25},
		GPU:         UnitSpec{Freqs: freqSteps(0.2, 0.9, 8), VMin: 0.55, VMax: 0.95, DynCoeff: 4.0, IdleFrac: 0.25},
		Mem:         UnitSpec{Freqs: freqSteps(0.5, 2.1, 5), VMin: 0.55, VMax: 0.85, DynCoeff: 1.2, IdleFrac: 0.4},
		Workloads: map[Workload]WorkloadSpec{
			"mobilenet": {CPUShare: 0.4, GPUShare: 1.0, MemShare: 0.2, SerialFrac: 0.25, LatencyAtMax: 0.08, EnergyAtMax: 0.9},
			ViT:         {CPUShare: 0.3, GPUShare: 1.0, MemShare: 0.15, SerialFrac: 0.2, LatencyAtMax: 0.5, EnergyAtMax: 3.2},
		},
	}
}

func TestNewCustomAnchorsMatch(t *testing.T) {
	dev, err := NewCustom(phoneSpec())
	if err != nil {
		t.Fatal(err)
	}
	if dev.Name() != "pixel-sim" {
		t.Errorf("name = %q", dev.Name())
	}
	if got := dev.Space().Size(); got != 16*8*5 {
		t.Errorf("space size %d", got)
	}
	lat, energy, err := dev.Perf("mobilenet", dev.Space().Max())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lat-0.08)/0.08 > 1e-9 {
		t.Errorf("latency anchor %v, want 0.08", lat)
	}
	if math.Abs(energy-0.9)/0.9 > 1e-9 {
		t.Errorf("energy anchor %v, want 0.9", energy)
	}
}

func TestNewCustomLatencyMonotone(t *testing.T) {
	dev, err := NewCustom(phoneSpec())
	if err != nil {
		t.Fatal(err)
	}
	s := dev.Space()
	prev := math.Inf(1)
	for _, f := range s.GPU {
		c := s.Max()
		c.GPU = f
		lat, err := dev.Latency("mobilenet", c)
		if err != nil {
			t.Fatal(err)
		}
		if lat > prev+1e-12 {
			t.Fatalf("latency rose with GPU clock at %v", f)
		}
		prev = lat
	}
}

func TestNewCustomValidation(t *testing.T) {
	mutate := func(f func(*Spec)) Spec {
		s := phoneSpec()
		f(&s)
		return s
	}
	bad := []Spec{
		mutate(func(s *Spec) { s.Name = "" }),
		mutate(func(s *Spec) { s.StaticWatts = -1 }),
		mutate(func(s *Spec) { s.CPU.Freqs = nil }),
		mutate(func(s *Spec) { s.CPU.Freqs = []Freq{2, 1} }),
		mutate(func(s *Spec) { s.GPU.VMin = 0 }),
		mutate(func(s *Spec) { s.GPU.VMax = 0.1 }),
		mutate(func(s *Spec) { s.Mem.DynCoeff = 0 }),
		mutate(func(s *Spec) { s.Mem.IdleFrac = 1.5 }),
		mutate(func(s *Spec) { s.Workloads = nil }),
		mutate(func(s *Spec) {
			s.Workloads["bad"] = WorkloadSpec{SerialFrac: 0.2, LatencyAtMax: 1, EnergyAtMax: 1}
		}),
		mutate(func(s *Spec) {
			s.Workloads["bad"] = WorkloadSpec{CPUShare: 1, SerialFrac: 2, LatencyAtMax: 1, EnergyAtMax: 1}
		}),
		mutate(func(s *Spec) {
			s.Workloads["bad"] = WorkloadSpec{CPUShare: 1, SerialFrac: 0.2, LatencyAtMax: 0, EnergyAtMax: 1}
		}),
		mutate(func(s *Spec) {
			s.Workloads["bad"] = WorkloadSpec{CPUShare: -1, GPUShare: 1, SerialFrac: 0.2, LatencyAtMax: 1, EnergyAtMax: 1}
		}),
	}
	for i, s := range bad {
		if _, err := NewCustom(s); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestCustomDeviceWorksWithProfiler(t *testing.T) {
	dev, err := NewCustom(phoneSpec())
	if err != nil {
		t.Fatal(err)
	}
	p, err := ProfileAll(dev, "mobilenet")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Points) != dev.Space().Size() {
		t.Errorf("profile has %d points", len(p.Points))
	}
	if len(p.ParetoFront()) < 3 {
		t.Errorf("custom device front too small: %d", len(p.ParetoFront()))
	}
}

func TestCustomSpecIsolatedFromDevice(t *testing.T) {
	spec := phoneSpec()
	dev, err := NewCustom(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.CPU.Freqs[0] = 99 // mutating the spec must not affect the device
	if dev.Space().CPU[0] == 99 {
		t.Error("device shares the spec's ladder slice")
	}
}
