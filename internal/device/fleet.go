package device

// Fleet profiles: parameterized device-population archetypes for the
// discrete-event fleet simulator (internal/fleet). The two calibrated Jetson
// boards model a lab testbed; a million-client round needs the long tail —
// flagship phones, budget phones, battery-starved embedded nodes — each with
// its own compute rate, power curve, link bandwidth and availability. A
// FleetClass captures exactly that surface, and a Population samples a
// concrete per-client spec as a *pure function* of (seed, index): no
// per-client storage, so a simulated fleet of any size costs O(classes)
// memory.

import (
	"fmt"
	"sort"
	"strconv"

	"bofl/internal/faultinject"
)

// FleetClass is one device archetype in a heterogeneous fleet.
type FleetClass struct {
	// Name labels the class in stats and the round ledger.
	Name string
	// SecPerJob is the class's nominal per-minibatch training latency in
	// seconds (the fleet analogue of Device.Latency at a fixed DVFS point).
	SecPerJob float64
	// JitterFrac spreads per-client compute speed uniformly over
	// [1-J, 1+J]·SecPerJob — silicon lottery plus background load.
	JitterFrac float64
	// PowerBusyW is the board power while training, Watts.
	PowerBusyW float64
	// PowerIdleW is the board power while waiting on the radio, Watts.
	PowerIdleW float64
	// UplinkBps and DownlinkBps are sustained link rates in bytes/second.
	UplinkBps   float64
	DownlinkBps float64
	// Availability is the probability the device is reachable and willing
	// when a round begins (charging, on wifi, idle).
	Availability float64
	// Share is the class's relative population weight; shares are
	// normalized across the population, so any positive scale works.
	Share float64
}

func (c FleetClass) validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("device: fleet class needs a name")
	case c.SecPerJob <= 0:
		return fmt.Errorf("device: fleet class %s: SecPerJob %v must be > 0", c.Name, c.SecPerJob)
	case c.JitterFrac < 0 || c.JitterFrac >= 1:
		return fmt.Errorf("device: fleet class %s: JitterFrac %v must be in [0, 1)", c.Name, c.JitterFrac)
	case c.PowerBusyW <= 0 || c.PowerIdleW < 0 || c.PowerIdleW > c.PowerBusyW:
		return fmt.Errorf("device: fleet class %s: powers busy=%v idle=%v need busy > 0 and 0 ≤ idle ≤ busy", c.Name, c.PowerBusyW, c.PowerIdleW)
	case c.UplinkBps <= 0 || c.DownlinkBps <= 0:
		return fmt.Errorf("device: fleet class %s: link rates up=%v down=%v must be > 0", c.Name, c.UplinkBps, c.DownlinkBps)
	case c.Availability <= 0 || c.Availability > 1:
		return fmt.Errorf("device: fleet class %s: Availability %v must be in (0, 1]", c.Name, c.Availability)
	case c.Share <= 0:
		return fmt.Errorf("device: fleet class %s: Share %v must be > 0", c.Name, c.Share)
	}
	return nil
}

// BoardClass derives a FleetClass from a calibrated Device model running the
// given workload at its maximum DVFS configuration: SecPerJob from the
// latency model, PowerBusyW from energy/latency. Link, availability and share
// parameters describe the deployment, not the silicon, so the caller supplies
// them.
func BoardClass(d *Device, w Workload, uplinkBps, downlinkBps, availability, share float64) (FleetClass, error) {
	xmax := d.Space().Max()
	lat, energy, err := d.Perf(w, xmax)
	if err != nil {
		return FleetClass{}, err
	}
	return FleetClass{
		Name:         d.Name(),
		SecPerJob:    lat,
		JitterFrac:   0.05, // lab boards: thermal spread only
		PowerBusyW:   energy / lat,
		PowerIdleW:   0.2 * energy / lat,
		UplinkBps:    uplinkBps,
		DownlinkBps:  downlinkBps,
		Availability: availability,
		Share:        share,
	}, nil
}

// StandardFleetClasses is the default heterogeneous population: the two
// calibrated Jetson boards (wired, near-always available, a thin slice) plus
// three synthetic mobile archetypes covering the BouquetFL-style long tail.
// Workload w picks which calibration anchors the board classes.
func StandardFleetClasses(w Workload) ([]FleetClass, error) {
	agx, err := BoardClass(JetsonAGX(), w, 12.5e6, 50e6, 0.99, 2)
	if err != nil {
		return nil, err
	}
	tx2, err := BoardClass(JetsonTX2(), w, 12.5e6, 50e6, 0.99, 3)
	if err != nil {
		return nil, err
	}
	return []FleetClass{
		agx,
		tx2,
		{
			Name: "phone-flagship", SecPerJob: 0.35, JitterFrac: 0.15,
			PowerBusyW: 6.0, PowerIdleW: 1.2,
			UplinkBps: 2.5e6, DownlinkBps: 7.5e6,
			Availability: 0.90, Share: 25,
		},
		{
			Name: "phone-budget", SecPerJob: 0.90, JitterFrac: 0.25,
			PowerBusyW: 4.0, PowerIdleW: 0.8,
			UplinkBps: 0.6e6, DownlinkBps: 2.5e6,
			Availability: 0.75, Share: 55,
		},
		{
			Name: "embedded-sensor", SecPerJob: 2.50, JitterFrac: 0.20,
			PowerBusyW: 2.5, PowerIdleW: 0.3,
			UplinkBps: 0.12e6, DownlinkBps: 0.5e6,
			Availability: 0.60, Share: 15,
		},
	}, nil
}

// ClientSpec is one concrete simulated client: its class plus the per-client
// jittered parameters. Specs are recomputed on demand, never stored.
type ClientSpec struct {
	Class        *FleetClass
	SecPerJob    float64
	PowerBusyW   float64
	PowerIdleW   float64
	UplinkBps    float64
	DownlinkBps  float64
	Availability float64
}

// Population samples client specs from a class mix, deterministically per
// (seed, index). Read-only after construction, so safe for concurrent use.
type Population struct {
	classes []FleetClass
	cum     []float64 // cumulative normalized shares, cum[len-1] == 1
	seed    int64
	mid     faultinject.FleetSeedMid // cached hash prefix of (seed, fleet layer)
}

// NewPopulation validates the class mix and fixes the sampling seed. The same
// (seed, classes) always yields the identical population, client by client.
func NewPopulation(seed int64, classes []FleetClass) (*Population, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("device: population needs at least one fleet class")
	}
	var total float64
	for _, c := range classes {
		if err := c.validate(); err != nil {
			return nil, err
		}
		total += c.Share
	}
	p := &Population{
		classes: append([]FleetClass(nil), classes...),
		cum:     make([]float64, len(classes)),
		seed:    seed,
		mid:     faultinject.NewFleetSeedMid(seed),
	}
	acc := 0.0
	for i, c := range p.classes {
		acc += c.Share / total
		p.cum[i] = acc
	}
	p.cum[len(p.cum)-1] = 1 // close rounding gaps at the top
	return p, nil
}

// Classes returns the population's class mix (shared slice; do not mutate).
func (p *Population) Classes() []FleetClass { return p.classes }

// Seed returns the sampling seed.
func (p *Population) Seed() int64 { return p.seed }

// Per-client draw attempts within the LayerFleet/round-0 hash stream. The
// fleet engine's per-round draws (availability, chaos) use round ≥ 1 points
// and never collide with these.
const (
	drawClass = iota
	drawSpeed
	drawPower
)

// ClientID formats the canonical fault-plane client id for fleet index i.
func ClientID(i int) string { return "f" + strconv.Itoa(i) }

// Client samples the spec for client index i — a pure function of
// (population seed, i) via the fault plane's order-independent hash, so a
// billion-client fleet stores nothing per client.
func (p *Population) Client(i int) ClientSpec {
	// The cached seed midstate plus one digits absorption covers all three
	// draws; each is bit-identical to the Point{Client: ClientID(i)} form and
	// allocation-free.
	cm := p.mid.Client(i)
	pick := cm.Unit(0, drawClass)
	k := sort.SearchFloat64s(p.cum, pick)
	if k == len(p.cum) { // pick == 1.0 edge
		k = len(p.cum) - 1
	}
	c := &p.classes[k]
	speed := cm.Unit(0, drawSpeed)
	power := cm.Unit(0, drawPower)
	// Uniform in [1-J, 1+J]; a slow draw also runs slightly hot.
	speedScale := 1 + c.JitterFrac*(2*speed-1)
	powerScale := 1 + 0.5*c.JitterFrac*(2*power-1)
	return ClientSpec{
		Class:        c,
		SecPerJob:    c.SecPerJob * speedScale,
		PowerBusyW:   c.PowerBusyW * powerScale,
		PowerIdleW:   c.PowerIdleW,
		UplinkBps:    c.UplinkBps,
		DownlinkBps:  c.DownlinkBps,
		Availability: c.Availability,
	}
}

// SlowestSecPerJob bounds the per-job latency any client of the population
// can draw — the anchor for deriving round deadlines without scanning
// clients.
func (p *Population) SlowestSecPerJob() float64 {
	worst := 0.0
	for _, c := range p.classes {
		if s := c.SecPerJob * (1 + c.JitterFrac); s > worst {
			worst = s
		}
	}
	return worst
}
