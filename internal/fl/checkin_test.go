package fl

import (
	"context"
	"errors"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestCheckinEndToEnd(t *testing.T) {
	// A client daemon...
	client := newTestClient(t, "edge-42", 7)
	clientSrv := httptest.NewServer(NewClientHandler(client))
	defer clientSrv.Close()

	// ...checks in with the server-side registry over HTTP.
	reg := NewRegistry(30 * time.Second)
	regSrv := httptest.NewServer(reg.Handler())
	defer regSrv.Close()

	err := CheckIn(regSrv.URL, CheckinRequest{
		ClientID: "edge-42",
		BaseURL:  clientSrv.URL,
		Device:   "jetson-agx",
	}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 1 {
		t.Fatalf("registry has %d participants", reg.Len())
	}

	// The registered participant is fully usable.
	pool := reg.Participants()
	resp, err := pool[0].Round(RoundRequest{Round: 1, Params: client.Params(), Jobs: 10, Deadline: 60})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ClientID != "edge-42" {
		t.Errorf("round reached %q", resp.ClientID)
	}
}

func TestCheckinIDMismatchRejected(t *testing.T) {
	client := newTestClient(t, "real-id", 8)
	clientSrv := httptest.NewServer(NewClientHandler(client))
	defer clientSrv.Close()
	reg := NewRegistry(30 * time.Second)
	regSrv := httptest.NewServer(reg.Handler())
	defer regSrv.Close()

	err := CheckIn(regSrv.URL, CheckinRequest{ClientID: "imposter", BaseURL: clientSrv.URL}, 30*time.Second)
	if err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Errorf("id mismatch not rejected: %v", err)
	}
	if reg.Len() != 0 {
		t.Error("mismatching client registered anyway")
	}
}

func TestCheckinUnreachableClientRejected(t *testing.T) {
	reg := NewRegistry(time.Second)
	regSrv := httptest.NewServer(reg.Handler())
	defer regSrv.Close()
	err := CheckIn(regSrv.URL, CheckinRequest{ClientID: "ghost", BaseURL: "http://127.0.0.1:1"}, 5*time.Second)
	if err == nil {
		t.Error("unreachable client accepted")
	}
}

func TestCheckinValidation(t *testing.T) {
	reg := NewRegistry(time.Second)
	if err := reg.CheckIn(CheckinRequest{}); err == nil {
		t.Error("empty check-in accepted")
	}
	if err := CheckIn("http://127.0.0.1:1", CheckinRequest{ClientID: "a", BaseURL: "http://x"}, time.Second); err == nil {
		t.Error("dead registry accepted")
	}
}

// TestCheckinContextCancelsAgainstHungServer is the regression test for the
// dead-server hang: a listener that accepts connections but never writes a
// byte used to block CheckIn for its full client timeout (or forever with
// timeout 0). With a context the call must return as soon as the context
// expires.
func TestCheckinContextCancelsAgainstHungServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		// Accept and hold connections open without ever responding.
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	// Client timeout 0 = unbounded: only the context can end this call.
	err = CheckInContext(ctx, "http://"+ln.Addr().String(), CheckinRequest{ClientID: "c", BaseURL: "http://x"}, 0)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("check-in against a hung server succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("check-in blocked %v past its context", elapsed)
	}

	// The registry dial-back path honors its context the same way.
	reg := NewRegistry(0)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel2()
	err = reg.CheckInContext(ctx2, CheckinRequest{ClientID: "c", BaseURL: "http://" + ln.Addr().String()})
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("dial-back err %v, want context.DeadlineExceeded", err)
	}
}

func TestCheckinReplaceAndDrop(t *testing.T) {
	reg := NewRegistry(30 * time.Second)
	fake := &reportingParticipant{id: "edge-1"}
	reg.dial = func(ctx context.Context, baseURL string, timeout time.Duration) (Participant, error) {
		return fake, nil
	}
	if err := reg.CheckIn(CheckinRequest{ClientID: "edge-1", BaseURL: "http://a"}); err != nil {
		t.Fatal(err)
	}
	if err := reg.CheckIn(CheckinRequest{ClientID: "edge-1", BaseURL: "http://b"}); err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 1 {
		t.Errorf("re-registration duplicated the client: %d entries", reg.Len())
	}
	reg.Drop("edge-1")
	if reg.Len() != 0 {
		t.Error("Drop did not remove the client")
	}
}

func TestRegistryFeedsServer(t *testing.T) {
	reg := NewRegistry(time.Second)
	reg.dial = func(ctx context.Context, baseURL string, timeout time.Duration) (Participant, error) {
		return &reportingParticipant{id: baseURL}, nil
	}
	for _, u := range []string{"a", "b", "c"} {
		if err := reg.CheckIn(CheckinRequest{ClientID: u, BaseURL: u}); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := NewServer(ServerConfig{InitialParams: []float64{1}, Jobs: 5, DeadlineRatio: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range reg.Participants() {
		srv.Register(p)
	}
	res, err := srv.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Responses) != 3 {
		t.Errorf("round reached %d of 3 registered clients", len(res.Responses))
	}
}
