package fl

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bofl/internal/obs"
)

func errCount(t *obs.Telemetry, endpoint, kind string) float64 {
	return t.Registry.Counter(obs.MetricFLHTTPErrors, "",
		obs.L("endpoint", endpoint), obs.L("kind", kind)).Value()
}

// TestHandlerMalformedJSON sends garbage to /v1/round and checks for a 400
// plus a decode error count.
func TestHandlerMalformedJSON(t *testing.T) {
	tel := obs.New(nil)
	h := NewClientHandler(newTestClient(t, "c0", 1))
	h.SetTelemetry(tel)
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/round", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
	if got := errCount(tel, "round", "decode"); got != 1 {
		t.Errorf("decode error count = %v, want 1", got)
	}
}

// TestHandlerTelemetryEndpoints checks /metrics, /healthz and /v1/telemetry
// are mounted next to the API and serve sane payloads.
func TestHandlerTelemetryEndpoints(t *testing.T) {
	tel := obs.NewBoFL(obs.Real{})
	h := NewClientHandler(newTestClient(t, "c0", 1))
	h.SetTelemetry(tel)
	ts := httptest.NewServer(h)
	defer ts.Close()

	for path, want := range map[string]string{
		"/metrics":      obs.MetricFLHTTPErrors,
		"/healthz":      `"status":"ok"`,
		"/v1/telemetry": "", // empty trace is a valid (empty) body
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body := make([]byte, 1<<20)
		n, _ := resp.Body.Read(body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if want != "" && !strings.Contains(string(body[:n]), want) {
			t.Errorf("GET %s: body missing %q", path, want)
		}
	}

	// The API endpoints still work with telemetry mounted.
	resp, err := http.Get(ts.URL + "/v1/info")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /v1/info: status %d", resp.StatusCode)
	}
}

// TestParticipantNon2xx drives an HTTPParticipant against a daemon whose
// round endpoint fails, and checks the status error counter.
func TestParticipantNon2xx(t *testing.T) {
	tel := obs.New(nil)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/info", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, InfoResponse{ClientID: "bad", TMinPerJob: 0.1, NumExamples: 10})
	})
	mux.HandleFunc("POST /v1/round", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	p, err := DialParticipant(ts.URL, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	p.SetSink(tel)
	if _, err := p.Round(RoundRequest{Round: 1, Jobs: 1, Deadline: 10}); err == nil {
		t.Fatal("non-2xx round did not error")
	}
	if got := errCount(tel, "round", "status"); got != 1 {
		t.Errorf("status error count = %v, want 1", got)
	}
}

// TestParticipantTimeoutMidRound hangs the round endpoint past the HTTP
// client timeout and checks the transport error counter, then verifies the
// server degrades gracefully with TolerateDropouts when that participant is
// mixed with a healthy local one.
func TestParticipantTimeoutMidRound(t *testing.T) {
	tel := obs.New(nil)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/info", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, InfoResponse{ClientID: "hang", TMinPerJob: 0.1, NumExamples: 10})
	})
	hung := make(chan struct{})
	mux.HandleFunc("POST /v1/round", func(w http.ResponseWriter, r *http.Request) {
		<-hung // hold the request until the test ends
	})
	ts := httptest.NewServer(mux)
	defer func() { close(hung); ts.Close() }()

	p, err := DialParticipant(ts.URL, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	p.SetSink(tel)

	healthy := newTestClient(t, "ok", 2)
	srv, err := NewServer(ServerConfig{
		InitialParams:    healthy.Params(),
		Jobs:             4,
		DeadlineRatio:    3,
		Seed:             1,
		TolerateDropouts: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.SetSink(tel)
	srv.Register(&LocalParticipant{Client: healthy})
	srv.Register(p)

	res, err := srv.RunRound()
	if err != nil {
		t.Fatalf("round failed instead of degrading: %v", err)
	}
	if len(res.Dropped) != 1 || res.Dropped[0] != "hang" {
		t.Errorf("dropped = %v, want [hang]", res.Dropped)
	}
	if len(res.Responses) != 1 || res.Responses[0].ClientID != "ok" {
		t.Errorf("responses = %+v, want the healthy client only", res.Responses)
	}
	if got := errCount(tel, "round", "transport"); got != 1 {
		t.Errorf("transport error count = %v, want 1", got)
	}
	if got := tel.Registry.Counter(obs.MetricFLRoundErrors, "").Value(); got != 1 {
		t.Errorf("round error count = %v, want 1", got)
	}
	if got := tel.Registry.Counter(obs.MetricFLDropouts, "").Value(); got != 1 {
		t.Errorf("dropout count = %v, want 1", got)
	}
	if got := tel.Registry.Counter(obs.MetricFLRounds, "").Value(); got != 1 {
		t.Errorf("fl round count = %v, want 1", got)
	}
	// The healthy client's report was folded into the domain metrics.
	if got := tel.Registry.Histogram(obs.MetricRoundEnergy, "", nil).Count(); got != 1 {
		t.Errorf("round energy observations = %v, want 1", got)
	}
}
