// Package fl is the federated-learning substrate BoFL plugs into: task
// specifications (Table 2 of the paper), deadline assignment, clients that
// train real models (package ml) while charging simulated hardware costs
// (package device), a FedAvg server with client selection, and both
// in-memory and HTTP transports.
package fl

import (
	"fmt"
	"math/rand"

	"bofl/internal/device"
)

// TaskSpec describes one federated learning task from a client's perspective:
// the tuple (B, E, T, N) of §3.1.
type TaskSpec struct {
	// Name is the paper's task label, e.g. "CIFAR10-ViT".
	Name string `json:"name"`
	// Workload selects the device-simulator cost model.
	Workload device.Workload `json:"workload"`
	// BatchSize is B, the SGD minibatch size.
	BatchSize int `json:"batchSize"`
	// Epochs is E, passes over the local data per round.
	Epochs int `json:"epochs"`
	// Minibatches is N, the number of minibatches of local data.
	Minibatches int `json:"minibatches"`
	// Rounds is |T|, the number of FL rounds.
	Rounds int `json:"rounds"`
	// DeadlineRatio is T_max/T_min, the deadline sampling range.
	DeadlineRatio float64 `json:"deadlineRatio"`
}

// Jobs returns W = E·N, the number of minibatch jobs per round.
func (t TaskSpec) Jobs() int { return t.Epochs * t.Minibatches }

// Validate checks the spec.
func (t TaskSpec) Validate() error {
	if t.BatchSize <= 0 || t.Epochs <= 0 || t.Minibatches <= 0 || t.Rounds <= 0 {
		return fmt.Errorf("fl: task %q has non-positive parameters", t.Name)
	}
	if t.DeadlineRatio < 1 {
		return fmt.Errorf("fl: task %q deadline ratio %v must be ≥ 1", t.Name, t.DeadlineRatio)
	}
	return nil
}

// Tasks returns the paper's three FL tasks configured for the given device
// (Table 2: N differs between AGX and TX2 because the boards hold different
// amounts of local data). ratio sets T_max/T_min; rounds is |T| (the paper
// uses 100).
func Tasks(dev *device.Device, ratio float64, rounds int) ([]TaskSpec, error) {
	var n map[device.Workload]int
	switch dev.Name() {
	case "jetson-agx":
		n = map[device.Workload]int{device.ViT: 40, device.ResNet50: 90, device.LSTM: 40}
	case "jetson-tx2":
		n = map[device.Workload]int{device.ViT: 15, device.ResNet50: 30, device.LSTM: 20}
	default:
		return nil, fmt.Errorf("fl: no Table-2 specification for device %q", dev.Name())
	}
	specs := []TaskSpec{
		{Name: "CIFAR10-ViT", Workload: device.ViT, BatchSize: 32, Epochs: 5},
		{Name: "ImageNet-ResNet50", Workload: device.ResNet50, BatchSize: 8, Epochs: 2},
		{Name: "IMDB-LSTM", Workload: device.LSTM, BatchSize: 8, Epochs: 4},
	}
	for i := range specs {
		specs[i].Minibatches = n[specs[i].Workload]
		specs[i].Rounds = rounds
		specs[i].DeadlineRatio = ratio
		if err := specs[i].Validate(); err != nil {
			return nil, err
		}
	}
	return specs, nil
}

// TMin computes the task's minimum feasible round time on a device:
// T(x_max)·W, the quantity Table 2 reports as measured on the testbeds.
func TMin(dev *device.Device, t TaskSpec) (float64, error) {
	lat, err := dev.Latency(t.Workload, dev.Space().Max())
	if err != nil {
		return 0, err
	}
	return lat * float64(t.Jobs()), nil
}

// deadlineFloor keeps sampled deadlines slightly above T_min. The paper
// samples uniformly from [T_min, T_max], but T_min is itself a noisy
// measurement and per-job execution jitter makes a deadline of exactly T_min
// unmeetable about half the time even at x_max; a 2% floor absorbs the jitter
// without materially changing the distribution (see EXPERIMENTS.md).
const deadlineFloor = 1.02

// SampleDeadlines draws `rounds` deadlines uniformly from
// [1.02·tmin, ratio·tmin] — the paper's §6.1 protocol with a small jitter
// floor. Deterministic per seed.
func SampleDeadlines(tmin, ratio float64, rounds int, seed int64) ([]float64, error) {
	if tmin <= 0 {
		return nil, fmt.Errorf("fl: non-positive T_min %v", tmin)
	}
	if ratio < 1 {
		return nil, fmt.Errorf("fl: deadline ratio %v must be ≥ 1", ratio)
	}
	if rounds <= 0 {
		return nil, fmt.Errorf("fl: non-positive round count %d", rounds)
	}
	lo := deadlineFloor
	if ratio < lo {
		lo = ratio
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, rounds)
	for i := range out {
		out[i] = tmin * (lo + rng.Float64()*(ratio-lo))
	}
	return out, nil
}
