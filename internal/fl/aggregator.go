package fl

// Aggregation-strategy plugin layer. The streaming turnstile and the
// hierarchical tree fold historically hardcoded FedAvg; this file puts the
// algorithm behind an interface so FedProx, FedNova and SCAFFOLD plug into
// the identical fault plane — retries, quorum, quarantine, chaos injection,
// ledger replay — without touching the fold machinery.
//
// The design constraint is bit-identity across fold shapes: the flat
// streaming fold, any aggregation tree, and the naive batch reference must
// commit byte-identical models. Every strategy is therefore expressed as an
// exactly-accumulated linear fold plus a single commit:
//
//   - Contribute maps one surviving response to a contribution vector of
//     width dim+ExtraDim: the first dim slots carry the weighted model
//     parameters (each product rounded once by the ordinary float64
//     multiply), the extra slots carry the strategy's sufficient statistics
//     (total weight, step-count moments, control-variate deltas). The
//     contribution is added *exactly* (internal/exact), so any grouping of
//     the leaves — flat, tree, ragged tails — reaches the root with the
//     same accumulator state bit for bit, and the extra slots ride tier
//     partial frames for free (they are just more scalars of the window).
//   - Commit derives the new global model from the rounded exact totals,
//     once, at the root. Because every divisor and correction coefficient
//     is a folded statistic, quorum dropout and subtree discard renormalize
//     per-algorithm semantics automatically: a dropped client's weight,
//     step count and variate delta simply never reach the totals.

import (
	"fmt"

	"bofl/internal/exact"
)

// Algorithm names understood by NewAggregator and carried in
// RoundRequest.Alg so clients know which local protocol to run.
const (
	AlgFedAvg   = "fedavg"
	AlgFedProx  = "fedprox"
	AlgFedNova  = "fednova"
	AlgScaffold = "scaffold"
)

// Aggregator is a pluggable server aggregation strategy. Implementations
// must be deterministic: Contribute and Commit may depend only on their
// arguments and on state mutated by previous Commit calls, never on time,
// randomness or goroutine scheduling. One instance serves one Server —
// stateful strategies (SCAFFOLD) carry per-server variates.
type Aggregator interface {
	// Name returns the registry name (AlgFedAvg, …).
	Name() string
	// ExtraDim reports how many statistic scalars ride after the dim model
	// slots of every contribution vector and tier accumulator.
	ExtraDim(dim int) int
	// Configure decorates an outgoing round request with the strategy's
	// client-side protocol: the algorithm tag, a proximal coefficient, a
	// server control variate. req.Params holds the round's global model for
	// its dimensionality only — implementations must not retain or mutate
	// it. Participants treat the attached vectors as read-only.
	Configure(req *RoundRequest)
	// Contribute validates resp and writes its fold contribution into dst,
	// which has length dim+ExtraDim(dim): dst[:dim] is the weighted
	// parameter vector, dst[dim:] the statistic contributions. jobs is the
	// round's nominal job count W. The caller has already validated the
	// parameter length and a positive example count. Errors are
	// round-fatal, like the legacy validation failures.
	Contribute(dst, global []float64, resp *RoundResponse, jobs int) error
	// Commit derives the new global model from the rounded exact totals
	// (same layout as Contribute's dst) and updates any server-side
	// strategy state. total aggregates survivors only.
	Commit(global, total []float64, jobs int) error
}

// NewAggregator builds a registered strategy by name. mu is the FedProx
// proximal coefficient (ignored by the other strategies).
func NewAggregator(name string, mu float64) (Aggregator, error) {
	switch name {
	case AlgFedAvg, "":
		return FedAvg{}, nil
	case AlgFedProx:
		if mu < 0 {
			return nil, fmt.Errorf("fl: fedprox mu %v must be ≥ 0", mu)
		}
		return &FedProx{Mu: mu}, nil
	case AlgFedNova:
		return FedNova{}, nil
	case AlgScaffold:
		return NewScaffold(), nil
	default:
		return nil, fmt.Errorf("fl: unknown aggregator %q (have %s, %s, %s, %s)",
			name, AlgFedAvg, AlgFedProx, AlgFedNova, AlgScaffold)
	}
}

// respSteps returns the local step count a response reports, falling back
// to the round's nominal job count for clients that predate the field.
func respSteps(resp *RoundResponse, jobs int) int {
	if resp.Steps > 0 {
		return resp.Steps
	}
	return jobs
}

// FedAvg is the vanilla dataset-size weighted average — the strategy the
// pre-plugin fold hardcoded. Contribution layout: [n·v ; n]. Commit divides
// by the surviving example weight, reproducing the legacy deferred
// normalization bit for bit (the weight total is a sum of integers, exact
// in the accumulator and exact after rounding).
type FedAvg struct{}

var _ Aggregator = FedAvg{}

// Name implements Aggregator.
func (FedAvg) Name() string { return AlgFedAvg }

// ExtraDim implements Aggregator: one slot for the example-weight total.
func (FedAvg) ExtraDim(dim int) int { return 1 }

// Configure implements Aggregator: FedAvg has no client-side protocol.
func (FedAvg) Configure(req *RoundRequest) {}

// Contribute implements Aggregator.
func (FedAvg) Contribute(dst, global []float64, resp *RoundResponse, jobs int) error {
	dim := len(global)
	w := float64(resp.NumExamples)
	for j, v := range resp.Params {
		dst[j] = w * v
	}
	dst[dim] = w
	return nil
}

// Commit implements Aggregator.
func (FedAvg) Commit(global, total []float64, jobs int) error {
	tw := total[len(global)]
	if tw <= 0 {
		return fmt.Errorf("fl: fedavg: zero aggregate weight")
	}
	for j := range global {
		global[j] = total[j] / tw
	}
	return nil
}

// FedProx is FedAvg aggregation plus a client-side proximal term: every
// local step pulls the replica back toward the round's global model with
// strength Mu (the μ/2·‖w−w_g‖² regularizer of Li et al.), damping client
// drift under non-IID shards and heterogeneous local pace. With Mu = 0 the
// client correction is skipped entirely, so the strategy degenerates to
// FedAvg bitwise.
type FedProx struct {
	FedAvg
	// Mu is the proximal coefficient μ ≥ 0.
	Mu float64
}

var _ Aggregator = (*FedProx)(nil)

// Name implements Aggregator.
func (*FedProx) Name() string { return AlgFedProx }

// Configure implements Aggregator: ships μ to the client.
func (p *FedProx) Configure(req *RoundRequest) {
	req.Alg = AlgFedProx
	req.Prox = p.Mu
}

// FedNova implements normalized averaging over heterogeneous local step
// counts (Wang et al.): clients that ran more local steps contribute a
// *normalized* update so the committed model is no longer biased toward
// fast-paced clients — exactly the failure mode BoFL's variable local-pace
// windows expose in plain FedAvg.
//
// Contribution layout: [w·v ; w ; n ; n·τ ; n·(τ−W)²] with w = n·(W/τ),
// n the example count, τ the client's local step count and W the nominal
// job count. Commit applies
//
//	x⁺ = x + τ_eff · (S − sw·x) / (W · sn),   τ_eff = snt/sn
//
// over the survivor totals. The last statistic is an exact integer-valued
// dispersion: it rounds to 0 iff every survivor ran exactly W steps, in
// which case the fold weights were n·(W/W) = n exactly and Commit takes
// the plain FedAvg division — so uniform-pace FedNova is bitwise FedAvg.
type FedNova struct{}

var _ Aggregator = FedNova{}

// Name implements Aggregator.
func (FedNova) Name() string { return AlgFedNova }

// ExtraDim implements Aggregator.
func (FedNova) ExtraDim(dim int) int { return 4 }

// Configure implements Aggregator: tags the request so traces and clients
// can tell the round's protocol, but needs no client-side correction.
func (FedNova) Configure(req *RoundRequest) { req.Alg = AlgFedNova }

// Contribute implements Aggregator.
func (FedNova) Contribute(dst, global []float64, resp *RoundResponse, jobs int) error {
	dim := len(global)
	n := float64(resp.NumExamples)
	tau := float64(respSteps(resp, jobs))
	w := n * (float64(jobs) / tau)
	for j, v := range resp.Params {
		dst[j] = w * v
	}
	d := tau - float64(jobs)
	dst[dim] = w
	dst[dim+1] = n
	dst[dim+2] = n * tau
	dst[dim+3] = n * d * d
	return nil
}

// Commit implements Aggregator.
func (FedNova) Commit(global, total []float64, jobs int) error {
	dim := len(global)
	sw, sn, snt, svar := total[dim], total[dim+1], total[dim+2], total[dim+3]
	if sn <= 0 {
		return fmt.Errorf("fl: fednova: zero aggregate weight")
	}
	if svar == 0 {
		// Every survivor ran the nominal pace: the fold was the FedAvg fold
		// (weights n·1.0), so the commit must be the FedAvg commit — same
		// operations, bitwise.
		for j := range global {
			global[j] = total[j] / sn
		}
		return nil
	}
	tauEff := snt / sn
	den := float64(jobs) * sn
	for j := range global {
		global[j] += tauEff * (total[j] - sw*global[j]) / den
	}
	return nil
}

// Scaffold implements server/client control variates (Karimireddy et al.,
// option II): the server ships its variate c with every request, clients
// correct each local step by (c − c_i) and return the variate delta Δc_i,
// and Commit folds the example-weighted model average plus the mean delta
// into the server state. Client variates live on the clients; the deltas
// ride the wire as the frames' aux payload section.
//
// Contribution layout: [n·v ; Δc_i ; n ; 1]. The model slots are the FedAvg
// fold, so a round in which every variate is zero (fresh server, fresh
// clients) trains and commits bitwise-identically to FedAvg. The trailing
// count statistic makes the delta mean quorum-correct: only survivors'
// deltas and only the survivor count reach the root.
type Scaffold struct {
	// ctl is the server control variate c, sized lazily to the model.
	ctl []float64
}

var _ Aggregator = (*Scaffold)(nil)

// NewScaffold builds a SCAFFOLD strategy with a zero server variate.
func NewScaffold() *Scaffold { return &Scaffold{} }

// Name implements Aggregator.
func (s *Scaffold) Name() string { return AlgScaffold }

// ExtraDim implements Aggregator: the variate-delta vector plus weight and
// survivor-count slots.
func (s *Scaffold) ExtraDim(dim int) int { return dim + 2 }

// Configure implements Aggregator: ships the server variate. The slice is
// shared read-only across the round's requests; Commit only mutates it
// after every dispatch of the round has completed.
func (s *Scaffold) Configure(req *RoundRequest) {
	req.Alg = AlgScaffold
	if len(s.ctl) != len(req.Params) {
		s.ctl = make([]float64, len(req.Params))
	}
	req.Aux = s.ctl
}

// ControlVariate returns a copy of the server control variate c.
func (s *Scaffold) ControlVariate() []float64 {
	out := make([]float64, len(s.ctl))
	copy(out, s.ctl)
	return out
}

// Clone returns an independent Scaffold with the same variate state — the
// hook batch-reference tests use to replay a round without disturbing the
// live server's state.
func (s *Scaffold) Clone() *Scaffold {
	c := &Scaffold{ctl: make([]float64, len(s.ctl))}
	copy(c.ctl, s.ctl)
	return c
}

// Contribute implements Aggregator.
func (s *Scaffold) Contribute(dst, global []float64, resp *RoundResponse, jobs int) error {
	dim := len(global)
	if len(resp.Aux) != dim {
		return fmt.Errorf("fl: scaffold: client %s returned %d control-variate deltas, want %d",
			resp.ClientID, len(resp.Aux), dim)
	}
	n := float64(resp.NumExamples)
	for j, v := range resp.Params {
		dst[j] = n * v
	}
	copy(dst[dim:2*dim], resp.Aux)
	dst[2*dim] = n
	dst[2*dim+1] = 1
	return nil
}

// Commit implements Aggregator.
func (s *Scaffold) Commit(global, total []float64, jobs int) error {
	dim := len(global)
	sn, cnt := total[2*dim], total[2*dim+1]
	if sn <= 0 || cnt <= 0 {
		return fmt.Errorf("fl: scaffold: zero aggregate weight")
	}
	if len(s.ctl) != dim {
		s.ctl = make([]float64, dim)
	}
	for j := range global {
		global[j] = total[j] / sn
		s.ctl[j] += total[dim+j] / cnt
	}
	return nil
}

// BatchAggregate is the naive reference implementation the streaming and
// tree folds are tested against: accumulate every response's contribution
// into one fresh exact vector, round once, commit on a copy of global.
// It returns the committed model and leaves agg's state updated exactly as
// a live Commit would (pass a Clone for side-effect-free replay).
func BatchAggregate(agg Aggregator, global []float64, responses []RoundResponse, jobs int) ([]float64, error) {
	dim := len(global)
	vecDim := dim + agg.ExtraDim(dim)
	acc := exact.NewVec(vecDim)
	contrib := make([]float64, vecDim)
	for i := range responses {
		r := &responses[i]
		switch {
		case len(r.Params) != dim:
			return nil, fmt.Errorf("fl: client %s returned %d params, want %d", r.ClientID, len(r.Params), dim)
		case r.NumExamples <= 0:
			return nil, fmt.Errorf("fl: client %s reports %d examples", r.ClientID, r.NumExamples)
		}
		if err := agg.Contribute(contrib, global, r, jobs); err != nil {
			return nil, err
		}
		acc.Add(contrib)
	}
	total := make([]float64, vecDim)
	acc.RoundTo(total)
	out := make([]float64, dim)
	copy(out, global)
	if err := agg.Commit(out, total, jobs); err != nil {
		return nil, err
	}
	return out, nil
}
