package fl

// Hand-rolled metadata codec for partial-aggregate frames. A million-client
// fleet round closes tens of thousands of tier aggregators, each shipping one
// partial frame whose metadata section dominated the codec profile when it
// went through encoding/json's reflection paths. The fast marshaller below
// emits bytes identical to json.Marshal(partialMeta) — same field order, same
// integer formatting, same omitempty behaviour, pinned by
// TestPartialMetaFastCodecMatchesJSON — and the fast parser accepts exactly
// that canonical shape. Anything else (hand-written JSON, whitespace, escape
// sequences, reordered fields) falls back to encoding/json, so wire
// compatibility is unchanged; only the canonical frames our encoder produces
// take the fast path.

import (
	"encoding/base64"
	"strconv"
)

// jsonStringSafe reports whether encoding/json would emit s verbatim inside
// quotes: no escapes, no HTML-safety rewrites (&, <, >), no control bytes, no
// non-ASCII (whose UTF-8 validity we'd otherwise have to check).
func jsonStringSafe(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= 0x7F || c == '"' || c == '\\' || c == '&' || c == '<' || c == '>' {
			return false
		}
	}
	return true
}

// appendPartialMeta appends m's canonical JSON encoding to dst and reports
// whether the fast path applied; false means the caller must use
// encoding/json (a trace string needs escaping).
func appendPartialMeta(dst []byte, m *partialMeta) ([]byte, bool) {
	if !jsonStringSafe(m.TraceID) || !jsonStringSafe(m.SpanID) {
		return dst, false
	}
	dst = append(dst, `{"round":`...)
	dst = strconv.AppendInt(dst, int64(m.Round), 10)
	dst = append(dst, `,"tier":`...)
	dst = strconv.AppendInt(dst, int64(m.Tier), 10)
	dst = append(dst, `,"node":`...)
	dst = strconv.AppendInt(dst, int64(m.Node), 10)
	dst = append(dst, `,"leafLo":`...)
	dst = strconv.AppendInt(dst, int64(m.LeafLo), 10)
	dst = append(dst, `,"leafHi":`...)
	dst = strconv.AppendInt(dst, int64(m.LeafHi), 10)
	dst = append(dst, `,"survivors":`...)
	dst = strconv.AppendInt(dst, int64(m.Survivors), 10)
	dst = append(dst, `,"weight":`...)
	dst = strconv.AppendInt(dst, m.Weight, 10)
	dst = append(dst, `,"dim":`...)
	dst = strconv.AppendInt(dst, int64(m.Dim), 10)
	dst = append(dst, `,"windowLo":`...)
	dst = strconv.AppendInt(dst, int64(m.WindowLo), 10)
	dst = append(dst, `,"windowHi":`...)
	dst = strconv.AppendInt(dst, int64(m.WindowHi), 10)
	dst = append(dst, `,"adds":`...)
	dst = strconv.AppendInt(dst, m.Adds, 10)
	if len(m.Specials) > 0 {
		dst = append(dst, `,"specials":"`...)
		dst = base64.StdEncoding.AppendEncode(dst, m.Specials)
		dst = append(dst, '"')
	}
	if m.TraceID != "" {
		dst = append(dst, `,"traceId":"`...)
		dst = append(dst, m.TraceID...)
		dst = append(dst, '"')
	}
	if m.SpanID != "" {
		dst = append(dst, `,"spanId":"`...)
		dst = append(dst, m.SpanID...)
		dst = append(dst, '"')
	}
	return append(dst, '}'), true
}

// metaScan is a cursor over a canonical partial-meta JSON blob.
type metaScan struct {
	b  []byte
	p  int
	ok bool
}

// lit consumes the exact literal s.
func (s *metaScan) lit(l string) {
	if !s.ok || s.p+len(l) > len(s.b) || string(s.b[s.p:s.p+len(l)]) != l {
		s.ok = false
		return
	}
	s.p += len(l)
}

// num consumes an optionally-signed decimal integer without allocating.
// Out-of-range values flip ok, sending the caller to the encoding/json
// fallback for a proper error.
func (s *metaScan) num() int64 {
	if !s.ok {
		return 0
	}
	neg := false
	if s.p < len(s.b) && s.b[s.p] == '-' {
		neg = true
		s.p++
	}
	var n uint64
	digits := 0
	for s.p < len(s.b) {
		c := s.b[s.p]
		if c < '0' || c > '9' {
			break
		}
		n = n*10 + uint64(c-'0')
		s.p++
		digits++
	}
	lim := uint64(1) << 63 // |int64 min|; positives get one less
	if !neg {
		lim--
	}
	if digits == 0 || digits > 19 || n > lim {
		s.ok = false
		return 0
	}
	if neg {
		return -int64(n)
	}
	return int64(n)
}

// str consumes a quoted escape-free string value. When the value equals prev
// the previous string is returned unchanged — aggregators decode one frame
// per tier close within a round, all carrying the same trace id, so the
// steady-state decode path never allocates for trace strings.
func (s *metaScan) str(prev string) string {
	if !s.ok || s.p >= len(s.b) || s.b[s.p] != '"' {
		s.ok = false
		return ""
	}
	s.p++
	start := s.p
	for s.p < len(s.b) {
		c := s.b[s.p]
		if c == '"' {
			raw := s.b[start:s.p]
			s.p++
			if string(raw) == prev { // comparison does not allocate
				return prev
			}
			return string(raw)
		}
		if c == '\\' || c < 0x20 || c >= 0x7F {
			s.ok = false
			return ""
		}
		s.p++
	}
	s.ok = false
	return ""
}

// parsePartialMeta parses the canonical encoding produced by
// appendPartialMeta and reports success; on false the caller falls back to
// encoding/json and *m may be partially filled (callers overwrite on
// fallback).
func parsePartialMeta(b []byte, m *partialMeta) bool {
	s := metaScan{b: b, ok: true}
	s.lit(`{"round":`)
	m.Round = int(s.num())
	s.lit(`,"tier":`)
	m.Tier = int(s.num())
	s.lit(`,"node":`)
	m.Node = int(s.num())
	s.lit(`,"leafLo":`)
	m.LeafLo = int(s.num())
	s.lit(`,"leafHi":`)
	m.LeafHi = int(s.num())
	s.lit(`,"survivors":`)
	m.Survivors = int(s.num())
	s.lit(`,"weight":`)
	m.Weight = s.num()
	s.lit(`,"dim":`)
	m.Dim = int(s.num())
	s.lit(`,"windowLo":`)
	m.WindowLo = int(s.num())
	s.lit(`,"windowHi":`)
	m.WindowHi = int(s.num())
	s.lit(`,"adds":`)
	m.Adds = s.num()
	if !s.ok {
		return false
	}
	// m's incoming trace strings serve as reuse hints for str; absent fields
	// end up cleared either way.
	prevTrace, prevSpan := m.TraceID, m.SpanID
	m.Specials = nil
	m.TraceID, m.SpanID = "", ""
	if s.p < len(s.b) && hasPrefixAt(s.b, s.p, `,"specials":`) {
		s.lit(`,"specials":`)
		enc := s.str("")
		if !s.ok {
			return false
		}
		sp, err := base64.StdEncoding.DecodeString(enc)
		if err != nil {
			return false
		}
		m.Specials = sp
	}
	if s.p < len(s.b) && hasPrefixAt(s.b, s.p, `,"traceId":`) {
		s.lit(`,"traceId":`)
		m.TraceID = s.str(prevTrace)
	}
	if s.p < len(s.b) && hasPrefixAt(s.b, s.p, `,"spanId":`) {
		s.lit(`,"spanId":`)
		m.SpanID = s.str(prevSpan)
	}
	s.lit(`}`)
	return s.ok && s.p == len(s.b)
}

func hasPrefixAt(b []byte, p int, pre string) bool {
	return p+len(pre) <= len(b) && string(b[p:p+len(pre)]) == pre
}
