package fl

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"strconv"
	"testing"
	"time"

	"bofl/internal/core"
	"bofl/internal/faultinject"
	"bofl/internal/obs"
	"bofl/internal/obs/ledger"
	"bofl/internal/simclock"
)

// The chaos suite drives the full serving plane — selection, fault-injected
// dispatch, retry/backoff, quorum aggregation, quarantine — under seeded fault
// plans in virtual time. Every scenario logs its seed; rerun any failure with
//
//	BOFL_CHAOS_SEED=<seed> go test -race -run TestChaos ./internal/fl/
//
// and the exact decision stream replays (fault draws and backoff jitter are
// pure functions of the seed, immune to goroutine scheduling).

const defaultChaosSeed = 20260806

// chaosSeed resolves the suite seed (env override for replays) and logs it.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	seed := int64(defaultChaosSeed)
	if env := os.Getenv("BOFL_CHAOS_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("BOFL_CHAOS_SEED=%q: %v", env, err)
		}
		seed = v
	}
	t.Logf("chaos seed %d (replay with BOFL_CHAOS_SEED=%d)", seed, seed)
	return seed
}

// chaosParticipant is a deterministic in-process client whose update depends
// only on its identity, so any change in the surviving set changes the
// aggregate — and identical runs produce bit-identical models.
type chaosParticipant struct {
	id  string
	idx int
}

func (p *chaosParticipant) ID() string                        { return p.id }
func (p *chaosParticipant) TMinFor(jobs int) (float64, error) { return 1 + float64(p.idx)*0.01, nil }
func (p *chaosParticipant) Round(req RoundRequest) (RoundResponse, error) {
	params := make([]float64, len(req.Params))
	for j := range params {
		params[j] = req.Params[j] + float64(p.idx+1)*0.125 + float64(j)*0.0625
	}
	return RoundResponse{
		ClientID:    p.id,
		Params:      params,
		NumExamples: 10 + p.idx,
		Report:      core.RoundReport{Round: req.Round, DeadlineMet: true},
	}, nil
}

func chaosPool(n int) []Participant {
	pool := make([]Participant, n)
	for i := range pool {
		pool[i] = &chaosParticipant{id: fmt.Sprintf("edge-%02d", i), idx: i}
	}
	return pool
}

// chaosServer builds a server over n chaos participants.
func chaosServer(t *testing.T, n int, mut func(*ServerConfig)) *Server {
	t.Helper()
	cfg := ServerConfig{
		InitialParams: []float64{1, 2, 3, 4},
		Jobs:          5,
		DeadlineRatio: 2,
		Seed:          17,
		Clock:         simclock.NewSim(time.Unix(0, 0)),
	}
	if mut != nil {
		mut(&cfg)
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range chaosPool(n) {
		srv.Register(p)
	}
	return srv
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestChaosAllHealthyByteIdentical is the compatibility anchor: with a nop
// policy the chaos-configured server (quorum 1.0, retries armed) produces a
// global model bit-identical to the legacy server with no chaos fields at
// all, round after round.
func TestChaosAllHealthyByteIdentical(t *testing.T) {
	chaosSeed(t)
	legacy := chaosServer(t, 8, func(cfg *ServerConfig) { cfg.Clock = nil })
	hardened := chaosServer(t, 8, func(cfg *ServerConfig) {
		cfg.Quorum = 1.0
		cfg.Retry = RetryConfig{MaxAttempts: 3, AttemptTimeout: 10 * time.Second, Seed: 99}
		cfg.FaultPolicy = faultinject.NopPolicy{}
	})
	for r := 1; r <= 5; r++ {
		if _, err := legacy.RunRound(); err != nil {
			t.Fatal(err)
		}
		res, err := hardened.RunRound()
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Dropped)+len(res.Stragglers)+len(res.Quarantined) != 0 {
			t.Fatalf("round %d: healthy fleet reported casualties: %+v", r, res)
		}
		if !bitsEqual(legacy.GlobalParams(), hardened.GlobalParams()) {
			t.Fatalf("round %d: hardened path diverged from legacy aggregate", r)
		}
	}
}

// TestChaosScriptedDropoutsMatchBatchAggregate drops an exact k of n and
// checks the quorum round commits a model bit-identical to the batch FedAvg
// reference over the survivors — the renormalization proof sketch of
// DESIGN.md §8, executed.
func TestChaosScriptedDropoutsMatchBatchAggregate(t *testing.T) {
	chaosSeed(t)
	const n = 10
	// Drop clients 1, 4 and 7 on every attempt of round 1 (k=3 of n=10,
	// above the 0.6 quorum floor of 6 survivors).
	script := faultinject.Scripted{}
	for _, c := range []int{1, 4, 7} {
		for attempt := 0; attempt < 3; attempt++ {
			script[faultinject.Point{
				Layer:   faultinject.LayerParticipant,
				Client:  fmt.Sprintf("edge-%02d", c),
				Round:   1,
				Attempt: attempt,
			}] = faultinject.Decision{Drop: true}
		}
	}
	srv := chaosServer(t, n, func(cfg *ServerConfig) {
		cfg.Quorum = 0.6
		cfg.Retry = RetryConfig{MaxAttempts: 3, Seed: 5}
		cfg.FaultPolicy = script
	})
	tel := obs.NewBoFL(obs.Real{})
	srv.SetSink(tel)

	res, err := srv.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Responses) != n-3 || len(res.Dropped) != 3 {
		t.Fatalf("survivors %d dropped %d, want 7 and 3", len(res.Responses), len(res.Dropped))
	}

	// Reference: batch FedAvg over exactly the surviving clients' updates.
	ref := chaosServer(t, n, nil)
	pool := chaosPool(n)
	survivors := make([]RoundResponse, 0, n-3)
	for i, p := range pool {
		if i == 1 || i == 4 || i == 7 {
			continue
		}
		resp, err := p.Round(RoundRequest{Round: 1, Params: ref.GlobalParams(), Jobs: 5, Deadline: res.Deadline})
		if err != nil {
			t.Fatal(err)
		}
		survivors = append(survivors, resp)
	}
	if err := ref.aggregate(survivors); err != nil {
		t.Fatal(err)
	}
	if !bitsEqual(srv.GlobalParams(), ref.GlobalParams()) {
		t.Fatal("quorum round diverged from the batch aggregate over survivors")
	}
	if got := tel.Registry.Counter(obs.MetricFLQuorumRounds, "").Value(); got != 1 {
		t.Errorf("quorum rounds counter %v, want 1", got)
	}
}

// TestChaosStragglerTailStripped hangs two clients past the attempt timeout;
// the round must finalize without them, tag them as stragglers, and advance
// only virtual time.
func TestChaosStragglerTailStripped(t *testing.T) {
	chaosSeed(t)
	clock := simclock.NewSim(time.Unix(0, 0))
	script := faultinject.Scripted{}
	for _, c := range []string{"edge-02", "edge-05"} {
		for attempt := 0; attempt < 2; attempt++ {
			script[faultinject.Point{Layer: faultinject.LayerParticipant, Client: c, Round: 1, Attempt: attempt}] =
				faultinject.Decision{Delay: time.Hour} // far past the timeout
		}
	}
	srv := chaosServer(t, 8, func(cfg *ServerConfig) {
		cfg.Quorum = 0.6
		cfg.Retry = RetryConfig{MaxAttempts: 2, AttemptTimeout: 30 * time.Second, Seed: 3}
		cfg.FaultPolicy = script
		cfg.Clock = clock
	})
	tel := obs.NewBoFL(obs.Real{})
	srv.SetSink(tel)

	start := time.Now()
	res, err := srv.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 30*time.Second {
		t.Fatal("straggler hang consumed real time") // virtual-time guard
	}
	if len(res.Stragglers) != 2 {
		t.Fatalf("stragglers %v, want edge-02 and edge-05", res.Stragglers)
	}
	if len(res.Responses) != 6 {
		t.Fatalf("survivors %d, want 6", len(res.Responses))
	}
	if got := tel.Registry.Counter(obs.MetricFLStragglerStrips, "").Value(); got != 2 {
		t.Errorf("straggler strips counter %v, want 2", got)
	}
	if clock.Now().Equal(time.Unix(0, 0)) {
		t.Error("no virtual time charged for the hung attempts")
	}
}

// TestChaosFlakyClientRecoversViaRetries gives one client two dead attempts
// per round; with three attempts budgeted it must still land in every
// round's aggregate.
func TestChaosFlakyClientRecoversViaRetries(t *testing.T) {
	seed := chaosSeed(t)
	plan := &faultinject.Plan{
		Seed:   seed,
		Client: map[string]faultinject.Profile{"edge-03": {FlakyAttempts: 2}},
	}
	srv := chaosServer(t, 6, func(cfg *ServerConfig) {
		cfg.Quorum = 1.0 // no one may be lost: retries must carry the flake
		cfg.Retry = RetryConfig{MaxAttempts: 3, Seed: seed}
		cfg.FaultPolicy = plan
	})
	tel := obs.NewBoFL(obs.Real{})
	srv.SetSink(tel)

	for r := 1; r <= 4; r++ {
		res, err := srv.RunRound()
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		if len(res.Responses) != 6 || len(res.Dropped) != 0 {
			t.Fatalf("round %d: flaky client lost despite retries: %+v", r, res.Dropped)
		}
	}
	if got := tel.Registry.Counter(obs.MetricFLRetries, "").Value(); got != 8 {
		t.Errorf("retries counter %v, want 8 (2 per round)", got)
	}
}

// TestChaosCorruptFrameQuarantined corrupts one client's frame: the round
// survives, the client is quarantined, and it never reappears in later
// rounds.
func TestChaosCorruptFrameQuarantined(t *testing.T) {
	chaosSeed(t)
	script := faultinject.Scripted{
		{Layer: faultinject.LayerParticipant, Client: "edge-01", Round: 1}: {Corrupt: true},
	}
	srv := chaosServer(t, 5, func(cfg *ServerConfig) {
		cfg.Quorum = 0.6
		cfg.Retry = RetryConfig{MaxAttempts: 3, Seed: 2}
		cfg.FaultPolicy = script
	})
	tel := obs.NewBoFL(obs.Real{})
	srv.SetSink(tel)

	res, err := srv.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) != 1 || res.Quarantined[0] != "edge-01" {
		t.Fatalf("quarantined %v, want [edge-01]", res.Quarantined)
	}
	if got := tel.Registry.Counter(obs.MetricFLQuarantines, "").Value(); got != 1 {
		t.Errorf("quarantine counter %v, want 1", got)
	}
	for r := 2; r <= 4; r++ {
		res, err := srv.RunRound()
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		for _, resp := range res.Responses {
			if resp.ClientID == "edge-01" {
				t.Fatalf("round %d: quarantined client re-selected", r)
			}
		}
		if len(res.Responses) != 4 {
			t.Fatalf("round %d: %d survivors, want the 4 healthy clients", r, len(res.Responses))
		}
	}
	// Re-admission works.
	srv.ClearQuarantine("edge-01")
	res, err = srv.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Responses) != 5 {
		t.Errorf("after ClearQuarantine only %d clients reported", len(res.Responses))
	}
}

// runDropoutStorm executes the acceptance scenario — 20 clients, 30% drop
// probability per attempt, quorum 0.6 — and returns the final model plus the
// per-round casualty lists for determinism comparison.
func runDropoutStorm(t *testing.T, seed int64, rounds int) ([]float64, [][]string) {
	t.Helper()
	plan := &faultinject.Plan{Seed: seed, Default: faultinject.Profile{Drop: 0.3}}
	srv := chaosServer(t, 20, func(cfg *ServerConfig) {
		cfg.Quorum = 0.6
		cfg.Retry = RetryConfig{MaxAttempts: 3, Seed: seed}
		cfg.FaultPolicy = plan
	})
	dropped := make([][]string, 0, rounds)
	for r := 1; r <= rounds; r++ {
		res, err := srv.RunRound()
		if err != nil {
			t.Fatalf("round %d did not reach quorum: %v", r, err)
		}
		dropped = append(dropped, res.Dropped)
	}
	return srv.GlobalParams(), dropped
}

// TestChaosDropoutStormMeetsQuorum is the headline acceptance check: with a
// 30%-dropout fault plan over 20 clients, every round completes at quorum
// 0.6 — and the whole storm is bitwise reproducible from its seed.
func TestChaosDropoutStormMeetsQuorum(t *testing.T) {
	seed := chaosSeed(t)
	const rounds = 10

	paramsA, droppedA := runDropoutStorm(t, seed, rounds)
	paramsB, droppedB := runDropoutStorm(t, seed, rounds)

	if !bitsEqual(paramsA, paramsB) {
		t.Fatalf("seed %d: two identical storms diverged bitwise", seed)
	}
	for r := range droppedA {
		if len(droppedA[r]) != len(droppedB[r]) {
			t.Fatalf("seed %d round %d: casualty lists diverged: %v vs %v", seed, r+1, droppedA[r], droppedB[r])
		}
		for i := range droppedA[r] {
			if droppedA[r][i] != droppedB[r][i] {
				t.Fatalf("seed %d round %d: casualty lists diverged: %v vs %v", seed, r+1, droppedA[r], droppedB[r])
			}
		}
	}
	// A different seed must explore a different failure path (different
	// casualties in at least one round) — otherwise the seed isn't wired
	// through.
	_, droppedC := runDropoutStorm(t, seed+1, rounds)
	same := true
	for r := range droppedA {
		if len(droppedA[r]) != len(droppedC[r]) {
			same = false
			break
		}
		for i := range droppedA[r] {
			if droppedA[r][i] != droppedC[r][i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Errorf("seeds %d and %d produced identical casualty streams", seed, seed+1)
	}
}

// TestChaosServerRestartMidSequence kills the server between rounds and
// rebuilds it from its own global model (the serving-plane analogue of the
// core snapshot restore): the fleet keeps training and the restarted server
// honors the quarantine list it is handed back.
func TestChaosServerRestartMidSequence(t *testing.T) {
	seed := chaosSeed(t)
	script := faultinject.Scripted{
		{Layer: faultinject.LayerParticipant, Client: "edge-02", Round: 1}: {Corrupt: true},
	}
	mkCfg := func(cfg *ServerConfig) {
		cfg.Quorum = 0.6
		cfg.Retry = RetryConfig{MaxAttempts: 2, Seed: seed}
		cfg.FaultPolicy = script
	}
	srvA := chaosServer(t, 6, mkCfg)
	for r := 1; r <= 2; r++ {
		if _, err := srvA.RunRound(); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
	}
	checkpoint := srvA.GlobalParams()
	quarantined := srvA.QuarantinedIDs()
	if len(quarantined) != 1 {
		t.Fatalf("pre-restart quarantine %v, want one entry", quarantined)
	}

	// "Restart": a fresh server seeded from the checkpointed model and the
	// carried-over quarantine list.
	srvB := chaosServer(t, 6, func(cfg *ServerConfig) {
		mkCfg(cfg)
		cfg.InitialParams = checkpoint
	})
	for _, id := range quarantined {
		srvB.Quarantine(id)
	}
	if !bitsEqual(srvB.GlobalParams(), checkpoint) {
		t.Fatal("restart lost the checkpointed model")
	}
	for r := 1; r <= 2; r++ {
		res, err := srvB.RunRound()
		if err != nil {
			t.Fatalf("post-restart round %d: %v", r, err)
		}
		for _, resp := range res.Responses {
			if resp.ClientID == "edge-02" {
				t.Fatalf("post-restart round %d re-selected the quarantined client", r)
			}
		}
		for _, v := range srvB.GlobalParams() {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("post-restart model is not finite")
			}
		}
	}
}

// runLedgerStorm replays the acceptance storm with a round ledger attached
// and returns the journal's exact JSONL bytes.
func runLedgerStorm(t *testing.T, seed int64, rounds int) []byte {
	t.Helper()
	led := ledger.New(0)
	plan := &faultinject.Plan{Seed: seed, Default: faultinject.Profile{Drop: 0.3}}
	srv := chaosServer(t, 20, func(cfg *ServerConfig) {
		cfg.Seed = seed
		cfg.Quorum = 0.6
		cfg.Retry = RetryConfig{MaxAttempts: 3, Seed: seed}
		cfg.FaultPolicy = plan
		cfg.Ledger = led
	})
	for r := 1; r <= rounds; r++ {
		if _, err := srv.RunRound(); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
	}
	var buf bytes.Buffer
	if err := led.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestChaosLedgerReplayByteIdentical is the ledger's replay guarantee: two
// storms at the same seed journal byte-identical JSONL (no wall-clock or
// scheduling nondeterminism leaks into any event), and a different seed
// journals a different history.
func TestChaosLedgerReplayByteIdentical(t *testing.T) {
	seed := chaosSeed(t)
	const rounds = 6
	a := runLedgerStorm(t, seed, rounds)
	b := runLedgerStorm(t, seed, rounds)
	if !bytes.Equal(a, b) {
		// Find the first divergent line for the failure message.
		la, lb := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
		for i := 0; i < len(la) && i < len(lb); i++ {
			if !bytes.Equal(la[i], lb[i]) {
				t.Fatalf("seed %d: ledgers diverged at line %d:\n a: %s\n b: %s", seed, i+1, la[i], lb[i])
			}
		}
		t.Fatalf("seed %d: ledgers diverged in length: %d vs %d bytes", seed, len(a), len(b))
	}
	if len(a) == 0 {
		t.Fatal("storm journaled no events")
	}
	c := runLedgerStorm(t, seed+1, rounds)
	if bytes.Equal(a, c) {
		t.Errorf("seeds %d and %d journaled identical ledgers", seed, seed+1)
	}
	// Sanity on content: the journal must hold every structural kind.
	evs, err := ledger.ReadJSONL(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, ev := range evs {
		kinds[ev.Kind]++
	}
	if kinds[ledger.KindRoundBegin] != rounds || kinds[ledger.KindCommit] != rounds {
		t.Errorf("journal kinds %v, want %d round_begin and commit", kinds, rounds)
	}
	if kinds[ledger.KindAttempt] == 0 {
		t.Error("journal holds no attempt events")
	}
}

// spanningParticipant wraps a chaos participant and reports a client-side
// span summary when the request carries a trace — the in-process stand-in
// for a remote client stamping its local spans.
type spanningParticipant struct{ *chaosParticipant }

func (p *spanningParticipant) Round(req RoundRequest) (RoundResponse, error) {
	resp, err := p.chaosParticipant.Round(req)
	if err == nil && req.Trace.Valid() {
		resp.Spans = []obs.SpanSummary{{Name: obs.SpanClientRound, StartNs: 0, DurNs: 1_000_000}}
	}
	return resp, err
}

// TestChaosStitchedRoundTrace runs one faulty round against a live Telemetry
// sink and asserts the stitched trace is complete: the fl_round root span,
// per-attempt child spans, the fault event with its verdict, and the
// client-grafted span joined by trace ID under its attempt.
func TestChaosStitchedRoundTrace(t *testing.T) {
	seed := chaosSeed(t)
	script := faultinject.Scripted{
		{Layer: faultinject.LayerParticipant, Client: "edge-01", Round: 1, Attempt: 0}: {Drop: true},
	}
	srv := chaosServer(t, 0, func(cfg *ServerConfig) {
		cfg.Quorum = 0.6
		cfg.Retry = RetryConfig{MaxAttempts: 2, Seed: seed}
		cfg.FaultPolicy = script
	})
	for _, p := range chaosPool(4) {
		srv.Register(&spanningParticipant{p.(*chaosParticipant)})
	}
	tel := obs.NewBoFL(obs.Real{})
	srv.SetSink(tel)

	res, err := srv.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	want := obs.MintTrace(17, 1)
	if res.TraceID != want.TraceID {
		t.Fatalf("result trace ID %q, want deterministic %q", res.TraceID, want.TraceID)
	}
	evs := tel.Tracer.EventsFor(res.TraceID)
	if len(evs) == 0 {
		t.Fatal("no events stitched under the round trace")
	}
	var rootSpans, attemptSpans, faultEvents, grafted int
	var faultVerdict string
	for _, ev := range evs {
		switch ev.Name {
		case obs.SpanFLRound:
			rootSpans++
			if ev.Labels.Get(obs.LabelSpanID) != want.SpanID {
				t.Errorf("root span ID %q, want %q", ev.Labels.Get(obs.LabelSpanID), want.SpanID)
			}
		case obs.SpanFLAttempt:
			attemptSpans++
			if ev.Labels.Get("client") == "" || ev.Labels.Get("attempt") == "" {
				t.Errorf("attempt span missing client/attempt labels: %v", ev.Labels)
			}
		case obs.EventFLFault:
			faultEvents++
			faultVerdict = ev.Labels.Get("verdict")
		case obs.SpanClientRound:
			if ev.Labels.Get("clock") == "client-local" {
				grafted++
				if ev.Labels.Get(obs.LabelParentID) == "" {
					t.Error("grafted client span has no parent span")
				}
			}
		}
	}
	if rootSpans != 1 {
		t.Errorf("%d fl_round root spans, want 1", rootSpans)
	}
	// 4 clients; edge-01's first attempt drops and its retry lands: 5 total.
	if attemptSpans != 5 {
		t.Errorf("%d fl_attempt spans, want 5", attemptSpans)
	}
	if faultEvents != 1 || faultVerdict != "drop" {
		t.Errorf("fault events %d (verdict %q), want exactly one drop", faultEvents, faultVerdict)
	}
	if grafted != 4 {
		t.Errorf("%d grafted client spans, want 4", grafted)
	}
}
