package fl

import (
	"fmt"
	"time"

	"bofl/internal/core"
	"bofl/internal/device"
	"bofl/internal/ml"
	"bofl/internal/obs"
	"bofl/internal/simclock"
)

// Client is one FL participant: a simulated edge device holding a local data
// shard, a trainable model replica, and a pace controller that decides the
// DVFS configuration of every training job.
type Client struct {
	id         string
	dev        *device.Device
	workload   device.Workload
	meter      *device.Meter
	clock      *simclock.Sim
	model      ml.Model
	batches    [][]ml.Example
	numExample int
	controller core.PaceController
	lr         float64

	cursor      int
	totalEnergy float64
	sink        obs.Sink

	// stepScale is how many optimization steps the client runs per job — its
	// local pace multiplier; 1 is the nominal pace.
	stepScale int
	// Round-scoped aggregation-protocol state, installed by BeginRound.
	// prox is the FedProx μ; globalRef snapshots the round's incoming global
	// model (proximal anchor and SCAFFOLD reference); ctlServer/ctlLocal are
	// the SCAFFOLD control variates c and c_i, and corr their difference
	// c − c_i — nil whenever it is identically zero, so the correction loop
	// is skipped and a zero-variate round trains bitwise like FedAvg.
	prox       float64
	globalRef  []float64
	ctlServer  []float64
	ctlLocal   []float64
	corr       []float64
	scaffold   bool
	roundSteps int
}

// SetSink installs a telemetry sink on the client and, when the pace
// controller supports one, on the controller too (the BoFL controller then
// records its domain metrics into the same registry).
func (c *Client) SetSink(s obs.Sink) {
	c.sink = obs.OrNop(s)
	if ss, ok := c.controller.(interface{ SetSink(obs.Sink) }); ok {
		ss.SetSink(c.sink)
	}
}

// ClientConfig bundles a client's construction parameters.
type ClientConfig struct {
	ID         string
	Device     *device.Device
	Workload   device.Workload
	Model      ml.Model
	Data       []ml.Example
	BatchSize  int
	LearnRate  float64
	Controller core.PaceController
	Noise      device.NoiseModel
	Seed       int64
	Clock      *simclock.Sim // optional; a fresh clock is created if nil
	// StepScale is the client's local pace multiplier: optimization steps
	// run per job. 0 means 1 (the nominal pace). Heterogeneous values across
	// a fleet reproduce the variable local-step regime FedNova normalizes.
	StepScale int
}

// NewClient validates the configuration and builds a client.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("fl: client needs an id")
	}
	if cfg.Device == nil || cfg.Model == nil || cfg.Controller == nil {
		return nil, fmt.Errorf("fl: client %q missing device, model or controller", cfg.ID)
	}
	if len(cfg.Data) == 0 {
		return nil, fmt.Errorf("fl: client %q has no local data", cfg.ID)
	}
	if cfg.LearnRate <= 0 {
		return nil, fmt.Errorf("fl: client %q learning rate %v", cfg.ID, cfg.LearnRate)
	}
	batches, err := ml.Batches(cfg.Data, cfg.BatchSize)
	if err != nil {
		return nil, fmt.Errorf("fl: client %q: %w", cfg.ID, err)
	}
	if cfg.StepScale < 0 {
		return nil, fmt.Errorf("fl: client %q step scale %d", cfg.ID, cfg.StepScale)
	}
	stepScale := cfg.StepScale
	if stepScale == 0 {
		stepScale = 1
	}
	noise := cfg.Noise
	if noise == (device.NoiseModel{}) {
		noise = device.DefaultNoise()
	}
	clock := cfg.Clock
	if clock == nil {
		clock = simclock.NewSim(time.Unix(0, 0))
	}
	return &Client{
		id:         cfg.ID,
		dev:        cfg.Device,
		workload:   cfg.Workload,
		meter:      device.NewMeter(cfg.Device, noise, cfg.Seed),
		clock:      clock,
		model:      cfg.Model,
		batches:    batches,
		numExample: len(cfg.Data),
		controller: cfg.Controller,
		lr:         cfg.LearnRate,
		sink:       obs.Nop,
		stepScale:  stepScale,
	}, nil
}

// ID returns the client identifier.
func (c *Client) ID() string { return c.id }

// NumExamples returns the local dataset size (FedAvg weighting).
func (c *Client) NumExamples() int { return c.numExample }

// TotalEnergy returns the cumulative training energy in Joules.
func (c *Client) TotalEnergy() float64 { return c.totalEnergy }

// Model exposes the local model replica.
func (c *Client) Model() ml.Model { return c.model }

// TMin reports the client's minimum feasible round time for `jobs` jobs.
func (c *Client) TMin(jobs int) (float64, error) {
	lat, err := c.dev.Latency(c.workload, c.dev.Space().Max())
	if err != nil {
		return 0, err
	}
	return lat * float64(jobs), nil
}

// SetParams installs global model parameters (model download).
func (c *Client) SetParams(params []float64) error {
	p := c.model.Params()
	if len(params) != len(p) {
		return fmt.Errorf("fl: client %q: %d params, model has %d", c.id, len(params), len(p))
	}
	copy(p, params)
	return nil
}

// BeginRound installs the round's global parameters and the aggregation
// protocol the request names: the FedProx proximal anchor, or the SCAFFOLD
// server control variate. Corrections that are identically zero (μ = 0, or
// c − c_i = 0 on a fresh SCAFFOLD round) are disabled outright, so such
// rounds train bitwise-identically to plain FedAvg.
func (c *Client) BeginRound(req RoundRequest) error {
	if err := c.SetParams(req.Params); err != nil {
		return err
	}
	dim := len(req.Params)
	c.prox, c.corr, c.scaffold = 0, nil, false
	switch req.Alg {
	case AlgFedProx:
		if req.Prox < 0 {
			return fmt.Errorf("fl: client %q: proximal μ %v", c.id, req.Prox)
		}
		c.prox = req.Prox
		if c.prox > 0 {
			c.globalRef = append(c.globalRef[:0], req.Params...)
		}
	case AlgScaffold:
		if len(req.Aux) != dim {
			return fmt.Errorf("fl: client %q: control variate has %d dims, model has %d", c.id, len(req.Aux), dim)
		}
		c.scaffold = true
		c.globalRef = append(c.globalRef[:0], req.Params...)
		c.ctlServer = append(c.ctlServer[:0], req.Aux...)
		if len(c.ctlLocal) != dim {
			c.ctlLocal = make([]float64, dim)
		}
		zero := true
		for j := range c.ctlServer {
			if c.ctlServer[j] != c.ctlLocal[j] {
				zero = false
				break
			}
		}
		if !zero {
			if len(c.corr) != dim {
				c.corr = make([]float64, dim)
			} else {
				c.corr = c.corr[:dim]
			}
			for j := range c.corr {
				c.corr[j] = c.ctlServer[j] - c.ctlLocal[j]
			}
		}
	}
	return nil
}

// FinishRound attaches the client's protocol return to an outgoing response:
// the local step count every round, plus — under SCAFFOLD — the
// control-variate delta Δc_i = −c + (x − y_i)/(τ·η) (option II of
// Karimireddy et al.), with the local variate updated in place.
func (c *Client) FinishRound(resp *RoundResponse) {
	resp.Steps = c.roundSteps
	if !c.scaffold || c.roundSteps <= 0 {
		return
	}
	p := c.model.Params()
	inv := 1 / (float64(c.roundSteps) * c.lr)
	delta := make([]float64, len(p))
	for j := range p {
		delta[j] = -c.ctlServer[j] + (c.globalRef[j]-p[j])*inv
		c.ctlLocal[j] += delta[j]
	}
	resp.Aux = delta
}

// Params returns a copy of the local model parameters (model upload).
func (c *Client) Params() []float64 {
	p := c.model.Params()
	out := make([]float64, len(p))
	copy(out, p)
	return out
}

// executor adapts one training job to core.Executor: it trains the next
// minibatch(es) for real — stepScale optimization steps per job, each
// followed by any active protocol correction — then charges the simulated
// hardware cost of running the job under the requested DVFS configuration
// and advances the virtual clock.
func (c *Client) executor() core.Executor {
	return core.ExecutorFunc(func(cfg device.Config) (core.JobResult, error) {
		for s := 0; s < c.stepScale; s++ {
			batch := c.batches[c.cursor%len(c.batches)]
			c.cursor++
			if _, err := ml.TrainStep(c.model, batch, c.lr); err != nil {
				return core.JobResult{}, fmt.Errorf("fl: client %q train step: %w", c.id, err)
			}
			c.roundSteps++
			if c.prox > 0 || c.corr != nil {
				c.applyStepCorrections()
			}
		}
		trueLat, err := c.dev.Latency(c.workload, cfg)
		if err != nil {
			return core.JobResult{}, err
		}
		m, err := c.meter.Measure(c.workload, cfg, trueLat)
		if err != nil {
			return core.JobResult{}, err
		}
		c.clock.Advance(time.Duration(m.Latency * float64(time.Second)))
		return core.JobResult{Latency: m.Latency, Energy: m.Energy}, nil
	})
}

// applyStepCorrections applies the round's per-step protocol terms to the
// replica after an SGD step: the FedProx proximal pull toward the round's
// global model, and the SCAFFOLD variate correction −η·(c − c_i). Callers
// skip the call when both are inactive, keeping the nominal path untouched.
func (c *Client) applyStepCorrections() {
	p := c.model.Params()
	if c.prox > 0 {
		k := c.lr * c.prox
		for j, g := range c.globalRef {
			p[j] -= k * (p[j] - g)
		}
	}
	if c.corr != nil {
		for j, d := range c.corr {
			p[j] -= c.lr * d
		}
	}
}

// TrainRound runs one FL round of `jobs` minibatch jobs under the round
// deadline, driven by the client's pace controller.
func (c *Client) TrainRound(round, jobs int, deadline float64) (core.RoundReport, error) {
	return c.TrainRoundCtx(round, jobs, deadline, obs.TraceContext{})
}

// TrainRoundCtx is TrainRound carrying the server-propagated round trace
// context: when tc is valid the client's round span is stamped with the
// distributed trace/span IDs, so a client-side scrape shows which round
// trace each local span belongs to.
func (c *Client) TrainRoundCtx(round, jobs int, deadline float64, tc obs.TraceContext) (core.RoundReport, error) {
	defer c.sink.Span(obs.SpanClientRound, traceLabels(tc)...)()
	c.roundSteps = 0
	rep, err := c.controller.RunRound(jobs, deadline, c.executor())
	if err != nil {
		return core.RoundReport{}, fmt.Errorf("fl: client %q round %d: %w", c.id, round, err)
	}
	c.totalEnergy += rep.Energy
	return rep, nil
}

// ConfigWindow runs the controller's between-round work (MBO) during the
// configuration/reporting window, as §4.3 prescribes.
func (c *Client) ConfigWindow() (core.MBOReport, error) {
	return c.ConfigWindowCtx(obs.TraceContext{})
}

// ConfigWindowCtx is ConfigWindow stamped with the propagated trace context.
func (c *Client) ConfigWindowCtx(tc obs.TraceContext) (core.MBOReport, error) {
	defer c.sink.Span(obs.SpanClientWindow, traceLabels(tc)...)()
	return c.controller.BetweenRounds()
}

// traceLabels turns a propagated context into span labels; an invalid or
// absent context contributes none, keeping untraced runs label-free.
func traceLabels(tc obs.TraceContext) []obs.Label {
	if !tc.Valid() {
		return nil
	}
	return tc.ChildLabels()
}

// Clock exposes the client's virtual clock (for harnesses that account
// elapsed simulated time).
func (c *Client) Clock() *simclock.Sim { return c.clock }
