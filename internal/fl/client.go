package fl

import (
	"fmt"
	"time"

	"bofl/internal/core"
	"bofl/internal/device"
	"bofl/internal/ml"
	"bofl/internal/obs"
	"bofl/internal/simclock"
)

// Client is one FL participant: a simulated edge device holding a local data
// shard, a trainable model replica, and a pace controller that decides the
// DVFS configuration of every training job.
type Client struct {
	id         string
	dev        *device.Device
	workload   device.Workload
	meter      *device.Meter
	clock      *simclock.Sim
	model      ml.Model
	batches    [][]ml.Example
	numExample int
	controller core.PaceController
	lr         float64

	cursor      int
	totalEnergy float64
	sink        obs.Sink
}

// SetSink installs a telemetry sink on the client and, when the pace
// controller supports one, on the controller too (the BoFL controller then
// records its domain metrics into the same registry).
func (c *Client) SetSink(s obs.Sink) {
	c.sink = obs.OrNop(s)
	if ss, ok := c.controller.(interface{ SetSink(obs.Sink) }); ok {
		ss.SetSink(c.sink)
	}
}

// ClientConfig bundles a client's construction parameters.
type ClientConfig struct {
	ID         string
	Device     *device.Device
	Workload   device.Workload
	Model      ml.Model
	Data       []ml.Example
	BatchSize  int
	LearnRate  float64
	Controller core.PaceController
	Noise      device.NoiseModel
	Seed       int64
	Clock      *simclock.Sim // optional; a fresh clock is created if nil
}

// NewClient validates the configuration and builds a client.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("fl: client needs an id")
	}
	if cfg.Device == nil || cfg.Model == nil || cfg.Controller == nil {
		return nil, fmt.Errorf("fl: client %q missing device, model or controller", cfg.ID)
	}
	if len(cfg.Data) == 0 {
		return nil, fmt.Errorf("fl: client %q has no local data", cfg.ID)
	}
	if cfg.LearnRate <= 0 {
		return nil, fmt.Errorf("fl: client %q learning rate %v", cfg.ID, cfg.LearnRate)
	}
	batches, err := ml.Batches(cfg.Data, cfg.BatchSize)
	if err != nil {
		return nil, fmt.Errorf("fl: client %q: %w", cfg.ID, err)
	}
	noise := cfg.Noise
	if noise == (device.NoiseModel{}) {
		noise = device.DefaultNoise()
	}
	clock := cfg.Clock
	if clock == nil {
		clock = simclock.NewSim(time.Unix(0, 0))
	}
	return &Client{
		id:         cfg.ID,
		dev:        cfg.Device,
		workload:   cfg.Workload,
		meter:      device.NewMeter(cfg.Device, noise, cfg.Seed),
		clock:      clock,
		model:      cfg.Model,
		batches:    batches,
		numExample: len(cfg.Data),
		controller: cfg.Controller,
		lr:         cfg.LearnRate,
		sink:       obs.Nop,
	}, nil
}

// ID returns the client identifier.
func (c *Client) ID() string { return c.id }

// NumExamples returns the local dataset size (FedAvg weighting).
func (c *Client) NumExamples() int { return c.numExample }

// TotalEnergy returns the cumulative training energy in Joules.
func (c *Client) TotalEnergy() float64 { return c.totalEnergy }

// Model exposes the local model replica.
func (c *Client) Model() ml.Model { return c.model }

// TMin reports the client's minimum feasible round time for `jobs` jobs.
func (c *Client) TMin(jobs int) (float64, error) {
	lat, err := c.dev.Latency(c.workload, c.dev.Space().Max())
	if err != nil {
		return 0, err
	}
	return lat * float64(jobs), nil
}

// SetParams installs global model parameters (model download).
func (c *Client) SetParams(params []float64) error {
	p := c.model.Params()
	if len(params) != len(p) {
		return fmt.Errorf("fl: client %q: %d params, model has %d", c.id, len(params), len(p))
	}
	copy(p, params)
	return nil
}

// Params returns a copy of the local model parameters (model upload).
func (c *Client) Params() []float64 {
	p := c.model.Params()
	out := make([]float64, len(p))
	copy(out, p)
	return out
}

// executor adapts one training job to core.Executor: it trains the next
// minibatch for real, then charges the simulated hardware cost of running it
// under the requested DVFS configuration and advances the virtual clock.
func (c *Client) executor() core.Executor {
	return core.ExecutorFunc(func(cfg device.Config) (core.JobResult, error) {
		batch := c.batches[c.cursor%len(c.batches)]
		c.cursor++
		if _, err := ml.TrainStep(c.model, batch, c.lr); err != nil {
			return core.JobResult{}, fmt.Errorf("fl: client %q train step: %w", c.id, err)
		}
		trueLat, err := c.dev.Latency(c.workload, cfg)
		if err != nil {
			return core.JobResult{}, err
		}
		m, err := c.meter.Measure(c.workload, cfg, trueLat)
		if err != nil {
			return core.JobResult{}, err
		}
		c.clock.Advance(time.Duration(m.Latency * float64(time.Second)))
		return core.JobResult{Latency: m.Latency, Energy: m.Energy}, nil
	})
}

// TrainRound runs one FL round of `jobs` minibatch jobs under the round
// deadline, driven by the client's pace controller.
func (c *Client) TrainRound(round, jobs int, deadline float64) (core.RoundReport, error) {
	return c.TrainRoundCtx(round, jobs, deadline, obs.TraceContext{})
}

// TrainRoundCtx is TrainRound carrying the server-propagated round trace
// context: when tc is valid the client's round span is stamped with the
// distributed trace/span IDs, so a client-side scrape shows which round
// trace each local span belongs to.
func (c *Client) TrainRoundCtx(round, jobs int, deadline float64, tc obs.TraceContext) (core.RoundReport, error) {
	defer c.sink.Span(obs.SpanClientRound, traceLabels(tc)...)()
	rep, err := c.controller.RunRound(jobs, deadline, c.executor())
	if err != nil {
		return core.RoundReport{}, fmt.Errorf("fl: client %q round %d: %w", c.id, round, err)
	}
	c.totalEnergy += rep.Energy
	return rep, nil
}

// ConfigWindow runs the controller's between-round work (MBO) during the
// configuration/reporting window, as §4.3 prescribes.
func (c *Client) ConfigWindow() (core.MBOReport, error) {
	return c.ConfigWindowCtx(obs.TraceContext{})
}

// ConfigWindowCtx is ConfigWindow stamped with the propagated trace context.
func (c *Client) ConfigWindowCtx(tc obs.TraceContext) (core.MBOReport, error) {
	defer c.sink.Span(obs.SpanClientWindow, traceLabels(tc)...)()
	return c.controller.BetweenRounds()
}

// traceLabels turns a propagated context into span labels; an invalid or
// absent context contributes none, keeping untraced runs label-free.
func traceLabels(tc obs.TraceContext) []obs.Label {
	if !tc.Valid() {
		return nil
	}
	return tc.ChildLabels()
}

// Clock exposes the client's virtual clock (for harnesses that account
// elapsed simulated time).
func (c *Client) Clock() *simclock.Sim { return c.clock }
