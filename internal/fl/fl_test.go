package fl

import (
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"bofl/internal/core"
	"bofl/internal/device"
	"bofl/internal/ml"
)

func TestTasksMatchTable2(t *testing.T) {
	agx := device.JetsonAGX()
	specs, err := Tasks(agx, 2.0, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		name          string
		b, e, n, jobs int
		tmin          float64
	}{
		{"CIFAR10-ViT", 32, 5, 40, 200, 37.2},
		{"ImageNet-ResNet50", 8, 2, 90, 180, 46.9},
		{"IMDB-LSTM", 8, 4, 40, 160, 46.1},
	}
	for i, w := range want {
		s := specs[i]
		if s.Name != w.name || s.BatchSize != w.b || s.Epochs != w.e || s.Minibatches != w.n {
			t.Errorf("spec %d = %+v, want %+v", i, s, w)
		}
		if s.Jobs() != w.jobs {
			t.Errorf("%s: jobs %d, want %d", s.Name, s.Jobs(), w.jobs)
		}
		tmin, err := TMin(agx, s)
		if err != nil {
			t.Fatal(err)
		}
		if diff := tmin - w.tmin; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("%s: T_min %v, want %v", s.Name, tmin, w.tmin)
		}
	}

	tx2 := device.JetsonTX2()
	specsTX2, err := Tasks(tx2, 2.0, 100)
	if err != nil {
		t.Fatal(err)
	}
	wantN := []int{15, 30, 20}
	for i, s := range specsTX2 {
		if s.Minibatches != wantN[i] {
			t.Errorf("tx2 %s: N = %d, want %d", s.Name, s.Minibatches, wantN[i])
		}
	}
}

func TestTaskValidation(t *testing.T) {
	bad := TaskSpec{Name: "x", BatchSize: 0, Epochs: 1, Minibatches: 1, Rounds: 1, DeadlineRatio: 2}
	if err := bad.Validate(); err == nil {
		t.Error("batch size 0 accepted")
	}
	bad = TaskSpec{Name: "x", BatchSize: 1, Epochs: 1, Minibatches: 1, Rounds: 1, DeadlineRatio: 0.5}
	if err := bad.Validate(); err == nil {
		t.Error("ratio < 1 accepted")
	}
}

func TestSampleDeadlines(t *testing.T) {
	ds, err := SampleDeadlines(40, 2.0, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 100 {
		t.Fatalf("got %d deadlines", len(ds))
	}
	for _, d := range ds {
		if d < 40 || d > 80 {
			t.Fatalf("deadline %v outside [40, 80]", d)
		}
	}
	ds2, err := SampleDeadlines(40, 2.0, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds {
		if ds[i] != ds2[i] {
			t.Fatal("deadlines not deterministic per seed")
		}
	}
	if _, err := SampleDeadlines(0, 2, 10, 1); err == nil {
		t.Error("tmin 0 accepted")
	}
	if _, err := SampleDeadlines(40, 0.5, 10, 1); err == nil {
		t.Error("ratio < 1 accepted")
	}
	if _, err := SampleDeadlines(40, 2, 0, 1); err == nil {
		t.Error("0 rounds accepted")
	}
}

// newTestClient builds a Performant-paced client on a tiny dataset.
func newTestClient(t *testing.T, id string, seed int64) *Client {
	t.Helper()
	dev := device.JetsonAGX()
	model, err := ml.NewMLP(8, 8, 4, seed)
	if err != nil {
		t.Fatal(err)
	}
	data, err := ml.Blobs(64, 8, 4, 0.6, seed)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := core.NewPerformant(dev.Space())
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(ClientConfig{
		ID:         id,
		Device:     dev,
		Workload:   device.ViT,
		Model:      model,
		Data:       data,
		BatchSize:  8,
		LearnRate:  0.2,
		Controller: ctrl,
		Seed:       seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewClientValidation(t *testing.T) {
	dev := device.JetsonAGX()
	model, err := ml.NewMLP(4, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	data, err := ml.Blobs(8, 4, 2, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := core.NewPerformant(dev.Space())
	if err != nil {
		t.Fatal(err)
	}
	cases := []ClientConfig{
		{Device: dev, Workload: device.ViT, Model: model, Data: data, BatchSize: 4, LearnRate: 0.1, Controller: ctrl},
		{ID: "a", Workload: device.ViT, Model: model, Data: data, BatchSize: 4, LearnRate: 0.1, Controller: ctrl},
		{ID: "a", Device: dev, Workload: device.ViT, Model: model, BatchSize: 4, LearnRate: 0.1, Controller: ctrl},
		{ID: "a", Device: dev, Workload: device.ViT, Model: model, Data: data, BatchSize: 4, Controller: ctrl},
		{ID: "a", Device: dev, Workload: device.ViT, Model: model, Data: data, BatchSize: 0, LearnRate: 0.1, Controller: ctrl},
	}
	for i, cfg := range cases {
		if _, err := NewClient(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestClientTrainRoundAdvancesClockAndModel(t *testing.T) {
	c := newTestClient(t, "c0", 1)
	before, err := c.Model().Loss(flattenBatches(c.batches))
	if err != nil {
		t.Fatal(err)
	}
	start := c.Clock().Now()
	rep, err := c.TrainRound(1, 40, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.DeadlineMet {
		t.Error("performant round missed a generous deadline")
	}
	if c.Clock().Now().Sub(start) <= 0 {
		t.Error("virtual clock did not advance")
	}
	if c.TotalEnergy() <= 0 {
		t.Error("no energy charged")
	}
	for i := 0; i < 5; i++ {
		if _, err := c.TrainRound(2+i, 40, 100); err != nil {
			t.Fatal(err)
		}
	}
	after, err := c.Model().Loss(flattenBatches(c.batches))
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Errorf("training did not reduce loss: %v → %v", before, after)
	}
}

func flattenBatches(batches [][]ml.Example) []ml.Example {
	var out []ml.Example
	for _, b := range batches {
		out = append(out, b...)
	}
	return out
}

func TestClientSetParamsValidation(t *testing.T) {
	c := newTestClient(t, "c0", 1)
	if err := c.SetParams(make([]float64, 3)); err == nil {
		t.Error("wrong-length params accepted")
	}
	p := c.Params()
	p[0] = 42
	if err := c.SetParams(p); err != nil {
		t.Fatal(err)
	}
	if c.Params()[0] != 42 {
		t.Error("SetParams did not install values")
	}
	// Params must return a copy.
	q := c.Params()
	q[0] = -1
	if c.Params()[0] == -1 {
		t.Error("Params exposes internal state")
	}
}

// buildFederation wires n in-process clients to a server, all sharing one
// global MLP on a blobs task.
func buildFederation(t *testing.T, n int, selector Selector, perRound int) (*Server, []*Client, []ml.Example) {
	t.Helper()
	dev := device.JetsonAGX()
	global, err := ml.NewMLP(8, 10, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	all, err := ml.Blobs(400+n*100, 8, 4, 0.6, 5)
	if err != nil {
		t.Fatal(err)
	}
	test := all[:100]
	shards, err := ml.Partition(all[100:], n)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		InitialParams:        global.Params(),
		Jobs:                 30,
		DeadlineRatio:        2.0,
		Selector:             selector,
		ParticipantsPerRound: perRound,
		Seed:                 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]*Client, n)
	for i := 0; i < n; i++ {
		model, err := ml.NewMLP(8, 10, 4, 99) // same architecture
		if err != nil {
			t.Fatal(err)
		}
		ctrl, err := core.NewPerformant(dev.Space())
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewClient(ClientConfig{
			ID:         fmt.Sprintf("client-%d", i),
			Device:     dev,
			Workload:   device.ViT,
			Model:      model,
			Data:       shards[i],
			BatchSize:  8,
			LearnRate:  0.15,
			Controller: ctrl,
			Seed:       int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
		srv.Register(&LocalParticipant{Client: c})
	}
	return srv, clients, test
}

func TestFedAvgConverges(t *testing.T) {
	srv, _, test := buildFederation(t, 4, AllSelector{}, 0)
	results, err := srv.Run(12)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 12 {
		t.Fatalf("ran %d rounds", len(results))
	}
	eval, err := ml.NewMLP(8, 10, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	copy(eval.Params(), srv.GlobalParams())
	acc, err := ml.Accuracy(eval, test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.85 {
		t.Errorf("federated accuracy %v, want ≥0.85", acc)
	}
	// Every round met its deadline (Performant pacing).
	for _, res := range results {
		for _, rep := range res.Reports {
			if !rep.DeadlineMet {
				t.Errorf("round %d missed deadline", res.Round)
			}
		}
		if res.Deadline <= 0 {
			t.Errorf("round %d deadline %v", res.Round, res.Deadline)
		}
	}
}

func TestRandomSelectorSubsets(t *testing.T) {
	srv, _, _ := buildFederation(t, 5, NewRandomSelector(1), 2)
	res, err := srv.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Responses) != 2 {
		t.Errorf("selected %d participants, want 2", len(res.Responses))
	}
}

func TestServerValidation(t *testing.T) {
	if _, err := NewServer(ServerConfig{Jobs: 1, DeadlineRatio: 2}); err == nil {
		t.Error("missing params accepted")
	}
	if _, err := NewServer(ServerConfig{InitialParams: []float64{1}, Jobs: 0, DeadlineRatio: 2}); err == nil {
		t.Error("jobs 0 accepted")
	}
	if _, err := NewServer(ServerConfig{InitialParams: []float64{1}, Jobs: 1, DeadlineRatio: 0.5}); err == nil {
		t.Error("ratio < 1 accepted")
	}
	srv, err := NewServer(ServerConfig{InitialParams: []float64{1}, Jobs: 1, DeadlineRatio: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.RunRound(); err == nil {
		t.Error("round with no participants accepted")
	}
	if _, err := srv.Run(0); err == nil {
		t.Error("0 rounds accepted")
	}
}

func TestHTTPTransportRoundTrip(t *testing.T) {
	c := newTestClient(t, "http-client", 21)
	ts := httptest.NewServer(NewClientHandler(c))
	defer ts.Close()

	p, err := DialParticipant(ts.URL, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if p.ID() != "http-client" {
		t.Errorf("id = %q", p.ID())
	}
	tmin, err := p.TMinFor(40)
	if err != nil {
		t.Fatal(err)
	}
	if tmin <= 0 {
		t.Errorf("tmin %v", tmin)
	}
	if _, err := p.TMinFor(0); err == nil {
		t.Error("jobs 0 accepted")
	}
	resp, err := p.Round(RoundRequest{Round: 1, Params: c.Params(), Jobs: 20, Deadline: 60})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ClientID != "http-client" || len(resp.Params) != len(c.Params()) {
		t.Errorf("bad response: client %q, %d params", resp.ClientID, len(resp.Params))
	}
	if !resp.Report.DeadlineMet {
		t.Error("remote round missed deadline")
	}
}

func TestHTTPTransportErrors(t *testing.T) {
	if _, err := DialParticipant("http://127.0.0.1:1", time.Second); err == nil {
		t.Error("dead endpoint accepted")
	}
	c := newTestClient(t, "http-client", 22)
	ts := httptest.NewServer(NewClientHandler(c))
	defer ts.Close()
	p, err := DialParticipant(ts.URL, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Bad round request (wrong param length) must surface as an error.
	if _, err := p.Round(RoundRequest{Round: 1, Params: []float64{1}, Jobs: 5, Deadline: 60}); err == nil {
		t.Error("wrong param length accepted")
	}
}

func TestEndToEndBoflFederation(t *testing.T) {
	// One BoFL-paced client in a federation: the FL loop must run through
	// all three phases without missing deadlines while the model improves.
	dev := device.JetsonAGX()
	space := dev.Space()
	model, err := ml.NewMLP(8, 10, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	data, err := ml.Blobs(300, 8, 4, 0.6, 8)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := core.New(space, core.Options{Seed: 5, Tau: 2, MBORestarts: 1, MBOIters: 3})
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(ClientConfig{
		ID:         "bofl-client",
		Device:     dev,
		Workload:   device.ViT,
		Model:      model,
		Data:       data[:240],
		BatchSize:  8,
		LearnRate:  0.15,
		Controller: ctrl,
		Seed:       6,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		InitialParams: model.Params(),
		Jobs:          60,
		DeadlineRatio: 2.5,
		Seed:          4,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Register(&LocalParticipant{Client: client})
	results, err := srv.Run(18)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		for _, rep := range res.Reports {
			if !rep.DeadlineMet {
				t.Errorf("round %d missed deadline (phase %v)", res.Round, rep.Phase)
			}
		}
	}
	eval, err := ml.NewMLP(8, 10, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	copy(eval.Params(), srv.GlobalParams())
	acc, err := ml.Accuracy(eval, data[240:])
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.8 {
		t.Errorf("accuracy %v after 18 BoFL rounds, want ≥0.8", acc)
	}
}
