package fl

import (
	"strings"
	"testing"

	"bofl/internal/core"
	"bofl/internal/device"
	"bofl/internal/ml"
)

// algClient is newTestClient with a local pace multiplier: the client runs
// stepScale optimization steps per job, the regime FedNova normalizes.
func algClient(t *testing.T, id string, seed int64, stepScale int) *Client {
	t.Helper()
	dev := device.JetsonAGX()
	model, err := ml.NewMLP(8, 8, 4, seed)
	if err != nil {
		t.Fatal(err)
	}
	data, err := ml.Blobs(64, 8, 4, 0.6, seed)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := core.NewPerformant(dev.Space())
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(ClientConfig{
		ID:         id,
		Device:     dev,
		Workload:   device.ViT,
		Model:      model,
		Data:       data,
		BatchSize:  8,
		LearnRate:  0.2,
		Controller: ctrl,
		Seed:       seed,
		StepScale:  stepScale,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// runAlgRounds trains an identical 5-client federation under agg for the
// given number of rounds and returns the committed global model after each
// round. scale maps client index to its pace multiplier (nil means nominal).
func runAlgRounds(t *testing.T, agg Aggregator, rounds int, scale func(i int) int) [][]float64 {
	t.Helper()
	const clients = 5
	first := algClient(t, "c0", 1, 1)
	srv, err := NewServer(ServerConfig{
		InitialParams: first.Params(),
		Jobs:          3,
		DeadlineRatio: 2,
		Seed:          42,
		Aggregator:    agg,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < clients; i++ {
		ss := 1
		if scale != nil {
			ss = scale(i)
		}
		srv.Register(&LocalParticipant{Client: algClient(t, "c"+string(rune('0'+i)), int64(i+1), ss)})
	}
	out := make([][]float64, 0, rounds)
	for r := 0; r < rounds; r++ {
		if _, err := srv.RunRound(); err != nil {
			t.Fatalf("round %d: %v", r+1, err)
		}
		out = append(out, srv.GlobalParams())
	}
	return out
}

func mustAgg(t *testing.T, name string, mu float64) Aggregator {
	t.Helper()
	agg, err := NewAggregator(name, mu)
	if err != nil {
		t.Fatal(err)
	}
	return agg
}

func TestNewAggregatorRegistry(t *testing.T) {
	for _, name := range []string{AlgFedAvg, AlgFedProx, AlgFedNova, AlgScaffold} {
		agg := mustAgg(t, name, 0.1)
		if agg.Name() != name {
			t.Errorf("NewAggregator(%q).Name() = %q", name, agg.Name())
		}
	}
	if agg := mustAgg(t, "", 0); agg.Name() != AlgFedAvg {
		t.Errorf("empty name resolved to %q, want fedavg", agg.Name())
	}
	if _, err := NewAggregator("fedsgd", 0); err == nil || !strings.Contains(err.Error(), "unknown aggregator") {
		t.Errorf("unknown name error = %v", err)
	}
	if _, err := NewAggregator(AlgFedProx, -0.5); err == nil {
		t.Error("negative fedprox mu accepted")
	}
}

// TestFedProxMuZeroBitwiseFedAvg guards the plugin refactor against silent
// drift: with μ = 0 the proximal term is inert, so every committed model
// must match the FedAvg fold bit for bit.
func TestFedProxMuZeroBitwiseFedAvg(t *testing.T) {
	base := runAlgRounds(t, FedAvg{}, 3, nil)
	prox := runAlgRounds(t, mustAgg(t, AlgFedProx, 0), 3, nil)
	for r := range base {
		if !bitsEqual(base[r], prox[r]) {
			t.Fatalf("round %d: fedprox μ=0 diverged from fedavg", r+1)
		}
	}
}

// TestFedNovaUniformPaceBitwiseFedAvg: when every client runs exactly the
// nominal step count, FedNova's exact dispersion statistic is zero and the
// commit takes the FedAvg division — bitwise.
func TestFedNovaUniformPaceBitwiseFedAvg(t *testing.T) {
	base := runAlgRounds(t, FedAvg{}, 3, nil)
	nova := runAlgRounds(t, FedNova{}, 3, nil)
	for r := range base {
		if !bitsEqual(base[r], nova[r]) {
			t.Fatalf("round %d: uniform-pace fednova diverged from fedavg", r+1)
		}
	}
}

// TestScaffoldFreshRoundBitwiseFedAvg: with zero server and client control
// variates the per-step correction is skipped outright, so the first SCAFFOLD
// round trains and commits bitwise-identically to FedAvg. (Later rounds
// legitimately diverge — the variates are then nonzero.)
func TestScaffoldFreshRoundBitwiseFedAvg(t *testing.T) {
	base := runAlgRounds(t, FedAvg{}, 1, nil)
	sc := NewScaffold()
	got := runAlgRounds(t, sc, 1, nil)
	if !bitsEqual(base[0], got[0]) {
		t.Fatal("fresh scaffold round diverged from fedavg")
	}
	nonzero := false
	for _, v := range sc.ControlVariate() {
		if v != 0 {
			nonzero = true
			break
		}
	}
	if !nonzero {
		t.Fatal("server control variate still zero after a training round")
	}
}

// TestFedNovaHeterogeneousPaceDiverges is the sanity inverse of the
// neutrality tests: once clients run different local step counts, FedNova
// must NOT equal FedAvg (otherwise the normalization is dead code).
func TestFedNovaHeterogeneousPaceDiverges(t *testing.T) {
	scale := func(i int) int { return 1 + i%3 }
	base := runAlgRounds(t, FedAvg{}, 2, scale)
	nova := runAlgRounds(t, FedNova{}, 2, scale)
	if bitsEqual(base[1], nova[1]) {
		t.Fatal("fednova with heterogeneous pace is identical to fedavg")
	}
}

// algStub is a Participant returning a canned update with explicit step
// counts and aux vectors, for pinning the aggregation formulas.
type algStub struct {
	id     string
	params []float64
	n      int
	steps  int
	aux    []float64
}

func (p *algStub) ID() string                        { return p.id }
func (p *algStub) TMinFor(jobs int) (float64, error) { return 1, nil }
func (p *algStub) Round(req RoundRequest) (RoundResponse, error) {
	return RoundResponse{
		ClientID:    p.id,
		Params:      append([]float64(nil), p.params...),
		NumExamples: p.n,
		Steps:       p.steps,
		Aux:         append([]float64(nil), p.aux...),
		Report:      core.RoundReport{Round: req.Round, Jobs: req.Jobs, DeadlineMet: true},
	}, nil
}

func algStubResponses(t *testing.T, stubs []*algStub, round, jobs int) []RoundResponse {
	t.Helper()
	out := make([]RoundResponse, len(stubs))
	for i, s := range stubs {
		r, err := s.Round(RoundRequest{Round: round, Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = r
	}
	return out
}

// TestFedNovaNormalizedCommit pins the normalized-averaging formula on a
// hand-computed case and checks the live streaming fold against the batch
// reference bit for bit.
func TestFedNovaNormalizedCommit(t *testing.T) {
	const jobs = 4
	stubs := []*algStub{
		{id: "a", params: []float64{1, 0}, n: 10, steps: 4},
		{id: "b", params: []float64{0, 1}, n: 30, steps: 8},
	}
	srv, err := NewServer(ServerConfig{
		InitialParams: []float64{0, 0}, Jobs: jobs, DeadlineRatio: 2, Seed: 1,
		Aggregator: FedNova{},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stubs {
		srv.Register(s)
	}
	if _, err := srv.RunRound(); err != nil {
		t.Fatal(err)
	}
	got := srv.GlobalParams()
	// sw = 10·(4/4) + 30·(4/8) = 25, sn = 40, snt = 10·4 + 30·8 = 280,
	// τ_eff = 7, S = [10, 15]; x⁺ = 0 + 7·S/(4·40) = [0.4375, 0.65625] —
	// every operation exact in binary64.
	want := []float64{0.4375, 0.65625}
	if !bitsEqual(got, want) {
		t.Fatalf("fednova commit = %v, want %v", got, want)
	}
	batch, err := BatchAggregate(FedNova{}, []float64{0, 0}, algStubResponses(t, stubs, 1, jobs), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEqual(got, batch) {
		t.Fatalf("streaming fold %v != batch reference %v", got, batch)
	}
}

// TestScaffoldCommitUpdatesVariate pins SCAFFOLD's server-side update: model
// slots commit as the example-weighted average, and the control variate moves
// by the mean of the survivors' deltas.
func TestScaffoldCommitUpdatesVariate(t *testing.T) {
	const jobs = 4
	stubs := []*algStub{
		{id: "a", params: []float64{2, 0}, n: 10, steps: 4, aux: []float64{1, -1}},
		{id: "b", params: []float64{0, 2}, n: 30, steps: 4, aux: []float64{3, 1}},
	}
	agg := NewScaffold()
	srv, err := NewServer(ServerConfig{
		InitialParams: []float64{0, 0}, Jobs: jobs, DeadlineRatio: 2, Seed: 1,
		Aggregator: agg,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stubs {
		srv.Register(s)
	}
	if _, err := srv.RunRound(); err != nil {
		t.Fatal(err)
	}
	if got, want := srv.GlobalParams(), []float64{0.5, 1.5}; !bitsEqual(got, want) {
		t.Fatalf("scaffold commit = %v, want %v", got, want)
	}
	if got, want := agg.ControlVariate(), []float64{2, 0}; !bitsEqual(got, want) {
		t.Fatalf("server variate = %v, want %v", got, want)
	}
	// The batch reference replayed on a clone must match without disturbing
	// the live state.
	batch, err := BatchAggregate(NewScaffold(), []float64{0, 0}, algStubResponses(t, stubs, 1, jobs), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEqual(batch, []float64{0.5, 1.5}) {
		t.Fatalf("batch reference = %v", batch)
	}
}

// TestScaffoldAuxMismatchRoundFatal: a client shipping the wrong number of
// control-variate deltas is an aggregation-fatal validation failure, like a
// wrong-length parameter vector.
func TestScaffoldAuxMismatchRoundFatal(t *testing.T) {
	stubs := []*algStub{
		{id: "a", params: []float64{1, 1}, n: 10, steps: 4, aux: []float64{1}},
	}
	srv, err := NewServer(ServerConfig{
		InitialParams: []float64{0, 0}, Jobs: 4, DeadlineRatio: 2, Seed: 1,
		Aggregator: NewScaffold(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Register(stubs[0])
	if _, err := srv.RunRound(); err == nil || !strings.Contains(err.Error(), "control-variate") {
		t.Fatalf("mismatched aux error = %v", err)
	}
}
