package fl

import (
	"errors"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"bofl/internal/faultinject"
	"bofl/internal/obs"
	"bofl/internal/obs/ledger"
	"bofl/internal/simclock"
)

// This file is the hardened client call path: every Participant.Round dispatch
// goes through a roundCaller that consults the server's fault policy, bounds
// each attempt, and retries transient failures with capped exponential backoff
// and full jitter. With the defaults (no policy, one attempt, no timeout) the
// path collapses to a bare p.Round(req) call — byte-identical to the
// pre-hardening serving plane.

// RetryConfig bounds the per-participant retry loop inside one round.
// The zero value disables retries entirely (one attempt, no timeout).
type RetryConfig struct {
	// MaxAttempts is the per-participant attempt cap per round; values ≤ 1
	// mean a single attempt (no retries).
	MaxAttempts int
	// AttemptTimeout bounds one attempt. An attempt whose injected delay
	// reaches it — or, under the real clock, whose wall time exceeds it — is
	// stripped as a straggler. 0 means unbounded.
	AttemptTimeout time.Duration
	// BaseBackoff is the first backoff ceiling; doubled every retry up to
	// MaxBackoff. Defaults to 100ms when retries are enabled.
	BaseBackoff time.Duration
	// MaxBackoff caps the backoff ceiling. Defaults to 5s.
	MaxBackoff time.Duration
	// Budget caps the total retries across all participants in one round, so
	// a sick fleet cannot multiply round traffic unboundedly. ≤ 0 means no
	// budget cap.
	Budget int
	// Seed drives the backoff jitter (deterministic per client/round/attempt).
	Seed int64
}

// withDefaults fills the backoff defaults.
func (c RetryConfig) withDefaults() RetryConfig {
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	return c
}

// errStraggler tags an attempt stripped for exceeding the attempt timeout;
// the server counts these separately from dropouts.
var errStraggler = errors.New("fl: attempt exceeded timeout (straggler)")

// errBudget tags a failure kept because the round's retry budget ran dry.
var errBudget = errors.New("fl: retry budget exhausted")

// roundCaller drives one server's participant dispatches: fault injection,
// per-attempt bounds, and seeded retry/backoff. Safe for concurrent use; the
// retry budget is the only shared mutable state.
type roundCaller struct {
	cfg    RetryConfig
	policy faultinject.Policy
	clock  simclock.Clock

	// budget is the round's remaining retry allowance; reset each round.
	budget atomic.Int64
}

func newRoundCaller(cfg RetryConfig, policy faultinject.Policy, clock simclock.Clock) *roundCaller {
	if clock == nil {
		clock = simclock.Real{}
	}
	return &roundCaller{cfg: cfg.withDefaults(), policy: faultinject.OrNop(policy), clock: clock}
}

// resetBudget re-arms the per-round retry budget.
func (c *roundCaller) resetBudget() {
	if c.cfg.Budget > 0 {
		c.budget.Store(int64(c.cfg.Budget))
	}
}

// takeBudget claims one retry from the round budget.
func (c *roundCaller) takeBudget() bool {
	if c.cfg.Budget <= 0 {
		return true
	}
	for {
		cur := c.budget.Load()
		if cur <= 0 {
			return false
		}
		if c.budget.CompareAndSwap(cur, cur-1) {
			return true
		}
	}
}

// retryable reports whether a failed attempt is worth retrying. Corrupt
// frames are not: a client shipping damaged bytes is quarantined, not
// hammered.
func retryable(err error) bool {
	return !errors.Is(err, ErrCorruptFrame)
}

// backoff returns the seeded full-jitter wait before retry `attempt`:
// uniform in [0, min(MaxBackoff, BaseBackoff·2^attempt)). Full jitter
// de-synchronizes a fleet of retrying clients while the hash-derived draw
// keeps every chaos run replayable.
func (c *roundCaller) backoff(client string, round, attempt int) time.Duration {
	ceil := c.cfg.BaseBackoff
	for i := 0; i < attempt && ceil < c.cfg.MaxBackoff; i++ {
		ceil *= 2
	}
	if ceil > c.cfg.MaxBackoff {
		ceil = c.cfg.MaxBackoff
	}
	pt := faultinject.Point{Layer: faultinject.LayerParticipant, Client: client, Round: round, Attempt: attempt}
	return faultinject.UnitDuration(c.cfg.Seed, pt, ceil)
}

// attemptRecord is one attempt's ledger-facing verdict, produced by call()
// and journaled by the server inside the fold turnstile so record order is
// deterministic. Every quantity here is derived from the seeded fault plane
// or the deterministic simulation — never from the wall clock.
type attemptRecord struct {
	attempt   int
	verdict   string // ledger.Verdict* vocabulary
	spanID    string // the attempt span in the round trace
	delayNs   int64  // injected straggle / timeout charge
	backoffNs int64  // seeded backoff wait that followed a failed attempt
	wireTx    int64  // serialized bytes sent for the attempt (HTTP only)
	wireRx    int64  // serialized bytes received for the attempt
	detail    string // failure message, empty for ok
}

// verdictOf maps an attempt error onto the ledger verdict vocabulary.
func verdictOf(err error) (verdict, detail string) {
	switch {
	case err == nil:
		return ledger.VerdictOK, ""
	case errors.Is(err, errBudget):
		return ledger.VerdictBudget, err.Error()
	case errors.Is(err, errStraggler):
		return ledger.VerdictStraggler, err.Error()
	case errors.Is(err, ErrCorruptFrame):
		return ledger.VerdictCorrupt, err.Error()
	}
	var fe *faultinject.FaultError
	if errors.As(err, &fe) {
		return fe.Decision.Kind(), err.Error()
	}
	return ledger.VerdictError, err.Error()
}

// wireAccounter is the optional Participant extension reporting the
// serialized bytes the last Round call moved (implemented by
// HTTPParticipant); in-process participants move no wire bytes.
type wireAccounter interface {
	lastWire() (tx, rx int64)
}

// call runs one participant's round with fault injection and retries.
// Returns the successful response plus the per-attempt verdict records, or
// the last attempt's error once attempts, budget, or retryability run out.
// Each attempt is dispatched under its own child span of the round trace, so
// retries are individually visible in the stitched trace.
func (c *roundCaller) call(p Participant, req RoundRequest, sink obs.Sink) (RoundResponse, []attemptRecord, error) {
	id := p.ID()
	max := c.cfg.MaxAttempts
	if max < 1 {
		max = 1
	}
	root := req.Trace
	var recs []attemptRecord
	var lastErr error
	for attempt := 0; attempt < max; attempt++ {
		an := strconv.Itoa(attempt)
		atc := root.Child("attempt", id, an)
		req.Trace = atc
		endAttempt := sink.Span(obs.SpanFLAttempt,
			atc.SpanLabels(obs.L("client", id), obs.L("attempt", an))...)
		resp, delay, err := c.attempt(p, req, id, attempt)
		endAttempt()

		rec := attemptRecord{attempt: attempt, spanID: atc.SpanID, delayNs: delay.Nanoseconds()}
		rec.verdict, rec.detail = verdictOf(err)
		if wa, ok := p.(wireAccounter); ok {
			rec.wireTx, rec.wireRx = wa.lastWire()
		}
		if err == nil {
			recs = append(recs, rec)
			return resp, recs, nil
		}
		sink.Event(obs.EventFLFault,
			atc.SpanLabels(obs.L("client", id), obs.L("verdict", rec.verdict))...)
		lastErr = err
		if !retryable(err) || attempt+1 >= max {
			recs = append(recs, rec)
			break
		}
		if !c.takeBudget() {
			recs = append(recs, rec)
			return RoundResponse{}, recs, fmt.Errorf("%w after attempt %d: %w", errBudget, attempt+1, lastErr)
		}
		sink.Count(obs.MetricFLRetries, 1)
		endRetry := sink.Span(obs.SpanFLRetry, atc.SpanLabels(obs.L("client", id))...)
		b := c.backoff(id, req.Round, attempt)
		rec.backoffNs = b.Nanoseconds()
		recs = append(recs, rec)
		c.clock.Sleep(b)
		endRetry()
	}
	return RoundResponse{}, recs, lastErr
}

// attempt performs one bounded attempt: consult the fault policy, apply
// injected behaviour, run the participant, and push the response through the
// codec-corruption path when demanded. The returned duration is the virtual
// time charged to the attempt by injection (delay or timeout).
func (c *roundCaller) attempt(p Participant, req RoundRequest, id string, attempt int) (RoundResponse, time.Duration, error) {
	pt := faultinject.Point{Layer: faultinject.LayerParticipant, Client: id, Round: req.Round, Attempt: attempt}
	d := c.policy.Decide(pt)
	switch {
	case d.Drop:
		// The device vanished before doing any work.
		return RoundResponse{}, 0, d.Errorf(pt)
	case d.Timeout, c.cfg.AttemptTimeout > 0 && d.Delay >= c.cfg.AttemptTimeout:
		// The device hangs past the attempt bound: charge the full timeout
		// (virtual or real) and strip the attempt as a straggler.
		c.clock.Sleep(c.cfg.AttemptTimeout)
		return RoundResponse{}, c.cfg.AttemptTimeout, fmt.Errorf("%w: %w", errStraggler, d.Errorf(pt))
	}
	if d.Delay > 0 {
		// A straggler that still answers inside the bound.
		c.clock.Sleep(d.Delay)
	}

	resp, err := c.invoke(p, req)
	if err != nil {
		return RoundResponse{}, d.Delay, err
	}
	if d.Crash {
		// The device trained (the work above really ran) but died before its
		// report arrived: the update is lost, the energy is spent.
		return RoundResponse{}, d.Delay, d.Errorf(pt)
	}
	if d.Corrupt {
		// Push the real response through the real codec with one bit of the
		// frame magic flipped: the decoder must reject it, and the resulting
		// ErrCorruptFrame drives the quarantine path end to end.
		return RoundResponse{}, d.Delay, corruptFrame(resp, pt)
	}
	return resp, d.Delay, nil
}

// invoke runs the participant, bounding wall time under the real clock. Under
// a virtual clock a blocking call cannot be raced by virtual time, so the
// bound applies only to injected behaviour (handled in attempt).
func (c *roundCaller) invoke(p Participant, req RoundRequest) (RoundResponse, error) {
	if c.cfg.AttemptTimeout <= 0 {
		return p.Round(req)
	}
	if _, virtual := c.clock.(*simclock.Sim); virtual {
		return p.Round(req)
	}
	type result struct {
		resp RoundResponse
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := p.Round(req)
		done <- result{resp, err}
	}()
	timer := time.NewTimer(c.cfg.AttemptTimeout)
	defer timer.Stop()
	select {
	case r := <-done:
		return r.resp, r.err
	case <-timer.C:
		// The orphaned call keeps running until its own transport timeout
		// fires; its result is discarded.
		return RoundResponse{}, fmt.Errorf("%w: %s after %v", errStraggler, p.ID(), c.cfg.AttemptTimeout)
	}
}

// corruptFrame encodes resp as a wire frame, flips one magic bit, and returns
// the decoder's corrupt-frame error.
func corruptFrame(resp RoundResponse, pt faultinject.Point) error {
	buf := getBuf()
	defer putBuf(buf)
	if err := EncodeRoundResponse(buf, resp); err != nil {
		return fmt.Errorf("%w: %v", ErrCorruptFrame, err)
	}
	frame := buf.Bytes()
	frame[0] ^= 0x01
	if _, err := DecodeRoundResponse(buf); err != nil {
		return fmt.Errorf("injected at %s client=%s round=%d attempt=%d: %w",
			pt.Layer, pt.Client, pt.Round, pt.Attempt, err)
	}
	// Unreachable for a magic flip, but never let silent corruption pass.
	return fmt.Errorf("%w: injected corruption decoded cleanly", ErrCorruptFrame)
}
