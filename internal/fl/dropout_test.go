package fl

import (
	"errors"
	"testing"

	"bofl/internal/core"
)

// flakyParticipant fails (or misses deadlines) on a schedule.
type flakyParticipant struct {
	id        string
	failRound map[int]bool // rounds on which Round errors
	missRound map[int]bool // rounds on which the deadline is missed
}

func (p *flakyParticipant) ID() string                        { return p.id }
func (p *flakyParticipant) TMinFor(jobs int) (float64, error) { return float64(jobs), nil }

func (p *flakyParticipant) Round(req RoundRequest) (RoundResponse, error) {
	if p.failRound[req.Round] {
		return RoundResponse{}, errors.New("device dropped out")
	}
	return RoundResponse{
		ClientID:    p.id,
		Params:      req.Params,
		NumExamples: 10,
		Report: core.RoundReport{
			Round:       req.Round,
			Energy:      1,
			DeadlineMet: !p.missRound[req.Round],
		},
	}, nil
}

func newDropoutServer(t *testing.T, tolerate bool) *Server {
	t.Helper()
	srv, err := NewServer(ServerConfig{
		InitialParams:    []float64{1, 2, 3},
		Jobs:             10,
		DeadlineRatio:    2,
		Seed:             1,
		TolerateDropouts: tolerate,
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func TestDropoutToleranceKeepsSurvivors(t *testing.T) {
	srv := newDropoutServer(t, true)
	healthy := &flakyParticipant{id: "healthy"}
	crasher := &flakyParticipant{id: "crasher", failRound: map[int]bool{1: true}}
	misser := &flakyParticipant{id: "misser", missRound: map[int]bool{1: true}}
	srv.Register(healthy)
	srv.Register(crasher)
	srv.Register(misser)

	res, err := srv.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Responses) != 1 || res.Responses[0].ClientID != "healthy" {
		t.Errorf("responses = %+v, want only healthy", res.Responses)
	}
	if len(res.Dropped) != 2 {
		t.Errorf("dropped = %v, want crasher and misser", res.Dropped)
	}

	// Next round everyone is healthy again and participates.
	res, err = srv.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Responses) != 3 || len(res.Dropped) != 0 {
		t.Errorf("round 2: %d responses, %d dropped", len(res.Responses), len(res.Dropped))
	}
}

func TestDropoutAllFailedIsError(t *testing.T) {
	srv := newDropoutServer(t, true)
	srv.Register(&flakyParticipant{id: "a", failRound: map[int]bool{1: true}})
	srv.Register(&flakyParticipant{id: "b", failRound: map[int]bool{1: true}})
	if _, err := srv.RunRound(); err == nil {
		t.Error("round with zero survivors accepted")
	}
}

func TestStrictModeAbortsOnFailure(t *testing.T) {
	srv := newDropoutServer(t, false)
	srv.Register(&flakyParticipant{id: "a"})
	srv.Register(&flakyParticipant{id: "b", failRound: map[int]bool{1: true}})
	if _, err := srv.RunRound(); err == nil {
		t.Error("strict server tolerated a failure")
	}
}

func TestStrictModeKeepsDeadlineMissers(t *testing.T) {
	// Without tolerance, a miss is reported but not excluded — the legacy
	// behaviour relied on by the evaluation harness.
	srv := newDropoutServer(t, false)
	srv.Register(&flakyParticipant{id: "a", missRound: map[int]bool{1: true}})
	res, err := srv.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Responses) != 1 {
		t.Errorf("responses = %d", len(res.Responses))
	}
}
