package fl

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"bofl/internal/obs"
)

func wireCount(t *obs.Telemetry, metric, codec string) float64 {
	return t.Registry.Counter(metric, "", obs.L("codec", codec)).Value()
}

// TestNegotiationBinaryBothEnds: a new server dialing a new daemon settles on
// the binary codec, the round works, and wire bytes are accounted under the
// binary label on both ends.
func TestNegotiationBinaryBothEnds(t *testing.T) {
	daemonTel := obs.New(nil)
	h := NewClientHandler(newTestClient(t, "bin-client", 31))
	h.SetTelemetry(daemonTel)
	ts := httptest.NewServer(h)
	defer ts.Close()

	p, err := DialParticipant(ts.URL, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if p.Codec() != CodecBinary {
		t.Fatalf("negotiated %q, want %q", p.Codec(), CodecBinary)
	}
	serverTel := obs.New(nil)
	p.SetSink(serverTel)

	params := h.client.Params()
	resp, err := p.Round(RoundRequest{Round: 1, Params: params, Jobs: 20, Deadline: 60})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ClientID != "bin-client" || len(resp.Params) != len(params) {
		t.Fatalf("bad response: %q, %d params", resp.ClientID, len(resp.Params))
	}
	for _, check := range []struct {
		tel    *obs.Telemetry
		metric string
	}{
		{serverTel, obs.MetricFLWireTx},
		{serverTel, obs.MetricFLWireRx},
		{daemonTel, obs.MetricFLWireRx},
		{daemonTel, obs.MetricFLWireTx},
	} {
		if got := wireCount(check.tel, check.metric, CodecBinary); got <= 0 {
			t.Errorf("%s[binary] = %v, want > 0", check.metric, got)
		}
		if got := wireCount(check.tel, check.metric, CodecJSON); got != 0 {
			t.Errorf("%s[json] = %v, want 0", check.metric, got)
		}
	}
}

// TestCompatNewServerOldDaemon: a daemon in JSON-only mode (standing in for a
// pre-codec build) makes a new server fall back to JSON transparently.
func TestCompatNewServerOldDaemon(t *testing.T) {
	h := NewClientHandler(newTestClient(t, "old-daemon", 32))
	h.SetJSONOnly(true)
	ts := httptest.NewServer(h)
	defer ts.Close()

	// The JSON-only daemon must not advertise codecs at all, exactly like an
	// old build that predates the field.
	ir, err := http.Get(ts.URL + "/v1/info")
	if err != nil {
		t.Fatal(err)
	}
	var info InfoResponse
	if err := json.NewDecoder(ir.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	ir.Body.Close()
	if len(info.Codecs) != 0 {
		t.Fatalf("json-only daemon advertises codecs %v", info.Codecs)
	}

	p, err := DialParticipant(ts.URL, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if p.Codec() != CodecJSON {
		t.Fatalf("negotiated %q, want %q", p.Codec(), CodecJSON)
	}
	resp, err := p.Round(RoundRequest{Round: 1, Params: h.client.Params(), Jobs: 20, Deadline: 60})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ClientID != "old-daemon" {
		t.Fatalf("response from %q", resp.ClientID)
	}
}

// TestCompatOldServerNewDaemon: a raw JSON POST with no Accept header (what a
// pre-codec server sends) must get a JSON response back from a binary-capable
// daemon.
func TestCompatOldServerNewDaemon(t *testing.T) {
	c := newTestClient(t, "new-daemon", 33)
	ts := httptest.NewServer(NewClientHandler(c))
	defer ts.Close()

	var body bytes.Buffer
	req := RoundRequest{Round: 1, Params: c.Params(), Jobs: 20, Deadline: 60}
	if err := json.NewEncoder(&body).Encode(req); err != nil {
		t.Fatal(err)
	}
	hr, err := http.Post(ts.URL+"/v1/round", ContentTypeJSON, &body)
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(hr.Body)
		t.Fatalf("status %d: %s", hr.StatusCode, msg)
	}
	if ct := hr.Header.Get("Content-Type"); ct != ContentTypeJSON {
		t.Fatalf("Content-Type %q, want JSON for a JSON caller", ct)
	}
	var resp RoundResponse
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.ClientID != "new-daemon" || len(resp.Params) != len(req.Params) {
		t.Fatalf("bad JSON response: %q, %d params", resp.ClientID, len(resp.Params))
	}
}

// TestBinaryFrameRejectedByJSONOnlyDaemon: a binary frame posted at a daemon
// with the codec disabled must fail loudly (415), not mis-decode.
func TestBinaryFrameRejectedByJSONOnlyDaemon(t *testing.T) {
	tel := obs.New(nil)
	h := NewClientHandler(newTestClient(t, "strict-daemon", 34))
	h.SetJSONOnly(true)
	h.SetTelemetry(tel)
	ts := httptest.NewServer(h)
	defer ts.Close()

	var body bytes.Buffer
	if err := EncodeRoundRequest(&body, RoundRequest{Round: 1, Params: h.client.Params(), Jobs: 20, Deadline: 60}); err != nil {
		t.Fatal(err)
	}
	hr, err := http.Post(ts.URL+"/v1/round", ContentTypeBinary, &body)
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("status %d, want 415", hr.StatusCode)
	}
	if got := errCount(tel, "round", "codec"); got != 1 {
		t.Errorf("codec error count = %v, want 1", got)
	}
}

// TestTraceRoundtripBinary: over the negotiated BFL1 codec, a valid trace
// context rides out in both the header and the frame meta, the daemon stamps
// its client spans with it, and the span summaries come back in the binary
// response.
func TestTraceRoundtripBinary(t *testing.T) {
	h := NewClientHandler(newTestClient(t, "traced-bin", 41))
	ts := httptest.NewServer(h)
	defer ts.Close()

	p, err := DialParticipant(ts.URL, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if p.Codec() != CodecBinary {
		t.Fatalf("negotiated %q, want %q", p.Codec(), CodecBinary)
	}
	tc := obs.MintTrace(7, 1)
	resp, err := p.Round(RoundRequest{Round: 1, Params: h.client.Params(), Jobs: 20, Deadline: 60, Trace: tc})
	if err != nil {
		t.Fatal(err)
	}
	assertClientSpans(t, resp)
}

// TestTraceRoundtripJSONFallback: a JSON-only daemon (the negotiated-fallback
// path) still receives the trace via header and JSON meta, and still reports
// its spans in the JSON response.
func TestTraceRoundtripJSONFallback(t *testing.T) {
	h := NewClientHandler(newTestClient(t, "traced-json", 42))
	h.SetJSONOnly(true)
	ts := httptest.NewServer(h)
	defer ts.Close()

	p, err := DialParticipant(ts.URL, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if p.Codec() != CodecJSON {
		t.Fatalf("negotiated %q, want %q", p.Codec(), CodecJSON)
	}
	resp, err := p.Round(RoundRequest{Round: 1, Params: h.client.Params(), Jobs: 20, Deadline: 60, Trace: obs.MintTrace(7, 2)})
	if err != nil {
		t.Fatal(err)
	}
	assertClientSpans(t, resp)
}

// TestTraceInBandFallbackAndSanitization: with no X-Bofl-Trace header the
// daemon falls back to the in-band meta trace — and sanitizes it, so a valid
// body trace yields spans while a hostile one degrades to untraced.
func TestTraceInBandFallbackAndSanitization(t *testing.T) {
	c := newTestClient(t, "traced-raw", 43)
	ts := httptest.NewServer(NewClientHandler(c))
	defer ts.Close()

	post := func(tc obs.TraceContext) RoundResponse {
		t.Helper()
		var body bytes.Buffer
		req := RoundRequest{Round: 1, Params: c.Params(), Jobs: 20, Deadline: 60, Trace: tc}
		if err := json.NewEncoder(&body).Encode(req); err != nil {
			t.Fatal(err)
		}
		hr, err := http.Post(ts.URL+"/v1/round", ContentTypeJSON, &body)
		if err != nil {
			t.Fatal(err)
		}
		defer hr.Body.Close()
		if hr.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(hr.Body)
			t.Fatalf("status %d: %s", hr.StatusCode, msg)
		}
		var resp RoundResponse
		if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}

	assertClientSpans(t, post(obs.MintTrace(7, 3)))
	if resp := post(obs.TraceContext{TraceID: `"}# HELP evil`, SpanID: "tooshort"}); len(resp.Spans) != 0 {
		t.Errorf("hostile in-band trace produced spans: %+v", resp.Spans)
	}
}

// TestTraceNoSpanReportOptOut: a daemon with span reporting disabled ignores
// the inbound trace entirely and returns no span summaries.
func TestTraceNoSpanReportOptOut(t *testing.T) {
	h := NewClientHandler(newTestClient(t, "opted-out", 44))
	h.SetNoSpanReport(true)
	ts := httptest.NewServer(h)
	defer ts.Close()

	p, err := DialParticipant(ts.URL, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := p.Round(RoundRequest{Round: 1, Params: h.client.Params(), Jobs: 20, Deadline: 60, Trace: obs.MintTrace(7, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Spans) != 0 {
		t.Errorf("opted-out daemon reported spans: %+v", resp.Spans)
	}
}

// assertClientSpans checks a traced response carries the client-side round
// span with a plausible duration.
func assertClientSpans(t *testing.T, resp RoundResponse) {
	t.Helper()
	if len(resp.Spans) == 0 {
		t.Fatal("traced round returned no client spans")
	}
	found := false
	for _, ss := range resp.Spans {
		if ss.Name == obs.SpanClientRound {
			found = true
			if ss.DurNs < 0 {
				t.Errorf("client span has negative duration %d", ss.DurNs)
			}
		}
	}
	if !found {
		t.Errorf("no %s span in %+v", obs.SpanClientRound, resp.Spans)
	}
}
