package fl

// Partial-aggregate frames: the tier-to-tier wire format of hierarchical
// aggregation. A tier aggregator folds its children exactly (internal/exact)
// and ships the accumulator window — not a rounded float64 vector — to its
// parent, so the root commit is bit-identical to the flat fold no matter how
// the tree is shaped. The frame reuses the BFL1 layout with a new flag bit
// (flagLimbs): the payload section carries little-endian uint64 limbs instead
// of IEEE-754 parameters, and the metadata section carries the tier topology
// plus the exact-accumulator window descriptor. Round request/response
// decoders keep rejecting the bit — a partial frame can never be smuggled
// into the client data plane.

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"bofl/internal/exact"
	"bofl/internal/obs"
)

// flagLimbs marks a partial-aggregate frame: payload is uint64 limbs of an
// exact accumulator window, not float64 parameters.
const flagLimbs byte = 1 << 2

// metaPool recycles decode-side metadata structs; a local would escape into
// the encoding/json fallback path and allocate per frame.
var metaPool = sync.Pool{New: func() any { return new(partialMeta) }}

// PartialAggregate is one tier aggregator's weighted partial sum plus the
// topology needed to audit it: which tier and node produced it, which leaf
// span it covers, how many leaves survived into it and their total integer
// weight. Sum is the exact accumulator window; the parent absorbs it without
// rounding.
type PartialAggregate struct {
	Round     int
	Tier      int // tier of the producing aggregator (leaves fold into tier 0)
	Node      int // tier-local node ordinal, left to right
	LeafLo    int // first leaf index of the node's span (inclusive)
	LeafHi    int // last leaf index of the node's span (inclusive)
	Survivors int // leaves folded into the partial
	Weight    int64
	Sum       exact.Serialized
	Trace     obs.TraceContext
}

// partialMeta is the frame metadata section of a partial-aggregate frame.
type partialMeta struct {
	Round     int     `json:"round"`
	Tier      int     `json:"tier"`
	Node      int     `json:"node"`
	LeafLo    int     `json:"leafLo"`
	LeafHi    int     `json:"leafHi"`
	Survivors int     `json:"survivors"`
	Weight    int64   `json:"weight"`
	Dim       int     `json:"dim"`
	WindowLo  int     `json:"windowLo"`
	WindowHi  int     `json:"windowHi"`
	Adds      int64   `json:"adds"`
	Specials  []uint8 `json:"specials,omitempty"` // JSON base64
	TraceID   string  `json:"traceId,omitempty"`
	SpanID    string  `json:"spanId,omitempty"`
}

// EncodePartialAggregate writes pa to w as one BFL1 frame with the limbs flag
// set. Large windows gzip like any other payload.
func EncodePartialAggregate(w io.Writer, pa PartialAggregate) error {
	meta := partialMeta{
		Round: pa.Round, Tier: pa.Tier, Node: pa.Node,
		LeafLo: pa.LeafLo, LeafHi: pa.LeafHi,
		Survivors: pa.Survivors, Weight: pa.Weight,
		Dim: pa.Sum.Dim, WindowLo: pa.Sum.Lo, WindowHi: pa.Sum.Hi, Adds: pa.Sum.Adds,
		Specials: pa.Sum.Specials,
		TraceID:  pa.Trace.TraceID, SpanID: pa.Trace.SpanID,
	}
	mbp := getBytes(64)
	defer putBytes(mbp)
	mb, fast := appendPartialMeta((*mbp)[:0], &meta)
	if !fast {
		var err error
		if mb, err = jsonMarshalMeta(meta); err != nil {
			return err
		}
	} else if len(mb) > maxMetaBytes {
		return fmt.Errorf("fl: frame meta %d bytes exceeds %d", len(mb), maxMetaBytes)
	} else {
		*mbp = mb // keep any growth when the buffer returns to the pool
	}
	if len(pa.Sum.Limbs) > maxFrameParams {
		return fmt.Errorf("fl: %d limbs exceed frame limit %d", len(pa.Sum.Limbs), maxFrameParams)
	}
	flags := flagLimbs
	raw := getBytes(len(pa.Sum.Limbs) * 8)
	defer putBytes(raw)
	for i, l := range pa.Sum.Limbs {
		binary.LittleEndian.PutUint64((*raw)[i*8:], l)
	}
	payload := *raw
	var comp *bytes.Buffer
	if len(payload) >= gzipThreshold {
		comp = getBuf()
		defer putBuf(comp)
		zw := gzipWriterPool.Get().(*gzip.Writer)
		zw.Reset(comp)
		_, werr := zw.Write(payload)
		cerr := zw.Close()
		gzipWriterPool.Put(zw)
		if werr != nil || cerr != nil {
			return fmt.Errorf("fl: gzip partial payload: %w", firstErr(werr, cerr))
		}
		flags |= flagGzip
		payload = comp.Bytes()
	}

	// Pooled header scratch: a stack array would escape through the io.Writer
	// interface and cost one heap allocation per frame.
	hp := getBytes(17)
	defer putBytes(hp)
	hdr := *hp
	copy(hdr[:4], frameMagic[:])
	hdr[4] = flags
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(len(mb)))
	if _, err := w.Write(hdr[:9]); err != nil {
		return fmt.Errorf("fl: write partial header: %w", err)
	}
	if _, err := w.Write(mb); err != nil {
		return fmt.Errorf("fl: write partial meta: %w", err)
	}
	binary.LittleEndian.PutUint32(hdr[9:13], uint32(len(pa.Sum.Limbs)))
	binary.LittleEndian.PutUint32(hdr[13:17], uint32(len(payload)))
	if _, err := w.Write(hdr[9:17]); err != nil {
		return fmt.Errorf("fl: write partial header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("fl: write partial payload: %w", err)
	}
	return nil
}

// DecodePartialAggregate reads one partial-aggregate frame. Structural damage
// returns ErrCorruptFrame exactly like the round codecs; a decoded frame still
// has to pass exact.Vec.Absorb's window validation before it can touch an
// accumulator.
func DecodePartialAggregate(r io.Reader) (PartialAggregate, error) {
	var pa PartialAggregate
	if err := DecodePartialAggregateInto(r, &pa); err != nil {
		return PartialAggregate{}, err
	}
	return pa, nil
}

// DecodePartialAggregateInto is DecodePartialAggregate decoding into a
// caller-owned frame, reusing pa.Sum.Limbs when it has capacity — the
// zero-allocation path for aggregators that decode one frame per tier close.
// On error *pa is left zeroed (its limb capacity is kept for reuse).
func DecodePartialAggregateInto(r io.Reader, pa *PartialAggregate) error {
	limbs := pa.Sum.Limbs[:0]
	prevTrace := pa.Trace // reuse hint: same-round frames repeat their ids
	*pa = PartialAggregate{}
	// Pooled header/trailer scratch: stack arrays would escape through the
	// io.Reader interface and cost two heap allocations per frame.
	hp := getBytes(17)
	defer putBytes(hp)
	hdr := (*hp)[:9]
	tail := (*hp)[9:17]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return fmt.Errorf("%w: read header: %w", ErrCorruptFrame, err)
	}
	if !bytes.Equal(hdr[:4], frameMagic[:]) {
		return fmt.Errorf("%w: bad magic %q", ErrCorruptFrame, hdr[:4])
	}
	flags := hdr[4]
	if flags&flagLimbs == 0 || flags&^(flagGzip|flagLimbs) != 0 {
		return fmt.Errorf("%w: not a partial-aggregate frame (flags %#x)", ErrCorruptFrame, flags)
	}
	metaLen := binary.LittleEndian.Uint32(hdr[5:9])
	if metaLen > maxMetaBytes {
		return fmt.Errorf("%w: meta %d bytes exceeds %d", ErrCorruptFrame, metaLen, maxMetaBytes)
	}
	mb := getBytes(int(metaLen))
	defer putBytes(mb)
	if _, err := io.ReadFull(r, *mb); err != nil {
		return fmt.Errorf("%w: read meta: %w", ErrCorruptFrame, err)
	}
	meta := metaPool.Get().(*partialMeta)
	defer metaPool.Put(meta)
	*meta = partialMeta{TraceID: prevTrace.TraceID, SpanID: prevTrace.SpanID}
	if !parsePartialMeta(*mb, meta) {
		// Non-canonical but possibly valid JSON (reordered fields, escapes,
		// whitespace): let encoding/json be the arbiter.
		*meta = partialMeta{}
		if err := jsonUnmarshalMeta(*mb, meta); err != nil {
			return err
		}
	}

	if _, err := io.ReadFull(r, tail); err != nil {
		return fmt.Errorf("%w: read header: %w", ErrCorruptFrame, err)
	}
	count := binary.LittleEndian.Uint32(tail[:4])
	payloadLen := binary.LittleEndian.Uint32(tail[4:8])
	if count > maxFrameParams {
		return fmt.Errorf("%w: claims %d limbs, limit %d", ErrCorruptFrame, count, maxFrameParams)
	}
	rawLen := int(count) * 8
	if flags&flagGzip == 0 {
		if int(payloadLen) != rawLen {
			return fmt.Errorf("%w: payload %d bytes, want %d", ErrCorruptFrame, payloadLen, rawLen)
		}
	} else if int64(payloadLen) > int64(rawLen)+(64<<10) {
		return fmt.Errorf("%w: gzip payload %d bytes for %d raw", ErrCorruptFrame, payloadLen, rawLen)
	}

	payload := getBytes(int(payloadLen))
	defer putBytes(payload)
	if _, err := io.ReadFull(r, *payload); err != nil {
		return fmt.Errorf("%w: read payload: %w", ErrCorruptFrame, err)
	}
	raw := *payload
	if flags&flagGzip != 0 {
		zr := gzipReaderPool.Get().(*gzip.Reader)
		defer gzipReaderPool.Put(zr)
		if err := zr.Reset(bytes.NewReader(*payload)); err != nil {
			return fmt.Errorf("%w: gzip payload: %w", ErrCorruptFrame, err)
		}
		inflated := getBytes(rawLen)
		defer putBytes(inflated)
		if _, err := io.ReadFull(zr, *inflated); err != nil {
			return fmt.Errorf("%w: inflate payload: %w", ErrCorruptFrame, err)
		}
		var one [1]byte
		if n, _ := zr.Read(one[:]); n != 0 {
			return fmt.Errorf("%w: payload inflates past %d declared limbs", ErrCorruptFrame, count)
		}
		raw = *inflated
	}

	if cap(limbs) < int(count) {
		limbs = make([]uint64, count)
	}
	limbs = limbs[:count]
	for i := range limbs {
		limbs[i] = binary.LittleEndian.Uint64(raw[i*8:])
	}
	*pa = PartialAggregate{
		Round: meta.Round, Tier: meta.Tier, Node: meta.Node,
		LeafLo: meta.LeafLo, LeafHi: meta.LeafHi,
		Survivors: meta.Survivors, Weight: meta.Weight,
		Sum: exact.Serialized{
			Dim: meta.Dim, Lo: meta.WindowLo, Hi: meta.WindowHi,
			Adds: meta.Adds, Limbs: limbs, Specials: meta.Specials,
		},
		Trace: obs.TraceContext{TraceID: meta.TraceID, SpanID: meta.SpanID},
	}
	return nil
}
