package fl

import (
	"math"
	"math/rand"
	"sort"
	"sync"
)

// EnergyAwareSelector is an AutoFL-style (§2.1) server-side policy: it
// prefers participants with the lowest observed energy per round, while
// reserving an exploration quota for clients with little or no history so
// new devices still get scheduled. Feed it the per-round reports via
// ObserveRound.
type EnergyAwareSelector struct {
	mu sync.Mutex

	rng *rand.Rand
	// exploreFrac is the fraction of each round's slots given to
	// under-observed clients (default 0.25).
	exploreFrac float64
	// history holds EWMA energy per client id.
	history map[string]float64
	counts  map[string]int
}

var _ Selector = (*EnergyAwareSelector)(nil)

// NewEnergyAwareSelector builds a seeded selector. exploreFrac in [0,1]
// controls how many slots go to unproven clients each round.
func NewEnergyAwareSelector(seed int64, exploreFrac float64) *EnergyAwareSelector {
	if exploreFrac < 0 {
		exploreFrac = 0
	}
	if exploreFrac > 1 {
		exploreFrac = 1
	}
	return &EnergyAwareSelector{
		rng:         rand.New(rand.NewSource(seed)),
		exploreFrac: exploreFrac,
		history:     make(map[string]float64),
		counts:      make(map[string]int),
	}
}

// ObserveRound folds a round's energy reports into the history.
func (s *EnergyAwareSelector) ObserveRound(responses []RoundResponse) {
	s.mu.Lock()
	defer s.mu.Unlock()
	const alpha = 0.3
	for _, r := range responses {
		if prev, ok := s.history[r.ClientID]; ok {
			s.history[r.ClientID] = alpha*r.Report.Energy + (1-alpha)*prev
		} else {
			s.history[r.ClientID] = r.Report.Energy
		}
		s.counts[r.ClientID]++
	}
}

// Select picks k participants: the exploration quota goes to the
// least-observed clients (ties broken randomly), the rest to the clients with
// the lowest EWMA energy.
func (s *EnergyAwareSelector) Select(round int, pool []Participant, k int) []Participant {
	s.mu.Lock()
	defer s.mu.Unlock()
	if k <= 0 || k > len(pool) {
		k = len(pool)
	}
	shuffled := make([]Participant, len(pool))
	copy(shuffled, pool)
	s.rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

	explore := int(float64(k) * s.exploreFrac)
	if explore > k {
		explore = k
	}

	// Exploration slots: fewest observations first.
	byCount := make([]Participant, len(shuffled))
	copy(byCount, shuffled)
	sort.SliceStable(byCount, func(i, j int) bool {
		return s.counts[byCount[i].ID()] < s.counts[byCount[j].ID()]
	})
	selected := make([]Participant, 0, k)
	taken := make(map[string]bool, k)
	for _, p := range byCount[:explore] {
		selected = append(selected, p)
		taken[p.ID()] = true
	}

	// Exploitation slots: lowest observed energy first; unobserved clients
	// rank last here (they compete through the exploration quota).
	byEnergy := make([]Participant, 0, len(shuffled))
	for _, p := range shuffled {
		if !taken[p.ID()] {
			byEnergy = append(byEnergy, p)
		}
	}
	sort.SliceStable(byEnergy, func(i, j int) bool {
		ei, iok := s.history[byEnergy[i].ID()]
		ej, jok := s.history[byEnergy[j].ID()]
		if iok != jok {
			return iok // observed clients first
		}
		return ei < ej
	})
	for _, p := range byEnergy {
		if len(selected) == k {
			break
		}
		selected = append(selected, p)
	}
	return selected
}

// BiasedSelector samples k participants without replacement with probability
// proportional to a per-client weight — the availability/power-biased
// participation regime of real fleets, where well-powered, frequently-online
// devices are over-represented in every round. Deterministic per seed.
type BiasedSelector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	weigh func(id string) float64

	// Weight cache keyed by the pool's *contents*, not its length: the
	// server hands Select a quarantine-filtered view of the pool, so a
	// same-length slice can still be a different population (one client
	// quarantined, another registered). Comparing the id sequence guarantees
	// the weights are recomputed — and the sampling distribution
	// renormalized over the survivors — whenever the pool shrinks, grows or
	// rotates, never when it is merely re-presented.
	ids     []string
	weights []float64
	// Per-call sampling scratch, reused across rounds.
	w   []float64
	idx []int
}

var _ Selector = (*BiasedSelector)(nil)

// NewBiasedSelector builds a seeded weighted selector. weigh maps a client id
// to its participation weight; non-positive, NaN or infinite weights exclude
// the client from biased draws (it is still reachable through the
// all-weights-zero uniform fallback).
func NewBiasedSelector(seed int64, weigh func(id string) float64) *BiasedSelector {
	return &BiasedSelector{rng: rand.New(rand.NewSource(seed)), weigh: weigh}
}

// refresh rebuilds the weight cache iff the pool's id sequence changed.
func (s *BiasedSelector) refresh(pool []Participant) {
	same := len(s.ids) == len(pool)
	if same {
		for i, p := range pool {
			if s.ids[i] != p.ID() {
				same = false
				break
			}
		}
	}
	if same {
		return
	}
	s.ids = s.ids[:0]
	s.weights = s.weights[:0]
	for _, p := range pool {
		id := p.ID()
		w := s.weigh(id)
		if !(w > 0) || math.IsInf(w, 1) {
			w = 0
		}
		s.ids = append(s.ids, id)
		s.weights = append(s.weights, w)
	}
}

// Select draws min(k, len(pool)) distinct participants, each draw
// proportional to the remaining weights. When every remaining weight is zero
// the draw falls back to uniform, so a degenerate weigh function can never
// starve a round.
func (s *BiasedSelector) Select(round int, pool []Participant, k int) []Participant {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(pool)
	if k <= 0 || k > n {
		k = n
	}
	s.refresh(pool)

	w := append(s.w[:0], s.weights...)
	idx := s.idx[:0]
	for i := 0; i < n; i++ {
		idx = append(idx, i)
	}
	s.w, s.idx = w, idx

	total := 0.0
	for _, v := range w {
		total += v
	}
	out := make([]Participant, 0, k)
	rem := n
	for len(out) < k {
		pick := rem - 1
		if total > 0 {
			r := s.rng.Float64() * total
			acc := 0.0
			for i := 0; i < rem; i++ {
				acc += w[i]
				if r < acc {
					pick = i
					break
				}
			}
		} else {
			pick = s.rng.Intn(rem)
		}
		out = append(out, pool[idx[pick]])
		total -= w[pick]
		if total < 0 {
			total = 0
		}
		rem--
		w[pick], idx[pick] = w[rem], idx[rem]
	}
	return out
}
