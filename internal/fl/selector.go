package fl

import (
	"math/rand"
	"sort"
	"sync"
)

// EnergyAwareSelector is an AutoFL-style (§2.1) server-side policy: it
// prefers participants with the lowest observed energy per round, while
// reserving an exploration quota for clients with little or no history so
// new devices still get scheduled. Feed it the per-round reports via
// ObserveRound.
type EnergyAwareSelector struct {
	mu sync.Mutex

	rng *rand.Rand
	// exploreFrac is the fraction of each round's slots given to
	// under-observed clients (default 0.25).
	exploreFrac float64
	// history holds EWMA energy per client id.
	history map[string]float64
	counts  map[string]int
}

var _ Selector = (*EnergyAwareSelector)(nil)

// NewEnergyAwareSelector builds a seeded selector. exploreFrac in [0,1]
// controls how many slots go to unproven clients each round.
func NewEnergyAwareSelector(seed int64, exploreFrac float64) *EnergyAwareSelector {
	if exploreFrac < 0 {
		exploreFrac = 0
	}
	if exploreFrac > 1 {
		exploreFrac = 1
	}
	return &EnergyAwareSelector{
		rng:         rand.New(rand.NewSource(seed)),
		exploreFrac: exploreFrac,
		history:     make(map[string]float64),
		counts:      make(map[string]int),
	}
}

// ObserveRound folds a round's energy reports into the history.
func (s *EnergyAwareSelector) ObserveRound(responses []RoundResponse) {
	s.mu.Lock()
	defer s.mu.Unlock()
	const alpha = 0.3
	for _, r := range responses {
		if prev, ok := s.history[r.ClientID]; ok {
			s.history[r.ClientID] = alpha*r.Report.Energy + (1-alpha)*prev
		} else {
			s.history[r.ClientID] = r.Report.Energy
		}
		s.counts[r.ClientID]++
	}
}

// Select picks k participants: the exploration quota goes to the
// least-observed clients (ties broken randomly), the rest to the clients with
// the lowest EWMA energy.
func (s *EnergyAwareSelector) Select(round int, pool []Participant, k int) []Participant {
	s.mu.Lock()
	defer s.mu.Unlock()
	if k <= 0 || k > len(pool) {
		k = len(pool)
	}
	shuffled := make([]Participant, len(pool))
	copy(shuffled, pool)
	s.rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

	explore := int(float64(k) * s.exploreFrac)
	if explore > k {
		explore = k
	}

	// Exploration slots: fewest observations first.
	byCount := make([]Participant, len(shuffled))
	copy(byCount, shuffled)
	sort.SliceStable(byCount, func(i, j int) bool {
		return s.counts[byCount[i].ID()] < s.counts[byCount[j].ID()]
	})
	selected := make([]Participant, 0, k)
	taken := make(map[string]bool, k)
	for _, p := range byCount[:explore] {
		selected = append(selected, p)
		taken[p.ID()] = true
	}

	// Exploitation slots: lowest observed energy first; unobserved clients
	// rank last here (they compete through the exploration quota).
	byEnergy := make([]Participant, 0, len(shuffled))
	for _, p := range shuffled {
		if !taken[p.ID()] {
			byEnergy = append(byEnergy, p)
		}
	}
	sort.SliceStable(byEnergy, func(i, j int) bool {
		ei, iok := s.history[byEnergy[i].ID()]
		ej, jok := s.history[byEnergy[j].ID()]
		if iok != jok {
			return iok // observed clients first
		}
		return ei < ej
	})
	for _, p := range byEnergy {
		if len(selected) == k {
			break
		}
		selected = append(selected, p)
	}
	return selected
}
