package fl

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"bofl/internal/core"
	"bofl/internal/faultinject"
	"bofl/internal/obs"
	"bofl/internal/simclock"
)

// stubParticipant counts invocations and returns a canned response, so retry
// tests can see exactly how many real calls each policy allowed through.
type stubParticipant struct {
	id    string
	calls int
	err   error
}

func (p *stubParticipant) ID() string                        { return p.id }
func (p *stubParticipant) TMinFor(jobs int) (float64, error) { return 1, nil }
func (p *stubParticipant) Round(req RoundRequest) (RoundResponse, error) {
	p.calls++
	if p.err != nil {
		return RoundResponse{}, p.err
	}
	return RoundResponse{
		ClientID:    p.id,
		Params:      []float64{1, 2, 3},
		NumExamples: 10,
		Report:      core.RoundReport{Round: req.Round, DeadlineMet: true},
	}, nil
}

func TestCallerDefaultIsBareCall(t *testing.T) {
	c := newRoundCaller(RetryConfig{}, nil, nil)
	p := &stubParticipant{id: "c0"}
	resp, _, err := c.call(p, RoundRequest{Round: 1}, obs.Nop)
	if err != nil {
		t.Fatal(err)
	}
	if p.calls != 1 {
		t.Errorf("default caller made %d calls, want 1", p.calls)
	}
	if resp.ClientID != "c0" || len(resp.Params) != 3 {
		t.Errorf("response mangled: %+v", resp)
	}
}

func TestCallerRetriesTransientDrop(t *testing.T) {
	// Attempts 0 and 1 drop, attempt 2 is clean.
	policy := &faultinject.Plan{Seed: 1, Default: faultinject.Profile{FlakyAttempts: 2}}
	clock := simclock.NewSim(time.Unix(0, 0))
	tel := obs.NewBoFL(obs.Real{})
	c := newRoundCaller(RetryConfig{MaxAttempts: 4, Seed: 1}, policy, clock)
	c.resetBudget()
	p := &stubParticipant{id: "flaky"}

	resp, _, err := c.call(p, RoundRequest{Round: 3}, tel)
	if err != nil {
		t.Fatalf("flaky client never recovered: %v", err)
	}
	if resp.ClientID != "flaky" {
		t.Errorf("response %+v", resp)
	}
	if p.calls != 1 {
		t.Errorf("dropped attempts reached the participant: %d calls", p.calls)
	}
	if got := tel.Registry.Counter(obs.MetricFLRetries, "").Value(); got != 2 {
		t.Errorf("retries counter %v, want 2", got)
	}
	if clock.Now().Equal(time.Unix(0, 0)) {
		t.Error("backoff advanced no virtual time")
	}
}

func TestCallerCorruptFrameNotRetried(t *testing.T) {
	policy := faultinject.Scripted{
		{Layer: faultinject.LayerParticipant, Client: "c", Round: 1, Attempt: 0}: {Corrupt: true},
	}
	tel := obs.NewBoFL(obs.Real{})
	c := newRoundCaller(RetryConfig{MaxAttempts: 5}, policy, simclock.NewSim(time.Unix(0, 0)))
	p := &stubParticipant{id: "c"}
	_, _, err := c.call(p, RoundRequest{Round: 1}, tel)
	if !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("err %v, want ErrCorruptFrame", err)
	}
	if p.calls != 1 {
		t.Errorf("corrupt frame retried: %d calls", p.calls)
	}
	if got := tel.Registry.Counter(obs.MetricFLRetries, "").Value(); got != 0 {
		t.Errorf("retries counter %v, want 0", got)
	}
}

func TestCallerRetryBudgetExhausts(t *testing.T) {
	// Every attempt drops; budget allows only 2 retries for the whole round.
	policy := &faultinject.Plan{Seed: 2, Default: faultinject.Profile{Drop: 1}}
	c := newRoundCaller(RetryConfig{MaxAttempts: 10, Budget: 2, Seed: 2}, policy, simclock.NewSim(time.Unix(0, 0)))
	c.resetBudget()
	p := &stubParticipant{id: "dead"}
	_, _, err := c.call(p, RoundRequest{Round: 1}, obs.Nop)
	if !errors.Is(err, errBudget) {
		t.Fatalf("err %v, want budget exhaustion", err)
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Errorf("budget error lost the underlying cause: %v", err)
	}
	// A fresh round re-arms the budget.
	c.resetBudget()
	if !c.takeBudget() || !c.takeBudget() || c.takeBudget() {
		t.Error("budget did not re-arm to exactly 2")
	}
}

func TestCallerTimeoutStripsStraggler(t *testing.T) {
	policy := faultinject.Scripted{
		{Layer: faultinject.LayerParticipant, Client: "slow", Round: 1, Attempt: 0}: {Timeout: true},
	}
	clock := simclock.NewSim(time.Unix(0, 0))
	c := newRoundCaller(RetryConfig{AttemptTimeout: 2 * time.Second}, policy, clock)
	p := &stubParticipant{id: "slow"}
	_, _, err := c.call(p, RoundRequest{Round: 1}, obs.Nop)
	if !errors.Is(err, errStraggler) {
		t.Fatalf("err %v, want straggler", err)
	}
	if got := clock.Now().Sub(time.Unix(0, 0)); got != 2*time.Second {
		t.Errorf("timeout charged %v of virtual time, want 2s", got)
	}
	if p.calls != 0 {
		t.Errorf("timed-out attempt reached the participant: %d calls", p.calls)
	}
}

func TestCallerDelayPastTimeoutIsStraggler(t *testing.T) {
	policy := faultinject.Scripted{
		{Layer: faultinject.LayerParticipant, Client: "s", Round: 1, Attempt: 0}: {Delay: 3 * time.Second},
		{Layer: faultinject.LayerParticipant, Client: "s", Round: 2, Attempt: 0}: {Delay: 500 * time.Millisecond},
	}
	clock := simclock.NewSim(time.Unix(0, 0))
	c := newRoundCaller(RetryConfig{AttemptTimeout: time.Second}, policy, clock)
	p := &stubParticipant{id: "s"}

	if _, _, err := c.call(p, RoundRequest{Round: 1}, obs.Nop); !errors.Is(err, errStraggler) {
		t.Fatalf("3s delay under 1s timeout: err %v, want straggler", err)
	}
	before := clock.Now()
	if _, _, err := c.call(p, RoundRequest{Round: 2}, obs.Nop); err != nil {
		t.Fatalf("500ms delay under 1s timeout failed: %v", err)
	}
	if got := clock.Now().Sub(before); got != 500*time.Millisecond {
		t.Errorf("in-bound delay advanced %v, want 500ms", got)
	}
}

func TestCallerCrashLosesCompletedWork(t *testing.T) {
	policy := faultinject.Scripted{
		{Layer: faultinject.LayerParticipant, Client: "c", Round: 1, Attempt: 0}: {Crash: true},
	}
	c := newRoundCaller(RetryConfig{}, policy, simclock.NewSim(time.Unix(0, 0)))
	p := &stubParticipant{id: "c"}
	_, _, err := c.call(p, RoundRequest{Round: 1}, obs.Nop)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err %v, want injected crash", err)
	}
	if p.calls != 1 {
		t.Errorf("crash-mid-round should still invoke the participant once, got %d", p.calls)
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	c := newRoundCaller(RetryConfig{BaseBackoff: 100 * time.Millisecond, MaxBackoff: 800 * time.Millisecond, Seed: 7}, nil, nil)
	for attempt := 0; attempt < 8; attempt++ {
		ceil := 100 * time.Millisecond << uint(attempt)
		if ceil > 800*time.Millisecond {
			ceil = 800 * time.Millisecond
		}
		d := c.backoff("cli", 4, attempt)
		if d < 0 || d >= ceil {
			t.Errorf("attempt %d: backoff %v outside [0, %v)", attempt, d, ceil)
		}
		if d != c.backoff("cli", 4, attempt) {
			t.Errorf("attempt %d: backoff not deterministic", attempt)
		}
	}
	// Different clients de-synchronize.
	same := true
	for attempt := 0; attempt < 8 && same; attempt++ {
		if c.backoff("cli-a", 1, attempt) != c.backoff("cli-b", 1, attempt) {
			same = false
		}
	}
	if same {
		t.Error("two clients drew identical jitter on every attempt")
	}
}

func TestCallerParticipantErrorRetries(t *testing.T) {
	// Real (non-injected) participant failures are also retried — the error
	// taxonomy only exempts corrupt frames.
	p := &stubParticipant{id: "e", err: fmt.Errorf("transient network blip")}
	c := newRoundCaller(RetryConfig{MaxAttempts: 3}, nil, simclock.NewSim(time.Unix(0, 0)))
	_, _, err := c.call(p, RoundRequest{Round: 1}, obs.Nop)
	if err == nil || p.calls != 3 {
		t.Fatalf("calls=%d err=%v, want 3 attempts and the last error", p.calls, err)
	}
}

func TestCorruptFrameGoesThroughRealCodec(t *testing.T) {
	resp := RoundResponse{ClientID: "x", Params: []float64{1, 2}, NumExamples: 5}
	err := corruptFrame(resp, faultinject.Point{Layer: faultinject.LayerCodec, Client: "x", Round: 9})
	if !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("corruptFrame returned %v, want ErrCorruptFrame", err)
	}
}
