//go:build !race

package fl

const raceEnabled = false
