package fl

import (
	"fmt"
	"math"
	"runtime"
	"testing"
	"time"

	"bofl/internal/core"
	"bofl/internal/parallel"
)

// mathParticipant is a cheap deterministic participant: its update is a pure
// function of the incoming global vector and its own identity, so expected
// round results can be computed independently of scheduling.
type mathParticipant struct {
	id    string
	idx   int
	num   int
	sleep time.Duration // scrambles completion order vs index order
	miss  bool
	fail  bool
}

func (p *mathParticipant) ID() string                        { return p.id }
func (p *mathParticipant) TMinFor(jobs int) (float64, error) { return float64(jobs), nil }

// update is the participant's deterministic "training" step.
func (p *mathParticipant) update(global []float64) []float64 {
	scale := 1 + float64(p.idx%7)/8
	shift := float64(p.idx%5) / 16
	out := make([]float64, len(global))
	for i, v := range global {
		out[i] = v*scale + shift
	}
	return out
}

func (p *mathParticipant) Round(req RoundRequest) (RoundResponse, error) {
	if p.sleep > 0 {
		time.Sleep(p.sleep)
	}
	if p.fail {
		return RoundResponse{}, fmt.Errorf("%s: dropped", p.id)
	}
	return RoundResponse{
		ClientID:    p.id,
		Params:      p.update(req.Params),
		NumExamples: p.num,
		Report:      core.RoundReport{Round: req.Round, DeadlineMet: !p.miss},
	}, nil
}

func newMathServer(t *testing.T, dim int, tolerate bool) *Server {
	t.Helper()
	init := make([]float64, dim)
	for i := range init {
		init[i] = math.Sin(float64(i + 1)) // irrational-ish, exercises FP order
	}
	srv, err := NewServer(ServerConfig{
		InitialParams:    init,
		Jobs:             10,
		DeadlineRatio:    2,
		Seed:             9,
		TolerateDropouts: tolerate,
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestStreamingMatchesBatchAggregate checks the tentpole invariant: the
// streaming index-order fold produces a global model bitwise-identical to the
// legacy batch aggregate over the same surviving responses — with dropouts in
// the mix and completion order deliberately scrambled (later indices finish
// first under a 4-wide pool).
func TestStreamingMatchesBatchAggregate(t *testing.T) {
	prev := parallel.SetWorkers(4)
	defer parallel.SetWorkers(prev)

	const n, dim = 9, 257
	srv := newMathServer(t, dim, true)
	initial := srv.GlobalParams()
	parts := make([]*mathParticipant, n)
	for i := range parts {
		parts[i] = &mathParticipant{
			id:    fmt.Sprintf("p%d", i),
			idx:   i,
			num:   10 + i*3,
			sleep: time.Duration(n-i) * 200 * time.Microsecond, // reverse completion order
			miss:  i == 2,
			fail:  i == 5,
		}
		srv.Register(parts[i])
	}

	res, err := srv.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dropped) != 2 {
		t.Fatalf("dropped = %v, want p2 (miss) and p5 (fail)", res.Dropped)
	}

	// Batch reference: the legacy aggregate over the survivors' responses in
	// index order, from the same initial global model.
	ref := newMathServer(t, dim, true)
	var responses []RoundResponse
	for _, p := range parts {
		if p.fail || p.miss {
			continue
		}
		responses = append(responses, RoundResponse{
			ClientID:    p.id,
			Params:      p.update(initial),
			NumExamples: p.num,
		})
	}
	if err := ref.aggregate(responses); err != nil {
		t.Fatal(err)
	}

	got, want := srv.GlobalParams(), ref.GlobalParams()
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("global[%d]: streaming %v != batch %v", i, got[i], want[i])
		}
	}
}

// TestRoundResponsesParamsStripped pins the O(params) memory contract: after
// a round, no response retains its parameter vector.
func TestRoundResponsesParamsStripped(t *testing.T) {
	srv := newMathServer(t, 16, false)
	for i := 0; i < 4; i++ {
		srv.Register(&mathParticipant{id: fmt.Sprintf("p%d", i), idx: i, num: 10})
	}
	res, err := srv.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Responses) != 4 {
		t.Fatalf("responses = %d", len(res.Responses))
	}
	for _, r := range res.Responses {
		if r.Params != nil {
			t.Fatalf("response %s retains %d params", r.ClientID, len(r.Params))
		}
	}
}

// mutatingParticipant scribbles over its request params while training — the
// regression case for the shared req.Params alias: before per-request copies,
// concurrent participants would observe (and race on) each other's writes.
type mutatingParticipant struct {
	id  string
	val float64
}

func (p *mutatingParticipant) ID() string                        { return p.id }
func (p *mutatingParticipant) TMinFor(jobs int) (float64, error) { return float64(jobs), nil }

func (p *mutatingParticipant) Round(req RoundRequest) (RoundResponse, error) {
	// Every element must still hold the round's global snapshot: any other
	// value means another participant's mutation leaked into our request.
	for i, v := range req.Params {
		if v != 0 {
			return RoundResponse{}, fmt.Errorf("%s: params[%d] = %v, want pristine 0", p.id, i, v)
		}
		req.Params[i] = p.val // mutate in place, mid-round
	}
	return RoundResponse{
		ClientID:    p.id,
		Params:      req.Params,
		NumExamples: 10,
		Report:      core.RoundReport{Round: req.Round, DeadlineMet: true},
	}, nil
}

// TestRunRoundParamIsolation runs many concurrently-mutating participants
// under the pool; run with -race this is the regression test for the shared
// req.Params alias in RunRound.
func TestRunRoundParamIsolation(t *testing.T) {
	prev := parallel.SetWorkers(8)
	defer parallel.SetWorkers(prev)

	srv, err := NewServer(ServerConfig{
		InitialParams: make([]float64, 512), // zeros: any leak is detectable
		Jobs:          10,
		DeadlineRatio: 2,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	total := 0.0
	weighted := 0.0
	for i := 0; i < n; i++ {
		v := float64(i + 1)
		srv.Register(&mutatingParticipant{id: fmt.Sprintf("m%d", i), val: v})
		weighted += 10 * v
		total += 10
	}
	res, err := srv.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Responses) != n {
		t.Fatalf("responses = %d", len(res.Responses))
	}
	want := weighted / total
	for i, v := range srv.GlobalParams() {
		if math.Abs(v-want) > 1e-12 {
			t.Fatalf("global[%d] = %v, want %v", i, v, want)
		}
	}
}

// TestFLRoundDeterminism runs the same federation under three execution modes
// (GOMAXPROCS/pool width 1/1, 4/4 and 4/default) and requires bitwise-equal
// global models after several rounds — the acceptance bar for pool-bounded
// fan-out.
func TestFLRoundDeterminism(t *testing.T) {
	run := func(procs, workers int) []float64 {
		prevProcs := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prevProcs)
		prevWorkers := parallel.SetWorkers(workers)
		defer parallel.SetWorkers(prevWorkers)

		srv := newMathServer(t, 101, true)
		for i := 0; i < 12; i++ {
			srv.Register(&mathParticipant{
				id:    fmt.Sprintf("p%d", i),
				idx:   i,
				num:   5 + i,
				sleep: time.Duration((13*i)%5) * 100 * time.Microsecond,
				miss:  i == 3,
			})
		}
		for r := 0; r < 3; r++ {
			if _, err := srv.RunRound(); err != nil {
				t.Fatal(err)
			}
		}
		return srv.GlobalParams()
	}

	base := run(1, 1)
	for _, mode := range []struct {
		name           string
		procs, workers int
	}{
		{"parallel4", 4, 4},
		{"parallel-default", 4, 0},
	} {
		got := run(mode.procs, mode.workers)
		for i := range base {
			if math.Float64bits(got[i]) != math.Float64bits(base[i]) {
				t.Fatalf("%s: global[%d] = %v, serial %v", mode.name, i, got[i], base[i])
			}
		}
	}
}

// TestScaleSmoke is the CI scale smoke: hundreds of in-process participants
// through several pool-dispatched rounds (run under -race in CI).
func TestScaleSmoke(t *testing.T) {
	const n, dim, rounds = 300, 64, 3
	srv := newMathServer(t, dim, true)
	for i := 0; i < n; i++ {
		srv.Register(&mathParticipant{id: fmt.Sprintf("p%d", i), idx: i, num: 1 + i%17, miss: i%97 == 0})
	}
	for r := 0; r < rounds; r++ {
		res, err := srv.RunRound()
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Responses)+len(res.Dropped) != n {
			t.Fatalf("round %d: %d responses + %d dropped != %d",
				r, len(res.Responses), len(res.Dropped), n)
		}
	}
}
