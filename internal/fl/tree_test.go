package fl

// Hierarchical aggregation properties. The tentpole invariant: a tree round's
// committed global model is bit-identical to the flat streaming fold (and the
// batch reference) on the same selection, for any fanout, ragged tail and
// pool width — the exact accumulator makes the fold associative, so tree
// shape cannot change a single bit.

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"bofl/internal/exact"
	"bofl/internal/obs/ledger"
	"bofl/internal/parallel"
)

// treeServer builds a math-participant fleet with an aggregation tree.
func treeServer(t *testing.T, dim, clients int, tree *TreeConfig) *Server {
	t.Helper()
	init := make([]float64, dim)
	for i := range init {
		init[i] = math.Sin(float64(i + 1))
	}
	srv, err := NewServer(ServerConfig{
		InitialParams: init,
		Jobs:          10,
		DeadlineRatio: 2,
		Seed:          9,
		Tree:          tree,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < clients; i++ {
		srv.Register(&mathParticipant{id: fmt.Sprintf("c%03d", i), idx: i, num: 1 + i%17})
	}
	return srv
}

func bitwiseEqual(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d params vs %d", label, len(got), len(want))
	}
	for j := range got {
		if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
			t.Fatalf("%s: param %d: %x != %x", label, j,
				math.Float64bits(got[j]), math.Float64bits(want[j]))
		}
	}
}

// TestTreeMatchesFlatFold sweeps fanouts 2..64 and ragged client counts at
// GOMAXPROCS 1 and 4: every tree commit must equal the flat commit bitwise.
func TestTreeMatchesFlatFold(t *testing.T) {
	const dim = 257
	for _, procs := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(procs)
		prevW := parallel.SetWorkers(procs)
		for _, clients := range []int{1, 5, 31, 64, 100} {
			flat := treeServer(t, dim, clients, nil)
			if _, err := flat.RunRound(); err != nil {
				t.Fatal(err)
			}
			want := flat.GlobalParams()
			for _, fanout := range []int{2, 3, 7, 16, 64} {
				srv := treeServer(t, dim, clients, &TreeConfig{Fanout: fanout})
				res, err := srv.RunRound()
				if err != nil {
					t.Fatalf("procs %d clients %d fanout %d: %v", procs, clients, fanout, err)
				}
				if len(res.Responses) != clients {
					t.Fatalf("fanout %d: %d responses", fanout, len(res.Responses))
				}
				bitwiseEqual(t, fmt.Sprintf("procs %d clients %d fanout %d", procs, clients, fanout),
					srv.GlobalParams(), want)
			}
		}
		parallel.SetWorkers(prevW)
		runtime.GOMAXPROCS(prev)
	}
}

// TestTreeMatchesBatchAggregate rides the existing reference: a tree round
// with dropouts must commit exactly what the batch aggregate computes over
// the surviving responses.
func TestTreeMatchesBatchAggregate(t *testing.T) {
	const dim, clients = 64, 50
	srv := treeServer(t, dim, clients, &TreeConfig{Fanout: 4})
	srv.cfg.TolerateDropouts = true
	// Rebuild responses the reference needs before the round consumes them.
	var surviving []RoundResponse
	global := srv.GlobalParams()
	for i, p := range srv.pool {
		mp := p.(*mathParticipant)
		if i%7 == 3 {
			mp.fail = true
			continue
		}
		surviving = append(surviving, RoundResponse{
			ClientID: mp.id, Params: mp.update(global), NumExamples: mp.num,
		})
	}
	if _, err := srv.RunRound(); err != nil {
		t.Fatal(err)
	}
	ref := treeServer(t, dim, clients, nil)
	if err := ref.aggregate(surviving); err != nil {
		t.Fatal(err)
	}
	bitwiseEqual(t, "tree vs batch over survivors", srv.GlobalParams(), ref.GlobalParams())
}

// TestTreePartialMergeProperty is the satellite fold-merge property test:
// folding pre-aggregated (sum, weight) partials in tier order is bit-identical
// to the flat in-order fold, across arbitrary tree shapes — fanout 2..64,
// ragged leaf counts — and GOMAXPROCS 1/4. It drives the exact accumulators
// directly (no server), so the property is isolated from orchestration.
func TestTreePartialMergeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	const dim = 33
	for _, procs := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(procs)
		for trial := 0; trial < 30; trial++ {
			leaves := 1 + rng.Intn(300)
			fanout := 2 + rng.Intn(63)
			updates := make([][]float64, leaves)
			weights := make([]int64, leaves)
			for i := range updates {
				updates[i] = make([]float64, dim)
				for j := range updates[i] {
					updates[i][j] = rng.NormFloat64() * math.Ldexp(1, rng.Intn(40)-20)
				}
				weights[i] = int64(1 + rng.Intn(100))
			}
			// Flat in-order fold.
			flat := exact.NewVec(dim)
			var flatW int64
			for i := range updates {
				flat.AddScaled(float64(weights[i]), updates[i])
				flatW += weights[i]
			}
			flatSum := make([]float64, dim)
			flat.RoundTo(flatSum)

			// Tiered fold: leaves → fanout-sized partials → one root, merged
			// through the serialized wire form.
			root := exact.NewVec(dim)
			var rootW int64
			for lo := 0; lo < leaves; lo += fanout {
				hi := lo + fanout
				if hi > leaves {
					hi = leaves
				}
				part := exact.NewVec(dim)
				var w int64
				for i := lo; i < hi; i++ {
					part.AddScaled(float64(weights[i]), updates[i])
					w += weights[i]
				}
				var buf bytes.Buffer
				pa := PartialAggregate{Round: 1, LeafLo: lo, LeafHi: hi - 1,
					Survivors: hi - lo, Weight: w, Sum: part.Serialize()}
				if err := EncodePartialAggregate(&buf, pa); err != nil {
					t.Fatal(err)
				}
				dec, err := DecodePartialAggregate(&buf)
				if err != nil {
					t.Fatal(err)
				}
				if err := root.Absorb(dec.Sum); err != nil {
					t.Fatal(err)
				}
				rootW += dec.Weight
			}
			rootSum := make([]float64, dim)
			root.RoundTo(rootSum)
			if rootW != flatW {
				t.Fatalf("trial %d: weight %d != %d", trial, rootW, flatW)
			}
			bitwiseEqual(t, fmt.Sprintf("procs %d trial %d (leaves %d fanout %d)",
				procs, trial, leaves, fanout), rootSum, flatSum)
		}
		runtime.GOMAXPROCS(prev)
	}
}

// TestTierQuorumSubtreeDrop checks the per-tier quorum path: a group whose
// survivors fall below ⌈q·children⌉ is dropped whole, the round commits the
// batch aggregate over the remaining leaves, and the ledger journals the
// subtree drop.
func TestTierQuorumSubtreeDrop(t *testing.T) {
	const dim, clients, fanout = 48, 32, 4
	led := ledger.New(0)
	srv := treeServer(t, dim, clients, &TreeConfig{Fanout: fanout, TierQuorum: 0.5})
	srv.cfg.Ledger = led
	// Kill 3 of 4 leaves in the third tier-0 group (leaves 8..11): 1/4 < 0.5,
	// so the whole group must drop — including its healthy leaf 9.
	var surviving []RoundResponse
	global := srv.GlobalParams()
	for i, p := range srv.pool {
		mp := p.(*mathParticipant)
		if i == 8 || i == 10 || i == 11 {
			mp.fail = true
			continue
		}
		if i == 9 {
			continue // healthy, but its subtree drops
		}
		surviving = append(surviving, RoundResponse{
			ClientID: mp.id, Params: mp.update(global), NumExamples: mp.num,
		})
	}
	res, err := srv.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Responses) != clients-4 {
		t.Fatalf("%d responses, want %d", len(res.Responses), clients-4)
	}
	foundHealthy := false
	for _, id := range res.Dropped {
		if id == "c009" {
			foundHealthy = true
		}
	}
	if !foundHealthy {
		t.Fatalf("leaf c009 not in Dropped: %v", res.Dropped)
	}
	ref := treeServer(t, dim, clients, nil)
	if err := ref.aggregate(surviving); err != nil {
		t.Fatal(err)
	}
	bitwiseEqual(t, "subtree drop vs batch over survivors", srv.GlobalParams(), ref.GlobalParams())

	drops, partials := 0, 0
	for _, ev := range led.Events() {
		switch ev.Kind {
		case ledger.KindSubtreeDrop:
			drops++
			if ev.Tier != 0 || ev.Survivors != 1 || ev.Selected != 4 {
				t.Fatalf("subtree drop event %+v", ev)
			}
		case ledger.KindPartial:
			partials++
			if ev.Weight <= 0 || ev.WireTxBytes <= 0 {
				t.Fatalf("partial event %+v", ev)
			}
		}
	}
	if drops != 1 {
		t.Fatalf("%d subtree drops, want 1", drops)
	}
	// 8 tier-0 groups minus the dropped one, plus 2 tier-1 nodes and 1 root
	// close: the exact count depends on shape, but there must be more than
	// the surviving tier-0 groups alone.
	if partials < 8 {
		t.Fatalf("%d partials journaled", partials)
	}
}

// TestTreeSpineMemoryBounded pins the O(depth·params) bound: a deep tree over
// many leaves keeps the spine at exactly depth+1 accumulators.
func TestTreeSpineMemoryBounded(t *testing.T) {
	const dim, clients, fanout = 16, 200, 2
	srv := treeServer(t, dim, clients, &TreeConfig{Fanout: fanout})
	if _, err := srv.RunRound(); err != nil {
		t.Fatal(err)
	}
	depth := int(math.Ceil(math.Log(float64(clients)) / math.Log(fanout)))
	// The spine accumulates the fold vector: model dims plus the
	// aggregator's statistic slots.
	perAcc := exact.NewVec(dim + srv.Aggregator().ExtraDim(dim)).MemoryBytes()
	got := srv.tree.MemoryBytes()
	if max := int64(depth+1) * perAcc; got > max {
		t.Fatalf("spine %d bytes exceeds depth bound %d", got, max)
	}
}

// TestPartialFrameRejectedByRoundDecoders pins the codec boundary: a partial
// frame must be ErrCorruptFrame to both round decoders, and a round frame
// must be rejected by the partial decoder.
func TestPartialFrameRejectedByRoundDecoders(t *testing.T) {
	v := exact.NewVec(3)
	v.Add([]float64{1, 2, 3})
	var buf bytes.Buffer
	if err := EncodePartialAggregate(&buf, PartialAggregate{Round: 1, Weight: 2, Sum: v.Serialize()}); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	if _, err := DecodeRoundRequest(bytes.NewReader(frame)); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("round request decoder accepted a partial frame: %v", err)
	}
	if _, err := DecodeRoundResponse(bytes.NewReader(frame)); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("round response decoder accepted a partial frame: %v", err)
	}
	var rbuf bytes.Buffer
	if err := EncodeRoundRequest(&rbuf, RoundRequest{Round: 1, Params: []float64{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodePartialAggregate(&rbuf); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("partial decoder accepted a round frame: %v", err)
	}
}

// TestPartialAggregateRoundTrip checks frame fidelity for the full metadata
// and an exact window carrying specials.
func TestPartialAggregateRoundTrip(t *testing.T) {
	v := exact.NewVec(4)
	v.AddScaled(3, []float64{1e-300, 2, -5e200, math.Inf(1)})
	v.AddScaled(2, []float64{4, -2, 1e-10, 7})
	want := make([]float64, 4)
	v.RoundTo(want)

	pa := PartialAggregate{
		Round: 7, Tier: 2, Node: 5, LeafLo: 128, LeafHi: 191,
		Survivors: 60, Weight: 12345, Sum: v.Serialize(),
	}
	var buf bytes.Buffer
	if err := EncodePartialAggregate(&buf, pa); err != nil {
		t.Fatal(err)
	}
	dec, err := DecodePartialAggregate(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Round != 7 || dec.Tier != 2 || dec.Node != 5 || dec.LeafLo != 128 ||
		dec.LeafHi != 191 || dec.Survivors != 60 || dec.Weight != 12345 {
		t.Fatalf("meta mismatch: %+v", dec)
	}
	merged := exact.NewVec(4)
	if err := merged.Absorb(dec.Sum); err != nil {
		t.Fatal(err)
	}
	got := make([]float64, 4)
	merged.RoundTo(got)
	for j := range want {
		gb, wb := math.Float64bits(got[j]), math.Float64bits(want[j])
		if gb != wb && !(math.IsNaN(got[j]) && math.IsNaN(want[j])) {
			t.Fatalf("param %d: %x != %x", j, gb, wb)
		}
	}
}

// TestTreeConfigValidation pins NewServer's tree validation.
func TestTreeConfigValidation(t *testing.T) {
	base := ServerConfig{InitialParams: []float64{1}, Jobs: 1, DeadlineRatio: 2}
	for _, bad := range []*TreeConfig{
		{Fanout: 0}, {Fanout: 1}, {Fanout: -3},
		{Fanout: 2, TierQuorum: -0.1}, {Fanout: 2, TierQuorum: 1.5},
	} {
		cfg := base
		cfg.Tree = bad
		if _, err := NewServer(cfg); err == nil {
			t.Fatalf("config %+v accepted", bad)
		}
	}
	cfg := base
	cfg.Tree = &TreeConfig{Fanout: 2, TierQuorum: 0.5}
	if _, err := NewServer(cfg); err != nil {
		t.Fatal(err)
	}
}

// TestTreePipelinedClosesMatchSerial pins the async tier-0 close pipeline:
// with pool workers available, group closes frame their partials off the
// turnstile and commit in enqueue order, so the committed model AND the
// ledger JSONL must be byte-identical to the single-worker serial walk —
// with subtree drops and dropouts interleaved. Run with -race to check the
// snapshot hand-off.
func TestTreePipelinedClosesMatchSerial(t *testing.T) {
	const dim, clients, fanout = 96, 61, 3 // ragged everywhere
	run := func(workersN int) ([]float64, []byte) {
		prevW := parallel.SetWorkers(workersN)
		defer parallel.SetWorkers(prevW)
		led := ledger.New(0)
		srv := treeServer(t, dim, clients, &TreeConfig{Fanout: fanout, TierQuorum: 0.5})
		srv.cfg.Ledger = led
		srv.cfg.TolerateDropouts = true
		for i, p := range srv.pool {
			if i%9 == 2 || i%9 == 5 { // 2 of 3 leaves gone in some groups
				p.(*mathParticipant).fail = true
			}
		}
		for r := 0; r < 2; r++ {
			if _, err := srv.RunRound(); err != nil {
				t.Fatalf("workers=%d round %d: %v", workersN, r, err)
			}
		}
		var buf bytes.Buffer
		if err := led.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return srv.GlobalParams(), buf.Bytes()
	}
	wantModel, wantJSONL := run(1)
	for _, w := range []int{2, 4} {
		model, jsonl := run(w)
		bitwiseEqual(t, fmt.Sprintf("workers=%d model", w), model, wantModel)
		if !bytes.Equal(jsonl, wantJSONL) {
			t.Fatalf("workers=%d: ledger JSONL diverges from serial (%d vs %d bytes)",
				w, len(jsonl), len(wantJSONL))
		}
	}
}
