package fl

import (
	"bytes"
	"encoding/json"
	"testing"

	"bofl/internal/exact"
	"bofl/internal/obs"
)

// TestPartialMetaFastCodecMatchesJSON pins the hand-rolled metadata codec to
// encoding/json: for a spread of metas the fast marshaller must emit the
// exact bytes json.Marshal produces, and the fast parser must round-trip them
// to the same struct. This is what keeps the wire format stable while the
// fleet hot path skips reflection.
func TestPartialMetaFastCodecMatchesJSON(t *testing.T) {
	metas := []partialMeta{
		{},
		{Round: 1, Tier: 2, Node: 3, LeafLo: 0, LeafHi: 63, Survivors: 60, Weight: 900,
			Dim: 256, WindowLo: 31, WindowHi: 36, Adds: 61},
		{Round: -7, Tier: 0, Node: 1 << 30, LeafLo: -1, LeafHi: 1<<62 - 1,
			Survivors: 999999, Weight: -1 << 62, Dim: 1, WindowLo: 0, WindowHi: 66, Adds: 1},
		{Round: 12, Weight: 5, Dim: 4, Adds: 2, TraceID: "0123456789abcdef", SpanID: "fedcba98"},
		{Round: 3, Dim: 2, Adds: 1, Specials: []uint8{0, 3}},
		{Round: 3, Dim: 2, Adds: 1, Specials: []uint8{1, 0, 255}, TraceID: "t1", SpanID: "s2"},
	}
	for i, m := range metas {
		want, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("meta %d: marshal: %v", i, err)
		}
		got, fast := appendPartialMeta(nil, &m)
		if !fast {
			t.Fatalf("meta %d: fast marshal refused", i)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("meta %d: fast marshal\n got %s\nwant %s", i, got, want)
		}
		var back partialMeta
		if !parsePartialMeta(got, &back) {
			t.Fatalf("meta %d: fast parse refused canonical bytes %s", i, got)
		}
		var ref partialMeta
		if err := json.Unmarshal(want, &ref); err != nil {
			t.Fatalf("meta %d: reference unmarshal: %v", i, err)
		}
		if !metaEqual(back, ref) {
			t.Fatalf("meta %d: fast parse %+v, reference %+v", i, back, ref)
		}
	}
}

// TestPartialMetaFastCodecFallbacks checks the guardrails: strings that need
// JSON escaping refuse the fast marshal, and non-canonical (but potentially
// valid) JSON refuses the fast parse — both land on encoding/json.
func TestPartialMetaFastCodecFallbacks(t *testing.T) {
	for _, id := range []string{"a\"b", "a\\b", "<tag>", "a&b", "snowman☃", "ctl\x01"} {
		m := partialMeta{TraceID: id}
		if _, fast := appendPartialMeta(nil, &m); fast {
			t.Fatalf("fast marshal accepted escape-needing trace id %q", id)
		}
	}
	bad := []string{
		``,
		`{}`,
		` {"round":1,"tier":0,"node":0,"leafLo":0,"leafHi":0,"survivors":0,"weight":0,"dim":1,"windowLo":0,"windowHi":0,"adds":1}`,
		`{"tier":0,"round":1,"node":0,"leafLo":0,"leafHi":0,"survivors":0,"weight":0,"dim":1,"windowLo":0,"windowHi":0,"adds":1}`,
		`{"round":1,"tier":0,"node":0,"leafLo":0,"leafHi":0,"survivors":0,"weight":0,"dim":1,"windowLo":0,"windowHi":0,"adds":1,"extra":2}`,
		`{"round":99999999999999999999,"tier":0,"node":0,"leafLo":0,"leafHi":0,"survivors":0,"weight":0,"dim":1,"windowLo":0,"windowHi":0,"adds":1}`,
		`{"round":1,"tier":0,"node":0,"leafLo":0,"leafHi":0,"survivors":0,"weight":0,"dim":1,"windowLo":0,"windowHi":0,"adds":1,"specials":"!!"}`,
	}
	var m partialMeta
	for _, b := range bad {
		if parsePartialMeta([]byte(b), &m) {
			t.Fatalf("fast parse accepted non-canonical %q", b)
		}
	}
	// The fallback still decodes reordered-but-valid JSON via the frame path:
	// canonical round-trips are covered by the partial-aggregate codec tests.
}

func metaEqual(a, b partialMeta) bool {
	if len(a.Specials) != len(b.Specials) {
		return false
	}
	for i := range a.Specials {
		if a.Specials[i] != b.Specials[i] {
			return false
		}
	}
	return a.Round == b.Round && a.Tier == b.Tier && a.Node == b.Node &&
		a.LeafLo == b.LeafLo && a.LeafHi == b.LeafHi &&
		a.Survivors == b.Survivors && a.Weight == b.Weight &&
		a.Dim == b.Dim && a.WindowLo == b.WindowLo && a.WindowHi == b.WindowHi &&
		a.Adds == b.Adds && a.TraceID == b.TraceID && a.SpanID == b.SpanID
}

// TestPartialFrameCycleAllocs pins the pooled tier-close wire path: once the
// codec pools are warm, a full SerializeInto → Encode → DecodeInto → Absorb
// cycle — what every fleet aggregator runs per node close — must allocate at
// most a handful of objects, independent of dim. The budget tolerates pool
// churn under GC pressure while catching any per-frame regression (escaping
// headers, metadata structs, trace strings).
func TestPartialFrameCycleAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector's sync.Pool drops Puts; alloc counts are meaningless")
	}
	const dim = 256
	x := make([]float64, dim)
	for i := range x {
		x[i] = float64(i%17)/16 + 0.5
	}
	v := exact.NewVec(dim)
	v.AddScaled(3, x)
	parent := exact.NewVec(dim)

	var (
		ser exact.Serialized
		buf bytes.Buffer
		dec PartialAggregate
	)
	cycle := func() {
		v.SerializeInto(&ser)
		pa := PartialAggregate{
			Round: 1, Tier: 2, Node: 3, LeafLo: 0, LeafHi: 63,
			Survivors: 60, Weight: 120, Sum: ser,
			Trace: obs.TraceContext{TraceID: "0123456789abcdef0123456789abcdef", SpanID: "0123456789abcdef"},
		}
		buf.Reset()
		if err := EncodePartialAggregate(&buf, pa); err != nil {
			t.Fatal(err)
		}
		if err := DecodePartialAggregateInto(&buf, &dec); err != nil {
			t.Fatal(err)
		}
		parent.Reset()
		if err := parent.Absorb(dec.Sum); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ { // warm the byte/meta/gzip pools
		cycle()
	}
	avg := testing.AllocsPerRun(10, cycle)
	t.Logf("partial frame cycle: %.1f allocs", avg)
	if avg > 4 {
		t.Fatalf("pooled partial frame cycle allocates %.1f times, budget 4", avg)
	}
}
