package fl

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// Figure 1, step 1: devices check in with the server, which then selects a
// subset of them. This file implements the server side of that flow for the
// HTTP transport — clients POST their base URL and capabilities; the registry
// dials them back and hands live participants to the FL server. The reverse
// topology (server dials a static client list, as cmd/flserver's -clients
// flag does) remains available for fixed fleets.

// CheckinRequest is a client's registration message.
type CheckinRequest struct {
	ClientID string `json:"clientId"`
	// BaseURL is where the server can reach the client's training API.
	BaseURL string `json:"baseUrl"`
	Device  string `json:"device"`
}

// CheckinResponse acknowledges a registration.
type CheckinResponse struct {
	Accepted bool   `json:"accepted"`
	Message  string `json:"message,omitempty"`
}

// Registry tracks checked-in clients and converts them into Participants. It
// is safe for concurrent use.
type Registry struct {
	mu          sync.Mutex
	dialTimeout time.Duration
	participant map[string]Participant // by client id
	dial        func(ctx context.Context, baseURL string, timeout time.Duration) (Participant, error)
}

// NewRegistry creates an empty registry. dialTimeout bounds the verification
// dial performed at check-in time.
func NewRegistry(dialTimeout time.Duration) *Registry {
	return &Registry{
		dialTimeout: dialTimeout,
		participant: make(map[string]Participant),
		dial:        DialParticipantContext,
	}
}

// CheckIn validates a registration by dialing the client back and stores the
// resulting participant. Re-registering an id replaces the previous entry
// (devices reconnect with new addresses).
func (r *Registry) CheckIn(req CheckinRequest) error {
	return r.CheckInContext(context.Background(), req)
}

// CheckInContext is CheckIn with a caller-supplied context: a cancelled or
// expired ctx aborts the dial-back immediately instead of hanging on a dead
// or unresponsive client endpoint.
func (r *Registry) CheckInContext(ctx context.Context, req CheckinRequest) error {
	if req.ClientID == "" || req.BaseURL == "" {
		return fmt.Errorf("fl: check-in needs clientId and baseUrl, got %+v", req)
	}
	p, err := r.dial(ctx, req.BaseURL, r.dialTimeout)
	if err != nil {
		return fmt.Errorf("fl: check-in dial-back %s: %w", req.BaseURL, err)
	}
	if p.ID() != req.ClientID {
		return fmt.Errorf("fl: check-in id mismatch: claimed %q, endpoint says %q", req.ClientID, p.ID())
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.participant[req.ClientID] = p
	return nil
}

// Drop removes a client (e.g. after repeated failures).
func (r *Registry) Drop(clientID string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.participant, clientID)
}

// Participants returns the current pool.
func (r *Registry) Participants() []Participant {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Participant, 0, len(r.participant))
	for _, p := range r.participant {
		out = append(out, p)
	}
	return out
}

// Len reports the pool size.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.participant)
}

// Handler serves POST /v1/checkin for the registry.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/checkin", func(w http.ResponseWriter, req *http.Request) {
		var body CheckinRequest
		if err := json.NewDecoder(io.LimitReader(req.Body, 1<<20)).Decode(&body); err != nil {
			http.Error(w, fmt.Sprintf("decode check-in: %v", err), http.StatusBadRequest)
			return
		}
		if err := r.CheckInContext(req.Context(), body); err != nil {
			writeJSON(w, CheckinResponse{Accepted: false, Message: err.Error()})
			return
		}
		writeJSON(w, CheckinResponse{Accepted: true})
	})
	return mux
}

// CheckIn is the client-side call: announce this client's endpoint to the
// server's registry.
func CheckIn(serverURL string, req CheckinRequest, timeout time.Duration) error {
	return CheckInContext(context.Background(), serverURL, req, timeout)
}

// CheckInContext is CheckIn honoring a caller context: cancellation or a
// context deadline aborts the POST mid-flight — a client daemon retrying
// against a dead or hung server stays responsive to shutdown.
func CheckInContext(ctx context.Context, serverURL string, req CheckinRequest, timeout time.Duration) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("fl: encode check-in: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, serverURL+"/v1/checkin", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("fl: build check-in request: %w", err)
	}
	hreq.Header.Set("Content-Type", ContentTypeJSON)
	hc := &http.Client{Timeout: timeout, Transport: flTransport}
	resp, err := hc.Do(hreq)
	if err != nil {
		return fmt.Errorf("fl: check-in with %s: %w", serverURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("fl: check-in with %s: %s: %s", serverURL, resp.Status, msg)
	}
	var ack CheckinResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		return fmt.Errorf("fl: decode check-in ack: %w", err)
	}
	if !ack.Accepted {
		return fmt.Errorf("fl: check-in rejected: %s", ack.Message)
	}
	return nil
}
