package fl

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"bofl/internal/obs"
)

// HTTP transport: a client daemon serves its training endpoint over HTTP and
// the server drives it through an HTTPParticipant. Wire format is JSON over
// two endpoints:
//
//	GET  /v1/info           → InfoResponse
//	POST /v1/round          → RoundRequest ⇒ RoundResponse
//
// This mirrors the configuration/execution/reporting flow of Figure 1 with a
// plain stdlib stack.

// InfoResponse advertises a client's identity and pace capabilities.
type InfoResponse struct {
	ClientID       string  `json:"clientId"`
	Device         string  `json:"device"`
	TMinPerJob     float64 `json:"tminPerJobSeconds"`
	NumExamples    int     `json:"numExamples"`
	ParamsChecksum int     `json:"paramsChecksum"`
}

// ClientHandler exposes a *Client over HTTP.
type ClientHandler struct {
	client *Client
	mux    *http.ServeMux
	sink   obs.Sink
}

var _ http.Handler = (*ClientHandler)(nil)

// NewClientHandler wraps a client.
func NewClientHandler(c *Client) *ClientHandler {
	h := &ClientHandler{client: c, mux: http.NewServeMux(), sink: obs.Nop}
	h.mux.HandleFunc("GET /v1/info", h.handleInfo)
	h.mux.HandleFunc("POST /v1/round", h.handleRound)
	return h
}

// SetTelemetry installs a live telemetry backend: error counters flow into
// its registry and the introspection endpoints (/metrics, /healthz,
// /v1/telemetry) are mounted next to the API. Also propagates the sink to the
// wrapped client.
func (h *ClientHandler) SetTelemetry(t *obs.Telemetry) {
	if t == nil {
		return
	}
	h.sink = t
	h.client.SetSink(t)
	t.Mount(h.mux)
}

// ServeHTTP dispatches to the API endpoints.
func (h *ClientHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

func (h *ClientHandler) handleInfo(w http.ResponseWriter, r *http.Request) {
	perJob, err := h.client.TMin(1)
	if err != nil {
		h.sink.Count(obs.MetricFLHTTPErrors, 1, obs.L("endpoint", "info"), obs.L("kind", "internal"))
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, InfoResponse{
		ClientID:    h.client.ID(),
		Device:      h.client.dev.Name(),
		TMinPerJob:  perJob,
		NumExamples: h.client.NumExamples(),
	})
}

func (h *ClientHandler) handleRound(w http.ResponseWriter, r *http.Request) {
	var req RoundRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 64<<20)).Decode(&req); err != nil {
		h.sink.Count(obs.MetricFLHTTPErrors, 1, obs.L("endpoint", "round"), obs.L("kind", "decode"))
		http.Error(w, fmt.Sprintf("decode round request: %v", err), http.StatusBadRequest)
		return
	}
	p := &LocalParticipant{Client: h.client}
	resp, err := p.Round(req)
	if err != nil {
		h.sink.Count(obs.MetricFLHTTPErrors, 1, obs.L("endpoint", "round"), obs.L("kind", "round"))
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already sent; nothing more we can do.
		return
	}
}

// HTTPParticipant drives a remote client daemon.
type HTTPParticipant struct {
	baseURL string
	id      string
	perJob  float64
	client  *http.Client
	sink    obs.Sink
}

// SetSink installs a telemetry sink counting transport, status and decode
// failures against the remote daemon.
func (p *HTTPParticipant) SetSink(s obs.Sink) { p.sink = obs.OrNop(s) }

// countErr increments the HTTP error counter for the round endpoint.
func (p *HTTPParticipant) countErr(kind string) {
	p.sink.Count(obs.MetricFLHTTPErrors, 1, obs.L("endpoint", "round"), obs.L("kind", kind))
}

var _ Participant = (*HTTPParticipant)(nil)

// DialParticipant contacts a client daemon and caches its identity.
func DialParticipant(baseURL string, timeout time.Duration) (*HTTPParticipant, error) {
	hc := &http.Client{Timeout: timeout}
	resp, err := hc.Get(baseURL + "/v1/info")
	if err != nil {
		return nil, fmt.Errorf("fl: dial %s: %w", baseURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fl: dial %s: status %s", baseURL, resp.Status)
	}
	var info InfoResponse
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, fmt.Errorf("fl: dial %s: %w", baseURL, err)
	}
	if info.ClientID == "" || info.TMinPerJob <= 0 {
		return nil, fmt.Errorf("fl: dial %s: malformed info %+v", baseURL, info)
	}
	return &HTTPParticipant{baseURL: baseURL, id: info.ClientID, perJob: info.TMinPerJob, client: hc, sink: obs.Nop}, nil
}

// ID returns the remote client's identifier.
func (p *HTTPParticipant) ID() string { return p.id }

// TMinFor scales the advertised per-job minimum latency.
func (p *HTTPParticipant) TMinFor(jobs int) (float64, error) {
	if jobs <= 0 {
		return 0, fmt.Errorf("fl: job count %d", jobs)
	}
	return p.perJob * float64(jobs), nil
}

// Round posts the round request to the daemon.
func (p *HTTPParticipant) Round(req RoundRequest) (RoundResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return RoundResponse{}, fmt.Errorf("fl: encode round: %w", err)
	}
	resp, err := p.client.Post(p.baseURL+"/v1/round", "application/json", bytes.NewReader(body))
	if err != nil {
		p.countErr("transport")
		return RoundResponse{}, fmt.Errorf("fl: round on %s: %w", p.id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		p.countErr("status")
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return RoundResponse{}, fmt.Errorf("fl: round on %s: %s: %s", p.id, resp.Status, bytes.TrimSpace(msg))
	}
	var out RoundResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&out); err != nil {
		p.countErr("decode")
		return RoundResponse{}, fmt.Errorf("fl: decode round response: %w", err)
	}
	return out, nil
}
