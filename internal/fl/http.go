package fl

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"slices"
	"strings"
	"sync/atomic"
	"time"

	"bofl/internal/obs"
)

// HTTP transport: a client daemon serves its training endpoint over HTTP and
// the server drives it through an HTTPParticipant. Two endpoints:
//
//	GET  /v1/info           → InfoResponse
//	POST /v1/round          → RoundRequest ⇒ RoundResponse
//
// The round body travels either as JSON (the original wire format, kept as
// the universal fallback) or as the binary frame defined in codec.go.
// Negotiation is one round trip and fully backwards compatible:
//
//   - The daemon advertises its codecs in InfoResponse.Codecs. An old daemon
//     omits the field, so a new server falls back to JSON for it.
//   - The server picks the best mutually supported codec and declares it in
//     the request's Content-Type; it also sends Accept for the response.
//   - The daemon decodes by Content-Type and answers in the same codec the
//     caller asked for, so an old server posting JSON gets JSON back even
//     from a binary-capable daemon.
//
// This mirrors the configuration/execution/reporting flow of Figure 1 with a
// plain stdlib stack.

// InfoResponse advertises a client's identity and pace capabilities.
type InfoResponse struct {
	ClientID       string  `json:"clientId"`
	Device         string  `json:"device"`
	TMinPerJob     float64 `json:"tminPerJobSeconds"`
	NumExamples    int     `json:"numExamples"`
	ParamsChecksum int     `json:"paramsChecksum"`
	// Codecs lists the wire codecs this daemon understands, best first.
	// Absent on pre-codec daemons, which speak JSON only.
	Codecs []string `json:"codecs,omitempty"`
}

// flTransport is the process-wide HTTP transport shared by every
// HTTPParticipant and check-in call: connections to client daemons are kept
// alive across rounds instead of being re-dialed every round, and dials are
// individually bounded so one unreachable device cannot absorb the whole
// round timeout.
var flTransport = &http.Transport{
	Proxy: http.ProxyFromEnvironment,
	DialContext: (&net.Dialer{
		Timeout:   10 * time.Second,
		KeepAlive: 30 * time.Second,
	}).DialContext,
	MaxIdleConns:        0, // no global cap; per-host below
	MaxIdleConnsPerHost: 64,
	IdleConnTimeout:     90 * time.Second,
}

// countingReader counts the bytes pulled through it, for wire accounting.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// ClientHandler exposes a *Client over HTTP.
type ClientHandler struct {
	client       *Client
	mux          *http.ServeMux
	sink         obs.Sink
	jsonOnly     bool
	noSpanReport bool
}

var _ http.Handler = (*ClientHandler)(nil)

// NewClientHandler wraps a client.
func NewClientHandler(c *Client) *ClientHandler {
	h := &ClientHandler{client: c, mux: http.NewServeMux(), sink: obs.Nop}
	h.mux.HandleFunc("GET /v1/info", h.handleInfo)
	h.mux.HandleFunc("POST /v1/round", h.handleRound)
	return h
}

// SetJSONOnly disables the binary codec: the daemon stops advertising it,
// rejects binary frames and always answers JSON — byte-for-byte the pre-codec
// wire behaviour. Used as an operational escape hatch (flclient -json-only)
// and by the cross-compatibility tests to stand in for an old daemon.
func (h *ClientHandler) SetJSONOnly(on bool) { h.jsonOnly = on }

// SetNoSpanReport opts the daemon out of distributed tracing: incoming trace
// contexts are dropped at ingress, so local spans carry no trace labels and
// round responses return no span summaries (flclient -no-span-report).
func (h *ClientHandler) SetNoSpanReport(on bool) { h.noSpanReport = on }

// SetTelemetry installs a live telemetry backend: error counters flow into
// its registry and the introspection endpoints (/metrics, /healthz,
// /v1/telemetry) are mounted next to the API. Also propagates the sink to the
// wrapped client.
func (h *ClientHandler) SetTelemetry(t *obs.Telemetry) {
	if t == nil {
		return
	}
	h.sink = t
	h.client.SetSink(t)
	t.Mount(h.mux)
}

// ServeHTTP dispatches to the API endpoints.
func (h *ClientHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

func (h *ClientHandler) handleInfo(w http.ResponseWriter, r *http.Request) {
	perJob, err := h.client.TMin(1)
	if err != nil {
		h.sink.Count(obs.MetricFLHTTPErrors, 1, obs.L("endpoint", "info"), obs.L("kind", "internal"))
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	info := InfoResponse{
		ClientID:    h.client.ID(),
		Device:      h.client.dev.Name(),
		TMinPerJob:  perJob,
		NumExamples: h.client.NumExamples(),
	}
	if !h.jsonOnly {
		info.Codecs = []string{CodecBinary, CodecJSON}
	}
	writeJSON(w, info)
}

func (h *ClientHandler) handleRound(w http.ResponseWriter, r *http.Request) {
	body := &countingReader{r: io.LimitReader(r.Body, 64<<20)}
	binaryReq := strings.HasPrefix(r.Header.Get("Content-Type"), ContentTypeBinary)
	codec := CodecJSON
	var req RoundRequest
	var err error
	if binaryReq {
		if h.jsonOnly {
			h.sink.Count(obs.MetricFLHTTPErrors, 1, obs.L("endpoint", "round"), obs.L("kind", "codec"))
			http.Error(w, "binary frames disabled on this daemon", http.StatusUnsupportedMediaType)
			return
		}
		codec = CodecBinary
		req, err = DecodeRoundRequest(body)
	} else {
		err = json.NewDecoder(body).Decode(&req)
	}
	if err != nil {
		h.sink.Count(obs.MetricFLHTTPErrors, 1, obs.L("endpoint", "round"), obs.L("kind", "decode"))
		http.Error(w, fmt.Sprintf("decode round request: %v", err), http.StatusBadRequest)
		return
	}
	h.sink.Count(obs.MetricFLWireRx, float64(body.n), obs.L("codec", codec))

	// Trace-context ingress: the X-Bofl-Trace header wins (it survives even
	// proxies that re-encode the body); the codec meta fields are the in-band
	// fallback. Either way the value is sanitized here — a hostile or
	// oversized wire value degrades to "untraced", never into the span labels
	// or the exposition.
	if h.noSpanReport {
		req.Trace = obs.TraceContext{}
	} else if hdr, ok := obs.ParseTraceContext(r.Header.Get(obs.TraceHeader)); ok {
		req.Trace = hdr
	} else {
		req.Trace = req.Trace.Sanitized()
	}

	p := &LocalParticipant{Client: h.client}
	resp, err := p.Round(req)
	if err != nil {
		h.sink.Count(obs.MetricFLHTTPErrors, 1, obs.L("endpoint", "round"), obs.L("kind", "round"))
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}

	// Answer in the codec the caller used (or explicitly accepts): a JSON
	// caller must get JSON back even from a binary-capable daemon.
	respBinary := !h.jsonOnly &&
		(binaryReq || strings.Contains(r.Header.Get("Accept"), ContentTypeBinary))
	buf := getBuf()
	defer putBuf(buf)
	respCodec := CodecJSON
	if respBinary {
		respCodec = CodecBinary
		err = EncodeRoundResponse(buf, resp)
		w.Header().Set("Content-Type", ContentTypeBinary)
	} else {
		err = json.NewEncoder(buf).Encode(resp)
		w.Header().Set("Content-Type", ContentTypeJSON)
	}
	if err != nil {
		h.sink.Count(obs.MetricFLHTTPErrors, 1, obs.L("endpoint", "round"), obs.L("kind", "encode"))
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if _, err := w.Write(buf.Bytes()); err != nil {
		return // headers already sent; nothing more we can do
	}
	h.sink.Count(obs.MetricFLWireTx, float64(buf.Len()), obs.L("codec", respCodec))
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", ContentTypeJSON)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already sent; nothing more we can do.
		return
	}
}

// HTTPParticipant drives a remote client daemon.
type HTTPParticipant struct {
	baseURL string
	id      string
	perJob  float64
	client  *http.Client
	sink    obs.Sink
	binary  bool

	// attemptTx/attemptRx record the serialized bytes the most recent Round
	// call moved, for per-attempt ledger attribution. The server calls one
	// participant sequentially within a round (retries are serial), so
	// last-write-wins is exact; atomics only guard cross-round races.
	attemptTx atomic.Int64
	attemptRx atomic.Int64
}

// lastWire reports the bytes moved by the most recent Round call,
// implementing the wireAccounter extension the round ledger reads.
func (p *HTTPParticipant) lastWire() (tx, rx int64) {
	return p.attemptTx.Load(), p.attemptRx.Load()
}

// SetSink installs a telemetry sink counting transport, status and decode
// failures against the remote daemon, plus wire bytes per codec.
func (p *HTTPParticipant) SetSink(s obs.Sink) { p.sink = obs.OrNop(s) }

// SetBinary overrides codec negotiation (true forces binary frames, false
// forces JSON). Normally the choice is made from the daemon's advertised
// codecs at dial time.
func (p *HTTPParticipant) SetBinary(on bool) { p.binary = on }

// SetTransport replaces the participant's HTTP round-tripper — the hook the
// chaos harness uses to wrap the shared keep-alive transport in a
// faultinject.Transport. The client's timeout is preserved.
func (p *HTTPParticipant) SetTransport(rt http.RoundTripper) {
	p.client = &http.Client{Timeout: p.client.Timeout, Transport: rt}
}

// Codec reports the negotiated round codec.
func (p *HTTPParticipant) Codec() string {
	if p.binary {
		return CodecBinary
	}
	return CodecJSON
}

// countErr increments the HTTP error counter for the round endpoint.
func (p *HTTPParticipant) countErr(kind string) {
	p.sink.Count(obs.MetricFLHTTPErrors, 1, obs.L("endpoint", "round"), obs.L("kind", kind))
}

var _ Participant = (*HTTPParticipant)(nil)

// DialParticipant contacts a client daemon, caches its identity and
// negotiates the round codec from the daemon's advertised list. All
// participants share one keep-alive transport, so per-round requests reuse
// established connections.
func DialParticipant(baseURL string, timeout time.Duration) (*HTTPParticipant, error) {
	return dialParticipant(context.Background(), baseURL, timeout)
}

// DialParticipantContext is DialParticipant honoring a caller context, so a
// dial against a dead or hung endpoint aborts on cancellation instead of
// waiting out the full client timeout. It returns the Participant interface
// to match the Registry's dial hook.
func DialParticipantContext(ctx context.Context, baseURL string, timeout time.Duration) (Participant, error) {
	return dialParticipant(ctx, baseURL, timeout)
}

func dialParticipant(ctx context.Context, baseURL string, timeout time.Duration) (*HTTPParticipant, error) {
	hc := &http.Client{Timeout: timeout, Transport: flTransport}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/info", nil)
	if err != nil {
		return nil, fmt.Errorf("fl: dial %s: %w", baseURL, err)
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("fl: dial %s: %w", baseURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fl: dial %s: status %s", baseURL, resp.Status)
	}
	var info InfoResponse
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, fmt.Errorf("fl: dial %s: %w", baseURL, err)
	}
	if info.ClientID == "" || info.TMinPerJob <= 0 {
		return nil, fmt.Errorf("fl: dial %s: malformed info %+v", baseURL, info)
	}
	return &HTTPParticipant{
		baseURL: baseURL,
		id:      info.ClientID,
		perJob:  info.TMinPerJob,
		client:  hc,
		sink:    obs.Nop,
		binary:  slices.Contains(info.Codecs, CodecBinary),
	}, nil
}

// ID returns the remote client's identifier.
func (p *HTTPParticipant) ID() string { return p.id }

// TMinFor scales the advertised per-job minimum latency.
func (p *HTTPParticipant) TMinFor(jobs int) (float64, error) {
	if jobs <= 0 {
		return 0, fmt.Errorf("fl: job count %d", jobs)
	}
	return p.perJob * float64(jobs), nil
}

// Round posts the round request to the daemon in the negotiated codec.
func (p *HTTPParticipant) Round(req RoundRequest) (RoundResponse, error) {
	p.attemptTx.Store(0)
	p.attemptRx.Store(0)
	buf := getBuf()
	defer putBuf(buf)
	codec, contentType := CodecJSON, ContentTypeJSON
	var err error
	if p.binary {
		codec, contentType = CodecBinary, ContentTypeBinary
		err = EncodeRoundRequest(buf, req)
	} else {
		err = json.NewEncoder(buf).Encode(req)
	}
	if err != nil {
		return RoundResponse{}, fmt.Errorf("fl: encode round: %w", err)
	}

	hreq, err := http.NewRequest(http.MethodPost, p.baseURL+"/v1/round", bytes.NewReader(buf.Bytes()))
	if err != nil {
		return RoundResponse{}, fmt.Errorf("fl: round on %s: %w", p.id, err)
	}
	hreq.Header.Set("Content-Type", contentType)
	hreq.Header.Set("Accept", contentType)
	if req.Trace.Valid() {
		hreq.Header.Set(obs.TraceHeader, req.Trace.String())
	}
	resp, err := p.client.Do(hreq)
	if err != nil {
		p.countErr("transport")
		return RoundResponse{}, fmt.Errorf("fl: round on %s: %w", p.id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		p.countErr("status")
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return RoundResponse{}, fmt.Errorf("fl: round on %s: %s: %s", p.id, resp.Status, bytes.TrimSpace(msg))
	}
	p.sink.Count(obs.MetricFLWireTx, float64(buf.Len()), obs.L("codec", codec))
	p.attemptTx.Store(int64(buf.Len()))

	body := &countingReader{r: io.LimitReader(resp.Body, 64<<20)}
	respCodec := CodecJSON
	var out RoundResponse
	if strings.HasPrefix(resp.Header.Get("Content-Type"), ContentTypeBinary) {
		respCodec = CodecBinary
		out, err = DecodeRoundResponse(body)
	} else {
		err = json.NewDecoder(body).Decode(&out)
	}
	if err != nil {
		p.countErr("decode")
		return RoundResponse{}, fmt.Errorf("fl: decode round response: %w", err)
	}
	p.sink.Count(obs.MetricFLWireRx, float64(body.n), obs.L("codec", respCodec))
	p.attemptRx.Store(body.n)
	return out, nil
}
