package fl

import (
	"fmt"
	"sync"
)

// The paper assumes servers hand out *training* deadlines, and notes
// (footnote 3) that a server which only specifies a *reporting* deadline —
// the time by which the server must have received the gradients — can be
// supported by a client-side network-bandwidth measurement module that
// subtracts the expected upload time. This file implements that extension.

// BandwidthEstimator tracks the client's uplink throughput with an
// exponentially weighted moving average of observed transfers and converts
// reporting deadlines into training deadlines. It is safe for concurrent use.
type BandwidthEstimator struct {
	mu sync.Mutex
	// alpha is the EWMA weight of a new sample (0 < alpha ≤ 1).
	alpha float64
	// bytesPerSecond is the current throughput estimate.
	bytesPerSecond float64
	// headroom divides the estimate to absorb throughput variance, so an
	// optimistic estimate does not translate into a missed report
	// (e.g. 1.25 budgets 25% extra upload time).
	headroom float64
	samples  int
}

// NewBandwidthEstimator creates an estimator seeded with an initial
// throughput guess in bytes per second (e.g. 5 Mbps LTE ≈ 625_000 B/s, the
// paper's §6.5 example).
func NewBandwidthEstimator(initialBytesPerSecond, alpha, headroom float64) (*BandwidthEstimator, error) {
	if initialBytesPerSecond <= 0 {
		return nil, fmt.Errorf("fl: initial bandwidth %v must be positive", initialBytesPerSecond)
	}
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("fl: EWMA alpha %v out of (0,1]", alpha)
	}
	if headroom < 1 {
		return nil, fmt.Errorf("fl: headroom %v must be ≥ 1", headroom)
	}
	return &BandwidthEstimator{
		alpha:          alpha,
		bytesPerSecond: initialBytesPerSecond,
		headroom:       headroom,
	}, nil
}

// ObserveTransfer folds one completed transfer (bytes over seconds) into the
// estimate.
func (b *BandwidthEstimator) ObserveTransfer(bytes int64, seconds float64) error {
	if bytes <= 0 || seconds <= 0 {
		return fmt.Errorf("fl: transfer observation (%d bytes, %v s) invalid", bytes, seconds)
	}
	sample := float64(bytes) / seconds
	b.mu.Lock()
	defer b.mu.Unlock()
	b.bytesPerSecond = b.alpha*sample + (1-b.alpha)*b.bytesPerSecond
	b.samples++
	return nil
}

// Estimate returns the current throughput estimate in bytes per second and
// the number of observed transfers behind it.
func (b *BandwidthEstimator) Estimate() (bytesPerSecond float64, samples int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.bytesPerSecond, b.samples
}

// UploadTime predicts the time to upload a payload, including headroom.
func (b *BandwidthEstimator) UploadTime(payloadBytes int64) (float64, error) {
	if payloadBytes <= 0 {
		return 0, fmt.Errorf("fl: payload %d bytes invalid", payloadBytes)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return float64(payloadBytes) / b.bytesPerSecond * b.headroom, nil
}

// TrainingDeadline converts a reporting deadline into the training deadline
// the BoFL controller consumes: the reporting deadline minus the predicted
// upload time of the model update. It errors when the upload alone would
// blow the reporting deadline (the client should then skip the round rather
// than waste energy on doomed training).
func (b *BandwidthEstimator) TrainingDeadline(reportingDeadline float64, payloadBytes int64) (float64, error) {
	if reportingDeadline <= 0 {
		return 0, fmt.Errorf("fl: reporting deadline %v invalid", reportingDeadline)
	}
	up, err := b.UploadTime(payloadBytes)
	if err != nil {
		return 0, err
	}
	train := reportingDeadline - up
	if train <= 0 {
		return 0, fmt.Errorf("fl: upload alone (%.1fs) exceeds the reporting deadline (%.1fs)", up, reportingDeadline)
	}
	return train, nil
}

// ModelPayloadBytes estimates the wire size of a parameter vector: 8 bytes
// per float64 plus a fixed framing overhead.
func ModelPayloadBytes(numParams int) int64 {
	const framing = 4096
	return int64(numParams)*8 + framing
}
