package fl

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"bofl/internal/core"
	"bofl/internal/obs"
)

func sampleRequest(params []float64) RoundRequest {
	return RoundRequest{
		Round: 7, Params: params, Jobs: 40, Deadline: 61.5,
		Trace: obs.MintTrace(11, 7),
	}
}

func sampleResponse(params []float64) RoundResponse {
	return RoundResponse{
		ClientID:    "client-3",
		Params:      params,
		NumExamples: 128,
		Report: core.RoundReport{
			Round:       7,
			Energy:      12.5,
			Duration:    3.25,
			DeadlineMet: true,
			Phase:       2,
			FrontSize:   5,
		},
		Spans: []obs.SpanSummary{
			{Name: obs.SpanClientRound, StartNs: 0, DurNs: 3_250_000_000},
			{Name: obs.SpanClientWindow, StartNs: 3_250_000_000, DurNs: 1_000},
		},
	}
}

func paramsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func TestCodecRoundTrip(t *testing.T) {
	cases := map[string][]float64{
		"empty":    nil,
		"single":   {1.25},
		"f64":      {1.0 / 3.0, math.Pi, -2.7e-300, 1e300},
		"f32exact": {0.5, -1.25, 3, 0, 65504},
		"specials": {math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1), 42},
	}
	for name, params := range cases {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			req := sampleRequest(params)
			if err := EncodeRoundRequest(&buf, req); err != nil {
				t.Fatal(err)
			}
			got, err := DecodeRoundRequest(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if got.Round != req.Round || got.Jobs != req.Jobs || got.Deadline != req.Deadline {
				t.Errorf("meta mismatch: %+v vs %+v", got, req)
			}
			if got.Trace != req.Trace {
				t.Errorf("trace context mismatch: %+v vs %+v", got.Trace, req.Trace)
			}
			if !paramsEqual(got.Params, req.Params) {
				t.Errorf("params mismatch: %v vs %v", got.Params, req.Params)
			}

			buf.Reset()
			resp := sampleResponse(params)
			if err := EncodeRoundResponse(&buf, resp); err != nil {
				t.Fatal(err)
			}
			gotR, err := DecodeRoundResponse(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if gotR.ClientID != resp.ClientID || gotR.NumExamples != resp.NumExamples ||
				gotR.Report.Round != resp.Report.Round || gotR.Report.Energy != resp.Report.Energy ||
				gotR.Report.DeadlineMet != resp.Report.DeadlineMet || gotR.Report.Phase != resp.Report.Phase {
				t.Errorf("meta mismatch: %+v vs %+v", gotR, resp)
			}
			if !paramsEqual(gotR.Params, resp.Params) {
				t.Errorf("params mismatch")
			}
			if len(gotR.Spans) != len(resp.Spans) {
				t.Fatalf("span summaries lost: %+v vs %+v", gotR.Spans, resp.Spans)
			}
			for i := range resp.Spans {
				if gotR.Spans[i] != resp.Spans[i] {
					t.Errorf("span %d mismatch: %+v vs %+v", i, gotR.Spans[i], resp.Spans[i])
				}
			}
		})
	}
}

// TestCodecF32Narrowing pins the flag choice: exactly-representable vectors
// take the 4-byte path, anything else (including NaN) the 8-byte path.
func TestCodecF32Narrowing(t *testing.T) {
	cases := []struct {
		name   string
		params []float64
		f32    bool
	}{
		{"exact", []float64{0.5, -1.25, float64(float32(0.1))}, true},
		{"inexact", []float64{0.1}, false},
		{"nan", []float64{math.NaN()}, false},
		{"empty", nil, false},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		if err := EncodeRoundRequest(&buf, sampleRequest(tc.params)); err != nil {
			t.Fatal(err)
		}
		flags := buf.Bytes()[4]
		if got := flags&flagF32 != 0; got != tc.f32 {
			t.Errorf("%s: f32 flag = %v, want %v", tc.name, got, tc.f32)
		}
	}
}

// TestCodecGzipThreshold drives payload sizes straddling gzipThreshold and
// checks the flag byte plus lossless decode on both sides of the boundary.
func TestCodecGzipThreshold(t *testing.T) {
	// Inexact values force the 8-byte element path, making the raw payload
	// size exactly 8·n.
	mk := func(n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = 0.1 + float64(i)
		}
		return out
	}
	cases := []struct {
		n    int
		gzip bool
	}{
		{gzipThreshold/8 - 1, false}, // one element below
		{gzipThreshold / 8, true},    // exactly at the threshold
		{gzipThreshold/8 + 1, true},  // one above
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		req := sampleRequest(mk(tc.n))
		if err := EncodeRoundRequest(&buf, req); err != nil {
			t.Fatal(err)
		}
		flags := buf.Bytes()[4]
		if got := flags&flagGzip != 0; got != tc.gzip {
			t.Errorf("n=%d: gzip flag = %v, want %v", tc.n, got, tc.gzip)
		}
		got, err := DecodeRoundRequest(&buf)
		if err != nil {
			t.Fatalf("n=%d: %v", tc.n, err)
		}
		if !paramsEqual(got.Params, req.Params) {
			t.Errorf("n=%d: params corrupted through gzip boundary", tc.n)
		}
	}
}

// TestCodecTruncatedFrames cuts a valid frame at every byte offset; each
// prefix must produce an error, never a panic or a silent short decode.
func TestCodecTruncatedFrames(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeRoundRequest(&buf, sampleRequest([]float64{1.5, 2.5, 0.1})); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	for cut := 0; cut < len(frame); cut++ {
		_, err := DecodeRoundRequest(bytes.NewReader(frame[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded without error", cut, len(frame))
		}
		if !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("truncation at %d/%d bytes: error %v does not wrap ErrCorruptFrame", cut, len(frame), err)
		}
	}
	// The full frame still decodes.
	if _, err := DecodeRoundRequest(bytes.NewReader(frame)); err != nil {
		t.Fatal(err)
	}
}

// wantCorruptFrame asserts a decode failed with the typed corruption error,
// so callers (retry classification, quarantine) can rely on errors.Is.
func wantCorruptFrame(t *testing.T, err error, what string) {
	t.Helper()
	if err == nil {
		t.Errorf("%s accepted", what)
		return
	}
	if !errors.Is(err, ErrCorruptFrame) {
		t.Errorf("%s: error %v does not wrap ErrCorruptFrame", what, err)
	}
}

func TestCodecMalformedFrames(t *testing.T) {
	valid := func() []byte {
		var buf bytes.Buffer
		if err := EncodeRoundRequest(&buf, sampleRequest([]float64{1, 2})); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	t.Run("bad magic", func(t *testing.T) {
		f := valid()
		f[0] = 'X'
		_, err := DecodeRoundRequest(bytes.NewReader(f))
		wantCorruptFrame(t, err, "bad magic")
	})
	t.Run("unknown flags", func(t *testing.T) {
		f := valid()
		f[4] |= 0x80
		_, err := DecodeRoundRequest(bytes.NewReader(f))
		wantCorruptFrame(t, err, "unknown flag bits")
	})
	t.Run("oversized meta claim", func(t *testing.T) {
		f := valid()
		binary.LittleEndian.PutUint32(f[5:9], maxMetaBytes+1)
		_, err := DecodeRoundRequest(bytes.NewReader(f))
		wantCorruptFrame(t, err, "oversized meta length")
	})
	t.Run("oversized param claim", func(t *testing.T) {
		f := valid()
		metaLen := binary.LittleEndian.Uint32(f[5:9])
		binary.LittleEndian.PutUint32(f[9+metaLen:], maxFrameParams+1)
		_, err := DecodeRoundRequest(bytes.NewReader(f))
		wantCorruptFrame(t, err, "oversized param count")
	})
	t.Run("payload length mismatch", func(t *testing.T) {
		f := valid()
		metaLen := binary.LittleEndian.Uint32(f[5:9])
		binary.LittleEndian.PutUint32(f[13+metaLen:], 1)
		_, err := DecodeRoundRequest(bytes.NewReader(f))
		wantCorruptFrame(t, err, "payload/count mismatch")
	})
	t.Run("non-json meta", func(t *testing.T) {
		var buf bytes.Buffer
		buf.Write(frameMagic[:])
		buf.WriteByte(0)
		var lb [4]byte
		binary.LittleEndian.PutUint32(lb[:], 3)
		buf.Write(lb[:])
		buf.WriteString("{{{")
		binary.LittleEndian.PutUint32(lb[:], 0)
		buf.Write(lb[:]) // count 0
		buf.Write(lb[:]) // payload 0
		_, err := DecodeRoundRequest(&buf)
		wantCorruptFrame(t, err, "garbage meta")
	})
}

// TestCodecTruncatedGzip cuts a gzip-compressed frame inside the deflate
// stream at every offset past the header: the inflater must surface a typed
// corruption error, never a panic, hang, or silent short read.
func TestCodecTruncatedGzip(t *testing.T) {
	// Inexact values force the 8-byte element path so 8·n crosses the gzip
	// threshold.
	params := make([]float64, gzipThreshold/8+64)
	for i := range params {
		params[i] = 0.1 + float64(i%7)
	}
	var buf bytes.Buffer
	if err := EncodeRoundRequest(&buf, sampleRequest(params)); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	if frame[4]&flagGzip == 0 {
		t.Fatalf("frame of %d params did not take the gzip path", len(params))
	}
	// Step through the compressed payload region in strides; every prefix
	// must fail typed.
	for cut := len(frame) / 2; cut < len(frame); cut += 97 {
		_, err := DecodeRoundRequest(bytes.NewReader(frame[:cut]))
		wantCorruptFrame(t, err, fmt.Sprintf("gzip truncation at %d/%d", cut, len(frame)))
	}
	// A bit flip inside the deflate stream must also surface typed: either
	// the checksum or the payload-length check catches it.
	flipped := bytes.Clone(frame)
	flipped[len(flipped)/2] ^= 0x10
	if _, err := DecodeRoundRequest(bytes.NewReader(flipped)); err != nil {
		wantCorruptFrame(t, err, "gzip bit flip")
	}
}

// TestCodecWireSavings pins the acceptance bar: on a CNN-sized vector of
// float32-valued weights (the realistic case — models train in single
// precision), the frame must be at least 4× smaller than the JSON encoding.
func TestCodecWireSavings(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	params := make([]float64, 100_000)
	for i := range params {
		params[i] = float64(float32(rng.NormFloat64() * 0.05))
	}
	req := sampleRequest(params)

	var bin bytes.Buffer
	if err := EncodeRoundRequest(&bin, req); err != nil {
		t.Fatal(err)
	}
	jsonBytes := encodeJSONLen(t, req)
	ratio := float64(jsonBytes) / float64(bin.Len())
	if ratio < 4 {
		t.Errorf("binary frame only %.2fx smaller than JSON (%d vs %d bytes), want ≥4x",
			ratio, bin.Len(), jsonBytes)
	}
	got, err := DecodeRoundRequest(&bin)
	if err != nil {
		t.Fatal(err)
	}
	if !paramsEqual(got.Params, params) {
		t.Error("narrowed payload not lossless")
	}
}

func encodeJSONLen(t *testing.T, v any) int {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Len()
}

// FuzzCodec feeds arbitrary bytes to the frame decoder: it must never panic,
// and whenever it does decode, a re-encode/re-decode cycle must reproduce the
// decoded value exactly (the codec is its own inverse on its image).
func FuzzCodec(f *testing.F) {
	seedVectors := [][]float64{
		nil,
		{1.5},
		{0.1, 0.2, 0.3},
		{math.NaN(), math.Inf(1)},
		make([]float64, gzipThreshold/8+4), // gzip path
	}
	for _, params := range seedVectors {
		var buf bytes.Buffer
		if err := EncodeRoundRequest(&buf, sampleRequest(params)); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("BFL1"))
	f.Add([]byte{})
	// Damaged-wire seeds: truncations (including mid-gzip) and single bit
	// flips of otherwise valid frames, steering the fuzzer toward the
	// corruption-detection paths the chaos harness depends on.
	{
		big := make([]float64, gzipThreshold/8+16)
		for i := range big {
			big[i] = 0.1 + float64(i%5) // inexact → 8-byte path → gzip frame
		}
		var buf bytes.Buffer
		if err := EncodeRoundRequest(&buf, sampleRequest(big)); err != nil {
			f.Fatal(err)
		}
		frame := buf.Bytes()
		f.Add(frame[:len(frame)/2]) // cut inside the deflate stream
		f.Add(frame[:9])            // cut inside the meta section
		f.Add(frame[:len(frame)-1]) // one byte short
		for _, off := range []int{0, 4, 9, len(frame) / 2, len(frame) - 1} {
			flipped := bytes.Clone(frame)
			flipped[off] ^= 0x01
			f.Add(flipped)
		}
	}
	// Aux-section seeds: SCAFFOLD control-variate frames (plain, f32, gzip)
	// plus truncations and bit flips landing inside the aux section, steering
	// the fuzzer at the second vector section's structural checks.
	{
		bigAux := make([]float64, gzipThreshold/8+16)
		for i := range bigAux {
			bigAux[i] = 0.1 + float64(i%7)
		}
		for _, aux := range [][]float64{{0.25, -0.5}, {0.5, 1.25, -3}, bigAux} {
			var buf bytes.Buffer
			if err := EncodeRoundRequest(&buf, auxRequest([]float64{1.5, 0.1}, aux)); err != nil {
				f.Fatal(err)
			}
			f.Add(buf.Bytes())
		}
		var buf bytes.Buffer
		if err := EncodeRoundRequest(&buf, auxRequest([]float64{1, 2}, []float64{0.1, -0.2, 0.3})); err != nil {
			f.Fatal(err)
		}
		frame := buf.Bytes()
		off := auxSectionOffset(frame)
		f.Add(frame[:off+1])          // cut after the aux flags byte
		f.Add(frame[:off+5])          // cut inside the aux count
		f.Add(frame[:len(frame)-1])   // aux payload one byte short
		for _, at := range []int{4, off, off + 1, off + 9, len(frame) - 1} {
			flipped := bytes.Clone(frame)
			flipped[at] ^= 0x01
			f.Add(flipped)
		}
	}
	// Hostile trace-context seeds: the codec is deliberately faithful to
	// whatever trace strings were framed (sanitization is the HTTP handler's
	// job), so an oversized or injection-laden trace must still round-trip
	// byte-exactly without panicking or corrupting the frame.
	for _, hostile := range []obs.TraceContext{
		{TraceID: strings.Repeat("a", 4096), SpanID: strings.Repeat("f", 4096)},
		{TraceID: "\"}\n# HELP evil 1\nBFL1\x00\x01", SpanID: "-"},
	} {
		req := sampleRequest([]float64{1.5})
		req.Trace = hostile
		var buf bytes.Buffer
		if err := EncodeRoundRequest(&buf, req); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRoundRequest(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := EncodeRoundRequest(&buf, req); err != nil {
			t.Fatalf("re-encode of decoded frame failed: %v", err)
		}
		again, err := DecodeRoundRequest(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Round != req.Round || again.Jobs != req.Jobs || again.Deadline != req.Deadline {
			t.Fatalf("meta drift: %+v vs %+v", again, req)
		}
		if again.Trace != req.Trace {
			t.Fatalf("trace drift: %+v vs %+v", again.Trace, req.Trace)
		}
		if !paramsEqual(again.Params, req.Params) {
			t.Fatalf("param drift after round trip")
		}
		if again.Alg != req.Alg || again.Prox != req.Prox {
			t.Fatalf("alg meta drift: %q/%v vs %q/%v", again.Alg, again.Prox, req.Alg, req.Prox)
		}
		if !paramsEqual(again.Aux, req.Aux) {
			t.Fatalf("aux drift after round trip")
		}
	})
}

// auxRequest is sampleRequest carrying the SCAFFOLD protocol fields.
func auxRequest(params, aux []float64) RoundRequest {
	req := sampleRequest(params)
	req.Alg = AlgScaffold
	req.Prox = 0.25
	req.Aux = aux
	return req
}

// TestCodecAuxRoundTrip drives the control-variate payload section through
// every encoder path — f64, f32-narrowed, gzip-compressed, specials — and
// checks the aux vector and the new meta fields survive bit for bit.
func TestCodecAuxRoundTrip(t *testing.T) {
	big := make([]float64, gzipThreshold/8+32)
	for i := range big {
		big[i] = 0.1 + float64(i%9)
	}
	cases := map[string][]float64{
		"f64":      {1.0 / 3.0, -math.Pi, 2.5e-310},
		"f32exact": {0.5, -1.25, 3, 0},
		"specials": {math.NaN(), math.Inf(-1), math.Copysign(0, -1)},
		"gzip":     big,
	}
	for name, aux := range cases {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			req := auxRequest([]float64{1.5, 0.1}, aux)
			if err := EncodeRoundRequest(&buf, req); err != nil {
				t.Fatal(err)
			}
			if buf.Bytes()[4]&flagAux == 0 {
				t.Fatal("aux-carrying frame did not set flagAux")
			}
			got, err := DecodeRoundRequest(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if got.Alg != req.Alg || got.Prox != req.Prox {
				t.Errorf("alg meta mismatch: %q/%v vs %q/%v", got.Alg, got.Prox, req.Alg, req.Prox)
			}
			if !paramsEqual(got.Params, req.Params) || !paramsEqual(got.Aux, req.Aux) {
				t.Error("vector sections corrupted")
			}

			buf.Reset()
			resp := sampleResponse([]float64{2.5})
			resp.Steps = 13
			resp.Aux = aux
			if err := EncodeRoundResponse(&buf, resp); err != nil {
				t.Fatal(err)
			}
			gotR, err := DecodeRoundResponse(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if gotR.Steps != resp.Steps {
				t.Errorf("steps = %d, want %d", gotR.Steps, resp.Steps)
			}
			if !paramsEqual(gotR.Aux, resp.Aux) {
				t.Error("response aux corrupted")
			}
		})
	}
}

// TestCodecAuxlessFrameUnchanged pins backward compatibility: a frame with no
// aux vector must not set flagAux and must end exactly where the pre-aux
// format ended (no trailing section).
func TestCodecAuxlessFrameUnchanged(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeRoundRequest(&buf, sampleRequest([]float64{1.5, 0.1})); err != nil {
		t.Fatal(err)
	}
	f := buf.Bytes()
	if f[4]&flagAux != 0 {
		t.Fatal("aux-less frame set flagAux")
	}
	metaLen := binary.LittleEndian.Uint32(f[5:9])
	payloadLen := binary.LittleEndian.Uint32(f[13+metaLen:])
	if want := int(17 + metaLen + payloadLen); len(f) != want {
		t.Fatalf("aux-less frame is %d bytes, want %d", len(f), want)
	}
}

// auxSectionOffset locates the aux section flag byte of an encoded frame.
func auxSectionOffset(f []byte) int {
	metaLen := binary.LittleEndian.Uint32(f[5:9])
	payloadLen := binary.LittleEndian.Uint32(f[13+metaLen:])
	return int(17 + metaLen + payloadLen)
}

// TestCodecAuxMalformed damages the aux section specifically — truncation at
// every offset, unknown section flags, count/length lies — and requires the
// typed corruption error every time.
func TestCodecAuxMalformed(t *testing.T) {
	valid := func() []byte {
		var buf bytes.Buffer
		if err := EncodeRoundRequest(&buf, auxRequest([]float64{1, 2}, []float64{0.1, -0.2, 0.3})); err != nil {
			t.Fatal(err)
		}
		return bytes.Clone(buf.Bytes())
	}
	full := valid()
	off := auxSectionOffset(full)

	t.Run("truncated", func(t *testing.T) {
		for cut := off; cut < len(full); cut++ {
			_, err := DecodeRoundRequest(bytes.NewReader(full[:cut]))
			wantCorruptFrame(t, err, fmt.Sprintf("aux truncation at %d/%d", cut, len(full)))
		}
	})
	t.Run("unknown section flags", func(t *testing.T) {
		f := valid()
		f[auxSectionOffset(f)] |= flagAux // aux flags allow only gzip|f32
		_, err := DecodeRoundRequest(bytes.NewReader(f))
		wantCorruptFrame(t, err, "reserved aux section flag")
	})
	t.Run("oversized count claim", func(t *testing.T) {
		f := valid()
		binary.LittleEndian.PutUint32(f[auxSectionOffset(f)+1:], maxFrameParams+1)
		_, err := DecodeRoundRequest(bytes.NewReader(f))
		wantCorruptFrame(t, err, "oversized aux count")
	})
	t.Run("length mismatch", func(t *testing.T) {
		f := valid()
		binary.LittleEndian.PutUint32(f[auxSectionOffset(f)+5:], 7)
		_, err := DecodeRoundRequest(bytes.NewReader(f))
		wantCorruptFrame(t, err, "aux payload length lie")
	})
	t.Run("payload bit flip", func(t *testing.T) {
		// A flipped payload bit is undetectable without a checksum (the values
		// are arbitrary floats) but must never panic, and structural bits
		// (count, flags) are covered above. Flip and require decode to either
		// fail typed or produce a same-shape vector.
		f := valid()
		f[auxSectionOffset(f)+9] ^= 0x40
		req, err := DecodeRoundRequest(bytes.NewReader(f))
		if err != nil {
			wantCorruptFrame(t, err, "aux payload bit flip")
		} else if len(req.Aux) != 3 {
			t.Fatalf("bit flip changed aux shape: %d values", len(req.Aux))
		}
	})
}

// TestCodecAuxJSONFallback: the JSON transport path must round-trip the new
// protocol fields too — JSON-only peers still speak SCAFFOLD.
func TestCodecAuxJSONFallback(t *testing.T) {
	req := auxRequest([]float64{1.5}, []float64{0.25, -0.5})
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var gotReq RoundRequest
	if err := json.Unmarshal(b, &gotReq); err != nil {
		t.Fatal(err)
	}
	if gotReq.Alg != req.Alg || gotReq.Prox != req.Prox || !paramsEqual(gotReq.Aux, req.Aux) {
		t.Errorf("request JSON roundtrip: %+v vs %+v", gotReq, req)
	}

	resp := sampleResponse([]float64{1})
	resp.Steps = 9
	resp.Aux = []float64{0.125}
	b, err = json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	var gotResp RoundResponse
	if err := json.Unmarshal(b, &gotResp); err != nil {
		t.Fatal(err)
	}
	if gotResp.Steps != resp.Steps || !paramsEqual(gotResp.Aux, resp.Aux) {
		t.Errorf("response JSON roundtrip: %+v vs %+v", gotResp, resp)
	}
}
