package fl

import (
	"fmt"
	"testing"

	"bofl/internal/faultinject"
)

func mkStubPool(n int) []Participant {
	pool := make([]Participant, n)
	for i := range pool {
		pool[i] = &stubParticipant{id: fmt.Sprintf("c%02d", i)}
	}
	return pool
}

// TestRandomSelectorDeterministicPerSeed pins selection reproducibility: two
// selectors with the same seed pick identical sequences round after round —
// the property chaos replays rely on — while a different seed diverges.
func TestRandomSelectorDeterministicPerSeed(t *testing.T) {
	pool := mkStubPool(20)
	a, b := NewRandomSelector(13), NewRandomSelector(13)
	other := NewRandomSelector(14)
	diverged := false
	for round := 1; round <= 50; round++ {
		sa, sb := a.Select(round, pool, 7), b.Select(round, pool, 7)
		so := other.Select(round, pool, 7)
		if len(sa) != 7 {
			t.Fatalf("round %d: selected %d, want 7", round, len(sa))
		}
		for i := range sa {
			if sa[i].ID() != sb[i].ID() {
				t.Fatalf("round %d: same seed diverged at slot %d: %s vs %s",
					round, i, sa[i].ID(), sb[i].ID())
			}
			if i < len(so) && sa[i].ID() != so[i].ID() {
				diverged = true
			}
		}
	}
	if !diverged {
		t.Error("seeds 13 and 14 produced identical selection streams")
	}
}

// TestRandomSelectorSamplesWithoutReplacement checks every selection is
// duplicate-free and clamped to the pool size, across shrinking pools.
func TestRandomSelectorSamplesWithoutReplacement(t *testing.T) {
	s := NewRandomSelector(3)
	for n := 12; n >= 1; n-- {
		pool := mkStubPool(n)
		for _, k := range []int{1, n / 2, n, n + 5} {
			if k < 1 {
				k = 1
			}
			sel := s.Select(1, pool, k)
			want := k
			if want > n {
				want = n
			}
			if len(sel) != want {
				t.Fatalf("pool %d k %d: selected %d, want %d", n, k, len(sel), want)
			}
			seen := map[string]bool{}
			for _, p := range sel {
				if seen[p.ID()] {
					t.Fatalf("pool %d k %d: %s selected twice", n, k, p.ID())
				}
				seen[p.ID()] = true
			}
		}
	}
}

// TestServerNeverSelectsQuarantined is the property test for quarantine under
// a shrinking healthy pool: one client is corrupted (and quarantined) per
// round, and no quarantined client must ever appear in a later round's
// responses or dropped list — across both selector implementations.
func TestServerNeverSelectsQuarantined(t *testing.T) {
	for name, mk := range map[string]func() Selector{
		"random": func() Selector { return NewRandomSelector(5) },
		"all":    func() Selector { return AllSelector{} },
	} {
		t.Run(name, func(t *testing.T) {
			const n = 10
			// Round r corrupts client c(r-1)'s first attempt, quarantining
			// one more client each round.
			script := faultinject.Scripted{}
			for r := 1; r < n; r++ {
				script[faultinject.Point{
					Layer:  faultinject.LayerParticipant,
					Client: fmt.Sprintf("c%02d", r-1),
					Round:  r,
				}] = faultinject.Decision{Corrupt: true}
			}
			srv, err := NewServer(ServerConfig{
				InitialParams:        []float64{0, 0, 0},
				Jobs:                 5,
				DeadlineRatio:        2,
				Selector:             mk(),
				ParticipantsPerRound: n, // ask for everyone still eligible
				TolerateDropouts:     true,
				FaultPolicy:          script,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range mkStubPool(n) {
				srv.Register(p)
			}

			quarantined := map[string]bool{}
			for r := 1; r < n; r++ {
				res, err := srv.RunRound()
				if err != nil {
					t.Fatalf("round %d: %v", r, err)
				}
				for _, id := range append(res.Dropped, responseIDs(res)...) {
					if quarantined[id] {
						t.Fatalf("round %d: previously quarantined %s was selected", r, id)
					}
				}
				for _, id := range res.Quarantined {
					quarantined[id] = true
				}
			}
			if got := len(srv.QuarantinedIDs()); got != n-1 {
				t.Errorf("quarantined %d clients, want %d", got, n-1)
			}
		})
	}
}

func responseIDs(res RoundResult) []string {
	out := make([]string, 0, len(res.Responses))
	for _, r := range res.Responses {
		out = append(out, r.ClientID)
	}
	return out
}

// BenchmarkSelector100k is the satellite perf bar: selecting 1k of a
// 100k-client pool must be O(k) per round — persistent index scratch, no
// full-pool permutation, no per-round reallocation beyond the result slice.
func BenchmarkSelector100k(b *testing.B) {
	const pool, k = 100_000, 1_000
	participants := make([]Participant, pool)
	for i := range participants {
		participants[i] = &stubParticipant{id: fmt.Sprintf("c%06d", i)}
	}
	b.Run("random", func(b *testing.B) {
		sel := NewRandomSelector(7)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := sel.Select(i+1, participants, k); len(got) != k {
				b.Fatalf("selected %d", len(got))
			}
		}
	})
	b.Run("random-full-pool", func(b *testing.B) {
		// Selecting the entire pool: the scratch still amortizes, the cost is
		// the unavoidable O(n) result copy.
		sel := NewRandomSelector(7)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := sel.Select(i+1, participants, pool); len(got) != pool {
				b.Fatalf("selected %d", len(got))
			}
		}
	})
}
