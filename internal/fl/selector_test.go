package fl

import (
	"fmt"
	"testing"

	"bofl/internal/faultinject"
)

func mkStubPool(n int) []Participant {
	pool := make([]Participant, n)
	for i := range pool {
		pool[i] = &stubParticipant{id: fmt.Sprintf("c%02d", i)}
	}
	return pool
}

// TestRandomSelectorDeterministicPerSeed pins selection reproducibility: two
// selectors with the same seed pick identical sequences round after round —
// the property chaos replays rely on — while a different seed diverges.
func TestRandomSelectorDeterministicPerSeed(t *testing.T) {
	pool := mkStubPool(20)
	a, b := NewRandomSelector(13), NewRandomSelector(13)
	other := NewRandomSelector(14)
	diverged := false
	for round := 1; round <= 50; round++ {
		sa, sb := a.Select(round, pool, 7), b.Select(round, pool, 7)
		so := other.Select(round, pool, 7)
		if len(sa) != 7 {
			t.Fatalf("round %d: selected %d, want 7", round, len(sa))
		}
		for i := range sa {
			if sa[i].ID() != sb[i].ID() {
				t.Fatalf("round %d: same seed diverged at slot %d: %s vs %s",
					round, i, sa[i].ID(), sb[i].ID())
			}
			if i < len(so) && sa[i].ID() != so[i].ID() {
				diverged = true
			}
		}
	}
	if !diverged {
		t.Error("seeds 13 and 14 produced identical selection streams")
	}
}

// TestRandomSelectorSamplesWithoutReplacement checks every selection is
// duplicate-free and clamped to the pool size, across shrinking pools.
func TestRandomSelectorSamplesWithoutReplacement(t *testing.T) {
	s := NewRandomSelector(3)
	for n := 12; n >= 1; n-- {
		pool := mkStubPool(n)
		for _, k := range []int{1, n / 2, n, n + 5} {
			if k < 1 {
				k = 1
			}
			sel := s.Select(1, pool, k)
			want := k
			if want > n {
				want = n
			}
			if len(sel) != want {
				t.Fatalf("pool %d k %d: selected %d, want %d", n, k, len(sel), want)
			}
			seen := map[string]bool{}
			for _, p := range sel {
				if seen[p.ID()] {
					t.Fatalf("pool %d k %d: %s selected twice", n, k, p.ID())
				}
				seen[p.ID()] = true
			}
		}
	}
}

// TestServerNeverSelectsQuarantined is the property test for quarantine under
// a shrinking healthy pool: one client is corrupted (and quarantined) per
// round, and no quarantined client must ever appear in a later round's
// responses or dropped list — across both selector implementations.
func TestServerNeverSelectsQuarantined(t *testing.T) {
	for name, mk := range map[string]func() Selector{
		"random": func() Selector { return NewRandomSelector(5) },
		"all":    func() Selector { return AllSelector{} },
	} {
		t.Run(name, func(t *testing.T) {
			const n = 10
			// Round r corrupts client c(r-1)'s first attempt, quarantining
			// one more client each round.
			script := faultinject.Scripted{}
			for r := 1; r < n; r++ {
				script[faultinject.Point{
					Layer:  faultinject.LayerParticipant,
					Client: fmt.Sprintf("c%02d", r-1),
					Round:  r,
				}] = faultinject.Decision{Corrupt: true}
			}
			srv, err := NewServer(ServerConfig{
				InitialParams:        []float64{0, 0, 0},
				Jobs:                 5,
				DeadlineRatio:        2,
				Selector:             mk(),
				ParticipantsPerRound: n, // ask for everyone still eligible
				TolerateDropouts:     true,
				FaultPolicy:          script,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range mkStubPool(n) {
				srv.Register(p)
			}

			quarantined := map[string]bool{}
			for r := 1; r < n; r++ {
				res, err := srv.RunRound()
				if err != nil {
					t.Fatalf("round %d: %v", r, err)
				}
				for _, id := range append(res.Dropped, responseIDs(res)...) {
					if quarantined[id] {
						t.Fatalf("round %d: previously quarantined %s was selected", r, id)
					}
				}
				for _, id := range res.Quarantined {
					quarantined[id] = true
				}
			}
			if got := len(srv.QuarantinedIDs()); got != n-1 {
				t.Errorf("quarantined %d clients, want %d", got, n-1)
			}
		})
	}
}

func responseIDs(res RoundResult) []string {
	out := make([]string, 0, len(res.Responses))
	for _, r := range res.Responses {
		out = append(out, r.ClientID)
	}
	return out
}

// BenchmarkSelector100k is the satellite perf bar: selecting 1k of a
// 100k-client pool must be O(k) per round — persistent index scratch, no
// full-pool permutation, no per-round reallocation beyond the result slice.
func BenchmarkSelector100k(b *testing.B) {
	const pool, k = 100_000, 1_000
	participants := make([]Participant, pool)
	for i := range participants {
		participants[i] = &stubParticipant{id: fmt.Sprintf("c%06d", i)}
	}
	b.Run("random", func(b *testing.B) {
		sel := NewRandomSelector(7)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := sel.Select(i+1, participants, k); len(got) != k {
				b.Fatalf("selected %d", len(got))
			}
		}
	})
	b.Run("random-full-pool", func(b *testing.B) {
		// Selecting the entire pool: the scratch still amortizes, the cost is
		// the unavoidable O(n) result copy.
		sel := NewRandomSelector(7)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := sel.Select(i+1, participants, pool); len(got) != pool {
				b.Fatalf("selected %d", len(got))
			}
		}
	})
}

// biasWeights is a test weigh function backed by a mutable map.
func biasWeights(w map[string]float64) func(string) float64 {
	return func(id string) float64 { return w[id] }
}

// TestBiasedSelectorProportionalAndDeterministic checks the weighted draws
// track the weight ratios and are reproducible per seed.
func TestBiasedSelectorProportionalAndDeterministic(t *testing.T) {
	pool := mkStubPool(10)
	w := map[string]float64{}
	for _, p := range pool {
		w[p.ID()] = 1
	}
	w["c00"] = 8 // 8/17 of the single-draw mass
	a := NewBiasedSelector(11, biasWeights(w))
	b := NewBiasedSelector(11, biasWeights(w))
	hits := 0
	const rounds = 3000
	for r := 1; r <= rounds; r++ {
		sa, sb := a.Select(r, pool, 1), b.Select(r, pool, 1)
		if len(sa) != 1 || len(sb) != 1 || sa[0].ID() != sb[0].ID() {
			t.Fatalf("round %d: same-seed selectors diverged", r)
		}
		if sa[0].ID() == "c00" {
			hits++
		}
	}
	got := float64(hits) / rounds
	want := 8.0 / 17.0
	if got < want-0.05 || got > want+0.05 {
		t.Fatalf("heavy client frequency %.3f, want ≈ %.3f", got, want)
	}
}

// TestBiasedSelectorSamplesWithoutReplacement: every draw is duplicate-free
// and clamped to the pool.
func TestBiasedSelectorSamplesWithoutReplacement(t *testing.T) {
	pool := mkStubPool(7)
	w := map[string]float64{}
	for i, p := range pool {
		w[p.ID()] = float64(i) // includes a zero weight
	}
	s := NewBiasedSelector(3, biasWeights(w))
	for _, k := range []int{1, 3, 7, 12} {
		sel := s.Select(1, pool, k)
		want := k
		if want > len(pool) {
			want = len(pool)
		}
		if len(sel) != want {
			t.Fatalf("k %d: selected %d, want %d", k, len(sel), want)
		}
		seen := map[string]bool{}
		for _, p := range sel {
			if seen[p.ID()] {
				t.Fatalf("k %d: %s selected twice", k, p.ID())
			}
			seen[p.ID()] = true
		}
	}
}

// TestBiasedSelectorZeroWeightsUniformFallback: a weigh function that zeroes
// everyone must not starve selection.
func TestBiasedSelectorZeroWeightsUniformFallback(t *testing.T) {
	pool := mkStubPool(5)
	s := NewBiasedSelector(7, func(string) float64 { return 0 })
	covered := map[string]bool{}
	for r := 1; r <= 200; r++ {
		for _, p := range s.Select(r, pool, 2) {
			covered[p.ID()] = true
		}
	}
	if len(covered) != len(pool) {
		t.Fatalf("uniform fallback covered %d of %d clients", len(covered), len(pool))
	}
}

// TestBiasedSelectorRenormalizesOnPoolChange is the regression test for the
// shrinking-pool bug: the weight cache must key on the pool's contents, not
// its length. A same-length pool with one member swapped (exactly what the
// server's quarantine filter plus a new registration produces) must be
// re-weighed — under the old length-keyed caching the swapped-in client
// inherited the removed client's weight and power-biased sampling ran
// denormalized.
func TestBiasedSelectorRenormalizesOnPoolChange(t *testing.T) {
	pool := mkStubPool(6)
	w := map[string]float64{}
	for _, p := range pool {
		w[p.ID()] = 1
	}
	hot := &stubParticipant{id: "hot"}
	w["hot"] = 1000

	s := NewBiasedSelector(5, biasWeights(w))
	// Warm the cache on the hot-less pool.
	for r := 1; r <= 10; r++ {
		s.Select(r, pool, 2)
	}
	// Same length, different contents: drop one cold client, add the hot one.
	swapped := make([]Participant, 0, len(pool))
	swapped = append(swapped, pool[:len(pool)-1]...)
	swapped = append(swapped, hot)
	hits := 0
	const rounds = 200
	for r := 1; r <= rounds; r++ {
		for _, p := range s.Select(r, swapped, 1) {
			if p.ID() == "hot" {
				hits++
			}
		}
	}
	// hot holds 1000/1005 of the mass; anything below ~90% means the stale
	// weights survived the swap.
	if float64(hits)/rounds < 0.9 {
		t.Fatalf("hot client drawn %d/%d times after same-length pool swap", hits, rounds)
	}

	// Shrinking pool (quarantine removal): the removed client must never be
	// drawn again and the survivors' relative weights must hold.
	shrunk := pool[:len(pool)-2]
	w[shrunk[0].ID()] = 50
	s2 := NewBiasedSelector(9, biasWeights(w))
	s2.Select(1, pool, 3) // warm on the full pool
	heavy := 0
	for r := 2; r <= rounds+1; r++ {
		for _, p := range s2.Select(r, shrunk, 1) {
			if p.ID() == pool[len(pool)-1].ID() || p.ID() == pool[len(pool)-2].ID() {
				t.Fatalf("round %d: removed client %s drawn", r, p.ID())
			}
			if p.ID() == shrunk[0].ID() {
				heavy++
			}
		}
	}
	if got, want := float64(heavy)/rounds, 50.0/53.0; got < want-0.1 {
		t.Fatalf("post-shrink heavy frequency %.3f, want ≈ %.3f", got, want)
	}
}

// TestServerQuarantineWithBiasedSelector wires the biased selector through
// the server's quarantine filter: after a client is quarantined the selector
// sees a shrunk pool and must keep sampling the survivors, never the
// quarantined id.
func TestServerQuarantineWithBiasedSelector(t *testing.T) {
	const n = 8
	w := map[string]float64{}
	for i := 0; i < n; i++ {
		w[fmt.Sprintf("c%02d", i)] = float64(i + 1)
	}
	script := faultinject.Scripted{
		faultinject.Point{Layer: faultinject.LayerParticipant, Client: "c03", Round: 1}: {Corrupt: true},
	}
	srv, err := NewServer(ServerConfig{
		InitialParams:        []float64{0, 0, 0},
		Jobs:                 5,
		DeadlineRatio:        2,
		Selector:             NewBiasedSelector(21, biasWeights(w)),
		ParticipantsPerRound: n,
		TolerateDropouts:     true,
		FaultPolicy:          script,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range mkStubPool(n) {
		srv.Register(p)
	}
	for r := 1; r <= 5; r++ {
		res, err := srv.RunRound()
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		if r > 1 {
			for _, id := range append(res.Dropped, responseIDs(res)...) {
				if id == "c03" {
					t.Fatalf("round %d: quarantined c03 was selected", r)
				}
			}
			if len(res.Responses) != n-1 {
				t.Fatalf("round %d: %d survivors, want %d", r, len(res.Responses), n-1)
			}
		}
	}
}
