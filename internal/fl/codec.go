package fl

// Wire codec for the FL data plane. The HTTP transport historically moved
// every model as a JSON array of float64s — ~19 bytes per parameter once a
// value needs its full shortest-round-trip decimal form. At fleet scale the
// round traffic is dominated by those arrays, so this file defines a
// versioned binary frame for RoundRequest/RoundResponse:
//
//	offset  size  field
//	0       4     magic "BFL1" (version is part of the magic)
//	4       1     flags: bit0 payload gzipped, bit1 float32-narrowed,
//	              bit3 aux vector section present
//	5       4     uint32 LE: metadata length M
//	9       M     metadata (JSON: everything except Params)
//	9+M     4     uint32 LE: parameter count N
//	13+M    4     uint32 LE: payload length P in bytes
//	17+M    P     parameter payload, little-endian IEEE-754
//
// With flags bit3 set, a second self-describing vector section follows the
// parameter payload — the algorithm auxiliary vector (SCAFFOLD control
// variates): 1 byte of section flags (gzip/f32 only), then the same
// count/length/payload triplet. Aux-less frames are byte-identical to the
// pre-aux format.
//
// Two payload transforms, both lossless and both negotiated per frame by the
// encoder alone (the flags tell the decoder everything):
//
//   - float32 narrowing: when every parameter is exactly representable as a
//     float32 — the common case for models trained in single precision and
//     shipped through a float64 API — values are stored as 4-byte floats.
//     Widening on decode reproduces the input bit-for-bit.
//   - gzip: payloads at or above gzipThreshold are compressed. Model deltas
//     with structure (zero runs, repeated exponents) shrink further; fully
//     random mantissas cost a few header bytes and pass through.
//
// Frames are self-describing, so a binary-capable peer can decode any frame
// a binary-capable encoder produces. Interop with JSON-only peers is handled
// one level up (http.go) via Content-Type negotiation; the codec advertised
// in InfoResponse.Codecs is CodecBinary.

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"bofl/internal/core"
	"bofl/internal/obs"
)

// Codec and content-type identifiers used by the negotiation layer.
const (
	// CodecBinary names the binary frame codec in InfoResponse.Codecs.
	CodecBinary = "bofl-frame-v1"
	// CodecJSON names the JSON fallback codec.
	CodecJSON = "json"
	// ContentTypeBinary is the Content-Type of a binary frame body.
	ContentTypeBinary = "application/x-bofl-frame"
	// ContentTypeJSON is the Content-Type of the JSON fallback.
	ContentTypeJSON = "application/json"
)

var frameMagic = [4]byte{'B', 'F', 'L', '1'}

// ErrCorruptFrame tags every structural decode failure — truncation, bad
// magic, unknown flags, length-field lies, gzip damage, garbled metadata. The
// serving plane's quarantine path matches it with errors.Is to tell a client
// shipping damaged frames apart from a client that merely timed out, so the
// decoder must never surface a raw io or gzip error for hostile input.
var ErrCorruptFrame = errors.New("fl: corrupt frame")

const (
	flagGzip byte = 1 << 0 // payload section is gzip-compressed
	flagF32  byte = 1 << 1 // parameters stored as float32 (exact)
	// flagAux marks a frame carrying a second vector section after the
	// parameter payload — the algorithm auxiliary vector (SCAFFOLD control
	// variates). The section is self-describing: a 1-byte section flag
	// (gzip/f32, negotiated independently of the main payload) followed by
	// the same count/length/payload layout.
	flagAux byte = 1 << 3

	// gzipThreshold is the raw payload size in bytes at which the encoder
	// switches gzip on. Below it the ~20-byte gzip framing and the CPU cost
	// outweigh any win on small vectors.
	gzipThreshold = 64 << 10

	// Decoder sanity caps: a frame that claims more is rejected before any
	// allocation, so truncated or hostile inputs cannot balloon memory.
	maxMetaBytes   = 1 << 20
	maxFrameParams = 1 << 26
)

// roundRequestMeta is RoundRequest minus the parameter vector. The trace
// fields carry the server-minted round trace context in-band, so JSON-only
// clients (and any transport that strips custom headers) still join the
// stitched round trace.
type roundRequestMeta struct {
	Round    int     `json:"round"`
	Jobs     int     `json:"jobs"`
	Deadline float64 `json:"deadlineSeconds"`
	TraceID  string  `json:"traceId,omitempty"`
	SpanID   string  `json:"spanId,omitempty"`
	Alg      string  `json:"alg,omitempty"`
	Prox     float64 `json:"prox,omitempty"`
}

// roundResponseMeta is RoundResponse minus the parameter vector.
type roundResponseMeta struct {
	ClientID    string            `json:"clientId"`
	NumExamples int               `json:"numExamples"`
	Report      core.RoundReport  `json:"report"`
	Spans       []obs.SpanSummary `json:"spans,omitempty"`
	Steps       int               `json:"steps,omitempty"`
}

// Pooled scratch: frame assembly and payload staging reuse buffers across
// rounds so the steady-state encode path allocates only the caller-visible
// result. Buffers beyond maxPooledBytes are dropped instead of pinned.
const maxPooledBytes = 16 << 20

var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func getBuf() *bytes.Buffer {
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

func putBuf(b *bytes.Buffer) {
	if b.Cap() <= maxPooledBytes {
		bufPool.Put(b)
	}
}

var bytesPool = sync.Pool{New: func() any { return new([]byte) }}

// getBytes returns a pooled scratch slice of length n.
func getBytes(n int) *[]byte {
	p := bytesPool.Get().(*[]byte)
	if cap(*p) < n {
		*p = make([]byte, n)
	}
	*p = (*p)[:n]
	return p
}

func putBytes(p *[]byte) {
	if cap(*p) <= maxPooledBytes {
		bytesPool.Put(p)
	}
}

var gzipWriterPool = sync.Pool{New: func() any { return gzip.NewWriter(io.Discard) }}

var gzipReaderPool = sync.Pool{New: func() any { return new(gzip.Reader) }}

// f32Exact reports whether every parameter survives a round trip through
// float32 unchanged (NaNs never do, so they keep the 8-byte path and their
// payload bits).
func f32Exact(params []float64) bool {
	if len(params) == 0 {
		return false
	}
	for _, v := range params {
		if float64(float32(v)) != v {
			return false
		}
	}
	return true
}

// stageVec encodes one vector section into its wire form: the section flags
// (f32 narrowing, gzip) and the staged payload bytes. release returns the
// pooled scratch backing payload; callers must not touch payload after it.
func stageVec(vec []float64) (flags byte, payload []byte, release func(), err error) {
	elem := 8
	if f32Exact(vec) {
		flags |= flagF32
		elem = 4
	}
	raw := getBytes(len(vec) * elem)
	if elem == 4 {
		for i, v := range vec {
			binary.LittleEndian.PutUint32((*raw)[i*4:], math.Float32bits(float32(v)))
		}
	} else {
		for i, v := range vec {
			binary.LittleEndian.PutUint64((*raw)[i*8:], math.Float64bits(v))
		}
	}
	payload = *raw
	if len(payload) >= gzipThreshold {
		comp := getBuf()
		zw := gzipWriterPool.Get().(*gzip.Writer)
		zw.Reset(comp)
		_, werr := zw.Write(payload)
		cerr := zw.Close()
		gzipWriterPool.Put(zw)
		if werr != nil || cerr != nil {
			putBuf(comp)
			putBytes(raw)
			return 0, nil, func() {}, fmt.Errorf("fl: gzip frame payload: %w", firstErr(werr, cerr))
		}
		flags |= flagGzip
		payload = comp.Bytes()
		return flags, payload, func() { putBuf(comp); putBytes(raw) }, nil
	}
	return flags, payload, func() { putBytes(raw) }, nil
}

// writeVecSection writes a staged vector section: count, payload length,
// payload. scratch must have ≥ 8 bytes for the two length fields.
func writeVecSection(w io.Writer, scratch []byte, count int, payload []byte) error {
	binary.LittleEndian.PutUint32(scratch[:4], uint32(count))
	binary.LittleEndian.PutUint32(scratch[4:8], uint32(len(payload)))
	if _, err := w.Write(scratch[:8]); err != nil {
		return fmt.Errorf("fl: write frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("fl: write frame payload: %w", err)
	}
	return nil
}

// encodeFrame writes one frame carrying meta, params and an optional aux
// vector to w. Aux-less frames are byte-identical to the pre-aux format.
func encodeFrame(w io.Writer, meta any, params, aux []float64) error {
	mb, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("fl: encode frame meta: %w", err)
	}
	if len(mb) > maxMetaBytes {
		return fmt.Errorf("fl: frame meta %d bytes exceeds %d", len(mb), maxMetaBytes)
	}
	if len(params) > maxFrameParams || len(aux) > maxFrameParams {
		return fmt.Errorf("fl: %d params exceed frame limit %d", max(len(params), len(aux)), maxFrameParams)
	}

	flags, payload, release, err := stageVec(params)
	defer release()
	if err != nil {
		return err
	}
	if len(aux) > 0 {
		flags |= flagAux
	}

	var hdr [17]byte
	copy(hdr[:4], frameMagic[:])
	hdr[4] = flags
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(len(mb)))
	if _, err := w.Write(hdr[:9]); err != nil {
		return fmt.Errorf("fl: write frame header: %w", err)
	}
	if _, err := w.Write(mb); err != nil {
		return fmt.Errorf("fl: write frame meta: %w", err)
	}
	if err := writeVecSection(w, hdr[9:17], len(params), payload); err != nil {
		return err
	}
	if flags&flagAux == 0 {
		return nil
	}
	aflags, apayload, arelease, err := stageVec(aux)
	defer arelease()
	if err != nil {
		return err
	}
	hdr[8] = aflags
	if _, err := w.Write(hdr[8:9]); err != nil {
		return fmt.Errorf("fl: write frame header: %w", err)
	}
	return writeVecSection(w, hdr[9:17], len(aux), apayload)
}

// jsonMarshalMeta marshals a frame metadata section with the size cap applied.
func jsonMarshalMeta(meta any) ([]byte, error) {
	mb, err := json.Marshal(meta)
	if err != nil {
		return nil, fmt.Errorf("fl: encode frame meta: %w", err)
	}
	if len(mb) > maxMetaBytes {
		return nil, fmt.Errorf("fl: frame meta %d bytes exceeds %d", len(mb), maxMetaBytes)
	}
	return mb, nil
}

// jsonUnmarshalMeta decodes a frame metadata section, tagging damage corrupt.
func jsonUnmarshalMeta(b []byte, meta any) error {
	if err := json.Unmarshal(b, meta); err != nil {
		return fmt.Errorf("%w: decode meta: %w", ErrCorruptFrame, err)
	}
	return nil
}

// firstErr returns the first non-nil error (helper for the two-error gzip close).
func firstErr(a, b error) error {
	if a != nil {
		return a
	}
	return b
}

// readVec reads one vector section (count, payload length, payload) under
// the given section flags, validating every declared length before any
// allocation.
func readVec(r io.Reader, flags byte) ([]float64, error) {
	var tail [8]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return nil, fmt.Errorf("%w: read header: %w", ErrCorruptFrame, err)
	}
	count := binary.LittleEndian.Uint32(tail[:4])
	payloadLen := binary.LittleEndian.Uint32(tail[4:8])
	if count > maxFrameParams {
		return nil, fmt.Errorf("%w: claims %d params, limit %d", ErrCorruptFrame, count, maxFrameParams)
	}
	elem := 8
	if flags&flagF32 != 0 {
		elem = 4
	}
	rawLen := int(count) * elem
	if flags&flagGzip == 0 {
		if int(payloadLen) != rawLen {
			return nil, fmt.Errorf("%w: payload %d bytes, want %d", ErrCorruptFrame, payloadLen, rawLen)
		}
	} else if int64(payloadLen) > int64(rawLen)+(64<<10) {
		// gzip never expands beyond a small framing overhead; anything
		// bigger is a length-field lie.
		return nil, fmt.Errorf("%w: gzip payload %d bytes for %d raw", ErrCorruptFrame, payloadLen, rawLen)
	}

	payload := getBytes(int(payloadLen))
	defer putBytes(payload)
	if _, err := io.ReadFull(r, *payload); err != nil {
		return nil, fmt.Errorf("%w: read payload: %w", ErrCorruptFrame, err)
	}

	raw := *payload
	if flags&flagGzip != 0 {
		// Truncated or bit-flipped gzip sections surface here as gzip.Reset,
		// short-inflate or checksum errors — all corrupt-frame conditions, so
		// the quarantine path can count them.
		zr := gzipReaderPool.Get().(*gzip.Reader)
		defer gzipReaderPool.Put(zr)
		if err := zr.Reset(bytes.NewReader(*payload)); err != nil {
			return nil, fmt.Errorf("%w: gzip payload: %w", ErrCorruptFrame, err)
		}
		inflated := getBytes(rawLen)
		defer putBytes(inflated)
		if _, err := io.ReadFull(zr, *inflated); err != nil {
			return nil, fmt.Errorf("%w: inflate payload: %w", ErrCorruptFrame, err)
		}
		var one [1]byte
		if n, _ := zr.Read(one[:]); n != 0 {
			return nil, fmt.Errorf("%w: payload inflates past %d declared params", ErrCorruptFrame, count)
		}
		raw = *inflated
	}

	out := make([]float64, count)
	if elem == 4 {
		for i := range out {
			out[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:])))
		}
	} else {
		for i := range out {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
		}
	}
	return out, nil
}

// decodeFrame reads one frame from r, unmarshals the metadata into meta and
// returns the parameter vector plus the aux vector (nil unless the frame set
// flagAux). Truncated, oversized or malformed frames return an error
// wrapping ErrCorruptFrame; decodeFrame never panics on hostile input.
func decodeFrame(r io.Reader, meta any) ([]float64, []float64, error) {
	var hdr [9]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, nil, fmt.Errorf("%w: read header: %w", ErrCorruptFrame, err)
	}
	if !bytes.Equal(hdr[:4], frameMagic[:]) {
		return nil, nil, fmt.Errorf("%w: bad magic %q", ErrCorruptFrame, hdr[:4])
	}
	flags := hdr[4]
	if flags&^(flagGzip|flagF32|flagAux) != 0 {
		return nil, nil, fmt.Errorf("%w: unknown flags %#x", ErrCorruptFrame, flags)
	}
	metaLen := binary.LittleEndian.Uint32(hdr[5:9])
	if metaLen > maxMetaBytes {
		return nil, nil, fmt.Errorf("%w: meta %d bytes exceeds %d", ErrCorruptFrame, metaLen, maxMetaBytes)
	}
	mb := getBytes(int(metaLen))
	defer putBytes(mb)
	if _, err := io.ReadFull(r, *mb); err != nil {
		return nil, nil, fmt.Errorf("%w: read meta: %w", ErrCorruptFrame, err)
	}
	if err := json.Unmarshal(*mb, meta); err != nil {
		return nil, nil, fmt.Errorf("%w: decode meta: %w", ErrCorruptFrame, err)
	}

	params, err := readVec(r, flags)
	if err != nil {
		return nil, nil, err
	}
	var aux []float64
	if flags&flagAux != 0 {
		var ab [1]byte
		if _, err := io.ReadFull(r, ab[:]); err != nil {
			return nil, nil, fmt.Errorf("%w: read aux header: %w", ErrCorruptFrame, err)
		}
		if ab[0]&^(flagGzip|flagF32) != 0 {
			return nil, nil, fmt.Errorf("%w: unknown aux flags %#x", ErrCorruptFrame, ab[0])
		}
		if aux, err = readVec(r, ab[0]); err != nil {
			return nil, nil, err
		}
	}
	return params, aux, nil
}

// EncodeRoundRequest writes req to w as one binary frame.
func EncodeRoundRequest(w io.Writer, req RoundRequest) error {
	return encodeFrame(w, roundRequestMeta{
		Round: req.Round, Jobs: req.Jobs, Deadline: req.Deadline,
		TraceID: req.Trace.TraceID, SpanID: req.Trace.SpanID,
		Alg: req.Alg, Prox: req.Prox,
	}, req.Params, req.Aux)
}

// DecodeRoundRequest reads one binary frame from r. Trace fields are decoded
// faithfully (the codec roundtrips whatever was framed); ingress validation
// against hostile values is the handler's job via TraceContext.Sanitized.
func DecodeRoundRequest(r io.Reader) (RoundRequest, error) {
	var meta roundRequestMeta
	params, aux, err := decodeFrame(r, &meta)
	if err != nil {
		return RoundRequest{}, err
	}
	return RoundRequest{
		Round: meta.Round, Params: params, Jobs: meta.Jobs, Deadline: meta.Deadline,
		Trace: obs.TraceContext{TraceID: meta.TraceID, SpanID: meta.SpanID},
		Alg:   meta.Alg, Prox: meta.Prox, Aux: aux,
	}, nil
}

// EncodeRoundResponse writes resp to w as one binary frame.
func EncodeRoundResponse(w io.Writer, resp RoundResponse) error {
	return encodeFrame(w, roundResponseMeta{
		ClientID: resp.ClientID, NumExamples: resp.NumExamples,
		Report: resp.Report, Spans: resp.Spans, Steps: resp.Steps,
	}, resp.Params, resp.Aux)
}

// DecodeRoundResponse reads one binary frame from r.
func DecodeRoundResponse(r io.Reader) (RoundResponse, error) {
	var meta roundResponseMeta
	params, aux, err := decodeFrame(r, &meta)
	if err != nil {
		return RoundResponse{}, err
	}
	return RoundResponse{
		ClientID: meta.ClientID, Params: params, NumExamples: meta.NumExamples,
		Report: meta.Report, Spans: meta.Spans, Steps: meta.Steps, Aux: aux,
	}, nil
}
